package repro_test

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/condbr"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchEvents keeps -bench runtimes reasonable while exercising the full
// suite; cmd/experiments regenerates the figures at full scale.
const benchEvents = 20_000

var (
	suiteOnce   sync.Once
	suiteTraces map[string][]trace.Record
)

// suite materializes the benchmark traces through the shared trace cache
// (bench.Traces), so they are synthesized once per process and shared with
// any other harness in the same binary.
func suite() map[string][]trace.Record {
	suiteOnce.Do(func() {
		suiteTraces = make(map[string][]trace.Record)
		for _, cfg := range bench.Sized(benchEvents) {
			recs, _ := bench.Traces(cfg)
			suiteTraces[cfg.String()] = recs
		}
	})
	return suiteTraces
}

// runSuite drives the whole benchmark suite through fresh instances of the
// given predictor construction and reports the mean misprediction ratio as
// a benchmark metric.
func runSuite(b *testing.B, build func() predictor.IndirectPredictor) {
	b.Helper()
	traces := suite()
	var lastMean float64
	var branches int64
	for i := 0; i < b.N; i++ {
		var sum float64
		var n int
		branches = 0
		for _, recs := range traces {
			p := build()
			counters := sim.Run(recs, p)
			sum += counters[0].MispredictionRatio()
			branches += int64(counters[0].Lookups)
			n++
		}
		lastMean = sum / float64(n)
	}
	b.ReportMetric(100*lastMean, "mispred%")
	b.ReportMetric(float64(branches), "MT-branches")
}

// BenchmarkTable1 regenerates the dynamic benchmark characteristics of
// Table 1 (trace generation throughput; the characteristics are checked in
// internal/bench tests and printed by cmd/experiments -table1).
func BenchmarkTable1(b *testing.B) {
	cfgs := bench.Sized(benchEvents)
	var instr uint64
	for i := 0; i < b.N; i++ {
		instr = 0
		for _, cfg := range cfgs {
			sum := cfg.Generate(func(trace.Record) {})
			instr += sum.Instructions
		}
	}
	b.ReportMetric(float64(instr)/1e6, "Minstr")
}

// BenchmarkFigure1 replays the Section 3 worked example (conditional PPM).
func BenchmarkFigure1(b *testing.B) {
	seq := "01010110101"
	for i := 0; i < b.N; i++ {
		p := condbr.NewPPM(3)
		for _, ch := range seq {
			p.Predict()
			p.Update(ch == '1')
		}
		if p.Predict() {
			b.Fatal("Figure 1 example must predict 0")
		}
	}
}

// BenchmarkFigure6 regenerates the seven-predictor comparison of Figure 6,
// one sub-benchmark per predictor; the reported mispred% metric is the
// cross-suite mean the paper plots.
func BenchmarkFigure6(b *testing.B) {
	for _, name := range []string{"BTB", "BTB2b", "GAp", "TC-PIB", "Dpath", "Cascade", "PPM-hyb"} {
		name := name
		b.Run(name, func(b *testing.B) {
			runSuite(b, func() predictor.IndirectPredictor {
				p, _ := bench.NewPredictor(name)
				return p
			})
		})
	}
}

// BenchmarkFigure7 regenerates the PPM-variant comparison of Figure 7.
func BenchmarkFigure7(b *testing.B) {
	for _, name := range []string{"PPM-hyb", "PPM-PIB", "PPM-hyb-biased"} {
		name := name
		b.Run(name, func(b *testing.B) {
			runSuite(b, func() predictor.IndirectPredictor {
				p, _ := bench.NewPredictor(name)
				return p
			})
		})
	}
}

// BenchmarkComponentsAnalysis reproduces the Section 5 measurement that at
// least 98% of PPM accesses land in the highest-order Markov component.
func BenchmarkComponentsAnalysis(b *testing.B) {
	traces := suite()
	var share float64
	for i := 0; i < b.N; i++ {
		var top, total uint64
		for _, recs := range traces {
			p := core.PaperHyb()
			sim.Run(recs, p)
			st := p.Stats()
			for _, a := range st.Accesses {
				total += a
			}
			top += st.Accesses[p.Order()]
		}
		share = 100 * float64(top) / float64(total)
	}
	b.ReportMetric(share, "top-order-%")
}

// BenchmarkOracleAnalysis reproduces the Section 5 oracle study (complete
// PIB path history, length 8) on photon.
func BenchmarkOracleAnalysis(b *testing.B) {
	recs := suite()["photon"]
	var acc float64
	for i := 0; i < b.N; i++ {
		o := oracle.New(8)
		counters := sim.Run(recs, o)
		acc = 100 * counters[0].Accuracy()
	}
	b.ReportMetric(acc, "oracle-acc%")
}

// BenchmarkVariantsAblation covers the Section 6 future-work designs.
func BenchmarkVariantsAblation(b *testing.B) {
	builders := map[string]func() predictor.IndirectPredictor{
		"tagged": func() predictor.IndirectPredictor {
			cfg := core.DefaultConfig(core.Hybrid)
			cfg.Tagged = true
			return core.New(cfg)
		},
		"confidence": func() predictor.IndirectPredictor {
			cfg := core.DefaultConfig(core.Hybrid)
			cfg.ConfidenceThreshold = 2
			return core.New(cfg)
		},
		"low-select": func() predictor.IndirectPredictor {
			cfg := core.DefaultConfig(core.Hybrid)
			cfg.LowSelect = true
			return core.New(cfg)
		},
		"filtered": func() predictor.IndirectPredictor { return core.PaperFiltered() },
	}
	for name, build := range builders {
		name, build := name, build
		b.Run(name, func(b *testing.B) { runSuite(b, build) })
	}
}

// BenchmarkPredictorThroughput measures raw single-branch prediction+update
// latency per predictor on a fixed hot loop — the engineering metric for
// the simulator itself.
func BenchmarkPredictorThroughput(b *testing.B) {
	targets := []uint64{0x140000f4, 0x14000128, 0x1400075c, 0x14000390}
	for _, name := range bench.PredictorNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			p, _ := bench.NewPredictor(name)
			rec := trace.Record{PC: 0x120004c0, Class: trace.IndirectJmp, Taken: true, MT: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tgt := targets[i&3]
				p.Predict(rec.PC)
				p.Update(rec.PC, tgt)
				rec.Target = tgt
				p.Observe(rec)
			}
		})
	}
}

// BenchmarkWorkloadGeneration measures the synthetic trace generator.
func BenchmarkWorkloadGeneration(b *testing.B) {
	cfg, _ := bench.ByName("gcc.cp")
	cfg.Events = 10_000
	var recs uint64
	for i := 0; i < b.N; i++ {
		sum := cfg.Generate(func(trace.Record) {})
		recs = sum.Records
	}
	b.ReportMetric(float64(recs), "records")
}

// BenchmarkEngine measures full-engine record processing with the complete
// Figure 6 predictor set attached.
func BenchmarkEngine(b *testing.B) {
	recs := suite()["gs.tig"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.New(bench.Figure6Predictors()...)
		e.ProcessAll(recs)
	}
	b.ReportMetric(float64(len(recs)), "records")
}
