// interpreter models the other classic indirect-branch workload: a bytecode
// interpreter whose dispatch loop executes an indirect jmp through a jump
// table (a switch) once per instruction. The next opcode depends on the
// program being interpreted, which is loop-heavy, so the dispatch target is
// strongly correlated with the recent dispatch path.
//
// The example builds interpreters for three synthetic "guest programs" of
// rising irregularity and shows the misprediction ratio of each predictor
// family, plus the PPM component-usage distribution from Section 5 of the
// paper (the highest-order Markov component serves almost every lookup).
package main

import (
	"fmt"

	"repro/indirect"
)

func guest(name string, handlers int, irregularity float64, seed uint64) indirect.Workload {
	return indirect.Workload{
		Name: "interp", Input: name, Seed: seed, Events: 60_000,
		Sites: []indirect.SiteSpec{
			// The dispatch switch: one jmp with one target per opcode
			// handler; the next opcode follows the guest program's
			// control flow (order-3 path correlation plus data noise).
			{Label: "dispatch", Class: indirect.IndirectJmp, NumTargets: handlers,
				Behavior: indirect.Correlated{Stream: indirect.StreamPIB, Order: 3, Noise: irregularity}, Weight: 12},
			// Helper calls made by some handlers.
			{Label: "helpers", Class: indirect.IndirectJsr, NumTargets: 5,
				Behavior: indirect.Correlated{Stream: indirect.StreamPIB, Order: 1, Noise: irregularity}, Weight: 3},
		},
		ChainSites: true, ChainOrder: 2, ChainNoise: irregularity / 2,
		CondPerEvent: 2, CondNoise: 0.3,
		CallRate: 0.2, STRate: 0.02,
	}
}

func main() {
	programs := []struct {
		name         string
		handlers     int
		irregularity float64
	}{
		{"tight-loop", 16, 0.001},
		{"mixed", 32, 0.01},
		{"branchy", 48, 0.02},
	}

	names := []string{"BTB", "GAp", "TC-PIB", "Dpath", "PPM-hyb"}
	fmt.Println("interpreter dispatch misprediction ratio (%)")
	fmt.Printf("%-12s", "guest")
	for _, n := range names {
		fmt.Printf(" %9s", n)
	}
	fmt.Println()

	for i, g := range programs {
		cfg := guest(g.name, g.handlers, g.irregularity, uint64(0xBEEF+i))
		preds := make([]indirect.Predictor, len(names))
		for j, n := range names {
			preds[j], _ = indirect.NewPredictor(n)
		}
		eng := indirect.NewEngine(preds...)
		cfg.Generate(func(r indirect.Record) { eng.Process(r) })
		fmt.Printf("%-12s", g.name)
		for _, c := range eng.Counters() {
			fmt.Printf(" %8.2f%%", 100*c.MispredictionRatio())
		}
		fmt.Println()
	}

	// Section 5 analysis: where do the PPM's predictions come from?
	fmt.Println("\nPPM Markov component usage on the mixed guest:")
	ppm := indirect.NewPPMHybrid()
	cfg := guest("mixed", 32, 0.01, 0xBEEF+1)
	eng := indirect.NewEngine(ppm)
	cfg.Generate(func(r indirect.Record) { eng.Process(r) })
	st := ppm.Stats()
	var total uint64
	for _, a := range st.Accesses {
		total += a
	}
	for order := ppm.Order(); order >= ppm.Order()-2; order-- {
		fmt.Printf("  order %2d: %5.1f%% of accesses\n", order,
			100*float64(st.Accesses[order])/float64(total))
	}
	fmt.Printf("  (paper: >= 98%% of accesses hit the highest-order component)\n")
}
