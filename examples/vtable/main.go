// vtable models the paper's motivating workload: C++ virtual function
// dispatch. A scene of shapes is traversed repeatedly; each shape's Draw is
// a virtual call through its vtable — an indirect jsr whose target is the
// concrete method. Because the traversal order is data-dependent but
// recurrent, path-based predictors can learn which override comes next,
// while a BTB only remembers the last one.
//
// The example builds the workload from the public API's site behaviours
// (the traversal is PIB-correlated: the next object's type follows from
// the recent dispatch path) and prints how each predictor family copes as
// polymorphism rises.
package main

import (
	"fmt"

	"repro/indirect"
)

func scene(polymorphism int, seed uint64) indirect.Workload {
	return indirect.Workload{
		Name: "vtable", Input: fmt.Sprintf("%d-types", polymorphism),
		Seed: seed, Events: 50_000,
		Sites: []indirect.SiteSpec{
			// The hot draw loop: one virtual call site dispatching over
			// all concrete types, following the scene graph order.
			{Label: "Shape.Draw", Class: indirect.IndirectJsr, NumTargets: polymorphism,
				Behavior: indirect.Correlated{Stream: indirect.StreamPIB, Order: 2, Noise: 0.002}, Weight: 10},
			// Accessors that in practice always hit one override.
			{Label: "Shape.Bounds", Class: indirect.IndirectJsr, NumTargets: polymorphism,
				Behavior: indirect.Monomorphic{Bias: 0.99}, Weight: 5},
			// A visitor that cycles materials in order.
			{Label: "Material.Apply", Class: indirect.IndirectJsr, NumTargets: 4,
				Behavior: indirect.Cyclic{}, Weight: 3},
		},
		ChainSites: true, ChainOrder: 2, ChainNoise: 0.004,
		CondPerEvent: 3, CondNoise: 0.2,
		CallRate: 0.3, STRate: 0.02,
	}
}

func main() {
	fmt.Println("virtual dispatch misprediction ratio (%) vs polymorphism degree")
	fmt.Printf("%-10s", "types")
	names := []string{"BTB", "BTB2b", "TC-PIB", "Cascade", "PPM-hyb"}
	for _, n := range names {
		fmt.Printf(" %9s", n)
	}
	fmt.Println()

	for _, degree := range []int{2, 4, 8, 16} {
		cfg := scene(degree, uint64(0xD15EA5E+degree))
		preds := make([]indirect.Predictor, len(names))
		for i, n := range names {
			preds[i], _ = indirect.NewPredictor(n)
		}
		eng := indirect.NewEngine(preds...)
		cfg.Generate(func(r indirect.Record) { eng.Process(r) })
		fmt.Printf("%-10d", degree)
		for _, c := range eng.Counters() {
			fmt.Printf(" %8.2f%%", 100*c.MispredictionRatio())
		}
		fmt.Println()
	}
	fmt.Println("\nNote how the BTB degrades with polymorphism while the path-based")
	fmt.Println("predictors track the traversal; 16-byte-aligned method entries starve")
	fmt.Println("the Target Cache's 2-low-bit history records, the effect the paper's")
	fmt.Println("PPM avoids by selecting and folding 10 bits per target.")
}
