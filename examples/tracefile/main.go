// tracefile demonstrates the capture/replay workflow the original study
// used (ATOM traces written once, simulated many times): generate a
// benchmark, persist it in the compact IBT2 binary format, replay it from
// disk through a predictor and the path-history oracle, and profile its
// branch population — all through the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/indirect"
)

func main() {
	cfg, ok := indirect.BenchmarkByName("photon")
	if !ok {
		log.Fatal("benchmark not found")
	}
	cfg.Events = 30_000

	// Capture.
	var recs []indirect.Record
	sum := cfg.Generate(func(r indirect.Record) { recs = append(recs, r) })
	path := filepath.Join(os.TempDir(), "photon.ibt")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := indirect.WriteTrace(f, recs); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("captured %s: %d records, %.2f bytes/record on disk\n",
		path, len(recs), float64(fi.Size())/float64(len(recs)))

	// Replay.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close() //lint:closeerr reopened read-only for replay; Close cannot lose data
	replayed, err := indirect.ReadTrace(g)
	if err != nil {
		log.Fatal(err)
	}
	counters := indirect.Simulate(replayed,
		indirect.NewPPMHybrid(),
		indirect.NewOracle(8),
	)
	fmt.Printf("replayed %d records (%d MT indirect branches)\n\n", len(replayed), sum.MTDynamic)
	for _, c := range counters {
		fmt.Printf("  %-12s %6.2f%% mispredicted\n", c.Predictor, 100*c.MispredictionRatio())
	}
	fmt.Println("\nThe oracle's residue is the trace's irreducible PIB-context noise;")
	fmt.Println("the paper measured ~0.9% for photon, the most regular benchmark.")
}
