// Quickstart: build the paper's PPM-hyb predictor, run it against the
// classic baselines on one synthetic benchmark, and print misprediction
// ratios — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"repro/indirect"
)

func main() {
	cfg, ok := indirect.BenchmarkByName("gs.tig")
	if !ok {
		log.Fatal("benchmark not found")
	}
	cfg.Events = 60_000

	eng := indirect.NewEngine(
		indirect.NewBTB(),
		indirect.NewTargetCache(),
		indirect.NewCascade(),
		indirect.NewPPMHybrid(),
	)
	sum := cfg.Generate(func(r indirect.Record) { eng.Process(r) })

	fmt.Printf("benchmark %s: %.1fM instructions, %d multi-target indirect branches\n\n",
		cfg.String(), float64(sum.Instructions)/1e6, sum.MTDynamic)
	for _, c := range eng.Counters() {
		fmt.Printf("  %-10s %6.2f%% mispredicted (%d wrong, %d no-prediction)\n",
			c.Predictor, 100*c.MispredictionRatio(), c.Wrong, c.NoPrediction)
	}
	hits, total := eng.RAS().Accuracy()
	fmt.Printf("\n  returns handled by the RAS: %d/%d correct (%.2f%%)\n",
		hits, total, 100*float64(hits)/float64(total))
}
