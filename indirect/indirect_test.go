package indirect_test

import (
	"bytes"
	"testing"

	"repro/indirect"
)

// TestQuickstartFlow exercises the documented public-API session end to
// end: build predictors, generate a benchmark, simulate, read counters.
func TestQuickstartFlow(t *testing.T) {
	cfg, ok := indirect.BenchmarkByName("photon")
	if !ok {
		t.Fatal("photon missing from the suite")
	}
	cfg.Events = 5000
	eng := indirect.NewEngine(indirect.NewPPMHybrid(), indirect.NewBTB())
	cfg.Generate(func(r indirect.Record) { eng.Process(r) })
	counters := eng.Counters()
	if counters[0].Lookups == 0 {
		t.Fatal("no MT lookups recorded")
	}
	if counters[0].MispredictionRatio() >= counters[1].MispredictionRatio() {
		t.Errorf("PPM (%.3f) not better than BTB (%.3f) on photon",
			counters[0].MispredictionRatio(), counters[1].MispredictionRatio())
	}
}

func TestCustomWorkload(t *testing.T) {
	w := indirect.Workload{
		Name: "custom", Seed: 9, Events: 3000,
		Sites: []indirect.SiteSpec{
			{Label: "dispatch", Class: indirect.IndirectJmp, NumTargets: 6,
				Behavior: indirect.Correlated{Stream: indirect.StreamPIB, Order: 1}, Weight: 4},
			{Label: "hook", Class: indirect.IndirectJsr, NumTargets: 2,
				Behavior: indirect.Monomorphic{Bias: 0.99}, Weight: 1},
		},
		ChainSites: true, CondPerEvent: 2,
	}
	var recs []indirect.Record
	sum := w.Generate(func(r indirect.Record) { recs = append(recs, r) })
	if sum.MTDynamic != 3000 {
		t.Fatalf("MTDynamic = %d", sum.MTDynamic)
	}
	counters := indirect.Simulate(recs, indirect.NewPPMPIB(), indirect.NewTargetCache())
	for _, c := range counters {
		if c.MispredictionRatio() > 0.2 {
			t.Errorf("%s: ratio %.3f on an order-1 deterministic workload", c.Predictor, c.MispredictionRatio())
		}
	}
}

func TestTraceRoundTripAPI(t *testing.T) {
	cfg, _ := indirect.BenchmarkByName("eqn")
	cfg.Events = 500
	var recs []indirect.Record
	cfg.Generate(func(r indirect.Record) { recs = append(recs, r) })

	var buf bytes.Buffer
	if err := indirect.WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := indirect.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d/%d records", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestNewPredictorRegistry(t *testing.T) {
	for _, name := range indirect.PredictorNames() {
		p, ok := indirect.NewPredictor(name)
		if !ok || p.Name() != name {
			t.Errorf("NewPredictor(%q) = %v, %v", name, p, ok)
		}
	}
}

func TestRASAPI(t *testing.T) {
	r := indirect.NewRAS(8)
	r.Push(0x1004)
	if got, ok := r.Pop(); !ok || got != 0x1004 {
		t.Errorf("RAS pop = %#x, %v", got, ok)
	}
}

func TestOracleAPI(t *testing.T) {
	o := indirect.NewOracle(8)
	cfg, _ := indirect.BenchmarkByName("photon")
	cfg.Events = 4000
	var recs []indirect.Record
	cfg.Generate(func(r indirect.Record) { recs = append(recs, r) })
	counters := indirect.Simulate(recs, o)
	if counters[0].Accuracy() < 0.9 {
		t.Errorf("oracle accuracy on photon = %.3f, want ~0.99", counters[0].Accuracy())
	}
}

func TestMeanRatioAPI(t *testing.T) {
	runs := []indirect.Counters{
		{Lookups: 100, Wrong: 10},
		{Lookups: 100, Wrong: 30},
	}
	if got := indirect.MeanRatio(runs); got != 0.2 {
		t.Errorf("MeanRatio = %v", got)
	}
}

func TestPipelineAPI(t *testing.T) {
	r := indirect.Default4Wide.Estimate(4000, 100)
	if r.IPC != 2 {
		t.Errorf("IPC = %v, want 2", r.IPC)
	}
	if indirect.MPKI(1_000_000, 2500) != 2.5 {
		t.Error("MPKI wrong")
	}
}

func TestCBTAndFilteredAPI(t *testing.T) {
	for _, p := range []indirect.Predictor{
		indirect.NewCBT(1024, 1.0),
		indirect.NewFilteredPPM(),
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
		if _, ok := p.Predict(0x4000); ok {
			t.Errorf("%s predicted cold", p.Name())
		}
		p.Update(0x4000, 0x140000f0)
	}
}
