package indirect_test

import (
	"fmt"

	"repro/indirect"
)

// ExampleNewPPMHybrid demonstrates the paper's predictor on a deterministic
// dispatch cycle: after warm-up it predicts every target.
func ExampleNewPPMHybrid() {
	p := indirect.NewPPMHybrid()
	targets := []uint64{0x140000f4, 0x14000128, 0x1400075c}
	const pc = 0x120004c0

	correct, total := 0, 0
	for i := 0; i < 600; i++ {
		want := targets[i%len(targets)]
		got, ok := p.Predict(pc)
		if i >= 100 {
			total++
			if ok && got == want {
				correct++
			}
		}
		p.Update(pc, want)
		p.Observe(indirect.Record{
			PC: pc, Target: want, Class: indirect.IndirectJmp, Taken: true, MT: true,
		})
	}
	fmt.Printf("accuracy after warm-up: %d/%d\n", correct, total)
	// Output: accuracy after warm-up: 500/500
}

// ExampleWorkload builds a custom benchmark from site behaviours and
// simulates two predictors over it.
func ExampleWorkload() {
	w := indirect.Workload{
		Name: "demo", Seed: 7, Events: 4000,
		Sites: []indirect.SiteSpec{
			{Label: "dispatch", Class: indirect.IndirectJmp, NumTargets: 8,
				Behavior: indirect.Cyclic{}, Weight: 4},
		},
		ChainSites: true, CondPerEvent: 2,
	}
	var recs []indirect.Record
	w.Generate(func(r indirect.Record) { recs = append(recs, r) })

	counters := indirect.Simulate(recs, indirect.NewPPMHybrid(), indirect.NewBTB())
	better := counters[0].MispredictionRatio() < counters[1].MispredictionRatio()
	fmt.Printf("PPM beats BTB on a cycling switch: %v\n", better)
	// Output: PPM beats BTB on a cycling switch: true
}

// ExamplePipeline converts misprediction counts into the wide-issue IPC
// terms the paper's introduction argues in.
func ExamplePipeline() {
	machine := indirect.Default4Wide
	perfect := machine.Estimate(1_000_000, 0)
	withMisses := machine.Estimate(1_000_000, 20_000)
	fmt.Printf("perfect IPC %.2f, with 20 MPKI of mispredictions %.2f\n",
		perfect.IPC, withMisses.IPC)
	// Output: perfect IPC 4.00, with 20 MPKI of mispredictions 2.22
}
