// Package indirect is the public API of this repository: a library of
// indirect-branch target predictors reproducing Kalamatianos & Kaeli,
// "Predicting Indirect Branches via Data Compression" (MICRO-31, 1998),
// together with the trace model, synthetic workload generator, and
// simulation engine needed to evaluate them.
//
// The paper's contribution — the PPM predictor with dynamic per-branch
// correlation selection — is constructed with NewPPMHybrid; every baseline
// it was compared against (BTB, BTB2b, GAp, Target Cache, Dual-path,
// Cascade) has a constructor holding the same 2K-entry hardware budget.
//
// A minimal session:
//
//	p := indirect.NewPPMHybrid()
//	eng := indirect.NewEngine(p)
//	cfg, _ := indirect.BenchmarkByName("photon")
//	cfg.Events = 100_000
//	cfg.Generate(func(r indirect.Record) { eng.Process(r) })
//	fmt.Println(eng.Counters()[0]) // misprediction ratio etc.
//
// The subpackages under internal/ hold the implementations; this package
// re-exports the stable surface.
package indirect

import (
	"io"

	"repro/internal/bench"
	"repro/internal/btb"
	"repro/internal/cascade"
	"repro/internal/cbt"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/predictor"
	"repro/internal/ras"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/twolevel"
	"repro/internal/workload"
)

// Predictor is the interface every indirect-branch target predictor
// implements. See the simulation protocol in the engine documentation:
// Predict and Update pair up per multi-target indirect branch; Observe is
// called for every committed branch record afterward.
type Predictor = predictor.IndirectPredictor

// Record is one committed control-transfer instruction of a trace.
type Record = trace.Record

// Branch classes (Alpha-flavoured).
const (
	CondDirect   = trace.CondDirect
	UncondDirect = trace.UncondDirect
	DirectCall   = trace.DirectCall
	IndirectJmp  = trace.IndirectJmp
	IndirectJsr  = trace.IndirectJsr
	Return       = trace.Return
)

// Counters accumulates prediction outcomes for one predictor.
type Counters = stats.Counters

// Engine drives branch records through a set of predictors.
type Engine = sim.Engine

// NewEngine builds a simulation engine over the given predictors.
func NewEngine(preds ...Predictor) *Engine { return sim.New(preds...) }

// Simulate runs a record slice through fresh predictors and returns their
// accuracy counters.
func Simulate(recs []Record, preds ...Predictor) []Counters { return sim.Run(recs, preds...) }

// PPMConfig parameterizes the paper's predictor; see NewPPM.
type PPMConfig = core.Config

// PPM variant modes.
const (
	PIBOnly      = core.PIBOnly
	Hybrid       = core.Hybrid
	HybridBiased = core.HybridBiased
)

// PPM is the paper's Prediction-by-Partial-Matching indirect branch target
// predictor.
type PPM = core.PPM

// NewPPM builds a PPM predictor from an explicit configuration.
func NewPPM(cfg PPMConfig) *PPM { return core.New(cfg) }

// NewPPMHybrid returns the paper's headline PPM-hyb configuration:
// order 10, SFSXS indexing, dynamic PB/PIB selection, 2047 entries.
func NewPPMHybrid() *PPM { return core.PaperHyb() }

// NewPPMPIB returns the single-history PPM-PIB variant.
func NewPPMPIB() *PPM { return core.PaperPIB() }

// NewPPMHybridBiased returns the PPM-hyb-biased variant (Figure 5's
// PIB-biased selection protocol).
func NewPPMHybridBiased() *PPM { return core.PaperHybBiased() }

// NewBTB returns a tagless 2K-entry branch target buffer.
func NewBTB() Predictor { return btb.New(2048) }

// NewBTB2b returns a 2K-entry BTB with 2-bit replacement hysteresis.
func NewBTB2b() Predictor { return btb.New2b(2048) }

// NewGAp returns the paper's GAp two-level predictor configuration.
func NewGAp() Predictor { return twolevel.PaperGAp() }

// NewTargetCache returns the paper's TC-PIB Target Cache configuration.
func NewTargetCache() Predictor { return twolevel.PaperTCPIB() }

// NewDualPath returns the paper's Dpath hybrid configuration.
func NewDualPath() Predictor { return twolevel.PaperDualPath() }

// NewCascade returns the paper's Cascade (leaky-filter) configuration.
func NewCascade() Predictor { return cascade.Paper() }

// NewOracle returns the Section 5 oracle: unbounded exact-context
// prediction over complete PIB path history of the given length.
func NewOracle(pathLength int) Predictor { return oracle.New(pathLength) }

// NewFilteredPPM returns the Section 6 future-work design: the PPM-hyb
// predictor behind a 128-entry leaky filter that isolates monomorphic and
// low-entropy branches from the Markov tables.
func NewFilteredPPM() Predictor { return core.PaperFiltered() }

// NewCBT returns a Case Block Table (Kaeli & Emma, via Related Work): a
// switch-target predictor keyed on the switch variable value, usable at
// fetch with the given probability (1 = idealized, 0 = BTB-equivalent).
func NewCBT(entries int, availability float64) Predictor {
	return cbt.New(cbt.Config{Entries: entries, Availability: availability, Seed: 0xCB7})
}

// Pipeline is the wide-issue front-end cost model that converts
// misprediction counts into cycle/IPC estimates (the paper's motivation).
type Pipeline = pipeline.Config

// Default4Wide is a 4-wide, 10-cycle-refill machine configuration.
var Default4Wide = pipeline.Default4Wide

// MPKI returns mispredictions per thousand instructions.
func MPKI(instructions, mispredictions uint64) float64 {
	return pipeline.MPKI(instructions, mispredictions)
}

// NewPredictor constructs a paper-configured predictor by its Figure 6/7
// label ("BTB", "BTB2b", "GAp", "TC-PIB", "Dpath", "Cascade", "PPM-hyb",
// "PPM-PIB", "PPM-hyb-biased"); ok is false for unknown names.
func NewPredictor(name string) (Predictor, bool) { return bench.NewPredictor(name) }

// PredictorNames lists every label NewPredictor accepts.
func PredictorNames() []string { return bench.PredictorNames() }

// RAS is a return address stack (Kaeli & Emma), the mechanism that removes
// subroutine returns from the indirect predictor's workload.
type RAS = ras.Stack

// NewRAS builds a return address stack of the given depth.
func NewRAS(depth int) *RAS { return ras.New(depth) }

// Workload is a synthetic benchmark configuration; its Generate method
// emits a deterministic branch record stream.
type Workload = workload.Config

// SiteSpec declares one indirect branch site of a workload.
type SiteSpec = workload.SiteSpec

// Site behaviours for building custom workloads.
type (
	// Monomorphic sites overwhelmingly use one target.
	Monomorphic = workload.Monomorphic
	// LowEntropy sites switch targets rarely.
	LowEntropy = workload.LowEntropy
	// Correlated sites follow recent path history (PIB, PB or self).
	Correlated = workload.Correlated
	// CondDriven sites follow recent conditional outcomes.
	CondDriven = workload.CondDriven
	// Cyclic sites walk their target list in order.
	Cyclic = workload.Cyclic
	// Uniform sites pick targets at random.
	Uniform = workload.Uniform
)

// Correlation streams for Correlated sites.
const (
	StreamPIB  = workload.PIB
	StreamPB   = workload.PB
	StreamSelf = workload.Self
)

// BenchmarkSuite returns the paper's 14-run benchmark suite (Table 1) at
// the default event count.
func BenchmarkSuite() []Workload { return bench.Suite() }

// BenchmarkByName returns one suite run by its Table 1 name, e.g.
// "troff.ped" or "photon".
func BenchmarkByName(name string) (Workload, bool) { return bench.ByName(name) }

// WriteTrace encodes records to w in the repository's compact binary trace
// format (IBT1).
func WriteTrace(w io.Writer, recs []Record) error {
	tw, err := trace.NewWriter(w)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ReadTrace decodes an IBT1 trace stream.
func ReadTrace(r io.Reader) ([]Record, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return nil, err
	}
	return tr.ReadAll()
}

// MeanRatio returns the arithmetic mean of per-run misprediction ratios,
// the paper's cross-benchmark aggregate.
func MeanRatio(runs []Counters) float64 { return stats.MeanRatio(runs) }
