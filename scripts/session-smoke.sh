#!/bin/sh
# session-smoke: end-to-end gate for the live-session subsystem
# (make session-smoke).
#
# Boots a real ppmserved on an ephemeral port and drives the session API with
# ppmctl:
#   1. creates a PPM-hyb session and trains it over a real predict stream;
#   2. downloads the trained snapshot and restores it into a second, fresh
#      session; re-downloading that session's state must return the snapshot
#      byte-for-byte;
#   3. streams the same continuation run through both sessions: the NDJSON
#      prediction streams (session ids blanked) and the final snapshots must
#      be byte-identical — the warm-start contract, proven over a real
#      socket rather than in-process;
#   4. checks the stats surface counted the sessions, saves, loads and
#      streamed records;
#   5. SIGTERMs the daemon with both sessions live: the drain must complete
#      cleanly (exit 0, "draining"/"stopped" on stderr).
set -eu

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
pid=""
cleanup() {
    if [ -n "$pid" ]; then kill "$pid" 2>/dev/null || true; fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/ppmserved" ./cmd/ppmserved
go build -o "$tmp/ppmctl" ./cmd/ppmctl

"$tmp/ppmserved" -addr 127.0.0.1:0 -drain-timeout 60s 2>"$tmp/served.log" &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^ppmserved: listening on //p' "$tmp/served.log")"
    if [ -n "$addr" ]; then break; fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "session-smoke: ppmserved died at startup:" >&2
        cat "$tmp/served.log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "session-smoke: ppmserved did not report an address" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi
server="http://$addr"
echo "session-smoke: ppmserved up at $server"

sid() { sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$1" | head -n 1; }

# 1. Create a session and train it over a real predict stream.
"$tmp/ppmctl" -server "$server" session create -predictor PPM-hyb >"$tmp/a.json"
a="$(sid "$tmp/a.json")"
if [ -z "$a" ]; then
    echo "session-smoke: no session id in create response:" >&2
    cat "$tmp/a.json" >&2
    exit 1
fi
"$tmp/ppmctl" -server "$server" session predict -workload troff.ped -events 600 "$a" >"$tmp/a-train.ndjson"
if ! grep -q '"type":"done"' "$tmp/a-train.ndjson"; then
    echo "session-smoke: training stream ended without a done event" >&2
    tail -n 3 "$tmp/a-train.ndjson" >&2
    exit 1
fi

# 2. Snapshot the trained session and restore it into a fresh one; the
#    restored session's re-downloaded state must be the snapshot, exactly.
"$tmp/ppmctl" -server "$server" session state -o "$tmp/a.state" "$a"
"$tmp/ppmctl" -server "$server" session create -predictor PPM-hyb >"$tmp/b.json"
b="$(sid "$tmp/b.json")"
"$tmp/ppmctl" -server "$server" session restore "$b" "$tmp/a.state" >/dev/null
"$tmp/ppmctl" -server "$server" session state -o "$tmp/b.state" "$b"
if ! cmp -s "$tmp/a.state" "$tmp/b.state"; then
    echo "session-smoke: restored session's state differs from the uploaded snapshot" >&2
    exit 1
fi

# 3. Identical continuation: the same run streamed through the original and
#    the restored session must produce byte-identical prediction streams
#    (ids blanked) and byte-identical final snapshots.
for s in "$a" "$b"; do
    "$tmp/ppmctl" -server "$server" session predict -workload eqn -events 400 "$s" \
        | sed 's/"id":"[^"]*"/"id":""/' >"$tmp/cont-$s.ndjson"
done
if ! diff -u "$tmp/cont-$a.ndjson" "$tmp/cont-$b.ndjson"; then
    echo "session-smoke: restored session's predictions diverge from the original's" >&2
    exit 1
fi
"$tmp/ppmctl" -server "$server" session state -o "$tmp/a2.state" "$a"
"$tmp/ppmctl" -server "$server" session state -o "$tmp/b2.state" "$b"
if ! cmp -s "$tmp/a2.state" "$tmp/b2.state"; then
    echo "session-smoke: final snapshots diverged after the continuation" >&2
    exit 1
fi

# 4. The stats surface counted the session traffic.
"$tmp/ppmctl" -server "$server" stats >"$tmp/stats.json"
for want in '"sessions_created":2' '"live_sessions":2' '"state_loads":1' '"state_saves":4'; do
    if ! grep -q "$want" "$tmp/stats.json"; then
        echo "session-smoke: /statsz missing $want:" >&2
        cat "$tmp/stats.json" >&2
        exit 1
    fi
done
if grep -q '"predict_records":0,' "$tmp/stats.json"; then
    echo "session-smoke: /statsz counted no streamed records" >&2
    exit 1
fi

# 5. Graceful shutdown with both sessions live.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "session-smoke: drain exited $rc (want 0):" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi
for want in draining stopped; do
    if ! grep -q "$want" "$tmp/served.log"; then
        echo "session-smoke: shutdown log missing \"$want\":" >&2
        cat "$tmp/served.log" >&2
        exit 1
    fi
done

echo "session-smoke: OK"
