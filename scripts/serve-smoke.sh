#!/bin/sh
# serve-smoke: end-to-end gate for the serving subsystem (make serve-smoke).
#
# Boots a real ppmserved on an ephemeral port, drives it with ppmctl:
#   1. submits a fig6 suite job and waits for it;
#   2. renders the streamed results and diffs them byte-for-byte against the
#      checked-in golden — which is literally the output of
#      `go run ./cmd/experiments -fig6 -events 2000`, so the service's
#      determinism contract (served == serial harness) is pinned end to end,
#      over a real socket, not just in-process;
#   3. checks the stats surface counted the job;
#   4. submits a larger job and immediately SIGTERMs the daemon: a clean
#      drain (exit 0, "draining"/"stopped" on stderr) must complete the
#      in-flight work inside the drain timeout.
set -eu

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
pid=""
cleanup() {
    if [ -n "$pid" ]; then kill "$pid" 2>/dev/null || true; fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/ppmserved" ./cmd/ppmserved
go build -o "$tmp/ppmctl" ./cmd/ppmctl

"$tmp/ppmserved" -addr 127.0.0.1:0 -drain-timeout 60s 2>"$tmp/served.log" &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^ppmserved: listening on //p' "$tmp/served.log")"
    if [ -n "$addr" ]; then break; fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: ppmserved died at startup:" >&2
        cat "$tmp/served.log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "serve-smoke: ppmserved did not report an address" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi
server="http://$addr"
echo "serve-smoke: ppmserved up at $server"

# 1. A fig6 suite job, streamed to completion.
"$tmp/ppmctl" -server "$server" submit -suite fig6 -events 2000 -wait >"$tmp/submit.ndjson"
id="$(head -n 1 "$tmp/submit.ndjson" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
if [ -z "$id" ]; then
    echo "serve-smoke: no job id in submit response" >&2
    head -n 1 "$tmp/submit.ndjson" >&2
    exit 1
fi

# 2. Rendered results must match the serial cmd/experiments output exactly.
"$tmp/ppmctl" -server "$server" results -render \
    -title "Figure 6: misprediction ratios (%), 2K-entry predictors" "$id" >"$tmp/got.txt"
if ! diff -u scripts/testdata/serve-smoke-fig6.golden "$tmp/got.txt"; then
    echo "serve-smoke: served matrix diverges from the golden (= serial harness output)" >&2
    exit 1
fi

# 3. The stats surface counted the job.
"$tmp/ppmctl" -server "$server" stats >"$tmp/stats.json"
if ! grep -q '"jobs_completed":1' "$tmp/stats.json"; then
    echo "serve-smoke: /statsz did not count the completed job:" >&2
    cat "$tmp/stats.json" >&2
    exit 1
fi

# 4. Graceful shutdown with a job in flight.
"$tmp/ppmctl" -server "$server" submit -suite fig6 -events 20000 >/dev/null
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: drain exited $rc (want 0):" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi
for want in draining stopped; do
    if ! grep -q "$want" "$tmp/served.log"; then
        echo "serve-smoke: shutdown log missing \"$want\":" >&2
        cat "$tmp/served.log" >&2
        exit 1
    fi
done

echo "serve-smoke: OK"
