// Package repro reproduces Kalamatianos & Kaeli, "Predicting Indirect
// Branches via Data Compression" (MICRO-31, 1998): a Prediction-by-
// Partial-Matching (PPM) indirect branch target predictor with dynamic
// per-branch selection of path-based correlation type, evaluated against
// every previously published indirect-branch predictor under a fixed
// 2K-entry hardware budget.
//
// The public API lives in the indirect subpackage; the experiment harness
// in cmd/experiments regenerates every table and figure of the paper's
// evaluation section. See README.md for the tour, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go (this package) regenerate the paper's
// tables and figures under `go test -bench`, one benchmark per artifact,
// and additionally measure raw predictor throughput.
package repro
