# Build and verification entry points. `make ci` is what .github/workflows/ci.yml
# runs; every target works offline with only the Go toolchain installed.

GO      ?= go
FUZZTIME ?= 30s

.PHONY: all build test race lint fmt vet ppmlint escapes-check escapes-update bench fuzz-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt -l prints offending files; fail loudly instead of silently succeeding.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The repository's own analyzers: determinism, hotpath, ifaceassert,
# ifacecall, panicdoc, pow2mask.
ppmlint:
	$(GO) run ./cmd/ppmlint ./...

# Compiler escape-budget gate over the hot-path packages: fails when any of
# them gains a heap escape beyond internal/lint/escapes.baseline.
escapes-check:
	$(GO) run ./cmd/escapegate

# Regenerate the escape baseline after an intentional change; commit the diff.
escapes-update:
	$(GO) run ./cmd/escapegate -update

# Run the predictor benchmarks with -benchmem and refresh the checked-in
# machine-readable snapshot.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_predictors.json

lint: fmt vet ppmlint

# A short fuzz of the trace reader keeps the parser honest against corpus
# drift without turning CI into a fuzzing farm.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReader -fuzztime=$(FUZZTIME) ./internal/trace

ci: build lint escapes-check race fuzz-smoke
