# Build and verification entry points. `make ci` is what .github/workflows/ci.yml
# runs; every target works offline with only the Go toolchain installed.

GO      ?= go
FUZZTIME ?= 30s

.PHONY: all build test race lint fmt vet ppmlint lint-concurrency lint-codegen escapes-check escapes-update bce-check bce-update inline-check inline-update gates bench bench-experiments bench-sessions bench-blocks parallel-smoke block-smoke serve-smoke session-smoke check-quick check check-ittage fuzz-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt -l prints offending files; fail loudly instead of silently succeeding.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The repository's own analyzers: ctxflow, determinism, falseshare,
# golifetime, hotpath, idxmask, ifaceassert, ifacecall, lockorder, mustclose,
# panicdoc, pow2mask.
ppmlint:
	$(GO) run ./cmd/ppmlint ./...

# Just the concurrency-discipline analyzers — goroutine lifetimes, context
# flow, lock ordering, unchecked cleanup errors — for a fast pre-commit pass
# and a named CI step. `make ppmlint` (via `make lint`) runs them too.
lint-concurrency:
	$(GO) run ./cmd/ppmlint -run golifetime,ctxflow,lockorder,mustclose ./...

# Compiler escape-budget gate over the hot-path packages: fails when any of
# them gains a heap escape beyond internal/lint/escapes.baseline.
escapes-check:
	$(GO) run ./cmd/escapegate

# Regenerate the escape baseline after an intentional change; commit the diff.
escapes-update:
	$(GO) run ./cmd/escapegate -update

# Bounds-check-elimination gate: fails when a hot-path file gains a surviving
# bounds check beyond internal/lint/bce.baseline. The idxmask analyzer (part
# of `make ppmlint`) points at the index derivation to fix.
bce-check:
	$(GO) run ./cmd/bcegate

# Regenerate the bounds-check baseline after an intentional change.
bce-update:
	$(GO) run ./cmd/bcegate -update

# Inlining-budget gate: every hot-set function must be inlinable or listed
# in internal/lint/inline.baseline with the compiler's cost and reason.
inline-check:
	$(GO) run ./cmd/inlinegate

# Regenerate the inlining baseline after an intentional change.
inline-update:
	$(GO) run ./cmd/inlinegate -update

# Just the codegen-adjacent analyzers — index-safety dataflow (idxmask) and
# atomic cache-line layout (falseshare) — for a fast pass over the predictor
# tables. `make ppmlint` (via `make lint`) runs them too.
lint-codegen:
	$(GO) run ./cmd/ppmlint -run idxmask,falseshare ./...

# All three compiler-diagnostic budget gates against their baselines.
gates: escapes-check bce-check inline-check

# Run the predictor benchmarks with -benchmem and refresh the checked-in
# machine-readable snapshot.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_predictors.json

# Benchmark the full experiment grid serial-without-cache vs parallel-with-
# cache vs the batched block engine, and refresh the checked-in snapshot
# (wall-clocks, derived speedups, cache traffic). The ns/op numbers reflect
# the host's core count.
bench-experiments:
	$(GO) run ./cmd/benchjson -experiments -out BENCH_experiments.json

# Benchmark the live-session loop (create + predict stream over real HTTP)
# and refresh the checked-in snapshot: sessions/s, serialized bytes per
# trained session, and the server's predict-call latency quantiles.
bench-sessions:
	$(GO) run ./cmd/benchjson -sessions -out BENCH_sessions.json

# Just the block-engine rows of the grid benchmark, printed to stdout: a
# quick local read on the single-core blocks-vs-serial speedup without
# rewriting the full snapshot (that is `make bench-experiments`).
bench-blocks:
	$(GO) run ./cmd/benchjson -experiments -bench '^BenchmarkExperiments/(serial-nocache|blocks-j1-cached)$$' -out -

# The parallel runner's correctness gate: byte-identical output across -j,
# single generation per trace, and the scheduler/cache under the race
# detector — including a short full-grid smoke at -j 4.
parallel-smoke:
	$(GO) test -run 'TestParallelDeterminism|TestDisabledCacheMatchesSerial' ./cmd/experiments
	$(GO) test -race ./internal/tracecache ./internal/sched
	$(GO) run -race ./cmd/experiments -all -events 2000 -j 4 -cachestats > /dev/null

# The block engine's correctness gate: the batched columnar path must render
# byte-identical reports to the record engine at every worker count and
# cache mode, stay allocation-free in steady state, and hold up under the
# race detector with concurrent block conversions — plus a short full-grid
# smoke through the default -blocks path.
block-smoke:
	$(GO) test -run 'TestBlockEngineMatchesRecordEngine' ./cmd/experiments
	$(GO) test -run 'TestBlockEngineZeroAllocSteadyState' ./internal/bench
	$(GO) test -race -run 'TestGetBlocks' ./internal/tracecache
	$(GO) run -race ./cmd/experiments -all -events 2000 -j 4 -cachestats > /dev/null

# End-to-end gate for the serving subsystem: boots a real ppmserved on an
# ephemeral port, runs a fig6 job through ppmctl, diffs the rendered matrix
# byte-for-byte against scripts/testdata/serve-smoke-fig6.golden (which is
# the serial `experiments -fig6 -events 2000` output), and SIGTERMs the
# daemon with a job in flight to prove the drain completes cleanly.
serve-smoke:
	sh scripts/serve-smoke.sh

# End-to-end gate for the live-session subsystem: boots a real ppmserved,
# trains a session over a predict stream, snapshots it, restores the bytes
# into a fresh session, and requires byte-identical continuation — NDJSON
# prediction streams and final snapshots both — then SIGTERMs the daemon
# with live sessions to prove the drain completes cleanly.
session-smoke:
	sh scripts/session-smoke.sh

lint: fmt vet ppmlint

# The correctness harness's bounded CI pass: regression-corpus replay, a
# differential hunt of every predictor family against its naive reference,
# the metamorphic identities (cache on/off, worker counts, served vs serial,
# split vs concat sessions, upload vs batch), and byte-offset fault sweeps
# over the trace decoder and the upload endpoint.
check-quick:
	$(GO) run ./cmd/ppmcheck -quick

# The long-running hunt for local use; scales the differential search far
# past the CI bound. Divergences are minimized and written into the corpus.
check:
	$(GO) run ./cmd/ppmcheck -seeds 200 -events 5000

# Focused hunt for the modern predictor family: ITTAGE's incrementally
# folded geometric-history state and the u-bit cascade, lock-stepped against
# their bit-by-bit reference oracles — differential, blocks-vs-records and
# snapshot-restore hunts all included via the shared family registry.
check-ittage:
	$(GO) run ./cmd/ppmcheck -families ITTAGE,Cascade-u -seeds 40 -events 2500

# Short fuzz slices keep the parsers honest without turning CI into a
# fuzzing farm: the IBT2 trace reader, and the snapshot codec (round-trip
# identity plus typed-error rejection of corrupted/truncated state).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReader -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzStateRoundTrip -fuzztime=$(FUZZTIME) ./internal/state

ci: build lint lint-concurrency lint-codegen gates race parallel-smoke block-smoke serve-smoke session-smoke check-quick fuzz-smoke
