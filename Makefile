# Build and verification entry points. `make ci` is what .github/workflows/ci.yml
# runs; every target works offline with only the Go toolchain installed.

GO      ?= go
FUZZTIME ?= 30s

.PHONY: all build test race lint fmt vet ppmlint fuzz-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt -l prints offending files; fail loudly instead of silently succeeding.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The repository's own analyzers: determinism, pow2mask, panicdoc, ifaceassert.
ppmlint:
	$(GO) run ./cmd/ppmlint ./...

lint: fmt vet ppmlint

# A short fuzz of the trace reader keeps the parser honest against corpus
# drift without turning CI into a fuzzing farm.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReader -fuzztime=$(FUZZTIME) ./internal/trace

ci: build lint race fuzz-smoke
