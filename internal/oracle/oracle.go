// Package oracle implements the idealized predictor used in the Section 5
// photon analysis: an unbounded table keyed by (branch address, complete
// PIB path history of a configurable length) that predicts the most recent
// target seen in that context. With a path length of 8 it achieves ~99.1%
// accuracy on photon in the paper, establishing the benchmark's inherent
// PIB predictability.
package oracle

import (
	"repro/internal/history"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// Oracle is an infinite-storage context predictor over full (unhashed) PIB
// path history.
type Oracle struct {
	name    string
	depth   int
	hist    *history.PHR
	table   map[uint64]uint64
	scratch []uint64
	pending uint64
}

// New creates an oracle using the given PIB path length.
func New(pathLength int) *Oracle {
	return &Oracle{
		name:    "Oracle-PIB",
		depth:   pathLength,
		hist:    history.New(history.IndirectBranches, pathLength, 0, 0),
		table:   make(map[uint64]uint64),
		scratch: make([]uint64, 0, pathLength),
	}
}

// Name implements predictor.IndirectPredictor.
func (o *Oracle) Name() string { return o.name }

// key hashes (pc, full path) into the context key. Full 64-bit targets are
// mixed in, so distinct contexts collide only with cryptographically small
// probability — an acceptable stand-in for infinite exact-match storage.
func (o *Oracle) key(pc uint64) uint64 {
	h := mix(pc ^ 0x9e3779b97f4a7c15)
	recent := o.hist.Recent(o.scratch[:0], o.depth)
	for _, t := range recent {
		h = mix(h ^ t)
	}
	// Distinguish warm-up lengths so a short history is its own context.
	return mix(h ^ uint64(len(recent)))
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Predict implements predictor.IndirectPredictor. The oracle is a
// measurement device, not a hardware model: its unbounded map lookups are
// exempt from the hot-path purity rules.
//
//ppm:coldpath measurement-only oracle: unbounded bookkeeping is not hardware
func (o *Oracle) Predict(pc uint64) (uint64, bool) {
	k := o.key(pc)
	o.pending = k
	t, ok := o.table[k]
	return t, ok
}

// Update implements predictor.IndirectPredictor.
//
//ppm:coldpath measurement-only oracle: unbounded bookkeeping is not hardware
func (o *Oracle) Update(_, target uint64) { o.table[o.pending] = target }

// Observe implements predictor.IndirectPredictor.
//
//ppm:coldpath measurement-only oracle: unbounded bookkeeping is not hardware
func (o *Oracle) Observe(r trace.Record) { o.hist.Observe(r) }

// Contexts returns the number of distinct (pc, path) contexts recorded.
func (o *Oracle) Contexts() int { return len(o.table) }

// Reset implements predictor.Resetter.
func (o *Oracle) Reset() {
	o.table = make(map[uint64]uint64)
	o.hist.Reset()
}

var (
	_ predictor.IndirectPredictor = (*Oracle)(nil)
	_ predictor.Resetter          = (*Oracle)(nil)
)
