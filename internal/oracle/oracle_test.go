package oracle

import (
	"testing"

	"repro/internal/trace"
)

func mtJmp(pc, target uint64) trace.Record {
	return trace.Record{PC: pc, Target: target, Class: trace.IndirectJmp, Taken: true, MT: true}
}

func TestOracleNailsDeterministicContexts(t *testing.T) {
	o := New(4)
	targets := []uint64{0x100, 0x200, 0x300, 0x400, 0x500}
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		want := targets[i%len(targets)]
		got, ok := o.Predict(0x1000)
		if i > len(targets)*2 {
			total++
			if ok && got == want {
				correct++
			}
		}
		o.Update(0x1000, want)
		o.Observe(mtJmp(0x1000, want))
	}
	if acc := float64(correct) / float64(total); acc != 1.0 {
		t.Errorf("oracle accuracy on a period-5 cycle = %.4f, want 1.0", acc)
	}
}

func TestOracleDistinguishesBranches(t *testing.T) {
	// Same history, different PCs: separate contexts.
	o := New(2)
	o.Observe(mtJmp(0x9000, 0x1111))
	o.Observe(mtJmp(0x9000, 0x2222))
	o.Predict(0xA000)
	o.Update(0xA000, 0xAAAA)
	o.Predict(0xB000)
	o.Update(0xB000, 0xBBBB)
	if got, ok := o.Predict(0xA000); !ok || got != 0xAAAA {
		t.Errorf("branch A context = (%#x,%v)", got, ok)
	}
	if got, ok := o.Predict(0xB000); !ok || got != 0xBBBB {
		t.Errorf("branch B context = (%#x,%v)", got, ok)
	}
}

func TestOracleUsesPathDepth(t *testing.T) {
	// Two contexts identical in the most recent target but differing two
	// targets back must be distinguished by a depth-2 oracle.
	o := New(2)
	run := func(older uint64, want uint64) (uint64, bool) {
		o.Observe(mtJmp(0x9000, older))
		o.Observe(mtJmp(0x9000, 0x5555))
		got, ok := o.Predict(0x1000)
		o.Update(0x1000, want)
		return got, ok
	}
	run(0x1111, 0xAAAA)
	run(0x2222, 0xBBBB)
	if got, ok := run(0x1111, 0xAAAA); !ok || got != 0xAAAA {
		t.Errorf("depth-2 context A = (%#x,%v), want 0xAAAA", got, ok)
	}
	if got, ok := run(0x2222, 0xBBBB); !ok || got != 0xBBBB {
		t.Errorf("depth-2 context B = (%#x,%v), want 0xBBBB", got, ok)
	}
}

func TestOracleContextsGrow(t *testing.T) {
	o := New(3)
	for i := 0; i < 50; i++ {
		o.Observe(mtJmp(0x9000, uint64(0x100+i*0x40)))
		o.Predict(0x1000)
		o.Update(0x1000, 0x42)
	}
	if o.Contexts() < 40 {
		t.Errorf("Contexts = %d after 50 distinct histories", o.Contexts())
	}
	o.Reset()
	if o.Contexts() != 0 {
		t.Error("contexts survived Reset")
	}
}

func TestOracleName(t *testing.T) {
	if New(8).Name() == "" {
		t.Error("empty name")
	}
}
