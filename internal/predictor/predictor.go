// Package predictor defines the interface every indirect-branch target
// predictor in this repository implements, plus the Branch Identification
// Unit (BIU) shared by the designs in Section 4 of the paper.
//
// Simulation protocol (enforced by internal/sim): for every committed branch
// record, the engine first calls Predict+Update if the record is a
// multi-target indirect branch, then calls Observe with the record so the
// predictor can advance its path history registers. Predictors must
// therefore train their tables in Update using the history state that
// existed at prediction time, and only shift new targets into their
// histories in Observe — the same ordering the hardware would see.
package predictor

import "repro/internal/trace"

// IndirectPredictor predicts the targets of multi-target indirect branches.
// Implementations are not safe for concurrent use; each simulated core owns
// its own instance.
type IndirectPredictor interface {
	// Name identifies the configuration (e.g. "PPM-hyb", "BTB2b").
	Name() string
	// Predict returns the predicted target for the indirect branch at pc,
	// or ok=false when the predictor has no prediction (counted as a
	// misprediction by the harness, as in the paper).
	Predict(pc uint64) (target uint64, ok bool)
	// Update resolves the most recent Predict call for pc with the actual
	// target and trains the predictor. Update is called exactly once per
	// Predict, with the same pc.
	Update(pc, target uint64)
	// Observe advances path history and any bookkeeping with a committed
	// branch record of any class. For a record that was just predicted,
	// Observe is called after Update.
	Observe(r trace.Record)
}

// Resetter is implemented by predictors that can return to power-up state.
type Resetter interface{ Reset() }

// Sized is implemented by predictors that can report their storage budget.
type Sized interface {
	// Entries returns the total number of target-holding table entries,
	// the budget metric the paper holds at 2K for every design.
	Entries() int
}

// Costed is implemented by predictors that can report their storage cost
// in bits, under the repository's uniform accounting convention: stored
// targets cost 30 bits (word-aligned 32-bit address), valid bits 1,
// up/down counters 2, tags their actual width, history registers their
// register width. The BIU is excluded (all designs share branch
// identification, and the paper models it as unbounded).
type Costed interface {
	Bits() int
}
