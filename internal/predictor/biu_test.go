package predictor

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/trace"
)

func TestBIUEnsureInitialState(t *testing.T) {
	b := NewBIU(counter.Normal, 0)
	e := b.Ensure(0x1000)
	if e == nil {
		t.Fatal("Ensure returned nil")
	}
	if e.Sel.Selected() != counter.PIB {
		t.Error("fresh BIU entry must select PIB (Strongly PIB init)")
	}
	if e.MT {
		t.Error("fresh BIU entry should not be MT")
	}
	if b.Ensure(0x1000) != e {
		t.Error("Ensure is not idempotent")
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}

func TestBIUObserve(t *testing.T) {
	b := NewBIU(counter.Normal, 0)
	b.Observe(trace.Record{PC: 0x2000, Class: trace.CondDirect})
	if b.Lookup(0x2000) != nil {
		t.Error("conditional branch allocated a BIU entry")
	}
	b.Observe(trace.Record{PC: 0x3000, Class: trace.IndirectJmp, MT: true})
	e := b.Lookup(0x3000)
	if e == nil || !e.MT {
		t.Fatal("MT indirect branch not recorded in the BIU")
	}
	// The MT bit is sticky: a later ST-looking execution does not clear it.
	b.Observe(trace.Record{PC: 0x3000, Class: trace.IndirectJmp, MT: false})
	if !b.Lookup(0x3000).MT {
		t.Error("MT annotation bit was cleared")
	}
}

func TestBIUBoundedEviction(t *testing.T) {
	b := NewBIU(counter.Normal, 4)
	for pc := uint64(0); pc < 10; pc++ {
		b.Ensure(pc * 4)
	}
	if b.Len() != 4 {
		t.Errorf("bounded BIU Len = %d, want 4", b.Len())
	}
	if b.Evictions() != 6 {
		t.Errorf("Evictions = %d, want 6", b.Evictions())
	}
	// FIFO: the oldest six are gone, the newest four remain.
	for pc := uint64(0); pc < 6; pc++ {
		if b.Lookup(pc*4) != nil {
			t.Errorf("evicted entry %#x still present", pc*4)
		}
	}
	for pc := uint64(6); pc < 10; pc++ {
		if b.Lookup(pc*4) == nil {
			t.Errorf("recent entry %#x missing", pc*4)
		}
	}
}

func TestBIUReEnsureEvicted(t *testing.T) {
	b := NewBIU(counter.Normal, 2)
	b.Ensure(0x10).MT = true
	b.Ensure(0x20)
	b.Ensure(0x30) // evicts 0x10
	if b.Lookup(0x10) != nil {
		t.Fatal("0x10 should have been evicted")
	}
	// Re-Ensure of an evicted PC allocates a fresh entry: the sticky MT bit
	// and any counter training died with the evicted entry, as they would in
	// a finite hardware table.
	e := b.Ensure(0x10)
	if e.MT {
		t.Error("re-Ensured entry kept state from before its eviction")
	}
	if e.Sel.Selected() != counter.PIB {
		t.Error("re-Ensured entry must restart at Strongly PIB")
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
	// The re-inserted PC joins the back of the FIFO: 0x20 is now the oldest
	// and is the next victim.
	if b.Lookup(0x20) != nil {
		t.Error("re-Ensure did not evict the FIFO-oldest entry 0x20")
	}
	if b.Lookup(0x30) == nil {
		t.Error("0x30 evicted out of FIFO order")
	}
}

func TestBIUEvictionCounterAccuracy(t *testing.T) {
	b := NewBIU(counter.Normal, 3)
	for pc := uint64(1); pc <= 3; pc++ {
		b.Ensure(pc << 4)
	}
	if got := b.Evictions(); got != 0 {
		t.Fatalf("Evictions = %d before the table filled, want 0", got)
	}
	// Re-Ensure of live entries must not count as eviction traffic.
	for pc := uint64(1); pc <= 3; pc++ {
		b.Ensure(pc << 4)
	}
	if got := b.Evictions(); got != 0 {
		t.Errorf("Evictions = %d after re-Ensure of live entries, want 0", got)
	}
	// Each new distinct PC beyond the limit displaces exactly one entry.
	for pc := uint64(4); pc <= 8; pc++ {
		b.Ensure(pc << 4)
	}
	if got := b.Evictions(); got != 5 {
		t.Errorf("Evictions = %d, want 5", got)
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
}

func TestBIUUnboundedKeepsInsertionOrder(t *testing.T) {
	b := NewBIU(counter.Normal, 0)
	for pc := uint64(0); pc < 100; pc++ {
		b.Ensure(pc * 4)
	}
	if b.Len() != 100 {
		t.Errorf("Len = %d, want 100", b.Len())
	}
	if b.Evictions() != 0 {
		t.Errorf("unbounded BIU reported %d evictions", b.Evictions())
	}
	// The order slice records insertion order even when unbounded: it is
	// the deterministic serialization order for state snapshots (map
	// iteration order must never reach the wire), covering exactly the
	// live entries.
	if len(b.order) != b.Len() {
		t.Errorf("order tracks %d slots for %d live entries", len(b.order), b.Len())
	}
	for i, pc := range b.order {
		if pc != uint64(i)*4 {
			t.Fatalf("order[%d] = %#x, want %#x", i, pc, uint64(i)*4)
		}
	}
}

func TestBIUReset(t *testing.T) {
	b := NewBIU(counter.PIBBiased, 2)
	b.Ensure(4)
	b.Ensure(8)
	b.Ensure(12)
	b.Reset()
	if b.Len() != 0 || b.Evictions() != 0 {
		t.Error("Reset did not clear state")
	}
	if b.Lookup(4) != nil {
		t.Error("entry survived Reset")
	}
}

func TestBIUModePropagates(t *testing.T) {
	// Three consecutive mispredictions from the initial Strongly-PIB state
	// end at Strongly PIB under the biased machine (3->2->1->3) but at
	// Weakly PIB under the normal machine (3->2->1->2).
	biased := NewBIU(counter.PIBBiased, 0).Ensure(0x10)
	normal := NewBIU(counter.Normal, 0).Ensure(0x10)
	for i := 0; i < 3; i++ {
		biased.Sel.Update(false)
		normal.Sel.Update(false)
	}
	if biased.Sel.State() != counter.StronglyPIB {
		t.Errorf("biased BIU counter state = %s, want Strongly PIB",
			counter.StateName(biased.Sel.State()))
	}
	if normal.Sel.State() != counter.WeaklyPIB {
		t.Errorf("normal BIU counter state = %s, want Weakly PIB",
			counter.StateName(normal.Sel.State()))
	}
}
