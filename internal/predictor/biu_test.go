package predictor

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/trace"
)

func TestBIUEnsureInitialState(t *testing.T) {
	b := NewBIU(counter.Normal, 0)
	e := b.Ensure(0x1000)
	if e == nil {
		t.Fatal("Ensure returned nil")
	}
	if e.Sel.Selected() != counter.PIB {
		t.Error("fresh BIU entry must select PIB (Strongly PIB init)")
	}
	if e.MT {
		t.Error("fresh BIU entry should not be MT")
	}
	if b.Ensure(0x1000) != e {
		t.Error("Ensure is not idempotent")
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}

func TestBIUObserve(t *testing.T) {
	b := NewBIU(counter.Normal, 0)
	b.Observe(trace.Record{PC: 0x2000, Class: trace.CondDirect})
	if b.Lookup(0x2000) != nil {
		t.Error("conditional branch allocated a BIU entry")
	}
	b.Observe(trace.Record{PC: 0x3000, Class: trace.IndirectJmp, MT: true})
	e := b.Lookup(0x3000)
	if e == nil || !e.MT {
		t.Fatal("MT indirect branch not recorded in the BIU")
	}
	// The MT bit is sticky: a later ST-looking execution does not clear it.
	b.Observe(trace.Record{PC: 0x3000, Class: trace.IndirectJmp, MT: false})
	if !b.Lookup(0x3000).MT {
		t.Error("MT annotation bit was cleared")
	}
}

func TestBIUBoundedEviction(t *testing.T) {
	b := NewBIU(counter.Normal, 4)
	for pc := uint64(0); pc < 10; pc++ {
		b.Ensure(pc * 4)
	}
	if b.Len() != 4 {
		t.Errorf("bounded BIU Len = %d, want 4", b.Len())
	}
	if b.Evictions() != 6 {
		t.Errorf("Evictions = %d, want 6", b.Evictions())
	}
	// FIFO: the oldest six are gone, the newest four remain.
	for pc := uint64(0); pc < 6; pc++ {
		if b.Lookup(pc*4) != nil {
			t.Errorf("evicted entry %#x still present", pc*4)
		}
	}
	for pc := uint64(6); pc < 10; pc++ {
		if b.Lookup(pc*4) == nil {
			t.Errorf("recent entry %#x missing", pc*4)
		}
	}
}

func TestBIUReset(t *testing.T) {
	b := NewBIU(counter.PIBBiased, 2)
	b.Ensure(4)
	b.Ensure(8)
	b.Ensure(12)
	b.Reset()
	if b.Len() != 0 || b.Evictions() != 0 {
		t.Error("Reset did not clear state")
	}
	if b.Lookup(4) != nil {
		t.Error("entry survived Reset")
	}
}

func TestBIUModePropagates(t *testing.T) {
	// Three consecutive mispredictions from the initial Strongly-PIB state
	// end at Strongly PIB under the biased machine (3->2->1->3) but at
	// Weakly PIB under the normal machine (3->2->1->2).
	biased := NewBIU(counter.PIBBiased, 0).Ensure(0x10)
	normal := NewBIU(counter.Normal, 0).Ensure(0x10)
	for i := 0; i < 3; i++ {
		biased.Sel.Update(false)
		normal.Sel.Update(false)
	}
	if biased.Sel.State() != counter.StronglyPIB {
		t.Errorf("biased BIU counter state = %s, want Strongly PIB",
			counter.StateName(biased.Sel.State()))
	}
	if normal.Sel.State() != counter.WeaklyPIB {
		t.Errorf("normal BIU counter state = %s, want Weakly PIB",
			counter.StateName(normal.Sel.State()))
	}
}
