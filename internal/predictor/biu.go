package predictor

import (
	"repro/internal/counter"
	"repro/internal/trace"
)

// BIU models the Branch Identification Unit of Section 4: a structure
// indexed by branch address that identifies indirect branches, records the
// compiler/linker ST/MT annotation bit, and (for the hybrid PPM predictor)
// holds the per-branch 2-bit correlation selection counter.
//
// The paper assumes an infinite BIU; Limit=0 reproduces that. A positive
// Limit bounds the number of live entries with FIFO eviction, enabling the
// finite-BIU sensitivity study the paper lists as future work.
type BIU struct {
	mode    counter.SelectionMode
	limit   int
	entries map[uint64]*BIUEntry
	// order is the insertion order of live entries: the FIFO eviction queue
	// when bounded, and the deterministic serialization order always (map
	// iteration order must never reach a snapshot).
	order []uint64

	evictions uint64
	// gen distinguishes entries written by the latest Restore from stale
	// survivors of the previous state, so restore can reuse allocated
	// entries in place and delete leftovers without any scratch storage.
	gen uint32
}

// BIUEntry is the per-branch state held by the BIU.
type BIUEntry struct {
	// MT records the multi-target annotation bit.
	MT bool
	// Sel is the correlation selection counter (Figure 5).
	Sel counter.Selection

	gen uint32 // restore generation; see BIU.gen
}

// NewBIU constructs a BIU whose selection counters follow the given Figure 5
// state machine. limit bounds the number of entries (0 = unbounded).
func NewBIU(mode counter.SelectionMode, limit int) *BIU {
	return &BIU{
		mode:    mode,
		limit:   limit,
		entries: make(map[uint64]*BIUEntry),
	}
}

// Lookup returns the entry for pc, or nil if the branch has not been seen.
//
//ppm:hotpath per-branch BIU probe on the lookup path
func (b *BIU) Lookup(pc uint64) *BIUEntry { return b.entries[pc] }

// Ensure returns the entry for pc, allocating one (initialized to
// Strongly-PIB, per the paper) on first use. The allocating branch runs
// once per static branch — first touch, like a hardware table fill — so it
// is cold by construction; steady state takes the map-hit early return.
//
//ppm:hotpath per-branch BIU probe on the lookup path
func (b *BIU) Ensure(pc uint64) *BIUEntry {
	if e, ok := b.entries[pc]; ok {
		return e
	}
	return b.ensureSlow(pc) //lint:coldpath — first touch of a new static branch
}

// ensureSlow allocates the entry for an unseen branch and applies the FIFO
// eviction of a bounded BIU. Outlined from Ensure so the steady-state map
// hit stays under the compiler's inlining budget.
//
//ppm:coldpath first-touch allocation and eviction run once per static branch
//go:noinline
func (b *BIU) ensureSlow(pc uint64) *BIUEntry {
	e := &BIUEntry{Sel: counter.NewSelection(b.mode), gen: b.gen}
	b.entries[pc] = e
	b.order = append(b.order, pc)
	if b.limit > 0 && len(b.entries) > b.limit {
		victim := b.order[0]
		b.order = b.order[1:]
		delete(b.entries, victim)
		b.evictions++
	}
	return e
}

// Observe records the annotation bit carried by a committed branch record.
//
//ppm:hotpath per-branch BIU probe on the lookup path
func (b *BIU) Observe(r trace.Record) {
	if !r.Class.Indirect() {
		return
	}
	e := b.Ensure(r.PC)
	if r.MT {
		e.MT = true
	}
}

// ObserveIndirect is the batch-path form of Observe: the caller has already
// established from a block's meta lane that the record is an indirect
// branch, so the class check and the trace.Record assembly are hoisted out.
// Equivalent to Observe on an indirect record with the given pc and MT bit.
//
//ppm:hotpath per-branch BIU probe on the lookup path
func (b *BIU) ObserveIndirect(pc uint64, mt bool) {
	e := b.Ensure(pc)
	if mt {
		e.MT = true
	}
}

// Len returns the number of live entries.
func (b *BIU) Len() int { return len(b.entries) }

// Evictions returns how many entries a bounded BIU has displaced.
func (b *BIU) Evictions() uint64 { return b.evictions }

// Reset clears the BIU to power-up state.
func (b *BIU) Reset() {
	b.entries = make(map[uint64]*BIUEntry)
	b.order = b.order[:0]
	b.evictions = 0
}
