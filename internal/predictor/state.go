package predictor

import (
	"repro/internal/counter"
	"repro/internal/state"
)

// SaveState appends the BIU contents as a snapshot section. Entries are
// written in insertion order — the semantic order of the FIFO eviction
// queue — never map order, so repeated snapshots of the same state are
// byte-identical.
func (b *BIU) SaveState(w *state.Writer) {
	w.Begin(state.SecBIU)
	w.U8(uint8(b.mode))
	w.U64(uint64(b.limit))
	w.U64(b.evictions)
	w.U64(uint64(len(b.order)))
	for _, pc := range b.order {
		e := b.entries[pc]
		w.U64(pc)
		w.Bool(e.MT)
		w.U8(e.Sel.State())
	}
	w.End()
}

// LoadState rebuilds the BIU in place from a SaveState section. Entries
// already present for a snapshot pc are overwritten where they sit; stale
// survivors of the previous state are deleted by generation mark, so a
// steady-state restore into a same-population BIU does not allocate.
func (b *BIU) LoadState(r *state.Reader) error {
	if err := r.Begin(state.SecBIU); err != nil {
		return err
	}
	mode := counter.SelectionMode(r.U8())
	limit := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if mode != b.mode || limit != uint64(b.limit) {
		return state.Mismatchf("BIU %v/limit %d vs snapshot %v/limit %d", b.mode, b.limit, mode, limit)
	}
	evictions := r.U64()
	n := r.U64()
	if b.limit > 0 && n > uint64(b.limit) {
		return state.Corruptf("BIU carries %d entries over limit %d", n, b.limit)
	}
	b.gen++
	b.order = b.order[:0]
	for i := uint64(0); i < n; i++ {
		pc := r.U64()
		mt := r.Bool()
		raw := r.U8()
		if err := r.Err(); err != nil {
			return err
		}
		sel, ok := counter.SelectionFromState(raw, b.mode)
		if !ok {
			return state.Corruptf("BIU selection state %d out of range", raw)
		}
		e, exists := b.entries[pc]
		if exists {
			if e.gen == b.gen {
				return state.Corruptf("BIU pc %#x duplicated in snapshot", pc)
			}
		} else {
			e = &BIUEntry{} //lint:coldpath — only when the live population differs from the snapshot's
			b.entries[pc] = e
		}
		e.MT = mt
		e.Sel = sel
		e.gen = b.gen
		b.order = append(b.order, pc)
	}
	if err := r.End(); err != nil {
		return err
	}
	for pc, e := range b.entries {
		if e.gen != b.gen {
			delete(b.entries, pc)
		}
	}
	b.evictions = evictions
	return nil
}
