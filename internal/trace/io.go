package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic   [4]byte  "IBT2" (Indirect Branch Trace, version 2)
//	records *
//
// Each record is delta/varint encoded against the previous record to keep
// traces compact:
//
//	flags   byte    bits 0-2 class, bit 3 taken, bit 4 MT, bit 5 value
//	pcΔ     zigzag varint (PC - prevPC)
//	tgtΔ    zigzag varint (Target - PC)
//	gap     uvarint
//	value   uvarint (present only when bit 5 set)
const magic = "IBT2"

// ErrBadMagic is returned by NewReader when the stream does not begin with
// the trace file magic.
var ErrBadMagic = errors.New("trace: bad magic (not an IBT2 trace)")

// ErrTruncated is returned by Read when the stream ends in the middle of a
// record — after its flags byte but before its last varint field. It wraps
// io.ErrUnexpectedEOF (errors.Is holds for both), so callers that already
// handle ErrUnexpectedEOF keep working, while callers that need to
// distinguish "client sent a cut-off trace" (a 400) from an internal decode
// failure (a 500) can match this sentinel directly.
var ErrTruncated = fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)

const (
	flagClassMask = 0x07
	flagTaken     = 0x08
	flagMT        = 0x10
	flagValue     = 0x20
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// Writer encodes Records to an underlying io.Writer in IBT2 format.
// Writers buffer internally; call Flush (or Close via the caller's file)
// before the trace is read back.
type Writer struct {
	w      *bufio.Writer
	prevPC uint64
	count  uint64
	buf    [4 * binary.MaxVarintLen64]byte
	err    error
}

// NewWriter creates a Writer and emits the file header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record to the trace.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	if !r.Class.Valid() {
		return fmt.Errorf("trace: invalid class %d", r.Class)
	}
	flags := byte(r.Class) & flagClassMask
	if r.Taken {
		flags |= flagTaken
	}
	if r.MT {
		flags |= flagMT
	}
	if r.Value != 0 {
		flags |= flagValue
	}
	if err := w.w.WriteByte(flags); err != nil {
		w.err = err
		return err
	}
	n := binary.PutUvarint(w.buf[:], zigzag(int64(r.PC-w.prevPC)))
	n += binary.PutUvarint(w.buf[n:], zigzag(int64(r.Target-r.PC)))
	n += binary.PutUvarint(w.buf[n:], uint64(r.Gap))
	if r.Value != 0 {
		n += binary.PutUvarint(w.buf[n:], uint64(r.Value))
	}
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		w.err = err
		return err
	}
	w.prevPC = r.PC
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes Records from an IBT2 stream.
type Reader struct {
	r      *bufio.Reader
	prevPC uint64
	count  uint64
	hint   int
}

// NewReader validates the header and returns a Reader positioned at the
// first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr) != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Reset repoints the Reader at a new stream, reusing the internal buffered
// reader and its 64 KiB buffer instead of reallocating them. The header is
// revalidated and the delta-decode state rewound, so a Reset reader behaves
// exactly like one from NewReader. Callers that drain many traces in a loop
// (the block cache's decode path, benchmarks) Reset one Reader rather than
// paying a buffer allocation per trace.
func (r *Reader) Reset(src io.Reader) error {
	r.r.Reset(src)
	r.prevPC, r.count, r.hint = 0, 0, 0
	hdr, err := r.r.Peek(len(magic))
	if err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr) != magic {
		return ErrBadMagic
	}
	r.r.Discard(len(magic))
	return nil
}

// uvarint decodes one unsigned varint from the buffered stream. Equivalent
// to binary.ReadUvarint(r.r) but calls the concrete *bufio.Reader directly:
// the stdlib helper takes an io.ByteReader, which costs an interface
// dispatch per byte on the hottest loop in the decode path.
//
//ppm:hotpath per-field varint decode under Read
func (r *Reader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := r.r.ReadByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if shift >= 64 || (shift == 63 && b > 1) {
				return 0, errVarintOverflow //lint:coldpath — corrupt stream
			}
			return v | uint64(b)<<shift, nil
		}
		if shift >= 64 {
			return 0, errVarintOverflow //lint:coldpath — corrupt stream
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// errVarintOverflow mirrors the stdlib's binary.ReadUvarint overflow error.
var errVarintOverflow = errors.New("binary: varint overflows a 64-bit integer")

// Read returns the next record, or io.EOF at end of trace.
func (r *Reader) Read() (Record, error) {
	flags, err := r.r.ReadByte()
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Record{}, err
	}
	pcd, err := r.uvarint()
	if err != nil {
		return Record{}, truncated(err)
	}
	tgtd, err := r.uvarint()
	if err != nil {
		return Record{}, truncated(err)
	}
	gap, err := r.uvarint()
	if err != nil {
		return Record{}, truncated(err)
	}
	rec := Record{
		Class: Class(flags & flagClassMask),
		Taken: flags&flagTaken != 0,
		MT:    flags&flagMT != 0,
		Gap:   uint32(gap),
	}
	if flags&flagValue != 0 {
		v, err := r.uvarint()
		if err != nil {
			return Record{}, truncated(err)
		}
		rec.Value = uint32(v)
	}
	rec.PC = r.prevPC + uint64(unzigzag(pcd))
	rec.Target = rec.PC + uint64(unzigzag(tgtd))
	if !rec.Class.Valid() {
		return Record{}, fmt.Errorf("trace: corrupt record: invalid class %d", flags&flagClassMask)
	}
	r.prevPC = rec.PC
	r.count++
	return rec, nil
}

// Count returns the number of records read so far.
func (r *Reader) Count() uint64 { return r.count }

// truncated maps an end-of-stream error hit mid-record to ErrTruncated;
// genuine I/O errors pass through untouched.
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}

// SetSizeHint tells the reader how many records remain in the stream, when
// the caller knows (a Writer.Count from the producing side, a record count
// carried out of band). ReadAll preallocates its result to the hint, so an
// accurate hint makes draining the trace reallocation-free. The hint is
// advisory and untrusted: a hint may arrive from the far side of a network
// boundary, so ReadAll caps the upfront allocation no matter how large the
// hint claims the stream is.
func (r *Reader) SetSizeHint(n int) {
	if n > 0 {
		r.hint = n
	}
}

// maxReadAllPrealloc caps the initial ReadAll allocation, in records. A
// size hint is a claim, not a measurement — an adversarial or corrupt hint
// of billions of records must not translate into an out-of-memory upfront
// allocation for a three-record stream. Streams genuinely longer than the
// cap grow normally from there (amortized append), so honest hints beyond
// the cap lose only the reallocation-free guarantee, never data.
const maxReadAllPrealloc = 1 << 20

// ReadAll drains the reader into a slice, preallocated from the size hint
// when one was set (capped at maxReadAllPrealloc records). Intended for
// tests and moderate trace sizes; large traces should be streamed with
// Read.
func (r *Reader) ReadAll() ([]Record, error) {
	capacity := r.hint
	if capacity <= 0 {
		capacity = 1024
	}
	if capacity > maxReadAllPrealloc {
		capacity = maxReadAllPrealloc
	}
	recs := make([]Record, 0, capacity)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
