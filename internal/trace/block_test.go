package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

// blockRecords builds a stream long enough to span several small blocks,
// mixing every class, ST and MT indirect branches, and a late switch value
// so the lazy Value lane's back-fill path runs.
func blockRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		r := Record{PC: 0x120000000 + uint64(i)*4, Gap: uint32(i % 7)}
		switch i % 9 {
		case 0:
			r.Class, r.Taken, r.MT = IndirectJmp, true, true
			r.Target = 0x140000000 + uint64(i%5)*16
			if i%18 == 0 {
				r.Value = uint32(i%5) + 1
			}
		case 1:
			r.Class, r.Taken = IndirectJsr, true
			r.Target = 0x150000000
		case 2:
			r.Class, r.Taken, r.MT = IndirectJsr, true, true
			r.Target = 0x150000000 + uint64(i%3)*32
		case 3:
			r.Class, r.Taken = DirectCall, true
			r.Target = 0x160000000
		case 4:
			r.Class, r.Taken = Return, true
			r.Target = 0x120000000 + uint64(i)*4
		default:
			r.Class = CondDirect
			r.Taken = i%2 == 0
			if r.Taken {
				r.Target = r.PC + 0x80
			} else {
				r.Target = r.PC + 4
			}
		}
		recs[i] = r
	}
	return recs
}

func TestBlocksRoundTrip(t *testing.T) {
	recs := blockRecords(1000)
	blks := BlocksSized(recs, 64)
	if want := (1000 + 63) / 64; len(blks) != want {
		t.Fatalf("got %d blocks, want %d", len(blks), want)
	}
	got := BlocksRecords(blks)
	if len(got) != len(recs) {
		t.Fatalf("flattened %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestBlocksDerivedLanes(t *testing.T) {
	recs := blockRecords(500)
	for bi, b := range BlocksSized(recs, 128) {
		var mt, pib []int32
		var gaps uint64
		for i := 0; i < b.Len(); i++ {
			r := b.Record(i)
			gaps += uint64(r.Gap)
			if r.PIBStream() {
				pib = append(pib, int32(i))
				if r.MT {
					mt = append(mt, int32(i))
				}
			}
		}
		if gaps != b.GapSum {
			t.Errorf("block %d: GapSum = %d, want %d", bi, b.GapSum, gaps)
		}
		if len(mt) != len(b.MTIdx) || len(pib) != len(b.PIBIdx) {
			t.Fatalf("block %d: index lane lengths MT=%d/%d PIB=%d/%d",
				bi, len(b.MTIdx), len(mt), len(b.PIBIdx), len(pib))
		}
		for i := range mt {
			if b.MTIdx[i] != mt[i] {
				t.Errorf("block %d: MTIdx[%d] = %d, want %d", bi, i, b.MTIdx[i], mt[i])
			}
		}
		for i := range pib {
			if b.PIBIdx[i] != pib[i] {
				t.Errorf("block %d: PIBIdx[%d] = %d, want %d", bi, i, b.PIBIdx[i], pib[i])
			}
		}
	}
}

func TestBlocksValueLaneLazy(t *testing.T) {
	noValues := Blocks([]Record{
		{Class: CondDirect, PC: 4, Target: 8, Taken: true},
		{Class: IndirectJmp, PC: 12, Target: 0x100, Taken: true, MT: true},
	})
	if noValues[0].Value != nil {
		t.Error("Value lane materialized for a value-free block")
	}
	// A value arriving mid-block must back-fill zeros for earlier records.
	recs := []Record{
		{Class: CondDirect, PC: 4, Target: 8, Taken: true},
		{Class: IndirectJmp, PC: 12, Target: 0x100, Taken: true, MT: true, Value: 3},
		{Class: CondDirect, PC: 16, Target: 20},
	}
	b := Blocks(recs)[0]
	if b.Value == nil {
		t.Fatal("Value lane missing despite a value-carrying record")
	}
	for i, want := range []uint32{0, 3, 0} {
		if got := b.Record(i).Value; got != want {
			t.Errorf("record %d value = %d, want %d", i, got, want)
		}
	}
}

func TestBlocksSizedPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BlocksSized(recs, 0) did not panic")
		}
	}()
	BlocksSized(blockRecords(4), 0)
}

func TestBlockBytesColumnarModel(t *testing.T) {
	recs := blockRecords(100)
	b := Blocks(recs)[0]
	// Fixed lanes are preallocated to the build size; index lanes grow.
	want := int64(cap(b.PC))*8 + int64(cap(b.Target))*8 + int64(cap(b.Meta)) +
		int64(cap(b.Gap))*4 + int64(cap(b.Value))*4 +
		int64(cap(b.MTIdx))*4 + int64(cap(b.PIBIdx))*4
	if got := b.Bytes(); got != want {
		t.Errorf("Bytes() = %d, want %d", got, want)
	}
	blks := Blocks(recs)
	var sum int64
	for i := range blks {
		sum += blks[i].Bytes()
	}
	if got := BlocksBytes(blks); got != sum+int64(cap(blks))*blockHeaderBytes {
		t.Errorf("BlocksBytes = %d, want lanes %d plus %d headers of %d bytes",
			got, sum, cap(blks), blockHeaderBytes)
	}
}

func TestReadBlocksMatchesReadAll(t *testing.T) {
	recs := blockRecords(10_000) // > 2 full BlockCap blocks plus a remainder
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	blks, err := rd.ReadBlocks()
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blks {
		if i < len(blks)-1 && b.Len() != BlockCap {
			t.Errorf("block %d holds %d records, want BlockCap=%d", i, b.Len(), BlockCap)
		}
	}
	got := BlocksRecords(blks)
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestReadBlocksTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, r := range blockRecords(10) {
		_ = w.Write(r)
	}
	_ = w.Flush()
	data := buf.Bytes()

	rd, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	blks, err := rd.ReadBlocks()
	if err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	n := 0
	for i := range blks {
		n += blks[i].Len()
	}
	if n != 9 {
		t.Errorf("salvaged %d records from the truncated stream, want 9", n)
	}
}

func TestBlocksRoundTripProperty(t *testing.T) {
	f := func(pcs, tgts []uint64, classes []uint8, gaps []uint32, blockCap uint8) bool {
		n := len(pcs)
		for _, l := range []int{len(tgts), len(classes), len(gaps)} {
			if l < n {
				n = l
			}
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				PC:     pcs[i],
				Target: tgts[i],
				Class:  Class(classes[i] % 7),
				Taken:  classes[i]%2 == 0,
				MT:     classes[i]%3 == 0,
				Gap:    gaps[i],
				Value:  uint32(classes[i]) % 5,
			}
		}
		blks := BlocksSized(recs, int(blockCap%32)+1)
		got := BlocksRecords(blks)
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
