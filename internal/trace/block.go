package trace

import (
	"io"
	"unsafe"
)

// Block is the struct-of-arrays form of a run of consecutive Records: one
// parallel slice ("lane") per field, plus precomputed index lanes over the
// branch classes the simulation engine dispatches on. Blocks exist to make
// re-simulation cheap: the experiment grid sweeps the same traces through
// many predictor configurations, and the columnar form lets the engine hand
// a whole block to one predictor at a time — hoisting interface dispatch
// and per-record bookkeeping out of the record loop — while batch fast
// paths that only act on indirect branches walk the index lanes and skip
// the conditional-branch fabric that dominates the stream.
//
// Blocks are built once (from a []Record or straight off a Reader) and then
// shared: every field, including the lanes, MUST be treated as immutable by
// consumers. The derived lanes (MTIdx, PIBIdx, GapSum) are maintained by
// the builders; mutating a data lane without rebuilding them desynchronizes
// the block.
type Block struct {
	// PC, Target, Meta, Gap and Value are the per-record field lanes; all
	// have the same length. Meta packs Class, Taken and MT into one byte
	// (see the Meta* constants, which mirror the low bits of the IBT2
	// flags byte).
	PC     []uint64
	Target []uint64
	Meta   []uint8
	Gap    []uint32
	// Value is nil when no record in the block carries a switch value,
	// the common case; otherwise it has the same length as Meta.
	Value []uint32

	// MTIdx lists, in stream order, the positions of multi-target
	// indirect jmp/jsr records (Record.MTIndirect) — the records
	// predictors predict and train on. Predictors whose history streams
	// ignore everything else (BTB, Dual-path, Cascade) walk only this
	// lane.
	MTIdx []int32
	// PIBIdx lists, in stream order, the positions of all indirect
	// jmp/jsr records (Record.PIBStream), a superset of MTIdx — the
	// stream PIB path history registers record (GAp, TC-PIB).
	PIBIdx []int32
	// GapSum is the sum of the Gap lane, precomputed so the engine can
	// account reconstructed instruction counts in O(1) per block.
	GapSum uint64
}

// BlockCap is the records-per-block capacity used by the builders: large
// enough to amortize per-block setup to noise, small enough that one
// block's lanes stay cache-resident while several predictors replay it.
const BlockCap = 4096

// Meta lane bit layout. The low five bits coincide with the IBT2 flags
// byte (class, taken, MT); the value-present wire bit is not stored — a
// non-nil Value lane carries that information.
const (
	MetaClassMask = 0x07 // Class in bits 0-2
	MetaTaken     = 0x08 // direction bit
	MetaMT        = 0x10 // multi-target annotation bit
)

// metaOf packs a record's class and flag bits into its Meta lane byte.
func metaOf(r Record) uint8 {
	m := uint8(r.Class) & MetaClassMask
	if r.Taken {
		m |= MetaTaken
	}
	if r.MT {
		m |= MetaMT
	}
	return m
}

// Len returns the number of records in the block.
func (b *Block) Len() int { return len(b.Meta) }

// Record reassembles the i'th record from the lanes. Panics if i is out of
// range.
//
//ppm:hotpath per-record reassembly inside the block engine's fallback loop
func (b *Block) Record(i int) Record {
	m := b.Meta[i] //lint:idxsafe caller contract: i < Len(); panicking on bad i is the documented behaviour
	r := Record{
		PC:     b.PC[i],     //lint:idxsafe all lanes share len(b.Meta) by construction
		Target: b.Target[i], //lint:idxsafe all lanes share len(b.Meta) by construction
		Class:  Class(m & MetaClassMask),
		Taken:  m&MetaTaken != 0,
		MT:     m&MetaMT != 0,
		Gap:    b.Gap[i], //lint:idxsafe all lanes share len(b.Meta) by construction
	}
	if b.Value != nil {
		r.Value = b.Value[i] //lint:idxsafe a non-nil Value lane shares len(b.Meta) by construction
	}
	return r
}

// Bytes returns the block's resident footprint under the columnar size
// model: the capacity of every lane times its element width. This is the
// unit the trace cache's budget accounting charges for a cached block.
func (b *Block) Bytes() int64 {
	return int64(cap(b.PC))*8 + int64(cap(b.Target))*8 +
		int64(cap(b.Meta)) + int64(cap(b.Gap))*4 + int64(cap(b.Value))*4 +
		int64(cap(b.MTIdx))*4 + int64(cap(b.PIBIdx))*4
}

// blockHeaderBytes is the size of the Block struct itself (slice headers
// plus GapSum), charged per cached block on top of the lane storage.
const blockHeaderBytes = int64(unsafe.Sizeof(Block{}))

// BlocksBytes sums the columnar footprint of a block slice, including the
// per-block struct headers.
func BlocksBytes(blks []Block) int64 {
	n := int64(cap(blks)) * blockHeaderBytes
	for i := range blks {
		n += blks[i].Bytes()
	}
	return n
}

// append pushes one record onto the block's lanes, maintaining the derived
// lanes. The caller guarantees capacity (the builders preallocate), so
// steady-state appends do not grow.
func (b *Block) append(r Record) {
	i := len(b.Meta)
	b.PC = append(b.PC, r.PC)
	b.Target = append(b.Target, r.Target)
	b.Meta = append(b.Meta, metaOf(r))
	b.Gap = append(b.Gap, r.Gap)
	if r.Value != 0 && b.Value == nil {
		// First switch value in the block: materialize the lane and
		// back-fill the zeros for the records already appended.
		b.Value = make([]uint32, i, cap(b.Meta))
	}
	if b.Value != nil {
		b.Value = append(b.Value, r.Value)
	}
	b.GapSum += uint64(r.Gap)
	if r.PIBStream() {
		b.PIBIdx = append(b.PIBIdx, int32(i))
		if r.MT {
			b.MTIdx = append(b.MTIdx, int32(i))
		}
	}
}

// newBlock returns an empty block with every fixed lane preallocated to n
// records. The index lanes start small and grow as indirect branches
// arrive; the Value lane is allocated lazily.
func newBlock(n int) Block {
	return Block{
		PC:     make([]uint64, 0, n),
		Target: make([]uint64, 0, n),
		Meta:   make([]uint8, 0, n),
		Gap:    make([]uint32, 0, n),
	}
}

// Blocks converts a record slice to its columnar form in BlockCap-sized
// blocks (the last block holds the remainder). The records are copied; the
// input slice is not retained.
func Blocks(recs []Record) []Block { return BlocksSized(recs, BlockCap) }

// BlocksSized is Blocks with an explicit records-per-block capacity.
// Panics if blockCap < 1.
func BlocksSized(recs []Record, blockCap int) []Block {
	if blockCap < 1 {
		panic("trace: block capacity must be >= 1")
	}
	blks := make([]Block, 0, (len(recs)+blockCap-1)/blockCap)
	for off := 0; off < len(recs); off += blockCap {
		end := off + blockCap
		if end > len(recs) {
			end = len(recs)
		}
		b := newBlock(end - off)
		for _, r := range recs[off:end] {
			b.append(r)
		}
		blks = append(blks, b)
	}
	return blks
}

// BlocksRecords flattens blocks back to a record slice — the inverse of
// Blocks, used by differential tests and block-unaware consumers.
func BlocksRecords(blks []Block) []Record {
	n := 0
	for i := range blks {
		n += blks[i].Len()
	}
	recs := make([]Record, 0, n)
	for i := range blks {
		b := &blks[i]
		for k := 0; k < b.Len(); k++ {
			recs = append(recs, b.Record(k))
		}
	}
	return recs
}

// ReadBlocks drains the reader straight into columnar blocks of BlockCap
// records, without materializing an intermediate []Record — the decode path
// the pre-decoded block cache fills once so re-simulation never re-parses
// varints. On error the blocks decoded so far are returned alongside it.
func (r *Reader) ReadBlocks() ([]Block, error) {
	var blks []Block
	b := newBlock(BlockCap)
	for {
		rec, err := r.Read()
		if err != nil {
			if b.Len() > 0 {
				blks = append(blks, b)
			}
			if err == io.EOF {
				err = nil
			}
			return blks, err
		}
		b.append(rec)
		if b.Len() == BlockCap {
			blks = append(blks, b)
			b = newBlock(BlockCap)
		}
	}
}
