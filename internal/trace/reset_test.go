package trace

import (
	"bytes"
	"testing"

	"repro/internal/race"
)

// encodeRecords returns the IBT2 bytes of recs.
func encodeRecords(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReaderReset(t *testing.T) {
	first := blockRecords(100)
	second := sampleRecords()
	firstData := encodeRecords(t, first)
	secondData := encodeRecords(t, second)

	rd, err := NewReader(bytes.NewReader(firstData))
	if err != nil {
		t.Fatal(err)
	}
	rd.SetSizeHint(len(first))
	got, err := rd.ReadAll()
	if err != nil || len(got) != len(first) {
		t.Fatalf("first drain: %d records, err %v", len(got), err)
	}

	// Reset onto a fresh stream: header revalidated, delta state, record
	// count and size hint all rewound.
	if err := rd.Reset(bytes.NewReader(secondData)); err != nil {
		t.Fatal(err)
	}
	if rd.Count() != 0 {
		t.Errorf("Count = %d after Reset, want 0", rd.Count())
	}
	got, err = rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(second) {
		t.Fatalf("post-Reset drain: %d records, want %d", len(got), len(second))
	}
	for i := range second {
		if got[i] != second[i] {
			t.Errorf("post-Reset record %d: got %+v, want %+v", i, got[i], second[i])
		}
	}

	if err := rd.Reset(bytes.NewReader([]byte("NOPE...."))); err != ErrBadMagic {
		t.Errorf("Reset onto bad magic: err = %v, want ErrBadMagic", err)
	}
	if err := rd.Reset(bytes.NewReader([]byte("IB"))); err == nil {
		t.Error("Reset onto a short header succeeded")
	}
}

// TestReadAllResetAllocs pins the decode path's allocation behaviour: a
// Reader re-armed with Reset reuses its buffered reader and varint scratch
// state, so draining a trace with an accurate size hint costs exactly one
// allocation — the result slice itself.
func TestReadAllResetAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc counts asserted in the non-race run")
	}
	recs := blockRecords(5000)
	data := encodeRecords(t, recs)

	src := bytes.NewReader(data)
	rd, err := NewReader(src)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		src.Reset(data)
		if err := rd.Reset(src); err != nil {
			t.Fatal(err)
		}
		rd.SetSizeHint(len(recs))
		got, err := rd.ReadAll()
		if err != nil || len(got) != len(recs) {
			t.Fatalf("drain: %d records, err %v", len(got), err)
		}
	})
	if avg != 1 {
		t.Errorf("ReadAll on a Reset reader: %.2f allocs per drain, want exactly 1 (the result slice)", avg)
	}
}
