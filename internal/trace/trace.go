// Package trace models dynamic branch trace records in the style of the
// ATOM-captured DEC Alpha traces used by Kalamatianos & Kaeli (MICRO-31,
// 1998), and provides a compact streaming binary encoding for them.
//
// A trace is a sequence of Records, one per committed control-transfer
// instruction. Non-branch instructions are not recorded individually; each
// Record carries the number of non-branch instructions retired since the
// previous record (Gap), which is sufficient to reconstruct instruction
// counts for Table 1 of the paper.
package trace

import "fmt"

// Class identifies the kind of control-transfer instruction, mirroring the
// Alpha AXP classification used in the paper: conditional branches are always
// direct; the four indirect instructions are jmp, jsr, ret and jsr_coroutine,
// all unconditional.
type Class uint8

const (
	// CondDirect is a conditional direct branch (Alpha beq/bne/...).
	CondDirect Class = iota
	// UncondDirect is an unconditional direct branch (Alpha br).
	UncondDirect
	// DirectCall is an unconditional direct subroutine call (Alpha bsr);
	// it pushes its return address on the RAS.
	DirectCall
	// IndirectJmp is an unconditional indirect jump (Alpha jmp), e.g. a
	// switch-statement dispatch or a GOT-based jump.
	IndirectJmp
	// IndirectJsr is an unconditional indirect call (Alpha jsr), e.g. a
	// virtual function call or a call through a function pointer.
	IndirectJsr
	// Return is a subroutine return (Alpha ret); predicted by a RAS and
	// therefore excluded from the indirect-predictor misprediction ratio.
	Return
	// JsrCoroutine is the Alpha jsr_coroutine instruction. The paper found
	// none in its traces; it is modelled for ISA completeness.
	JsrCoroutine

	numClasses = iota
)

var classNames = [numClasses]string{
	"cond", "br", "bsr", "jmp", "jsr", "ret", "jsr_coroutine",
}

// String returns the Alpha-style mnemonic for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Valid reports whether c is one of the defined classes.
func (c Class) Valid() bool { return int(c) < numClasses }

// Indirect reports whether the class computes its target from a register at
// run time (jmp, jsr, ret, jsr_coroutine).
func (c Class) Indirect() bool {
	switch c {
	case IndirectJmp, IndirectJsr, Return, JsrCoroutine:
		return true
	}
	return false
}

// Conditional reports whether the class has a taken/not-taken decision.
func (c Class) Conditional() bool { return c == CondDirect }

// Record is one committed control-transfer instruction.
type Record struct {
	// PC is the address of the branch instruction.
	PC uint64
	// Target is the address control transferred to. For a not-taken
	// conditional branch this is the fall-through address.
	Target uint64
	// Class is the kind of branch.
	Class Class
	// Taken reports the direction; always true for unconditional classes.
	Taken bool
	// MT is the compiler/linker multi-target annotation bit from the
	// paper's Section 5: set for indirect branches with more than one
	// possible target (switch dispatch, pointer-based calls), clear for
	// single-target indirect branches (GOT calls, DLL stubs).
	MT bool
	// Gap is the number of non-branch instructions retired since the
	// previous record.
	Gap uint32
	// Value carries the switch variable value for multi-target indirect
	// jumps that implement switch statements (1-based; 0 = unknown or not
	// applicable). It exists to model the Case Block Table of Kaeli &
	// Emma, which predicts switch targets from the switch value when that
	// value is available at fetch.
	Value uint32
}

// MTIndirect reports whether the record is a multi-target indirect jmp or
// jsr — the class of branches whose prediction accuracy the paper measures.
// Returns are excluded (handled by a RAS), as are single-target branches.
func (r Record) MTIndirect() bool {
	return r.MT && (r.Class == IndirectJmp || r.Class == IndirectJsr)
}

// PredictedStream reports whether the record belongs to the indirect-branch
// stream recorded by PIB path history registers: all indirect jmp and jsr
// instructions (both ST and MT), excluding returns.
func (r Record) PIBStream() bool {
	return r.Class == IndirectJmp || r.Class == IndirectJsr
}

// String formats the record for debugging output.
func (r Record) String() string {
	t := "T"
	if !r.Taken {
		t = "N"
	}
	mt := ""
	if r.MT {
		mt = " MT"
	}
	return fmt.Sprintf("%s pc=%#x tgt=%#x %s%s gap=%d", r.Class, r.PC, r.Target, t, mt, r.Gap)
}
