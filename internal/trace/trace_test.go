package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassProperties(t *testing.T) {
	cases := []struct {
		c           Class
		indirect    bool
		conditional bool
		name        string
	}{
		{CondDirect, false, true, "cond"},
		{UncondDirect, false, false, "br"},
		{DirectCall, false, false, "bsr"},
		{IndirectJmp, true, false, "jmp"},
		{IndirectJsr, true, false, "jsr"},
		{Return, true, false, "ret"},
		{JsrCoroutine, true, false, "jsr_coroutine"},
	}
	for _, c := range cases {
		if c.c.Indirect() != c.indirect {
			t.Errorf("%v.Indirect() = %v", c.c, c.c.Indirect())
		}
		if c.c.Conditional() != c.conditional {
			t.Errorf("%v.Conditional() = %v", c.c, c.c.Conditional())
		}
		if c.c.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.c, c.c.String(), c.name)
		}
		if !c.c.Valid() {
			t.Errorf("%v not valid", c.c)
		}
	}
	if Class(200).Valid() {
		t.Error("Class(200) reported valid")
	}
	if !strings.Contains(Class(200).String(), "200") {
		t.Error("invalid class String should include the raw value")
	}
}

func TestMTIndirect(t *testing.T) {
	mt := Record{Class: IndirectJmp, MT: true}
	if !mt.MTIndirect() {
		t.Error("MT jmp not MTIndirect")
	}
	if (Record{Class: IndirectJmp, MT: false}).MTIndirect() {
		t.Error("ST jmp is MTIndirect")
	}
	if (Record{Class: Return, MT: true}).MTIndirect() {
		t.Error("ret counted as MTIndirect")
	}
	if (Record{Class: CondDirect, MT: true}).MTIndirect() {
		t.Error("conditional counted as MTIndirect")
	}
}

func TestPIBStream(t *testing.T) {
	if !(Record{Class: IndirectJsr}).PIBStream() || !(Record{Class: IndirectJmp}).PIBStream() {
		t.Error("jmp/jsr must be in the PIB stream")
	}
	if (Record{Class: Return}).PIBStream() {
		t.Error("ret must not be in the PIB stream")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{PC: 0x1000, Target: 0x2000, Class: IndirectJsr, Taken: true, MT: true, Gap: 7}
	s := r.String()
	for _, want := range []string{"jsr", "0x1000", "0x2000", "MT", "gap=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("Record.String() = %q missing %q", s, want)
		}
	}
}

func sampleRecords() []Record {
	return []Record{
		{PC: 0x120000000, Target: 0x120000080, Class: CondDirect, Taken: true, Gap: 3},
		{PC: 0x120000010, Target: 0x120000014, Class: CondDirect, Taken: false, Gap: 0},
		{PC: 0x120000020, Target: 0x140000abc, Class: IndirectJmp, Taken: true, MT: true, Gap: 12},
		{PC: 0x120000030, Target: 0x150000040, Class: DirectCall, Taken: true, Gap: 5},
		{PC: 0x150000060, Target: 0x120000034, Class: Return, Taken: true, Gap: 2},
		{PC: 0x120000040, Target: 0x160010000, Class: IndirectJsr, Taken: true, MT: false, Gap: 1},
		{PC: 0x120000050, Target: 0x140000fe0, Class: IndirectJsr, Taken: true, MT: true, Gap: 0xffff},
		{PC: 0x120000060, Target: 0x140001200, Class: IndirectJmp, Taken: true, MT: true, Gap: 3, Value: 17},
	}
}

func TestIORoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(recs)) {
		t.Errorf("writer Count = %d, want %d", w.Count(), len(recs))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	if r.Count() != uint64(len(recs)) {
		t.Errorf("reader Count = %d, want %d", r.Count(), len(recs))
	}
}

func TestIORoundTripProperty(t *testing.T) {
	f := func(pcs, tgts []uint64, classes []uint8, gaps []uint32) bool {
		n := len(pcs)
		for _, l := range []int{len(tgts), len(classes), len(gaps)} {
			if l < n {
				n = l
			}
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				PC:     pcs[i],
				Target: tgts[i],
				Class:  Class(classes[i] % 7),
				Taken:  classes[i]%2 == 0,
				MT:     classes[i]%3 == 0,
				Gap:    gaps[i],
				Value:  uint32(classes[i]) % 5,
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := rd.ReadAll()
		if err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")); err != ErrBadMagic {
		t.Errorf("bad magic error = %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(strings.NewReader("IB")); err == nil {
		t.Error("short header accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(sampleRecords()[0])
	_ = w.Flush()
	data := buf.Bytes()

	// Chop the last byte: the final record must surface an error, not EOF.
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Read()
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated read error = %v, want ErrTruncated", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("ErrTruncated must wrap io.ErrUnexpectedEOF, got %v", err)
	}
}

// TestReaderTruncatedEveryPrefix slices a valid multi-record trace at every
// byte offset past the header. Whatever the cut point, the reader must
// either drain cleanly (the cut landed on a record boundary — io.EOF) or
// report ErrTruncated (the cut landed mid-record); a bare decode error or a
// silent truncation would make the server 500 a bad upload instead of
// 400ing it.
func TestReaderTruncatedEveryPrefix(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	boundaries := 0
	for cut := len(magic); cut <= len(data); cut++ {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: NewReader: %v", cut, err)
		}
		n := 0
		for {
			_, err := r.Read()
			if err == nil {
				n++
				continue
			}
			if err == io.EOF {
				boundaries++
				if cut == len(data) && n != len(recs) {
					t.Errorf("full trace decoded %d records, want %d", n, len(recs))
				}
				break
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut=%d after %d records: error = %v, want ErrTruncated", cut, n, err)
			}
			if cut == len(data) {
				t.Fatalf("untruncated trace reported ErrTruncated after %d records", n)
			}
			break
		}
		if n > len(recs) {
			t.Fatalf("cut=%d: decoded %d records from a %d-record trace", cut, n, len(recs))
		}
	}
	// One clean EOF per record boundary (after each record, including the
	// full trace) — anything else means boundary detection drifted.
	if boundaries != len(recs)+1 {
		t.Errorf("clean-EOF prefixes = %d, want %d (one per record boundary plus the empty body)", boundaries, len(recs)+1)
	}
}

func TestWriterRejectsInvalidClass(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Record{Class: Class(99)}); err == nil {
		t.Error("invalid class accepted")
	}
}

func TestReaderEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("empty trace read error = %v, want EOF", err)
	}
}

func BenchmarkWriter(b *testing.B) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Write(recs[i%len(recs)])
		if buf.Len() > 1<<24 {
			b.StopTimer()
			buf.Reset()
			b.StartTimer()
		}
	}
}

func BenchmarkReader(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	recs := sampleRecords()
	for i := 0; i < 10000; i++ {
		_ = w.Write(recs[i%len(recs)])
	}
	_ = w.Flush()
	data := buf.Bytes()
	b.ResetTimer()
	r, _ := NewReader(bytes.NewReader(data))
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(); err == io.EOF {
			r, _ = NewReader(bytes.NewReader(data))
		}
	}
}

// TestReadAllSizeHintAvoidsReallocation round-trips a trace whose record
// count is known from the writer side: with the hint set, ReadAll's single
// preallocation must survive the whole drain (cap unchanged ⇒ no growth).
func TestReadAllSizeHintAvoidsReallocation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		rec := Record{PC: 0x1000 + uint64(i)*4, Target: 0x9000 + uint64(i%7)*16,
			Class: IndirectJsr, Taken: true, MT: i%3 == 0, Gap: uint32(i % 5)}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.SetSizeHint(int(w.Count()))
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	if cap(got) != n {
		t.Errorf("cap %d after drain, hint %d — ReadAll reallocated", cap(got), n)
	}

	// Hints are advisory: a short hint still reads everything.
	r2, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r2.SetSizeHint(10)
	short, err := r2.ReadAll()
	if err != nil || len(short) != n {
		t.Fatalf("short-hint drain: %d records, err %v", len(short), err)
	}
}

// TestReadAllAdversarialSizeHint pins the fix for the unclamped-hint OOM:
// a hint claiming multiple GiB of records over a 3-record stream used to
// translate directly into make([]Record, 0, hint) — tens of GiB for a
// 56-byte Record — before a single byte was decoded. The preallocation must
// stay bounded regardless of the hint, and the stream must still drain
// fully.
func TestReadAllAdversarialSizeHint(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Write(Record{PC: 0x1000 + uint64(i)*4, Target: 0x9000, Class: IndirectJmp, Taken: true, MT: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// A trillion-record claim (2^40): tens of TiB of Records if honored.
	// If the clamp regresses, this test dies with OOM rather than failing
	// an assertion — either way CI catches it.
	r.SetSizeHint(1 << 40)
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d records, want 3", len(got))
	}
	if cap(got) > maxReadAllPrealloc {
		t.Errorf("cap %d exceeds the preallocation clamp %d", cap(got), maxReadAllPrealloc)
	}
}
