package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic and must either terminate with an error or consume the stream.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, r := range sampleRecords() {
		_ = w.Write(r)
	}
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("IBT2"))
	f.Add([]byte("IBT2\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 100000; i++ {
			_, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // any error is acceptable; panics are not
			}
		}
	})
}

// FuzzRoundTrip checks that any encodable record survives a round trip.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x120000000), uint64(0x140000abc), uint8(3), true, true, uint32(12), uint32(0))
	f.Add(uint64(0), uint64(0), uint8(0), false, false, uint32(0), uint32(99))
	f.Add(^uint64(0), uint64(1), uint8(6), true, false, ^uint32(0), ^uint32(0))

	f.Fuzz(func(t *testing.T, pc, tgt uint64, class uint8, taken, mt bool, gap, value uint32) {
		rec := Record{
			PC: pc, Target: tgt, Class: Class(class % 7),
			Taken: taken, MT: mt, Gap: gap, Value: value,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != rec {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
	})
}
