// Package stats provides the accuracy accounting used throughout the
// experiment harness: per-predictor misprediction counters, ratios, and
// cross-run aggregation matching the paper's reporting (misprediction ratio
// over dynamic multi-target indirect branches; a prediction the predictor
// declined to make counts as a misprediction).
package stats

import "fmt"

// Counters accumulates prediction outcomes for one predictor on one run.
type Counters struct {
	// Predictor names the configuration.
	Predictor string
	// Lookups is the number of MT indirect branches presented.
	Lookups uint64
	// Correct counts right-target predictions.
	Correct uint64
	// Wrong counts wrong-target predictions.
	Wrong uint64
	// NoPrediction counts lookups where the predictor abstained.
	NoPrediction uint64
}

// Record accumulates one prediction outcome.
//
//ppm:hotpath per-record misprediction accounting
func (c *Counters) Record(predicted, ok bool) {
	c.Lookups++
	switch {
	case !ok:
		c.NoPrediction++
	case predicted:
		c.Correct++
	default:
		c.Wrong++
	}
}

// Mispredictions returns wrong + abstained, the paper's numerator.
func (c Counters) Mispredictions() uint64 { return c.Wrong + c.NoPrediction }

// MispredictionRatio returns mispredictions / lookups in [0,1]; zero when
// no lookups occurred.
func (c Counters) MispredictionRatio() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Mispredictions()) / float64(c.Lookups)
}

// Accuracy returns 1 - MispredictionRatio.
func (c Counters) Accuracy() float64 { return 1 - c.MispredictionRatio() }

// String formats the counters compactly.
func (c Counters) String() string {
	return fmt.Sprintf("%s: %.2f%% mispred (%d/%d, %d abstained)",
		c.Predictor, 100*c.MispredictionRatio(), c.Mispredictions(), c.Lookups, c.NoPrediction)
}

// Add merges another run's counters for the same predictor.
func (c *Counters) Add(o Counters) {
	c.Lookups += o.Lookups
	c.Correct += o.Correct
	c.Wrong += o.Wrong
	c.NoPrediction += o.NoPrediction
}

// MeanRatio returns the arithmetic mean of per-run misprediction ratios,
// the cross-benchmark average the paper reports (9.47% for PPM-hyb etc.).
// Runs with zero lookups are skipped.
func MeanRatio(runs []Counters) float64 {
	var sum float64
	n := 0
	for _, r := range runs {
		if r.Lookups == 0 {
			continue
		}
		sum += r.MispredictionRatio()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WeightedRatio returns total mispredictions over total lookups across runs.
func WeightedRatio(runs []Counters) float64 {
	var mis, total uint64
	for _, r := range runs {
		mis += r.Mispredictions()
		total += r.Lookups
	}
	if total == 0 {
		return 0
	}
	return float64(mis) / float64(total)
}

// Distribution summarizes a discrete distribution (e.g. per-component
// accesses in the PPM stack).
type Distribution struct {
	Labels []string
	Counts []uint64
}

// Total sums the counts.
func (d Distribution) Total() uint64 {
	var t uint64
	for _, c := range d.Counts {
		t += c
	}
	return t
}

// Share returns counts[i] as a fraction of the total (0 when empty).
func (d Distribution) Share(i int) float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return float64(d.Counts[i]) / float64(t)
}
