package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersRecord(t *testing.T) {
	var c Counters
	c.Record(true, true)   // correct
	c.Record(false, true)  // wrong
	c.Record(false, false) // abstained
	if c.Lookups != 3 || c.Correct != 1 || c.Wrong != 1 || c.NoPrediction != 1 {
		t.Fatalf("counters: %+v", c)
	}
	if c.Mispredictions() != 2 {
		t.Errorf("Mispredictions = %d, want 2 (abstentions count)", c.Mispredictions())
	}
	if got := c.MispredictionRatio(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("ratio = %v", got)
	}
	if got := c.Accuracy(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestCountersZero(t *testing.T) {
	var c Counters
	if c.MispredictionRatio() != 0 {
		t.Error("empty counters ratio != 0")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Predictor: "x", Lookups: 10, Correct: 7, Wrong: 2, NoPrediction: 1}
	b := Counters{Predictor: "x", Lookups: 5, Correct: 5}
	a.Add(b)
	if a.Lookups != 15 || a.Correct != 12 || a.Wrong != 2 || a.NoPrediction != 1 {
		t.Errorf("Add: %+v", a)
	}
}

func TestMeanRatio(t *testing.T) {
	runs := []Counters{
		{Lookups: 100, Wrong: 10},                // 10%
		{Lookups: 1000, Wrong: 200},              // 20%
		{Lookups: 0},                             // skipped
		{Lookups: 10, Wrong: 2, NoPrediction: 1}, // 30%
	}
	if got := MeanRatio(runs); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("MeanRatio = %v, want 0.2", got)
	}
	if MeanRatio(nil) != 0 {
		t.Error("MeanRatio(nil) != 0")
	}
}

func TestWeightedRatio(t *testing.T) {
	runs := []Counters{
		{Lookups: 100, Wrong: 10},
		{Lookups: 300, Wrong: 10},
	}
	if got := WeightedRatio(runs); math.Abs(got-20.0/400.0) > 1e-12 {
		t.Errorf("WeightedRatio = %v", got)
	}
	if WeightedRatio(nil) != 0 {
		t.Error("WeightedRatio(nil) != 0")
	}
}

func TestRatiosBounded(t *testing.T) {
	f := func(correct, wrong, nop uint32) bool {
		c := Counters{
			Lookups:      uint64(correct) + uint64(wrong) + uint64(nop),
			Correct:      uint64(correct),
			Wrong:        uint64(wrong),
			NoPrediction: uint64(nop),
		}
		r := c.MispredictionRatio()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountersString(t *testing.T) {
	c := Counters{Predictor: "PPM-hyb", Lookups: 200, Correct: 180, Wrong: 15, NoPrediction: 5}
	s := c.String()
	if !strings.Contains(s, "PPM-hyb") || !strings.Contains(s, "10.00%") {
		t.Errorf("String = %q", s)
	}
}

func TestDistribution(t *testing.T) {
	d := Distribution{Labels: []string{"a", "b"}, Counts: []uint64{30, 10}}
	if d.Total() != 40 {
		t.Errorf("Total = %d", d.Total())
	}
	if math.Abs(d.Share(0)-0.75) > 1e-12 {
		t.Errorf("Share(0) = %v", d.Share(0))
	}
	empty := Distribution{Labels: []string{"a"}, Counts: []uint64{0}}
	if empty.Share(0) != 0 {
		t.Error("empty distribution Share != 0")
	}
}
