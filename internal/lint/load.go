package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked package under analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load locates the packages matching patterns (relative to dir, "" = cwd)
// with `go list -export -deps`, then parses and type-checks each matched
// package, resolving every import — standard library and module-local alike —
// from the compiled export data the go command just produced. This keeps the
// loader fully offline and toolchain-consistent: whatever `go build` accepts,
// Load analyzes.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json=Dir,ImportPath,Export,GoFiles,Standard,DepOnly,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
