// Package hotpath reports allocation sources inside hot-path functions.
//
// The hot set (see internal/lint/hotset) is every function reachable from a
// predictor's per-lookup entry points. On that set the analyzer flags the
// constructs that allocate — or can allocate — per call in a steady-state
// simulator loop:
//
//   - the make/new builtins and any append
//   - map writes (indexed assignment, ++/--, delete) and range over a map
//   - defer and go statements
//   - function literals (closures capture their environment on the heap)
//   - &T{...} composite literals and slice/map-typed composite literals
//   - calls into fmt or strconv, and strings.Builder method calls
//   - interface boxing: passing a concrete-typed argument to an
//     interface-typed parameter at a call site
//   - calls to functions annotated //ppm:coldpath
//
// Cold branches inside a hot function (table fill on first touch, eviction)
// are suppressed line-by-line with `//lint:coldpath`; whole functions opt
// out with a `//ppm:coldpath` doc directive, which also flags any hot
// caller still reaching them.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
	"repro/internal/lint/hotset"
)

// Analyzer reports allocation sources on hot-path functions.
var Analyzer = &lint.Analyzer{
	Name: "hotpath",
	Doc: "report allocation sources (make/append/new, map writes, boxing, " +
		"closures, defer, fmt/strconv, range-over-map) in functions reachable " +
		"from predictor Predict/Update/Lookup/Observe roots or //ppm:hotpath " +
		"annotations; suppress cold branches with //lint:coldpath <reason>",
	Escape: "//lint:coldpath <reason>",
	Run:    run,
}

// coldDirective is the per-line escape hatch for cold branches inside hot
// functions.
const coldDirective = "coldpath"

// allocPackages are the stdlib packages whose calls imply formatting or
// conversion allocation on the hot path.
var allocPackages = map[string]bool{
	"fmt":     true,
	"strconv": true,
}

func run(pass *lint.Pass) error {
	// The hot-set annotations are escape-grade directives: a bare
	// //ppm:hotpath or //ppm:coldpath with no reason sentence is rejected
	// even in files whose hot set is otherwise empty.
	for _, file := range pass.Files {
		pass.DirectiveLines(file, hotset.HotpathDirective)
		pass.DirectiveLines(file, hotset.ColdpathDirective)
	}

	hot, cold := hotset.Compute(pass)
	if len(hot) == 0 {
		return nil
	}

	escapes := map[*ast.File]map[int]bool{}
	for _, hf := range hot {
		if escapes[hf.File] == nil {
			escapes[hf.File] = pass.EscapeLines(hf.File, coldDirective)
		}
		checkFunc(pass, hf, escapes[hf.File], cold)
	}
	return nil
}

func checkFunc(pass *lint.Pass, hf *hotset.Func, escaped map[int]bool, cold map[types.Object]bool) {
	info := pass.TypesInfo
	report := func(pos token.Pos, format string, args ...interface{}) {
		if lint.Escaped(pass.Fset, escaped, pos) {
			return
		}
		args = append(args, hf.Root)
		pass.Reportf(pos, format+" (hot path via %s)", args...)
	}

	ast.Inspect(hf.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, x, report, cold)

		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok && isMap(info, ix.X) {
					report(lhs.Pos(), "map write allocates on insert")
				}
			}

		case *ast.IncDecStmt:
			if ix, ok := x.X.(*ast.IndexExpr); ok && isMap(info, ix.X) {
				report(x.Pos(), "map write allocates on insert")
			}

		case *ast.RangeStmt:
			if isMap(info, x.X) {
				report(x.Pos(), "range over map hashes every key per iteration")
			}

		case *ast.DeferStmt:
			report(x.Pos(), "defer allocates a frame record")

		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine")

		case *ast.FuncLit:
			report(x.Pos(), "function literal may capture variables on the heap")
			return false // the closure body is not itself the hot function

		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := lint.Unparen(info, x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "&composite literal escapes to the heap")
				}
			}

		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "slice literal allocates its backing array")
				case *types.Map:
					report(x.Pos(), "map literal allocates")
				}
			}
		}
		return true
	})
}

// isMap reports whether e has map type.
func isMap(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkCall flags allocating builtins, allocating stdlib calls, calls to
// //ppm:coldpath functions, and interface boxing of arguments.
func checkCall(pass *lint.Pass, call *ast.CallExpr, report func(token.Pos, string, ...interface{}), cold map[types.Object]bool) {
	info := pass.TypesInfo

	switch fun := lint.Unparen(info, call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.ObjectOf(fun).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates; hoist into a struct-owned buffer")
			case "new":
				report(call.Pos(), "new allocates; hoist into a struct-owned buffer")
			case "append":
				report(call.Pos(), "append may grow and allocate; preallocate backing storage")
			case "delete":
				report(call.Pos(), "map delete rehashes the key per call")
			}
			return
		}
	}

	if obj := lint.ObjectOf(info, call.Fun); obj != nil {
		if cold[obj] {
			report(call.Pos(), "call to //ppm:coldpath function %s", obj.Name())
		}
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
			if allocPackages[fn.Pkg().Path()] {
				report(call.Pos(), "%s.%s formats and allocates", fn.Pkg().Name(), fn.Name())
			}
			if isBuilderMethod(fn) {
				report(call.Pos(), "strings.Builder grows a heap buffer")
			}
		}
	}

	checkBoxing(pass, call, report)
}

// isBuilderMethod reports whether fn is a method of strings.Builder.
func isBuilderMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Builder" && obj.Pkg() != nil && obj.Pkg().Path() == "strings"
}

// checkBoxing flags concrete-typed arguments passed to interface-typed
// parameters: the argument is boxed, which heap-allocates for any value
// wider than a pointer word.
func checkBoxing(pass *lint.Pass, call *ast.CallExpr, report func(token.Pos, string, ...interface{})) {
	info := pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	if _, isBuiltin := info.ObjectOf(identOf(call.Fun)).(*types.Builtin); isBuiltin {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "argument boxed into interface parameter")
	}
}

// identOf returns the identifier a call's Fun resolves to, or nil.
func identOf(e ast.Expr) *ast.Ident {
	switch x := e.(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}
