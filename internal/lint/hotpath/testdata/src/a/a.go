// Package a exercises the hotpath analyzer: functions reachable from
// predictor entry points (or annotated //ppm:hotpath) must not allocate,
// with //lint:coldpath suppressing intentional cold branches and
// //ppm:coldpath opting whole functions out.
package a

import (
	"fmt"

	"repro/internal/predictor"
	"repro/internal/trace"
)

// sink accepts anything, forcing callers to box concrete arguments.
func sink(v interface{}) { _ = v }

// box is a tiny heap-escape target for the composite-literal check.
type box struct{ v uint64 }

// Hot implements IndirectPredictor, so Predict/Update/Observe are hot roots.
type Hot struct {
	last    uint64
	seen    map[uint64]uint64
	scratch []uint64
	order   []uint64
}

var _ predictor.IndirectPredictor = (*Hot)(nil)

// NewHot is construction-time code: allocation here is expected and the
// analyzer must stay silent.
func NewHot() *Hot {
	return &Hot{seen: make(map[uint64]uint64), scratch: make([]uint64, 0, 8)}
}

// Name identifies the predictor.
func (h *Hot) Name() string { return "hot" }

// Predict returns the last committed target.
func (h *Hot) Predict(pc uint64) (uint64, bool) {
	buf := make([]uint64, 4) // want `make allocates`
	_ = buf
	h.scratch = append(h.scratch, pc) // want `append may grow and allocate`
	for k := range h.seen {           // want `range over map`
		_ = k
	}
	return h.helper(pc), h.last != 0
}

// helper is hot by reachability from Predict.
func (h *Hot) helper(pc uint64) uint64 {
	p := new(uint64) // want `new allocates`
	*p = pc
	return h.last + *p
}

// Update trains with the resolved target.
func (h *Hot) Update(pc, target uint64) {
	h.seen[pc] = target            // want `map write allocates on insert`
	sink(target)                   // want `argument boxed into interface parameter`
	s := fmt.Sprintf("%d", target) // want `fmt\.Sprintf formats and allocates` `argument boxed into interface parameter`
	_ = s
	h.ensure(pc)
	h.rebuild() // want `call to //ppm:coldpath function rebuild`
}

// Observe advances history.
func (h *Hot) Observe(r trace.Record) {
	defer h.flush()            // want `defer allocates a frame record`
	f := func() { h.last = 0 } // want `function literal may capture`
	_ = f
	h.order = []uint64{h.last} // want `slice literal allocates its backing array`
	_ = r
}

// flush is hot via the defer in Observe.
func (h *Hot) flush() {
	h.last = 0
	b := &box{v: h.last} // want `&composite literal escapes to the heap`
	_ = b
}

// ensure fills backing storage on first touch — a cold branch by
// construction, suppressed line-by-line.
func (h *Hot) ensure(pc uint64) {
	if h.scratch == nil {
		h.scratch = make([]uint64, 0, 8) //lint:coldpath — first touch of the scratch buffer
	}
	_ = pc
}

// bareEscape suppresses its allocation with a reasonless escape: the finding
// stays suppressed but the bare directive is itself rejected.
func (h *Hot) bareEscape() {
	if h.order == nil {
		h.order = make([]uint64, 0, 8) /*lint:coldpath*/ // want `//lint:coldpath directive needs a reason sentence`
	}
}

// rebuild is reporting-time bookkeeping, excluded from the hot set; its own
// body may allocate freely, but hot callers are flagged.
//
//ppm:coldpath reporting-time bookkeeping, not hardware
func (h *Hot) rebuild() {
	h.seen = make(map[uint64]uint64)
}

// bareOptOut opts out of the hot set without saying why: the opt-out still
// works, but the bare annotation is rejected.
//
/*ppm:coldpath*/ // want `//ppm:coldpath directive needs a reason sentence`
func (h *Hot) bareOptOut() {
	h.seen = make(map[uint64]uint64)
}

// bareRoot joins the hot set without saying why: still hot, still rejected.
//
/*ppm:hotpath*/ // want `//ppm:hotpath directive needs a reason sentence`
func bareRoot(x uint64) uint64 {
	p := new(uint64) // want `new allocates`
	*p = x
	return *p
}

// Mix is a per-lookup helper in a support package, hot by annotation.
//
//ppm:hotpath per-lookup mixing helper
func Mix(x uint64) uint64 {
	tmp := map[uint64]bool{x: true} // want `map literal allocates`
	_ = tmp
	x ^= x >> 33
	return x
}

// Report renders statistics after the run; it is not reachable from any
// root and not annotated, so its allocations are fine.
func Report(h *Hot) string {
	parts := make([]string, 0, len(h.seen))
	for pc := range h.seen {
		parts = append(parts, fmt.Sprintf("%#x", pc))
	}
	return fmt.Sprint(parts)
}
