package gate

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.baseline")
	counts := map[string]int{
		"a.go\tescapes to heap": 2,
		"b.go\tmoved to heap":   1,
	}
	if err := Write(path, []string{"header one", "header two"}, counts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(counts) {
		t.Fatalf("round trip lost keys: %v != %v", got, counts)
	}
	for k, n := range counts {
		if got[k] != n {
			t.Errorf("key %q: got %d, want %d", k, got[k], n)
		}
	}
}

func TestReadMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.baseline")
	if err := writeFile(path, "notanumber\tkey\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}

func TestCount(t *testing.T) {
	diags := []Diag{
		{File: "a.go", Msg: "x escapes to heap"},
		{File: "a.go", Msg: "x escapes to heap"},
		{File: "b.go", Msg: "inlining call to f"},
	}
	counts := Count(diags, func(d Diag) (string, bool) {
		if strings.HasSuffix(d.Msg, "escapes to heap") {
			return d.File + "\t" + d.Msg, true
		}
		return "", false
	})
	if counts["a.go\tx escapes to heap"] != 2 || len(counts) != 1 {
		t.Fatalf("unexpected counts: %v", counts)
	}
}

func TestDiffAddedFailsRemovedAdvises(t *testing.T) {
	current := map[string]int{"a.go\tnew": 1, "b.go\tsame": 2}
	budget := map[string]int{"b.go\tsame": 2, "c.go\tgone": 3}
	var out, errb bytes.Buffer

	if !Diff("t", current, budget, "make t-update", &out, &errb) {
		t.Fatal("added diagnostic did not fail the gate")
	}
	if !strings.Contains(errb.String(), "+1  a.go: new") {
		t.Errorf("added diff missing: %q", errb.String())
	}
	if !strings.Contains(out.String(), "-3  c.go: gone") {
		t.Errorf("removed diff missing: %q", out.String())
	}
	if !strings.Contains(errb.String(), "make t-update") {
		t.Errorf("re-baseline hint missing: %q", errb.String())
	}
}

func TestDiffCleanPasses(t *testing.T) {
	counts := map[string]int{"a.go\tx": 1}
	var out, errb bytes.Buffer
	if Diff("t", counts, counts, "make t-update", &out, &errb) {
		t.Fatal("identical counts failed the gate")
	}
	if out.Len() != 0 || errb.Len() != 0 {
		t.Fatalf("clean diff printed output: %q %q", out.String(), errb.String())
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
