// Package gate is the shared machinery of the compiler-diagnostic gates
// (cmd/escapegate, cmd/bcegate, cmd/inlinegate): run the Go compiler with a
// diagnostic flag over the hot-path packages, normalize the output into
// stable keys, and compare the keyed counts against a checked-in baseline.
//
// Each gate owns its flag, its normalization and its baseline file; this
// package owns the build invocation, the "<count>\t<key>" baseline format,
// and the drift report — an added/removed diff plus the re-baseline hint,
// so a failing gate tells the developer exactly which diagnostics appeared
// and which budgeted ones are gone.
package gate

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Diag is one normalized compiler diagnostic.
type Diag struct {
	// File is the path as the compiler printed it.
	File string
	// Msg is the diagnostic text after the position.
	Msg string
}

// diagLine matches one compiler diagnostic: file.go:line:col: message.
var diagLine = regexp.MustCompile(`^(.+\.go):\d+:(?:\d+:)? (.+)$`)

// Build compiles pkgs with the given -gcflags value and returns every
// parsed compiler diagnostic. The build cache replays compiler diagnostics,
// so a warm cache still yields the full set.
func Build(gcflags string, pkgs []string) ([]Diag, error) {
	args := append([]string{"build", "-gcflags=" + gcflags}, pkgs...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(stderr.Bytes())
		return nil, fmt.Errorf("go build: %v", err)
	}

	var diags []Diag
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := diagLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		diags = append(diags, Diag{File: m[1], Msg: m[2]})
	}
	return diags, sc.Err()
}

// Count folds diagnostics through match into key -> occurrence counts;
// match returns the normalized key and whether the diagnostic is gated.
func Count(diags []Diag, match func(Diag) (string, bool)) map[string]int {
	counts := map[string]int{}
	for _, d := range diags {
		if key, ok := match(d); ok {
			counts[key]++
		}
	}
	return counts
}

// Write renders counts in the stable on-disk form — "<count>\t<key>" lines,
// sorted — under the given "# "-prefixed header lines.
func Write(path string, header []string, counts map[string]int) error {
	var b strings.Builder
	for _, h := range header {
		b.WriteString("# ")
		b.WriteString(h)
		b.WriteString("\n")
	}
	for _, k := range sortedKeys(counts) {
		fmt.Fprintf(&b, "%d\t%s\n", counts[k], k)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// Read parses the on-disk form back into key -> count.
func Read(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, key, ok := strings.Cut(line, "\t")
		c, err := strconv.Atoi(n)
		if !ok || err != nil {
			return nil, fmt.Errorf("%s:%d: malformed baseline line %q", path, i+1, line)
		}
		counts[key] += c
	}
	return counts, nil
}

// Total sums all occurrences.
func Total(counts map[string]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// Diff compares the current counts against the baseline and prints the
// drift as an added/removed diff: "+n key" for diagnostics above budget
// (these fail the gate), "-n key" for budgeted diagnostics no longer
// present (advisory slack). It reports whether the gate failed; on any
// drift it prints the updateCmd re-baseline hint. Failure lines go to errw,
// advisory lines to outw.
func Diff(tool string, current, budget map[string]int, updateCmd string, outw, errw io.Writer) (failed bool) {
	var added, removed []string
	for _, k := range sortedKeys(current) {
		if current[k] > budget[k] {
			added = append(added, fmt.Sprintf("  +%d  %s", current[k]-budget[k], strings.ReplaceAll(k, "\t", ": ")))
		}
	}
	for _, k := range sortedKeys(budget) {
		if current[k] < budget[k] {
			removed = append(removed, fmt.Sprintf("  -%d  %s", budget[k]-current[k], strings.ReplaceAll(k, "\t", ": ")))
		}
	}

	if len(added) > 0 {
		failed = true
		fmt.Fprintf(errw, "%s: diagnostics above baseline:\n", tool)
		for _, l := range added {
			fmt.Fprintln(errw, l)
		}
	}
	if len(removed) > 0 {
		fmt.Fprintf(outw, "%s: note: baseline has slack (budgeted diagnostics no longer present):\n", tool)
		for _, l := range removed {
			fmt.Fprintln(outw, l)
		}
	}
	if failed {
		fmt.Fprintf(errw, "%s: fix the new diagnostics or, if intentional, run `%s` and commit the baseline diff\n", tool, updateCmd)
	} else if len(removed) > 0 {
		fmt.Fprintf(outw, "%s: note: run `%s` to tighten the baseline\n", tool, updateCmd)
	}
	return failed
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
