package golifetime

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestGolifetime(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/a")
}
