// Package golifetime reports `go` statements that spawn goroutines with no
// provable termination signal. The serving and scheduling layers multiply
// goroutines per job and per session; a goroutine with no way to learn it
// should stop is a leak the runtime can only observe after the fact
// (internal/check/leakcheck), while this analyzer refuses it at review time.
//
// A goroutine body proves termination by containing at least one of:
//
//   - a reference to a context.Context value (the body can observe
//     cancellation via Done/Err or a ctx-aware callee)
//   - a sync.WaitGroup Done or Wait call (the goroutine is joined, or is
//     itself a join point that returns when the group drains)
//   - a channel receive: a unary `<-ch`, a `range` over a channel (which
//     ends when the channel closes), or a `select` with a receive case —
//     the closed-done-channel convention
//
// The body examined is the spawned function literal, or the same-package
// declaration of a named function/method spawned directly. Spawning a
// function the analyzer cannot see into (another package, a function
// value) is flagged the same way: wrap it locally or annotate.
//
// A goroutine that genuinely lives for the process (a metrics pump, a
// listener-bound accept loop) opts out with `//ppm:daemon <reason>` on the
// go statement's line or the line above, or in the spawned function's doc
// comment. The reason sentence is mandatory — a bare directive is itself a
// finding.
package golifetime

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// DaemonDirective (`//ppm:daemon`) marks a goroutine as intentionally
// process-lifetime.
const DaemonDirective = "daemon"

// Analyzer reports go statements whose goroutine has no termination signal.
var Analyzer = &lint.Analyzer{
	Name: "golifetime",
	Doc: "every go statement must spawn a body with a provable termination " +
		"signal — a context.Context reference, a sync.WaitGroup Done/Wait, or " +
		"a channel receive (unary, range, or select case) — or carry a " +
		"//ppm:daemon <reason> annotation",
	Escape: "//ppm:daemon <reason>",
	Run:    run,
}

func run(pass *lint.Pass) error {
	// Same-package function declarations, for `go f(...)` spawns.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.ObjectOf(fd.Name); obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	for _, file := range pass.Files {
		// DirectiveLines also rejects bare //ppm:daemon annotations: the
		// reason sentence is mandatory, uniformly with every other escape.
		daemons := pass.DirectiveLines(file, DaemonDirective)
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, gs, daemons, decls)
			return true
		})
	}
	return nil
}

// checkGo validates one go statement.
func checkGo(pass *lint.Pass, gs *ast.GoStmt, daemons map[int]bool, decls map[types.Object]*ast.FuncDecl) {
	// Annotation on the statement line or the line above.
	if lint.Escaped(pass.Fset, daemons, gs.Pos()) {
		return
	}

	var body *ast.BlockStmt
	switch fun := lint.Unparen(pass.TypesInfo, gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if obj := lint.ObjectOf(pass.TypesInfo, gs.Call.Fun); obj != nil {
			if fd, ok := decls[obj]; ok {
				if hasDaemonDoc(fd) {
					return
				}
				body = fd.Body
			}
		}
	}
	if body == nil {
		pass.Reportf(gs.Pos(), "goroutine spawns a function this package cannot see into; wrap it in a local function with a termination signal or annotate //ppm:daemon <reason>")
		return
	}
	if !hasTerminationSignal(pass.TypesInfo, body) {
		pass.Reportf(gs.Pos(), "goroutine has no termination signal (context.Context, sync.WaitGroup Done/Wait, or channel receive); give it one or annotate //ppm:daemon <reason>")
	}
}

// hasDaemonDoc reports whether the spawned function's doc comment carries a
// //ppm:daemon directive. A reasonless directive still suppresses the leak
// finding, but not silently: DirectiveLines already reported the bare
// directive when its file was scanned.
func hasDaemonDoc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if prefix, name, _, ok := lint.ParseDirective(c.Text); ok && prefix == "ppm" && name == DaemonDirective {
			return true
		}
	}
	return false
}

// hasTerminationSignal scans a goroutine body for any construct that lets
// the goroutine learn it should stop (or that joins it).
func hasTerminationSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if isChan(info, x.X) {
				found = true
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				cc := c.(*ast.CommClause)
				if commIsReceive(cc.Comm) {
					found = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupJoin(info, x) {
				found = true
			}
		case *ast.Ident:
			if isContext(info.TypeOf(x)) {
				found = true
			}
		case *ast.SelectorExpr:
			if isContext(info.TypeOf(x)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// commIsReceive reports whether a select comm clause is a receive.
func commIsReceive(s ast.Stmt) bool {
	switch c := s.(type) {
	case *ast.ExprStmt:
		u, ok := c.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		for _, rhs := range c.Rhs {
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return true
			}
		}
	}
	return false
}

// isWaitGroupJoin reports a Done or Wait call on a sync.WaitGroup.
func isWaitGroupJoin(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := lint.ObjectOf(info, call.Fun).(*types.Func)
	if !ok || (fn.Name() != "Done" && fn.Name() != "Wait") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), "sync", "WaitGroup")
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	return t != nil && isNamed(t, "context", "Context")
}

// isChan reports whether e has channel type.
func isChan(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isNamed reports whether t (or its pointee) is the named type pkg.name.
func isNamed(t types.Type, pkg, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}
