// Package a is the golifetime fixture: goroutines with and without
// termination signals, plus the //ppm:daemon annotation escape.
package a

import (
	"context"
	"sync"
)

// leakyLoop spawns a goroutine nothing can stop.
func leakyLoop(work chan int) {
	go func() { // want `no termination signal`
		for {
			process(0)
		}
	}()
}

// leakySend blocks forever on a send with no cancellation path.
func leakySend(out chan int) {
	go func() { // want `no termination signal`
		out <- 1
	}()
}

// ctxBound observes cancellation through a context.
func ctxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// ctxThreaded references a context without a direct Done receive; passing
// it onward is still a termination signal.
func ctxThreaded(ctx context.Context) {
	go func() {
		helper(ctx)
	}()
}

// wgBound is joined by a WaitGroup.
func wgBound(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		process(1)
	}()
}

// wgWaiter is itself a join point: it returns when the group drains.
func wgWaiter(wg *sync.WaitGroup, done chan struct{}) {
	go func() {
		wg.Wait()
		close(done)
	}()
}

// rangeBound drains a work channel and exits when it closes.
func rangeBound(work chan int) {
	go func() {
		for w := range work {
			process(w)
		}
	}()
}

// selectBound has a receive case on a done channel.
func selectBound(stop chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case w := <-work:
				process(w)
			}
		}
	}()
}

// namedSpawn spawns a same-package function whose body carries the signal.
func namedSpawn(stop chan struct{}) {
	go stoppableLoop(stop)
}

func stoppableLoop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			process(2)
		}
	}
}

// namedLeaky spawns a same-package function with no signal.
func namedLeaky() {
	go spinForever() // want `no termination signal`
}

func spinForever() {
	for {
		process(3)
	}
}

// metricsPump is a process-lifetime daemon, documented as such.
//
//ppm:daemon process-lifetime metrics pump; dies with the process
func metricsPump() {
	for {
		process(4)
	}
}

func spawnDaemon() {
	go metricsPump()
}

// inlineDaemon annotates the go statement itself.
func inlineDaemon() {
	//ppm:daemon accept loop bound to the listener's lifetime
	go func() {
		for {
			process(5)
		}
	}()
}

// bareDirective omits the mandatory reason sentence: the leak finding stays
// suppressed, but the bare annotation is itself rejected.
func bareDirective() {
	/*ppm:daemon*/ // want `//ppm:daemon directive needs a reason sentence`
	go func() {
		for {
			process(6)
		}
	}()
}

// opaqueSpawn launches a function value the analyzer cannot see into.
func opaqueSpawn(f func()) {
	go f() // want `cannot see into`
}

func helper(ctx context.Context) {}

func process(int) {}
