// Package a is the idxmask fixture: hot-path table indices in every safe
// derivation shape (mask, modulus, range, len-comparison, bound field,
// index helper) plus the unsafe shapes the analyzer must flag and the
// //lint:idxsafe escape.
package a

import (
	"repro/internal/predictor"
	"repro/internal/trace"
)

// Table is a direct-mapped predictor table; its methods are hot roots.
type Table struct {
	slots   []uint64
	tags    []uint64
	ring    []uint64
	head    int
	pending int
	raw     uint64
}

var _ predictor.IndirectPredictor = (*Table)(nil)

// Name identifies the predictor.
func (t *Table) Name() string { return "table" }

// index is the single-return helper convention: callers inherit its proof.
func (t *Table) index(pc uint64) uint64 {
	return (pc >> 2) & uint64(len(t.slots)-1)
}

// Predict exercises the safe shapes.
func (t *Table) Predict(pc uint64) (uint64, bool) {
	idx := t.index(pc)                      // helper whose return is masked
	v := t.slots[idx]                       // safe: binding traces to the helper
	v ^= t.slots[pc&uint64(len(t.slots)-1)] // safe: explicit mask
	v ^= t.tags[pc%uint64(len(t.tags))]     // safe: modulus by len
	v ^= t.slots[0]                         // safe: constant
	v ^= t.slots[len(t.slots)-1]            // safe: last-slot idiom
	for i := range t.tags {
		v ^= t.tags[i] // safe: range index
	}
	return v, v != 0
}

// Update exercises the comparison-bounded and mutating shapes.
func (t *Table) Update(pc, target uint64) {
	t.ring[t.head] = target // safe: head is compared against len(ring) below
	t.head++
	if t.head == len(t.ring) {
		t.head = 0
	}
	t.slots[pc] = target // want `index "pc" into "t.slots" is not provably in-bounds`
}

// Lookup exercises the unsafe shapes.
func (t *Table) Lookup(pc uint64) uint64 {
	h := pc * 0x9e3779b97f4a7c15
	x := t.slots[h] // want `index "h" into "t.slots" is not provably in-bounds`
	t.raw = h
	x ^= t.slots[t.raw] // want `index "t.raw" into "t.slots" is not provably in-bounds`
	sum := pc + 1
	x ^= t.slots[sum] // want `index "sum" into "t.slots" is not provably in-bounds`
	return x
}

// Observe exercises the escape hatch.
func (t *Table) Observe(r trace.Record) {
	t.pending = reorder(t.pending)
	t.slots[t.pending] = r.PC //lint:idxsafe reorder permutes within [0, len) by contract
	t.tags[t.pending] = r.PC  /*lint:idxsafe*/ // want `//lint:idxsafe directive needs a reason sentence`
}

// reorder is opaque to the analyzer: multiple statements, no provable bound.
func reorder(i int) int {
	j := i * 3
	return j
}

// coldIndex is not hot: unproven indices outside the hot set are ignored.
func coldIndex(s []uint64, i uint64) uint64 {
	return s[i]
}
