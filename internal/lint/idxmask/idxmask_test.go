package idxmask

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestIdxmask(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/a")
}
