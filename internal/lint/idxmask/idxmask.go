// Package idxmask implements the ppmlint analyzer proving hot-loop slice
// indices in-bounds by construction, so the compiler's bounds-check
// elimination can fire and cmd/bcegate's baseline stays empty on the
// predictor's Predict/Update/Lookup/Observe paths.
//
// For every slice or array index expression inside a hot function (see
// internal/lint/hotset), the index must provably derive from one of:
//
//   - a bitwise-AND mask (`h & (len(t)-1)`, `pc & tagMask`) — the pow2mask
//     analyzer separately proves the mask is 2^k-1;
//   - a modulus by len/cap of a table (`h % uint64(len(t))`);
//   - a non-negative constant;
//   - the index variable of a `range` statement, or a right-shift / len-1
//     derivation of a safe value;
//   - a variable or field compared against `len(...)`/`cap(...)` somewhere
//     in the same function (the ring-buffer wraparound idiom
//     `if head == len(ring) { head = 0 }` and ordinary `i < len(s)` loops);
//   - a variable or field whose every package-wide binding is itself safe
//     and which is never mutated by ++/--/op-assign (a field that only ever
//     holds masked values, like a BTB's pending index);
//   - a call to a same-package single-return helper whose result expression
//     is safe (the `b.index(pc)` convention).
//
// Anything else is reported. Indices the analyzer cannot see through are
// escaped line-by-line with `//lint:idxsafe <reason>`.
package idxmask

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/lint"
	"repro/internal/lint/hotset"
)

// Analyzer proves hot-loop slice indices in-bounds by construction.
var Analyzer = &lint.Analyzer{
	Name: "idxmask",
	Doc: "slice indices in hot-path functions must derive from a mask, a " +
		"modulus by len, or a value compared against len in the same function, " +
		"so bounds checks are eliminated; escape with //lint:idxsafe <reason>",
	Escape: "//lint:idxsafe <reason>",
	Run:    run,
}

// safeDirective is the per-line escape hatch for indices whose bound lives
// outside the analyzer's proof rules.
const safeDirective = "idxsafe"

// maxDepth bounds binding-chain and helper-call following; a field bound to
// a local bound to a helper whose result derives from a config field is a
// realistic chain.
const maxDepth = 8

func run(pass *lint.Pass) error {
	// Enforce the reason sentence on every //lint:idxsafe in the package,
	// even in files whose hot set is empty.
	escapes := map[*ast.File]map[int]bool{}
	for _, file := range pass.Files {
		escapes[file] = pass.EscapeLines(file, safeDirective)
	}

	hot, _ := hotset.Compute(pass)
	if len(hot) == 0 {
		return nil
	}

	st := &state{
		pass:     pass,
		decls:    map[types.Object]*ast.FuncDecl{},
		bindings: map[types.Object][]ast.Expr{},
		poisoned: map[types.Object]bool{},
	}
	st.collect()

	for _, hf := range hot {
		bounded := st.boundedObjects(hf.Decl)
		escaped := escapes[hf.File]
		ast.Inspect(hf.Decl.Body, func(n ast.Node) bool {
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(idx.X)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array:
			default:
				return true // map/string/generic instantiation: no bounds panic to elide
			}
			if st.safeIndex(idx.Index, bounded, maxDepth) {
				return true
			}
			if lint.Escaped(pass.Fset, escaped, idx.Pos()) {
				return true
			}
			pass.Reportf(idx.Index.Pos(),
				"index %q into %q is not provably in-bounds: derive it from a power-of-two mask, a modulus by len, or a value compared against len (hot path via %s)",
				types.ExprString(idx.Index), types.ExprString(idx.X), hf.Root)
			return true
		})
	}
	return nil
}

type state struct {
	pass *lint.Pass
	// decls maps every package function object to its declaration, for
	// following single-return index helpers.
	decls map[types.Object]*ast.FuncDecl
	// bindings maps a variable or field to the right-hand sides of every
	// plain assignment that feeds it.
	bindings map[types.Object][]ast.Expr
	// poisoned marks objects mutated by ++/-- or an op-assignment: their
	// bindings no longer describe the value they hold.
	poisoned map[types.Object]bool
}

// collect gathers, in one pass over the package, function declarations and
// the package-wide binding/poison sets.
func (s *state) collect() {
	info := s.pass.TypesInfo
	for _, file := range s.pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := info.ObjectOf(fd.Name); obj != nil {
					s.decls[obj] = fd
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
					for _, lhs := range x.Lhs {
						s.poison(lhs)
					}
					return true
				}
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						// x, y := f(): the call result carries no provable bound.
						s.poison(lhs)
						continue
					}
					s.record(lhs, x.Rhs[i])
				}
			case *ast.IncDecStmt:
				s.poison(x.X)
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) {
						s.record(name, x.Values[i])
					}
				}
			case *ast.CompositeLit:
				t := info.TypeOf(x)
				if t == nil {
					return true
				}
				if _, isStruct := t.Underlying().(*types.Struct); !isStruct {
					return true
				}
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						s.record(kv.Key, kv.Value)
					}
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					// &obj escapes: writes through the pointer are invisible.
					s.poison(x.X)
				}
			}
			return true
		})
	}
}

func (s *state) record(target, value ast.Expr) {
	obj := lint.ObjectOf(s.pass.TypesInfo, target)
	if obj == nil {
		return
	}
	s.bindings[obj] = append(s.bindings[obj], lint.Unparen(s.pass.TypesInfo, value))
}

func (s *state) poison(target ast.Expr) {
	if obj := lint.ObjectOf(s.pass.TypesInfo, target); obj != nil {
		s.poisoned[obj] = true
	}
}

// boundedObjects returns the objects that fd's own control flow bounds: the
// index variables of range statements, and any variable or field compared
// against a len()/cap() call anywhere in the body.
func (s *state) boundedObjects(fd *ast.FuncDecl) map[types.Object]bool {
	info := s.pass.TypesInfo
	bounded := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if x.Key == nil {
				return true
			}
			t := info.TypeOf(x.X)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array:
				if obj := lint.ObjectOf(info, x.Key); obj != nil {
					bounded[obj] = true
				}
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				mark := func(e, other ast.Expr) {
					if !containsLenCall(other) {
						return
					}
					if obj := lint.ObjectOf(info, lint.Unparen(info, e)); obj != nil {
						bounded[obj] = true
					}
				}
				mark(x.X, x.Y)
				mark(x.Y, x.X)
			}
		}
		return true
	})
	return bounded
}

// containsLenCall reports whether a len() or cap() call appears anywhere in e.
func containsLenCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// safeIndex reports whether index expression e is provably in-bounds under
// the analyzer's derivation rules.
func (s *state) safeIndex(e ast.Expr, bounded map[types.Object]bool, depth int) bool {
	if depth == 0 {
		return false
	}
	info := s.pass.TypesInfo
	e = lint.Unparen(info, e)

	// Non-negative constants index fixed-size state; the compiler proves the
	// rest at build time (and bcegate catches what it cannot).
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		v, exact := constant.Int64Val(tv.Value)
		return exact && v >= 0
	}

	switch x := e.(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.AND:
			// A mask bounds the value; pow2mask proves the mask itself.
			return true
		case token.REM:
			// h % len(t) (with or without a conversion) bounds to [0, len).
			return containsLenCall(x.Y) || isConst(info, x.Y)
		case token.SHR:
			// A right shift never grows a safe value.
			return s.safeIndex(x.X, bounded, depth-1)
		case token.SUB:
			// len(s)-1: the canonical last-slot index.
			return containsLenCall(x.X) && isConst(info, x.Y)
		}
		return false

	case *ast.CallExpr:
		// Unparen already unwrapped conversions, so this is a real call. A
		// same-package single-return helper is safe when its result
		// expression is, evaluated in the helper's own bounded context.
		obj := lint.ObjectOf(info, x.Fun)
		fd, ok := s.decls[obj]
		if !ok {
			return false
		}
		ret := singleReturn(fd)
		if ret == nil {
			return false
		}
		return s.safeIndex(ret, s.boundedObjects(fd), depth-1)

	case *ast.Ident, *ast.SelectorExpr:
		obj := lint.ObjectOf(info, x)
		if obj == nil {
			return false
		}
		if bounded[obj] {
			return true
		}
		return s.safeBindings(obj, bounded, depth-1)
	}
	return false
}

// safeBindings reports whether every package-wide binding of obj is itself a
// safe index derivation and obj is never mutated in place.
func (s *state) safeBindings(obj types.Object, bounded map[types.Object]bool, depth int) bool {
	if depth == 0 || s.poisoned[obj] {
		return false
	}
	bs := s.bindings[obj]
	if len(bs) == 0 {
		return false
	}
	for _, b := range bs {
		if !s.safeIndex(b, bounded, depth-1) {
			return false
		}
	}
	return true
}

// singleReturn returns the result expression of fd when its body is a single
// return with one value, or nil.
func singleReturn(fd *ast.FuncDecl) ast.Expr {
	if len(fd.Body.List) != 1 {
		return nil
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	return ret.Results[0]
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Int
}
