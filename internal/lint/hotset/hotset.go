// Package hotset computes the set of hot-path functions in a package: the
// functions reachable from the simulator's per-lookup entry points, on which
// the hotpath and ifacecall analyzers enforce the repository's zero-
// allocation / no-dispatch discipline.
//
// Roots are discovered two ways:
//
//  1. Interface roots: the Predict, Update, Lookup and Observe methods of
//     every concrete type implementing predictor.IndirectPredictor — the
//     per-branch protocol the engine drives once per committed record.
//  2. Annotation roots: any function whose doc comment carries a
//     `//ppm:hotpath` directive. Support packages (hashing, history,
//     counter, ...) mark their per-lookup helpers this way so their bodies
//     are checked in the package that owns them, even though the call graph
//     never crosses package boundaries here.
//
// A `//ppm:coldpath` directive in a function's doc comment removes it from
// the hot set entirely (used by measurement-only predictors like the oracle,
// whose unbounded bookkeeping is not hardware). Reachability is computed over
// same-package static calls: calls into other packages are trusted to be
// annotated — and therefore checked — on their own side of the boundary.
package hotset

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint"
)

// HotpathDirective marks a function as a hot-path root when `//ppm:hotpath`
// opens a line of the function's doc comment.
const HotpathDirective = "hotpath"

// ColdpathDirective (`//ppm:coldpath`) excludes a function from the hot set.
const ColdpathDirective = "coldpath"

// predictorPath is the package defining the predictor contract.
const predictorPath = "repro/internal/predictor"

// rootMethodNames are the IndirectPredictor-implementation methods treated
// as hot-path roots: the per-lookup protocol plus the table probe verb.
var rootMethodNames = map[string]bool{
	"Predict": true,
	"Update":  true,
	"Lookup":  true,
	"Observe": true,
}

// Func is one hot function: its declaration and the root that made it hot.
type Func struct {
	Decl *ast.FuncDecl
	File *ast.File
	// Root names the entry point this function is reachable from, e.g.
	// "(*PPM).Predict" or "SFSXS" for an annotated root.
	Root string
	// Cold reports a //ppm:coldpath opt-out: the function is excluded from
	// the hot set, and hot callers referencing it are themselves flagged by
	// the hotpath analyzer.
	Cold bool
}

// Compute returns the package's hot functions in source order, plus the set
// of functions opted out with //ppm:coldpath (keyed by object, for call-site
// checks).
func Compute(pass *lint.Pass) (hot []*Func, cold map[types.Object]bool) {
	type declInfo struct {
		decl *ast.FuncDecl
		file *ast.File
	}
	decls := map[types.Object]declInfo{}
	cold = map[types.Object]bool{}

	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(fd.Name)
			if obj == nil {
				continue
			}
			decls[obj] = declInfo{decl: fd, file: file}
			if hasDirective(fd, ColdpathDirective) {
				cold[obj] = true
			}
		}
	}

	iface := indirectPredictorInterface(pass.Pkg)

	// Seed the worklist with roots.
	reached := map[types.Object]*Func{}
	var work []types.Object
	add := func(obj types.Object, root string) {
		if cold[obj] {
			return
		}
		if _, seen := reached[obj]; seen {
			return
		}
		di, ok := decls[obj]
		if !ok {
			return
		}
		reached[obj] = &Func{Decl: di.decl, File: di.file, Root: root}
		work = append(work, obj)
	}

	for obj, di := range decls {
		fd := di.decl
		if hasDirective(fd, HotpathDirective) {
			add(obj, Label(fd))
			continue
		}
		if iface != nil && fd.Recv != nil && rootMethodNames[fd.Name.Name] &&
			receiverImplements(pass, fd, iface) {
			add(obj, Label(fd))
		}
	}

	// BFS over same-package static calls, carrying the root label forward.
	for len(work) > 0 {
		obj := work[0]
		work = work[1:]
		info := reached[obj]
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lint.ObjectOf(pass.TypesInfo, call.Fun)
			fn, ok := callee.(*types.Func)
			if !ok || fn.Pkg() != pass.Pkg {
				return true
			}
			add(fn, info.Root)
			return true
		})
	}

	for _, f := range reached {
		hot = append(hot, f)
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].Decl.Pos() < hot[j].Decl.Pos() })
	return hot, cold
}

// hasDirective reports whether the function's doc comment carries the
// given //ppm:<directive> annotation.
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if prefix, name, _, ok := lint.ParseDirective(c.Text); ok && prefix == "ppm" && name == directive {
			return true
		}
	}
	return false
}

// Label renders a function's display name exactly as the compiler prints
// it in -m diagnostics, e.g. "(*PPM).Predict", "Hysteresis.Value" or "SFSXS".
func Label(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	var b strings.Builder
	if star, ok := t.(*ast.StarExpr); ok {
		b.WriteString("(*")
		if id, ok := star.X.(*ast.Ident); ok {
			b.WriteString(id.Name)
		}
		b.WriteString(")")
	} else if id, ok := t.(*ast.Ident); ok {
		b.WriteString(id.Name)
	}
	b.WriteString(".")
	b.WriteString(fd.Name.Name)
	return b.String()
}

// indirectPredictorInterface resolves predictor.IndirectPredictor from the
// analyzed package or its direct imports, or nil when out of scope.
func indirectPredictorInterface(pkg *types.Package) *types.Interface {
	var ppkg *types.Package
	if pkg.Path() == predictorPath {
		ppkg = pkg
	} else {
		for _, imp := range pkg.Imports() {
			if imp.Path() == predictorPath {
				ppkg = imp
				break
			}
		}
	}
	if ppkg == nil {
		return nil
	}
	tn, ok := ppkg.Scope().Lookup("IndirectPredictor").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

// receiverImplements reports whether the method's receiver base type (or a
// pointer to it) implements iface.
func receiverImplements(pass *lint.Pass, fd *ast.FuncDecl, iface *types.Interface) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	rt := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if rt == nil {
		return false
	}
	if types.Implements(rt, iface) {
		return true
	}
	if _, isPtr := rt.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(rt), iface)
	}
	return false
}
