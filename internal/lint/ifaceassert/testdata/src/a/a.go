// Package a exercises the ifaceassert analyzer: concrete IndirectPredictor
// implementations must carry compile-time conformance assertions for every
// predictor interface they satisfy.
package a

import (
	"repro/internal/predictor"
	"repro/internal/trace"
)

// Good implements IndirectPredictor and Resetter, with both assertions.
type Good struct{ last uint64 }

var (
	_ predictor.IndirectPredictor = (*Good)(nil)
	_ predictor.Resetter          = (*Good)(nil)
)

// Name identifies the predictor.
func (g *Good) Name() string { return "good" }

// Predict returns the last committed target.
func (g *Good) Predict(pc uint64) (uint64, bool) { return g.last, g.last != 0 }

// Update trains with the resolved target.
func (g *Good) Update(pc, target uint64) { g.last = target }

// Observe advances history.
func (g *Good) Observe(r trace.Record) {}

// Reset returns to power-up state.
func (g *Good) Reset() { g.last = 0 }

// Bad implements IndirectPredictor and Sized but asserts neither.
type Bad struct{ n int } // want `Bad implements predictor\.IndirectPredictor but lacks a compile-time assertion` `Bad implements predictor\.Sized but lacks a compile-time assertion`

// Name identifies the predictor.
func (b *Bad) Name() string { return "bad" }

// Predict never predicts.
func (b *Bad) Predict(pc uint64) (uint64, bool) { return 0, false }

// Update trains with the resolved target.
func (b *Bad) Update(pc, target uint64) {}

// Observe advances history.
func (b *Bad) Observe(r trace.Record) {}

// Entries reports the storage budget.
func (b *Bad) Entries() int { return b.n }

// Helper is not a predictor at all, so no assertions are required.
type Helper struct{ hits int }

// Bump counts a hit.
func (h *Helper) Bump() { h.hits++ }
