// Package ifaceassert implements the ppmlint analyzer enforcing the
// repository's compile-time conformance convention: every concrete type that
// implements predictor.IndirectPredictor must carry a package-level
//
//	var _ predictor.IndirectPredictor = (*T)(nil)
//
// assertion — and likewise for each of the optional capability interfaces
// (predictor.Resetter, predictor.Sized, predictor.Costed) the type
// implements. The assertions turn an accidental method-set change (renaming
// Update, changing a signature) into a build failure in the package that owns
// the type, instead of a type error at a distant call site or, worse, a
// silently skipped capability in the harness's interface upgrades.
package ifaceassert

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the interface-assertion checker.
var Analyzer = &lint.Analyzer{
	Name: "ifaceassert",
	Doc:  "concrete IndirectPredictor implementations must carry var _ I = (*T)(nil) assertions for every predictor interface they satisfy",
	Run:  run,
}

const predictorPath = "repro/internal/predictor"

// capability interfaces checked, in report order. IndirectPredictor gates the
// whole check: types not implementing it (engines, tables, caches) are exempt.
var ifaceNames = []string{"IndirectPredictor", "Resetter", "Sized", "Costed"}

func run(pass *lint.Pass) error {
	ifaces := resolveInterfaces(pass.Pkg)
	if ifaces == nil {
		return nil // package does not use the predictor contract
	}

	asserted := collectAssertions(pass, ifaces)

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if ok && !tn.IsAlias() {
			checkType(pass, tn, ifaces, asserted)
		}
	}
	return nil
}

// resolveInterfaces finds the four predictor interfaces from the package's
// direct imports (or the package itself), keyed by name. Returns nil when the
// predictor package is not in scope.
func resolveInterfaces(pkg *types.Package) map[string]*types.Interface {
	var ppkg *types.Package
	if pkg.Path() == predictorPath {
		ppkg = pkg
	} else {
		for _, imp := range pkg.Imports() {
			if imp.Path() == predictorPath {
				ppkg = imp
				break
			}
		}
	}
	if ppkg == nil {
		return nil
	}
	out := map[string]*types.Interface{}
	for _, name := range ifaceNames {
		tn, ok := ppkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
			out[name] = iface
		}
	}
	if out["IndirectPredictor"] == nil {
		return nil
	}
	return out
}

// collectAssertions scans package-level `var _ I = expr` declarations and
// records, per named type, which predictor interfaces it is asserted against.
func collectAssertions(pass *lint.Pass, ifaces map[string]*types.Interface) map[*types.TypeName]map[string]bool {
	asserted := map[*types.TypeName]map[string]bool{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil || len(vs.Values) != len(vs.Names) {
					continue
				}
				declared := pass.TypesInfo.TypeOf(vs.Type)
				ifaceName := interfaceName(declared, ifaces)
				if ifaceName == "" {
					continue
				}
				for i, n := range vs.Names {
					if n.Name != "_" {
						continue
					}
					if tn := namedTypeOf(pass.TypesInfo.TypeOf(vs.Values[i])); tn != nil {
						m := asserted[tn]
						if m == nil {
							m = map[string]bool{}
							asserted[tn] = m
						}
						m[ifaceName] = true
					}
				}
			}
		}
	}
	return asserted
}

// checkType reports each predictor interface tn implements without a matching
// compile-time assertion. Only IndirectPredictor implementations are checked.
func checkType(pass *lint.Pass, tn *types.TypeName, ifaces map[string]*types.Interface, asserted map[*types.TypeName]map[string]bool) {
	t := tn.Type()
	if types.IsInterface(t) {
		return
	}
	ptr := types.NewPointer(t)
	implements := func(iface *types.Interface) bool {
		return types.Implements(t, iface) || types.Implements(ptr, iface)
	}
	if !implements(ifaces["IndirectPredictor"]) {
		return
	}
	for _, name := range ifaceNames {
		iface := ifaces[name]
		if iface == nil || !implements(iface) {
			continue
		}
		if !asserted[tn][name] {
			pass.Reportf(tn.Pos(), "%s implements predictor.%s but lacks a compile-time assertion; add `var _ predictor.%s = (*%s)(nil)`", tn.Name(), name, name, tn.Name())
		}
	}
}

// interfaceName matches a declared assertion type against the predictor
// interfaces, returning the matched name or "".
func interfaceName(t types.Type, ifaces map[string]*types.Interface) string {
	if t == nil {
		return ""
	}
	for name, iface := range ifaces {
		if types.Identical(t.Underlying(), iface) {
			return name
		}
	}
	return ""
}

// namedTypeOf peels pointers and conversions down to the named type a value
// expression asserts, e.g. (*PPM)(nil) -> PPM.
func namedTypeOf(t types.Type) *types.TypeName {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj()
		default:
			return nil
		}
	}
}
