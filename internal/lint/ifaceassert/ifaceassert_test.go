package ifaceassert_test

import (
	"testing"

	"repro/internal/lint/ifaceassert"
	"repro/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, ifaceassert.Analyzer, "testdata/src/a")
}
