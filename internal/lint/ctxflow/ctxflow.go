// Package ctxflow enforces context threading discipline: cancellation must
// flow from the caller down, never be re-rooted mid-stack. A dropped
// context is how a drain deadline or client cancel silently stops reaching
// a goroutine — the bug class golifetime's termination-signal check assumes
// away.
//
// Three rules:
//
//   - context.Background() and context.TODO() are banned outside package
//     main. A library that needs a root context is making a claim — "this
//     work is detached from every caller by design" — and must state it
//     with `//lint:rootctx <reason>` on the call's line or the line above
//     (the serve job table, whose jobs outlive the submitting request, is
//     the canonical escape).
//   - inside a function that already receives a context.Context,
//     Background/TODO is banned everywhere, package main included: the
//     function holds a context and must derive from it.
//   - a named, non-blank context.Context parameter that the function body
//     never references is a dropped context; thread it into callees or
//     rename it to _ to document that the signature is interface-imposed.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// RootctxDirective justifies a fresh root context outside main.
const RootctxDirective = "rootctx"

// Analyzer reports dropped or re-rooted contexts.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc: "context.Background()/TODO() are banned outside package main " +
		"(escape: //lint:rootctx <reason>) and everywhere inside a function " +
		"that already receives a ctx; a ctx parameter the body never uses is " +
		"a dropped context",
	Escape: "//lint:rootctx <reason>",
	Run:    run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		escapes := pass.EscapeLines(file, RootctxDirective)
		lint.WalkStack(file, func(n ast.Node, stack []ast.Node) {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkRootCall(pass, x, stack, escapes)
			case *ast.FuncDecl:
				checkUnusedParam(pass, x)
			}
		})
	}
	return nil
}

// checkRootCall flags context.Background()/TODO() call sites.
func checkRootCall(pass *lint.Pass, call *ast.CallExpr, stack []ast.Node, escapes map[int]bool) {
	fn, ok := lint.ObjectOf(pass.TypesInfo, call.Fun).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	name := fn.Name()
	if name != "Background" && name != "TODO" {
		return
	}
	if enclosingHasCtx(pass.TypesInfo, stack) {
		pass.Reportf(call.Pos(), "context.%s() inside a function that receives a context.Context; derive from the parameter instead of re-rooting", name)
		return
	}
	if pass.Pkg.Name() == "main" {
		return
	}
	if lint.Escaped(pass.Fset, escapes, call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(), "context.%s() outside package main; accept a ctx from the caller or annotate //lint:rootctx <reason>", name)
}

// enclosingHasCtx reports whether the innermost enclosing function literal
// or declaration takes a context.Context parameter.
func enclosingHasCtx(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			ft = f.Type
		case *ast.FuncDecl:
			ft = f.Type
		default:
			continue
		}
		if ft.Params != nil {
			for _, field := range ft.Params.List {
				if isContext(info.TypeOf(field.Type)) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// checkUnusedParam flags named context parameters the body never reads.
func checkUnusedParam(pass *lint.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		if !isContext(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(name)
			if obj == nil {
				continue
			}
			if !bodyUses(pass.TypesInfo, fd.Body, obj) {
				pass.Reportf(name.Pos(), "context parameter %s is never used: the caller's cancellation stops here; thread it into callees or rename it to _", name.Name)
			}
		}
	}
}

// bodyUses reports whether any identifier in body resolves to obj.
func bodyUses(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
