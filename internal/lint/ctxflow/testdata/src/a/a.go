// Package a is the ctxflow fixture: re-rooted contexts, dropped context
// parameters, and the //lint:rootctx escape.
package a

import (
	"context"
	"time"
)

// reroots builds a fresh root even though it was handed a context. The
// dropped parameter is its own finding on top of the re-root.
func reroots(ctx context.Context) error { // want `never used`
	c, cancel := context.WithTimeout(context.Background(), time.Second) // want `derive from the parameter`
	defer cancel()
	return lookup(c)
}

// threads derives from the parameter.
func threads(ctx context.Context) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return lookup(c)
}

// rerootsInLiteral re-roots inside a closure whose own signature takes ctx.
func rerootsInLiteral() func(context.Context) error {
	return func(ctx context.Context) error {
		return lookup(context.TODO()) // want `derive from the parameter`
	}
}

// orphanRoot builds a root context in a library with no justification.
func orphanRoot() error {
	return lookup(context.Background()) // want `rootctx`
}

// todoRoot is the same finding for TODO.
func todoRoot() error {
	return lookup(context.TODO()) // want `rootctx`
}

// blessedRoot is detached from every caller by design and says so.
func blessedRoot() error {
	//lint:rootctx session contexts outlive the request that created them
	return lookup(context.Background())
}

// blessedRootInline annotates on the offending line itself.
func blessedRootInline() error {
	return lookup(context.Background()) //lint:rootctx detached supervisor by design
}

// bareRoot escapes without a reason: suppressed, but rejected.
func bareRoot() error {
	return lookup(context.Background()) /*lint:rootctx*/ // want `//lint:rootctx directive needs a reason sentence`
}

// drops accepts a context and never consults it.
func drops(ctx context.Context, n int) int { // want `never used`
	return n * 2
}

// interfaceImposed documents the unused parameter with a blank name.
func interfaceImposed(_ context.Context, n int) int {
	return n * 2
}

// usesViaCallee threads its context into a callee; that is a use.
func usesViaCallee(ctx context.Context) error {
	return lookup(ctx)
}

func lookup(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
