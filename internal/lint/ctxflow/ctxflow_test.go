package ctxflow

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/a")
}
