package mustclose

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestMustclose(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/a")
}
