// Package mustclose reports discarded error returns from resource-cleanup
// calls: Close, Flush, Shutdown and Sync. A buffered writer that fails its
// final Flush, or a file that fails Close, has silently lost data — the
// exact bug cmd/tracegen shipped with until PR 4 checked both and turned
// them into the exit code.
//
// A cleanup call is discarded when it stands alone as an expression
// statement, or behind defer/go (both throw the result away). An explicit
// `_ = w.Close()` is allowed: the discard is visible to a reviewer.
//
// Close on a pure reader (a type implementing io.Reader but not io.Writer,
// like an http.Response body) is exempt — nothing buffered can be lost.
// Close on anything else, and Flush/Shutdown/Sync everywhere, must be
// checked. A call whose error is genuinely meaningless (closing a
// read-only *os.File, whose static type is also a writer) opts out with
// `//lint:closeerr <reason>` on the call's line or the line above.
package mustclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// CloseerrDirective marks a cleanup call whose error is intentionally
// ignored, with a reason.
const CloseerrDirective = "closeerr"

// Analyzer reports unchecked Close/Flush/Shutdown/Sync error returns.
var Analyzer = &lint.Analyzer{
	Name: "mustclose",
	Doc: "Close/Flush/Shutdown/Sync calls returning an error must not be " +
		"discarded (bare statement, defer, go); Close on a pure reader is " +
		"exempt, anything else escapes with //lint:closeerr <reason>",
	Escape: "//lint:closeerr <reason>",
	Run:    run,
}

// cleanupNames are the method names whose error return signals lost work.
var cleanupNames = map[string]bool{
	"Close":    true,
	"Flush":    true,
	"Shutdown": true,
	"Sync":     true,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		escapes := pass.EscapeLines(file, CloseerrDirective)
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			verb := "discarded"
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
				verb = "discarded by defer"
			case *ast.GoStmt:
				call = s.Call
				verb = "discarded by go"
			default:
				return true
			}
			if call == nil {
				return true
			}
			name, ok := uncheckedCleanup(pass.TypesInfo, call)
			if !ok || lint.Escaped(pass.Fset, escapes, call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(), "%s error %s: check it, assign it explicitly, or annotate //lint:closeerr <reason>", name, verb)
			return true
		})
	}
	return nil
}

// uncheckedCleanup reports whether call is a cleanup method whose error
// result the surrounding statement throws away, returning the method name.
func uncheckedCleanup(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn, ok := lint.ObjectOf(info, call.Fun).(*types.Func)
	if !ok || !cleanupNames[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	if fn.Name() == "Close" && pureReaderReceiver(info, call) {
		return "", false
	}
	return fn.Name(), true
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	t := res.At(res.Len() - 1).Type()
	named, ok := t.(*types.Named)
	return ok && named.Obj() == types.Universe.Lookup("error")
}

// pureReaderReceiver reports whether the Close call's receiver expression
// has a static type implementing io.Reader but not io.Writer — a read-side
// closer whose error cannot mean lost data.
func pureReaderReceiver(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	return implementsMaybePtr(t, readerIface) && !implementsMaybePtr(t, writerIface)
}

// implementsMaybePtr checks t and *t against iface.
func implementsMaybePtr(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// readerIface and writerIface are synthetic io.Reader / io.Writer
// interfaces, built from universe types so the analyzer does not depend on
// the analyzed package importing io. Method-set matching in go/types is
// structural on name + signature, and both methods are exported, so the
// nil-package methods match the real io interfaces.
var readerIface = byteMethodIface("Read")
var writerIface = byteMethodIface("Write")

func byteMethodIface(name string) *types.Interface {
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, name, sig)}, nil)
	iface.Complete()
	return iface
}
