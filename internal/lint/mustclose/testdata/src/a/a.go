// Package a is the mustclose fixture: discarded cleanup errors in every
// statement shape, the pure-reader exemption, and the //lint:closeerr
// escape.
package a

import (
	"bufio"
	"io"
	"net/http"
	"os"
)

// bareClose throws the writer's Close error away.
func bareClose(f *os.File) {
	f.Close() // want `Close error discarded`
}

// deferredClose throws it away behind defer.
func deferredClose(f *os.File) {
	defer f.Close() // want `discarded by defer`
}

// goClose throws it away behind go.
func goClose(f *os.File) {
	go f.Close() // want `discarded by go`
}

// bareFlush loses whatever the buffer still held.
func bareFlush(w *bufio.Writer) {
	w.Flush() // want `Flush error discarded`
}

// bareShutdown ignores whether the drain completed.
func bareShutdown(s *http.Server) {
	s.Shutdown(nil) // want `Shutdown error discarded`
}

// bareSync ignores whether the kernel accepted the data.
func bareSync(f *os.File) {
	f.Sync() // want `Sync error discarded`
}

// checkedClose consumes the error; nothing to report.
func checkedClose(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// explicitDiscard is visible to a reviewer and allowed.
func explicitDiscard(w *bufio.Writer) {
	_ = w.Flush()
}

// readerClose closes a pure reader: exempt, no buffered data to lose.
func readerClose(body io.ReadCloser) {
	defer body.Close()
}

// annotatedClose is a writer by type but read-only by mode, and says so.
func annotatedClose(f *os.File) {
	defer f.Close() //lint:closeerr opened read-only; Close cannot lose data
}

// annotatedAbove carries the escape on the line above.
func annotatedAbove(f *os.File) {
	//lint:closeerr read-only input file
	defer f.Close()
}

// bareAnnotated escapes without a reason: suppressed, but rejected.
func bareAnnotated(f *os.File) {
	defer f.Close() /*lint:closeerr*/ // want `//lint:closeerr directive needs a reason sentence`
}

// noErrorFlush has no error result to discard (http.Flusher).
func noErrorFlush(f http.Flusher) {
	f.Flush()
}
