package determinism_test

import (
	"testing"

	"repro/internal/lint/determinism"
	"repro/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, determinism.Analyzer, "testdata/src/a")
}
