// Package a exercises the determinism analyzer: wall-clock and global
// math/rand references are banned, and map iteration must not leak its order
// into output or unsorted accumulator slices.
package a

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stamp leaks wall-clock time into a result.
func Stamp() int64 {
	return time.Now().UnixNano() // want `use of time\.Now breaks run-to-run reproducibility`
}

// ServingClock reads the wall clock for serving metadata (job TTLs,
// latency metrics), which is exempt under the annotated escape hatch.
func ServingClock() int64 {
	return time.Now().Unix() //lint:wallclock serving metadata, never feeds simulation results
}

// AnnotatedRand shows the wallclock escape does not extend to randomness.
func AnnotatedRand() int {
	//lint:wallclock not a clock, still banned
	return rand.Intn(8) // want `use of math/rand\.Intn breaks run-to-run reproducibility`
}

// GlobalRand draws from the shared unseeded generator.
func GlobalRand() int {
	return rand.Intn(8) // want `use of math/rand\.Intn breaks run-to-run reproducibility`
}

// LocalRand draws from an explicitly seeded local generator, which is
// reproducible and therefore allowed.
func LocalRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(8)
}

// PrintAll lets map iteration order reach output directly.
func PrintAll(m map[string]int) {
	for k, v := range m { // want `map iteration order reaches output via fmt\.Println`
		fmt.Println(k, v)
	}
}

// Keys accumulates map keys in iteration order and never sorts them.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `slice "out" accumulates map keys/values in map order`
		out = append(out, k)
	}
	return out
}

// SortedKeys follows the blessed sort-after-range idiom.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum is order-independent, so the loop carries the escape hatch.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { //lint:sorted commutative reduction
		total += v
	}
	return total
}

// BareSum escapes without a reason: the finding stays suppressed, but the
// bare directive is itself rejected.
func BareSum(m map[string]int) int {
	total := 0
	for _, v := range m { /*lint:sorted*/ // want `//lint:sorted directive needs a reason sentence`
		total += v
	}
	return total
}
