// Package determinism implements the ppmlint analyzer that keeps the
// simulator bit-reproducible: every number in EXPERIMENTS.md depends on a
// given workload Config producing the same records, counters and report text
// on every run, so sources of run-to-run variation are banned from
// non-test code.
//
// Two rules are enforced:
//
//  1. No wall-clock or global-generator randomness: time.Now (and friends)
//     and the package-level math/rand generators are forbidden. Workloads
//     draw randomness from the seeded splitmix64 RNG in internal/workload.
//     Serving machinery (internal/serve and its clients) is the one place
//     wall-clock time is legitimate — TTL eviction, latency metrics,
//     Retry-After headers are wall-clock by nature and never feed
//     simulation results — so a time.* reference annotated `//lint:wallclock
//     <reason>` (same line or the line above) is exempt. The annotation does
//     NOT extend to math/rand: randomness stays seeded everywhere.
//
//  2. Map iteration must not reach output unordered: a `range` over a map
//     whose body appends to a slice is flagged unless the slice is passed to
//     a sort.* / slices.* call later in the same function (the
//     analysis.Profiles sort-after-range pattern is the blessed idiom), and
//     a range-over-map body that prints or writes directly is always
//     flagged. The `//lint:sorted` comment on (or above) the range statement
//     is the escape hatch for loops whose order provably cannot matter.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the determinism checker.
var Analyzer = &lint.Analyzer{
	Name:   "determinism",
	Doc:    "forbid wall-clock/global randomness and unordered map iteration that reaches output",
	Escape: "//lint:sorted <reason> (map order) or //lint:wallclock <reason> (time)",
	Run:    run,
}

// bannedFuncs maps package path -> function names whose use breaks
// reproducibility. For the math/rand packages the names list is nil, meaning
// every package-level function EXCEPT the New* constructors: the global
// generator is unseeded shared state, while rand.New(rand.NewSource(seed))
// is explicitly seeded and therefore reproducible.
var bannedFuncs = map[string][]string{
	"time":         {"Now", "Since", "Until"},
	"math/rand":    nil,
	"math/rand/v2": nil,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		escapes := pass.EscapeLines(file, "sorted")
		wallclock := pass.EscapeLines(file, "wallclock")
		ast.Inspect(file, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				checkBannedRef(pass, sel, wallclock)
			}
			return true
		})
		// Range statements are examined with their enclosing function in
		// hand, so the sort-after-range idiom can be recognized.
		lint.WalkStack(file, func(n ast.Node, stack []ast.Node) {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			if lint.Escaped(pass.Fset, escapes, rng.Pos()) {
				return
			}
			checkMapRange(pass, rng, enclosingFuncBody(stack))
		})
	}
	return nil
}

// checkBannedRef reports selector references to the banned nondeterminism
// sources. wallclock holds the `//lint:wallclock` directive lines of the
// file; it exempts time.* references only — serving metadata is allowed to
// read the clock, but nothing is allowed unseeded randomness.
func checkBannedRef(pass *lint.Pass, sel *ast.SelectorExpr, wallclock map[int]bool) {
	obj := pass.TypesInfo.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	names, banned := bannedFuncs[obj.Pkg().Path()]
	if !banned {
		return
	}
	if obj.Pkg().Path() == "time" && lint.Escaped(pass.Fset, wallclock, sel.Pos()) {
		return
	}
	// Only package-level functions and variables are banned; methods on
	// values (e.g. a local *rand.Rand with a fixed seed) carry their
	// determinism in their construction and are out of scope here.
	if _, isFunc := obj.(*types.Func); isFunc {
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			return
		}
	} else if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if names == nil {
		if strings.HasPrefix(obj.Name(), "New") {
			return // explicitly seeded local generators are reproducible
		}
		pass.Reportf(sel.Pos(), "use of %s.%s breaks run-to-run reproducibility; use the seeded workload RNG", obj.Pkg().Path(), obj.Name())
		return
	}
	for _, n := range names {
		if obj.Name() == n {
			pass.Reportf(sel.Pos(), "use of %s.%s breaks run-to-run reproducibility; derive timing-free results or thread a deterministic counter", obj.Pkg().Path(), obj.Name())
			return
		}
	}
}

// enclosingFuncBody returns the body of the innermost function declaration or
// literal on the stack, or nil.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// checkMapRange flags a range-over-map whose iteration order can escape:
// either directly (printing/writing inside the body) or via a slice that is
// appended to and never deterministically sorted afterwards.
func checkMapRange(pass *lint.Pass, rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	var appendTargets []types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, ok := outputCall(pass.TypesInfo, x); ok {
				pass.Reportf(rng.Pos(), "map iteration order reaches output via %s; iterate a sorted key slice instead (or mark //lint:sorted if order cannot matter)", name)
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if i < len(x.Lhs) {
					if obj := lint.ObjectOf(pass.TypesInfo, x.Lhs[i]); obj != nil {
						// Only slices that outlive the loop can leak its
						// order; loop-local accumulators cannot. Struct
						// fields always outlive it.
						outlives := obj.Pos() < rng.Pos()
						if v, ok := obj.(*types.Var); ok && v.IsField() {
							outlives = true
						}
						if outlives {
							appendTargets = append(appendTargets, obj)
						}
					}
				}
			}
		}
		return true
	})
	for _, obj := range appendTargets {
		if !sortedAfter(pass.TypesInfo, funcBody, obj, rng.End()) {
			pass.Reportf(rng.Pos(), "slice %q accumulates map keys/values in map order and is never sorted; sort it before use (the analysis.Profiles pattern) or mark //lint:sorted", obj.Name())
		}
	}
}

// outputCall reports whether call prints or writes: an fmt.Print*/Fprint*
// call, or a method call named like an io writer.
func outputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return "fmt." + fn.Name(), true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println", "Fprintf", "AddRow", "AddRowf":
			return fn.Name(), true
		}
	}
	return "", false
}

// sortedAfter reports whether, after end, the function body contains a
// sort.* or slices.* call that mentions obj.
func sortedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, end token.Pos) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < end {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if e, ok := a.(ast.Expr); ok {
					if lint.ObjectOf(info, e) == obj {
						mentioned = true
						return false
					}
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
