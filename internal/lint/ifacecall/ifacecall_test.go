package ifacecall_test

import (
	"testing"

	"repro/internal/lint/ifacecall"
	"repro/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, ifacecall.Analyzer, "testdata/src/a")
}
