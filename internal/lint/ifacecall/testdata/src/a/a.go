// Package a exercises the ifacecall analyzer: interface method calls in
// loops of hot-path functions are flagged when exactly one concrete type in
// scope implements the interface.
package a

import (
	"repro/internal/predictor"
	"repro/internal/trace"
)

// Hasher is the single-implementation interface the analyzer should flag.
type Hasher interface{ Hash(uint64) uint64 }

// SFS is the only Hasher in scope.
type SFS struct{ shift uint }

// Hash folds the address.
func (s SFS) Hash(x uint64) uint64 { return x >> s.shift }

// Policy has two implementations, so its dispatch is genuinely dynamic.
type Policy interface{ Keep(uint64) bool }

// KeepAll retains every entry.
type KeepAll struct{}

// Keep always retains.
func (KeepAll) Keep(uint64) bool { return true }

// KeepNone retains nothing.
type KeepNone struct{}

// Keep never retains.
func (KeepNone) Keep(uint64) bool { return false }

// Hot implements IndirectPredictor; its methods are hot roots.
type Hot struct {
	h    Hasher
	p    Policy
	tab  []uint64
	last uint64
}

var _ predictor.IndirectPredictor = (*Hot)(nil)

// Name identifies the predictor.
func (h *Hot) Name() string { return "hot" }

// Predict probes the table with the hashed path.
func (h *Hot) Predict(pc uint64) (uint64, bool) {
	for i := range h.tab {
		h.tab[i] = h.h.Hash(pc) // want `dynamic dispatch of Hasher\.Hash in a loop: SFS is the only implementation in scope`
	}
	return h.last, h.last != 0
}

// Update trains with the resolved target.
func (h *Hot) Update(pc, target uint64) {
	h.last = h.h.Hash(target) // outside any loop: not flagged
	for i := 0; i < 4; i++ {
		if h.p.Keep(pc) { // two implementations: not flagged
			h.last = target
		}
		h.last ^= h.h.Hash(pc) //lint:dynamic — the harness swaps hashers at runtime
		h.last ^= h.h.Hash(pc) /*lint:dynamic*/ // want `//lint:dynamic directive needs a reason sentence`
	}
}

// Observe advances history.
func (h *Hot) Observe(r trace.Record) { _ = r }
