// Package ifacecall flags devirtualizable dynamic dispatch on hot paths.
//
// A method call through an interface value inside a loop of a hot-path
// function (see internal/lint/hotset) pays an itab load and an indirect
// call per iteration, and blocks inlining. When exactly one concrete type
// in scope — the analyzed package plus its direct imports — implements the
// interface, the dispatch buys nothing: the analyzer reports it and names
// the unique implementation so the call can be devirtualized (store the
// concrete type, or type-switch once outside the loop).
//
// Intentional dispatch (a registry that future packages will extend) is
// suppressed with a `//lint:dynamic` comment on or above the call line.
package ifacecall

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
	"repro/internal/lint/hotset"
)

// Analyzer reports loop-carried interface calls with a provably unique
// concrete implementation.
var Analyzer = &lint.Analyzer{
	Name: "ifacecall",
	Doc: "report dynamic dispatch inside loops of hot-path functions where " +
		"exactly one concrete type in scope implements the interface, " +
		"suggesting devirtualization; suppress with //lint:dynamic <reason>",
	Escape: "//lint:dynamic <reason>",
	Run:    run,
}

// dynDirective suppresses a finding for dispatch that is dynamic on purpose.
const dynDirective = "dynamic"

func run(pass *lint.Pass) error {
	hot, _ := hotset.Compute(pass)
	if len(hot) == 0 {
		return nil
	}

	impls := map[*types.Interface][]types.Object{}
	escapes := map[*ast.File]map[int]bool{}

	for _, hf := range hot {
		if escapes[hf.File] == nil {
			escapes[hf.File] = pass.EscapeLines(hf.File, dynDirective)
		}
		esc := escapes[hf.File]
		lint.WalkStack(hf.Decl.Body, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !inLoop(stack) {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.MethodVal {
				return
			}
			recv := selection.Recv()
			iface, ok := recv.Underlying().(*types.Interface)
			if !ok {
				return
			}
			if lint.Escaped(pass.Fset, esc, call.Pos()) {
				return
			}
			only := uniqueImpl(pass.Pkg, iface, impls)
			if only == nil {
				return
			}
			pass.Reportf(call.Pos(),
				"dynamic dispatch of %s.%s in a loop: %s is the only implementation in scope; devirtualize or annotate //lint:dynamic (hot path via %s)",
				typeLabel(recv), sel.Sel.Name, only.Name(), hf.Root)
		})
	}
	return nil
}

// inLoop reports whether the node stack contains a for or range statement,
// stopping at function-literal boundaries (a loop outside the closure does
// not make the closure body loop-carried).
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// uniqueImpl returns the single concrete type implementing iface among the
// package's own scope and its direct imports, or nil when the count is not
// exactly one. Results are memoized per interface.
func uniqueImpl(pkg *types.Package, iface *types.Interface, memo map[*types.Interface][]types.Object) types.Object {
	if iface.NumMethods() == 0 {
		return nil
	}
	impls, ok := memo[iface]
	if !ok {
		scopes := []*types.Scope{pkg.Scope()}
		for _, imp := range pkg.Imports() {
			scopes = append(scopes, imp.Scope())
		}
		for _, scope := range scopes {
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				t := tn.Type()
				if types.IsInterface(t) {
					continue
				}
				if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
					impls = append(impls, tn)
				}
			}
		}
		memo[iface] = impls
	}
	if len(impls) == 1 {
		return impls[0]
	}
	return nil
}

// typeLabel renders the receiver interface's name for diagnostics.
func typeLabel(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
