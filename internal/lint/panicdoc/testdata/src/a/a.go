// Package a exercises the panicdoc analyzer: exported functions that can
// panic must say so in their doc comments, and panic messages follow the
// `pkg: <reason>` format.
package a

import "fmt"

// New builds a widget sized n.
func New(n int) int { // want `exported function New panics but its doc comment does not say so`
	if n <= 0 {
		panic("a: n must be positive")
	}
	return n
}

// NewChecked builds a widget sized n.
//
// Panics if n is not positive.
func NewChecked(n int) int {
	if n <= 0 {
		panic("a: n must be positive")
	}
	return n
}

// Indirect builds a widget after validation.
func Indirect(n int) int { // want `exported function Indirect can panic via validate`
	validate(n)
	return n
}

func validate(n int) {
	if n < 0 {
		panic(fmt.Sprintf("a: bad size %d", n))
	}
}

// Widget is a sized thing.
type Widget struct{ n int }

// Grow enlarges the widget.
func (w *Widget) Grow(by int) { // want `exported method Grow panics`
	if by < 0 {
		panic("a: negative growth")
	}
	w.n += by
}

// Explode documents its panic but formats the message wrong.
//
// Panics unconditionally.
func Explode() {
	panic("kaboom with no package prefix") // want "does not follow the `pkg: <reason>` format"
}
