package panicdoc_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/panicdoc"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, panicdoc.Analyzer, "testdata/src/a")
}
