// Package panicdoc implements the ppmlint analyzer enforcing the
// repository's panic contract convention: constructors and other exported
// entry points validate their hardware-model configuration with panics
// (table sizes, history depths, state-machine orders), and both halves of
// that contract must be visible to callers:
//
//  1. an exported function or method that can panic — directly, or through
//     an unexported same-package helper it calls — must say so in its doc
//     comment (any sentence containing "panic" satisfies the check);
//
//  2. every panic carrying a string message must use the `pkg: <reason>`
//     format (e.g. "cbt: entries must be a positive power of two"), so a
//     panic escaping a 20-package simulation run identifies its source.
package panicdoc

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the panic-contract checker.
var Analyzer = &lint.Analyzer{
	Name: "panicdoc",
	Doc:  "exported functions that can panic must document it; panic messages use the `pkg: <reason>` format",
	Run:  run,
}

var msgFormat = regexp.MustCompile(`^[a-z][a-z0-9/]*: \S`)

func run(pass *lint.Pass) error {
	// First pass: which functions in this package panic directly, and are
	// their string messages well-formed? Results are memoized so message
	// format is checked (and reported) exactly once per panic site.
	direct := map[string]bool{}        // unexported function name -> panics
	panics := map[*ast.FuncDecl]bool{} // any func decl -> panics directly
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			panics[fd] = panicsDirectly(pass, fd)
			if panics[fd] && fd.Recv == nil && !fd.Name.IsExported() {
				direct[fd.Name.Name] = true
			}
		}
	}

	// Second pass: exported functions must document reachable panics.
	for _, fd := range decls {
		if !fd.Name.IsExported() {
			continue
		}
		if fd.Recv != nil && !exportedRecv(fd) {
			continue
		}
		reason := ""
		if panics[fd] {
			reason = "panics"
		} else if callee := callsPanickingHelper(fd, direct); callee != "" {
			reason = "can panic via " + callee
		}
		if reason == "" {
			continue
		}
		if !docMentionsPanic(fd.Doc) {
			pass.Reportf(fd.Name.Pos(), "exported %s %s but its doc comment does not say so; add a \"Panics if ...\" sentence", describe(fd), reason)
		}
	}
	return nil
}

// panicsDirectly reports whether fd's body contains a panic call outside any
// nested function literal, and checks message format on the way.
func panicsDirectly(pass *lint.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's panics fire on its own call path
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !isBuiltin {
			return true // shadowed panic is not the builtin
		}
		found = true
		if len(call.Args) == 1 {
			checkMessage(pass, call.Args[0])
		}
		return true
	})
	return found
}

// checkMessage enforces the `pkg: <reason>` format on string panic payloads:
// either a string literal, or a fmt.Sprintf/Errorf whose format literal is
// checkable.
func checkMessage(pass *lint.Pass, arg ast.Expr) {
	lit := stringPayload(pass, arg)
	if lit == "" {
		return
	}
	if !msgFormat.MatchString(lit) {
		pass.Reportf(arg.Pos(), "panic message %q does not follow the `pkg: <reason>` format", lit)
	}
}

// stringPayload extracts a checkable message string from a panic argument.
func stringPayload(pass *lint.Pass, arg ast.Expr) string {
	arg = lint.Unparen(pass.TypesInfo, arg)
	if call, ok := arg.(*ast.CallExpr); ok {
		// fmt.Sprintf("...", ...) / fmt.Errorf("...", ...)
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && len(call.Args) >= 1 {
			if fn := pass.TypesInfo.ObjectOf(sel.Sel); fn != nil && fn.Pkg() != nil &&
				(fn.Pkg().Path() == "fmt" || fn.Pkg().Path() == "errors") {
				arg = call.Args[0]
			}
		}
	}
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

// callsPanickingHelper reports the name of an unexported same-package
// function fd calls that panics directly, or "". Exported callees document
// their own contract.
func callsPanickingHelper(fd *ast.FuncDecl, direct map[string]bool) string {
	callee := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if callee != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && direct[id.Name] {
			callee = id.Name
			return false
		}
		return true
	})
	return callee
}

func docMentionsPanic(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(strings.ToLower(doc.Text()), "panic")
}

func exportedRecv(fd *ast.FuncDecl) bool {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (T[P]) do not occur in this repository; a plain
	// identifier is the only shape handled.
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func describe(fd *ast.FuncDecl) string {
	if fd.Recv == nil {
		return "function " + fd.Name.Name
	}
	return "method " + fd.Name.Name
}
