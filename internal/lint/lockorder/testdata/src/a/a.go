// Package a is the lockorder fixture: a Server/Job lock hierarchy modeled
// on internal/serve, with a clean acquisition order, a reversed-order
// function that closes a cycle, blocking operations under a held lock, and
// the //lint:lockheld escape.
package a

import (
	"os"
	"sync"
)

// Server owns the session table; Server.mu guards it. The intended order is
// Server.mu before Job.mu, as in admit.
type Server struct {
	mu   sync.Mutex
	jobs map[string]*Job
	sem  chan struct{}
}

// Job is one admitted session; Job.mu guards its state.
type Job struct {
	mu    sync.Mutex
	state int
}

// admit establishes the blessed order: Server.mu, then each Job.mu.
func (s *Server) admit(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		j.state++
		j.mu.Unlock()
	}
	j := &Job{}
	s.jobs[id] = j
	return j
}

// finish reverses the order — Job.mu then Server.mu — closing the cycle
// admit opened. Run alongside admit, each goroutine can hold one lock and
// wait forever on the other.
func (s *Server) finish(j *Job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	s.mu.Lock() // want `lock ordering cycle: Job.mu -> Server.mu -> Job.mu`
	delete(s.jobs, "id")
	s.mu.Unlock()
}

// sendsUnderLock performs a channel send with Server.mu held: every
// contender for the lock now waits on the channel's consumer.
func (s *Server) sendsUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sem <- struct{}{} // want `Server.mu held across blocking channel send`
}

// readsUnderLock does file I/O with the lock held.
func (s *Server) readsUnderLock(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile(path) // want `Server.mu held across blocking os.ReadFile`
}

// callsBlockerUnderLock blocks transitively: drain receives from a channel,
// and the summary propagates to this call site.
func (s *Server) callsBlockerUnderLock() {
	s.mu.Lock()
	s.drain() // want `Server.mu held across call to drain, which blocks on channel receive`
	s.mu.Unlock()
}

// drain receives with no lock held; fine on its own.
func (s *Server) drain() {
	<-s.sem
}

// relocks takes the same lock twice on one path.
func (s *Server) relocks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `Server.mu acquired while already held on this path \(self-deadlock\)`
	s.mu.Unlock()
}

// releasesFirst is the clean shape: drop the lock, then block.
func (s *Server) releasesFirst() {
	s.mu.Lock()
	s.mu.Unlock()
	<-s.sem
}

// signalsUnderLock holds the lock across a send that is provably
// non-blocking (buffered channel sized to the job table) and says so.
func (s *Server) signalsUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sem <- struct{}{} //lint:lockheld sem is buffered to len(jobs); send cannot block here
}

// bareSignalsUnderLock escapes without a reason: suppressed, but rejected.
func (s *Server) bareSignalsUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sem <- struct{}{} /*lint:lockheld*/ // want `//lint:lockheld directive needs a reason sentence`
}

// spawnsUnderLock starts a goroutine while holding the lock. The goroutine
// body blocks, but on its own stack — no finding in the spawner, and the
// literal's own scope holds nothing.
func (s *Server) spawnsUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		<-s.sem
	}()
}
