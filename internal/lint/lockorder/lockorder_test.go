package lockorder

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/a")
}
