// Package lockorder builds a static mutex-acquisition graph per package and
// reports two deadlock shapes before they can ship:
//
//   - ordering cycles: if one call path acquires A then B and another
//     acquires B then A, two goroutines can each hold one lock and wait
//     forever on the other. Locks are named by owning type and field
//     ("Server.mu", "Cache.mu"); an edge A→B means B was acquired while A
//     was held, directly or through a same-package callee.
//   - locks held across blocking operations: a channel send/receive/select,
//     a net/os I/O call, a sync.WaitGroup.Wait, a sim.Engine.Process chain,
//     or one of the repository's known cross-package blockers
//     (tracecache.Get's singleflight wait, sched's Map/Simulate joins,
//     serve.Server.Shutdown's drain). Whatever the blocked operation waits
//     on, every contender for the held lock now waits on it too — the
//     serve/sched/tracecache layering forbids it.
//
// The analysis is a linearized walk of each function body in source order:
// precise for the repository's lock idioms (acquire → work → release, or
// acquire + defer release), deliberately simple-minded about exotic control
// flow. Function literals are independent scopes (a goroutine body does not
// inherit its spawner's held set). Same-package calls propagate both what a
// callee acquires and whether it blocks; cross-package calls are trusted to
// be analyzed on their own side, except the known blockers listed above.
//
// A blocking operation that is provably safe under its lock (say, a
// non-blocking close, or a send on a buffered channel sized for the worst
// case) opts out with `//lint:lockheld <reason>` on the operation's line or
// the line above. Cycles have no escape: break the cycle.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint"
)

// LockheldDirective justifies one blocking operation under a held lock.
const LockheldDirective = "lockheld"

// Analyzer reports lock-ordering cycles and locks held across blocking
// operations.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc: "build the package's mutex-acquisition graph; report ordering " +
		"cycles (potential deadlocks) and locks held across blocking " +
		"operations — channel ops, net/os I/O, WaitGroup.Wait, " +
		"sim.Engine.Process, tracecache.Get, sched Map/Simulate " +
		"(//lint:lockheld escapes a justified blocking op)",
	Escape: "//lint:lockheld <reason>",
	Run:    run,
}

// event is one lock-relevant step of a linearized function body.
type event struct {
	kind eventKind
	key  string       // acquire/release: lock name
	desc string       // block: human description
	obj  types.Object // call: same-package callee
	pos  token.Pos
}

type eventKind int

const (
	evAcquire eventKind = iota
	evRelease
	evDeferRelease
	evBlock
	evCall
)

// scope is one analyzed body: a function declaration or a function literal.
type scope struct {
	label  string
	events []event
}

// summary is what a function exposes to its same-package callers.
type summary struct {
	acquires map[string]bool
	blocking string // description of the first blocking op, or ""
}

func run(pass *lint.Pass) error {
	// Per-file //lint:lockheld escape lines, keyed by filename.
	escapes := map[string]map[int]bool{}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		escapes[name] = pass.EscapeLines(file, LockheldDirective)
	}
	escaped := func(pos token.Pos) bool {
		p := pass.Fset.Position(pos)
		return lint.Escaped(pass.Fset, escapes[p.Filename], pos)
	}

	// Collect scopes: every FuncDecl body and every FuncLit body, each
	// linearized independently.
	var scopes []*scope
	declScopes := map[types.Object]*scope{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc := collect(pass, fd.Body, fd.Name.Name)
			scopes = append(scopes, sc...)
			if obj := pass.TypesInfo.ObjectOf(fd.Name); obj != nil && len(sc) > 0 {
				declScopes[obj] = sc[0] // sc[0] is the decl body itself
			}
		}
	}

	summaries := summarize(declScopes)

	// Simulate each scope, building the acquisition graph and reporting
	// blocking-under-lock as it appears.
	edges := map[string]map[string]token.Pos{}
	addEdge := func(from, to string, pos token.Pos) {
		if edges[from] == nil {
			edges[from] = map[string]token.Pos{}
		}
		if old, ok := edges[from][to]; !ok || pos < old {
			edges[from][to] = pos
		}
	}

	for _, sc := range scopes {
		var held []string
		holds := func(k string) bool {
			for _, h := range held {
				if h == k {
					return true
				}
			}
			return false
		}
		for _, ev := range sc.events {
			switch ev.kind {
			case evAcquire:
				if holds(ev.key) {
					pass.Reportf(ev.pos, "%s acquired while already held on this path (self-deadlock)", ev.key)
					continue
				}
				for _, h := range held {
					addEdge(h, ev.key, ev.pos)
				}
				held = append(held, ev.key)
			case evRelease:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case evDeferRelease:
				// Held until the function returns: nothing to do — the key
				// simply stays in the held set for the rest of the walk.
			case evBlock:
				if len(held) > 0 && !escaped(ev.pos) {
					pass.Reportf(ev.pos, "%s held across blocking %s; release it first or annotate //lint:lockheld <reason>", held[len(held)-1], ev.desc)
				}
			case evCall:
				sum, ok := summaries[ev.obj]
				if !ok {
					continue
				}
				if len(held) > 0 {
					if sum.blocking != "" && !escaped(ev.pos) {
						pass.Reportf(ev.pos, "%s held across call to %s, which blocks on %s; release it first or annotate //lint:lockheld <reason>", held[len(held)-1], ev.obj.Name(), sum.blocking)
					}
					for _, k := range sortedKeys(sum.acquires) {
						if holds(k) {
							pass.Reportf(ev.pos, "call to %s acquires %s, already held on this path (self-deadlock)", ev.obj.Name(), k)
							continue
						}
						for _, h := range held {
							addEdge(h, k, ev.pos)
						}
					}
				}
			}
		}
	}

	reportCycles(pass, edges)
	return nil
}

// collect linearizes body into events in source order. Function literals
// inside body are excluded from the parent's stream and returned as their
// own scopes (the first returned scope is body's own).
func collect(pass *lint.Pass, body *ast.BlockStmt, label string) []*scope {
	info := pass.TypesInfo
	own := &scope{label: label}
	out := []*scope{own}

	lint.WalkStack(body, func(n ast.Node, stack []ast.Node) {
		// Skip anything inside a nested function literal; those are
		// collected as separate scopes below.
		for _, a := range stack {
			if _, ok := a.(*ast.FuncLit); ok {
				return
			}
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			out = append(out, collect(pass, x.Body, label+".func")...)
		case *ast.CallExpr:
			// A call spawned on its own goroutine affects that goroutine's
			// ordering, not this one's.
			if len(stack) > 0 {
				if _, ok := stack[len(stack)-1].(*ast.GoStmt); ok {
					return
				}
			}
			deferred := false
			if len(stack) > 0 {
				if ds, ok := stack[len(stack)-1].(*ast.DeferStmt); ok && ds.Call == x {
					deferred = true
				}
			}
			own.events = append(own.events, callEvents(info, x, deferred)...)
		case *ast.SendStmt:
			own.events = append(own.events, event{kind: evBlock, desc: "channel send", pos: x.Pos()})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				own.events = append(own.events, event{kind: evBlock, desc: "channel receive", pos: x.Pos()})
			}
		case *ast.SelectStmt:
			blocking := true
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					blocking = false // a default case makes the select a poll
				}
			}
			if blocking {
				own.events = append(own.events, event{kind: evBlock, desc: "select", pos: x.Pos()})
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					own.events = append(own.events, event{kind: evBlock, desc: "range over channel", pos: x.Pos()})
				}
			}
		}
	})
	return out
}

// callEvents classifies one call expression into zero or more events.
func callEvents(info *types.Info, call *ast.CallExpr, deferred bool) []event {
	fn, ok := lint.ObjectOf(info, call.Fun).(*types.Func)
	if !ok {
		return nil
	}
	if key, acquire, ok := mutexOp(info, call, fn); ok {
		switch {
		case acquire && deferred:
			return nil // defer mu.Lock() is nonsense; ignore rather than model
		case acquire:
			return []event{{kind: evAcquire, key: key, pos: call.Pos()}}
		case deferred:
			return []event{{kind: evDeferRelease, key: key, pos: call.Pos()}}
		default:
			return []event{{kind: evRelease, key: key, pos: call.Pos()}}
		}
	}
	if deferred {
		return nil // other deferred work runs after the body; out of scope
	}
	if desc := blockingCall(fn); desc != "" {
		return []event{{kind: evBlock, desc: desc, pos: call.Pos()}}
	}
	if fn.Pkg() != nil {
		// Possibly a same-package static call: the simulation propagates the
		// callee's summary if one exists, and ignores the event otherwise.
		return []event{{kind: evCall, obj: fn, pos: call.Pos()}}
	}
	return nil
}

// mutexOp recognizes sync.Mutex / sync.RWMutex method calls, returning the
// lock's stable name and whether the call acquires (vs releases).
func mutexOp(info *types.Info, call *ast.CallExpr, fn *types.Func) (key string, acquire, ok bool) {
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	sig, sok := fn.Type().(*types.Signature)
	if !sok || sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return "", false, false
	}
	sel, sok := call.Fun.(*ast.SelectorExpr)
	if !sok {
		return "", false, false
	}
	return lockName(info, sel.X), acquire, true
}

// lockName derives a stable per-package name for the lock a method call
// targets: "OwnerType.field" for a struct-owned mutex, the identifier for a
// local or package-level one, "OwnerType.Mutex" for an embedded one.
func lockName(info *types.Info, recv ast.Expr) string {
	recv = lint.Unparen(info, recv)
	t := info.TypeOf(recv)
	if t != nil && !isMutexType(t) {
		// Embedded: the owning struct is the lock.
		if n := namedName(t); n != "" {
			return n + ".Mutex"
		}
	}
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if bt := info.TypeOf(e.X); bt != nil {
			if n := namedName(bt); n != "" {
				return n + "." + e.Sel.Name
			}
		}
		return e.Sel.Name
	case *ast.Ident:
		return e.Name
	}
	return "mutex"
}

// isMutexType reports whether t (or its pointee) is sync.Mutex/RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// namedName returns the bare name of t's named type (through pointers).
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// blockingOSNames are the os package entry points treated as blocking I/O.
var blockingOSNames = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "ReadFile": true,
	"WriteFile": true, "Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "ReadDir": true, "Pipe": true,
	"Read": true, "Write": true, "Close": true, "Sync": true, "Seek": true,
}

// knownBlockers are repository cross-package calls that wait: the
// singleflight trace materialization, the scheduler's joins, and the
// serving drain.
var knownBlockers = map[string]map[string]string{
	"repro/internal/tracecache": {"Get": "trace generation (singleflight wait)"},
	"repro/internal/sched":      {"Map": "worker-pool join", "Simulate": "worker-pool join"},
	"repro/internal/serve":      {"Shutdown": "shutdown drain"},
	"repro/internal/sim":        {"Process": "simulation", "ProcessAll": "simulation", "ProcessReader": "simulation"},
}

// blockingCall classifies a callee as blocking, returning a description.
func blockingCall(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "net", "net/http":
		return fmt.Sprintf("%s.%s (network I/O)", pkg.Name(), fn.Name())
	case "os":
		if blockingOSNames[fn.Name()] {
			return fmt.Sprintf("os.%s (file I/O)", fn.Name())
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if fn.Name() == "Wait" {
			return "sync.WaitGroup.Wait"
		}
	}
	if names, ok := knownBlockers[pkg.Path()]; ok {
		if desc, ok := names[fn.Name()]; ok {
			return fmt.Sprintf("%s.%s (%s)", pkg.Name(), fn.Name(), desc)
		}
	}
	return ""
}

// summarize computes, for every declared function, the set of locks it
// acquires and whether it blocks — transitively through same-package calls.
func summarize(declScopes map[types.Object]*scope) map[types.Object]*summary {
	sums := map[types.Object]*summary{}
	for obj, sc := range declScopes {
		s := &summary{acquires: map[string]bool{}}
		for _, ev := range sc.events {
			switch ev.kind {
			case evAcquire:
				s.acquires[ev.key] = true
			case evBlock:
				if s.blocking == "" {
					s.blocking = ev.desc
				}
			}
		}
		sums[obj] = s
	}
	// Fixpoint over the same-package call graph.
	for changed := true; changed; {
		changed = false
		for obj, sc := range declScopes {
			s := sums[obj]
			for _, ev := range sc.events {
				if ev.kind != evCall {
					continue
				}
				callee, ok := sums[ev.obj]
				if !ok {
					continue
				}
				for k := range callee.acquires {
					if !s.acquires[k] {
						s.acquires[k] = true
						changed = true
					}
				}
				if s.blocking == "" && callee.blocking != "" {
					s.blocking = callee.blocking
					changed = true
				}
			}
		}
	}
	return sums
}

// reportCycles finds ordering cycles in the acquisition graph and reports
// each once, anchored at the latest-in-source edge that closes it.
func reportCycles(pass *lint.Pass, edges map[string]map[string]token.Pos) {
	nodes := sortedKeys2(edges)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	seen := map[string]bool{} // canonical cycle signatures already reported

	var visit func(n string)
	visit = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		for _, m := range sortedKeys(boolify(edges[n])) {
			switch color[m] {
			case white:
				visit(m)
			case gray:
				// Back edge n→m closes a cycle: stack from m to n.
				start := 0
				for i, s := range stack {
					if s == m {
						start = i
						break
					}
				}
				cycle := append(append([]string{}, stack[start:]...), m)
				sig := canonical(cycle)
				if seen[sig] {
					continue
				}
				seen[sig] = true
				// Anchor at the latest-positioned edge of the cycle.
				var pos token.Pos
				for i := 0; i+1 < len(cycle); i++ {
					if p := edges[cycle[i]][cycle[i+1]]; p > pos {
						pos = p
					}
				}
				pass.Reportf(pos, "lock ordering cycle: %s; pick one acquisition order and hold to it everywhere", strings.Join(cycle, " -> "))
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
}

// canonical rotates a cycle (first == last) to start at its smallest node,
// giving a signature independent of where DFS entered it.
func canonical(cycle []string) string {
	body := cycle[:len(cycle)-1]
	min := 0
	for i, s := range body {
		if s < body[min] {
			min = i
		}
	}
	rot := append(append([]string{}, body[min:]...), body[:min]...)
	return strings.Join(rot, "->")
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string]map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func boolify(m map[string]token.Pos) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
