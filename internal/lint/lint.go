// Package lint is a minimal, dependency-free mirror of the golang.org/x/tools
// go/analysis framework, carrying the custom analyzers that machine-check this
// repository's simulator invariants: bit-reproducible output (determinism),
// constructor-validated power-of-two table sizes (pow2mask), documented panic
// contracts (panicdoc) and compile-time predictor interface conformance
// (ifaceassert).
//
// The container this repository builds in has no module proxy access, so the
// framework is implemented on the standard library alone: packages are loaded
// from `go list -export` compiled export data (the same mechanism `go vet`
// drivers use) and analyzers receive parsed files plus full go/types
// information, exactly as they would under x/tools. The analyzer API is kept
// deliberately close to go/analysis so the suite can migrate to the real
// framework verbatim if the dependency ever becomes available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static analysis pass, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (e.g. "determinism").
	Name string
	// Doc is the one-paragraph description printed by `ppmlint -help`.
	Doc string
	// Escape documents the analyzer's escape-hatch directive, e.g.
	// "//lint:sorted <reason>", for the -json diagnostic stream and usage
	// output. Empty when the analyzer has no escape.
	Escape string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an analyzer,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Escape carries the reporting analyzer's escape-hatch directive (or ""),
	// so machine consumers of the -json stream can offer the annotation.
	Escape string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Escape:   p.Analyzer.Escape,
	})
}

// Run applies the analyzers to every loaded package and returns all
// diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// WalkStack traverses root in depth-first order like ast.Inspect, additionally
// passing each callback the stack of enclosing nodes (outermost first, not
// including n itself).
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// ParseDirective recognizes a `//lint:<name> <reason>` or `//ppm:<name>
// <reason>` annotation comment. The directive must open the comment (mentions
// in prose or doc text do not count); the reason is the text after the name,
// with leading separator punctuation (spaces, dashes, colons) stripped.
func ParseDirective(text string) (prefix, name, reason string, ok bool) {
	body, found := strings.CutPrefix(text, "//")
	if !found {
		// The /*lint:x*/ block form is accepted so a directive can share a
		// line with other comments (fixtures rely on this).
		body, found = strings.CutPrefix(text, "/*")
		if !found {
			return "", "", "", false
		}
		body = strings.TrimSuffix(body, "*/")
	}
	body = strings.TrimLeft(body, " \t")
	for _, p := range []string{"lint", "ppm"} {
		rest, found := strings.CutPrefix(body, p+":")
		if !found {
			continue
		}
		i := 0
		for i < len(rest) && (rest[i] == '-' || rest[i] == '_' ||
			('a' <= rest[i] && rest[i] <= 'z') || ('0' <= rest[i] && rest[i] <= '9')) {
			i++
		}
		if i == 0 {
			return "", "", "", false
		}
		return p, rest[:i], strings.TrimSpace(strings.TrimLeft(rest[i:], " \t—–-:")), true
	}
	return "", "", "", false
}

// EscapeLines collects the source lines carrying a `//lint:<directive>`
// escape-hatch comment in file. A directive suppresses findings anchored on
// its own line or the line immediately below it (so it can be written either
// at the end of the offending line or on the line above).
//
// Every escape must justify itself: an occurrence whose reason sentence is
// missing is itself reported, uniformly across analyzers, though it still
// suppresses the underlying finding so the fix is one edit, not two.
func (p *Pass) EscapeLines(file *ast.File, directive string) map[int]bool {
	return directiveLines(p, file, "lint", directive)
}

// DirectiveLines is EscapeLines for `//ppm:<directive>` annotations.
func (p *Pass) DirectiveLines(file *ast.File, directive string) map[int]bool {
	return directiveLines(p, file, "ppm", directive)
}

func directiveLines(pass *Pass, file *ast.File, wantPrefix, directive string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			prefix, name, reason, ok := ParseDirective(c.Text)
			if !ok || prefix != wantPrefix || name != directive {
				continue
			}
			if reason == "" {
				pass.Reportf(c.Pos(), "//%s:%s directive needs a reason sentence", prefix, name)
			}
			lines[pass.Fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}

// Escaped reports whether pos is suppressed by a directive line set from
// EscapeLines: the directive sits on the same line or the line above.
func Escaped(fset *token.FileSet, lines map[int]bool, pos token.Pos) bool {
	l := fset.Position(pos).Line
	return lines[l] || lines[l-1]
}

// Unparen strips parentheses and type conversions wrapping e, returning the
// innermost value expression. Conversions are detected with the type info.
func Unparen(info *types.Info, e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			// A conversion is a call whose function is a type.
			if len(x.Args) == 1 {
				if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
					e = x.Args[0]
					continue
				}
			}
			return e
		default:
			return e
		}
	}
}

// ObjectOf resolves an identifier or selector expression (x, x.f, pkg.F) to
// its types.Object, or nil when e has another shape.
func ObjectOf(info *types.Info, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel)
	}
	return nil
}
