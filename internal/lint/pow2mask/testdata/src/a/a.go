// Package a exercises the pow2mask analyzer: `x & (n-1)` index masks must
// trace to a constructor-validated power-of-two size.
package a

// Table is a direct-mapped table whose size carries the canonical guard.
type Table struct {
	slots []uint64
}

// NewTable builds a table. Panics if entries is not a positive power of two.
func NewTable(entries int) *Table {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("a: entries must be a positive power of two")
	}
	return &Table{slots: make([]uint64, entries)}
}

// Lookup masks with the validated table length.
func (t *Table) Lookup(pc uint64) uint64 {
	return t.slots[pc&uint64(len(t.slots)-1)]
}

// Bad is sized by a parameter nothing validates.
type Bad struct {
	slots []uint64
}

// NewBad builds a table without validating n.
func NewBad(n int) *Bad {
	return &Bad{slots: make([]uint64, n)}
}

// Lookup masks with an unproven length.
func (b *Bad) Lookup(pc uint64) uint64 {
	return b.slots[pc&uint64(len(b.slots)-1)] // want `does not trace to a constructor-validated power-of-two size`
}

// Fixed masks with a compile-time power-of-two array length.
func Fixed(pc uint64) int {
	var table [16]int
	return table[pc&uint64(len(table)-1)]
}

// Shifted masks with a size that is a power of two by construction.
func Shifted(pc uint64, order uint) uint64 {
	slots := make([]uint64, 1<<order)
	return slots[pc&uint64(len(slots)-1)]
}

// Halved masks with a derived size: divisors of validated powers of two stay
// powers of two.
func Halved(pc uint64, entries int) uint64 {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("a: entries must be a positive power of two")
	}
	half := make([]uint64, entries/2)
	return half[pc&uint64(len(half)-1)]
}

// BadConst masks with a constant that skips slots.
func BadConst(pc uint64) int {
	var table [16]int
	return table[pc&6] // want `index mask constant 6 is not 2\^k-1`
}
