// Package pow2mask implements the ppmlint analyzer guarding the hardware
// table-indexing convention used throughout the predictors: an index formed
// as `x & (n-1)` silently aliases (or worse, truncates) unless n is a power
// of two, so every such mask must trace back to a size the constructor
// validated with the canonical `n&(n-1) != 0` panic guard (the cbt/condbr
// convention), or be a power of two by construction (`1<<k`, pow2 constant).
//
// The analyzer examines every slice/array index expression containing a
// bitwise-AND mask and accepts it when the mask provably derives from:
//
//   - a `1 << k` shift or a power-of-two constant;
//   - `len(s)`/`cap(s)` where s was made with a size expression that is
//     itself accepted, or that mentions a value pow2-validated by a
//     `v&(v-1)` guard anywhere in the package;
//   - a variable/field that is pow2-validated as above.
//
// Everything else is reported. The check is intentionally package-local and
// syntactic about the guard: the point is to force the validation panic into
// the constructor, where it documents and enforces the invariant at once.
package pow2mask

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the power-of-two mask checker.
var Analyzer = &lint.Analyzer{
	Name: "pow2mask",
	Doc:  "require &(n-1) index masks to trace to constructor-validated power-of-two sizes",
	Run:  run,
}

func run(pass *lint.Pass) error {
	st := &state{
		pass:      pass,
		validated: map[types.Object]bool{},
		sized:     map[types.Object][]ast.Expr{},
	}
	st.collect()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				// Any `E & (N-1)` mask, wherever it appears (index masks are
				// routinely computed into a local before indexing). The
				// validation idiom `v & (v-1)` itself is exempt.
				if x.Op == token.AND && guardObject(pass.TypesInfo, x) == nil {
					st.checkMask(x)
				}
			case *ast.IndexExpr:
				t := pass.TypesInfo.TypeOf(x.X)
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array:
					st.checkConstMask(x)
				}
			}
			return true
		})
	}
	return nil
}

type state struct {
	pass *lint.Pass
	// validated holds objects v for which a `v&(v-1)` guard expression
	// exists somewhere in the package.
	validated map[types.Object]bool
	// sized maps a slice variable or field to the size expressions of the
	// make() calls (or aliasing assignments) that created it.
	sized map[types.Object][]ast.Expr
}

// collect gathers, in one pass over the package, the pow2-validation guards
// and the make() size expression feeding each slice variable or field.
func (s *state) collect() {
	info := s.pass.TypesInfo
	for _, file := range s.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				// The canonical guard: E & (E - 1), with both sides
				// resolving to the same object.
				if x.Op == token.AND {
					if obj := guardObject(info, x); obj != nil {
						s.validated[obj] = true
					}
				}
			case *ast.AssignStmt:
				if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
					return true // op-assignments (+=, <<=) are not bindings
				}
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						break // x, y := f() never assigns a tracked make
					}
					s.recordBinding(lhs, x.Rhs[i])
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) {
						s.recordBinding(name, x.Values[i])
					}
				}
			case *ast.CompositeLit:
				t := info.TypeOf(x)
				if t == nil {
					return true
				}
				if _, isStruct := t.Underlying().(*types.Struct); !isStruct {
					return true
				}
				for _, el := range x.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					s.recordBinding(kv.Key, kv.Value)
				}
			}
			return true
		})
	}
}

// recordBinding notes `target = value` when target is a plain variable or
// field and value is a make() call (recording its size) or another tracked
// expression (recording the alias for one-step following).
func (s *state) recordBinding(target ast.Expr, value ast.Expr) {
	obj := lint.ObjectOf(s.pass.TypesInfo, target)
	if obj == nil {
		return
	}
	v := lint.Unparen(s.pass.TypesInfo, value)
	if call, ok := v.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 2 {
			s.sized[obj] = append(s.sized[obj], call.Args[1])
			return
		}
	}
	// Anything else — an alias (`&T{f: sets}`, `x = y`) or a computed size
	// (`nsets := entries / assoc`) — is stored as-is; the resolver follows
	// identifiers object by object and proves computed sizes directly.
	s.sized[obj] = append(s.sized[obj], v)
}

// guardObject recognizes `E & (E' - 1)` where E and E' resolve to the same
// variable/field object, returning that object.
func guardObject(info *types.Info, b *ast.BinaryExpr) types.Object {
	try := func(e, mask ast.Expr) types.Object {
		obj := lint.ObjectOf(info, lint.Unparen(info, e))
		if obj == nil {
			return nil
		}
		m, ok := lint.Unparen(info, mask).(*ast.BinaryExpr)
		if !ok || m.Op != token.SUB || !isIntLiteral(info, m.Y, 1) {
			return nil
		}
		if lint.ObjectOf(info, lint.Unparen(info, m.X)) == obj {
			return obj
		}
		return nil
	}
	if obj := try(b.X, b.Y); obj != nil {
		return obj
	}
	return try(b.Y, b.X)
}

// checkMask validates one `E & (N-1)`-shaped mask expression: N must be
// provably a power of two.
func (s *state) checkMask(b *ast.BinaryExpr) {
	for _, side := range []ast.Expr{b.X, b.Y} {
		m, ok := lint.Unparen(s.pass.TypesInfo, side).(*ast.BinaryExpr)
		if !ok || m.Op != token.SUB || !isIntLiteral(s.pass.TypesInfo, m.Y, 1) {
			continue
		}
		// The depth bound caps alias-chain following (field -> local ->
		// computed size -> validated parameter is a realistic six-hop chain).
		if !s.pow2OK(lint.Unparen(s.pass.TypesInfo, m.X), 8) {
			s.pass.Reportf(b.Pos(), "index mask %q does not trace to a constructor-validated power-of-two size; add the `n&(n-1) != 0` panic guard where the table is sized", render(s.pass, side))
		}
	}
}

// checkConstMask flags bare constant masks inside an index expression that
// are not of the 2^k-1 form: indexing with them silently skips slots. The
// check stays index-local because single-bit masks are legitimate everywhere
// else (flag tests, bit extraction).
func (s *state) checkConstMask(idx *ast.IndexExpr) {
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.AND {
			return true
		}
		for _, side := range []ast.Expr{b.X, b.Y} {
			// Skip the explicit N-1 shape; checkMask owns it.
			if m, ok := lint.Unparen(s.pass.TypesInfo, side).(*ast.BinaryExpr); ok && m.Op == token.SUB && isIntLiteral(s.pass.TypesInfo, m.Y, 1) {
				continue
			}
			if v, isConst := intConst(s.pass.TypesInfo, side); isConst {
				if v >= 0 && (v+1)&v != 0 {
					s.pass.Reportf(b.Pos(), "index mask constant %d is not 2^k-1; indexing with it skips slots", v)
				}
			}
		}
		return true
	})
}

// pow2OK reports whether expression e provably evaluates to a power of two.
func (s *state) pow2OK(e ast.Expr, depth int) bool {
	if depth == 0 {
		return false
	}
	info := s.pass.TypesInfo
	e = lint.Unparen(info, e)

	if v, isConst := intConst(info, e); isConst {
		return v > 0 && v&(v-1) == 0
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.SHL:
			// 1<<k (or any pow2 base shifted) is a power of two for any k.
			return s.pow2OK(x.X, depth-1)
		case token.MUL, token.QUO, token.SHR:
			// Products, quotients and right-shifts of powers of two within
			// this package's validated sizes stay powers of two (divisors
			// of 2^k are 2^j). Accept if either side is provably pow2.
			return s.pow2OK(x.X, depth-1) || s.pow2OK(x.Y, depth-1)
		}
		return false
	case *ast.CallExpr:
		// len(s)/cap(s): the slice's make() size must be provable.
		if id, ok := x.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && len(x.Args) == 1 {
			return s.sliceSizeOK(x.Args[0], depth-1)
		}
		return false
	case *ast.Ident, *ast.SelectorExpr:
		obj := lint.ObjectOf(info, x)
		if obj == nil {
			return false
		}
		if s.validated[obj] {
			return true
		}
		// Follow the object's recorded bindings (e.g. a local computed
		// from a validated config field).
		return s.boundOK(obj, depth-1)
	}
	return false
}

// sliceSizeOK resolves the slice expression to its variable/field and checks
// the sizes it was made with.
func (s *state) sliceSizeOK(slice ast.Expr, depth int) bool {
	obj := lint.ObjectOf(s.pass.TypesInfo, lint.Unparen(s.pass.TypesInfo, slice))
	if obj == nil {
		return false
	}
	// A fixed-size array's length is a constant; check it directly.
	if t, ok := obj.Type().Underlying().(*types.Array); ok {
		n := t.Len()
		return n > 0 && n&(n-1) == 0
	}
	return s.boundOK(obj, depth)
}

// boundOK checks every recorded binding of obj: all known creation sites
// must be provably power-of-two sized.
func (s *state) boundOK(obj types.Object, depth int) bool {
	if depth == 0 {
		return false
	}
	bindings := s.sized[obj]
	if len(bindings) == 0 {
		return false
	}
	for _, b := range bindings {
		switch x := lint.Unparen(s.pass.TypesInfo, b).(type) {
		case *ast.Ident, *ast.SelectorExpr:
			// Alias binding: the aliased object decides — via its own
			// bindings or via a validation guard on it.
			next := lint.ObjectOf(s.pass.TypesInfo, x)
			if next == nil || next == obj {
				return false
			}
			if !s.validated[next] && !s.boundOK(next, depth-1) {
				return false
			}
		default:
			// A make() size or computed expression; prove it directly.
			if !s.pow2OK(b, depth-1) {
				return false
			}
		}
	}
	return true
}

func isIntLiteral(info *types.Info, e ast.Expr, want int64) bool {
	v, ok := intConst(info, e)
	return ok && v == want
}

func intConst(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return v, true
}

func render(pass *lint.Pass, e ast.Expr) string {
	return types.ExprString(e)
}
