package pow2mask_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/pow2mask"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, pow2mask.Analyzer, "testdata/src/a")
}
