// Package linttest runs a ppmlint analyzer over a testdata fixture package
// and checks its diagnostics against `// want` expectations embedded in the
// fixture source, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a comment of the form
//
//	code() // want `regexp`
//	code() // want `regexp1` `regexp2`
//
// on the line where the diagnostic is expected. Each regexp must match one
// diagnostic reported on that line; diagnostics with no matching expectation,
// and expectations with no matching diagnostic, fail the test. Double-quoted
// Go strings are accepted in place of backquoted ones.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// expectation is one `// want` pattern anchored to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the package rooted at dir (typically "testdata/src/a"), applies
// the analyzer, and reports every mismatch between its diagnostics and the
// fixture's `// want` expectations as test errors.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkgs, err := lint.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded from %s", dir)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ws, err := parseWants(pkg, file)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation on d's line whose pattern
// matches d's message, reporting whether one was found.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the `// want` expectations from one fixture file.
func parseWants(pkg *lint.Package, file *ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			patterns, err := splitPatterns(text)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
			}
		}
	}
	return wants, nil
}

// splitPatterns parses a sequence of backquoted or double-quoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Find the closing quote, honoring escapes, then Unquote.
			i := 1
			for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
				i++
			}
			if i == len(s) {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			p, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = strings.TrimSpace(s[i+1:])
		default:
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}
