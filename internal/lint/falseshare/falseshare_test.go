package falseshare

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestFalseshare(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/a")
}
