// Package a is the falseshare fixture: adjacent atomics in structs and var
// blocks, the padded-wrapper fix, and the //lint:shared escape.
package a

import "sync/atomic"

// hotCounters packs two write-hot atomics into one cache line.
type hotCounters struct {
	hits   atomic.Uint64 // want `atomic fields hits, misses share a cache line`
	misses atomic.Uint64
}

// padded is the fix: each atomic owns a full 64-byte line.
type padded struct {
	hits   lineUint64
	misses lineUint64
}

// lineUint64 embeds the atomic so call sites keep their method set.
type lineUint64 struct {
	atomic.Uint64
	_ [56]byte
}

// mixed has one atomic among plain fields: nothing to false-share with.
type mixed struct {
	hits  atomic.Uint64
	name  string
	limit int
}

// spread keeps its two atomics more than a line apart by interleaving bulk
// state; offsets, not adjacency, decide.
type spread struct {
	hits   atomic.Uint64
	bulk   [64]byte
	misses atomic.Uint64
}

// wrapped nests the atomics inside an embedded struct: the analyzer measures
// where the words land, not the declaration depth.
type inner struct {
	a atomic.Int64 // want `atomic fields a, b share a cache line`
	b atomic.Int64
}

type wrapped struct {
	inner inner // want `atomic fields inner.a, inner.b share a cache line`
}

// blessed is a low-rate counter pair and says so.
type blessed struct {
	starts atomic.Uint64 //lint:shared process-lifetime counters bumped once per job, not per record
	stops  atomic.Uint64
}

// bare escapes without a reason: suppressed, but rejected.
type bare struct {
	starts atomic.Uint64 /*lint:shared*/ // want `//lint:shared directive needs a reason sentence`
	stops  atomic.Uint64
}

// locals declares two atomics in one spec: the frame may pack them.
func locals() int64 {
	var next, done atomic.Int64 // want `atomic variables next, done are declared together`
	next.Add(1)
	done.Add(1)
	return next.Load() + done.Load()
}

// separate declarations are not adjacent by construction.
func separate() int64 {
	var next atomic.Int64
	var done atomic.Int64
	next.Add(1)
	done.Add(1)
	return next.Load() + done.Load()
}
