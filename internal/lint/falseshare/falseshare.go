// Package falseshare implements the ppmlint analyzer keeping concurrently
// mutated fields off shared cache lines.
//
// Atomic fields exist to be hammered from multiple goroutines — the serve
// handlers and sched workers bump them once per request or per simulation
// cell. Two atomics within the same 64-byte cache line ping-pong that line
// between cores on every write even though the writers never touch the same
// word: classic false sharing, and invisible in profiles except as memory
// stalls.
//
// The analyzer reports:
//
//   - struct types in which two or more sync/atomic-typed fields (looking
//     through embedded structs, so padded wrapper types are measured by
//     where the atomic actually lands) fall on the same 64-byte line of the
//     struct layout;
//   - a single var declaration introducing two or more sync/atomic-typed
//     variables, which the stack frame or the tiny allocator may pack
//     adjacently.
//
// The fix is to pad each hot field to its own line (embed the atomic in a
// struct with a trailing [56]byte blank field) or, when the counters are
// provably low-rate, annotate the reported line with
// `//lint:shared <reason>`.
package falseshare

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer reports atomic fields sharing a cache line.
var Analyzer = &lint.Analyzer{
	Name: "falseshare",
	Doc: "atomic struct fields and var blocks mutated by concurrent workers " +
		"must not share a 64-byte cache line; pad to a line or escape with " +
		"//lint:shared <reason>",
	Escape: "//lint:shared <reason>",
	Run:    run,
}

// sharedDirective is the per-line escape hatch for provably low-rate
// counters.
const sharedDirective = "shared"

// cacheLine is the coherence granularity on every platform the simulator
// targets (amd64, arm64).
const cacheLine = 64

// sizes is the amd64 layout the gc compiler uses; field offsets, not exact
// totals, are what the line math needs.
var sizes = types.SizesFor("gc", "amd64")

func run(pass *lint.Pass) error {
	if sizes == nil {
		sizes = &types.StdSizes{WordSize: 8, MaxAlign: 8}
	}
	for _, file := range pass.Files {
		escaped := pass.EscapeLines(file, sharedDirective)
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.StructType:
				checkStruct(pass, x, escaped)
			case *ast.ValueSpec:
				checkVarSpec(pass, x, escaped)
			}
			return true
		})
	}
	return nil
}

// atomicSpan is one atomic word inside a struct layout: its byte offset from
// the struct base and the dotted field path that reaches it.
type atomicSpan struct {
	offset int64
	path   string
}

// checkStruct lays out one struct type and reports each cache line holding
// more than one atomic word.
func checkStruct(pass *lint.Pass, st *ast.StructType, escaped map[int]bool) {
	t, ok := pass.TypesInfo.TypeOf(st).(*types.Struct)
	if !ok || t.NumFields() == 0 {
		return
	}
	spans := atomicSpans(pass.Pkg, t, 0, "")
	if len(spans) < 2 {
		return
	}
	// Group the atomic words by the cache line their offset falls in.
	byLine := map[int64][]atomicSpan{}
	for _, s := range spans {
		byLine[s.offset/cacheLine] = append(byLine[s.offset/cacheLine], s)
	}
	for _, group := range byLine {
		if len(group) < 2 {
			continue
		}
		first := group[0]
		pos := fieldPos(pass, st, t, strings.SplitN(first.path, ".", 2)[0])
		if lint.Escaped(pass.Fset, escaped, pos) {
			continue
		}
		names := make([]string, len(group))
		for i, s := range group {
			names[i] = s.path
		}
		pass.Reportf(pos, "atomic fields %s share a cache line and false-share under concurrent writers; pad each to %d bytes or annotate //lint:shared <reason>",
			strings.Join(names, ", "), cacheLine)
	}
}

// atomicSpans collects the offsets of every sync/atomic-typed word in t,
// descending into embedded and named struct fields so padded wrappers are
// measured where their atomic actually lands. Structs named in other
// packages (sync.WaitGroup, sync.Mutex) stay opaque: their layout is not
// the caller's to pad.
func atomicSpans(pkg *types.Package, t *types.Struct, base int64, prefix string) []atomicSpan {
	fields := make([]*types.Var, t.NumFields())
	for i := range fields {
		fields[i] = t.Field(i)
	}
	offsets := sizes.Offsetsof(fields)
	var spans []atomicSpan
	for i, f := range fields {
		path := f.Name()
		if prefix != "" {
			path = prefix + "." + path
		}
		ft := f.Type()
		if isAtomicType(ft) {
			spans = append(spans, atomicSpan{offset: base + offsets[i], path: path})
			continue
		}
		if named, ok := ft.(*types.Named); ok && named.Obj().Pkg() != pkg {
			continue
		}
		if inner, ok := ft.Underlying().(*types.Struct); ok {
			spans = append(spans, atomicSpans(pkg, inner, base+offsets[i], path)...)
		}
	}
	return spans
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldPos resolves the declaration position of the named top-level field,
// falling back to the struct itself.
func fieldPos(pass *lint.Pass, st *ast.StructType, t *types.Struct, name string) token.Pos {
	for _, f := range st.Fields.List {
		for _, id := range f.Names {
			if id.Name == name {
				return id.Pos()
			}
		}
		// Embedded field: the type expression carries the name.
		if len(f.Names) == 0 {
			if id := embeddedName(f.Type); id != nil && id.Name == name {
				return id.Pos()
			}
		}
	}
	return st.Pos()
}

// embeddedName returns the identifier naming an embedded field.
func embeddedName(e ast.Expr) *ast.Ident {
	switch x := e.(type) {
	case *ast.Ident:
		return x
	case *ast.StarExpr:
		return embeddedName(x.X)
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// checkVarSpec reports a single var spec declaring two or more atomic
// variables: the frame or the tiny allocator may pack them into one line.
func checkVarSpec(pass *lint.Pass, spec *ast.ValueSpec, escaped map[int]bool) {
	var atomics []string
	for _, name := range spec.Names {
		obj := pass.TypesInfo.ObjectOf(name)
		if obj == nil {
			continue
		}
		if isAtomicType(obj.Type()) {
			atomics = append(atomics, name.Name)
		}
	}
	if len(atomics) < 2 {
		return
	}
	if lint.Escaped(pass.Fset, escaped, spec.Pos()) {
		return
	}
	pass.Reportf(spec.Pos(), "atomic variables %s are declared together and may share a cache line under concurrent writers; hoist into a padded struct or annotate //lint:shared <reason>",
		strings.Join(atomics, ", "))
}
