// Package history implements path history registers (PHRs): shift registers
// that record the recent targets of a selected stream of branches. Two views
// are provided, matching the two families of predictors in the paper:
//
//   - Recent() exposes the most recent full targets, which the PPM
//     predictor's SFSXS mapping selects and folds per target (Figure 2);
//   - Packed() exposes the conventional k-bits-per-target shift register
//     used by GAp, Target Cache and Dual-path gshare/interleaved indexing.
package history

import (
	"repro/internal/hashing"
	"repro/internal/trace"
)

// Stream selects which branch records feed a PHR, mirroring the correlation
// groups studied by Chang et al. and adopted in Section 4 of the paper.
type Stream uint8

const (
	// AllBranches records the target of every committed branch (PB path
	// history: "Per Branch" correlation). Not-taken conditional branches
	// contribute their fall-through address.
	AllBranches Stream = iota
	// IndirectBranches records targets of indirect jmp/jsr instructions
	// only, ST and MT alike (PIB path history: "Per Indirect Branch").
	IndirectBranches
	// MTIndirectBranches records only multi-target indirect jmp/jsr
	// targets — the stream the Dual-path predictor registers observe.
	MTIndirectBranches
	// TakenBranches records targets of taken branches only.
	TakenBranches
)

// String names the stream.
func (s Stream) String() string {
	switch s {
	case AllBranches:
		return "PB"
	case IndirectBranches:
		return "PIB"
	case MTIndirectBranches:
		return "MT"
	case TakenBranches:
		return "taken"
	}
	return "stream(?)"
}

// Accepts reports whether a record belongs to the stream.
func (s Stream) Accepts(r trace.Record) bool {
	switch s {
	case AllBranches:
		return true
	case IndirectBranches:
		return r.PIBStream()
	case MTIndirectBranches:
		return r.MTIndirect()
	case TakenBranches:
		return r.Taken
	}
	return false
}

// PHR is a path history register holding the most recent `depth` targets of
// its stream. The zero value is not usable; construct with New or NewWide.
type PHR struct {
	stream Stream
	ring   []uint64
	head   int // index of most recent entry
	filled int

	// packed is the conventional shift register maintained incrementally:
	// bitsPer low-order bits of each target, most recent in the low bits.
	// Registers up to 64 bits occupy one word; wider registers (geometric
	// ITTAGE histories) span little-endian words, word 0 least significant.
	packed     []uint64
	topMask    uint64 // mask of the valid bits in the top packed word
	packedBits uint
	bitsPer    uint
}

// New creates a PHR of the given depth over the given stream. bitsPer
// configures the packed shift-register view (bits recorded per target);
// packedBits bounds the register width. Panics if depth < 1 or if
// packedBits > 64 — registers wider than one word must be constructed with
// NewWide, which is a deliberate call-site declaration that the extra width
// is wanted (the former silent clamp to 64 truncated geometric histories).
func New(stream Stream, depth int, bitsPer, packedBits uint) *PHR {
	if packedBits > 64 {
		panic("history: packedBits > 64 needs the multi-word register; construct with NewWide")
	}
	return NewWide(stream, depth, bitsPer, packedBits)
}

// NewWide creates a PHR whose packed shift-register view may be wider than
// 64 bits, kept as a little-endian multi-word register; Packed then exposes
// the 64 low-order bits and FoldPacked folds any prefix of the full width.
// Panics if depth < 1.
func NewWide(stream Stream, depth int, bitsPer, packedBits uint) *PHR {
	if depth < 1 {
		panic("history: depth must be >= 1")
	}
	words := int((packedBits + 63) / 64)
	top := ^uint64(0)
	if packedBits%64 != 0 {
		top = (uint64(1) << (packedBits % 64)) - 1
	}
	return &PHR{
		stream:     stream,
		ring:       make([]uint64, depth),
		head:       depth - 1,
		packed:     make([]uint64, words),
		topMask:    top,
		bitsPer:    bitsPer,
		packedBits: packedBits,
	}
}

// Stream returns the stream feeding this register.
func (p *PHR) Stream() Stream { return p.stream }

// Depth returns the number of targets retained.
func (p *PHR) Depth() int { return len(p.ring) }

// Observe shifts the record's target into the register if the record
// belongs to the PHR's stream. It returns true if the register advanced.
//
//ppm:hotpath per-record history-register shift
func (p *PHR) Observe(r trace.Record) bool {
	if !p.stream.Accepts(r) {
		return false
	}
	p.Push(r.Target)
	return true
}

// Push unconditionally shifts a target into the register.
//
//ppm:hotpath per-record history-register shift
func (p *PHR) Push(target uint64) {
	p.head++
	if p.head == len(p.ring) {
		p.head = 0
	}
	p.ring[p.head] = target
	if p.filled < len(p.ring) {
		p.filled++
	}
	if p.packedBits == 0 {
		return
	}
	var sel uint64
	if p.bitsPer >= 64 {
		sel = target >> 2
	} else {
		sel = (target >> 2) & ((uint64(1) << p.bitsPer) - 1)
	}
	w := p.packed
	if len(w) == 1 {
		w[0] = ((w[0] << p.bitsPer) | sel) & p.topMask
		return
	}
	// Multi-word left shift by bitsPer, high word first so carries read the
	// pre-shift neighbours; bitsPer >= 64 degenerates to a whole-word shift
	// exactly as a single-word register degenerates to sel alone.
	if p.bitsPer >= 64 {
		for i := len(w) - 1; i > 0; i-- {
			w[i] = w[i-1] //lint:idxsafe i walks (0, len) so i and i-1 are in range
		}
		w[0] = sel
	} else {
		carry := 64 - p.bitsPer
		for i := len(w) - 1; i > 0; i-- {
			w[i] = (w[i] << p.bitsPer) | (w[i-1] >> carry) //lint:idxsafe i walks (0, len) so i and i-1 are in range
		}
		w[0] = (w[0] << p.bitsPer) | sel
	}
	w[len(w)-1] &= p.topMask
}

// Len reports how many targets have been recorded, up to the depth.
func (p *PHR) Len() int { return p.filled }

// Recent fills dst's backing storage with the n most recent targets (most
// recent first) and returns the resulting length-n slice. Fewer than n are
// returned during warm-up. Callers on the per-lookup path pass a
// struct-owned scratch slice with capacity >= n so no allocation occurs;
// undersized (or nil) dst grows once.
//
//ppm:hotpath per-record history-register shift
func (p *PHR) Recent(dst []uint64, n int) []uint64 {
	if n > p.filled {
		n = p.filled
	}
	if cap(dst) < n {
		dst = make([]uint64, n) //lint:coldpath — only for nil/undersized scratch
	}
	dst = dst[:n]
	idx := p.head
	for i := range dst {
		dst[i] = p.ring[idx] //lint:idxsafe idx walks the ring down from head and wraps at 0, staying in [0, len)
		idx--
		if idx < 0 {
			idx = len(p.ring) - 1
		}
	}
	return dst
}

// Peek returns the i-th most recent target in the ring (0 = most recent),
// reading slots that have not been written yet as zero — the zero-filled
// warm-up a hardware register that powers up cleared would exhibit, and the
// contract the incremental folded registers of geometric-history predictors
// rely on for their outgoing items. Panics if i is not in [0, Depth()).
//
//ppm:hotpath per-record history-register read; runs once per bank per push
func (p *PHR) Peek(i int) uint64 {
	if i < 0 || i >= len(p.ring) {
		panic("history: Peek index out of range")
	}
	idx := p.head - i
	if idx < 0 {
		idx += len(p.ring)
	}
	return p.ring[idx] //lint:idxsafe idx = head-i wrapped once into [0, len)
}

// Packed returns the 64 low-order bits of the shift-register view: bitsPer
// low bits of each recorded target, most recent target in the least
// significant bits, truncated to packedBits. For registers constructed with
// NewWide past 64 bits this is the most recent word; FoldPacked reaches the
// full width.
//
//ppm:hotpath per-record history-register shift
func (p *PHR) Packed() uint64 {
	if len(p.packed) == 0 {
		return 0
	}
	return p.packed[0]
}

// PackedBits returns the configured width of the packed register.
func (p *PHR) PackedBits() uint { return p.packedBits }

// FoldPacked XOR-folds the `in` low-order bits of the packed register —
// the most recent in/bitsPer targets — into out bits. It is the
// from-scratch specification of the incrementally maintained
// hashing.Folded registers geometric-history predictors keep per bank;
// snapshot restore reseeds those registers from it. in is clamped to the
// register width; out must be in [1, 64].
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func (p *PHR) FoldPacked(in, out uint) uint64 {
	if in > p.packedBits {
		in = p.packedBits
	}
	return hashing.FoldWords(p.packed, in, out)
}

// State is a snapshot of a PHR's contents, used by the workload generator
// to model programs that return to previously visited control-flow
// configurations.
type State struct {
	ring   []uint64
	head   int
	filled int
	packed []uint64
}

// Snapshot captures the register's current contents.
func (p *PHR) Snapshot() State {
	return State{
		ring:   append([]uint64(nil), p.ring...),
		head:   p.head,
		filled: p.filled,
		packed: append([]uint64(nil), p.packed...),
	}
}

// Restore rewinds the register to a snapshot taken from the same PHR
// (matching depth and width); mismatched snapshots panic.
func (p *PHR) Restore(s State) {
	if len(s.ring) != len(p.ring) || len(s.packed) != len(p.packed) {
		panic("history: snapshot depth mismatch")
	}
	copy(p.ring, s.ring)
	p.head = s.head
	p.filled = s.filled
	copy(p.packed, s.packed)
}

// Reset clears the register to its power-up state.
func (p *PHR) Reset() {
	for i := range p.ring {
		p.ring[i] = 0
	}
	p.head = len(p.ring) - 1
	p.filled = 0
	for i := range p.packed {
		p.packed[i] = 0
	}
}
