// Package history implements path history registers (PHRs): shift registers
// that record the recent targets of a selected stream of branches. Two views
// are provided, matching the two families of predictors in the paper:
//
//   - Recent() exposes the most recent full targets, which the PPM
//     predictor's SFSXS mapping selects and folds per target (Figure 2);
//   - Packed() exposes the conventional k-bits-per-target shift register
//     used by GAp, Target Cache and Dual-path gshare/interleaved indexing.
package history

import "repro/internal/trace"

// Stream selects which branch records feed a PHR, mirroring the correlation
// groups studied by Chang et al. and adopted in Section 4 of the paper.
type Stream uint8

const (
	// AllBranches records the target of every committed branch (PB path
	// history: "Per Branch" correlation). Not-taken conditional branches
	// contribute their fall-through address.
	AllBranches Stream = iota
	// IndirectBranches records targets of indirect jmp/jsr instructions
	// only, ST and MT alike (PIB path history: "Per Indirect Branch").
	IndirectBranches
	// MTIndirectBranches records only multi-target indirect jmp/jsr
	// targets — the stream the Dual-path predictor registers observe.
	MTIndirectBranches
	// TakenBranches records targets of taken branches only.
	TakenBranches
)

// String names the stream.
func (s Stream) String() string {
	switch s {
	case AllBranches:
		return "PB"
	case IndirectBranches:
		return "PIB"
	case MTIndirectBranches:
		return "MT"
	case TakenBranches:
		return "taken"
	}
	return "stream(?)"
}

// Accepts reports whether a record belongs to the stream.
func (s Stream) Accepts(r trace.Record) bool {
	switch s {
	case AllBranches:
		return true
	case IndirectBranches:
		return r.PIBStream()
	case MTIndirectBranches:
		return r.MTIndirect()
	case TakenBranches:
		return r.Taken
	}
	return false
}

// PHR is a path history register holding the most recent `depth` targets of
// its stream. The zero value is not usable; construct with New.
type PHR struct {
	stream Stream
	ring   []uint64
	head   int // index of most recent entry
	filled int

	// packed is the conventional shift register maintained incrementally:
	// bitsPer low-order bits of each target, most recent in the low bits.
	packed     uint64
	packedBits uint
	bitsPer    uint
}

// New creates a PHR of the given depth over the given stream. bitsPer
// configures the packed shift-register view (bits recorded per target);
// packedBits bounds the register width. Panics if depth < 1.
func New(stream Stream, depth int, bitsPer, packedBits uint) *PHR {
	if depth < 1 {
		panic("history: depth must be >= 1")
	}
	if packedBits > 64 {
		packedBits = 64
	}
	return &PHR{
		stream:     stream,
		ring:       make([]uint64, depth),
		head:       depth - 1,
		bitsPer:    bitsPer,
		packedBits: packedBits,
	}
}

// Stream returns the stream feeding this register.
func (p *PHR) Stream() Stream { return p.stream }

// Depth returns the number of targets retained.
func (p *PHR) Depth() int { return len(p.ring) }

// Observe shifts the record's target into the register if the record
// belongs to the PHR's stream. It returns true if the register advanced.
//
//ppm:hotpath per-record history-register shift
func (p *PHR) Observe(r trace.Record) bool {
	if !p.stream.Accepts(r) {
		return false
	}
	p.Push(r.Target)
	return true
}

// Push unconditionally shifts a target into the register.
//
//ppm:hotpath per-record history-register shift
func (p *PHR) Push(target uint64) {
	p.head++
	if p.head == len(p.ring) {
		p.head = 0
	}
	p.ring[p.head] = target
	if p.filled < len(p.ring) {
		p.filled++
	}
	if p.packedBits > 0 {
		mask := (uint64(1) << p.packedBits) - 1
		if p.packedBits == 64 {
			mask = ^uint64(0)
		}
		var sel uint64
		if p.bitsPer >= 64 {
			sel = target >> 2
		} else {
			sel = (target >> 2) & ((uint64(1) << p.bitsPer) - 1)
		}
		p.packed = ((p.packed << p.bitsPer) | sel) & mask
	}
}

// Len reports how many targets have been recorded, up to the depth.
func (p *PHR) Len() int { return p.filled }

// Recent fills dst's backing storage with the n most recent targets (most
// recent first) and returns the resulting length-n slice. Fewer than n are
// returned during warm-up. Callers on the per-lookup path pass a
// struct-owned scratch slice with capacity >= n so no allocation occurs;
// undersized (or nil) dst grows once.
//
//ppm:hotpath per-record history-register shift
func (p *PHR) Recent(dst []uint64, n int) []uint64 {
	if n > p.filled {
		n = p.filled
	}
	if cap(dst) < n {
		dst = make([]uint64, n) //lint:coldpath — only for nil/undersized scratch
	}
	dst = dst[:n]
	idx := p.head
	for i := range dst {
		dst[i] = p.ring[idx] //lint:idxsafe idx walks the ring down from head and wraps at 0, staying in [0, len)
		idx--
		if idx < 0 {
			idx = len(p.ring) - 1
		}
	}
	return dst
}

// Packed returns the shift-register view: bitsPer low bits of each recorded
// target, most recent target in the least significant bits, truncated to
// packedBits.
//
//ppm:hotpath per-record history-register shift
func (p *PHR) Packed() uint64 { return p.packed }

// State is a snapshot of a PHR's contents, used by the workload generator
// to model programs that return to previously visited control-flow
// configurations.
type State struct {
	ring   []uint64
	head   int
	filled int
	packed uint64
}

// Snapshot captures the register's current contents.
func (p *PHR) Snapshot() State {
	return State{
		ring:   append([]uint64(nil), p.ring...),
		head:   p.head,
		filled: p.filled,
		packed: p.packed,
	}
}

// Restore rewinds the register to a snapshot taken from the same PHR
// (matching depth); mismatched snapshots panic.
func (p *PHR) Restore(s State) {
	if len(s.ring) != len(p.ring) {
		panic("history: snapshot depth mismatch")
	}
	copy(p.ring, s.ring)
	p.head = s.head
	p.filled = s.filled
	p.packed = s.packed
}

// Reset clears the register to its power-up state.
func (p *PHR) Reset() {
	for i := range p.ring {
		p.ring[i] = 0
	}
	p.head = len(p.ring) - 1
	p.filled = 0
	p.packed = 0
}
