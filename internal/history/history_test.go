package history

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func rec(class trace.Class, target uint64, mt bool) trace.Record {
	return trace.Record{PC: 0x12000000, Target: target, Class: class, Taken: true, MT: mt}
}

func TestStreamAccepts(t *testing.T) {
	cases := []struct {
		stream Stream
		rec    trace.Record
		want   bool
	}{
		{AllBranches, rec(trace.CondDirect, 4, false), true},
		{AllBranches, rec(trace.Return, 4, false), true},
		{IndirectBranches, rec(trace.IndirectJmp, 4, false), true},
		{IndirectBranches, rec(trace.IndirectJsr, 4, true), true},
		{IndirectBranches, rec(trace.Return, 4, false), false},
		{IndirectBranches, rec(trace.CondDirect, 4, false), false},
		{MTIndirectBranches, rec(trace.IndirectJmp, 4, true), true},
		{MTIndirectBranches, rec(trace.IndirectJmp, 4, false), false},
		{MTIndirectBranches, rec(trace.IndirectJsr, 4, false), false},
		{TakenBranches, trace.Record{Class: trace.CondDirect, Taken: false}, false},
		{TakenBranches, trace.Record{Class: trace.CondDirect, Taken: true}, true},
	}
	for _, c := range cases {
		if got := c.stream.Accepts(c.rec); got != c.want {
			t.Errorf("%v.Accepts(%v) = %v, want %v", c.stream, c.rec, got, c.want)
		}
	}
}

func TestPHRRecentOrder(t *testing.T) {
	p := New(AllBranches, 4, 2, 8)
	for i := uint64(1); i <= 6; i++ {
		p.Push(i * 4)
	}
	got := p.Recent(nil, 4)
	want := []uint64{24, 20, 16, 12}
	if len(got) != len(want) {
		t.Fatalf("Recent length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Recent[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPHRRecentWarmup(t *testing.T) {
	p := New(AllBranches, 8, 2, 0)
	p.Push(100)
	got := p.Recent(nil, 8)
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("warm-up Recent = %v", got)
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d, want 1", p.Len())
	}
}

func TestPHRPacked(t *testing.T) {
	// bitsPer=2, packedBits=6: each push shifts in (target>>2)&3.
	p := New(AllBranches, 4, 2, 6)
	p.Push(0x4) // (0x4>>2)&3 = 1
	p.Push(0x8) // 2
	p.Push(0xc) // 3
	want := uint64(1)<<4 | 2<<2 | 3
	if got := p.Packed(); got != want {
		t.Fatalf("Packed = %#b, want %#b", got, want)
	}
	p.Push(0x4) // shifts oldest bits out
	want = (want<<2 | 1) & 0x3f
	if got := p.Packed(); got != want {
		t.Fatalf("Packed after wrap = %#b, want %#b", got, want)
	}
}

func TestPHRObserveFilters(t *testing.T) {
	p := New(IndirectBranches, 4, 2, 8)
	if p.Observe(rec(trace.CondDirect, 0x10, false)) {
		t.Error("PIB register accepted a conditional branch")
	}
	if !p.Observe(rec(trace.IndirectJmp, 0x20, true)) {
		t.Error("PIB register rejected an indirect jmp")
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d after one accepted record", p.Len())
	}
}

func TestPHRSnapshotRestore(t *testing.T) {
	p := New(AllBranches, 4, 2, 8)
	for i := uint64(1); i <= 3; i++ {
		p.Push(i * 8)
	}
	snap := p.Snapshot()
	recent := append([]uint64(nil), p.Recent(nil, 4)...)
	packed := p.Packed()

	for i := uint64(10); i <= 20; i++ {
		p.Push(i * 4)
	}
	p.Restore(snap)

	got := p.Recent(nil, 4)
	if len(got) != len(recent) {
		t.Fatalf("restored length %d, want %d", len(got), len(recent))
	}
	for i := range recent {
		if got[i] != recent[i] {
			t.Errorf("restored Recent[%d] = %d, want %d", i, got[i], recent[i])
		}
	}
	if p.Packed() != packed {
		t.Errorf("restored Packed = %#x, want %#x", p.Packed(), packed)
	}
}

func TestPHRSnapshotIsolated(t *testing.T) {
	// Mutating the PHR after a snapshot must not corrupt the snapshot.
	p := New(AllBranches, 2, 2, 4)
	p.Push(8)
	snap := p.Snapshot()
	p.Push(12)
	p.Push(16)
	p.Restore(snap)
	if got := p.Recent(nil, 2); len(got) != 1 || got[0] != 8 {
		t.Errorf("snapshot not isolated: %v", got)
	}
}

func TestPHRRestoreMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Restore with mismatched depth did not panic")
		}
	}()
	a := New(AllBranches, 2, 2, 4)
	b := New(AllBranches, 4, 2, 4)
	b.Restore(a.Snapshot())
}

func TestPHRReset(t *testing.T) {
	p := New(AllBranches, 4, 2, 8)
	p.Push(4)
	p.Push(8)
	p.Reset()
	if p.Len() != 0 || p.Packed() != 0 || len(p.Recent(nil, 4)) != 0 {
		t.Error("Reset did not clear the register")
	}
}

func TestPHRPackedMatchesManualShift(t *testing.T) {
	f := func(targets []uint64) bool {
		const bitsPer, width = 3, 12
		p := New(AllBranches, 4, bitsPer, width)
		var manual uint64
		for _, tgt := range targets {
			p.Push(tgt)
			manual = (manual<<bitsPer | ((tgt >> 2) & (1<<bitsPer - 1))) & (1<<width - 1)
		}
		return p.Packed() == manual
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(depth=0) did not panic")
		}
	}()
	New(AllBranches, 0, 2, 8)
}
