package history

import "testing"

// TestNewRejectsWideRegisters pins the bug fix: New used to clamp
// packedBits to 64 silently, truncating geometric histories; it must now
// refuse and point callers at NewWide.
func TestNewRejectsWideRegisters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(packedBits=65) did not panic")
		}
	}()
	New(AllBranches, 4, 2, 65)
}

func TestNewWideMatchesNewAtOrBelow64(t *testing.T) {
	for _, bits := range []uint{0, 1, 10, 63, 64} {
		a := New(AllBranches, 8, 2, bits)
		b := NewWide(AllBranches, 8, 2, bits)
		for i := uint64(0); i < 100; i++ {
			tgt := (i*0x9E37_79B9 + 7) << 2
			a.Push(tgt)
			b.Push(tgt)
			if a.Packed() != b.Packed() {
				t.Fatalf("bits=%d push %d: New packed %#x, NewWide %#x", bits, i, a.Packed(), b.Packed())
			}
		}
	}
}

// TestWidePackedBitsPast64AreLive is the regression test for the silent
// clamp: a target pushed 33 two-bit items ago lives at packed bits 66..67,
// and changing it must change the register's folded view — under the old
// clamp the two histories below were indistinguishable.
func TestWidePackedBitsPast64AreLive(t *testing.T) {
	build := func(old uint64) *PHR {
		p := NewWide(MTIndirectBranches, 64, 2, 128)
		p.Push(old << 2) // will sit 33 pushes deep: bits [66, 68)
		for i := 0; i < 33; i++ {
			p.Push(0)
		}
		return p
	}
	a, b := build(1), build(2)
	if a.Packed() != b.Packed() {
		t.Fatalf("low words must agree: %#x vs %#x", a.Packed(), b.Packed())
	}
	if a.FoldPacked(128, 10) == b.FoldPacked(128, 10) {
		t.Fatal("bit 66 did not reach the folded view: the >64-bit history is dead")
	}
	// The fold of only the first 64 bits must still agree — the divergence
	// is attributable to the wide half alone.
	if a.FoldPacked(64, 10) != b.FoldPacked(64, 10) {
		t.Fatal("folds of the low 64 bits should be identical")
	}
}

func TestPeek(t *testing.T) {
	p := New(AllBranches, 4, 2, 8)
	if got := p.Peek(0); got != 0 {
		t.Fatalf("unwritten slots read zero, got %#x", got)
	}
	p.Push(4)
	p.Push(8)
	if got := p.Peek(0); got != 8 {
		t.Fatalf("Peek(0) = %#x, want 8", got)
	}
	if got := p.Peek(1); got != 4 {
		t.Fatalf("Peek(1) = %#x, want 4", got)
	}
	if got := p.Peek(3); got != 0 {
		t.Fatalf("Peek(3) should read warm-up zero, got %#x", got)
	}
	p.Push(12)
	p.Push(16)
	p.Push(20) // wraps: 4 falls out
	if got := p.Peek(3); got != 8 {
		t.Fatalf("Peek(3) after wrap = %#x, want 8", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Peek(4) out of depth did not panic")
		}
	}()
	p.Peek(4)
}

func TestWideSnapshotRestoreAndReset(t *testing.T) {
	p := NewWide(AllBranches, 70, 2, 130)
	for i := uint64(1); i <= 100; i++ {
		p.Push(i << 2)
	}
	snap := p.Snapshot()
	mid := p.FoldPacked(130, 24)
	for i := uint64(200); i < 240; i++ {
		p.Push(i << 2)
	}
	if p.FoldPacked(130, 24) == mid {
		t.Fatal("pushes after snapshot should have changed the fold")
	}
	p.Restore(snap)
	if got := p.FoldPacked(130, 24); got != mid {
		t.Fatalf("restore did not rewind the wide register: %#x vs %#x", got, mid)
	}
	p.Reset()
	if p.FoldPacked(130, 24) != 0 || p.Packed() != 0 || p.Len() != 0 {
		t.Fatal("reset left wide state behind")
	}
	if p.PackedBits() != 130 {
		t.Fatalf("PackedBits = %d", p.PackedBits())
	}
}
