package history

import "repro/internal/state"

// SaveState appends the register's contents as a snapshot section. The
// names avoid the in-memory Snapshot/Restore(State) pair above, which the
// workload generator uses for cheap intra-process rewinds; this pair is the
// durable binary form.
func (p *PHR) SaveState(w *state.Writer) {
	w.Begin(state.SecPHR)
	w.U8(uint8(p.stream))
	w.U64(uint64(len(p.ring)))
	w.U64(uint64(p.bitsPer))
	w.U64(uint64(p.packedBits))
	w.U64(uint64(p.head))
	w.U64(uint64(p.filled))
	w.U64(p.packed)
	for _, t := range p.ring {
		w.U64(t)
	}
	w.End()
}

// LoadState rebuilds the register in place from a SaveState section,
// validating the configuration fingerprint and every positional field.
func (p *PHR) LoadState(r *state.Reader) error {
	if err := r.Begin(state.SecPHR); err != nil {
		return err
	}
	stream := Stream(r.U8())
	depth := r.U64()
	bitsPer := r.U64()
	packedBits := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if stream != p.stream || depth != uint64(len(p.ring)) || bitsPer != uint64(p.bitsPer) || packedBits != uint64(p.packedBits) {
		return state.Mismatchf("PHR %v/%d/%d/%d vs snapshot %v/%d/%d/%d",
			p.stream, len(p.ring), p.bitsPer, p.packedBits, stream, depth, bitsPer, packedBits)
	}
	head := r.U64()
	filled := r.U64()
	packed := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if head >= depth || filled > depth {
		return state.Corruptf("PHR head %d / filled %d out of range for depth %d", head, filled, depth)
	}
	for i := range p.ring {
		p.ring[i] = r.U64()
	}
	if err := r.End(); err != nil {
		return err
	}
	p.head = int(head)
	p.filled = int(filled)
	p.packed = packed
	return nil
}
