package history

import "repro/internal/state"

// SaveState appends the register's contents as a snapshot section. The
// names avoid the in-memory Snapshot/Restore(State) pair above, which the
// workload generator uses for cheap intra-process rewinds; this pair is the
// durable binary form.
func (p *PHR) SaveState(w *state.Writer) {
	w.Begin(state.SecPHR)
	w.U8(uint8(p.stream))
	w.U64(uint64(len(p.ring)))
	w.U64(uint64(p.bitsPer))
	w.U64(uint64(p.packedBits))
	w.U64(uint64(p.head))
	w.U64(uint64(p.filled))
	// One word per 64 bits of packed register, low word first. Registers of
	// 64 bits or fewer serialize exactly one word — the original encoding —
	// and a zero-width register keeps its single placeholder word so the
	// byte layout of every pre-multi-word snapshot is unchanged.
	if len(p.packed) == 0 {
		w.U64(0)
	}
	for _, t := range p.packed {
		w.U64(t)
	}
	for _, t := range p.ring {
		w.U64(t)
	}
	w.End()
}

// LoadState rebuilds the register in place from a SaveState section,
// validating the configuration fingerprint and every positional field.
func (p *PHR) LoadState(r *state.Reader) error {
	if err := r.Begin(state.SecPHR); err != nil {
		return err
	}
	stream := Stream(r.U8())
	depth := r.U64()
	bitsPer := r.U64()
	packedBits := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if stream != p.stream || depth != uint64(len(p.ring)) || bitsPer != uint64(p.bitsPer) || packedBits != uint64(p.packedBits) {
		return state.Mismatchf("PHR %v/%d/%d/%d vs snapshot %v/%d/%d/%d",
			p.stream, len(p.ring), p.bitsPer, p.packedBits, stream, depth, bitsPer, packedBits)
	}
	head := r.U64()
	filled := r.U64()
	var packed0 uint64
	if len(p.packed) == 0 {
		packed0 = r.U64() // zero-width placeholder word
	}
	// Like the ring below, the packed words land in place before the final
	// error check: a failed restore leaves the register unspecified, which
	// every caller already handles by discarding the predictor.
	for i := range p.packed {
		p.packed[i] = r.U64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if head >= depth || filled > depth {
		return state.Corruptf("PHR head %d / filled %d out of range for depth %d", head, filled, depth)
	}
	if len(p.packed) == 0 && packed0 != 0 {
		return state.Corruptf("PHR zero-width packed register holds %#x", packed0)
	}
	if n := len(p.packed); n > 0 && p.packed[n-1]&^p.topMask != 0 {
		return state.Corruptf("PHR packed top word %#x exceeds %d-bit register", p.packed[n-1], p.packedBits)
	}
	for i := range p.ring {
		p.ring[i] = r.U64()
	}
	if err := r.End(); err != nil {
		return err
	}
	p.head = int(head)
	p.filled = int(filled)
	return nil
}
