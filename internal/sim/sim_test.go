package sim

import (
	"bytes"
	"testing"

	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/trace"
)

func mtJmp(pc, target uint64, gap uint32) trace.Record {
	return trace.Record{PC: pc, Target: target, Class: trace.IndirectJmp, Taken: true, MT: true, Gap: gap}
}

func TestEngineCountsOnlyMTIndirect(t *testing.T) {
	e := New(btb.New(64))
	e.Process(trace.Record{PC: 0x10, Target: 0x14, Class: trace.CondDirect, Taken: false, Gap: 2})
	e.Process(trace.Record{PC: 0x20, Target: 0x9000, Class: trace.IndirectJsr, Taken: true, MT: false})
	e.Process(trace.Record{PC: 0x9010, Target: 0x24, Class: trace.Return, Taken: true})
	e.Process(mtJmp(0x30, 0x4000, 1))
	c := e.Counters()[0]
	if c.Lookups != 1 {
		t.Errorf("Lookups = %d, want 1 (only the MT indirect record)", c.Lookups)
	}
	if e.Records() != 4 {
		t.Errorf("Records = %d, want 4", e.Records())
	}
	if e.Instructions() != 7 { // gaps 2+0+0+1 plus the 4 branches
		t.Errorf("Instructions = %d", e.Instructions())
	}
}

func TestEngineAccuracyAccounting(t *testing.T) {
	e := New(btb.New(64))
	e.Process(mtJmp(0x40, 0x1000, 0)) // cold: abstain
	e.Process(mtJmp(0x40, 0x1000, 0)) // correct
	e.Process(mtJmp(0x40, 0x2000, 0)) // wrong
	c := e.Counters()[0]
	if c.NoPrediction != 1 || c.Correct != 1 || c.Wrong != 1 {
		t.Errorf("counters: %+v", c)
	}
	if c.Mispredictions() != 2 {
		t.Errorf("Mispredictions = %d", c.Mispredictions())
	}
}

func TestEngineMultiplePredictorsIndependent(t *testing.T) {
	e := New(btb.New(64), core.PaperHyb())
	for i := 0; i < 100; i++ {
		tgt := uint64(0x1010)
		if i%2 == 1 {
			tgt = 0x2020
		}
		e.Process(mtJmp(0x40, tgt, 0))
	}
	counters := e.Counters()
	if counters[0].Predictor != "BTB" || counters[1].Predictor != "PPM-hyb" {
		t.Fatalf("names: %q %q", counters[0].Predictor, counters[1].Predictor)
	}
	// Alternating targets: BTB is always wrong after warm-up; PPM learns.
	if counters[0].MispredictionRatio() < 0.9 {
		t.Errorf("BTB ratio = %v on alternation, expected ~1", counters[0].MispredictionRatio())
	}
	if counters[1].MispredictionRatio() > 0.2 {
		t.Errorf("PPM ratio = %v on alternation, expected small", counters[1].MispredictionRatio())
	}
}

func TestEngineRAS(t *testing.T) {
	e := New()
	e.Process(trace.Record{PC: 0x100, Target: 0x5000, Class: trace.DirectCall, Taken: true})
	e.Process(trace.Record{PC: 0x5020, Target: 0x104, Class: trace.Return, Taken: true})
	hits, total := e.RAS().Accuracy()
	if hits != 1 || total != 1 {
		t.Errorf("RAS accuracy %d/%d", hits, total)
	}
}

func TestEngineReset(t *testing.T) {
	e := New(btb.New(64))
	e.Process(mtJmp(0x40, 0x1000, 3))
	e.Reset()
	if e.Records() != 0 || e.Instructions() != 0 {
		t.Error("engine counters survived Reset")
	}
	if e.Counters()[0].Lookups != 0 {
		t.Error("predictor counters survived Reset")
	}
	// Predictor state also reset: next lookup is cold.
	e.Process(mtJmp(0x40, 0x1000, 0))
	if e.Counters()[0].NoPrediction != 1 {
		t.Error("predictor state survived Reset")
	}
}

func TestCountersFor(t *testing.T) {
	e := New(btb.New(64), btb.New2b(64))
	if _, ok := e.CountersFor("BTB2b"); !ok {
		t.Error("CountersFor missed BTB2b")
	}
	if _, ok := e.CountersFor("nope"); ok {
		t.Error("CountersFor found a ghost")
	}
}

func TestProcessReader(t *testing.T) {
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf)
	for i := 0; i < 50; i++ {
		_ = w.Write(mtJmp(0x40, uint64(0x1000+(i%3)*0x40), 2))
	}
	_ = w.Flush()
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e := New(btb.New(16))
	if err := e.ProcessReader(r); err != nil {
		t.Fatal(err)
	}
	if e.Records() != 50 {
		t.Errorf("Records = %d, want 50", e.Records())
	}
}

func TestRunConvenience(t *testing.T) {
	recs := []trace.Record{mtJmp(0x40, 0x1000, 0), mtJmp(0x40, 0x1000, 0)}
	counters := Run(recs, btb.New(16))
	if counters[0].Lookups != 2 || counters[0].Correct != 1 {
		t.Errorf("Run counters: %+v", counters[0])
	}
}

// valueSpy records the values the engine forwards through the ValueAware
// lane, proving New hoists the capability check out of the record loop
// without losing the value forward.
type valueSpy struct {
	values []uint32
}

func (v *valueSpy) Name() string                  { return "spy" }
func (v *valueSpy) Predict(uint64) (uint64, bool) { return 0, false }
func (v *valueSpy) Update(uint64, uint64)         {}
func (v *valueSpy) Observe(trace.Record)          {}
func (v *valueSpy) SetValue(val uint32)           { v.values = append(v.values, val) }

var _ ValueAware = (*valueSpy)(nil)

func TestValueAwareLane(t *testing.T) {
	spy := &valueSpy{}
	plain := btb.New(64)
	e := New(plain, spy)
	rec := mtJmp(0x50, 0x3000, 0)
	rec.Value = 7
	e.Process(rec)
	e.Process(trace.Record{PC: 0x60, Target: 0x64, Class: trace.CondDirect, Taken: true})
	rec.Value = 9
	e.Process(rec)
	if len(spy.values) != 2 || spy.values[0] != 7 || spy.values[1] != 9 {
		t.Errorf("ValueAware saw %v, want [7 9] (MT records only)", spy.values)
	}
	if e.Counters()[0].Lookups != 2 || e.Counters()[1].Lookups != 2 {
		t.Errorf("lanes disturbed the counter protocol: %+v", e.Counters())
	}
}
