package sim

import "repro/internal/state"

// Snapshottable reports whether every attached predictor implements
// state.Snapshotter — the precondition for Engine.Snapshot. The oracle
// (unbounded measurement device) is the one shipped predictor that does
// not.
func (e *Engine) Snapshottable() bool {
	for _, p := range e.preds {
		if _, ok := p.(state.Snapshotter); !ok {
			return false
		}
	}
	return true
}

// Snapshot implements state.Snapshotter: the engine's accounting and
// per-predictor counters, the RAS, then every predictor in attachment
// order. Panics if a predictor does not implement state.Snapshotter; guard
// with Snapshottable for dynamic sets.
func (e *Engine) Snapshot(w *state.Writer) {
	w.Begin(state.SecEngine)
	w.U64(uint64(len(e.preds)))
	w.U64(e.records)
	w.U64(e.instrs)
	for i := range e.counters {
		c := &e.counters[i]
		w.U64(c.Lookups)
		w.U64(c.Correct)
		w.U64(c.Wrong)
		w.U64(c.NoPrediction)
	}
	w.End()
	e.ras.Snapshot(w)
	for _, p := range e.preds {
		p.(state.Snapshotter).Snapshot(w)
	}
}

// Restore implements state.Snapshotter into an engine built over an
// identically-ordered predictor set. Panics if a predictor does not
// implement state.Snapshotter; guard with Snapshottable for dynamic sets.
func (e *Engine) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecEngine); err != nil {
		return err
	}
	if n := r.U64(); n != uint64(len(e.preds)) {
		if err := r.Err(); err != nil {
			return err
		}
		return state.Mismatchf("engine has %d predictors, snapshot %d", len(e.preds), n)
	}
	records := r.U64()
	instrs := r.U64()
	for i := range e.counters {
		c := &e.counters[i]
		c.Lookups = r.U64()
		c.Correct = r.U64()
		c.Wrong = r.U64()
		c.NoPrediction = r.U64()
	}
	if err := r.End(); err != nil {
		return err
	}
	if err := e.ras.Restore(r); err != nil {
		return err
	}
	for _, p := range e.preds {
		if err := p.(state.Snapshotter).Restore(r); err != nil {
			return err
		}
	}
	e.records, e.instrs = records, instrs
	return nil
}

var _ state.Snapshotter = (*Engine)(nil)
