package sim_test

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/check"
	"repro/internal/sim"
	"repro/internal/state"
)

// TestProcessPredictedMatchesProcess pins the live predict step to the batch
// step: replaying the same trace through Process and through
// ProcessPredicted must leave byte-identical engine state for every family,
// and the surfaced predictions must sum to exactly the engine's counters.
func TestProcessPredictedMatchesProcess(t *testing.T) {
	recs := check.RandomTrace(0x11FE, 3000)
	for _, name := range bench.PredictorNames() {
		t.Run(name, func(t *testing.T) {
			pa, _ := bench.NewPredictor(name)
			pb, _ := bench.NewPredictor(name)
			batch, live := sim.New(pa), sim.New(pb)
			batch.ProcessAll(recs)

			var dispatches, predicted, correct uint64
			for _, r := range recs {
				p, ok := live.ProcessPredicted(r)
				if !ok {
					continue
				}
				dispatches++
				if p.Predicted {
					predicted++
				}
				if p.Correct {
					correct++
				}
			}

			a, b := state.SaveBytes(batch), state.SaveBytes(live)
			if !bytes.Equal(a, b) {
				t.Fatalf("live replay diverged from batch: snapshots %d vs %d bytes", len(a), len(b))
			}
			c := live.Counters()[0]
			if c.Lookups != dispatches {
				t.Errorf("dispatches %d, counters saw %d lookups", dispatches, c.Lookups)
			}
			if got := c.Correct + c.Wrong; got != predicted {
				t.Errorf("predicted %d, counters saw %d predictions", predicted, got)
			}
			if c.Correct != correct {
				t.Errorf("correct %d, counters saw %d", correct, c.Correct)
			}
		})
	}
}
