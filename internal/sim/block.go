package sim

import (
	"repro/internal/stats"
	"repro/internal/trace"
)

// BlockPredictor is the batch opt-in: a predictor that can replay a whole
// columnar block against itself, accumulating accuracy into c. The engine
// routes blocks through this method when a predictor implements it,
// hoisting the three interface dispatches per record (Predict, Update,
// Observe) into one per block.
//
// Implementations MUST be observationally equivalent to the record loop:
// for each record of the block in stream order — if the record is
// MT-indirect, predict at the pre-update history, record the outcome into
// c, then train; then observe the record (history registers, BIU). A
// predictor that consumes the switch value (ValueAware) must read it from
// the block's Value lane itself; the engine's per-record SetValue forward
// only runs on the fallback path.
type BlockPredictor interface {
	ProcessBlock(b *trace.Block, c *stats.Counters)
}

// ProcessBlock feeds one columnar block to every predictor, whole-block
// per predictor: the RAS steps through the block once, then each predictor
// replays the block in turn — batch fast path when it opts in via
// BlockPredictor, record-exact fallback otherwise. Predictors share no
// state with each other or with the RAS, so this reordering relative to
// the record-interleaved Process loop leaves every per-predictor outcome
// and the RAS accounting bit-identical.
//
//ppm:hotpath per-block engine step driving every predictor
func (e *Engine) ProcessBlock(b *trace.Block) {
	n := uint64(b.Len())
	e.records += n
	e.instrs += b.GapSum + n
	e.ras.ProcessBlock(b)
	for i := range e.preds {
		if bp := e.bp[i]; bp != nil {
			bp.ProcessBlock(b, &e.counters[i])
		} else {
			e.processBlockSlow(i, b)
		}
	}
}

// processBlockSlow replays a block against predictor i through the
// record-at-a-time protocol, reconstructing each record from the lanes.
// This is the path predictors without a batch fast path take (oracle, the
// value-aware CBT, the filtered/multi PPM extensions).
//
//ppm:hotpath per-record fallback under the block engine
func (e *Engine) processBlockSlow(i int, b *trace.Block) {
	p := e.preds[i]     //lint:idxsafe i < len(e.preds) by construction (caller iterates e.bp, same length)
	va := e.va[i]       //lint:idxsafe i < len(e.preds) == len(e.va) by construction
	c := &e.counters[i] //lint:idxsafe i < len(e.preds) == len(e.counters) by construction
	for k := 0; k < b.Len(); k++ {
		r := b.Record(k)
		if r.MTIndirect() {
			if va != nil {
				va.SetValue(r.Value)
			}
			target, ok := p.Predict(r.PC)
			c.Record(ok && target == r.Target, ok)
			p.Update(r.PC, r.Target)
		}
		p.Observe(r)
	}
}

// ProcessBlocks feeds a pre-decoded block sequence, block by block.
func (e *Engine) ProcessBlocks(blks []trace.Block) {
	for i := range blks {
		e.ProcessBlock(&blks[i])
	}
}
