// Package sim is the trace-driven simulation engine: it drives committed
// branch records through a set of indirect-branch predictors using the
// protocol the paper's hardware implies — predict at fetch with the
// pre-update history, resolve and train, then advance path history — and
// accumulates the misprediction statistics of Section 5. A RAS is simulated
// alongside to account for returns, which are excluded from the indirect
// predictors' workload.
package sim

import (
	"io"

	"repro/internal/predictor"
	"repro/internal/ras"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Engine drives one record stream through any number of predictors.
type Engine struct {
	preds []predictor.IndirectPredictor
	// va is the ValueAware lane: va[i] is non-nil iff preds[i] consumes
	// the switch variable value. Precomputed at construction so Process
	// does not pay a type assertion per predictor per MT record.
	va []ValueAware
	// bp is the batch lane: bp[i] is non-nil iff preds[i] opts into
	// whole-block processing via BlockPredictor, letting ProcessBlock
	// skip the record-at-a-time fallback for it.
	bp       []BlockPredictor
	counters []stats.Counters
	ras      *ras.Stack
	records  uint64
	instrs   uint64
}

// New builds an engine over the given predictors. A 64-deep RAS is
// simulated for return accounting.
func New(preds ...predictor.IndirectPredictor) *Engine {
	e := &Engine{
		preds:    preds,
		va:       make([]ValueAware, len(preds)),
		bp:       make([]BlockPredictor, len(preds)),
		counters: make([]stats.Counters, len(preds)),
		ras:      ras.New(64),
	}
	for i, p := range preds {
		e.counters[i].Predictor = p.Name()
		if v, ok := p.(ValueAware); ok {
			e.va[i] = v
		}
		if b, ok := p.(BlockPredictor); ok {
			e.bp[i] = b
		}
	}
	return e
}

// ValueAware is implemented by predictors that consume the switch variable
// value carried by a record (the Case Block Table); the engine hands them
// the value before Predict, modelling a fetch-stage value forward.
type ValueAware interface {
	SetValue(v uint32)
}

// Process feeds one committed branch record to every predictor.
//
//ppm:hotpath per-record engine step driving every predictor
func (e *Engine) Process(r trace.Record) {
	e.records++
	e.instrs += uint64(r.Gap) + 1
	if r.MTIndirect() {
		for i, p := range e.preds {
			if va := e.va[i]; va != nil {
				va.SetValue(r.Value)
			}
			target, ok := p.Predict(r.PC)
			e.counters[i].Record(ok && target == r.Target, ok)
			p.Update(r.PC, r.Target)
		}
	}
	e.ras.Process(r)
	for _, p := range e.preds {
		p.Observe(r)
	}
}

// ProcessAll feeds a slice of records.
func (e *Engine) ProcessAll(recs []trace.Record) {
	for _, r := range recs {
		e.Process(r)
	}
}

// ProcessReader streams records from a trace.Reader until EOF.
func (e *Engine) ProcessReader(r *trace.Reader) error {
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		e.Process(rec)
	}
}

// Counters returns per-predictor accuracy counters, in predictor order.
func (e *Engine) Counters() []stats.Counters { return e.counters }

// CountersFor returns the counters of the named predictor, or false.
func (e *Engine) CountersFor(name string) (stats.Counters, bool) {
	for _, c := range e.counters {
		if c.Predictor == name {
			return c, true
		}
	}
	return stats.Counters{}, false
}

// RAS exposes the simulated return address stack.
func (e *Engine) RAS() *ras.Stack { return e.ras }

// Records returns the number of branch records processed.
func (e *Engine) Records() uint64 { return e.records }

// Instructions returns the reconstructed instruction count (branches plus
// their recorded gaps).
func (e *Engine) Instructions() uint64 { return e.instrs }

// Reset returns the engine and every resettable predictor to power-up
// state.
func (e *Engine) Reset() {
	for i, p := range e.preds {
		if r, ok := p.(predictor.Resetter); ok {
			r.Reset()
		}
		e.counters[i] = stats.Counters{Predictor: p.Name()}
	}
	e.ras.Reset()
	e.records, e.instrs = 0, 0
}

// Run is a convenience: build an engine, feed the records, return counters.
func Run(recs []trace.Record, preds ...predictor.IndirectPredictor) []stats.Counters {
	e := New(preds...)
	e.ProcessAll(recs)
	return e.Counters()
}
