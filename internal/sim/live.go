package sim

import "repro/internal/trace"

// Prediction is the per-dispatch outcome ProcessPredicted reports for the
// engine's first predictor.
type Prediction struct {
	Target    uint64 // predicted target; meaningful only when Predicted
	Predicted bool   // the predictor ventured a prediction
	Correct   bool   // Predicted and the target matched the committed one
}

// ProcessPredicted feeds one record through the exact per-record protocol of
// Process — predict and train every predictor on MT indirect dispatches,
// advance the RAS, observe everything — and additionally surfaces the first
// predictor's prediction outcome. dispatched is false (and the outcome zero)
// when the record is not an MT indirect dispatch, where no prediction is
// made. The live-session predict stream uses this so each prediction can be
// streamed back while state mutates exactly as the batch engine would; the
// two paths are pinned identical by TestProcessPredictedMatchesProcess.
func (e *Engine) ProcessPredicted(r trace.Record) (p Prediction, dispatched bool) {
	e.records++
	e.instrs += uint64(r.Gap) + 1
	if r.MTIndirect() {
		dispatched = true
		for i, pr := range e.preds {
			if va := e.va[i]; va != nil {
				va.SetValue(r.Value)
			}
			target, ok := pr.Predict(r.PC)
			e.counters[i].Record(ok && target == r.Target, ok)
			if i == 0 {
				p = Prediction{Target: target, Predicted: ok, Correct: ok && target == r.Target}
			}
			pr.Update(r.PC, r.Target)
		}
	}
	e.ras.Process(r)
	for _, pr := range e.preds {
		pr.Observe(r)
	}
	return p, dispatched
}
