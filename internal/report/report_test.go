package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Results", "run", "ratio")
	tab.AddRow("perl.exp", "9.47")
	tab.AddRow("gcc")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Results" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "run") || !strings.Contains(lines[1], "ratio") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	if !strings.Contains(lines[3], "perl.exp") || !strings.Contains(lines[3], "9.47") {
		t.Errorf("row = %q", lines[3])
	}
	// Columns align: "ratio" starts at the same offset in header and rows.
	col := strings.Index(lines[1], "ratio")
	if lines[3][col:col+4] != "9.47" {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRowf("x", 3.14159, 42)
	out := tab.String()
	if !strings.Contains(out, "3.14") {
		t.Errorf("float not formatted: %s", out)
	}
	if !strings.Contains(out, "42") {
		t.Errorf("int missing: %s", out)
	}
}

func TestBars(t *testing.T) {
	var b strings.Builder
	Bars(&b, "Mispredictions", []string{"BTB", "PPM"}, []float64{40, 10}, 20)
	out := b.String()
	if !strings.Contains(out, "Mispredictions") {
		t.Error("missing title")
	}
	btbHashes := strings.Count(strings.Split(out, "\n")[1], "#")
	ppmHashes := strings.Count(strings.Split(out, "\n")[2], "#")
	if btbHashes != 20 || ppmHashes != 5 {
		t.Errorf("bar lengths %d/%d, want 20/5\n%s", btbHashes, ppmHashes, out)
	}
}

func TestBarsZeroMax(t *testing.T) {
	var b strings.Builder
	Bars(&b, "", []string{"x"}, []float64{0}, 0)
	if !strings.Contains(b.String(), "0.00%") {
		t.Errorf("zero bars output: %q", b.String())
	}
}

func TestPct(t *testing.T) {
	if Pct(0.0947) != "9.47" {
		t.Errorf("Pct = %q", Pct(0.0947))
	}
}
