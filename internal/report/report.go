// Package report renders fixed-width text tables and simple horizontal bar
// charts for the experiment harness, so the regenerated Tables/Figures read
// like the paper's.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells under a header and renders them
// with aligned columns.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each cell with fmt.Sprint.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprint(c))
		}
	}
	t.AddRow(row...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintln(w, t.title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Bars renders a labelled horizontal bar chart of percentages (0-100),
// mimicking the misprediction-ratio figures.
func Bars(w io.Writer, title string, labels []string, values []float64, maxWidth int) {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	labW := 0
	maxV := 0.0
	for i, l := range labels {
		if len(l) > labW {
			labW = len(l)
		}
		if values[i] > maxV {
			maxV = values[i]
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for i, l := range labels {
		n := int(values[i] / maxV * float64(maxWidth))
		fmt.Fprintf(w, "%s  %6.2f%%  %s\n", pad(l, labW), values[i], strings.Repeat("#", n))
	}
}

// Pct formats a ratio in [0,1] as a percentage string.
func Pct(r float64) string { return fmt.Sprintf("%.2f", 100*r) }
