package ras

import "repro/internal/state"

// Snapshot implements state.Snapshotter.
func (s *Stack) Snapshot(w *state.Writer) {
	w.Begin(state.SecRAS)
	w.U64(uint64(len(s.buf)))
	w.U64(uint64(s.top))
	w.U64(uint64(s.base))
	w.U64(s.hits)
	w.U64(s.preds)
	for _, v := range s.buf {
		w.U64(v)
	}
	w.End()
}

// Restore implements state.Snapshotter, rebuilding the stack in place.
func (s *Stack) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecRAS); err != nil {
		return err
	}
	depth := r.U64()
	top := r.U64()
	base := r.U64()
	hits := r.U64()
	preds := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if depth != uint64(len(s.buf)) {
		return state.Mismatchf("RAS depth %d vs snapshot %d", len(s.buf), depth)
	}
	if top > uint64(len(s.buf)) || base >= uint64(len(s.buf)) {
		return state.Corruptf("RAS top %d / base %d out of range for depth %d", top, base, depth)
	}
	for i := range s.buf {
		s.buf[i] = r.U64()
	}
	if err := r.End(); err != nil {
		return err
	}
	s.top = int(top)
	// The modulus is a no-op (base < len(s.buf) was validated above) but
	// keeps every store to s.base on the reduced-by-len form the buffer
	// indexing in Push/Pop relies on.
	s.base = int(base) % len(s.buf)
	s.hits = hits
	s.preds = preds
	return nil
}

var _ state.Snapshotter = (*Stack)(nil)
