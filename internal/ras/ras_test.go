package ras

import (
	"testing"

	"repro/internal/trace"
)

func TestPushPopLIFO(t *testing.T) {
	s := New(8)
	s.Push(0x100)
	s.Push(0x200)
	s.Push(0x300)
	for _, want := range []uint64{0x300, 0x200, 0x100} {
		got, ok := s.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = (%#x,%v), want %#x", got, ok, want)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on empty stack succeeded")
	}
}

func TestPeekDoesNotPop(t *testing.T) {
	s := New(4)
	s.Push(0xabc)
	if got, ok := s.Peek(); !ok || got != 0xabc {
		t.Fatalf("Peek = (%#x,%v)", got, ok)
	}
	if s.Len() != 1 {
		t.Fatal("Peek consumed the entry")
	}
}

func TestOverflowDropsOldest(t *testing.T) {
	s := New(3)
	for i := uint64(1); i <= 5; i++ {
		s.Push(i * 0x10)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, want := range []uint64{0x50, 0x40, 0x30} {
		got, _ := s.Pop()
		if got != want {
			t.Fatalf("Pop = %#x, want %#x (oldest entries must be dropped)", got, want)
		}
	}
}

func TestProcessWellNestedCalls(t *testing.T) {
	s := New(16)
	// call A -> call B -> ret B -> ret A
	s.Process(trace.Record{PC: 0x1000, Target: 0x5000, Class: trace.DirectCall, Taken: true})
	s.Process(trace.Record{PC: 0x5010, Target: 0x6000, Class: trace.IndirectJsr, Taken: true})
	if got, ok := s.Process(trace.Record{PC: 0x6020, Target: 0x5014, Class: trace.Return, Taken: true}); !ok || got != 0x5014 {
		t.Fatalf("inner return predicted %#x", got)
	}
	if got, ok := s.Process(trace.Record{PC: 0x5020, Target: 0x1004, Class: trace.Return, Taken: true}); !ok || got != 0x1004 {
		t.Fatalf("outer return predicted %#x", got)
	}
	hits, total := s.Accuracy()
	if hits != 2 || total != 2 {
		t.Errorf("accuracy = %d/%d, want 2/2", hits, total)
	}
}

func TestProcessIgnoresNonCallClasses(t *testing.T) {
	s := New(4)
	s.Process(trace.Record{PC: 0x1000, Target: 0x2000, Class: trace.CondDirect, Taken: true})
	s.Process(trace.Record{PC: 0x1000, Target: 0x2000, Class: trace.IndirectJmp, Taken: true, MT: true})
	s.Process(trace.Record{PC: 0x1000, Target: 0x2000, Class: trace.UncondDirect, Taken: true})
	if s.Len() != 0 {
		t.Error("non-call classes pushed onto the RAS")
	}
}

func TestProcessMispredictedReturn(t *testing.T) {
	s := New(4)
	s.Process(trace.Record{PC: 0x1000, Target: 0x5000, Class: trace.DirectCall, Taken: true})
	// Return goes somewhere unexpected (longjmp-style).
	s.Process(trace.Record{PC: 0x5020, Target: 0x9999, Class: trace.Return, Taken: true})
	hits, total := s.Accuracy()
	if hits != 0 || total != 1 {
		t.Errorf("accuracy = %d/%d, want 0/1", hits, total)
	}
}

func TestReset(t *testing.T) {
	s := New(4)
	s.Push(0x10)
	s.Process(trace.Record{PC: 0x20, Target: 0x10, Class: trace.Return, Taken: true})
	s.Reset()
	if s.Len() != 0 {
		t.Error("entries survived Reset")
	}
	if h, n := s.Accuracy(); h != 0 || n != 0 {
		t.Error("counters survived Reset")
	}
}

func TestNewPanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}
