// Package ras implements the Call/Return Stack of Kaeli & Emma (ISCA 1991),
// the mechanism that makes subroutine returns near-perfectly predictable and
// justifies the paper's exclusion of `ret` instructions from the indirect
// predictor's workload.
package ras

import "repro/internal/trace"

// Stack is a fixed-depth return address stack. When the stack overflows the
// oldest entry is dropped (circular), matching common hardware behaviour.
type Stack struct {
	buf   []uint64
	top   int // number of live entries, <= len(buf)
	base  int // index of the oldest live entry in the ring
	hits  uint64
	preds uint64
}

// New creates a RAS with the given depth. Panics if depth < 1.
func New(depth int) *Stack {
	if depth < 1 {
		panic("ras: depth must be >= 1")
	}
	return &Stack{buf: make([]uint64, depth)}
}

// Depth returns the stack capacity.
func (s *Stack) Depth() int { return len(s.buf) }

// Len returns the number of live entries.
func (s *Stack) Len() int { return s.top }

// Push records a call's return address.
func (s *Stack) Push(returnPC uint64) {
	if s.top == len(s.buf) {
		// Overflow: drop the oldest entry.
		s.buf[s.base] = 0
		s.base = (s.base + 1) % len(s.buf)
		s.top--
	}
	idx := (s.base + s.top) % len(s.buf)
	s.buf[idx] = returnPC
	s.top++
}

// Peek returns the predicted return target without popping.
func (s *Stack) Peek() (uint64, bool) {
	if s.top == 0 {
		return 0, false
	}
	idx := (s.base + s.top - 1) % len(s.buf)
	return s.buf[idx], true
}

// Pop removes and returns the predicted return target.
func (s *Stack) Pop() (uint64, bool) {
	t, ok := s.Peek()
	if ok {
		s.top--
	}
	return t, ok
}

// Process drives the stack from a branch record stream: calls (direct and
// indirect) push their fall-through address; returns pop a prediction and
// the accuracy counters are advanced. It returns the predicted target and
// whether a prediction was made, for Return records; other classes return
// ok=false.
//
//ppm:hotpath per-call stack push/pop on the lookup path
func (s *Stack) Process(r trace.Record) (predicted uint64, ok bool) {
	switch r.Class {
	case trace.IndirectJsr, trace.JsrCoroutine, trace.DirectCall:
		s.Push(r.PC + 4)
	case trace.Return:
		predicted, ok = s.Pop()
		s.preds++
		if ok && predicted == r.Target {
			s.hits++
		}
		return predicted, ok
	}
	return 0, false
}

// ProcessBlock drives the stack through a whole columnar block, equivalent
// to calling Process on every record in stream order. Only the Meta, PC and
// Target lanes are touched; records of non-call, non-return classes cost a
// single switch on their meta byte.
//
//ppm:hotpath per-call stack push/pop on the lookup path
func (s *Stack) ProcessBlock(b *trace.Block) {
	metas := b.Meta
	pcs := b.PC[:len(metas)]
	tgts := b.Target[:len(metas)]
	for i, m := range metas {
		switch trace.Class(m & trace.MetaClassMask) {
		case trace.IndirectJsr, trace.JsrCoroutine, trace.DirectCall:
			s.Push(pcs[i] + 4)
		case trace.Return:
			predicted, ok := s.Pop()
			s.preds++
			if ok && predicted == tgts[i] {
				s.hits++
			}
		}
	}
}

// Accuracy returns correct predictions and total return predictions.
func (s *Stack) Accuracy() (hits, total uint64) { return s.hits, s.preds }

// Reset clears the stack and counters.
func (s *Stack) Reset() {
	s.top, s.base, s.hits, s.preds = 0, 0, 0, 0
	for i := range s.buf {
		s.buf[i] = 0
	}
}
