package cbt

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func mtSwitch(pc, target uint64, value uint32) trace.Record {
	return trace.Record{PC: pc, Target: target, Class: trace.IndirectJmp, Taken: true, MT: true, Value: value}
}

func TestIdealCBTIsOptimal(t *testing.T) {
	// With the value always available, the CBT resolves a switch whose
	// arm sequence is random — a workload no path-based predictor can
	// touch — after one visit per arm.
	c := New(Config{Entries: 256, Availability: 1, Seed: 7})
	const pc = 0x12000400
	targets := []uint64{0x100, 0x200, 0x300, 0x400}
	state := uint64(42)
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		arm := int(state >> 40 % 4)
		want := targets[arm]
		c.SetValue(uint32(arm) + 1)
		got, ok := c.Predict(pc)
		if i > 50 {
			total++
			if ok && got == want {
				correct++
			}
		}
		c.Update(pc, want)
	}
	if acc := float64(correct) / float64(total); acc != 1.0 {
		t.Errorf("ideal CBT accuracy = %.4f on random switch, want 1.0", acc)
	}
	if c.ValueHitRate() < 0.9 {
		t.Errorf("value hit rate = %.3f", c.ValueHitRate())
	}
}

func TestUnavailableValueDegradesToBTB(t *testing.T) {
	c := New(Config{Entries: 256, Availability: 0, Seed: 7})
	const pc = 0x12000400
	// Alternating targets: a BTB-like fallback is ~always wrong.
	correct, total := 0, 0
	for i := 0; i < 400; i++ {
		want := uint64(0x100)
		if i%2 == 1 {
			want = 0x200
		}
		c.SetValue(uint32(i%2) + 1)
		got, ok := c.Predict(pc)
		if i > 10 {
			total++
			if ok && got == want {
				correct++
			}
		}
		c.Update(pc, want)
	}
	if acc := float64(correct) / float64(total); acc > 0.1 {
		t.Errorf("availability-0 CBT accuracy = %.3f on alternation; should be BTB-like ~0", acc)
	}
	if c.ValueHitRate() != 0 {
		t.Error("value associations used despite availability 0")
	}
}

func TestPartialAvailability(t *testing.T) {
	// Availability p on a random switch: accuracy approaches p (value
	// known) plus the fallback's ~1/arms luck.
	c := New(Config{Entries: 256, Availability: 0.6, Seed: 7})
	const pc = 0x12000400
	targets := []uint64{0x100, 0x200, 0x300, 0x400}
	state := uint64(1)
	correct, total := 0, 0
	for i := 0; i < 6000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		arm := int(state >> 40 % 4)
		c.SetValue(uint32(arm) + 1)
		got, ok := c.Predict(pc)
		if i > 500 {
			total++
			if ok && got == targets[arm] {
				correct++
			}
		}
		c.Update(pc, targets[arm])
	}
	acc := float64(correct) / float64(total)
	if acc < 0.55 || acc > 0.85 {
		t.Errorf("availability-0.6 accuracy = %.3f, expected ~0.6-0.8", acc)
	}
}

func TestEngineIntegration(t *testing.T) {
	// The engine forwards record values via the ValueAware hook.
	c := New(Config{Entries: 128, Availability: 1, Seed: 3})
	e := sim.New(c)
	targets := []uint64{0x100, 0x200, 0x300}
	state := uint64(5)
	for i := 0; i < 1500; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		arm := int(state >> 40 % 3)
		e.Process(mtSwitch(0x12000400, targets[arm], uint32(arm)+1))
	}
	counters := e.Counters()[0]
	if counters.MispredictionRatio() > 0.02 {
		t.Errorf("CBT through engine mispredicted %.3f of a value-annotated switch", counters.MispredictionRatio())
	}
}

func TestValuelessRecordsUseFallback(t *testing.T) {
	c := New(Config{Entries: 128, Availability: 1, Seed: 3})
	c.SetValue(0) // jsr-style record with no switch value
	if _, ok := c.Predict(0x1234); ok {
		t.Error("cold fallback predicted")
	}
	c.Update(0x1234, 0x9000)
	c.SetValue(0)
	if got, ok := c.Predict(0x1234); !ok || got != 0x9000 {
		t.Errorf("fallback = (%#x,%v)", got, ok)
	}
}

func TestReset(t *testing.T) {
	c := New(Config{Entries: 128, Availability: 1, Seed: 3})
	c.SetValue(2)
	c.Predict(0x40)
	c.Update(0x40, 0x100)
	c.Reset()
	c.SetValue(2)
	if _, ok := c.Predict(0x40); ok {
		t.Error("association survived Reset")
	}
	if c.ValueHitRate() != 0 {
		t.Error("stats survived Reset")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 100, Availability: 1},
		{Entries: 128, Availability: -0.1},
		{Entries: 128, Availability: 1.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
	if New(Config{Entries: 128, Availability: 0.25}).Name() != "CBT(p=0.25)" {
		t.Error("default name wrong")
	}
}
