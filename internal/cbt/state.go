package cbt

import (
	"math"

	"repro/internal/state"
)

// Snapshot implements state.Snapshotter. The deterministic-availability
// draw counter travels with the tables: the Bernoulli sequence is part of
// the predictor's observable behaviour, so a restored CBT must continue the
// exact draw stream the uncut run would have.
func (c *CBT) Snapshot(w *state.Writer) {
	w.Begin(state.SecCBT)
	w.U64(uint64(len(c.table)))
	w.U64(math.Float64bits(c.cfg.Availability))
	w.U64(c.cfg.Seed)
	for i := range c.table {
		e := &c.table[i]
		w.Bool(e.valid)
		if e.valid {
			w.U64(e.key)
			w.U64(e.target)
		}
	}
	for i := range c.fallback {
		e := &c.fallback[i]
		w.Bool(e.valid)
		if e.valid {
			w.U64(e.key)
			w.U64(e.target)
		}
	}
	w.U64(c.draws)
	w.U64(c.valueHits)
	w.U64(c.lookups)
	w.End()
}

// Restore implements state.Snapshotter, rebuilding both tables in place.
func (c *CBT) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecCBT); err != nil {
		return err
	}
	entries := r.U64()
	avail := math.Float64frombits(r.U64())
	seed := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if entries != uint64(len(c.table)) || avail != c.cfg.Availability || seed != c.cfg.Seed {
		return state.Mismatchf("CBT %d entries/p=%v/seed %#x vs snapshot %d/p=%v/seed %#x",
			len(c.table), c.cfg.Availability, c.cfg.Seed, entries, avail, seed)
	}
	for i := range c.table {
		if err := readCBTEntry(r, &c.table[i]); err != nil {
			return err
		}
	}
	for i := range c.fallback {
		if err := readCBTEntry(r, &c.fallback[i]); err != nil {
			return err
		}
	}
	draws := r.U64()
	valueHits := r.U64()
	lookups := r.U64()
	if err := r.End(); err != nil {
		return err
	}
	c.draws, c.valueHits, c.lookups = draws, valueHits, lookups
	return nil
}

func readCBTEntry(r *state.Reader, e *entry) error {
	if !r.Bool() {
		*e = entry{}
		return r.Err()
	}
	key := r.U64()
	target := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	*e = entry{valid: true, key: key, target: target}
	return nil
}

var _ state.Snapshotter = (*CBT)(nil)
