// Package cbt implements the Case Block Table of Kaeli & Emma, discussed
// in the paper's Related Work section: a predictor for switch-statement
// indirect jumps keyed on the *switch variable value*. Because the value
// is an exact selector, the CBT resolves switch targets perfectly — but,
// as the paper notes (citing Chang et al.), "the value of the switch
// variable is not always known at the time the code for the switch
// statement reaches the instruction fetch stage of a superscalar machine
// employing speculative execution."
//
// This implementation models that limitation with an availability
// probability: on each fetch the value is usable with probability p
// (deterministically derived from the run's progress), and the CBT falls
// back to a BTB-style most-recent-target entry otherwise. p = 1 gives the
// idealized CBT; p = 0 degenerates to a BTB.
package cbt

import (
	"fmt"

	"repro/internal/hashing"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config parameterizes a Case Block Table.
type Config struct {
	// Name labels the predictor; defaults to "CBT(p=<availability>)".
	Name string
	// Entries is the table capacity in (pc, value) associations
	// (power of two).
	Entries int
	// Availability is the probability the switch value is known at fetch.
	Availability float64
	// Seed drives the deterministic availability draw.
	Seed uint64
}

type entry struct {
	valid  bool
	key    uint64
	target uint64
}

// CBT is the value-keyed switch-target predictor.
type CBT struct {
	cfg      Config
	table    []entry // (pc,value)-keyed associations
	fallback []entry // pc-keyed most-recent-target entries
	draws    uint64
	pending  struct {
		haveValue bool
		key       uint64
		fIdx      uint64
		value     uint32
	}

	valueHits uint64
	lookups   uint64
}

// New builds a CBT. Panics on invalid configuration.
func New(cfg Config) *CBT {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic(fmt.Sprintf("cbt: entries must be a positive power of two, got %d", cfg.Entries))
	}
	if cfg.Availability < 0 || cfg.Availability > 1 {
		panic(fmt.Sprintf("cbt: availability %v out of [0,1]", cfg.Availability))
	}
	return &CBT{
		cfg:      cfg,
		table:    make([]entry, cfg.Entries),
		fallback: make([]entry, cfg.Entries/2),
	}
}

// Name implements predictor.IndirectPredictor.
func (c *CBT) Name() string {
	if c.cfg.Name != "" {
		return c.cfg.Name
	}
	return fmt.Sprintf("CBT(p=%.2f)", c.cfg.Availability)
}

// Entries implements predictor.Sized.
func (c *CBT) Entries() int { return len(c.table) + len(c.fallback) }

// SetValue implements sim's ValueAware hook: the engine passes the
// record's switch value before Predict. The CBT decides — with its
// configured availability — whether the value would have been computed by
// fetch time.
func (c *CBT) SetValue(v uint32) {
	c.pending.value = 0
	if v == 0 {
		return
	}
	c.draws++
	// Deterministic Bernoulli draw from the run position.
	draw := float64(hashing.Mix64(c.cfg.Seed^c.draws*0x9e3779b97f4a7c15)>>11) / float64(uint64(1)<<53)
	if draw < c.cfg.Availability {
		c.pending.value = v
	}
}

func (c *CBT) key(pc uint64, value uint32) uint64 {
	return hashing.Mix64(pc>>2 ^ uint64(value)<<40)
}

// Predict implements predictor.IndirectPredictor.
func (c *CBT) Predict(pc uint64) (uint64, bool) {
	c.lookups++
	if v := c.pending.value; v != 0 {
		k := c.key(pc, v)
		c.pending.haveValue = true
		c.pending.key = k
		e := &c.table[k&uint64(len(c.table)-1)]
		if e.valid && e.key == k {
			c.valueHits++
			return e.target, true
		}
		// Known value but no association yet: fall through to the
		// pc-keyed entry below.
	} else {
		c.pending.haveValue = false
	}
	fIdx := (pc >> 2) & uint64(len(c.fallback)-1)
	c.pending.fIdx = fIdx
	fe := &c.fallback[fIdx]
	if fe.valid && fe.key == pc {
		return fe.target, true
	}
	return 0, false
}

// Update implements predictor.IndirectPredictor.
func (c *CBT) Update(pc, target uint64) {
	if c.pending.haveValue {
		k := c.pending.key
		c.table[k&uint64(len(c.table)-1)] = entry{valid: true, key: k, target: target}
	}
	fIdx := (pc >> 2) & uint64(len(c.fallback)-1)
	c.fallback[fIdx] = entry{valid: true, key: pc, target: target}
	c.pending.value = 0
	c.pending.haveValue = false
}

// Observe implements predictor.IndirectPredictor; the CBT keeps no path
// history.
func (c *CBT) Observe(trace.Record) {}

// ProcessBlock implements the engine's batch fast path. With Observe a
// no-op, only the multi-target indirect positions matter: the MTIdx lane
// jumps straight to them and the Value lane supplies the switch value the
// engine's per-record SetValue forward would have carried (a nil lane means
// no record in the block carried a value).
//
//ppm:hotpath whole-block CBT replay
func (c *CBT) ProcessBlock(b *trace.Block, ctr *stats.Counters) {
	pcs, tgts, vals := b.PC, b.Target, b.Value
	for _, k := range b.MTIdx {
		if vals != nil {
			c.SetValue(vals[k]) //lint:idxsafe MTIdx entries index the block's lanes by construction
		} else {
			c.SetValue(0)
		}
		pc, tgt := pcs[k], tgts[k] //lint:idxsafe MTIdx entries index the block's lanes by construction
		target, ok := c.Predict(pc)
		ctr.Record(ok && target == tgt, ok)
		c.Update(pc, tgt)
	}
}

// ValueHitRate reports the fraction of lookups served from a value-keyed
// association.
func (c *CBT) ValueHitRate() float64 {
	if c.lookups == 0 {
		return 0
	}
	return float64(c.valueHits) / float64(c.lookups)
}

// Reset implements predictor.Resetter.
func (c *CBT) Reset() {
	for i := range c.table {
		c.table[i] = entry{}
	}
	for i := range c.fallback {
		c.fallback[i] = entry{}
	}
	c.draws, c.valueHits, c.lookups = 0, 0, 0
	c.pending.value = 0
	c.pending.haveValue = false
}

var (
	_ predictor.IndirectPredictor = (*CBT)(nil)
	_ predictor.Sized             = (*CBT)(nil)
	_ predictor.Resetter          = (*CBT)(nil)
)
