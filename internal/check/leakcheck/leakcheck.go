// Package leakcheck verifies that a block of code did not leave goroutines
// behind. It is the runtime complement to the ppmlint golifetime analyzer:
// golifetime proves every `go` statement has a termination signal on paper,
// leakcheck proves the signals actually fired.
//
// Usage in tests:
//
//	func TestLifecycle(t *testing.T) {
//		leakcheck.Check(t)
//		// ... start and stop servers, jobs, pools ...
//	}
//
// Check snapshots the running goroutines and registers a cleanup that
// re-snapshots after the test body (and its own cleanups) finish, failing
// the test if new goroutines survive. Usage outside tests (the ppmcheck
// fault sweeps) takes a Snapshot directly and asks it for Leaked output.
//
// Goroutines are compared by ID, so a pre-existing goroutine never counts
// against the checked region even if its stack moved. Runtime-internal and
// test-harness goroutines are filtered. Because a goroutine that has been
// signaled may need a scheduler beat to actually exit, Leaked retries over
// a settle window before declaring a leak.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DefaultSettle is how long Leaked waits for signaled goroutines to
// finish exiting before declaring them leaked.
const DefaultSettle = 5 * time.Second

// Snapshot is the set of goroutines alive at a point in time, keyed by ID.
type Snapshot struct {
	stacks map[int64]string
}

// TB is the subset of testing.TB that Check needs; declaring it here keeps
// non-test callers (the ppmcheck sweeps) free of the testing package.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// Check snapshots now and fails t if goroutines started after this call are
// still running when the test (including later-registered cleanups) ends.
// Call it first so its cleanup runs last.
func Check(t TB) {
	t.Helper()
	before := Take()
	t.Cleanup(func() {
		t.Helper()
		if leaked := before.Leaked(); len(leaked) > 0 {
			t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n"))
		}
	})
}

// Take snapshots the currently running goroutines.
func Take() Snapshot {
	return Snapshot{stacks: dump()}
}

// Leaked reports goroutines running now that were not in the snapshot,
// waiting up to DefaultSettle for them to exit. Each entry is the
// goroutine's full stack block.
func (s Snapshot) Leaked() []string {
	return s.LeakedWithin(DefaultSettle)
}

// LeakedWithin is Leaked with an explicit settle window.
func (s Snapshot) LeakedWithin(settle time.Duration) []string {
	deadline := time.Now().Add(settle) //lint:wallclock settle window measures real scheduler time, not simulated time
	delay := time.Millisecond
	for {
		leaked := s.diff()
		if len(leaked) == 0 || time.Now().After(deadline) { //lint:wallclock same settle window
			return leaked
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// diff returns the stacks of interesting goroutines not present in s.
func (s Snapshot) diff() []string {
	now := dump()
	ids := make([]int64, 0, len(now))
	for id := range now {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var leaked []string
	for _, id := range ids {
		if _, ok := s.stacks[id]; ok {
			continue
		}
		if ignore(now[id]) {
			continue
		}
		leaked = append(leaked, now[id])
	}
	return leaked
}

// dump captures all goroutine stacks, keyed by goroutine ID.
func dump() map[int64]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := map[int64]string{}
	for _, block := range strings.Split(string(buf), "\n\n") {
		id, ok := goroutineID(block)
		if !ok {
			continue
		}
		out[id] = block
	}
	return out
}

// goroutineID parses the "goroutine N [state]:" header of one stack block.
func goroutineID(block string) (int64, bool) {
	const prefix = "goroutine "
	if !strings.HasPrefix(block, prefix) {
		return 0, false
	}
	rest := block[len(prefix):]
	end := strings.IndexByte(rest, ' ')
	if end < 0 {
		return 0, false
	}
	id, err := strconv.ParseInt(rest[:end], 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// ignore filters goroutines that are not the checked code's responsibility:
// the calling goroutine itself, the testing harness, runtime helpers, and
// signal handling.
func ignore(stack string) bool {
	// The top frame is the second line of the block.
	lines := strings.SplitN(stack, "\n", 3)
	if len(lines) < 2 {
		return true
	}
	top := strings.TrimSpace(lines[1])
	// The goroutine performing this very capture is always on-CPU inside
	// dump; nothing else in this package appears as a top frame.
	if strings.Contains(top, "leakcheck.dump") {
		return true
	}
	for _, prefix := range []string{
		"testing.",
		"runtime.",
		"os/signal.",
		"runtime/pprof.",
	} {
		if strings.HasPrefix(top, prefix) {
			return true
		}
	}
	return false
}

// String renders the snapshot size, for debugging harnesses.
func (s Snapshot) String() string {
	return fmt.Sprintf("leakcheck.Snapshot(%d goroutines)", len(s.stacks))
}
