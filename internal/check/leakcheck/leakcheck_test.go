package leakcheck

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDetectsLeak parks a goroutine on a channel, confirms a short-window
// check reports it, releases it, and confirms the report clears.
func TestDetectsLeak(t *testing.T) {
	before := Take()

	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started

	leaked := before.LeakedWithin(50 * time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("LeakedWithin reported %d goroutines, want 1:\n%s", len(leaked), strings.Join(leaked, "\n"))
	}
	if !strings.Contains(leaked[0], "leakcheck.TestDetectsLeak") {
		t.Errorf("leaked stack does not point at the spawner:\n%s", leaked[0])
	}

	close(release)
	if leaked := before.Leaked(); len(leaked) != 0 {
		t.Errorf("after release, Leaked reported %d goroutines, want 0:\n%s", len(leaked), strings.Join(leaked, "\n"))
	}
}

// TestSettleWindow verifies a goroutine that exits shortly after the first
// probe is not reported: the retry loop must observe the exit.
func TestSettleWindow(t *testing.T) {
	before := Take()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(30 * time.Millisecond)
	}()

	if leaked := before.LeakedWithin(2 * time.Second); len(leaked) != 0 {
		t.Errorf("slow-exiting goroutine reported as leak:\n%s", strings.Join(leaked, "\n"))
	}
	wg.Wait()
}

// TestPreexistingIgnored confirms goroutines alive before the snapshot are
// never charged to the checked region.
func TestPreexistingIgnored(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started
	defer close(release)

	before := Take()
	if leaked := before.LeakedWithin(50 * time.Millisecond); len(leaked) != 0 {
		t.Errorf("pre-existing goroutine reported as leak:\n%s", strings.Join(leaked, "\n"))
	}
}

// TestCheckPasses exercises the testing.TB integration on a clean body.
func TestCheckPasses(t *testing.T) {
	Check(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
