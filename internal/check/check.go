// Package check is the repository's differential-oracle correctness
// harness. For every predictor family of Figures 6 and 7 it keeps a naive,
// obviously-correct reference implementation — maps instead of arrays,
// bit-slice hashes instead of shift tricks, histories recomputed from
// scratch instead of incrementally maintained registers — and runs it in
// lock-step against the optimized simulator over randomized traces. Any
// step where the two disagree on the (target, valid) prediction tuple is a
// bug in one of the two; the harness shrinks the trace to a minimal
// reproduction and the corpus under testdata/ pins every bug ever found.
//
// The package also hosts the metamorphic property runner (equivalences the
// simulator must satisfy: same-seed byte identity, cache and parallelism
// invariance, served-versus-serial agreement) and, in the faultio
// subpackage, the I/O fault-injection layer used to drive trace decoding
// and the ppmserved upload path through every truncation offset.
//
// Everything here is measurement equipment, not simulated hardware, so it
// deliberately trades speed for transparency; nothing in this package is on
// the simulator's hot path.
package check

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/predictor"
	"repro/internal/twolevel"
)

// Families lists the predictor labels the harness covers differentially:
// every label the optimized registry accepts.
func Families() []string { return bench.PredictorNames() }

// refPaperGAp restates the Section 5 GAp configuration for the reference
// side. The literals are intentionally duplicated from the optimized
// constructors: the reference pins the paper's configuration, so a drift in
// either copy shows up as a divergence.
func refPaperGAp() twolevel.GApConfig {
	return twolevel.GApConfig{
		Name:          "GAp",
		Entries:       2048,
		PHTs:          2,
		Assoc:         1,
		PathLength:    5,
		BitsPerTarget: 2,
		HistoryStream: history.IndirectBranches,
		Indexing:      twolevel.GShare,
	}
}

// refPaperDualPath restates the Section 5 Dpath configuration.
func refPaperDualPath() twolevel.DualPathConfig {
	return twolevel.DualPathConfig{
		Name:      "Dpath",
		Selectors: 1024,
		Short: twolevel.GApConfig{
			Entries:       1024,
			PHTs:          1,
			Assoc:         1,
			PathLength:    1,
			BitsPerTarget: 24,
			HistoryBits:   24,
			HistoryStream: history.MTIndirectBranches,
			Indexing:      twolevel.ReverseInterleave,
		},
		Long: twolevel.GApConfig{
			Entries:       1024,
			PHTs:          1,
			Assoc:         1,
			PathLength:    3,
			BitsPerTarget: 8,
			HistoryBits:   24,
			HistoryStream: history.MTIndirectBranches,
			Indexing:      twolevel.ReverseInterleave,
		},
	}
}

// refPaperCascadeMain restates the Section 5 Cascade main-predictor
// configuration (tagged 4-way components, path lengths 4 and 6).
func refPaperCascadeMain() twolevel.DualPathConfig {
	return twolevel.DualPathConfig{
		Name:      "Cascade-main",
		Selectors: 1024,
		Short: twolevel.GApConfig{
			Entries:       1024,
			PHTs:          1,
			Assoc:         4,
			Tagged:        true,
			PathLength:    4,
			BitsPerTarget: 6,
			HistoryBits:   24,
			HistoryStream: history.MTIndirectBranches,
			Indexing:      twolevel.ReverseInterleave,
		},
		Long: twolevel.GApConfig{
			Entries:       1024,
			PHTs:          1,
			Assoc:         4,
			Tagged:        true,
			PathLength:    6,
			BitsPerTarget: 4,
			HistoryBits:   24,
			HistoryStream: history.MTIndirectBranches,
			Indexing:      twolevel.ReverseInterleave,
		},
	}
}

// refPaperCascadeMainU restates the Cascade-u main-predictor configuration:
// the Section 5 Cascade tables with u-bit replacement and the ITTAGE
// graceful-reset period.
func refPaperCascadeMainU() twolevel.DualPathConfig {
	return twolevel.DualPathConfig{
		Name:      "Cascade-u-main",
		Selectors: 1024,
		Short: twolevel.GApConfig{
			Entries:           1024,
			PHTs:              1,
			Assoc:             4,
			Tagged:            true,
			PathLength:        4,
			BitsPerTarget:     6,
			HistoryBits:       24,
			HistoryStream:     history.MTIndirectBranches,
			Indexing:          twolevel.ReverseInterleave,
			Useful:            true,
			UsefulResetPeriod: 2048,
		},
		Long: twolevel.GApConfig{
			Entries:           1024,
			PHTs:              1,
			Assoc:             4,
			Tagged:            true,
			PathLength:        6,
			BitsPerTarget:     4,
			HistoryBits:       24,
			HistoryStream:     history.MTIndirectBranches,
			Indexing:          twolevel.ReverseInterleave,
			Useful:            true,
			UsefulResetPeriod: 2048,
		},
	}
}

// NewReference builds the naive reference for a Figure 6/7 predictor label,
// configured exactly as bench.NewPredictor configures the optimized
// implementation. Returns false for unknown labels.
func NewReference(name string) (predictor.IndirectPredictor, bool) {
	switch name {
	case "BTB":
		return NewRefBTB(2048), true
	case "BTB2b":
		return NewRefBTB2b(2048), true
	case "GAp":
		return NewRefGAp(refPaperGAp()), true
	case "TC-PIB":
		return NewRefTargetCache(twolevel.TargetCacheConfig{
			Name:          "TC-PIB",
			Entries:       2048,
			HistoryBits:   11,
			BitsPerTarget: 2,
			HistoryStream: history.IndirectBranches,
		}), true
	case "Dpath":
		return NewRefDualPath(refPaperDualPath()), true
	case "Cascade":
		return NewRefCascade(128, false, refPaperCascadeMain()), true
	case "PPM-hyb":
		return NewRefPPM(core.DefaultConfig(core.Hybrid)), true
	case "PPM-PIB":
		return NewRefPPM(core.DefaultConfig(core.PIBOnly)), true
	case "PPM-hyb-biased":
		return NewRefPPM(core.DefaultConfig(core.HybridBiased)), true
	case "ITTAGE":
		return NewRefITTAGE(), true
	case "Cascade-u":
		return NewRefCascadeNamed("Cascade-u", 128, false, refPaperCascadeMainU()), true
	}
	return nil, false
}
