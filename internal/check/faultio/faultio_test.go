package faultio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestTruncate(t *testing.T) {
	src := []byte("abcdefghij")
	for n := 0; n <= len(src)+2; n++ {
		got, err := io.ReadAll(Truncate(bytes.NewReader(src), int64(n)))
		if err != nil {
			t.Fatalf("Truncate(%d): %v", n, err)
		}
		want := src
		if n < len(src) {
			want = src[:n]
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Truncate(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestShortReadsDeliverEverything(t *testing.T) {
	src := bytes.Repeat([]byte("xyz123"), 100)
	for seed := uint64(1); seed <= 5; seed++ {
		got, err := io.ReadAll(ShortReads(bytes.NewReader(src), seed, 3))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("seed %d: short-read stream corrupted the data", seed)
		}
	}
}

func TestShortReadsAreShort(t *testing.T) {
	r := ShortReads(bytes.NewReader(bytes.Repeat([]byte{7}, 64)), 42, 2)
	buf := make([]byte, 64)
	n, err := r.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n > 2 {
		t.Fatalf("Read returned %d bytes, max is 2", n)
	}
}

func TestShortReadsDeterministic(t *testing.T) {
	sizes := func(seed uint64) []int {
		r := ShortReads(bytes.NewReader(bytes.Repeat([]byte{1}, 128)), seed, 4)
		var out []int
		buf := make([]byte, 16)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				out = append(out, n)
			}
			if err != nil {
				return out
			}
		}
	}
	a, b := sizes(99), sizes(99)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("size %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestErrAfter(t *testing.T) {
	boom := errors.New("boom")
	src := []byte("0123456789")
	got, err := io.ReadAll(ErrAfter(bytes.NewReader(src), 4, boom))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !bytes.Equal(got, src[:4]) {
		t.Fatalf("got %q before the fault, want %q", got, src[:4])
	}
}

func TestErrAfterFiresAtEOF(t *testing.T) {
	boom := errors.New("boom")
	// Fault offset beyond the stream: the fault replaces the clean EOF.
	_, err := io.ReadAll(ErrAfter(bytes.NewReader([]byte("ab")), 100, boom))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
