// Package faultio wraps io.Readers with deterministic fault injection for
// the correctness harness: byte-exact truncation, adversarially short reads,
// and synthetic mid-stream errors. The wrappers let the harness drive
// trace.Reader and the ppmserved upload path through every failure mode a
// network peer or corrupt file can produce, without touching the code under
// test.
package faultio

import "io"

// truncateReader yields at most n bytes of the underlying reader, then a
// clean io.EOF — a stream cut off at an arbitrary byte offset.
type truncateReader struct {
	r io.Reader
	n int64
}

// Truncate returns a reader that delivers the first n bytes of r and then
// io.EOF, regardless of how much more r holds.
func Truncate(r io.Reader, n int64) io.Reader {
	return &truncateReader{r: r, n: n}
}

func (t *truncateReader) Read(p []byte) (int, error) {
	if t.n <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > t.n {
		p = p[:t.n]
	}
	n, err := t.r.Read(p)
	t.n -= int64(n)
	return n, err
}

// shortReader delivers 1..max bytes per Read call, with call sizes drawn
// from a deterministic splitmix64 sequence. It stresses every refill path a
// buffered decoder has: multi-byte varints split across Read calls, headers
// arriving one byte at a time.
type shortReader struct {
	r     io.Reader
	state uint64
	max   int
}

// ShortReads wraps r so each Read returns at most a pseudo-random 1..max
// bytes. The sequence of sizes is fully determined by seed.
func ShortReads(r io.Reader, seed uint64, max int) io.Reader {
	if max < 1 {
		max = 1
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &shortReader{r: r, state: seed, max: max}
}

func (s *shortReader) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (s *shortReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return s.r.Read(p)
	}
	n := 1 + int(s.next()%uint64(s.max))
	if n > len(p) {
		n = len(p)
	}
	return s.r.Read(p[:n])
}

// errAfterReader yields the first n bytes of r, then the configured error —
// a device failing mid-stream rather than ending cleanly.
type errAfterReader struct {
	r   io.Reader
	n   int64
	err error
}

// ErrAfter returns a reader that delivers the first n bytes of r and then
// fails every subsequent Read with err. It models a genuine I/O fault (as
// opposed to truncation, which ends with EOF); decoders must surface err
// itself, not misclassify it as a truncated stream.
func ErrAfter(r io.Reader, n int64, err error) io.Reader {
	return &errAfterReader{r: r, n: n, err: err}
}

func (e *errAfterReader) Read(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, e.err
	}
	if int64(len(p)) > e.n {
		p = p[:e.n]
	}
	n, err := e.r.Read(p)
	e.n -= int64(n)
	if err == io.EOF {
		// The underlying stream ran out before the fault offset: the fault
		// still fires, because the caller asked for an error, not EOF.
		return n, e.err
	}
	return n, err
}
