package check

import (
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file generates the randomized inputs the differential harness
// replays: structured workloads (realistic correlation patterns through the
// workload generator) and raw adversarial record streams (tiny PC/target
// pools, arbitrary class mixes, hostile MT/Taken bits) that reach states a
// well-formed workload never produces.

// RandomConfig derives a randomized workload configuration from a seed:
// random site counts, behaviors, polymorphism degrees and chain settings,
// all drawn deterministically so a seed is a complete reproduction recipe.
func RandomConfig(seed uint64, events int) workload.Config {
	rng := workload.NewRNG(seed ^ 0xd1ff)
	nsites := 1 + rng.Intn(6)
	specs := make([]workload.SiteSpec, nsites)
	for i := range specs {
		class := trace.IndirectJmp
		if rng.Bool(0.5) {
			class = trace.IndirectJsr
		}
		ntgt := 1 + rng.Intn(8)
		var b workload.Behavior
		switch rng.Intn(6) {
		case 0:
			b = workload.Monomorphic{Bias: 0.8 + 0.2*rng.Float64()}
		case 1:
			b = workload.LowEntropy{SwitchProb: 0.05 + 0.2*rng.Float64()}
		case 2:
			stream := workload.Stream(rng.Intn(3))
			b = workload.Correlated{Stream: stream, Order: 1 + rng.Intn(4), Noise: 0.1 * rng.Float64()}
		case 3:
			b = workload.CondDriven{Order: 1 + rng.Intn(3), Noise: 0.1 * rng.Float64()}
		case 4:
			b = workload.Cyclic{}
		default:
			b = workload.Uniform{}
		}
		specs[i] = workload.SiteSpec{
			Label:      "rnd",
			Class:      class,
			NumTargets: ntgt,
			Behavior:   b,
			Weight:     1 + rng.Intn(5),
			Cluster:    ntgt <= 4 && rng.Bool(0.2),
		}
	}
	return workload.Config{
		Name:            "check",
		Input:           "rnd",
		Seed:            seed,
		Events:          events,
		Sites:           specs,
		CondPerEvent:    rng.Intn(4),
		CondNoise:       0.3 * rng.Float64(),
		CondPatternBits: uint(2 + rng.Intn(3)),
		STRate:          0.3 * rng.Float64(),
		CallRate:        0.3 * rng.Float64(),
		ChainSites:      rng.Bool(0.5),
		ChainNoise:      0.2 * rng.Float64(),
		ChainOrder:      1 + rng.Intn(3),
	}
}

// RandomTrace generates the record stream for RandomConfig(seed, events).
func RandomTrace(seed uint64, events int) []trace.Record {
	recs, _ := RandomConfig(seed, events).Records()
	return recs
}

// RandomRecords generates n raw adversarial records: a handful of branch
// addresses and targets reused across arbitrary classes, with MT and Taken
// bits set independently of class conventions. These streams violate the
// structural invariants real programs maintain (returns matching calls,
// MT only on polymorphic sites), which is exactly the point — the
// predictors must agree with their references on any record sequence, not
// just plausible ones.
func RandomRecords(seed uint64, n int) []trace.Record {
	rng := workload.NewRNG(seed ^ 0xbad5eed)
	npc := 2 + rng.Intn(8)
	ntgt := 2 + rng.Intn(8)
	pcs := make([]uint64, npc)
	tgts := make([]uint64, ntgt)
	for i := range pcs {
		pcs[i] = 0x1000_0000 | (rng.Uint64()&0xffff)<<2
	}
	for i := range tgts {
		tgts[i] = 0x2000_0000 | (rng.Uint64()&0xffff)<<2
	}
	classes := []trace.Class{
		trace.CondDirect, trace.UncondDirect, trace.DirectCall,
		trace.IndirectJmp, trace.IndirectJsr, trace.Return, trace.JsrCoroutine,
	}
	recs := make([]trace.Record, n)
	for i := range recs {
		c := classes[rng.Intn(len(classes))]
		recs[i] = trace.Record{
			PC:     pcs[rng.Intn(npc)],
			Target: tgts[rng.Intn(ntgt)],
			Class:  c,
			Taken:  c != trace.CondDirect || rng.Bool(0.5),
			MT:     rng.Bool(0.7),
			Gap:    uint32(rng.Intn(16)),
		}
		if c == trace.IndirectJmp && recs[i].MT {
			recs[i].Value = uint32(rng.Intn(8))
		}
	}
	return recs
}
