package check

import (
	"os"
	"testing"

	"repro/internal/hashing"
	"repro/internal/trace"
)

func TestGenerateCorpusSeeds(t *testing.T) {
	if os.Getenv("CHECK_GEN") == "" {
		t.Skip("generator")
	}
	dir := "testdata/corpus"

	// SFSX long-path repro: 70-entry path, deepest entry must reach the hash.
	long := make([]trace.Record, 70)
	for i := range long {
		long[i] = trace.Record{
			PC:     0x12000000 + uint64(i)*4,
			Target: hashing.Mix64(uint64(i)) &^ 3,
			Class:  trace.IndirectJmp, Taken: true, MT: true,
		}
	}
	if err := WriteSeed(dir, Seed{
		Name: "sfsx-longpath-70", Kind: "sfsx-longpath",
		Note:   "SFSX dropped contributions from path entries at index >= 64 (shift past the 64-bit accumulator); fixed by rotating contributions into place",
		Params: map[string]int64{"selbits": 10, "foldbits": 5, "flipbit": 4},
	}, long); err != nil {
		t.Fatal(err)
	}

	// ReadAll adversarial-hint repro: 3 records, trillion-record hint.
	tiny := []trace.Record{
		{PC: 0x1000, Target: 0x9000, Class: trace.IndirectJmp, Taken: true, MT: true},
		{PC: 0x1004, Target: 0x9010, Class: trace.IndirectJsr, Taken: true, MT: true},
		{PC: 0x9030, Target: 0x1008, Class: trace.Return, Taken: true},
	}
	if err := WriteSeed(dir, Seed{
		Name: "readall-hint-3rec", Kind: "readall-hint",
		Note:   "ReadAll preallocated make([]Record,0,hint) from an untrusted SetSizeHint; a multi-GiB claim over a 3-record stream OOMed before decoding a byte; fixed by clamping the initial capacity",
		Params: map[string]int64{"hint": 1 << 40, "maxcap": 1 << 21},
	}, tiny); err != nil {
		t.Fatal(err)
	}

	// Tracecache oversize repro.
	if err := WriteSeed(dir, Seed{
		Name: "tracecache-oversize", Kind: "tracecache-oversize",
		Note:   "an entry larger than the whole budget joined the LRU, flushing every smaller resident before being evicted itself; fixed by serving oversized traces without residency",
		Params: map[string]int64{"smallseed": 1, "smallevents": 100, "bigseed": 2, "bigevents": 4000, "budgetsmalls": 3},
	}, nil); err != nil {
		t.Fatal(err)
	}

	// Differential regression traces: small structured and adversarial
	// streams replayed through every family.
	if err := WriteSeed(dir, Seed{
		Name: "diff-workload-1", Kind: "diff",
		Note: "structured workload stream (RandomTrace seed 1), all families lock-step vs references",
	}, RandomTrace(1, 150)); err != nil {
		t.Fatal(err)
	}
	if err := WriteSeed(dir, Seed{
		Name: "diff-raw-2", Kind: "diff",
		Note: "raw adversarial stream (RandomRecords seed 2): tiny PC/target pools, hostile class/MT mixes",
	}, RandomRecords(2, 200)); err != nil {
		t.Fatal(err)
	}
	if err := WriteSeed(dir, Seed{
		Name: "diff-raw-3", Kind: "diff",
		Note: "raw adversarial stream (RandomRecords seed 3) including returns and jsr_coroutine records",
	}, RandomRecords(3, 200)); err != nil {
		t.Fatal(err)
	}
}
