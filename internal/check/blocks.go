package check

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/cbt"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// The blocks-vs-records suite holds the batched struct-of-arrays engine to
// the same standard as every other wrapper: the columnar form, the index
// lanes, the per-predictor batch fast paths and the whole-block-per-
// predictor reordering may change wall-clock time only, never a single
// counter. Every comparison below replays identical inputs through
// sim.Engine.ProcessAll and sim.Engine.ProcessBlocks and requires the
// outcomes to agree exactly.

// blockDiffCaps are the block capacities the differential replays exercise:
// the shipped capacity, plus a deliberately tiny odd one so short (and
// shrunken) traces still cross many block boundaries and the cross-block
// state continuity of histories, RAS and selectors is on the hook.
var blockDiffCaps = []int{trace.BlockCap, 7}

// BlockDivergence records a disagreement between the record engine and the
// block engine over the same trace.
type BlockDivergence struct {
	Family   string
	BlockCap int
	Detail   string
}

// String formats the divergence for bug reports.
func (d *BlockDivergence) String() string {
	return fmt.Sprintf("%s: block engine (cap %d) diverged from record engine: %s",
		d.Family, d.BlockCap, d.Detail)
}

// enginesMatch compares every observable of two engines that replayed the
// same trace: accounting, RAS accuracy and per-predictor counters.
func enginesMatch(rec, blk *sim.Engine) error {
	if rec.Records() != blk.Records() {
		return fmt.Errorf("records %d vs %d", rec.Records(), blk.Records())
	}
	if rec.Instructions() != blk.Instructions() {
		return fmt.Errorf("instructions %d vs %d", rec.Instructions(), blk.Instructions())
	}
	rh, rt := rec.RAS().Accuracy()
	bh, bt := blk.RAS().Accuracy()
	if rh != bh || rt != bt {
		return fmt.Errorf("RAS accuracy %d/%d vs %d/%d", rh, rt, bh, bt)
	}
	a, b := rec.Counters(), blk.Counters()
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d counters", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("predictor %s: record %+v vs block %+v", a[i].Predictor, a[i], b[i])
		}
	}
	return nil
}

// BlockEngineIdentity replays recs through a predictor set built by build,
// once record-at-a-time and once through the block engine at every
// blockDiffCaps capacity, and returns the first disagreement.
func BlockEngineIdentity(recs []trace.Record, build func() []predictor.IndirectPredictor) error {
	rec := sim.New(build()...)
	rec.ProcessAll(recs)
	for _, bcap := range blockDiffCaps {
		blk := sim.New(build()...)
		blk.ProcessBlocks(trace.BlocksSized(recs, bcap))
		if err := enginesMatch(rec, blk); err != nil {
			return fmt.Errorf("block engine (cap %d): %w", bcap, err)
		}
	}
	return nil
}

// DiffBlocks replays recs through a single predictor family under both
// engines and returns the first divergence, or nil if they agreed at every
// block capacity. An unknown label is an error.
func DiffBlocks(family string, recs []trace.Record) (*BlockDivergence, error) {
	for _, bcap := range blockDiffCaps {
		p1, ok := bench.NewPredictor(family)
		if !ok {
			return nil, fmt.Errorf("check: unknown predictor family %q", family)
		}
		p2, _ := bench.NewPredictor(family)
		rec := sim.New(p1)
		rec.ProcessAll(recs)
		blk := sim.New(p2)
		blk.ProcessBlocks(trace.BlocksSized(recs, bcap))
		if err := enginesMatch(rec, blk); err != nil {
			return &BlockDivergence{Family: family, BlockCap: bcap, Detail: err.Error()}, nil
		}
	}
	return nil, nil
}

// DivergesBlocks reports whether the family's block replay disagrees with
// its record replay — the predicate the shrinker minimizes against.
func DivergesBlocks(family string, recs []trace.Record) bool {
	d, err := DiffBlocks(family, recs)
	return err == nil && d != nil
}

// BlocksVsRecords checks the full matrix contract: sched.SimulateBlocks
// must return byte-identical results to the serial record-engine run at
// every worker width in [1, maxWorkers], through a shared cache, a cold
// cache and the disabled (always-regenerate) cache.
func BlocksVsRecords(suite []workload.Config, build func() []predictor.IndirectPredictor, maxWorkers int) error {
	cache := tracecache.New(0)
	serial := sched.New(1).Simulate(cache, suite, build)
	for w := 1; w <= maxWorkers; w++ {
		blocks := sched.New(w).SimulateBlocks(cache, suite, build)
		if err := resultsEqual(serial, blocks); err != nil {
			return fmt.Errorf("blocks-vs-records: workers %d, shared cache: %w", w, err)
		}
	}
	if err := resultsEqual(serial, sched.New(1).SimulateBlocks(tracecache.New(0), suite, build)); err != nil {
		return fmt.Errorf("blocks-vs-records: cold cache: %w", err)
	}
	if err := resultsEqual(serial, sched.New(1).SimulateBlocks(tracecache.Disabled(), suite, build)); err != nil {
		return fmt.Errorf("blocks-vs-records: disabled cache: %w", err)
	}
	return nil
}

// ExtensionPredictors builds the predictor set of the extension experiments
// that carry their own batch fast paths but sit outside the bench families:
// the value-keyed CBT (ValueAware, so the Value lane is on the hook), the
// leaky-filtered PPM, the multi-target Markov stack, and the unbounded
// oracle that exercises the engine's record-at-a-time fallback inside a
// block. BlockEngineIdentity over this set pins all of them to the record
// engine at every block capacity.
func ExtensionPredictors() []predictor.IndirectPredictor {
	return []predictor.IndirectPredictor{
		cbt.New(cbt.Config{Entries: 2048, Availability: 0.5, Seed: 0xCB7}),
		core.PaperFiltered(),
		core.NewMultiTarget(10, 4),
		oracle.New(8),
	}
}
