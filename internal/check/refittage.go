package check

import (
	"repro/internal/history"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// RefITTAGE is the naive reference for the ITTAGE predictor: map-based base
// table and tagged banks, and — crucially — every index and tag hash
// recomputed from scratch on each lookup by replaying the full path history
// through the bit-array shift register and folding it bit by bit
// (refHistory.foldPacked). The optimized implementation maintains three
// incrementally rotated folded registers per bank; any drift between that
// incremental state and the written-out fold definition surfaces here as a
// lock-step divergence.
//
// The structural parameters are restated as literals (not imported from the
// ittage package) so a silent change to either copy of the paper-matrix
// configuration shows up as a divergence too. The geometric window lengths
// 4/10/25/64 are likewise written out rather than recomputed from the
// alpha series.
type RefITTAGE struct {
	baseEntries uint64
	bankEntries uint64
	tagBits     uint
	lens        []int
	bitsPerItem uint
	resetPeriod uint64

	base  map[uint64]uint64            // base index -> target
	banks []map[uint64]*refITTAGEEntry // bank -> set index -> entry
	hist  *refHistory

	uaona uint8
	tick  uint64

	pending struct {
		provider int
		alt      int
		baseIdx  uint64
		pred     uint64
		predOK   bool
		provPred uint64
		provNew  bool
		altPred  uint64
		altOK    bool
		idx      []uint64
		tag      []uint64
	}
}

type refITTAGEEntry struct {
	tag    uint64
	target uint64
	ctr    uint8
	u      uint8
}

// NewRefITTAGE builds the reference for ittage.Paper(): a 1024-entry base
// table, four 256-entry tagged banks with 10-bit tags, window lengths
// 4/10/25/64 recording 2 bits per multi-target indirect target, and a
// 2048-update graceful-reset period.
func NewRefITTAGE() *RefITTAGE {
	lens := []int{4, 10, 25, 64}
	r := &RefITTAGE{
		baseEntries: 1024,
		bankEntries: 256,
		tagBits:     10,
		lens:        lens,
		bitsPerItem: 2,
		resetPeriod: 2048,
		base:        map[uint64]uint64{},
		banks:       make([]map[uint64]*refITTAGEEntry, len(lens)),
		hist:        newRefHistory(history.MTIndirectBranches, 64, 2, 128),
		uaona:       8,
	}
	for i := range r.banks {
		r.banks[i] = map[uint64]*refITTAGEEntry{}
	}
	r.pending.idx = make([]uint64, len(lens))
	r.pending.tag = make([]uint64, len(lens))
	return r
}

// Name implements predictor.IndirectPredictor.
func (p *RefITTAGE) Name() string { return "ITTAGE" }

// bankIndex recomputes bank b's set index from the definition: splitmix the
// word-aligned pc, XOR the bit-by-bit fold of the bank's full window, keep
// the index bits.
func (p *RefITTAGE) bankIndex(b int, pc uint64) uint64 {
	idxBits := log2(int(p.bankEntries))
	fold := p.hist.foldPacked(uint(p.lens[b])*p.bitsPerItem, idxBits)
	return refSelect(refMix64(pc>>2)^fold, idxBits)
}

// bankTag recomputes bank b's partial tag: high mixed pc bits XOR the folded
// window XOR the narrower fold shifted up by one.
func (p *RefITTAGE) bankTag(b int, pc uint64) uint64 {
	in := uint(p.lens[b]) * p.bitsPerItem
	f1 := p.hist.foldPacked(in, p.tagBits)
	f2 := p.hist.foldPacked(in, p.tagBits-1)
	return refSelect((refMix64(pc>>2)>>32)^f1^(f2<<1), p.tagBits)
}

// Predict implements predictor.IndirectPredictor, restating the optimized
// lookup: longest tag match provides, next match (or the base table) is the
// alternate, and a newly allocated provider defers to the alternate while
// the use-alt counter is at or above its threshold.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (p *RefITTAGE) Predict(pc uint64) (uint64, bool) {
	pd := &p.pending
	pd.provider, pd.alt = -1, -1
	pd.altPred, pd.altOK = 0, false
	for i := len(p.banks) - 1; i >= 0; i-- {
		idx := p.bankIndex(i, pc)
		tag := p.bankTag(i, pc)
		pd.idx[i] = idx
		pd.tag[i] = tag
		if pd.alt >= 0 {
			continue
		}
		e := p.banks[i][idx]
		if e == nil || e.tag != tag {
			continue
		}
		if pd.provider < 0 {
			pd.provider = i
			pd.provPred = e.target
			pd.provNew = e.ctr == 0 && e.u == 0
		} else {
			pd.alt = i
			pd.altPred = e.target
			pd.altOK = true
		}
	}
	pd.baseIdx = (pc >> 2) % p.baseEntries
	if pd.alt < 0 {
		tgt, ok := p.base[pd.baseIdx]
		pd.altPred, pd.altOK = tgt, ok
	}
	if pd.provider >= 0 {
		if pd.provNew && pd.altOK && p.uaona >= 8 {
			pd.pred, pd.predOK = pd.altPred, true
		} else {
			pd.pred, pd.predOK = pd.provPred, true
		}
	} else {
		pd.pred, pd.predOK = pd.altPred, pd.altOK
	}
	return pd.pred, pd.predOK
}

// Update implements predictor.IndirectPredictor, mirroring the optimized
// train/allocate discipline step for step.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (p *RefITTAGE) Update(_, target uint64) {
	pd := &p.pending
	p.tick++
	if p.resetPeriod > 0 && p.tick%p.resetPeriod == 0 {
		p.gracefulReset()
	}
	correct := pd.predOK && pd.pred == target

	if pd.provider >= 0 {
		e := p.banks[pd.provider][pd.idx[pd.provider]]
		altDiffers := !pd.altOK || pd.altPred != pd.provPred
		if pd.provNew && altDiffers {
			if pd.provPred == target && p.uaona > 0 {
				p.uaona--
			} else if pd.altOK && pd.altPred == target && p.uaona < 15 {
				p.uaona++
			}
		}
		if altDiffers {
			if pd.provPred == target {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		if e.target == target {
			if e.ctr < 3 {
				e.ctr++
			}
		} else if e.ctr > 0 {
			e.ctr--
		} else {
			e.target = target
		}
	}

	if !correct {
		p.allocate(pd.provider+1, target)
	}
	p.base[pd.baseIdx] = target
}

// allocate claims the first bank at or past from whose indexed slot is
// absent or has usefulness zero; if every candidate is defended, their
// usefulness decays by one instead.
func (p *RefITTAGE) allocate(from int, target uint64) {
	for i := from; i < len(p.banks); i++ {
		e := p.banks[i][p.pending.idx[i]]
		if e == nil || e.u == 0 {
			p.banks[i][p.pending.idx[i]] = &refITTAGEEntry{tag: p.pending.tag[i], target: target}
			return
		}
	}
	for i := from; i < len(p.banks); i++ {
		if e := p.banks[i][p.pending.idx[i]]; e != nil && e.u > 0 {
			e.u--
		}
	}
}

// gracefulReset halves every usefulness counter.
func (p *RefITTAGE) gracefulReset() {
	for _, bank := range p.banks {
		for _, e := range bank { //lint:sorted per-entry halving; iteration order cannot matter
			e.u >>= 1
		}
	}
}

// Observe implements predictor.IndirectPredictor.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (p *RefITTAGE) Observe(r trace.Record) { p.hist.observe(r) }

var _ predictor.IndirectPredictor = (*RefITTAGE)(nil)
