package check

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// The metamorphic runner checks relations that must hold between different
// executions of the same simulation: none of the machinery wrapped around
// the core — trace caching, worker pools, the HTTP service — is allowed to
// change a single output byte. Each property returns nil or an error
// describing the first violated relation; none of them know which execution
// is "right", only that the two must agree.

// SameSeedIdentity checks that generating a workload twice yields
// byte-identical IBT2 encodings and identical summaries: the generator must
// have no hidden state across calls.
func SameSeedIdentity(cfg workload.Config) error {
	recsA, sumA := cfg.Records()
	recsB, sumB := cfg.Records()
	encA, err := encodeTrace(recsA)
	if err != nil {
		return err
	}
	encB, err := encodeTrace(recsB)
	if err != nil {
		return err
	}
	if !bytes.Equal(encA, encB) {
		return fmt.Errorf("same-seed: config %s produced different byte streams (%d vs %d records)", cfg.String(), len(recsA), len(recsB))
	}
	if err := summariesEqual(sumA, sumB); err != nil {
		return fmt.Errorf("same-seed: config %s: %w", cfg.String(), err)
	}
	return nil
}

// TraceCacheIdentity checks that simulating a suite through a live trace
// cache and through the disabled (always-regenerate) cache yields identical
// counters and summaries: caching may only change wall-clock time, never
// results. The budget is deliberately tiny so the run exercises eviction
// and regeneration, not just warm hits.
func TraceCacheIdentity(suite []workload.Config, build func() []predictor.IndirectPredictor, budget int64) error {
	pool := sched.New(1)
	cached := pool.Simulate(tracecache.New(budget), suite, build)
	// A second pass over the same cache replays hits/evictions.
	cachedAgain := pool.Simulate(tracecache.New(budget), suite, build)
	plain := pool.Simulate(tracecache.Disabled(), suite, build)
	if err := resultsEqual(cached, plain); err != nil {
		return fmt.Errorf("tracecache on/off: %w", err)
	}
	if err := resultsEqual(cached, cachedAgain); err != nil {
		return fmt.Errorf("tracecache rerun: %w", err)
	}
	return nil
}

// WorkerIdentity checks that a sharded pool returns byte-identical results
// to the serial one-worker loop for every width in [2, maxWorkers].
func WorkerIdentity(suite []workload.Config, build func() []predictor.IndirectPredictor, maxWorkers int) error {
	cache := tracecache.New(0)
	serial := sched.New(1).Simulate(cache, suite, build)
	for w := 2; w <= maxWorkers; w++ {
		parallel := sched.New(w).Simulate(cache, suite, build)
		if err := resultsEqual(serial, parallel); err != nil {
			return fmt.Errorf("workers 1 vs %d: %w", w, err)
		}
	}
	return nil
}

// ServedVsSerial checks that a suite job submitted to a live serve.Server
// streams exactly the counters a serial in-process run of the same cells
// produces — the service's determinism contract.
func ServedVsSerial(workloads []string, events int, suiteName string) error {
	_, ts, shutdown := startServer()
	defer shutdown()

	st, err := submitJob(ts.URL, serve.JobSpec{Suite: suiteName, Workloads: workloads, Events: events})
	if err != nil {
		return fmt.Errorf("served-vs-serial: %w", err)
	}
	cells, err := streamJob(ts.URL, st.ID)
	if err != nil {
		return fmt.Errorf("served-vs-serial: %w", err)
	}
	if len(cells) != len(workloads) {
		return fmt.Errorf("served-vs-serial: got %d cells, want %d", len(cells), len(workloads))
	}
	want, err := serialCells(workloads, events, suiteName)
	if err != nil {
		return err
	}
	for _, c := range cells {
		if err := cellMatches(c, want); err != nil {
			return fmt.Errorf("served-vs-serial: %w", err)
		}
	}
	return nil
}

// SplitConcatIdentity checks that one job covering N workloads and N jobs
// covering one workload each stream identical per-cell counters: session
// granularity must not leak into results.
func SplitConcatIdentity(workloads []string, events int, suiteName string) error {
	_, ts, shutdown := startServer()
	defer shutdown()

	st, err := submitJob(ts.URL, serve.JobSpec{Suite: suiteName, Workloads: workloads, Events: events})
	if err != nil {
		return fmt.Errorf("split-concat: %w", err)
	}
	joint, err := streamJob(ts.URL, st.ID)
	if err != nil {
		return fmt.Errorf("split-concat: %w", err)
	}
	byRun := make(map[string]serve.CellResult, len(joint))
	for _, c := range joint {
		byRun[c.Run] = c
	}

	for _, wl := range workloads {
		st, err := submitJob(ts.URL, serve.JobSpec{Suite: suiteName, Workloads: []string{wl}, Events: events})
		if err != nil {
			return fmt.Errorf("split-concat: workload %s: %w", wl, err)
		}
		cells, err := streamJob(ts.URL, st.ID)
		if err != nil {
			return fmt.Errorf("split-concat: workload %s: %w", wl, err)
		}
		if len(cells) != 1 {
			return fmt.Errorf("split-concat: workload %s job returned %d cells", wl, len(cells))
		}
		want, ok := byRun[cells[0].Run]
		if !ok {
			return fmt.Errorf("split-concat: run %q missing from the joint job", cells[0].Run)
		}
		if err := predictorsEqual(cells[0], want); err != nil {
			return fmt.Errorf("split-concat: run %q: %w", cells[0].Run, err)
		}
	}
	return nil
}

// UploadVsSerial checks that streaming an IBT2 trace through the service's
// upload path yields the same counters as feeding the records to a local
// sim.Engine: the incremental decode-and-simulate loop must match batch
// simulation exactly.
func UploadVsSerial(recs []trace.Record, predictors []string) error {
	_, ts, shutdown := startServer()
	defer shutdown()

	enc, err := encodeTrace(recs)
	if err != nil {
		return err
	}
	url := ts.URL + "/v1/jobs"
	sep := "?"
	for _, p := range predictors {
		url += sep + "predictor=" + p
		sep = "&"
	}
	resp, err := http.Post(url, "application/x-ibt2", bytes.NewReader(enc))
	if err != nil {
		return fmt.Errorf("upload-vs-serial: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("upload-vs-serial: status %d", resp.StatusCode)
	}
	cells, err := decodeEvents(resp)
	if err != nil {
		return fmt.Errorf("upload-vs-serial: %w", err)
	}
	if len(cells) != 1 {
		return fmt.Errorf("upload-vs-serial: got %d cells, want 1", len(cells))
	}

	preds := make([]predictor.IndirectPredictor, len(predictors))
	for i, name := range predictors {
		p, ok := bench.NewPredictor(name)
		if !ok {
			return fmt.Errorf("upload-vs-serial: unknown predictor %q", name)
		}
		preds[i] = p
	}
	want := sim.Run(recs, preds...)
	return countersMatch(cells[0], want)
}

// Metamorphic runs every property at the given scale and returns the first
// violation. It is the entry point cmd/ppmcheck and the quick CI pass share.
func Metamorphic(seed uint64, events int) error {
	cfgs := []workload.Config{RandomConfig(seed, events), RandomConfig(seed+1, events)}
	for _, cfg := range cfgs {
		if err := SameSeedIdentity(cfg); err != nil {
			return err
		}
	}
	build := bench.Figure6Predictors
	// A budget of one entry forces eviction between suite cells.
	recs, _ := cfgs[0].Records()
	if err := TraceCacheIdentity(cfgs, build, entryBytes(recs)); err != nil {
		return err
	}
	if err := WorkerIdentity(cfgs, build, 4); err != nil {
		return err
	}
	if err := BlocksVsRecords(cfgs, build, 4); err != nil {
		return err
	}
	if err := BlockEngineIdentity(RandomTrace(seed+2, events), build); err != nil {
		return err
	}
	if err := BlockEngineIdentity(RandomTrace(seed+3, events), ExtensionPredictors); err != nil {
		return err
	}
	if err := StateIdentity(RandomTrace(seed+4, events)); err != nil {
		return err
	}
	workloads := []string{"troff.ped", "eqn"}
	if err := ServedVsSerial(workloads, events, "fig6"); err != nil {
		return err
	}
	if err := SplitConcatIdentity(workloads, events, "fig7"); err != nil {
		return err
	}
	return UploadVsSerial(RandomTrace(seed, events), []string{"BTB", "Cascade", "PPM-hyb"})
}

// --- helpers ---------------------------------------------------------------

// encodeTrace serializes records as an in-memory IBT2 stream.
func encodeTrace(recs []trace.Record) ([]byte, error) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// startServer boots a serve.Server on an httptest listener with quick-test
// sizing; the returned shutdown drains it. Shutdown is idempotent so sweeps
// can both defer it (error paths) and call it explicitly before leak checks.
func startServer() (*serve.Server, *httptest.Server, func()) {
	s := serve.New(serve.Config{
		MaxConcurrent: 2,
		JobTTL:        time.Minute,
		JobTimeout:    time.Minute,
	})
	ts := httptest.NewServer(s.Handler())
	var once sync.Once
	return s, ts, func() {
		once.Do(func() {
			//lint:rootctx harness-owned shutdown deadline; no caller context exists
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
			ts.Close()
		})
	}
}

// submitJob posts a suite JobSpec and decodes the accepted status.
func submitJob(base string, spec serve.JobSpec) (serve.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.JobStatus{}, err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return serve.JobStatus{}, fmt.Errorf("submit status %d", resp.StatusCode)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return serve.JobStatus{}, err
	}
	return st, nil
}

// streamJob follows a job's NDJSON result stream to its done event.
func streamJob(base, id string) ([]serve.CellResult, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/results")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("results status %d", resp.StatusCode)
	}
	return decodeEvents(resp)
}

// decodeEvents reads an NDJSON event stream, requiring a clean "done".
func decodeEvents(resp *http.Response) ([]serve.CellResult, error) {
	dec := json.NewDecoder(resp.Body)
	var cells []serve.CellResult
	for {
		var ev serve.Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("result stream ended without done: %w", err)
		}
		switch ev.Type {
		case "cell":
			cells = append(cells, *ev.Cell)
		case "done":
			if ev.State != serve.StateDone {
				return nil, fmt.Errorf("job finished %s: %s", ev.State, ev.Error)
			}
			return cells, nil
		default:
			return nil, fmt.Errorf("unknown event type %q", ev.Type)
		}
	}
}

// serialCells runs the named workloads through the named suite in-process.
func serialCells(workloads []string, events int, suiteName string) (map[string][]stats.Counters, error) {
	var build func() []predictor.IndirectPredictor
	switch suiteName {
	case "", "fig6":
		build = bench.Figure6Predictors
	case "fig7":
		build = bench.Figure7Predictors
	default:
		return nil, fmt.Errorf("unknown suite %q", suiteName)
	}
	out := make(map[string][]stats.Counters, len(workloads))
	for _, name := range workloads {
		cfg, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		cfg.Events = events
		recs, _ := cfg.Records()
		out[cfg.String()] = sim.Run(recs, build()...)
	}
	return out, nil
}

// cellMatches compares a served cell against the serial counters for its run.
func cellMatches(c serve.CellResult, want map[string][]stats.Counters) error {
	counters, ok := want[c.Run]
	if !ok {
		return fmt.Errorf("unexpected run %q", c.Run)
	}
	return countersMatch(c, counters)
}

// countersMatch compares a served cell's predictor results to sim counters.
func countersMatch(c serve.CellResult, want []stats.Counters) error {
	if len(c.Predictors) != len(want) {
		return fmt.Errorf("run %q: %d predictors served, want %d", c.Run, len(c.Predictors), len(want))
	}
	for i, p := range c.Predictors {
		w := want[i]
		got := stats.Counters{Predictor: p.Name, Lookups: p.Lookups, Correct: p.Correct, Wrong: p.Wrong, NoPrediction: p.NoPrediction}
		if got != w {
			return fmt.Errorf("run %q predictor %s: served %+v, serial %+v", c.Run, p.Name, got, w)
		}
	}
	return nil
}

// predictorsEqual compares two served cells' counters.
func predictorsEqual(a, b serve.CellResult) error {
	if a.Records != b.Records {
		return fmt.Errorf("records %d vs %d", a.Records, b.Records)
	}
	if len(a.Predictors) != len(b.Predictors) {
		return fmt.Errorf("%d vs %d predictors", len(a.Predictors), len(b.Predictors))
	}
	for i := range a.Predictors {
		if a.Predictors[i] != b.Predictors[i] {
			return fmt.Errorf("predictor %s: %+v vs %+v", a.Predictors[i].Name, a.Predictors[i], b.Predictors[i])
		}
	}
	return nil
}

// resultsEqual compares two sched result sets cell by cell.
func resultsEqual(a, b []sched.Result) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d cells", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Counters) != len(b[i].Counters) {
			return fmt.Errorf("cell %d: %d vs %d counters", i, len(a[i].Counters), len(b[i].Counters))
		}
		for k := range a[i].Counters {
			if a[i].Counters[k] != b[i].Counters[k] {
				return fmt.Errorf("cell %d predictor %s: %+v vs %+v", i, a[i].Counters[k].Predictor, a[i].Counters[k], b[i].Counters[k])
			}
		}
		if err := summariesEqual(a[i].Summary, b[i].Summary); err != nil {
			return fmt.Errorf("cell %d: %w", i, err)
		}
	}
	return nil
}

// summariesEqual compares workload summaries field by field (Summary holds a
// slice and a map, so it is not ==-comparable).
func summariesEqual(a, b workload.Summary) error {
	if a.Name != b.Name || a.Input != b.Input ||
		a.Instructions != b.Instructions || a.Records != b.Records ||
		a.MTStatic != b.MTStatic || a.MTDynamic != b.MTDynamic ||
		a.STDynamic != b.STDynamic || a.CondDynamic != b.CondDynamic ||
		a.CallsDynamic != b.CallsDynamic || a.RetsDynamic != b.RetsDynamic {
		return fmt.Errorf("summary scalars differ: %+v vs %+v", a, b)
	}
	if len(a.SiteExecs) != len(b.SiteExecs) {
		return fmt.Errorf("summary SiteExecs %d vs %d", len(a.SiteExecs), len(b.SiteExecs))
	}
	for i := range a.SiteExecs {
		if a.SiteExecs[i] != b.SiteExecs[i] {
			return fmt.Errorf("summary SiteExecs[%d] %d vs %d", i, a.SiteExecs[i], b.SiteExecs[i])
		}
	}
	if len(a.SiteByPC) != len(b.SiteByPC) {
		return fmt.Errorf("summary SiteByPC %d vs %d sites", len(a.SiteByPC), len(b.SiteByPC))
	}
	for pc, label := range a.SiteByPC { //lint:sorted equality check; any violating key fails identically
		if b.SiteByPC[pc] != label {
			return fmt.Errorf("summary SiteByPC[%#x] %q vs %q", pc, label, b.SiteByPC[pc])
		}
	}
	return nil
}
