package check

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/trace"
)

// Divergence records the first step at which the optimized predictor and
// its naive reference disagreed while replaying the same trace.
type Divergence struct {
	Family string
	// Step is the index into the replayed record slice at which the
	// predictions differed (an MT indirect record, since only those are
	// predicted).
	Step   int
	Record trace.Record

	OptTarget uint64
	OptOK     bool
	RefTarget uint64
	RefOK     bool
}

// String formats the divergence for bug reports.
func (d *Divergence) String() string {
	return fmt.Sprintf("%s diverged at step %d (%s): optimized=(%#x,%v) reference=(%#x,%v)",
		d.Family, d.Step, d.Record, d.OptTarget, d.OptOK, d.RefTarget, d.RefOK)
}

// DiffFamily replays recs through the optimized predictor for the given
// Figure 6/7 label and its naive reference in lock-step, following the
// simulator protocol (Predict and Update on MT indirect records, Observe on
// every record). It returns the first divergence, or nil if the two agreed
// on every prediction. An unknown label is an error.
func DiffFamily(family string, recs []trace.Record) (*Divergence, error) {
	opt, ok := bench.NewPredictor(family)
	if !ok {
		return nil, fmt.Errorf("check: unknown predictor family %q", family)
	}
	ref, ok := NewReference(family)
	if !ok {
		return nil, fmt.Errorf("check: no reference for family %q", family)
	}
	for i, r := range recs {
		if r.MTIndirect() {
			optTgt, optOK := opt.Predict(r.PC)
			refTgt, refOK := ref.Predict(r.PC)
			if optOK != refOK || (optOK && optTgt != refTgt) {
				return &Divergence{
					Family:    family,
					Step:      i,
					Record:    r,
					OptTarget: optTgt,
					OptOK:     optOK,
					RefTarget: refTgt,
					RefOK:     refOK,
				}, nil
			}
			opt.Update(r.PC, r.Target)
			ref.Update(r.PC, r.Target)
		}
		opt.Observe(r)
		ref.Observe(r)
	}
	return nil, nil
}

// Diverges reports whether replaying recs produces a divergence for the
// family — the predicate the shrinker minimizes against.
func Diverges(family string, recs []trace.Record) bool {
	d, err := DiffFamily(family, recs)
	return err == nil && d != nil
}
