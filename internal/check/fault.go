package check

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/bench"
	"repro/internal/check/faultio"
	"repro/internal/check/leakcheck"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The fault sweeps drive the IBT2 decoder and the service's upload path
// through every byte offset a stream can die at, asserting the exact
// contract at each one: a cut inside the header is a header error, a cut at
// a record boundary is a clean short trace, a cut mid-record is
// trace.ErrTruncated with every whole record already delivered, and a
// genuine I/O error is surfaced as itself — never misread as truncation.

// EncodeBoundaries serializes recs to an IBT2 stream and returns the byte
// offsets of every record boundary: offsets[k] is the length of a stream
// holding exactly the first k records (offsets[0] is the header).
func EncodeBoundaries(recs []trace.Record) ([]byte, []int64, error) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		return nil, nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, nil, err
	}
	offsets := make([]int64, 1, len(recs)+1)
	offsets[0] = int64(buf.Len())
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return nil, nil, err
		}
		if err := w.Flush(); err != nil {
			return nil, nil, err
		}
		offsets = append(offsets, int64(buf.Len()))
	}
	return buf.Bytes(), offsets, nil
}

// boundaryIndex maps a cut offset to (whole records before the cut, whether
// the cut lands exactly on a record boundary).
func boundaryIndex(offsets []int64, cut int64) (int, bool) {
	k := 0
	for k+1 < len(offsets) && offsets[k+1] <= cut {
		k++
	}
	return k, offsets[k] == cut
}

// TruncationSweep decodes recs' encoding truncated at every byte offset and
// asserts the decoder's classification at each: header cuts fail NewReader,
// boundary cuts deliver a clean prefix, mid-record cuts deliver the whole
// prefix then trace.ErrTruncated. wrap, when non-nil, is applied to each
// truncated stream (e.g. a faultio.ShortReads layer) and must not change
// any outcome.
func TruncationSweep(recs []trace.Record, wrap func(io.Reader) io.Reader) error {
	enc, offsets, err := EncodeBoundaries(recs)
	if err != nil {
		return err
	}
	for cut := int64(0); cut <= int64(len(enc)); cut++ {
		var src io.Reader = faultio.Truncate(bytes.NewReader(enc), cut)
		if wrap != nil {
			src = wrap(src)
		}
		tr, err := trace.NewReader(src)
		if cut < offsets[0] {
			if err == nil {
				return fmt.Errorf("truncation: cut %d inside the header produced a reader", cut)
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("truncation: cut %d: NewReader: %w", cut, err)
		}
		k, clean := boundaryIndex(offsets, cut)
		got, err := tr.ReadAll()
		if len(got) != k {
			return fmt.Errorf("truncation: cut %d delivered %d records, want %d", cut, len(got), k)
		}
		for i := range got {
			if got[i] != recs[i] {
				return fmt.Errorf("truncation: cut %d record %d decoded %+v, want %+v", cut, i, got[i], recs[i])
			}
		}
		if clean {
			if err != nil {
				return fmt.Errorf("truncation: boundary cut %d errored: %v", cut, err)
			}
		} else if !errors.Is(err, trace.ErrTruncated) {
			return fmt.Errorf("truncation: mid-record cut %d returned %v, want trace.ErrTruncated", cut, err)
		}
	}
	return nil
}

// ErrAfterSweep injects a synthetic I/O error at every byte offset and
// asserts the decoder surfaces that error itself — wrapped is fine,
// reclassified as truncation is not. A device fault and a cut-off stream
// demand different operator responses, so conflating them is a bug.
func ErrAfterSweep(recs []trace.Record) error {
	enc, offsets, err := EncodeBoundaries(recs)
	if err != nil {
		return err
	}
	synthetic := errors.New("check: injected device fault")
	for off := int64(0); off <= int64(len(enc)); off++ {
		src := faultio.ErrAfter(bytes.NewReader(enc), off, synthetic)
		tr, err := trace.NewReader(src)
		if off < offsets[0] {
			if !errors.Is(err, synthetic) {
				return fmt.Errorf("errafter: header fault at %d surfaced %v, want the injected error", off, err)
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("errafter: offset %d: NewReader: %w", off, err)
		}
		_, err = tr.ReadAll()
		if !errors.Is(err, synthetic) {
			return fmt.Errorf("errafter: offset %d surfaced %v, want the injected error", off, err)
		}
		if errors.Is(err, trace.ErrTruncated) {
			return fmt.Errorf("errafter: offset %d misclassified a device fault as truncation", off)
		}
	}
	return nil
}

// UploadTruncationSweep posts every prefix of recs' encoding to a live
// serve.Server upload endpoint and asserts the HTTP contract at each cut:
// header cuts and mid-record cuts are client errors (400), boundary cuts
// simulate the delivered prefix with counters identical to a local
// sim.Engine run, and no cut leaks an active job. Returns the server's
// final stats for callers that want to assert on traffic counts.
func UploadTruncationSweep(recs []trace.Record, predictorName string) (*ServeSweepReport, error) {
	enc, offsets, err := EncodeBoundaries(recs)
	if err != nil {
		return nil, err
	}
	pred, ok := bench.NewPredictor(predictorName)
	if !ok {
		return nil, fmt.Errorf("upload sweep: unknown predictor %q", predictorName)
	}
	// Counters after every prefix length, from one incremental serial run.
	e := sim.New(pred)
	serial := make([]stats.Counters, len(recs)+1)
	serial[0] = e.Counters()[0]
	for i, r := range recs {
		e.Process(r)
		serial[i+1] = e.Counters()[0]
	}

	// Snapshot goroutines before the server exists: after the sweep and an
	// explicit shutdown, everything the server spawned must be gone.
	before := leakcheck.Take()
	srv, ts, shutdown := startServer()
	defer shutdown()
	url := ts.URL + "/v1/jobs?predictor=" + predictorName

	report := &ServeSweepReport{}
	for cut := int64(0); cut <= int64(len(enc)); cut++ {
		resp, err := http.Post(url, "application/x-ibt2", bytes.NewReader(enc[:cut]))
		if err != nil {
			return nil, fmt.Errorf("upload sweep: cut %d: %w", cut, err)
		}
		k, clean := boundaryIndex(offsets, cut)
		if cut < offsets[0] || !clean {
			msg, err := readError(resp)
			if err != nil {
				return nil, fmt.Errorf("upload sweep: cut %d: %w", cut, err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				return nil, fmt.Errorf("upload sweep: cut %d: status %d (%s), want 400", cut, resp.StatusCode, msg)
			}
			// The rejection must name the actual failure: a header cut is not
			// an IBT2 trace at all, a mid-record cut is a truncated upload.
			if cut < offsets[0] {
				if !strings.Contains(msg, "not an IBT2 trace") {
					return nil, fmt.Errorf("upload sweep: header cut %d rejected as %q", cut, msg)
				}
			} else if !strings.Contains(msg, "truncated") {
				return nil, fmt.Errorf("upload sweep: mid-record cut %d rejected as %q", cut, msg)
			}
			report.Rejected++
			continue
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := readError(resp)
			return nil, fmt.Errorf("upload sweep: boundary cut %d: status %d (%s), want 200", cut, resp.StatusCode, msg)
		}
		cells, err := decodeEvents(resp)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("upload sweep: boundary cut %d: %w", cut, err)
		}
		if len(cells) != 1 {
			return nil, fmt.Errorf("upload sweep: boundary cut %d: %d cells, want 1", cut, len(cells))
		}
		if cells[0].Records != uint64(k) {
			return nil, fmt.Errorf("upload sweep: boundary cut %d simulated %d records, want %d", cut, cells[0].Records, k)
		}
		if err := countersMatch(cells[0], []stats.Counters{serial[k]}); err != nil {
			return nil, fmt.Errorf("upload sweep: boundary cut %d: %w", cut, err)
		}
		report.Accepted++
	}

	st := srv.Stats()
	if st.ActiveJobs != 0 {
		return nil, fmt.Errorf("upload sweep: %d jobs still active after the sweep", st.ActiveJobs)
	}
	if st.BadUploads != report.Rejected {
		return nil, fmt.Errorf("upload sweep: server counted %d bad uploads, harness rejected %d", st.BadUploads, report.Rejected)
	}
	report.Stats = st

	// Drain the server (idempotent; the defer becomes a no-op) and verify
	// every goroutine it spawned — workers, janitor, drain helpers — exited.
	shutdown()
	if leaked := before.Leaked(); len(leaked) > 0 {
		return nil, fmt.Errorf("upload sweep: %d goroutine(s) leaked past shutdown:\n%s",
			len(leaked), strings.Join(leaked, "\n"))
	}
	return report, nil
}

// ServeSweepReport summarizes an upload sweep: how many cuts were served as
// clean prefixes, how many were shed as client errors, and the server's
// final stats snapshot.
type ServeSweepReport struct {
	Accepted uint64
	Rejected uint64
	Stats    serve.Stats
}

// readError drains a JSON error response body.
func readError(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", fmt.Errorf("undecodable error body: %w", err)
	}
	return body.Error, nil
}
