package check

import (
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// This file holds RefPPM, the naive reference for the paper's PPM predictor
// stack in all three modes (PPM-PIB, PPM-hyb, PPM-hyb-biased). Markov tables
// are maps, path histories are refHistory slices whose packed/recent views
// are recomputed from scratch, indices come from the bit-vector refSFSXS,
// and the BIU is a plain map of explicit Figure 5 state machines.

// refSelState mirrors counter's Figure 5 encoding.
const (
	refStronglyPB  uint8 = 0
	refWeaklyPB    uint8 = 1
	refWeaklyPIB   uint8 = 2
	refStronglyPIB uint8 = 3
)

// refSelUpdate is the Figure 5 transition function written as explicit
// per-state tables: solid arcs (correct) strengthen, dotted arcs
// (incorrect) move toward the other correlation type — one step in normal
// mode, two steps from the PB side in PIB-biased mode.
func refSelUpdate(state uint8, biased, correct bool) uint8 {
	if correct {
		switch state {
		case refWeaklyPB:
			return refStronglyPB
		case refWeaklyPIB:
			return refStronglyPIB
		}
		return state
	}
	if biased {
		switch state {
		case refStronglyPB:
			return refWeaklyPIB
		case refWeaklyPB:
			return refStronglyPIB
		case refWeaklyPIB:
			return refWeaklyPB
		case refStronglyPIB:
			return refWeaklyPIB
		}
		return state
	}
	switch state {
	case refStronglyPB:
		return refWeaklyPB
	case refWeaklyPB:
		return refWeaklyPIB
	case refWeaklyPIB:
		return refWeaklyPB
	case refStronglyPIB:
		return refWeaklyPIB
	}
	return state
}

// refSelPB reports whether a selection state picks the PB history.
func refSelPB(state uint8) bool { return state == refStronglyPB || state == refWeaklyPB }

type refMarkovEntry struct {
	tag    uint32
	target uint64
	hyst   refHyst
}

type refBIUEntry struct {
	mt  bool
	sel uint8 // Figure 5 state, initialized Strongly-PIB
}

// RefPPM is the reference PPM predictor. It covers the untagged,
// zero-confidence-threshold paper configurations (the ones the experiment
// grid runs); NewRefPPM rejects the future-work extensions.
type RefPPM struct {
	cfg    core.Config
	biased bool
	tables []map[uint64]*refMarkovEntry // tables[j-1]: order-j, keyed by index
	zero   *refMarkovEntry
	pb     *refHistory
	pib    *refHistory
	biu    map[uint64]*refBIUEntry

	pending struct {
		indices []uint64 // indices[j] for order j in 1..Order
		tag     uint32
		chosen  int
		target  uint64
		ok      bool
		sel     *refBIUEntry
	}
}

// NewRefPPM builds the reference for core.New(cfg). It panics on the
// tagged / confidence-threshold extensions, which the harness does not
// model.
func NewRefPPM(cfg core.Config) *RefPPM {
	if cfg.Tagged || cfg.ConfidenceThreshold != 0 {
		panic("check: RefPPM models only the untagged, zero-threshold paper configurations")
	}
	tables := make([]map[uint64]*refMarkovEntry, cfg.Order)
	for i := range tables {
		tables[i] = map[uint64]*refMarkovEntry{}
	}
	p := &RefPPM{
		cfg:    cfg,
		biased: cfg.Mode == core.HybridBiased,
		tables: tables,
		pb:     newRefHistory(history.AllBranches, cfg.Order, cfg.TargetBits, 0),
		pib:    newRefHistory(history.IndirectBranches, cfg.Order, cfg.TargetBits, 0),
		biu:    map[uint64]*refBIUEntry{},
	}
	p.pending.indices = make([]uint64, cfg.Order+1)
	return p
}

// Name implements predictor.IndirectPredictor.
func (p *RefPPM) Name() string {
	if p.cfg.Name != "" {
		return p.cfg.Name
	}
	return p.cfg.Mode.String()
}

func (p *RefPPM) ensureBIU(pc uint64) *refBIUEntry {
	if e, ok := p.biu[pc]; ok {
		return e
	}
	e := &refBIUEntry{sel: refStronglyPIB}
	p.biu[pc] = e
	return e
}

func (p *RefPPM) index(recent []uint64, order uint) uint64 {
	if p.cfg.LowSelect {
		return refSFSXSLow(recent, p.cfg.TargetBits, p.cfg.FoldBits, order)
	}
	return refSFSXS(recent, p.cfg.TargetBits, p.cfg.FoldBits, order)
}

// Predict implements predictor.IndirectPredictor: select the history per
// mode, compute every order's SFSXS index, and let the valid entry of the
// highest order supply the target, falling back to the order-0 component.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (p *RefPPM) Predict(pc uint64) (uint64, bool) {
	var hist *refHistory
	var sel *refBIUEntry
	if p.cfg.Mode == core.PIBOnly {
		hist = p.pib
	} else {
		sel = p.ensureBIU(pc)
		if refSelPB(sel.sel) {
			hist = p.pb
		} else {
			hist = p.pib
		}
	}
	recent := hist.recent(p.cfg.Order)
	tag := uint32(refMix64(pc>>2) >> 48)

	pd := &p.pending
	pd.tag = tag
	pd.sel = sel
	pd.chosen = -1
	pd.ok = false
	pd.target = 0

	for j := p.cfg.Order; j >= 1; j-- {
		idx := p.index(recent, uint(j)) % (1 << uint(j))
		pd.indices[j] = idx
		if pd.ok {
			continue
		}
		if e := p.tables[j-1][idx]; e != nil {
			pd.chosen = j
			pd.target = e.target
			pd.ok = true
		}
	}
	if !pd.ok && p.zero != nil {
		pd.chosen = 0
		pd.target = p.zero.target
		pd.ok = true
	}
	return pd.target, pd.ok
}

func refTrainMarkov(table map[uint64]*refMarkovEntry, idx uint64, tag uint32, target uint64) {
	e := table[idx]
	if e == nil {
		table[idx] = &refMarkovEntry{tag: tag, target: target, hyst: newRefHyst()}
		return
	}
	if e.target == target {
		e.hyst.hit()
		return
	}
	if e.hyst.miss() {
		e.target = target
	}
}

// Update implements predictor.IndirectPredictor with Chen et al.'s update
// exclusion: the chosen component and every higher order train; a
// no-prediction trains everything including the order-0 component.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (p *RefPPM) Update(_, target uint64) {
	pd := &p.pending
	correct := pd.ok && pd.target == target

	low := pd.chosen
	if low < 0 {
		low = 0
	}
	for j := p.cfg.Order; j >= 1 && j >= low; j-- {
		refTrainMarkov(p.tables[j-1], pd.indices[j], pd.tag, target)
	}
	if low == 0 {
		if p.zero == nil {
			p.zero = &refMarkovEntry{target: target, hyst: newRefHyst()}
		} else if p.zero.target == target {
			p.zero.hyst.hit()
		} else if p.zero.hyst.miss() {
			p.zero.target = target
		}
	}

	if pd.sel != nil {
		pd.sel.sel = refSelUpdate(pd.sel.sel, p.biased, correct)
	}
}

// Observe implements predictor.IndirectPredictor: both history registers
// advance on every committed record (each applying its own stream filter),
// and the hybrid modes' BIU learns annotation bits for every indirect-class
// branch.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (p *RefPPM) Observe(r trace.Record) {
	if p.cfg.Mode != core.PIBOnly {
		if r.Class.Indirect() {
			e := p.ensureBIU(r.PC)
			if r.MT {
				e.mt = true
			}
		}
	}
	p.pb.observe(r)
	p.pib.observe(r)
}

var _ predictor.IndirectPredictor = (*RefPPM)(nil)
