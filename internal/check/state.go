package check

import (
	"bytes"
	"fmt"

	"repro/internal/bench"
	"repro/internal/cbt"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/state"
	"repro/internal/trace"
)

// The snapshot suite holds internal/state to the live-session contract:
// cutting a trace at any block boundary, serializing the engine, restoring
// the bytes into a brand-new engine (through pooled storage, the way the
// serving layer does) and continuing must be indistinguishable from never
// stopping — per-dispatch predictions, accounting counters and the final
// serialized bytes all included.

// stateExtensions are the snapshot-capable predictors outside the bench
// families that the hunt also covers. The oracle is excluded on purpose:
// it is unbounded and deliberately not a Snapshotter.
var stateExtensions = []string{"CBT", "PPM-filtered", "PPM-multi"}

// StateFamilies lists every predictor label the snapshot differential
// covers: the bench families plus the snapshot-capable extensions.
func StateFamilies() []string {
	return append(Families(), stateExtensions...)
}

// newStatePredictor builds a fresh predictor for a snapshot-family label.
// Extension labels pin the same configurations the experiments and the
// block-engine suite use.
func newStatePredictor(family string) (predictor.IndirectPredictor, bool) {
	switch family {
	case "CBT":
		return cbt.New(cbt.Config{Entries: 2048, Availability: 0.5, Seed: 0xCB7}), true
	case "PPM-filtered":
		return core.PaperFiltered(), true
	case "PPM-multi":
		return core.NewMultiTarget(10, 4), true
	}
	return bench.NewPredictor(family)
}

// StateDivergence records a snapshot/restore chain disagreeing with the
// uncut run of the same trace.
type StateDivergence struct {
	Family   string
	CutEvery int
	Detail   string
}

// String formats the divergence for bug reports.
func (d *StateDivergence) String() string {
	return fmt.Sprintf("%s: snapshot/restore chain (cut every %d records) diverged from the uncut run: %s",
		d.Family, d.CutEvery, d.Detail)
}

// statePool is the shared pool the differential snapshots through, mirroring
// the serving layer's pooled save/restore path.
var statePool = state.NewPool()

// DiffState replays recs through a single predictor family twice: once
// uncut, and once snapshotting at every cut boundary — serialize through a
// pooled writer, restore into a brand-new engine through a pooled reader,
// and continue on the restored engine. Chaining the restore at every
// boundary makes one pass cover every cut point at once. Cut cadences come
// from blockDiffCaps, so shrunken traces still cross many boundaries.
// Returns the first divergence, or nil if every cadence agreed. An unknown
// label is an error.
func DiffState(family string, recs []trace.Record) (*StateDivergence, error) {
	p, ok := newStatePredictor(family)
	if !ok {
		return nil, fmt.Errorf("check: unknown predictor family %q", family)
	}
	ref := sim.New(p)
	refPreds := make([]sim.Prediction, 0, len(recs))
	for _, r := range recs {
		if pr, dispatched := ref.ProcessPredicted(r); dispatched {
			refPreds = append(refPreds, pr)
		}
	}
	refFinal := state.SaveBytes(ref)

	for _, cut := range blockDiffCaps {
		if d := diffStateAtCut(family, recs, cut, refPreds, refFinal, ref); d != nil {
			return d, nil
		}
	}
	return nil, nil
}

// diffStateAtCut runs the chained snapshot/restore replay at one cut
// cadence and compares it against the uncut reference run.
func diffStateAtCut(family string, recs []trace.Record, cut int, refPreds []sim.Prediction, refFinal []byte, ref *sim.Engine) *StateDivergence {
	fail := func(format string, args ...any) *StateDivergence {
		return &StateDivergence{Family: family, CutEvery: cut, Detail: fmt.Sprintf(format, args...)}
	}
	p, _ := newStatePredictor(family)
	live := sim.New(p)
	w := statePool.Writer()
	defer statePool.PutWriter(w)
	r := statePool.Reader()
	defer statePool.PutReader(r)
	next := 0
	for i, rec := range recs {
		if i > 0 && i%cut == 0 {
			// Save aliases the pooled writer's buffer; the immediate Load
			// consumes it before the next boundary reuses the writer.
			data := state.Save(live, w)
			np, _ := newStatePredictor(family)
			restored := sim.New(np)
			if err := state.Load(restored, r, data); err != nil {
				return fail("restore at record %d: %v", i, err)
			}
			live = restored
		}
		pr, dispatched := live.ProcessPredicted(rec)
		if !dispatched {
			continue
		}
		if next >= len(refPreds) {
			return fail("record %d: chained run dispatched more predictions than the uncut run", i)
		}
		if pr != refPreds[next] {
			return fail("record %d (dispatch %d): chained %+v vs uncut %+v", i, next, pr, refPreds[next])
		}
		next++
	}
	if next != len(refPreds) {
		return fail("chained run made %d predictions, uncut run made %d", next, len(refPreds))
	}
	if err := enginesMatch(ref, live); err != nil {
		return fail("%v", err)
	}
	if !bytes.Equal(state.SaveBytes(live), refFinal) {
		return fail("final snapshots differ")
	}
	return nil
}

// DivergesState reports whether the family's snapshot/restore chain
// disagrees with its uncut run — the predicate the shrinker minimizes
// against.
func DivergesState(family string, recs []trace.Record) bool {
	d, err := DiffState(family, recs)
	return err == nil && d != nil
}

// StateIdentity runs the snapshot differential over every snapshot family on
// one trace — the relation the metamorphic pass asserts.
func StateIdentity(recs []trace.Record) error {
	for _, fam := range StateFamilies() {
		d, err := DiffState(fam, recs)
		if err != nil {
			return err
		}
		if d != nil {
			return fmt.Errorf("state identity: %s", d)
		}
	}
	return nil
}
