package check

// Naive bit-level reimplementations of the internal/hashing index functions.
// Each works on explicit little-endian bit slices, one bit per byte, with no
// shift/mask tricks: every bit of the output is computed by walking the
// definition from the paper (select these bits, fold them into that many
// positions, place the fold at this offset, XOR). The differential harness
// trusts these because they are transparently the written-out definition;
// agreement with internal/hashing then certifies the optimized forms.

// refBits expands the n low-order bits of v into a little-endian bit slice
// (index 0 = least significant bit).
func refBits(v uint64, n uint) []uint8 {
	bits := make([]uint8, n)
	for i := uint(0); i < n && i < 64; i++ {
		bits[i] = uint8((v >> i) & 1)
	}
	return bits
}

// refJoin reassembles a little-endian bit slice into a value.
func refJoin(bits []uint8) uint64 {
	var v uint64
	for i, b := range bits {
		if i >= 64 {
			break
		}
		v |= uint64(b&1) << uint(i)
	}
	return v
}

// refMask is the n-low-bits mask, built bit by bit.
func refMask(n uint) uint64 {
	var bits []uint8
	for i := uint(0); i < n && i < 64; i++ {
		bits = append(bits, 1)
	}
	for uint(len(bits)) < 64 {
		bits = append(bits, 0)
	}
	return refJoin(bits)
}

// refSelect keeps the n low-order bits of v.
func refSelect(v uint64, n uint) uint64 { return v & refMask(n) }

// refFold XOR-folds the in low-order bits of v into out bits: output bit k
// is the XOR of input bits k, k+out, k+2*out, ... — successive out-bit
// chunks XORed together, exactly as hashing.Fold describes.
func refFold(v uint64, in, out uint) uint64 {
	if out == 0 {
		return 0
	}
	if in > 64 {
		in = 64
	}
	src := refBits(refSelect(v, in), in)
	dst := make([]uint8, out)
	for j, b := range src {
		dst[uint(j)%out] ^= b
	}
	return refJoin(dst)
}

// refGShare XORs the history register with the instruction-aligned branch
// address, bit by bit, keeping n output bits.
func refGShare(history, pc uint64, n uint) uint64 {
	h := refBits(history, 64)
	p := refBits(pc>>2, 64)
	out := make([]uint8, n)
	for i := uint(0); i < n && i < 64; i++ {
		out[i] = h[i] ^ p[i]
	}
	return refJoin(out)
}

// refSFSX is the Sazeides & Smith Select-Fold-Shift-XOR hash written out
// over an explicit wide bit vector: fold each target to foldBits bits,
// place fold i at bit offset i, XOR overlaps, then XOR-reduce the
// (foldBits+len-1)-wide accumulator into 64 bits by folding every position
// onto position mod 64 — the definition a 64-bit register implements by
// rotating each contribution into place.
func refSFSX(targets []uint64, selBits, foldBits uint) uint64 {
	if foldBits == 0 {
		return 0
	}
	width := foldBits + uint(len(targets))
	acc := make([]uint8, width)
	for i, t := range targets {
		f := refBits(refFold(t>>2, selBits, foldBits), foldBits)
		for b := uint(0); b < foldBits; b++ {
			acc[uint(i)+b] ^= f[b]
		}
	}
	out := make([]uint8, 64)
	for pos, b := range acc {
		out[pos%64] ^= b
	}
	return refJoin(out)
}

// refSFSXS is the Figure 2 Select-Fold-Shift-XOR-Select mapping written out
// over an explicit bit vector: fold each of the `order` most recent targets
// (most recent first) to foldBits bits, place fold i at offset order-1-i,
// XOR the placements, and select the `order` high-order bits of the
// (foldBits+order-1)-wide result.
func refSFSXS(targets []uint64, selBits, foldBits, order uint) uint64 {
	if order == 0 {
		return 0
	}
	n := uint(len(targets))
	if n > order {
		n = order
	}
	width := foldBits + order - 1
	if width < order {
		width = order
	}
	acc := make([]uint8, width)
	for i := uint(0); i < n; i++ {
		f := refBits(refFold(targets[i]>>2, selBits, foldBits), foldBits)
		shift := order - 1 - i
		for b := uint(0); b < foldBits; b++ {
			acc[shift+b] ^= f[b]
		}
	}
	return refJoin(acc[width-order:])
}

// refSFSXSLow is the Section 4 mirror orientation: fold i is placed at
// offset i and the order low-order bits are selected.
func refSFSXSLow(targets []uint64, selBits, foldBits, order uint) uint64 {
	if order == 0 {
		return 0
	}
	n := uint(len(targets))
	if n > order {
		n = order
	}
	width := foldBits + order
	acc := make([]uint8, width)
	for i := uint(0); i < n; i++ {
		f := refBits(refFold(targets[i]>>2, selBits, foldBits), foldBits)
		for b := uint(0); b < foldBits; b++ {
			acc[i+b] ^= f[b]
		}
	}
	return refJoin(acc[:order])
}

// refReverseInterleave builds the Dual-path index the way hashing's doc
// comment describes it: fold the recorded history down to the number of
// history positions in the 2:1 interleave pattern, then alternate folded
// history bits (recent first) and branch-address bits from the most
// significant output position downward.
func refReverseInterleave(history uint64, historyBits uint, pc uint64, n uint) uint64 {
	histPos := (n + 1) / 2
	h := refBits(refFold(refSelect(history, historyBits), historyBits, histPos), 64)
	p := refBits(pc>>2, 64)
	out := make([]uint8, n)
	hi, pi := 0, 0
	for pos := uint(0); pos < n; pos++ {
		var b uint8
		if pos%2 == 0 {
			b = h[hi]
			hi++
		} else {
			b = p[pi]
			pi++
		}
		out[n-1-pos] = b
	}
	return refJoin(out)
}

// refMix64 is the splitmix64 finalizer. Its constants are part of the
// specification (tags and workload hashes are defined as this exact
// bijection), so the reference repeats them verbatim rather than inventing
// a different mixer.
func refMix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
