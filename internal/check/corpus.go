package check

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"unsafe"

	"repro/internal/hashing"
	"repro/internal/trace"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// The corpus is the harness's long-term memory: every bug the differential
// oracle or the satellite audits ever found is checked in as a minimized
// seed (a JSON descriptor plus, for most kinds, an IBT2 trace) and replayed
// by `go test` forever after. A seed that stops passing is a regression of
// a previously fixed bug.

// Seed describes one corpus entry. Kind selects the replay procedure:
//
//   - "diff": replay the companion trace through DiffFamily for Family
//     (or every family when Family is empty) and require agreement.
//   - "sfsx-longpath": hash the companion trace's targets as one long SFSX
//     path; flipping bit Params["flipbit"] of the last target must change
//     the hash (the long-path contribution-loss bug).
//   - "readall-hint": re-encode the companion trace, then decode it with
//     an adversarial ReadAll size hint of Params["hint"] records; every
//     record must come back and the result capacity must stay bounded
//     (the unclamped-preallocation OOM bug).
//   - "tracecache-oversize": generate a small and an oversized workload
//     (Params: smallseed/smallevents/bigseed/bigevents) under a budget of
//     Params["budgetsmalls"] small entries; the oversized trace must be
//     served correctly without evicting residents (the LRU-thrash bug).
//   - "blocks": replay the companion trace through DiffBlocks for Family
//     (or every family when Family is empty); the block engine must agree
//     with the record engine at every probed block capacity.
//   - "state": replay the companion trace through DiffState for Family
//     (or every snapshot family when Family is empty); snapshotting and
//     restoring at every probed cut cadence must match the uncut run.
type Seed struct {
	Name   string           `json:"name"`
	Family string           `json:"family,omitempty"`
	Kind   string           `json:"kind"`
	Note   string           `json:"note,omitempty"`
	Params map[string]int64 `json:"params,omitempty"`
}

// SeedEntry is a loaded corpus entry: the descriptor plus its decoded
// companion trace (nil for kinds that carry no trace).
type SeedEntry struct {
	Seed Seed
	Recs []trace.Record
}

// WriteSeed persists a seed into dir: <name>.json always, <name>.ibt2 when
// recs is non-nil.
func WriteSeed(dir string, s Seed, recs []trace.Record) error {
	if s.Name == "" || strings.ContainsAny(s.Name, "/\\") {
		return fmt.Errorf("check: invalid seed name %q", s.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	meta = append(meta, '\n')
	if err := os.WriteFile(filepath.Join(dir, s.Name+".json"), meta, 0o644); err != nil {
		return err
	}
	if recs == nil {
		return nil
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, s.Name+".ibt2"), buf.Bytes(), 0o644)
}

// LoadSeeds reads every seed in dir, sorted by name so replay order is
// deterministic. A missing directory is an empty corpus, not an error.
func LoadSeeds(dir string) ([]SeedEntry, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range entries {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".json") {
			names = append(names, strings.TrimSuffix(de.Name(), ".json"))
		}
	}
	sort.Strings(names)
	seeds := make([]SeedEntry, 0, len(names))
	for _, name := range names {
		meta, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			return nil, err
		}
		var s Seed
		if err := json.Unmarshal(meta, &s); err != nil {
			return nil, fmt.Errorf("check: corpus seed %s: %w", name, err)
		}
		e := SeedEntry{Seed: s}
		data, err := os.ReadFile(filepath.Join(dir, name+".ibt2"))
		if err == nil {
			tr, err := trace.NewReader(bytes.NewReader(data))
			if err != nil {
				return nil, fmt.Errorf("check: corpus trace %s: %w", name, err)
			}
			if e.Recs, err = tr.ReadAll(); err != nil {
				return nil, fmt.Errorf("check: corpus trace %s: %w", name, err)
			}
		} else if !os.IsNotExist(err) {
			return nil, err
		}
		seeds = append(seeds, e)
	}
	return seeds, nil
}

// param reads a seed parameter with a default.
func (s Seed) param(key string, def int64) int64 {
	if v, ok := s.Params[key]; ok {
		return v
	}
	return def
}

// ReplaySeed re-runs one corpus entry and returns an error if the bug it
// pins has resurfaced.
func ReplaySeed(e SeedEntry) error {
	switch e.Seed.Kind {
	case "diff":
		families := Families()
		if e.Seed.Family != "" {
			families = []string{e.Seed.Family}
		}
		for _, fam := range families {
			d, err := DiffFamily(fam, e.Recs)
			if err != nil {
				return fmt.Errorf("seed %s: %w", e.Seed.Name, err)
			}
			if d != nil {
				return fmt.Errorf("seed %s: %s", e.Seed.Name, d)
			}
		}
		return nil

	case "blocks":
		families := Families()
		if e.Seed.Family != "" {
			families = []string{e.Seed.Family}
		}
		for _, fam := range families {
			d, err := DiffBlocks(fam, e.Recs)
			if err != nil {
				return fmt.Errorf("seed %s: %w", e.Seed.Name, err)
			}
			if d != nil {
				return fmt.Errorf("seed %s: %s", e.Seed.Name, d)
			}
		}
		return nil

	case "state":
		families := StateFamilies()
		if e.Seed.Family != "" {
			families = []string{e.Seed.Family}
		}
		for _, fam := range families {
			d, err := DiffState(fam, e.Recs)
			if err != nil {
				return fmt.Errorf("seed %s: %w", e.Seed.Name, err)
			}
			if d != nil {
				return fmt.Errorf("seed %s: %s", e.Seed.Name, d)
			}
		}
		return nil

	case "sfsx-longpath":
		if len(e.Recs) == 0 {
			return fmt.Errorf("seed %s: no trace", e.Seed.Name)
		}
		selBits := uint(e.Seed.param("selbits", 10))
		foldBits := uint(e.Seed.param("foldbits", 5))
		flipBit := uint(e.Seed.param("flipbit", 4))
		path := make([]uint64, len(e.Recs))
		for i, r := range e.Recs {
			path[i] = r.Target
		}
		base := hashing.SFSX(path, selBits, foldBits)
		ref := refSFSX(path, selBits, foldBits)
		if base != ref {
			return fmt.Errorf("seed %s: SFSX=%#x disagrees with reference %#x", e.Seed.Name, base, ref)
		}
		path[len(path)-1] ^= 1 << flipBit
		if hashing.SFSX(path, selBits, foldBits) == base {
			return fmt.Errorf("seed %s: deepest path entry does not reach the SFSX hash", e.Seed.Name)
		}
		return nil

	case "readall-hint":
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			return err
		}
		for _, r := range e.Recs {
			if err := w.Write(r); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		r.SetSizeHint(int(e.Seed.param("hint", 1<<40)))
		got, err := r.ReadAll()
		if err != nil {
			return fmt.Errorf("seed %s: %w", e.Seed.Name, err)
		}
		if len(got) != len(e.Recs) {
			return fmt.Errorf("seed %s: decoded %d records, want %d", e.Seed.Name, len(got), len(e.Recs))
		}
		if maxCap := int(e.Seed.param("maxcap", 1<<21)); cap(got) > maxCap {
			return fmt.Errorf("seed %s: ReadAll preallocated cap %d > %d — hint clamp regressed", e.Seed.Name, cap(got), maxCap)
		}
		return nil

	case "tracecache-oversize":
		smallCfg := corpusWorkload(uint64(e.Seed.param("smallseed", 1)), int(e.Seed.param("smallevents", 100)))
		bigCfg := corpusWorkload(uint64(e.Seed.param("bigseed", 2)), int(e.Seed.param("bigevents", 4000)))
		smallRecs, _ := tracecache.Disabled().Get(smallCfg)
		c := tracecache.New(e.Seed.param("budgetsmalls", 3) * entryBytes(smallRecs))
		c.Get(smallCfg)
		want, wantSum := bigCfg.Records()
		got, gotSum := c.Get(bigCfg)
		if len(got) != len(want) || gotSum.Records != wantSum.Records {
			return fmt.Errorf("seed %s: oversized trace served %d records, want %d", e.Seed.Name, len(got), len(want))
		}
		st := c.Stats()
		if st.Oversize == 0 {
			return fmt.Errorf("seed %s: oversized trace became resident (stats %v)", e.Seed.Name, st)
		}
		if st.Evicted != 0 {
			return fmt.Errorf("seed %s: oversized trace evicted %d resident entries", e.Seed.Name, st.Evicted)
		}
		hitsBefore := st.Hits
		c.Get(smallCfg)
		if c.Stats().Hits != hitsBefore+1 {
			return fmt.Errorf("seed %s: resident small entry was flushed by the oversized trace", e.Seed.Name)
		}
		return nil
	}
	return fmt.Errorf("seed %s: unknown kind %q", e.Seed.Name, e.Seed.Kind)
}

// entryBytes mirrors the tracecache budget accounting for a record slice.
func entryBytes(recs []trace.Record) int64 {
	return int64(cap(recs)) * int64(unsafe.Sizeof(trace.Record{}))
}

// corpusWorkload is the fixed workload shape used by tracecache corpus
// seeds; only seed and event count vary per corpus entry.
func corpusWorkload(seed uint64, events int) workload.Config {
	return workload.Config{
		Name: "corpus", Seed: seed, Events: events,
		Sites: []workload.SiteSpec{
			{Label: "a", Class: trace.IndirectJmp, NumTargets: 4, Behavior: workload.Cyclic{}, Weight: 1},
			{Label: "b", Class: trace.IndirectJsr, NumTargets: 2, Behavior: workload.Uniform{}, Weight: 1},
		},
		CondPerEvent: 2,
	}
}
