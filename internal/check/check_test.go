package check

import (
	"testing"

	"repro/internal/hashing"
	"repro/internal/history"
	"repro/internal/trace"
	"repro/internal/workload"
)

// quickSeeds and quickEvents bound the randomized differential pass run on
// every `go test`; cmd/ppmcheck runs the open-ended version.
const (
	quickSeeds  = 4
	quickEvents = 600
)

// TestCorpusReplay replays every checked-in seed: each one pins a bug the
// harness found, so a failure here is a regression of a fixed bug.
func TestCorpusReplay(t *testing.T) {
	seeds, err := LoadSeeds("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("corpus is empty — testdata/corpus seeds missing")
	}
	for _, e := range seeds {
		e := e
		t.Run(e.Seed.Name, func(t *testing.T) {
			if err := ReplaySeed(e); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDifferentialQuick lock-steps every predictor family against its
// naive reference over a bounded set of randomized traces: structured
// workloads and raw adversarial record streams.
func TestDifferentialQuick(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			for seed := uint64(1); seed <= quickSeeds; seed++ {
				for _, in := range []struct {
					kind string
					recs []trace.Record
				}{
					{"workload", RandomTrace(seed, quickEvents)},
					{"raw", RandomRecords(seed, quickEvents)},
				} {
					d, err := DiffFamily(fam, in.recs)
					if err != nil {
						t.Fatal(err)
					}
					if d != nil {
						min := Shrink(in.recs, func(r []trace.Record) bool { return Diverges(fam, r) })
						t.Fatalf("%s seed %d: %s\nminimized to %d records: %v", in.kind, seed, d, len(min), min)
					}
				}
			}
		})
	}
}

// TestReferenceRegistryCoversAllFamilies pins the acceptance criterion that
// the harness differentially covers every Figure 6/7 label.
func TestReferenceRegistryCoversAllFamilies(t *testing.T) {
	for _, fam := range Families() {
		ref, ok := NewReference(fam)
		if !ok {
			t.Errorf("no reference for family %q", fam)
			continue
		}
		if ref.Name() != fam {
			t.Errorf("reference for %q names itself %q", fam, ref.Name())
		}
	}
	if _, ok := NewReference("no-such-predictor"); ok {
		t.Error("NewReference accepted an unknown label")
	}
}

// --- hash-function differentials ------------------------------------------

func TestRefMaskSelectFoldAgree(t *testing.T) {
	rng := workload.NewRNG(11)
	for i := 0; i < 2000; i++ {
		v := rng.Uint64()
		in := uint(rng.Intn(65))
		out := uint(rng.Intn(33))
		if got, want := hashing.Mask(in), refMask(in); got != want {
			t.Fatalf("Mask(%d) = %#x, ref %#x", in, got, want)
		}
		if got, want := hashing.Select(v, in), refSelect(v, in); got != want {
			t.Fatalf("Select(%#x,%d) = %#x, ref %#x", v, in, got, want)
		}
		if in == 0 {
			continue // Fold requires in >= 1 by contract
		}
		if got, want := hashing.Fold(v, in, out), refFold(v, in, out); got != want {
			t.Fatalf("Fold(%#x,%d,%d) = %#x, ref %#x", v, in, out, got, want)
		}
	}
}

func TestRefGShareAgrees(t *testing.T) {
	rng := workload.NewRNG(12)
	for i := 0; i < 2000; i++ {
		h, pc := rng.Uint64(), rng.Uint64()
		n := uint(rng.Intn(33))
		if got, want := hashing.GShare(h, pc, n), refGShare(h, pc, n); got != want {
			t.Fatalf("GShare(%#x,%#x,%d) = %#x, ref %#x", h, pc, n, got, want)
		}
	}
}

func TestRefSFSXAgrees(t *testing.T) {
	rng := workload.NewRNG(13)
	for i := 0; i < 500; i++ {
		// Lengths straddling 64 exercise the rotation wrap — the long-path
		// regime where the pre-fix shift silently dropped contributions.
		n := 1 + rng.Intn(90)
		ts := make([]uint64, n)
		for j := range ts {
			ts[j] = rng.Uint64() &^ 3
		}
		selBits := uint(1 + rng.Intn(32))
		foldBits := uint(1 + rng.Intn(int(selBits)))
		if got, want := hashing.SFSX(ts, selBits, foldBits), refSFSX(ts, selBits, foldBits); got != want {
			t.Fatalf("SFSX(len=%d,sel=%d,fold=%d) = %#x, ref %#x", n, selBits, foldBits, got, want)
		}
	}
}

func TestRefSFSXSAgree(t *testing.T) {
	rng := workload.NewRNG(14)
	for i := 0; i < 1000; i++ {
		n := rng.Intn(14)
		ts := make([]uint64, n)
		for j := range ts {
			ts[j] = rng.Uint64() &^ 3
		}
		order := uint(rng.Intn(13))
		selBits := uint(1 + rng.Intn(32))
		foldBits := uint(1 + rng.Intn(int(selBits)))
		if got, want := hashing.SFSXS(ts, selBits, foldBits, order), refSFSXS(ts, selBits, foldBits, order); got != want {
			t.Fatalf("SFSXS(len=%d,sel=%d,fold=%d,order=%d) = %#x, ref %#x", n, selBits, foldBits, order, got, want)
		}
		if got, want := hashing.SFSXSLow(ts, selBits, foldBits, order), refSFSXSLow(ts, selBits, foldBits, order); got != want {
			t.Fatalf("SFSXSLow(len=%d,sel=%d,fold=%d,order=%d) = %#x, ref %#x", n, selBits, foldBits, order, got, want)
		}
	}
}

func TestRefReverseInterleaveAgrees(t *testing.T) {
	rng := workload.NewRNG(15)
	for i := 0; i < 2000; i++ {
		h, pc := rng.Uint64(), rng.Uint64()
		historyBits := uint(1 + rng.Intn(64))
		n := uint(1 + rng.Intn(20))
		if got, want := hashing.ReverseInterleave(h, historyBits, pc, n), refReverseInterleave(h, historyBits, pc, n); got != want {
			t.Fatalf("ReverseInterleave(%#x,%d,%#x,%d) = %#x, ref %#x", h, historyBits, pc, n, got, want)
		}
	}
}

func TestRefMix64Agrees(t *testing.T) {
	rng := workload.NewRNG(16)
	for i := 0; i < 1000; i++ {
		v := rng.Uint64()
		if got, want := hashing.Mix64(v), refMix64(v); got != want {
			t.Fatalf("Mix64(%#x) = %#x, ref %#x", v, got, want)
		}
	}
}

// --- history differential ---------------------------------------------------

// TestRefHistoryAgreesWithPHR feeds identical random record streams to the
// optimized ring-buffer PHR and the replay-from-scratch refHistory and
// compares both views (recent targets and packed register) after every
// observation, for every stream type and several geometry combinations.
func TestRefHistoryAgreesWithPHR(t *testing.T) {
	streams := []history.Stream{
		history.AllBranches, history.IndirectBranches,
		history.MTIndirectBranches, history.TakenBranches,
	}
	geoms := []struct {
		depth      int
		bitsPer    uint
		packedBits uint
	}{
		{10, 10, 0},
		{5, 2, 10},
		{3, 8, 24},
		{1, 24, 24},
		{6, 4, 24},
		{4, 70, 64},  // bitsPer >= 64 selects the whole target
		{64, 2, 128}, // multi-word: the ITTAGE geometric-history geometry
		{40, 3, 120}, // multi-word, non-power-of-two item width
		{70, 2, 130}, // multi-word with a partial top word
	}
	recs := RandomRecords(77, 400)
	for _, stream := range streams {
		for _, g := range geoms {
			phr := history.NewWide(stream, g.depth, g.bitsPer, g.packedBits)
			ref := newRefHistory(stream, g.depth, g.bitsPer, g.packedBits)
			for i, r := range recs {
				phr.Observe(r)
				ref.observe(r)
				if got, want := phr.Packed(), ref.packed(); got != want {
					t.Fatalf("%v %+v: packed diverged at record %d: %#x vs ref %#x", stream, g, i, got, want)
				}
				for _, out := range []uint{1, 8, 10, 24, 64} {
					in := g.packedBits
					if got, want := phr.FoldPacked(in, out), ref.foldPacked(in, out); got != want {
						t.Fatalf("%v %+v: FoldPacked(%d,%d) diverged at record %d: %#x vs ref %#x", stream, g, in, out, i, got, want)
					}
					if got, want := phr.FoldPacked(in/2, out), ref.foldPacked(in/2, out); in > 1 && got != want {
						t.Fatalf("%v %+v: FoldPacked(%d,%d) diverged at record %d: %#x vs ref %#x", stream, g, in/2, out, i, got, want)
					}
				}
				for n := 0; n <= g.depth+1; n++ {
					got := phr.Recent(nil, n)
					want := ref.recent(n)
					if len(got) != len(want) {
						t.Fatalf("%v %+v: Recent(%d) lengths %d vs ref %d at record %d", stream, g, n, len(got), len(want), i)
					}
					for k := range got {
						if got[k] != want[k] {
							t.Fatalf("%v %+v: Recent(%d)[%d] = %#x vs ref %#x at record %d", stream, g, n, k, got[k], want[k], i)
						}
					}
				}
			}
		}
	}
}

// --- shrinker ----------------------------------------------------------------

func TestShrinkFindsMinimalSubsequence(t *testing.T) {
	// The failure fires iff the trace contains a record with PC 0xbad and a
	// later record with PC 0xworse; the 1-minimal failing trace is exactly
	// those two records in order.
	recs := RandomRecords(5, 200)
	recs[40].PC = 0xbad0
	recs[150].PC = 0x90bad
	fails := func(rs []trace.Record) bool {
		seen := false
		for _, r := range rs {
			if r.PC == 0xbad0 {
				seen = true
			}
			if r.PC == 0x90bad && seen {
				return true
			}
		}
		return false
	}
	min := Shrink(recs, fails)
	if len(min) != 2 {
		t.Fatalf("shrunk to %d records, want 2", len(min))
	}
	if min[0].PC != 0xbad0 || min[1].PC != 0x90bad {
		t.Fatalf("shrunk to wrong records: %v", min)
	}
	if !fails(min) {
		t.Fatal("shrunk trace no longer fails")
	}
}

func TestShrinkReturnsInputWhenNotFailing(t *testing.T) {
	recs := RandomRecords(6, 50)
	out := Shrink(recs, func([]trace.Record) bool { return false })
	if len(out) != len(recs) {
		t.Fatalf("non-failing input shrunk from %d to %d records", len(recs), len(out))
	}
}
