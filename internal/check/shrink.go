package check

import "repro/internal/trace"

// Shrink minimizes a failing record sequence with delta debugging (ddmin):
// remove progressively finer-grained chunks as long as the failure
// predicate keeps holding, finishing at single-record granularity. The
// result is 1-minimal with respect to chunk removal: deleting any single
// remaining record makes the failure disappear. fails must be
// deterministic; the shrinker calls it O(n log n) times in the typical
// case, O(n^2) worst case.
//
// Shrink never mutates the input slice and returns a fresh slice. If the
// input does not fail in the first place it is returned (copied) unchanged.
func Shrink(recs []trace.Record, fails func([]trace.Record) bool) []trace.Record {
	cur := append([]trace.Record(nil), recs...)
	if !fails(cur) {
		return cur
	}
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]trace.Record, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) > 0 && fails(cand) {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(cur) {
			break
		}
		n *= 2
		if n > len(cur) {
			n = len(cur)
		}
	}
	return cur
}
