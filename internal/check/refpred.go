package check

import (
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/twolevel"
)

// This file holds the naive reference predictors for the non-PPM families:
// BTB, BTB2b, GAp, Target Cache, Dual-path and Cascade. Each is a map-based
// restatement of the hardware semantics — entries exist only once written,
// victim selection is spelled out, histories are the naive refHistory — so
// a lock-step disagreement with the optimized array implementations always
// means one side has a bug. The references are measurement devices, not
// hardware models, so their map traffic is exempt from hot-path purity
// (//ppm:coldpath).

// refHyst is the 2-bit replacement hysteresis counter written as a plain
// state machine: new entries start weak (1), hits saturate up at 3, a miss
// at 0 reports "replace now" and re-arms to weak.
type refHyst struct{ v uint8 }

func newRefHyst() refHyst { return refHyst{v: 1} }

func (h *refHyst) hit() {
	if h.v < 3 {
		h.v++
	}
}

func (h *refHyst) miss() (replace bool) {
	if h.v == 0 {
		h.v = 1
		return true
	}
	h.v--
	return false
}

// --- BTB / BTB2b -----------------------------------------------------------

type refBTBEntry struct {
	target uint64
	hyst   refHyst
}

// RefBTB is the reference tagless direct-mapped BTB. Entries live in a map
// keyed by the direct-mapped index; absence is the invalid state.
type RefBTB struct {
	name       string
	size       uint64
	hysteresis bool
	table      map[uint64]*refBTBEntry
	pendingIdx uint64
}

// NewRefBTB builds the reference for btb.New(entries).
func NewRefBTB(entries int) *RefBTB {
	return &RefBTB{name: "BTB", size: uint64(entries), table: map[uint64]*refBTBEntry{}}
}

// NewRefBTB2b builds the reference for btb.New2b(entries).
func NewRefBTB2b(entries int) *RefBTB {
	return &RefBTB{name: "BTB2b", size: uint64(entries), hysteresis: true, table: map[uint64]*refBTBEntry{}}
}

// Name implements predictor.IndirectPredictor.
func (b *RefBTB) Name() string { return b.name }

// Predict implements predictor.IndirectPredictor.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (b *RefBTB) Predict(pc uint64) (uint64, bool) {
	idx := (pc >> 2) % b.size
	b.pendingIdx = idx
	if e := b.table[idx]; e != nil {
		return e.target, true
	}
	return 0, false
}

// Update implements predictor.IndirectPredictor.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (b *RefBTB) Update(_, target uint64) {
	e := b.table[b.pendingIdx]
	if e == nil {
		b.table[b.pendingIdx] = &refBTBEntry{target: target, hyst: newRefHyst()}
		return
	}
	if e.target == target {
		if b.hysteresis {
			e.hyst.hit()
		}
		return
	}
	if !b.hysteresis {
		e.target = target
		return
	}
	if e.hyst.miss() {
		e.target = target
	}
}

// Observe implements predictor.IndirectPredictor; BTBs keep no history.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (b *RefBTB) Observe(trace.Record) {}

// --- Target Cache ----------------------------------------------------------

type refTCEntry struct {
	tag    uint64
	target uint64
}

// RefTargetCache is the reference Target Cache: gshare-indexed map with
// immediate replacement (no hysteresis).
type RefTargetCache struct {
	cfg        twolevel.TargetCacheConfig
	indexBits  uint
	table      map[uint64]*refTCEntry
	hist       *refHistory
	pendingIdx uint64
	pendingTag uint64
}

// NewRefTargetCache builds the reference for twolevel.NewTargetCache(cfg).
func NewRefTargetCache(cfg twolevel.TargetCacheConfig) *RefTargetCache {
	depth := int((cfg.HistoryBits + cfg.BitsPerTarget - 1) / cfg.BitsPerTarget)
	if depth < 1 {
		depth = 1
	}
	return &RefTargetCache{
		cfg:       cfg,
		indexBits: log2(cfg.Entries),
		table:     map[uint64]*refTCEntry{},
		hist:      newRefHistory(cfg.HistoryStream, depth, cfg.BitsPerTarget, cfg.HistoryBits),
	}
}

// log2 returns floor(log2(n)) for the power-of-two table sizes used here.
func log2(n int) uint {
	bits := uint(0)
	for s := n; s > 1; s >>= 1 {
		bits++
	}
	return bits
}

// Name implements predictor.IndirectPredictor.
func (t *RefTargetCache) Name() string {
	if t.cfg.Name != "" {
		return t.cfg.Name
	}
	return "TC"
}

// Predict implements predictor.IndirectPredictor.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (t *RefTargetCache) Predict(pc uint64) (uint64, bool) {
	idx := refGShare(t.hist.packed(), pc, t.indexBits)
	t.pendingIdx = idx
	t.pendingTag = refMix64(pc>>2) >> 40
	e := t.table[idx]
	if e == nil {
		return 0, false
	}
	if t.cfg.Tagged && e.tag != t.pendingTag {
		return 0, false
	}
	return e.target, true
}

// Update implements predictor.IndirectPredictor: always install the actual
// target.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (t *RefTargetCache) Update(_, target uint64) {
	t.table[t.pendingIdx] = &refTCEntry{tag: t.pendingTag, target: target}
}

// Observe implements predictor.IndirectPredictor.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (t *RefTargetCache) Observe(r trace.Record) { t.hist.observe(r) }

// --- PHT (reference pattern history table) ---------------------------------

type refPHTEntry struct {
	target uint64
	hyst   refHyst
	lru    uint64
	u      uint8 // usefulness, 0..3; maintained only in useful mode
}

// refPHT is the reference pattern history table: per-set tag maps with an
// explicit global clock. A set holds at most assoc tags; allocation beyond
// that evicts the tag with the smallest LRU stamp (stamps are drawn from
// the strictly increasing clock, so the minimum is unique). In useful mode
// eviction is additionally gated on the victim's usefulness counter having
// decayed to zero, a fully defended set decays instead of allocating, and
// the counters halve every resetPeriod updates.
type refPHT struct {
	nsets       uint64
	assoc       int
	tagged      bool
	clock       uint64
	useful      bool
	resetPeriod uint64
	sets        map[uint64]map[uint64]*refPHTEntry // set index -> tag -> entry
	direct      map[uint64]*refPHTEntry            // tagless: set index -> entry
}

func newRefPHT(entries, assoc int, tagged bool) *refPHT {
	return &refPHT{
		nsets:  uint64(entries / assoc),
		assoc:  assoc,
		tagged: tagged,
		sets:   map[uint64]map[uint64]*refPHTEntry{},
		direct: map[uint64]*refPHTEntry{},
	}
}

func newRefPHTUseful(entries, assoc int, resetPeriod uint64) *refPHT {
	t := newRefPHT(entries, assoc, true)
	t.useful = true
	t.resetPeriod = resetPeriod
	return t
}

func (t *refPHT) indexBits() uint { return log2(int(t.nsets)) }

// probe returns the entry for (index, tag) without touching any state.
func (t *refPHT) probe(index, tag uint64) *refPHTEntry {
	set := index % t.nsets
	if !t.tagged {
		return t.direct[set]
	}
	return t.sets[set][tag]
}

// touch refreshes the LRU stamp of a tag-matching entry after a lookup hit;
// tagless tables keep no LRU state and do not advance the clock.
func (t *refPHT) touch(index, tag uint64) {
	if !t.tagged {
		return
	}
	t.clock++
	if e := t.sets[index%t.nsets][tag]; e != nil {
		e.lru = t.clock
	}
}

func refTrain(e *refPHTEntry, target uint64) {
	if e.target == target {
		e.hyst.hit()
		return
	}
	if e.hyst.miss() {
		e.target = target
	}
}

// update trains (index, tag) with the actual target. The clock advances on
// every update, matching the hardware's per-access stamp.
func (t *refPHT) update(index, tag, target uint64, allocate bool) {
	t.clock++
	set := index % t.nsets
	if t.useful {
		t.updateUseful(set, tag, target, allocate)
		return
	}
	if !t.tagged {
		e := t.direct[set]
		if e == nil {
			if allocate {
				t.direct[set] = &refPHTEntry{target: target, hyst: newRefHyst()}
			}
			return
		}
		refTrain(e, target)
		return
	}
	ways := t.sets[set]
	if e := ways[tag]; e != nil {
		e.lru = t.clock
		refTrain(e, target)
		return
	}
	if !allocate {
		return
	}
	if ways == nil {
		ways = map[uint64]*refPHTEntry{}
		t.sets[set] = ways
	}
	if len(ways) >= t.assoc {
		// Evict the least recently used way. LRU stamps come from the
		// strictly increasing clock, so the minimum is unique and the
		// choice deterministic.
		var victimTag uint64
		var victimLRU uint64
		first := true
		for wt, we := range ways { //lint:sorted unique-minimum selection; iteration order cannot matter
			if first || we.lru < victimLRU {
				victimTag, victimLRU, first = wt, we.lru, false
			}
		}
		delete(ways, victimTag)
	}
	ways[tag] = &refPHTEntry{target: target, hyst: newRefHyst(), lru: t.clock}
}

// updateUseful restates the u-bit train/replace discipline: a tag hit
// adjusts usefulness by whether the resident target was right before
// training it, a miss may only claim an absent way or the least recent way
// whose usefulness is zero, and a fully defended set decays by one instead
// of allocating. The clock (already advanced by update) doubles as the
// graceful-reset timer.
func (t *refPHT) updateUseful(set, tag, target uint64, allocate bool) {
	if t.resetPeriod > 0 && t.clock%t.resetPeriod == 0 {
		t.halveUseful()
	}
	ways := t.sets[set]
	if e := ways[tag]; e != nil {
		e.lru = t.clock
		if e.target == target {
			if e.u < 3 {
				e.u++
			}
		} else if e.u > 0 {
			e.u--
		}
		refTrain(e, target)
		return
	}
	if !allocate {
		return
	}
	if ways == nil {
		ways = map[uint64]*refPHTEntry{}
		t.sets[set] = ways
	}
	if len(ways) >= t.assoc {
		// Eviction may only claim the least recent way whose usefulness has
		// decayed to zero; LRU stamps come from the strictly increasing
		// clock, so the minimum is unique and the choice deterministic.
		var victimTag uint64
		var victimLRU uint64
		found := false
		for wt, we := range ways { //lint:sorted unique-minimum selection among u==0 ways; iteration order cannot matter
			if we.u == 0 && (!found || we.lru < victimLRU) {
				victimTag, victimLRU, found = wt, we.lru, true
			}
		}
		if !found {
			// Every way is defended: the whole set decays instead.
			for _, we := range ways { //lint:sorted per-entry decay; iteration order cannot matter
				if we.u > 0 {
					we.u--
				}
			}
			return
		}
		delete(ways, victimTag)
	}
	ways[tag] = &refPHTEntry{target: target, hyst: newRefHyst(), lru: t.clock}
}

// halveUseful ages every usefulness counter (the graceful reset).
func (t *refPHT) halveUseful() {
	for _, ways := range t.sets { //lint:sorted per-entry halving; iteration order cannot matter
		for _, we := range ways { //lint:sorted per-entry halving; iteration order cannot matter
			we.u >>= 1
		}
	}
}

// --- GAp -------------------------------------------------------------------

// RefGAp is the reference two-level GAp component.
type RefGAp struct {
	cfg     twolevel.GApConfig
	tables  []*refPHT
	hist    *refHistory
	pending struct {
		table *refPHT
		index uint64
		tag   uint64
	}
}

func refHistoryBits(cfg twolevel.GApConfig) uint {
	if cfg.HistoryBits != 0 {
		return cfg.HistoryBits
	}
	return uint(cfg.PathLength) * cfg.BitsPerTarget
}

// NewRefGAp builds the reference for twolevel.NewGAp(cfg).
func NewRefGAp(cfg twolevel.GApConfig) *RefGAp {
	assoc := cfg.Assoc
	if assoc < 1 {
		assoc = 1
	}
	perTable := cfg.Entries / cfg.PHTs
	tables := make([]*refPHT, cfg.PHTs)
	for i := range tables {
		if cfg.Useful {
			tables[i] = newRefPHTUseful(perTable, assoc, cfg.UsefulResetPeriod)
		} else {
			tables[i] = newRefPHT(perTable, assoc, cfg.Tagged)
		}
	}
	return &RefGAp{
		cfg:    cfg,
		tables: tables,
		hist:   newRefHistory(cfg.HistoryStream, cfg.PathLength, cfg.BitsPerTarget, refHistoryBits(cfg)),
	}
}

// Name implements predictor.IndirectPredictor.
func (g *RefGAp) Name() string {
	if g.cfg.Name != "" {
		return g.cfg.Name
	}
	return "GAp"
}

func (g *RefGAp) index(pc uint64) (*refPHT, uint64, uint64) {
	tsel := uint64(0)
	if len(g.tables) > 1 {
		tsel = (pc >> 2) % uint64(len(g.tables))
	}
	table := g.tables[tsel]
	bits := table.indexBits()
	var idx uint64
	switch {
	case g.cfg.Tagged:
		idx = refFold(g.hist.packed(), refHistoryBits(g.cfg), bits)
	case g.cfg.Indexing == twolevel.GShare:
		idx = refGShare(g.hist.packed(), pc, bits)
	default:
		idx = refReverseInterleave(g.hist.packed(), refHistoryBits(g.cfg), pc, bits)
	}
	tag := refMix64(pc>>2) >> 40
	return table, idx, tag
}

// Predict implements predictor.IndirectPredictor.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (g *RefGAp) Predict(pc uint64) (uint64, bool) {
	table, idx, tag := g.index(pc)
	g.pending.table, g.pending.index, g.pending.tag = table, idx, tag
	if e := table.probe(idx, tag); e != nil {
		table.touch(idx, tag)
		return e.target, true
	}
	return 0, false
}

// Update implements predictor.IndirectPredictor.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (g *RefGAp) Update(_, target uint64) { g.updateAlloc(target, true) }

func (g *RefGAp) updateAlloc(target uint64, allocate bool) {
	g.pending.table.update(g.pending.index, g.pending.tag, target, allocate)
}

// Observe implements predictor.IndirectPredictor.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (g *RefGAp) Observe(r trace.Record) { g.hist.observe(r) }

// --- Dual-path -------------------------------------------------------------

// RefDualPath is the reference Dual-path hybrid: two RefGAp components and
// a map of 2-bit tournament counters (absent = the power-up value 2,
// weakly preferring the long component).
type RefDualPath struct {
	short, long  *RefGAp
	numSelectors uint64
	selectors    map[uint64]uint8
	pending      struct {
		selIdx            uint64
		shortTgt, longTgt uint64
		shortOK, longOK   bool
	}
}

// NewRefDualPath builds the reference for twolevel.NewDualPath(cfg).
func NewRefDualPath(cfg twolevel.DualPathConfig) *RefDualPath {
	return &RefDualPath{
		short:        NewRefGAp(cfg.Short),
		long:         NewRefGAp(cfg.Long),
		numSelectors: uint64(cfg.Selectors),
		selectors:    map[uint64]uint8{},
	}
}

// Name implements predictor.IndirectPredictor.
func (d *RefDualPath) Name() string { return "Dpath" }

func (d *RefDualPath) selector(idx uint64) uint8 {
	if v, ok := d.selectors[idx]; ok {
		return v
	}
	return 2
}

// Predict implements predictor.IndirectPredictor: prefer the selected
// component, fall back to the other on a table miss.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (d *RefDualPath) Predict(pc uint64) (uint64, bool) {
	sTgt, sOK := d.short.Predict(pc)
	lTgt, lOK := d.long.Predict(pc)
	selIdx := (pc >> 2) % d.numSelectors
	chooseLong := d.selector(selIdx) >= 2

	p := &d.pending
	p.selIdx, p.shortTgt, p.longTgt, p.shortOK, p.longOK = selIdx, sTgt, lTgt, sOK, lOK

	switch {
	case chooseLong && lOK:
		return lTgt, true
	case chooseLong && sOK:
		return sTgt, true
	case !chooseLong && sOK:
		return sTgt, true
	case lOK:
		return lTgt, true
	}
	return 0, false
}

// Update implements predictor.IndirectPredictor.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (d *RefDualPath) Update(pc, target uint64) { d.updateAlloc(pc, target, true) }

func (d *RefDualPath) updateAlloc(pc, target uint64, allocate bool) {
	p := &d.pending
	shortRight := p.shortOK && p.shortTgt == target
	longRight := p.longOK && p.longTgt == target
	if shortRight != longRight {
		v := d.selector(p.selIdx)
		if longRight {
			if v < 3 {
				v++
			}
		} else if v > 0 {
			v--
		}
		d.selectors[p.selIdx] = v
	}
	d.short.updateAlloc(target, allocate)
	d.long.updateAlloc(target, allocate)
}

// Observe implements predictor.IndirectPredictor.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (d *RefDualPath) Observe(r trace.Record) {
	d.short.Observe(r)
	d.long.Observe(r)
}

// --- Cascade ---------------------------------------------------------------

type refFilterEntry struct {
	tag    uint64
	target uint64
	poly   bool
	hyst   refHyst
}

// RefCascade is the reference Cascade predictor: a map-based leaky filter
// in front of a reference Dual-path main predictor.
type RefCascade struct {
	name       string
	filterSize uint64
	strict     bool
	filter     map[uint64]*refFilterEntry
	main       *RefDualPath
	pending    struct {
		fIdx    uint64
		fTag    uint64
		fHit    bool
		fTarget uint64
		mainOK  bool
	}
}

// NewRefCascade builds the reference for cascade.New with the given filter
// size, policy and main configuration.
func NewRefCascade(filterEntries int, strict bool, main twolevel.DualPathConfig) *RefCascade {
	return &RefCascade{
		name:       "Cascade",
		filterSize: uint64(filterEntries),
		strict:     strict,
		filter:     map[uint64]*refFilterEntry{},
		main:       NewRefDualPath(main),
	}
}

// NewRefCascadeNamed is NewRefCascade with an explicit label, for the
// variant configurations (the u-bit Cascade-u family).
func NewRefCascadeNamed(name string, filterEntries int, strict bool, main twolevel.DualPathConfig) *RefCascade {
	c := NewRefCascade(filterEntries, strict, main)
	c.name = name
	return c
}

// Name implements predictor.IndirectPredictor.
func (c *RefCascade) Name() string { return c.name }

// Predict implements predictor.IndirectPredictor: main predictor first on a
// tag hit, filter second.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (c *RefCascade) Predict(pc uint64) (uint64, bool) {
	mTgt, mOK := c.main.Predict(pc)
	fIdx := (pc >> 2) % c.filterSize
	fTag := refMix64(pc>>2) >> 40
	fe := c.filter[fIdx]
	fHit := fe != nil && fe.tag == fTag

	p := &c.pending
	p.fIdx, p.fTag, p.fHit = fIdx, fTag, fHit
	p.fTarget = 0
	if fe != nil {
		p.fTarget = fe.target
	}
	p.mainOK = mOK

	if mOK {
		return mTgt, true
	}
	if fHit && !(c.strict && fe.poly) {
		return fe.target, true
	}
	return 0, false
}

// Update implements predictor.IndirectPredictor: the main tables only train
// when the filter proved unable to predict the branch (the leak), and the
// filter trains like a tagged BTB2b whose misses brand the branch
// polymorphic.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (c *RefCascade) Update(pc, target uint64) {
	p := &c.pending
	fe := c.filter[p.fIdx]

	filterWrong := !p.fHit || p.fTarget != target
	c.main.updateAlloc(pc, target, filterWrong)

	switch {
	case fe == nil || fe.tag != p.fTag:
		c.filter[p.fIdx] = &refFilterEntry{tag: p.fTag, target: target, hyst: newRefHyst()}
	case fe.target == target:
		fe.hyst.hit()
	default:
		fe.poly = true
		if fe.hyst.miss() {
			fe.target = target
		}
	}
}

// Observe implements predictor.IndirectPredictor.
//
//ppm:coldpath reference model: unbounded bookkeeping is intentional, not hardware
func (c *RefCascade) Observe(r trace.Record) { c.main.Observe(r) }

var (
	_ predictor.IndirectPredictor = (*RefBTB)(nil)
	_ predictor.IndirectPredictor = (*RefTargetCache)(nil)
	_ predictor.IndirectPredictor = (*RefGAp)(nil)
	_ predictor.IndirectPredictor = (*RefDualPath)(nil)
	_ predictor.IndirectPredictor = (*RefCascade)(nil)
)
