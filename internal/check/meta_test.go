package check

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/workload"
)

// metaEvents sizes the metamorphic quick pass: enough dispatches to fill
// histories and force evictions, small enough for every `go test`.
const metaEvents = 400

func metaConfigs(t *testing.T) []workload.Config {
	t.Helper()
	return []workload.Config{RandomConfig(21, metaEvents), RandomConfig(22, metaEvents)}
}

func TestSameSeedIdentity(t *testing.T) {
	for _, cfg := range metaConfigs(t) {
		if err := SameSeedIdentity(cfg); err != nil {
			t.Error(err)
		}
	}
}

func TestTraceCacheIdentity(t *testing.T) {
	cfgs := metaConfigs(t)
	recs, _ := cfgs[0].Records()
	// One-entry budget: the second cell evicts the first, so the property
	// covers miss, hit-after-generate and regenerate-after-evict paths.
	if err := TraceCacheIdentity(cfgs, bench.Figure6Predictors, entryBytes(recs)); err != nil {
		t.Error(err)
	}
}

func TestWorkerIdentity(t *testing.T) {
	if err := WorkerIdentity(metaConfigs(t), bench.Figure7Predictors, 4); err != nil {
		t.Error(err)
	}
}

func TestServedVsSerial(t *testing.T) {
	if err := ServedVsSerial([]string{"troff.ped", "eqn"}, metaEvents, "fig6"); err != nil {
		t.Error(err)
	}
}

func TestSplitConcatIdentity(t *testing.T) {
	if err := SplitConcatIdentity([]string{"perl.exp", "gs.tig"}, metaEvents, "fig7"); err != nil {
		t.Error(err)
	}
}

func TestUploadVsSerial(t *testing.T) {
	if err := UploadVsSerial(RandomTrace(23, metaEvents), []string{"BTB", "Cascade", "PPM-hyb"}); err != nil {
		t.Error(err)
	}
}
