package check

import (
	"repro/internal/history"
	"repro/internal/trace"
)

// refHistory is the naive path history register: it appends every accepted
// target to a plain slice and derives its views by replaying the push
// sequence through the shift-register definition. No ring buffer, no
// word-packed register — the packed view is a plain bit array driven by the
// written-out shift loop (memoized across reads, see packedRegister), so
// the optimized PHR's incremental state is checked against the definition.
type refHistory struct {
	stream     history.Stream
	depth      int
	bitsPer    uint
	packedBits uint
	all        []uint64 // every accepted target, oldest first

	// reg/regN memoize the shift-register replay: reg is the register after
	// replaying the first regN pushes. The replay is a left fold over the
	// push sequence, so resuming it from the cached state is — by the
	// definition of the loop — identical to starting over; the cache only
	// avoids redoing prefix work when the geometric-history references read
	// the register a dozen times per prediction.
	reg  []bool
	regN int
}

func newRefHistory(stream history.Stream, depth int, bitsPer, packedBits uint) *refHistory {
	return &refHistory{stream: stream, depth: depth, bitsPer: bitsPer, packedBits: packedBits}
}

// refAccepts restates the stream membership rules from first principles
// (Section 4's correlation groups) instead of calling Stream.Accepts.
func refAccepts(s history.Stream, r trace.Record) bool {
	isIndirectJmpJsr := r.Class == trace.IndirectJmp || r.Class == trace.IndirectJsr
	switch s {
	case history.AllBranches:
		return true
	case history.IndirectBranches:
		return isIndirectJmpJsr
	case history.MTIndirectBranches:
		return r.MT && isIndirectJmpJsr
	case history.TakenBranches:
		return r.Taken
	}
	return false
}

func (h *refHistory) observe(r trace.Record) {
	if refAccepts(h.stream, r) {
		h.all = append(h.all, r.Target)
	}
}

// recent returns the n most recent targets, most recent first, capped by
// both the register depth and what has been recorded so far (warm-up).
func (h *refHistory) recent(n int) []uint64 {
	if n > h.depth {
		n = h.depth
	}
	if n > len(h.all) {
		n = len(h.all)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = h.all[len(h.all)-1-i]
	}
	return out
}

// packedRegister replays every recorded push through the shift-register
// definition on a plain per-bit array — no words, no carries: for each
// target, shift every bit up by bitsPer, drop bits past packedBits, and
// deposit the selected low target bits at the bottom. Index 0 is the least
// significant bit. Callers must treat the returned slice as read-only.
func (h *refHistory) packedRegister() []bool {
	if h.reg == nil {
		h.reg, h.regN = make([]bool, h.packedBits), 0
	}
	reg := h.reg
	for _, t := range h.all[h.regN:] {
		var sel uint64
		if h.bitsPer >= 64 {
			sel = t >> 2
		} else {
			sel = refSelect(t>>2, h.bitsPer)
		}
		for j := int(h.packedBits) - 1; j >= 0; j-- {
			if j >= int(h.bitsPer) {
				reg[j] = reg[j-int(h.bitsPer)]
			} else {
				reg[j] = sel&(uint64(1)<<uint(j)) != 0
			}
		}
	}
	h.regN = len(h.all)
	return reg
}

// packed returns the 64 low-order bits of the replayed register, the view
// the optimized PHR exposes as Packed.
func (h *refHistory) packed() uint64 {
	var p uint64
	for j, b := range h.packedRegister() {
		if j >= 64 {
			break
		}
		if b {
			p |= uint64(1) << uint(j)
		}
	}
	return p
}

// foldPacked XOR-folds the in low-order bits of the replayed register into
// out bits, one bit at a time: bit p lands on folded bit p mod out. It is
// the reference for both PHR.FoldPacked and the incrementally maintained
// hashing.Folded registers of the geometric-history predictors.
func (h *refHistory) foldPacked(in, out uint) uint64 {
	if in > h.packedBits {
		in = h.packedBits
	}
	reg := h.packedRegister()
	var folded uint64
	for p := uint(0); p < in; p++ {
		if reg[p] {
			folded ^= uint64(1) << (p % out)
		}
	}
	return folded
}
