package check

import (
	"repro/internal/history"
	"repro/internal/trace"
)

// refHistory is the naive path history register: it appends every accepted
// target to a plain slice and recomputes its views from scratch on demand.
// No ring buffer, no incrementally maintained packed register — the packed
// view replays the full push sequence each time it is read, so the
// optimized PHR's incremental state is checked against the definition.
type refHistory struct {
	stream     history.Stream
	depth      int
	bitsPer    uint
	packedBits uint
	all        []uint64 // every accepted target, oldest first
}

func newRefHistory(stream history.Stream, depth int, bitsPer, packedBits uint) *refHistory {
	if packedBits > 64 {
		packedBits = 64
	}
	return &refHistory{stream: stream, depth: depth, bitsPer: bitsPer, packedBits: packedBits}
}

// refAccepts restates the stream membership rules from first principles
// (Section 4's correlation groups) instead of calling Stream.Accepts.
func refAccepts(s history.Stream, r trace.Record) bool {
	isIndirectJmpJsr := r.Class == trace.IndirectJmp || r.Class == trace.IndirectJsr
	switch s {
	case history.AllBranches:
		return true
	case history.IndirectBranches:
		return isIndirectJmpJsr
	case history.MTIndirectBranches:
		return r.MT && isIndirectJmpJsr
	case history.TakenBranches:
		return r.Taken
	}
	return false
}

func (h *refHistory) observe(r trace.Record) {
	if refAccepts(h.stream, r) {
		h.all = append(h.all, r.Target)
	}
}

// recent returns the n most recent targets, most recent first, capped by
// both the register depth and what has been recorded so far (warm-up).
func (h *refHistory) recent(n int) []uint64 {
	if n > h.depth {
		n = h.depth
	}
	if n > len(h.all) {
		n = len(h.all)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = h.all[len(h.all)-1-i]
	}
	return out
}

// packed replays every recorded push through the shift-register definition:
// for each target, shift left by bitsPer, OR in the selected low target
// bits, and truncate to packedBits.
func (h *refHistory) packed() uint64 {
	if h.packedBits == 0 {
		return 0
	}
	var p uint64
	for _, t := range h.all {
		var sel uint64
		if h.bitsPer >= 64 {
			sel = t >> 2
		} else {
			sel = refSelect(t>>2, h.bitsPer)
		}
		p = ((p << h.bitsPer) | sel) & refMask(h.packedBits)
	}
	return p
}
