package check

import (
	"io"
	"net/http"
	"runtime"
	"testing"

	"repro/internal/check/faultio"
	"repro/internal/trace"
)

// faultRecords is a small stream with every encoding shape: multi-byte
// varint deltas (large PC jumps), value-carrying MT records, and all record
// classes, so the byte-offset sweeps cross every field of every kind of
// record.
func faultRecords() []trace.Record {
	recs := RandomRecords(31, 40)
	recs = append(recs, trace.Record{
		PC: 1 << 60, Target: 1 << 59, Class: trace.IndirectJmp,
		Taken: true, MT: true, Value: 1 << 30, Gap: 1 << 20,
	})
	return recs
}

func TestTruncationSweepDirect(t *testing.T) {
	if err := TruncationSweep(faultRecords(), nil); err != nil {
		t.Error(err)
	}
}

func TestTruncationSweepShortReads(t *testing.T) {
	// The same sweep through 1..3-byte reads: buffered-refill paths must not
	// change any classification.
	wrap := func(r io.Reader) io.Reader { return faultio.ShortReads(r, 41, 3) }
	if err := TruncationSweep(faultRecords(), wrap); err != nil {
		t.Error(err)
	}
}

func TestErrAfterSweep(t *testing.T) {
	if err := ErrAfterSweep(faultRecords()); err != nil {
		t.Error(err)
	}
}

func TestUploadTruncationSweep(t *testing.T) {
	before := runtime.NumGoroutine()

	report, err := UploadTruncationSweep(faultRecords(), "BTB")
	if err != nil {
		t.Fatal(err)
	}
	if report.Accepted == 0 || report.Rejected == 0 {
		t.Fatalf("sweep did not cover both outcomes: %+v", report)
	}
	if report.Stats.ActiveJobs != 0 {
		t.Fatalf("leaked active jobs: %+v", report.Stats)
	}

	// The server and every request are finished; any goroutine the sweep
	// started must wind down. Keep-alive conns are the one legitimate
	// leftover, so close them and then yield until the count returns to the
	// pre-sweep baseline.
	http.DefaultClient.CloseIdleConnections()
	for i := 0; i < 100_000; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("goroutines leaked: %d before sweep, %d after", before, runtime.NumGoroutine())
}
