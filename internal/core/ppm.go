package core

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/hashing"
	"repro/internal/history"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Mode selects which of the paper's three PPM variants a predictor runs as.
type Mode uint8

const (
	// PIBOnly is the PPM-PIB variant: a single PIB path history register,
	// one level of table access (no BIU selection).
	PIBOnly Mode = iota
	// Hybrid is PPM-hyb: two PHRs (PB and PIB) with dynamic per-branch
	// selection via normal-mode 2-bit counters in the BIU (Figure 4).
	Hybrid
	// HybridBiased is PPM-hyb-biased: like Hybrid but the selection
	// counters follow the PIB-biased state machine of Figure 5.
	HybridBiased
)

// String names the mode using the paper's labels.
func (m Mode) String() string {
	switch m {
	case PIBOnly:
		return "PPM-PIB"
	case Hybrid:
		return "PPM-hyb"
	case HybridBiased:
		return "PPM-hyb-biased"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Config parameterizes a PPM predictor. The zero value is not valid; start
// from DefaultConfig or one of the Paper* constructors.
type Config struct {
	// Name overrides the mode-derived predictor name.
	Name string
	// Order is m: the number of Markov tables (orders 1..m) above the
	// single-entry order-0 component. The paper uses 10.
	Order int
	// TargetBits is the number of low-order bits selected from each
	// recorded target (10 in the paper).
	TargetBits uint
	// FoldBits is the folded width per target in the SFSXS hash (5).
	FoldBits uint
	// Mode selects the variant.
	Mode Mode
	// LowSelect switches SFSXS to the low-order-bit select alternative
	// mentioned in Section 4.
	LowSelect bool
	// BIULimit bounds the BIU entry count (0 = infinite, as the paper
	// assumes). Only meaningful for the hybrid modes.
	BIULimit int
	// Tagged enables the tagged-Markov-table extension the paper lists
	// as future work: entries carry a per-branch tag and only predict on
	// a tag match, trading capacity for collision immunity.
	Tagged bool
	// ConfidenceThreshold, when non-zero, implements the future-work
	// "confidence on the prediction of different Markov components":
	// a component only supplies the prediction if its entry's 2-bit
	// counter value is >= the threshold; otherwise lookup falls through
	// to the next lower order.
	ConfidenceThreshold uint8
}

// DefaultConfig returns the paper's order-10 configuration in the given
// mode: 10 Markov tables sized 2^1..2^10 (2046 entries) plus the order-0
// component, two 100-bit PHRs (10 targets x 10 low-order bits), SFSXS
// indexing with 5-bit folds.
func DefaultConfig(mode Mode) Config {
	return Config{
		Order:      10,
		TargetBits: 10,
		FoldBits:   5,
		Mode:       mode,
	}
}

func (c Config) validate() error {
	if c.Order < 1 || c.Order > 20 {
		return fmt.Errorf("core: order must be in [1,20], got %d", c.Order)
	}
	if c.TargetBits == 0 || c.TargetBits > 32 {
		return fmt.Errorf("core: target bits must be in [1,32], got %d", c.TargetBits)
	}
	if c.FoldBits == 0 || c.FoldBits > c.TargetBits {
		return fmt.Errorf("core: fold bits must be in [1,%d], got %d", c.TargetBits, c.FoldBits)
	}
	return nil
}

// ComponentStats records the distribution of accesses and misses across the
// Markov components, the Section 5 measurement showing that at least 98% of
// accesses land in the highest-order component. Index i covers order i;
// index Order+1 ("none") counts lookups where no component could predict.
type ComponentStats struct {
	Accesses []uint64 // [order+2]: orders 0..m, then none
	Misses   []uint64
}

func newComponentStats(order int) ComponentStats {
	return ComponentStats{
		Accesses: make([]uint64, order+2),
		Misses:   make([]uint64, order+2),
	}
}

// PPM is the paper's indirect-branch target predictor.
type PPM struct {
	cfg    Config
	tables []*MarkovTable // tables[j-1] has order j
	zero   markovEntry    // the order-0 component: most recent MT target
	pb     *history.PHR
	pib    *history.PHR
	biu    *predictor.BIU

	scratch []uint64
	pending struct {
		pc      uint64
		indices []uint64
		tag     uint32
		chosen  int // order that supplied the prediction; -1 = none
		target  uint64
		ok      bool
		sel     *predictor.BIUEntry
	}

	stats ComponentStats
}

// New builds a PPM predictor from cfg. Panics on invalid configuration,
// which is a programming error for this repository's fixed experiment set.
func New(cfg Config) *PPM {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	tables := make([]*MarkovTable, cfg.Order)
	for j := 1; j <= cfg.Order; j++ {
		tables[j-1] = NewMarkovTable(uint(j), cfg.Tagged)
	}
	mode := counter.Normal
	if cfg.Mode == HybridBiased {
		mode = counter.PIBBiased
	}
	p := &PPM{
		cfg:     cfg,
		tables:  tables,
		pb:      history.New(history.AllBranches, cfg.Order, cfg.TargetBits, 0),
		pib:     history.New(history.IndirectBranches, cfg.Order, cfg.TargetBits, 0),
		biu:     predictor.NewBIU(mode, cfg.BIULimit),
		scratch: make([]uint64, 0, cfg.Order),
		stats:   newComponentStats(cfg.Order),
	}
	p.pending.indices = make([]uint64, cfg.Order+1)
	return p
}

// PaperHyb returns the PPM-hyb configuration of Section 5.
func PaperHyb() *PPM { return New(DefaultConfig(Hybrid)) }

// PaperPIB returns the PPM-PIB configuration (single PIB history, one level
// of table access).
func PaperPIB() *PPM { return New(DefaultConfig(PIBOnly)) }

// PaperHybBiased returns the PPM-hyb-biased configuration.
func PaperHybBiased() *PPM { return New(DefaultConfig(HybridBiased)) }

// Name implements predictor.IndirectPredictor.
func (p *PPM) Name() string {
	if p.cfg.Name != "" {
		return p.cfg.Name
	}
	return p.cfg.Mode.String()
}

// Config returns the predictor's configuration.
func (p *PPM) Config() Config { return p.cfg }

// Entries implements predictor.Sized: 2^1+...+2^m Markov entries plus the
// order-0 entry (2047 for the paper's order-10 budget).
func (p *PPM) Entries() int {
	n := 1 // order-0
	for _, t := range p.tables {
		n += t.Len()
	}
	return n
}

// Order returns m.
func (p *PPM) Order() int { return p.cfg.Order }

// BIU exposes the branch identification unit (e.g. for eviction stats).
func (p *PPM) BIU() *predictor.BIU { return p.biu }

// selectHistory returns the PHR the branch at pc should use, consulting the
// BIU selection counter in the hybrid modes.
func (p *PPM) selectHistory(pc uint64) (*history.PHR, *predictor.BIUEntry) {
	if p.cfg.Mode == PIBOnly {
		return p.pib, nil
	}
	e := p.biu.Ensure(pc)
	if e.Sel.Selected() == counter.PB {
		return p.pb, e
	}
	return p.pib, e
}

// Predict implements predictor.IndirectPredictor: all Markov components are
// accessed in parallel with their per-order SFSXS indices and the valid
// entry of the highest order supplies the target (Figure 3's buffer chain).
func (p *PPM) Predict(pc uint64) (uint64, bool) {
	phr, sel := p.selectHistory(pc)
	recent := phr.Recent(p.scratch[:0], p.cfg.Order)
	tag := uint32(hashing.Mix64(pc>>2) >> 48)

	pd := &p.pending
	pd.pc = pc
	pd.tag = tag
	pd.sel = sel
	pd.chosen = -1
	pd.ok = false
	pd.target = 0

	// One incremental pass derives every order's SFSXS index (each order's
	// hash nests inside the next), replacing the per-order refolds that
	// dominated the simulation profile.
	hashing.SFSXSAll(pd.indices, recent, p.cfg.TargetBits, p.cfg.FoldBits, uint(p.cfg.Order), p.cfg.LowSelect)

	for j := p.cfg.Order; j >= 1; j-- {
		idx := pd.indices[j] //lint:idxsafe j descends from Order and len(indices) == Order+1 by construction
		//lint:idxsafe j in [1, Order] and len(tables) == Order by construction
		if e := p.tables[j-1].lookup(idx, tag); e != nil && e.hyst.Value() >= p.cfg.ConfidenceThreshold {
			pd.chosen = j
			pd.target = e.target
			pd.ok = true
			break
		}
	}
	if !pd.ok && p.zero.valid {
		pd.chosen = 0
		pd.target = p.zero.target
		pd.ok = true
	}
	if pd.ok {
		p.stats.Accesses[pd.chosen]++ //lint:idxsafe chosen in [0, Order] when ok; Accesses has Order+2 slots
	} else {
		p.stats.Accesses[p.cfg.Order+1]++ //lint:idxsafe Accesses has Order+2 slots by construction
	}
	return pd.target, pd.ok
}

// Update implements predictor.IndirectPredictor. The update-exclusion
// policy of Chen et al. is applied: only the component that supplied the
// prediction and every higher-order component are trained; lower orders are
// left untouched. The PHRs advance in Observe, after Update, so tables are
// trained against the history state used at prediction time.
func (p *PPM) Update(pc, target uint64) { p.UpdateAlloc(pc, target, true) }

// UpdateAlloc resolves the pending prediction like Update but lets a
// filtering front end (see FilteredPPM) suppress training of the Markov
// tables for branches it has decided to keep out of them; accounting and
// the correlation-selection counter still advance.
func (p *PPM) UpdateAlloc(_, target uint64, train bool) {
	pd := &p.pending
	correct := pd.ok && pd.target == target
	if !correct {
		if pd.ok {
			p.stats.Misses[pd.chosen]++ //lint:idxsafe chosen in [0, Order] when ok; Misses has Order+2 slots
		} else {
			p.stats.Misses[p.cfg.Order+1]++ //lint:idxsafe Misses has Order+2 slots by construction
		}
	}

	if train {
		low := pd.chosen
		if low < 0 {
			low = 0 // nothing predicted: every component learns the branch
		}
		for j := p.cfg.Order; j >= 1 && j >= low; j-- {
			p.tables[j-1].train(pd.indices[j], pd.tag, target) //lint:idxsafe j in [1, Order]; tables and indices are Order and Order+1 long by construction
		}
		if low == 0 {
			trainZero(&p.zero, target)
		}
	}

	if pd.sel != nil {
		pd.sel.Sel.Update(correct)
	}
}

// PredictedValid reports whether the most recent Predict call produced a
// prediction, for filtering front ends.
func (p *PPM) PredictedValid() bool { return p.pending.ok }

func trainZero(e *markovEntry, target uint64) {
	if !e.valid {
		*e = markovEntry{valid: true, target: target, hyst: counter.NewHysteresis()}
		return
	}
	if e.target == target {
		e.hyst.OnHit()
		return
	}
	if e.hyst.OnMiss() {
		e.target = target
	}
}

// Observe implements predictor.IndirectPredictor: the actual target of
// every committed branch is shifted into the PB register, indirect jmp/jsr
// targets also into the PIB register, and the BIU learns annotation bits.
func (p *PPM) Observe(r trace.Record) {
	if p.cfg.Mode != PIBOnly {
		p.biu.Observe(r)
	}
	p.pb.Observe(r)
	p.pib.Observe(r)
}

// ProcessBlock implements the engine's batch fast path: one pass over the
// block's lanes replaying the record protocol with the Observe fan-out
// devirtualized — the mode check is hoisted out of the loop, the BIU class
// check is folded into the meta-byte dispatch, and the history registers
// are pushed directly instead of re-deciding their streams per record (the
// PB register accepts every branch; the PIB register exactly the indirect
// jmp/jsr records). BIU touches stay interleaved in record order, so a
// bounded BIU's FIFO eviction sequence is identical to the record loop's.
//
//ppm:hotpath whole-block PPM replay
func (p *PPM) ProcessBlock(b *trace.Block, c *stats.Counters) {
	hyb := p.cfg.Mode != PIBOnly
	metas := b.Meta
	pcs := b.PC[:len(metas)]
	tgts := b.Target[:len(metas)]
	for i, m := range metas {
		tgt := tgts[i]
		cls := trace.Class(m & trace.MetaClassMask)
		pib := cls == trace.IndirectJmp || cls == trace.IndirectJsr
		mt := m&trace.MetaMT != 0
		if pib && mt {
			pc := pcs[i]
			target, ok := p.Predict(pc)
			c.Record(ok && target == tgt, ok)
			p.Update(pc, tgt)
		}
		if hyb && (pib || cls == trace.Return || cls == trace.JsrCoroutine) {
			p.biu.ObserveIndirect(pcs[i], mt)
		}
		p.pb.Push(tgt)
		if pib {
			p.pib.Push(tgt)
		}
	}
}

// Stats returns the per-component access/miss distribution.
func (p *PPM) Stats() ComponentStats { return p.stats }

// Tables exposes the Markov stack for diagnostics (occupancy reports).
func (p *PPM) Tables() []*MarkovTable { return p.tables }

// Reset implements predictor.Resetter.
func (p *PPM) Reset() {
	for _, t := range p.tables {
		t.reset()
	}
	p.zero = markovEntry{}
	p.pb.Reset()
	p.pib.Reset()
	p.biu.Reset()
	p.stats = newComponentStats(p.cfg.Order)
}

var (
	_ predictor.IndirectPredictor = (*PPM)(nil)
	_ predictor.Sized             = (*PPM)(nil)
	_ predictor.Resetter          = (*PPM)(nil)
	_ predictor.Costed            = (*PPM)(nil)
)

// Bits implements predictor.Costed: the Markov stack entries plus the two
// 100-bit path history registers of Figure 4 (the BIU is excluded, as for
// every design; selection counters live there).
func (p *PPM) Bits() int {
	per := 30 + 1 + 2
	if p.cfg.Tagged {
		per += 16
	}
	n := per // order-0 component
	for _, t := range p.tables {
		n += t.Len() * per
	}
	phr := p.cfg.Order * int(p.cfg.TargetBits)
	if p.cfg.Mode == PIBOnly {
		return n + phr
	}
	return n + 2*phr
}
