package core

import (
	"testing"

	"repro/internal/predictor"
	"repro/internal/race"
)

func TestMultiPPMLearnsCycle(t *testing.T) {
	m := NewMultiTarget(10, 4)
	targets := []uint64{0x14000af4, 0x1400b128, 0x1400c75c}
	correct, total := 0, 0
	for i := 0; i < 3000; i++ {
		want := targets[i%3]
		got, ok := m.Predict(0x12000400)
		if i > 300 {
			total++
			if ok && got == want {
				correct++
			}
		}
		m.Update(0x12000400, want)
		m.Observe(mtJmp(0x12000400, want))
	}
	if acc := float64(correct) / float64(total); acc < 0.99 {
		t.Errorf("multi-target PPM accuracy on cycle = %.3f", acc)
	}
}

func TestMultiMarkovMajorityVote(t *testing.T) {
	tab := NewMultiMarkovTable(3, 2)
	// Target A observed 3 times, B once: majority is A.
	for i := 0; i < 3; i++ {
		tab.train(5, 0xA0)
	}
	tab.train(5, 0xB0)
	got, ok := tab.lookup(5)
	if !ok || got != 0xA0 {
		t.Fatalf("majority vote = (%#x,%v), want A", got, ok)
	}
	// A most-recent-target entry would now predict B; the frequency
	// organisation resists the single excursion.
	single := NewMarkovTable(3, false)
	for i := 0; i < 3; i++ {
		single.train(5, 0, 0xA0)
	}
	single.train(5, 0, 0xB0) // one miss: hysteresis protects A here too
	single.train(5, 0, 0xB0)
	single.train(5, 0, 0xB0)
	single.train(5, 0, 0xB0) // sustained: replaced
	if e := single.lookup(5, 0); e == nil || e.target != 0xB0 {
		t.Fatal("single-target entry should have adapted to B")
	}
	// The frequency entry needs B to out-count A.
	if got, _ := tab.lookup(5); got != 0xA0 {
		t.Fatal("frequency entry flipped too early")
	}
}

func TestMultiMarkovSlotReplacement(t *testing.T) {
	tab := NewMultiMarkovTable(2, 2)
	tab.train(1, 0xA0)
	tab.train(1, 0xA0)
	tab.train(1, 0xB0)
	tab.train(1, 0xC0) // evicts the lowest-count slot (B)
	got, _ := tab.lookup(1)
	if got != 0xA0 {
		t.Errorf("majority after replacement = %#x, want A", got)
	}
}

func TestMultiMarkovCountAging(t *testing.T) {
	tab := NewMultiMarkovTable(1, 2)
	for i := 0; i < 40; i++ {
		tab.train(0, 0xA0) // saturates and halves repeatedly without panic
	}
	tab.train(0, 0xB0)
	if got, ok := tab.lookup(0); !ok || got != 0xA0 {
		t.Errorf("aging broke majority: %#x", got)
	}
}

func TestMultiPPMEntriesAndReset(t *testing.T) {
	m := NewMultiTarget(8, 4)
	if m.Entries() != 4*510+1 {
		t.Errorf("Entries = %d, want %d", m.Entries(), 4*510+1)
	}
	m.Predict(0x40)
	m.Update(0x40, 0x14000010)
	m.Observe(mtJmp(0x40, 0x14000010))
	m.Reset()
	if _, ok := m.Predict(0x40); ok {
		t.Error("prediction survived Reset")
	}
}

func TestBitsAccounting(t *testing.T) {
	// The paper's tagless designs all land near 8 KiB; Cascade's tags
	// roughly double it.
	costs := map[string]int{}
	for _, build := range []predictor.IndirectPredictor{PaperHyb(), PaperPIB()} {
		c, ok := build.(predictor.Costed)
		if !ok {
			t.Fatalf("%s not Costed", build.Name())
		}
		costs[build.Name()] = c.Bits()
	}
	if costs["PPM-hyb"] <= costs["PPM-PIB"] {
		t.Error("hybrid (two PHRs) should cost more bits than PIB-only")
	}
	// Order-10 stack: 2047 entries x 33 bits + PHRs.
	want := 2047*33 + 200
	if costs["PPM-hyb"] != want {
		t.Errorf("PPM-hyb bits = %d, want %d", costs["PPM-hyb"], want)
	}
}

func TestNewMultiTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	NewMultiMarkovTable(3, 0)
}

// TestMultiMarkovTrainZeroAllocSteadyState is the regression test for the
// per-entry slot storage: all k-slot backing is carved from one array at
// construction, so train never allocates — not even on a state's first
// touch or on slot replacement.
func TestMultiMarkovTrainZeroAllocSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc counts asserted in the non-race run")
	}
	tab := NewMultiMarkovTable(6, 4)
	targets := []uint64{0x14000af4, 0x1400b128, 0x1400c75c, 0x1400d390, 0x1400e000}
	i := 0
	if avg := testing.AllocsPerRun(100, func() {
		// Mix first-touch fills, count hits, saturation halving and
		// lowest-count replacement across the index space.
		for j := 0; j < 128; j++ {
			idx := uint64(i*31+j) % 64
			tab.train(idx, targets[(i+j)%len(targets)])
			tab.lookup(idx)
		}
		i++
	}); avg != 0 {
		t.Errorf("train/lookup allocated %.2f per run, want 0", avg)
	}
}
