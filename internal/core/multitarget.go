package core

import (
	"repro/internal/hashing"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file implements the design alternative Section 4 of the paper
// describes and rejects: "The original Markov model requires multiple
// outgoing arcs from each state, keeping frequency counts for each possible
// target. ... It requires storing multiple targets per PHT entry along with
// their frequency counts, and uses a majority voting mechanism to select
// the next target. Instead we store the most recently visited target."
//
// MultiMarkovTable keeps K (target, saturating count) slots per state and
// predicts the highest-count target, so the cost/accuracy trade-off behind
// the paper's simplification can be measured (see cmd/experiments -multi).

// mtSlot is one outgoing arc of a Markov state.
type mtSlot struct {
	target uint64
	count  uint8
}

// multiEntry is a Markov state with frequency-counted outgoing arcs. slots
// is a fixed-capacity window into the table's single backing array,
// allocated once at construction; n tracks how many arcs are in use, so the
// steady-state train path never grows anything.
type multiEntry struct {
	valid bool
	n     int
	slots []mtSlot
}

// MultiMarkovTable is the order-j component with K-slot entries.
type MultiMarkovTable struct {
	order   uint
	k       int
	entries []multiEntry
}

// NewMultiMarkovTable builds the order-j table with 2^order states of k
// arcs each. All slot storage — 2^order * k arcs — is carved out of one
// backing array here, modelling the fixed SRAM budget the hardware would
// commit to; Update never allocates. Panics if k < 1.
func NewMultiMarkovTable(order uint, k int) *MultiMarkovTable {
	if k < 1 {
		panic("core: multi-target slots must be >= 1")
	}
	t := &MultiMarkovTable{order: order, k: k, entries: make([]multiEntry, 1<<order)}
	backing := make([]mtSlot, len(t.entries)*k)
	for i := range t.entries {
		t.entries[i].slots = backing[i*k : (i+1)*k]
	}
	return t
}

// lookup returns the majority-vote target for the state, or ok=false when
// the state has no arcs (zero frequency counts).
func (t *MultiMarkovTable) lookup(idx uint64) (uint64, bool) {
	e := &t.entries[idx&uint64(len(t.entries)-1)]
	if !e.valid {
		return 0, false
	}
	best := 0
	var bestCount uint8
	for i, s := range e.slots[:e.n] {
		if s.count > bestCount {
			bestCount = s.count
			best = i
		}
	}
	// Arcs aged to a zero count never win; no winner means no prediction.
	if bestCount == 0 {
		return 0, false
	}
	return e.slots[best].target, true
}

// train counts the observed transition: an existing arc's count saturates
// upward; a new target replaces the lowest-count arc when the state is
// full. When a count saturates, all counts in the state are halved so the
// distribution keeps adapting (standard frequency-count aging).
func (t *MultiMarkovTable) train(idx uint64, target uint64) {
	e := &t.entries[idx&uint64(len(t.entries)-1)]
	e.valid = true
	for i, s := range e.slots[:e.n] {
		if s.target == target {
			if s.count >= 15 {
				for j := range e.slots[:e.n] {
					e.slots[j].count >>= 1
				}
			}
			e.slots[i].count++
			return
		}
	}
	if e.n < t.k {
		e.slots[e.n] = mtSlot{target: target, count: 1} //lint:idxsafe e.n < t.k == len(e.slots): the constructor carves exactly k slots per entry
		e.n++
		return
	}
	min := 0
	for i, s := range e.slots[:e.n] {
		if s.count < e.slots[min].count {
			min = i
		}
	}
	e.slots[min] = mtSlot{target: target, count: 1}
}

func (t *MultiMarkovTable) reset() {
	for i := range t.entries {
		e := &t.entries[i]
		e.valid = false
		e.n = 0
		for j := range e.slots {
			e.slots[j] = mtSlot{}
		}
	}
}

// MultiPPM is the PPM predictor built on frequency-counted multi-target
// Markov states — the "original Markov model" organisation of Section 4.
// It shares the SFSXS indexing, update exclusion, and PIB path history of
// the production design (PB/PIB hybrid selection is orthogonal and omitted
// to isolate the entry-organisation variable).
type MultiPPM struct {
	inner  *PPM // reused for history management and config validation
	tables []*MultiMarkovTable
	k      int
	name   string

	pending struct {
		indices []uint64
		chosen  int
		target  uint64
		ok      bool
	}
}

// NewMultiTarget builds an order-m PPM with k frequency-counted targets
// per Markov state, PIB history only.
func NewMultiTarget(order, k int) *MultiPPM {
	cfg := DefaultConfig(PIBOnly)
	cfg.Order = order
	inner := New(cfg)
	tables := make([]*MultiMarkovTable, order)
	for j := 1; j <= order; j++ {
		tables[j-1] = NewMultiMarkovTable(uint(j), k)
	}
	m := &MultiPPM{
		inner:  inner,
		tables: tables,
		k:      k,
		name:   "PPM-multi",
	}
	m.pending.indices = make([]uint64, order+1)
	return m
}

// Name implements predictor.IndirectPredictor.
func (m *MultiPPM) Name() string { return m.name }

// SetName overrides the display label.
func (m *MultiPPM) SetName(n string) { m.name = n }

// Entries reports states x slots, the storage the majority-vote design
// pays for.
func (m *MultiPPM) Entries() int {
	n := 0
	for _, t := range m.tables {
		n += len(t.entries) * m.k
	}
	return n + 1
}

// Predict implements predictor.IndirectPredictor: highest order whose
// state has any recorded arc answers with its majority target.
func (m *MultiPPM) Predict(pc uint64) (uint64, bool) {
	cfg := m.inner.Config()
	recent := m.inner.pib.Recent(m.inner.scratch[:0], cfg.Order)

	pd := &m.pending
	pd.chosen = -1
	pd.ok = false
	pd.target = 0
	// Same incremental all-orders pass as PPM.Predict: each order's SFSXS
	// hash nests inside the next, so one sweep replaces per-order refolds.
	hashing.SFSXSAll(pd.indices, recent, cfg.TargetBits, cfg.FoldBits, uint(cfg.Order), cfg.LowSelect)
	for j := cfg.Order; j >= 1; j-- {
		idx := pd.indices[j] //lint:idxsafe j descends from Order and len(indices) == Order+1 by construction
		//lint:idxsafe j in [1, Order] and len(tables) == Order by construction
		if tgt, ok := m.tables[j-1].lookup(idx); ok {
			pd.chosen = j
			pd.target = tgt
			pd.ok = true
			break
		}
	}
	_ = pc
	return pd.target, pd.ok
}

// Update implements predictor.IndirectPredictor with update exclusion over
// the frequency counts.
func (m *MultiPPM) Update(_, target uint64) {
	pd := &m.pending
	low := pd.chosen
	if low < 0 {
		low = 1
	}
	for j := m.inner.Config().Order; j >= low; j-- {
		m.tables[j-1].train(pd.indices[j], target) //lint:idxsafe j in [1, Order]; tables and indices are Order and Order+1 long by construction
	}
}

// Observe implements predictor.IndirectPredictor.
func (m *MultiPPM) Observe(r trace.Record) { m.inner.Observe(r) }

// ProcessBlock implements the engine's batch fast path: the multi-target
// Predict/Update protocol per MT indirect record with the inner PPM's
// Observe fan-out devirtualized, mirroring PPM.ProcessBlock (the inner
// predictor is PIB-only, so the hoisted mode check skips the BIU leg).
//
//ppm:hotpath whole-block multi-target PPM replay
func (m *MultiPPM) ProcessBlock(b *trace.Block, c *stats.Counters) {
	p := m.inner
	hyb := p.cfg.Mode != PIBOnly
	metas := b.Meta
	pcs := b.PC[:len(metas)]
	tgts := b.Target[:len(metas)]
	for i, mb := range metas {
		tgt := tgts[i]
		cls := trace.Class(mb & trace.MetaClassMask)
		pib := cls == trace.IndirectJmp || cls == trace.IndirectJsr
		mt := mb&trace.MetaMT != 0
		if pib && mt {
			pc := pcs[i]
			target, ok := m.Predict(pc)
			c.Record(ok && target == tgt, ok)
			m.Update(pc, tgt)
		}
		if hyb && (pib || cls == trace.Return || cls == trace.JsrCoroutine) {
			p.biu.ObserveIndirect(pcs[i], mt)
		}
		p.pb.Push(tgt)
		if pib {
			p.pib.Push(tgt)
		}
	}
}

// Reset implements predictor.Resetter.
func (m *MultiPPM) Reset() {
	for _, t := range m.tables {
		t.reset()
	}
	m.inner.Reset()
}

var (
	_ predictor.IndirectPredictor = (*MultiPPM)(nil)
	_ predictor.Sized             = (*MultiPPM)(nil)
	_ predictor.Resetter          = (*MultiPPM)(nil)
)
