package core

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/hashing"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
)

// FilteredPPM implements the extension Section 6 proposes as future work:
// coupling the PPM predictor with a Cascade-style leaky filter that
// isolates monomorphic and low-entropy branches. The paper observed that
// such branches, "when fed to the Markov predictors, displaced other
// branches that were strongly correlated"; the filter serves them directly
// and only branches it mispredicts are allowed to train the Markov stack.
type FilteredPPM struct {
	name   string
	filter []filterEntry
	ppm    *PPM
	pend   struct {
		fIdx    uint64
		fTag    uint64
		fHit    bool
		fTarget uint64
		usedPPM bool
	}

	filterServed uint64
	ppmServed    uint64
}

type filterEntry struct {
	valid  bool
	tag    uint64
	target uint64
	hyst   counter.Hysteresis
}

// NewFiltered wraps a PPM predictor with a leaky filter of the given entry
// count. Panics if filterEntries is not a positive power of two.
func NewFiltered(ppm *PPM, filterEntries int) *FilteredPPM {
	if filterEntries <= 0 || filterEntries&(filterEntries-1) != 0 {
		panic(fmt.Sprintf("core: filter entries must be a positive power of two, got %d", filterEntries))
	}
	return &FilteredPPM{
		name:   ppm.Name() + "+filter",
		filter: make([]filterEntry, filterEntries),
		ppm:    ppm,
	}
}

// PaperFiltered returns the future-work configuration evaluated in
// EXPERIMENTS.md: the PPM-hyb predictor behind a 128-entry leaky filter.
func PaperFiltered() *FilteredPPM { return NewFiltered(PaperHyb(), 128) }

// Name implements predictor.IndirectPredictor.
func (f *FilteredPPM) Name() string { return f.name }

// Entries implements predictor.Sized.
func (f *FilteredPPM) Entries() int { return len(f.filter) + f.ppm.Entries() }

// PPM exposes the wrapped Markov stack.
func (f *FilteredPPM) PPM() *PPM { return f.ppm }

// filterSlot masks the word-aligned pc into the filter; single-return so
// callers inherit the in-bounds proof.
func (f *FilteredPPM) filterSlot(pc uint64) uint64 {
	return (pc >> 2) & uint64(len(f.filter)-1)
}

// filterTag is the 24-bit mixed tag distinguishing aliased branches.
func (f *FilteredPPM) filterTag(pc uint64) uint64 {
	return hashing.Mix64(pc>>2) >> 40
}

// Predict implements predictor.IndirectPredictor: a saturated-confidence
// filter hit serves directly — that is the monomorphic/low-entropy
// population the filter exists to isolate — otherwise the Markov stack
// answers, with an unconfident filter entry as the last resort. A branch
// wobbling in the filter (unsaturated counter) keeps training the stack, so
// only genuinely monomorphic behaviour is withheld from the Markov tables.
func (f *FilteredPPM) Predict(pc uint64) (uint64, bool) {
	tgt, ok := f.ppm.Predict(pc)
	idx, tag := f.filterSlot(pc), f.filterTag(pc)
	fe := &f.filter[idx]
	fHit := fe.valid && fe.tag == tag

	f.pend.fIdx, f.pend.fTag, f.pend.fHit, f.pend.fTarget = idx, tag, fHit, fe.target
	if fHit && fe.hyst.Value() >= 3 {
		f.pend.usedPPM = false
		f.filterServed++
		return fe.target, true
	}
	if ok {
		f.pend.usedPPM = true
		f.ppmServed++
		return tgt, true
	}
	f.pend.usedPPM = false
	if fHit {
		f.filterServed++
		return fe.target, true
	}
	return 0, false
}

// Update implements predictor.IndirectPredictor with the leaky protocol:
// the filter always trains; the Markov stack trains only for branches the
// filter failed on (polymorphic behaviour), keeping easy branches from
// displacing correlated ones.
func (f *FilteredPPM) Update(pc, target uint64) {
	fe := &f.filter[f.pend.fIdx]
	// Withhold Markov training only for branches the filter holds with
	// saturated confidence — the monomorphic population whose table
	// pollution the paper identified. Everything else keeps training.
	filterOwns := f.pend.fHit && f.pend.fTarget == target && fe.hyst.Value() >= 3
	f.ppm.UpdateAlloc(pc, target, !filterOwns)

	switch {
	case !fe.valid || fe.tag != f.pend.fTag:
		*fe = filterEntry{valid: true, tag: f.pend.fTag, target: target, hyst: counter.NewHysteresis()}
	case fe.target == target:
		fe.hyst.OnHit()
	default:
		if fe.hyst.OnMiss() {
			fe.target = target
		}
	}
}

// Observe implements predictor.IndirectPredictor.
func (f *FilteredPPM) Observe(r trace.Record) { f.ppm.Observe(r) }

// ProcessBlock implements the engine's batch fast path: the filter's
// Predict/Update protocol per MT indirect record with the wrapped PPM's
// Observe fan-out devirtualized exactly as PPM.ProcessBlock does it (the
// filter itself keeps no path history, so only the wrapped stack observes).
//
//ppm:hotpath whole-block filtered-PPM replay
func (f *FilteredPPM) ProcessBlock(b *trace.Block, c *stats.Counters) {
	p := f.ppm
	hyb := p.cfg.Mode != PIBOnly
	metas := b.Meta
	pcs := b.PC[:len(metas)]
	tgts := b.Target[:len(metas)]
	for i, m := range metas {
		tgt := tgts[i]
		cls := trace.Class(m & trace.MetaClassMask)
		pib := cls == trace.IndirectJmp || cls == trace.IndirectJsr
		mt := m&trace.MetaMT != 0
		if pib && mt {
			pc := pcs[i]
			target, ok := f.Predict(pc)
			c.Record(ok && target == tgt, ok)
			f.Update(pc, tgt)
		}
		if hyb && (pib || cls == trace.Return || cls == trace.JsrCoroutine) {
			p.biu.ObserveIndirect(pcs[i], mt)
		}
		p.pb.Push(tgt)
		if pib {
			p.pib.Push(tgt)
		}
	}
}

// Stats reports how many predictions each stage served.
func (f *FilteredPPM) Stats() (filterServed, ppmServed uint64) {
	return f.filterServed, f.ppmServed
}

// Reset implements predictor.Resetter.
func (f *FilteredPPM) Reset() {
	for i := range f.filter {
		f.filter[i] = filterEntry{}
	}
	f.ppm.Reset()
	f.filterServed, f.ppmServed = 0, 0
}

var (
	_ predictor.IndirectPredictor = (*FilteredPPM)(nil)
	_ predictor.Sized             = (*FilteredPPM)(nil)
	_ predictor.Resetter          = (*FilteredPPM)(nil)
)
