package core

import "testing"

func TestFilteredPPMMonomorphicStaysInFilter(t *testing.T) {
	f := PaperFiltered()
	const pc, target = 0x12000040, 0x14000ab0
	for i := 0; i < 200; i++ {
		got, ok := f.Predict(pc)
		if i > 3 && (!ok || got != target) {
			t.Fatalf("iteration %d: (%#x,%v)", i, got, ok)
		}
		f.Update(pc, target)
		f.Observe(mtJmp(pc, target))
	}
	// The Markov stack must stay almost empty: the filter handled it.
	occ := 0
	for _, tab := range f.PPM().Tables() {
		occ += tab.Occupancy()
	}
	if occ > 60 {
		t.Errorf("monomorphic branch left %d Markov entries; filter leaked", occ)
	}
	served, _ := f.Stats()
	if served == 0 {
		t.Error("filter never served")
	}
}

func TestFilteredPPMPolymorphicUsesPPM(t *testing.T) {
	f := PaperFiltered()
	const pc = 0x12000040
	targets := []uint64{0x14000100, 0x14000220, 0x14000340}
	correct, total := 0, 0
	for i := 0; i < 3000; i++ {
		want := targets[i%3]
		got, ok := f.Predict(pc)
		if i > 500 {
			total++
			if ok && got == want {
				correct++
			}
		}
		f.Update(pc, want)
		f.Observe(mtJmp(pc, want))
	}
	if acc := float64(correct) / float64(total); acc < 0.97 {
		t.Errorf("cyclic accuracy = %.3f, want >= 0.97", acc)
	}
	_, ppmServed := f.Stats()
	if ppmServed == 0 {
		t.Error("PPM never served a polymorphic branch")
	}
}

// TestFilteredPPMProtectsCorrelatedBranches reproduces the displacement
// scenario the paper describes: monomorphic branches feeding the Markov
// tables evict strongly correlated entries. With the filter, the
// correlated branch's accuracy must not collapse under monomorphic load.
func TestFilteredPPMProtectsCorrelatedBranches(t *testing.T) {
	run := func(filtered bool) float64 {
		var p interface {
			Predict(uint64) (uint64, bool)
			Update(uint64, uint64)
			Observe(r interface{ MTIndirect() bool })
		}
		_ = p
		base := PaperPIB()
		var step func(pc, want uint64) bool
		if filtered {
			f := NewFiltered(base, 128)
			step = func(pc, want uint64) bool {
				got, ok := f.Predict(pc)
				f.Update(pc, want)
				f.Observe(mtJmp(pc, want))
				return ok && got == want
			}
		} else {
			step = func(pc, want uint64) bool {
				got, ok := base.Predict(pc)
				base.Update(pc, want)
				base.Observe(mtJmp(pc, want))
				return ok && got == want
			}
		}
		targets := []uint64{0x14000100, 0x14000220, 0x14000340, 0x14000460}
		correct, total := 0, 0
		state := uint64(99)
		for i := 0; i < 4000; i++ {
			// A crowd of monomorphic branches at rotating addresses
			// floods the tables between correlated executions.
			for m := 0; m < 3; m++ {
				state = state*6364136223846793005 + 1442695040888963407
				monoPC := 0x13000000 + (state>>33)%512*0x40
				monoTgt := 0x15000000 + (monoPC&0xffff)*4
				step(monoPC, monoTgt)
			}
			if i > 1000 {
				total++
				if step(0x12000040, targets[i%4]) {
					correct++
				}
			} else {
				step(0x12000040, targets[i%4])
			}
		}
		return float64(correct) / float64(total)
	}
	plain := run(false)
	filtered := run(true)
	if filtered < plain {
		t.Errorf("filter did not help: plain %.3f vs filtered %.3f", plain, filtered)
	}
}

func TestFilteredPPMBudgetAndName(t *testing.T) {
	f := PaperFiltered()
	if f.Entries() != 128+2047 {
		t.Errorf("Entries = %d", f.Entries())
	}
	if f.Name() != "PPM-hyb+filter" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestFilteredPPMReset(t *testing.T) {
	f := PaperFiltered()
	f.Predict(0x40)
	f.Update(0x40, 0x1000)
	f.Observe(mtJmp(0x40, 0x1000))
	f.Reset()
	if _, ok := f.Predict(0x40); ok {
		t.Error("prediction survived Reset")
	}
}

func TestNewFilteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad filter size did not panic")
		}
	}()
	NewFiltered(PaperHyb(), 100)
}
