package core

import (
	"testing"

	"repro/internal/trace"
)

// TestPPMLearnsCycle feeds a single branch that cycles deterministically
// through 8 targets; after warm-up, PIB path history of order 1 determines
// the next target exactly, so every PPM variant must converge to near-
// perfect accuracy.
func TestPPMLearnsCycle(t *testing.T) {
	targets := make([]uint64, 8)
	for i := range targets {
		targets[i] = 0x14000000 + uint64(i)*0x2c4 // 4-byte aligned, scattered
	}
	for _, p := range []*PPM{PaperHyb(), PaperPIB(), PaperHybBiased()} {
		correct, total := 0, 0
		for i := 0; i < 4000; i++ {
			want := targets[i%len(targets)]
			got, ok := p.Predict(0x12000400)
			if i > 200 {
				total++
				if ok && got == want {
					correct++
				}
			}
			p.Update(0x12000400, want)
			p.Observe(trace.Record{PC: 0x12000400, Target: want, Class: trace.IndirectJmp, Taken: true, MT: true})
		}
		acc := float64(correct) / float64(total)
		if acc < 0.99 {
			t.Errorf("%s: accuracy %.3f on deterministic cycle, want >= 0.99", p.Name(), acc)
		}
	}
}
