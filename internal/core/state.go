package core

import (
	"repro/internal/counter"
	"repro/internal/state"
)

// This file implements the state.Snapshotter contract for the PPM family.
// Entries are varint-coded with a 1-byte collapse for invalid slots, so a
// snapshot's size tracks table occupancy rather than capacity. Transient
// per-prediction scratch (the pending structs) is never encoded: snapshots
// are taken at record boundaries, where the next Predict rebuilds it.

// writeMarkovEntry appends one entry; invalid entries collapse to the
// valid bit alone.
func writeMarkovEntry(w *state.Writer, e *markovEntry) {
	w.Bool(e.valid)
	if !e.valid {
		return
	}
	w.U64(uint64(e.tag))
	w.U64(e.target)
	w.U8(e.hyst.Value())
}

// readMarkovEntry decodes one entry in place.
func readMarkovEntry(r *state.Reader, e *markovEntry) error {
	if !r.Bool() {
		*e = markovEntry{}
		return r.Err()
	}
	tag := r.U64()
	target := r.U64()
	raw := r.U8()
	if err := r.Err(); err != nil {
		return err
	}
	if tag > 0xFFFFFFFF {
		return state.Corruptf("markov entry tag %#x exceeds 32 bits", tag)
	}
	hyst, ok := counter.HysteresisFromValue(raw)
	if !ok {
		return state.Corruptf("markov entry hysteresis %d out of range", raw)
	}
	*e = markovEntry{valid: true, tag: uint32(tag), target: target, hyst: hyst}
	return nil
}

// Snapshot implements state.Snapshotter.
func (t *MarkovTable) Snapshot(w *state.Writer) {
	w.Begin(state.SecMarkov)
	w.U64(uint64(t.order))
	w.Bool(t.tagged)
	for i := range t.entries {
		writeMarkovEntry(w, &t.entries[i])
	}
	w.End()
}

// Restore implements state.Snapshotter, rebuilding the table in place.
func (t *MarkovTable) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecMarkov); err != nil {
		return err
	}
	order := r.U64()
	tagged := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if order != uint64(t.order) || tagged != t.tagged {
		return state.Mismatchf("markov table order %d/tagged %v vs snapshot order %d/tagged %v",
			t.order, t.tagged, order, tagged)
	}
	for i := range t.entries {
		if err := readMarkovEntry(r, &t.entries[i]); err != nil {
			return err
		}
	}
	return r.End()
}

// Snapshot implements state.Snapshotter: the scalar section (configuration
// fingerprint, order-0 entry, component stats) followed by every Markov
// table, both history registers, and the BIU.
func (p *PPM) Snapshot(w *state.Writer) {
	w.Begin(state.SecPPM)
	w.U64(uint64(p.cfg.Order))
	w.U64(uint64(p.cfg.TargetBits))
	w.U64(uint64(p.cfg.FoldBits))
	w.U8(uint8(p.cfg.Mode))
	w.Bool(p.cfg.LowSelect)
	w.U64(uint64(p.cfg.BIULimit))
	w.Bool(p.cfg.Tagged)
	w.U8(p.cfg.ConfidenceThreshold)
	writeMarkovEntry(w, &p.zero)
	for _, v := range p.stats.Accesses {
		w.U64(v)
	}
	for _, v := range p.stats.Misses {
		w.U64(v)
	}
	w.End()
	for _, t := range p.tables {
		t.Snapshot(w)
	}
	p.pb.SaveState(w)
	p.pib.SaveState(w)
	p.biu.SaveState(w)
}

// Restore implements state.Snapshotter.
func (p *PPM) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecPPM); err != nil {
		return err
	}
	order := r.U64()
	targetBits := r.U64()
	foldBits := r.U64()
	mode := Mode(r.U8())
	lowSelect := r.Bool()
	biuLimit := r.U64()
	tagged := r.Bool()
	confidence := r.U8()
	if err := r.Err(); err != nil {
		return err
	}
	if order != uint64(p.cfg.Order) || targetBits != uint64(p.cfg.TargetBits) ||
		foldBits != uint64(p.cfg.FoldBits) || mode != p.cfg.Mode ||
		lowSelect != p.cfg.LowSelect || biuLimit != uint64(p.cfg.BIULimit) ||
		tagged != p.cfg.Tagged || confidence != p.cfg.ConfidenceThreshold {
		return state.Mismatchf("PPM config %+v does not match snapshot fingerprint", p.cfg)
	}
	if err := readMarkovEntry(r, &p.zero); err != nil {
		return err
	}
	for i := range p.stats.Accesses {
		p.stats.Accesses[i] = r.U64()
	}
	for i := range p.stats.Misses {
		p.stats.Misses[i] = r.U64()
	}
	if err := r.End(); err != nil {
		return err
	}
	for _, t := range p.tables {
		if err := t.Restore(r); err != nil {
			return err
		}
	}
	if err := p.pb.LoadState(r); err != nil {
		return err
	}
	if err := p.pib.LoadState(r); err != nil {
		return err
	}
	return p.biu.LoadState(r)
}

// Snapshot implements state.Snapshotter: the filter section then the
// wrapped PPM.
func (f *FilteredPPM) Snapshot(w *state.Writer) {
	w.Begin(state.SecFiltered)
	w.U64(uint64(len(f.filter)))
	for i := range f.filter {
		e := &f.filter[i]
		w.Bool(e.valid)
		if e.valid {
			w.U64(e.tag)
			w.U64(e.target)
			w.U8(e.hyst.Value())
		}
	}
	w.U64(f.filterServed)
	w.U64(f.ppmServed)
	w.End()
	f.ppm.Snapshot(w)
}

// Restore implements state.Snapshotter.
func (f *FilteredPPM) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecFiltered); err != nil {
		return err
	}
	if n := r.U64(); n != uint64(len(f.filter)) {
		if err := r.Err(); err != nil {
			return err
		}
		return state.Mismatchf("filter has %d entries, snapshot %d", len(f.filter), n)
	}
	for i := range f.filter {
		e := &f.filter[i]
		if !r.Bool() {
			*e = filterEntry{}
			continue
		}
		tag := r.U64()
		target := r.U64()
		raw := r.U8()
		if err := r.Err(); err != nil {
			return err
		}
		hyst, ok := counter.HysteresisFromValue(raw)
		if !ok {
			return state.Corruptf("filter entry hysteresis %d out of range", raw)
		}
		*e = filterEntry{valid: true, tag: tag, target: target, hyst: hyst}
	}
	f.filterServed = r.U64()
	f.ppmServed = r.U64()
	if err := r.End(); err != nil {
		return err
	}
	return f.ppm.Restore(r)
}

// Snapshot implements state.Snapshotter.
func (t *MultiMarkovTable) Snapshot(w *state.Writer) {
	w.Begin(state.SecMultiMarkov)
	w.U64(uint64(t.order))
	w.U64(uint64(t.k))
	for i := range t.entries {
		e := &t.entries[i]
		w.Bool(e.valid)
		if !e.valid {
			continue
		}
		w.U64(uint64(e.n))
		for _, s := range e.slots[:e.n] {
			w.U64(s.target)
			w.U8(s.count)
		}
	}
	w.End()
}

// Restore implements state.Snapshotter.
func (t *MultiMarkovTable) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecMultiMarkov); err != nil {
		return err
	}
	order := r.U64()
	k := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if order != uint64(t.order) || k != uint64(t.k) {
		return state.Mismatchf("multi-target table order %d/k %d vs snapshot order %d/k %d", t.order, t.k, order, k)
	}
	for i := range t.entries {
		e := &t.entries[i]
		if !r.Bool() {
			e.valid = false
			e.n = 0
			for j := range e.slots {
				e.slots[j] = mtSlot{}
			}
			continue
		}
		n := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if n > uint64(t.k) {
			return state.Corruptf("multi-target state carries %d arcs over k=%d", n, t.k)
		}
		e.valid = true
		e.n = int(n)
		for j := 0; j < e.n; j++ {
			e.slots[j] = mtSlot{target: r.U64(), count: r.U8()}
		}
		for j := e.n; j < t.k; j++ {
			e.slots[j] = mtSlot{}
		}
	}
	return r.End()
}

// Snapshot implements state.Snapshotter: the scalar section, the inner PPM
// (history registers and accounting; its tables stay untrained but travel
// for uniformity), then every multi-target table.
func (m *MultiPPM) Snapshot(w *state.Writer) {
	w.Begin(state.SecMultiPPM)
	w.U64(uint64(m.inner.Config().Order))
	w.U64(uint64(m.k))
	w.End()
	m.inner.Snapshot(w)
	for _, t := range m.tables {
		t.Snapshot(w)
	}
}

// Restore implements state.Snapshotter.
func (m *MultiPPM) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecMultiPPM); err != nil {
		return err
	}
	order := r.U64()
	k := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if order != uint64(m.inner.Config().Order) || k != uint64(m.k) {
		return state.Mismatchf("multi-target PPM order %d/k %d vs snapshot order %d/k %d",
			m.inner.Config().Order, m.k, order, k)
	}
	if err := r.End(); err != nil {
		return err
	}
	if err := m.inner.Restore(r); err != nil {
		return err
	}
	for _, t := range m.tables {
		if err := t.Restore(r); err != nil {
			return err
		}
	}
	return nil
}

var (
	_ state.Snapshotter = (*MarkovTable)(nil)
	_ state.Snapshotter = (*PPM)(nil)
	_ state.Snapshotter = (*FilteredPPM)(nil)
	_ state.Snapshotter = (*MultiMarkovTable)(nil)
	_ state.Snapshotter = (*MultiPPM)(nil)
)
