package core

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/trace"
)

func mtJmp(pc, target uint64) trace.Record {
	return trace.Record{PC: pc, Target: target, Class: trace.IndirectJmp, Taken: true, MT: true}
}

func condRec(pc, target uint64, taken bool) trace.Record {
	return trace.Record{PC: pc, Target: target, Class: trace.CondDirect, Taken: taken}
}

func TestEntriesBudget(t *testing.T) {
	// Order-10 stack: 2^1+...+2^10 = 2046 Markov entries + the order-0
	// component = 2047, the paper's ~2K budget.
	if got := PaperHyb().Entries(); got != 2047 {
		t.Errorf("Entries = %d, want 2047", got)
	}
	if got := New(Config{Order: 3, TargetBits: 10, FoldBits: 5}).Entries(); got != 2+4+8+1 {
		t.Errorf("order-3 Entries = %d, want 15", got)
	}
}

func TestNamesAndModes(t *testing.T) {
	if PaperHyb().Name() != "PPM-hyb" || PaperPIB().Name() != "PPM-PIB" || PaperHybBiased().Name() != "PPM-hyb-biased" {
		t.Error("mode names mismatch")
	}
	custom := New(Config{Name: "mine", Order: 4, TargetBits: 10, FoldBits: 5})
	if custom.Name() != "mine" {
		t.Error("custom name ignored")
	}
}

func TestConfigValidation(t *testing.T) {
	bads := []Config{
		{Order: 0, TargetBits: 10, FoldBits: 5},
		{Order: 30, TargetBits: 10, FoldBits: 5},
		{Order: 5, TargetBits: 0, FoldBits: 5},
		{Order: 5, TargetBits: 10, FoldBits: 0},
		{Order: 5, TargetBits: 10, FoldBits: 12},
	}
	for i, cfg := range bads {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestOrderZeroFallback(t *testing.T) {
	// The very first prediction has no valid Markov entries anywhere and
	// must abstain; after one update the order-0 component can answer for
	// a never-before-seen history.
	p := PaperPIB()
	if _, ok := p.Predict(0x1000); ok {
		t.Fatal("cold PPM predicted")
	}
	p.Update(0x1000, 0xAAAA)
	p.Observe(mtJmp(0x1000, 0xAAAA))
	// Push wild history so every per-order index moves off the trained
	// slots with high probability; order-0 still answers.
	for i := 0; i < 30; i++ {
		p.Observe(mtJmp(0x2000, uint64(0x9000+i*0x5554)))
	}
	got, ok := p.Predict(0x1000)
	if !ok {
		t.Fatal("no prediction despite order-0 component")
	}
	_ = got // the target may come from any component that aliased; ok suffices
}

func TestUpdateExclusionTrainsHigherOrders(t *testing.T) {
	p := New(Config{Order: 4, TargetBits: 10, FoldBits: 5, Mode: PIBOnly})
	// Establish a fixed history, then train one (history, target) pair.
	hist := []uint64{0x4444, 0x3330, 0x222c, 0x1118}
	for i := len(hist) - 1; i >= 0; i-- {
		p.Observe(mtJmp(0x1000, hist[i]))
	}
	p.Predict(0x1000)
	p.Update(0x1000, 0xBEEF) // chosen = -1 -> all components learn
	st := p.Stats()
	if st.Accesses[p.Order()+1] != 1 {
		t.Fatalf("first access not counted as no-prediction: %v", st.Accesses)
	}
	// Same history again: highest order must now answer.
	got, ok := p.Predict(0x1000)
	if !ok || got != 0xBEEF {
		t.Fatalf("Predict = (%#x,%v) after training", got, ok)
	}
	if p.Stats().Accesses[4] != 1 {
		t.Errorf("prediction not attributed to order 4: %v", p.Stats().Accesses)
	}
}

func TestComponentStatsTopOrderDominates(t *testing.T) {
	// Section 5: at least 98% of accesses land in the highest-order
	// component once warmed, because update exclusion always trains it.
	p := PaperPIB()
	targets := []uint64{0x140000f4, 0x14000128, 0x1400075c, 0x14000390, 0x14000a5c}
	for i := 0; i < 6000; i++ {
		tgt := targets[i%len(targets)]
		p.Predict(0x1000)
		p.Update(0x1000, tgt)
		p.Observe(mtJmp(0x1000, tgt))
	}
	st := p.Stats()
	var total uint64
	for _, a := range st.Accesses {
		total += a
	}
	top := st.Accesses[p.Order()]
	if float64(top)/float64(total) < 0.95 {
		t.Errorf("top-order access share = %.3f, want >= 0.95 (paper: >= 0.98)", float64(top)/float64(total))
	}
}

func TestHybridSelectionLearnsPB(t *testing.T) {
	// A branch whose target is determined by the preceding conditional
	// branch outcome (visible only in PB history) must be captured by the
	// hybrid but not by the PIB-only variant.
	run := func(p *PPM) float64 {
		const site = 0x12000400
		const condPC = 0x13000000
		const fillPC = 0x13000100
		targets := []uint64{0x14001000, 0x14003000}
		correct, total := 0, 0
		bitstream := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < 6000; i++ {
			bit := int(bitstream >> uint(i%64) & 1)
			if i%64 == 63 {
				bitstream = bitstream*6364136223846793005 + 1442695040888963407
			}
			// Quiet loop body: constant-outcome conditionals, then the
			// data-dependent one right before the dispatch, as in real
			// dispatch loops. The PB window therefore holds a small
			// recurrent context in which only the deciding bit varies.
			for j := 0; j < 8; j++ {
				p.Observe(condRec(fillPC+uint64(j)*0x10, fillPC+uint64(j)*0x10+4, false))
			}
			condTgt := uint64(condPC + 4)
			if bit == 1 {
				condTgt = condPC + 0x44
			}
			p.Observe(condRec(condPC, condTgt, bit == 1))
			want := targets[bit]
			got, ok := p.Predict(site)
			if i > 1000 {
				total++
				if ok && got == want {
					correct++
				}
			}
			p.Update(site, want)
			p.Observe(mtJmp(site, want))
		}
		return float64(correct) / float64(total)
	}
	hyb := run(PaperHyb())
	pib := run(PaperPIB())
	if hyb < 0.95 {
		t.Errorf("PPM-hyb accuracy on cond-driven branch = %.3f, want >= 0.95", hyb)
	}
	if pib > 0.8 {
		t.Errorf("PPM-PIB accuracy on cond-driven branch = %.3f — PIB history should not capture it", pib)
	}
}

func TestSelectionCounterFlipsToPB(t *testing.T) {
	p := PaperHyb()
	const site = 0x12000400
	// Mispredict repeatedly; the selection counter must leave the initial
	// Strongly-PIB state.
	for i := 0; i < 10; i++ {
		p.Predict(site)
		p.Update(site, uint64(0x14000000+i*0x5550))
		p.Observe(mtJmp(site, uint64(0x14000000+i*0x5550)))
	}
	e := p.BIU().Lookup(site)
	if e == nil {
		t.Fatal("BIU entry missing")
	}
	if e.Sel.Selected() != counter.PB {
		t.Errorf("selection counter state %s after sustained mispredictions, want a PB state",
			counter.StateName(e.Sel.State()))
	}
}

func TestPIBOnlyHasNoBIUSelection(t *testing.T) {
	p := PaperPIB()
	p.Predict(0x1000)
	p.Update(0x1000, 0x4000)
	p.Observe(mtJmp(0x1000, 0x4000))
	if p.BIU().Len() != 0 {
		t.Error("PPM-PIB allocated BIU selection entries")
	}
}

func TestLowSelectVariantWorks(t *testing.T) {
	cfg := DefaultConfig(PIBOnly)
	cfg.LowSelect = true
	p := New(cfg)
	targets := []uint64{0x140000f4, 0x14000128, 0x1400075c}
	correct, total := 0, 0
	for i := 0; i < 3000; i++ {
		tgt := targets[i%3]
		got, ok := p.Predict(0x1000)
		if i > 500 {
			total++
			if ok && got == tgt {
				correct++
			}
		}
		p.Update(0x1000, tgt)
		p.Observe(mtJmp(0x1000, tgt))
	}
	if acc := float64(correct) / float64(total); acc < 0.98 {
		t.Errorf("low-select accuracy = %.3f, want >= 0.98 (paper: little difference)", acc)
	}
}

func TestTaggedExtensionBlocksAliases(t *testing.T) {
	// Two branches with identical history: tagless entries are shared
	// (aliasing — the perl effect); tagged entries are not.
	run := func(tagged bool) (aAcc float64) {
		cfg := DefaultConfig(PIBOnly)
		cfg.Tagged = tagged
		p := New(cfg)
		pcA, pcB := uint64(0x12000040), uint64(0x12700880)
		correct, total := 0, 0
		for i := 0; i < 4000; i++ {
			// Keep global PIB history constant-ish: one shared warmup
			// target between executions so both branches see identical
			// contexts.
			p.Observe(mtJmp(0x12999000, 0x15000000))
			gotA, okA := p.Predict(pcA)
			p.Update(pcA, 0xAAAA0)
			p.Observe(mtJmp(pcA, 0xAAAA0))
			p.Observe(mtJmp(0x12999000, 0x15000000))
			_, _ = p.Predict(pcB)
			p.Update(pcB, 0xBBBB0)
			p.Observe(mtJmp(pcB, 0xBBBB0))
			if i > 500 {
				total++
				if okA && gotA == 0xAAAA0 {
					correct++
				}
			}
		}
		return float64(correct) / float64(total)
	}
	tagless := run(false)
	tagged := run(true)
	if tagged < 0.98 {
		t.Errorf("tagged PPM accuracy under aliasing = %.3f, want >= 0.98", tagged)
	}
	if tagless > tagged {
		t.Errorf("tagless (%.3f) outperformed tagged (%.3f) under forced aliasing", tagless, tagged)
	}
}

func TestConfidenceThresholdFallsThrough(t *testing.T) {
	cfg := DefaultConfig(PIBOnly)
	cfg.ConfidenceThreshold = 2
	p := New(cfg)
	// Fresh entries start with counter value 1 < 2, so the first re-visit
	// must fall past them to lower orders (or abstain) rather than use a
	// low-confidence entry.
	p.Predict(0x1000)
	p.Update(0x1000, 0x4000)
	p.Observe(mtJmp(0x1000, 0x4000))
	p.Predict(0x1000)
	st := p.Stats()
	if st.Accesses[p.Order()] != 0 {
		t.Error("low-confidence top-order entry supplied a prediction below threshold")
	}
}

func TestBoundedBIUEviction(t *testing.T) {
	cfg := DefaultConfig(Hybrid)
	cfg.BIULimit = 8
	p := New(cfg)
	for i := 0; i < 64; i++ {
		pc := uint64(0x12000000 + i*0x40)
		p.Predict(pc)
		p.Update(pc, 0x14000000)
		p.Observe(mtJmp(pc, 0x14000000))
	}
	if p.BIU().Len() != 8 {
		t.Errorf("bounded BIU length = %d, want 8", p.BIU().Len())
	}
	if p.BIU().Evictions() == 0 {
		t.Error("no evictions recorded")
	}
}

func TestReset(t *testing.T) {
	p := PaperHyb()
	for i := 0; i < 100; i++ {
		p.Predict(0x1000)
		p.Update(0x1000, uint64(0x14000000+i*0x40))
		p.Observe(mtJmp(0x1000, uint64(0x14000000+i*0x40)))
	}
	p.Reset()
	if _, ok := p.Predict(0x1000); ok {
		t.Error("prediction survived Reset")
	}
	st := p.Stats()
	for i, a := range st.Accesses {
		if i == p.Order()+1 {
			continue // the post-reset Predict above counts one abstention
		}
		if a != 0 {
			t.Errorf("stats survived Reset: order %d has %d accesses", i, a)
		}
	}
	if p.BIU().Len() != 1 { // re-created by the post-reset Predict
		t.Errorf("BIU after reset+1 predict: %d entries", p.BIU().Len())
	}
	for _, tab := range p.Tables() {
		if tab.Occupancy() != 0 {
			t.Errorf("order-%d table occupancy %d after Reset", tab.Order(), tab.Occupancy())
		}
	}
}

func TestMarkovTableOccupancy(t *testing.T) {
	m := NewMarkovTable(3, false)
	if m.Len() != 8 || m.Order() != 3 {
		t.Fatalf("geometry: len=%d order=%d", m.Len(), m.Order())
	}
	m.train(0, 0, 0x40)
	m.train(5, 0, 0x80)
	if m.Occupancy() != 2 {
		t.Errorf("occupancy = %d, want 2", m.Occupancy())
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical predictors fed the same stream must agree exactly.
	a, b := PaperHyb(), PaperHyb()
	state := uint64(12345)
	for i := 0; i < 2000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		pc := 0x12000000 + (state>>40)%8*0x40
		tgt := 0x14000000 + (state>>20&0xff)*0x40
		ga, oka := a.Predict(pc)
		gb, okb := b.Predict(pc)
		if ga != gb || oka != okb {
			t.Fatalf("divergence at step %d", i)
		}
		a.Update(pc, tgt)
		b.Update(pc, tgt)
		rec := mtJmp(pc, tgt)
		a.Observe(rec)
		b.Observe(rec)
	}
}
