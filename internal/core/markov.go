// Package core implements the paper's contribution: a Prediction-by-
// Partial-Matching (PPM) indirect branch target predictor. An order-m PPM
// predictor is a stack of m+1 Markov predictors; the order-j component is a
// tagless (optionally tagged) table of 2^j entries indexed by the SFSXS
// hash of the j most recent path-history targets (Figure 2). Each entry
// holds the most recently visited target for its merged Markov state, a
// valid bit (non-zero frequency count), and the 2-bit up/down counter that
// replaces the target only after two consecutive misses (Figure 3).
//
// The hybrid variants add the dynamic per-branch correlation selection of
// Figure 4: a BIU-resident 2-bit counter per branch picks between the PB
// (all-branch) and PIB (indirect-only) path history registers, following
// either of the Figure 5 state machines.
package core

import (
	"repro/internal/counter"
)

// markovEntry is one merged Markov state.
type markovEntry struct {
	valid  bool
	tag    uint32
	target uint64
	hyst   counter.Hysteresis
}

// MarkovTable is the order-j component: 2^order entries.
type MarkovTable struct {
	order   uint
	entries []markovEntry
	tagged  bool
}

// NewMarkovTable builds the order-j table with 2^order entries.
func NewMarkovTable(order uint, tagged bool) *MarkovTable {
	return &MarkovTable{
		order:   order,
		entries: make([]markovEntry, 1<<order),
		tagged:  tagged,
	}
}

// Order returns the Markov order of the table.
func (t *MarkovTable) Order() uint { return t.order }

// Len returns the entry count (2^order).
func (t *MarkovTable) Len() int { return len(t.entries) }

// lookup returns the entry at idx if it is valid and (when tagged) the tag
// matches; otherwise nil. The valid bit stands in for a non-zero frequency
// count of the underlying Markov state.
func (t *MarkovTable) lookup(idx uint64, tag uint32) *markovEntry {
	// The empty-table guard is dead (the constructor makes 1<<order >= 1
	// entries) but lets the compiler prove the masked index in-bounds and
	// drop the bounds check from the per-probe path.
	if len(t.entries) == 0 {
		return nil
	}
	e := &t.entries[idx&uint64(len(t.entries)-1)]
	if !e.valid {
		return nil
	}
	if t.tagged && e.tag != tag {
		return nil
	}
	return e
}

// train applies the update step to the entry at idx: allocate if invalid
// (or tag-conflicting in tagged mode), strengthen on a target hit, weaken
// and replace-after-two-misses otherwise.
func (t *MarkovTable) train(idx uint64, tag uint32, target uint64) {
	if len(t.entries) == 0 {
		return // dead guard; see lookup
	}
	e := &t.entries[idx&uint64(len(t.entries)-1)]
	if !e.valid || (t.tagged && e.tag != tag) {
		*e = markovEntry{valid: true, tag: tag, target: target, hyst: counter.NewHysteresis()}
		return
	}
	if e.target == target {
		e.hyst.OnHit()
		return
	}
	if e.hyst.OnMiss() {
		e.target = target
	}
}

// reset clears the table to power-up state.
func (t *MarkovTable) reset() {
	for i := range t.entries {
		t.entries[i] = markovEntry{}
	}
}

// Occupancy returns the number of valid entries, for table-pressure
// diagnostics.
func (t *MarkovTable) Occupancy() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
