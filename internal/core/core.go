package core
