// Package state implements the predictor-state snapshot subsystem: a
// compact, versioned binary format with byte-identical round-trip
// guarantees, used for live prediction sessions (internal/serve), warm-start
// simulation (cmd/experiments -warmstart) and the snapshot-at-every-cut
// differential checks (internal/check).
//
// # Format
//
// A snapshot is a 5-byte header followed by a flat sequence of sections:
//
//	snapshot := magic version section*
//	magic    := "PPMS"                        (4 bytes)
//	version  := 0x01                          (1 byte)
//	section  := id:uvarint len:u32le payload crc:u32le
//
// The CRC is CRC-32C (Castagnoli) over the payload bytes, so every section
// detects corruption independently. Payload values are varint-coded: U64 is
// an unsigned LEB128 varint, I64 its zigzag form, U8/Bool single bytes
// (Bool strictly 0 or 1, keeping re-encoding byte-identical). Section ids
// are a package-level registry (Sec*), one per component type; a component
// always writes its configuration fingerprint first, so Restore into a
// predictor built from a different configuration fails with ErrMismatch
// instead of silently misinterpreting table entries.
//
// Sections never nest. Composite predictors concatenate their components'
// sections in a fixed order — a DualPath snapshot is its selector section
// followed by the short and long GAp snapshots — and Restore consumes them
// in the same order.
//
// # Round-trip guarantees
//
// Snapshot is deterministic: snapshotting the same logical predictor state
// twice yields identical bytes (map-backed structures serialize in
// insertion order, never map order). Restore rebuilds state in place into
// an identically-configured predictor, reusing its backing arrays, so a
// restore followed by a snapshot reproduces the input bytes exactly and the
// steady-state snapshot/restore cycle does not allocate.
package state

import (
	"errors"
	"fmt"
)

// Version is the current snapshot format version, written after the magic.
const Version = 1

// magic identifies a predictor-state snapshot.
const magic = "PPMS"

// ErrCorrupt reports malformed snapshot bytes: bad magic, unknown version,
// truncated framing, CRC mismatch, or out-of-range values. Errors returned
// by Restore wrap ErrCorrupt with detail; test with errors.Is.
var ErrCorrupt = errors.New("state: corrupt snapshot")

// ErrMismatch reports a structurally valid snapshot whose configuration
// fingerprint does not match the predictor it is being restored into.
var ErrMismatch = errors.New("state: snapshot does not match predictor configuration")

// corruptf wraps ErrCorrupt with formatted detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// mismatchf wraps ErrMismatch with formatted detail.
func mismatchf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrMismatch}, args...)...)
}

// Mismatchf builds an ErrMismatch with formatted detail, for component
// Restore implementations validating their configuration fingerprints.
func Mismatchf(format string, args ...any) error { return mismatchf(format, args...) }

// Corruptf builds an ErrCorrupt with formatted detail, for component
// Restore implementations validating decoded values.
func Corruptf(format string, args ...any) error { return corruptf(format, args...) }

// Snapshotter is implemented by every predictor (and predictor component)
// whose state can be captured and rebuilt. Snapshot appends the component's
// sections to w; Restore consumes the same sections from r, rebuilding
// state in place into the receiver's existing backing storage, and reports
// ErrCorrupt/ErrMismatch wrapped errors on invalid input. A predictor is
// only snapshotted at a record boundary (after Update and Observe, before
// the next Predict), so transient per-prediction scratch is never encoded.
type Snapshotter interface {
	Snapshot(w *Writer)
	Restore(r *Reader) error
}

// Section ids, one per component type. The registry is centralized so the
// on-wire ids stay unique across packages and the format spec in
// internal/README.md can enumerate them.
const (
	SecMarkov      uint64 = 1  // core.MarkovTable
	SecPHR         uint64 = 2  // history.PHR
	SecBIU         uint64 = 3  // predictor.BIU
	SecPPM         uint64 = 4  // core.PPM scalar state
	SecBTB         uint64 = 5  // btb.BTB
	SecGAp         uint64 = 6  // twolevel.GAp scalar state
	SecPHT         uint64 = 7  // twolevel.PHT
	SecTargetCache uint64 = 8  // twolevel.TargetCache
	SecDualPath    uint64 = 9  // twolevel.DualPath selectors
	SecCascade     uint64 = 10 // cascade.Cascade filter + stats
	SecRAS         uint64 = 11 // ras.Stack
	SecFiltered    uint64 = 12 // core.FilteredPPM filter + stats
	SecMultiPPM    uint64 = 13 // core.MultiPPM scalar state
	SecMultiMarkov uint64 = 14 // core.MultiMarkovTable
	SecCBT         uint64 = 15 // cbt.CBT
	SecEngine      uint64 = 16 // sim.Engine accounting + counters
	SecITTAGE      uint64 = 17 // ittage.ITTAGE base + tagged banks
)

// Save serializes s into w (resetting it first) and returns the snapshot
// bytes. The returned slice aliases the writer's buffer and is valid until
// the writer's next use; callers that outlive that must copy.
func Save(s Snapshotter, w *Writer) []byte {
	w.Reset()
	w.buf = append(w.buf, magic...)
	w.buf = append(w.buf, Version)
	s.Snapshot(w)
	return w.buf
}

// SaveBytes is Save with a throwaway writer, for tools and tests.
func SaveBytes(s Snapshotter) []byte {
	var w Writer
	return Save(s, &w)
}

// Load restores s from snapshot bytes using r as the decoding cursor. The
// whole input must be consumed: trailing bytes are corruption.
func Load(s Snapshotter, r *Reader, data []byte) error {
	r.reset(data)
	if len(data) < len(magic)+1 {
		return corruptf("short header: %d bytes", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return corruptf("bad magic %q", data[:len(magic)])
	}
	if v := data[len(magic)]; v != Version {
		return corruptf("unsupported version %d (have %d)", v, Version)
	}
	r.pos = len(magic) + 1
	if err := s.Restore(r); err != nil {
		return err
	}
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.data) {
		return corruptf("%d trailing bytes after last section", len(r.data)-r.pos)
	}
	return nil
}

// LoadBytes is Load with a throwaway reader, for tools and tests.
func LoadBytes(s Snapshotter, data []byte) error {
	var r Reader
	return Load(s, &r, data)
}

// SizeOf returns the serialized size of s in bytes — the live-state cost a
// session accounts against its memory budget. It snapshots into a pooled
// scratch buffer, so steady-state calls do not allocate.
func SizeOf(s Snapshotter) int {
	w := sizingPool.Writer()
	n := len(Save(s, w))
	sizingPool.PutWriter(w)
	return n
}

// sizingPool backs SizeOf.
var sizingPool = NewPool()
