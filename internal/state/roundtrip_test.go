package state_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/bench"
	"repro/internal/cbt"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/state"
)

// builders enumerates every snapshot-capable predictor construction: the
// nine bench families plus the extension variants.
func builders() map[string]func() predictor.IndirectPredictor {
	m := map[string]func() predictor.IndirectPredictor{}
	for _, name := range bench.PredictorNames() {
		name := name
		m[name] = func() predictor.IndirectPredictor {
			p, ok := bench.NewPredictor(name)
			if !ok {
				panic("unknown family " + name)
			}
			return p
		}
	}
	m["PPM-filtered"] = func() predictor.IndirectPredictor { return core.PaperFiltered() }
	m["PPM-multi"] = func() predictor.IndirectPredictor { return core.NewMultiTarget(10, 4) }
	m["CBT"] = func() predictor.IndirectPredictor {
		return cbt.New(cbt.Config{Entries: 2048, Availability: 0.5, Seed: 0xCB7})
	}
	return m
}

// TestRoundTripFamilies pins the tentpole guarantee for every family: run a
// prefix, snapshot, restore into a fresh predictor, continue both over the
// suffix, and require byte-identical end states (which subsumes identical
// predictions — any divergent outcome lands in the serialized counters).
func TestRoundTripFamilies(t *testing.T) {
	recs := check.RandomTrace(0x57A7E, 4000)
	cut := len(recs) / 2
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			cont := sim.New(build())
			cont.ProcessAll(recs[:cut])

			snap := append([]byte(nil), state.SaveBytes(cont)...)
			restored := sim.New(build())
			if err := state.LoadBytes(restored, snap); err != nil {
				t.Fatalf("restore: %v", err)
			}

			// Re-snapshot of the restored engine must reproduce the input.
			if got := state.SaveBytes(restored); !bytes.Equal(got, snap) {
				t.Fatalf("restored re-snapshot differs: %d vs %d bytes", len(got), len(snap))
			}

			cont.ProcessAll(recs[cut:])
			restored.ProcessAll(recs[cut:])
			a, b := state.SaveBytes(cont), state.SaveBytes(restored)
			if !bytes.Equal(a, b) {
				t.Fatalf("continuation diverged after restore: end snapshots %d vs %d bytes", len(a), len(b))
			}
			ca, cb := cont.Counters()[0], restored.Counters()[0]
			if ca != cb {
				t.Fatalf("counters diverged: %+v vs %+v", ca, cb)
			}
		})
	}
}

// TestRestoreIntoWarmPredictor proves restore rebuilds state in place: a
// predictor that has already seen a different trace must be indistinguishable
// from a cold restore after loading the same snapshot.
func TestRestoreIntoWarmPredictor(t *testing.T) {
	recs := check.RandomTrace(0xBEEF, 3000)
	other := check.RandomTrace(0xF00D, 3000)
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			src := sim.New(build())
			src.ProcessAll(recs)
			snap := append([]byte(nil), state.SaveBytes(src)...)

			warm := sim.New(build())
			warm.ProcessAll(other) // pre-existing state the restore must fully displace
			if err := state.LoadBytes(warm, snap); err != nil {
				t.Fatalf("restore into warm predictor: %v", err)
			}
			if got := state.SaveBytes(warm); !bytes.Equal(got, snap) {
				t.Fatalf("warm restore left residue: re-snapshot %d vs %d bytes", len(got), len(snap))
			}
		})
	}
}

// TestRestoreMismatch requires a typed ErrMismatch when a snapshot is
// loaded into a differently-configured predictor.
func TestRestoreMismatch(t *testing.T) {
	hyb := core.PaperHyb()
	snap := state.SaveBytes(hyb)
	if err := state.LoadBytes(core.PaperPIB(), snap); !errors.Is(err, state.ErrMismatch) {
		t.Fatalf("cross-mode restore: got %v, want ErrMismatch", err)
	}
	if err := state.LoadBytes(core.PaperHybBiased(), snap); !errors.Is(err, state.ErrMismatch) {
		t.Fatalf("cross-mode restore: got %v, want ErrMismatch", err)
	}
}

// TestCorruptSnapshots requires typed errors — never a panic — for every
// single-byte corruption and every truncation of a real snapshot.
func TestCorruptSnapshots(t *testing.T) {
	e := sim.New(core.PaperHyb())
	e.ProcessAll(check.RandomTrace(0xC0DE, 1500))
	snap := append([]byte(nil), state.SaveBytes(e)...)

	check1 := func(data []byte, what string) {
		t.Helper()
		fresh := sim.New(core.PaperHyb())
		err := state.LoadBytes(fresh, data)
		if err == nil {
			t.Fatalf("%s: corruption accepted", what)
		}
		if !errors.Is(err, state.ErrCorrupt) && !errors.Is(err, state.ErrMismatch) {
			t.Fatalf("%s: untyped error %v", what, err)
		}
	}

	for i := 0; i < len(snap); i += 37 { // stride keeps the sweep fast but hits every region
		mut := append([]byte(nil), snap...)
		mut[i] ^= 0x41
		fresh := sim.New(core.PaperHyb())
		if err := state.LoadBytes(fresh, mut); err != nil &&
			!errors.Is(err, state.ErrCorrupt) && !errors.Is(err, state.ErrMismatch) {
			t.Fatalf("flip at %d: untyped error %v", i, err)
		}
		// A flip inside a payload is caught by the section CRC; flips in
		// the CRC itself or the framing are caught by framing checks. Either
		// way no flip may be silently accepted AND corrupt later sections.
	}
	for _, n := range []int{0, 3, 4, 5, len(snap) / 3, len(snap) - 1} {
		check1(snap[:n], "truncation")
	}
	check1(append(append([]byte(nil), snap...), 0xFF), "trailing byte")
	check1([]byte("XXXX\x01"), "bad magic")
	check1([]byte("PPMS\x02"), "bad version")
}

// TestSizeOf sanity-checks the budget-accounting helper: positive, stable
// across calls, and equal to the serialized length.
func TestSizeOf(t *testing.T) {
	p := core.PaperHyb()
	e := sim.New(p)
	e.ProcessAll(check.RandomTrace(1, 2000))
	want := len(state.SaveBytes(p))
	if got := state.SizeOf(p); got != want || got == 0 {
		t.Fatalf("SizeOf = %d, want %d (non-zero)", got, want)
	}
	if again := state.SizeOf(p); again != want {
		t.Fatalf("SizeOf unstable: %d then %d", want, again)
	}
}

// TestSnapshotDeterministic requires repeated snapshots of one state to be
// byte-identical — the property that lets serve hash or dedupe session
// state and lets the checks compare snapshots directly.
func TestSnapshotDeterministic(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			e := sim.New(build())
			e.ProcessAll(check.RandomTrace(0xD0, 2500))
			a := append([]byte(nil), state.SaveBytes(e)...)
			if b := state.SaveBytes(e); !bytes.Equal(a, b) {
				t.Fatalf("snapshot not deterministic: %d vs %d bytes", len(a), len(b))
			}
		})
	}
}
