package state_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/race"
	"repro/internal/sim"
	"repro/internal/state"
)

// TestPooledSnapshotRestoreZeroAlloc pins the pooling contract the serving
// layer relies on: once a pooled writer has grown its buffer and a warm
// same-shape engine exists to restore into, a full save/restore cycle
// through the pool — for every snapshot-capable family — must not allocate.
func TestPooledSnapshotRestoreZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc counts asserted in the non-race run")
	}
	recs := check.RandomTrace(0xA110C, 3000)
	pool := state.NewPool()
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			src := sim.New(build())
			src.ProcessAll(recs)
			dst := sim.New(build())

			// Warm-up: grow the pooled buffer and fault in dst's tables.
			w := pool.Writer()
			r := pool.Reader()
			if err := state.Load(dst, r, state.Save(src, w)); err != nil {
				t.Fatalf("warm-up restore: %v", err)
			}
			pool.PutReader(r)
			pool.PutWriter(w)

			avg := testing.AllocsPerRun(20, func() {
				w := pool.Writer()
				r := pool.Reader()
				if err := state.Load(dst, r, state.Save(src, w)); err != nil {
					t.Fatalf("restore: %v", err)
				}
				pool.PutReader(r)
				pool.PutWriter(w)
			})
			if avg != 0 {
				t.Errorf("%s: %.2f allocs per pooled save/restore cycle, want 0", name, avg)
			}
		})
	}
}

// TestRestoredEnginePredictZeroAlloc pins the live-session acceptance
// criterion: the steady-state predict path on an engine restored from a
// snapshot allocates nothing, so a warm-started session serves predictions
// with the same hot-path purity as one that trained in place.
func TestRestoredEnginePredictZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc counts asserted in the non-race run")
	}
	recs := check.RandomTrace(0x5E5510, 3000)
	cut := len(recs) / 2
	src := sim.New(core.PaperHyb())
	src.ProcessAll(recs[:cut])

	restored := sim.New(core.PaperHyb())
	if err := state.LoadBytes(restored, state.SaveBytes(src)); err != nil {
		t.Fatalf("restore: %v", err)
	}
	tail := recs[cut:]
	for _, r := range tail { // warm-up: first-touch fills may allocate
		restored.ProcessPredicted(r)
	}
	avg := testing.AllocsPerRun(20, func() {
		for _, r := range tail {
			restored.ProcessPredicted(r)
		}
	})
	if avg != 0 {
		t.Errorf("restored engine: %.2f allocs per steady-state predict pass, want 0", avg)
	}
}
