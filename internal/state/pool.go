package state

import "sync"

// Pool recycles Writers (and their grown buffers) and Readers across
// snapshot/restore cycles. Sessions in internal/serve snapshot through a
// shared Pool so concurrent GET/PUT state traffic reuses backing arrays
// instead of allocating a fresh buffer per request; SizeOf accounting runs
// through one as well.
type Pool struct {
	writers sync.Pool
	readers sync.Pool
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	p := &Pool{}
	p.writers.New = func() any { return NewWriter() }
	p.readers.New = func() any { return NewReader() }
	return p
}

// Writer returns a reset writer from the pool.
func (p *Pool) Writer() *Writer {
	w := p.writers.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns a writer to the pool. The caller must not retain slices
// returned by the writer's Bytes (or Save) past this call.
func (p *Pool) PutWriter(w *Writer) { p.writers.Put(w) }

// Reader returns a reader from the pool, for use with Load.
func (p *Pool) Reader() *Reader { return p.readers.Get().(*Reader) }

// PutReader returns a reader to the pool. It drops the reader's reference
// to the last input so pooled readers do not pin snapshot bytes alive.
func (p *Pool) PutReader(r *Reader) {
	r.reset(nil)
	p.readers.Put(r)
}
