package state_test

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"repro/internal/check"
	"repro/internal/sim"
	"repro/internal/state"
)

// fuzzFamilies is the deterministic family order the fuzzer indexes into
// (builders() is a map, so its iteration order cannot seed a corpus).
func fuzzFamilies() []string {
	m := builders()
	names := make([]string, 0, len(m))
	for name := range m { //lint:sorted collected then sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FuzzStateRoundTrip drives the snapshot format from both sides. The happy
// path: train a randomly chosen family on a random record prefix, snapshot,
// restore into a fresh predictor, and require the restored engine to be
// indistinguishable — re-snapshot bytes, per-dispatch predictions over a
// continuation, and final snapshots all identical. The adversarial path:
// single-byte corruption and truncation of the same snapshot must yield the
// typed ErrCorrupt/ErrMismatch, never a panic and never an untyped error.
func FuzzStateRoundTrip(f *testing.F) {
	fams := fuzzFamilies()
	f.Add(uint8(0), uint64(1), uint16(50), uint32(0), byte(0))
	f.Add(uint8(3), uint64(0xBEEF), uint16(400), uint32(17), byte(0x41))
	f.Add(uint8(7), uint64(42), uint16(1), uint32(9999), byte(0xFF))
	f.Add(uint8(11), uint64(0x57A7E), uint16(250), uint32(4), byte(1))
	f.Fuzz(func(t *testing.T, famIdx uint8, seed uint64, n uint16, mutPos uint32, mutVal byte) {
		fam := fams[int(famIdx)%len(fams)]
		build := builders()[fam]
		prefix := check.RandomRecords(seed, 1+int(n)%500)
		tail := check.RandomRecords(seed^0x9E3779B9, 200)

		src := sim.New(build())
		src.ProcessAll(prefix)
		snap := append([]byte(nil), state.SaveBytes(src)...)

		restored := sim.New(build())
		if err := state.LoadBytes(restored, snap); err != nil {
			t.Fatalf("%s: restore of a fresh snapshot: %v", fam, err)
		}
		if got := state.SaveBytes(restored); !bytes.Equal(got, snap) {
			t.Fatalf("%s: restored re-snapshot differs: %d vs %d bytes", fam, len(got), len(snap))
		}
		for i, rec := range tail {
			a, adisp := src.ProcessPredicted(rec)
			b, bdisp := restored.ProcessPredicted(rec)
			if adisp != bdisp || a != b {
				t.Fatalf("%s: continuation record %d: original %+v/%v vs restored %+v/%v",
					fam, i, a, adisp, b, bdisp)
			}
		}
		if !bytes.Equal(state.SaveBytes(src), state.SaveBytes(restored)) {
			t.Fatalf("%s: final snapshots diverged after continuation", fam)
		}

		// Adversarial side: every mutation must fail typed or (for a no-op
		// XOR) behave exactly like the pristine bytes — and never panic.
		if mutVal != 0 {
			mut := append([]byte(nil), snap...)
			mut[int(mutPos)%len(mut)] ^= mutVal
			if err := state.LoadBytes(sim.New(build()), mut); err != nil &&
				!errors.Is(err, state.ErrCorrupt) && !errors.Is(err, state.ErrMismatch) {
				t.Fatalf("%s: flip at %d: untyped error %v", fam, int(mutPos)%len(mut), err)
			}
		}
		if cut := int(mutPos) % len(snap); cut < len(snap) {
			err := state.LoadBytes(sim.New(build()), snap[:cut])
			if err == nil {
				t.Fatalf("%s: truncation to %d bytes accepted", fam, cut)
			}
			if !errors.Is(err, state.ErrCorrupt) && !errors.Is(err, state.ErrMismatch) {
				t.Fatalf("%s: truncation to %d bytes: untyped error %v", fam, cut, err)
			}
		}
	})
}
