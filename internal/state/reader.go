package state

import (
	"encoding/binary"
	"hash/crc32"
)

// Reader decodes snapshot sections. Errors are sticky: after the first
// malformed value every subsequent read returns zero and Err reports the
// failure, so Restore implementations can decode a whole section and check
// once. A Reader never panics on corrupt input; every length and value is
// bounds-checked against the section framing.
type Reader struct {
	data []byte
	pos  int
	// secEnd is the payload end of the open section; -1 when none is open.
	secEnd int
	err    error
}

// NewReader returns an empty reader; Load binds it to snapshot bytes.
func NewReader() *Reader { return &Reader{secEnd: -1} }

// reset binds the reader to a new input.
func (r *Reader) reset(data []byte) {
	r.data = data
	r.pos = 0
	r.secEnd = -1
	r.err = nil
}

// Err returns the sticky decoding error, if any.
func (r *Reader) Err() error { return r.err }

// fail records the first error and poisons subsequent reads.
func (r *Reader) fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return r.err
}

// Begin opens the next section and verifies it carries the expected id,
// that its framing fits the input, and that the payload CRC matches.
func (r *Reader) Begin(id uint64) error {
	if r.err != nil {
		return r.err
	}
	if r.secEnd >= 0 {
		return r.fail(corruptf("section %d opened inside an unconsumed section", id))
	}
	got, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return r.fail(corruptf("truncated section id at offset %d", r.pos))
	}
	r.pos += n
	if got != id {
		// A cleanly framed but different section id means the snapshot was
		// written by a different component layout — a configuration
		// mismatch, not damaged bytes.
		return r.fail(mismatchf("section id %d where %d expected at offset %d", got, id, r.pos-n))
	}
	if len(r.data)-r.pos < 4 {
		return r.fail(corruptf("truncated section length at offset %d", r.pos))
	}
	length := int(binary.LittleEndian.Uint32(r.data[r.pos:]))
	r.pos += 4
	if len(r.data)-r.pos < length+4 {
		return r.fail(corruptf("section %d: %d payload bytes framed, %d available", id, length, len(r.data)-r.pos))
	}
	payload := r.data[r.pos : r.pos+length]
	want := binary.LittleEndian.Uint32(r.data[r.pos+length:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return r.fail(corruptf("section %d: CRC %08x, want %08x", id, got, want))
	}
	r.secEnd = r.pos + length
	return nil
}

// End closes the open section, requiring the payload to have been consumed
// exactly — leftover bytes mean the decoder and encoder disagree about the
// section's shape, which is corruption, not slack.
func (r *Reader) End() error {
	if r.err != nil {
		return r.err
	}
	if r.secEnd < 0 {
		return r.fail(corruptf("End without an open section at offset %d", r.pos))
	}
	if r.pos != r.secEnd {
		return r.fail(corruptf("%d unconsumed payload bytes at section end", r.secEnd-r.pos))
	}
	r.pos += 4 // CRC, verified by Begin
	r.secEnd = -1
	return nil
}

// U64 decodes an unsigned varint from the open section.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.secEnd < 0 {
		r.fail(corruptf("value read outside a section at offset %d", r.pos))
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:r.secEnd])
	if n <= 0 {
		r.fail(corruptf("truncated varint at offset %d", r.pos))
		return 0
	}
	r.pos += n
	return v
}

// I64 decodes a zigzag-coded signed varint from the open section.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	if r.secEnd < 0 {
		r.fail(corruptf("value read outside a section at offset %d", r.pos))
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:r.secEnd])
	if n <= 0 {
		r.fail(corruptf("truncated varint at offset %d", r.pos))
		return 0
	}
	r.pos += n
	return v
}

// U8 decodes a single byte from the open section.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.secEnd < 0 || r.pos >= r.secEnd {
		r.fail(corruptf("truncated byte at offset %d", r.pos))
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

// Bool decodes a strict 0/1 byte; any other value is corruption, keeping
// the decode→re-encode cycle byte-identical.
func (r *Reader) Bool() bool {
	v := r.U8()
	if r.err != nil {
		return false
	}
	if v > 1 {
		r.fail(corruptf("boolean byte %d at offset %d", v, r.pos-1))
		return false
	}
	return v == 1
}
