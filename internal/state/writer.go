package state

import (
	"encoding/binary"
	"hash/crc32"
)

// castagnoli is the per-section CRC polynomial table, computed once.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer serializes snapshot sections into a growing buffer. The zero value
// is ready to use; reusing one writer across snapshots (directly or through
// a Pool) keeps the steady-state snapshot path allocation-free once the
// buffer has grown to the working-set size.
type Writer struct {
	buf []byte
	// lenAt is the offset of the open section's 4-byte length placeholder;
	// -1 when no section is open.
	lenAt int
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{lenAt: -1} }

// Reset discards contents, keeping the buffer capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.lenAt = -1
}

// Bytes returns the serialized snapshot so far. The slice aliases the
// writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Begin opens a section with the given registry id. Panics if a section is
// already open: sections never nest, and unbalanced Begin/End pairs are a
// programming error in a Snapshot implementation, not an input condition.
func (w *Writer) Begin(id uint64) {
	if w.lenAt >= 0 {
		panic("state: Begin inside an open section")
	}
	w.buf = binary.AppendUvarint(w.buf, id)
	w.lenAt = len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0) // length placeholder, patched by End
}

// End closes the open section, patching its length and appending the
// payload CRC. Panics if no section is open (unbalanced Begin/End pairs are
// a programming error in a Snapshot implementation).
func (w *Writer) End() {
	if w.lenAt < 0 {
		panic("state: End without Begin")
	}
	payload := w.buf[w.lenAt+4:]
	binary.LittleEndian.PutUint32(w.buf[w.lenAt:], uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.Checksum(payload, castagnoli))
	w.lenAt = -1
}

// U64 appends an unsigned varint.
func (w *Writer) U64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// I64 appends a zigzag-coded signed varint.
func (w *Writer) I64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// U8 appends a single byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a strict 0/1 byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}
