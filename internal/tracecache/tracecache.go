// Package tracecache materializes synthetic benchmark traces at most once
// per process. The experiment harness is a grid of analyses over the same
// 14-run suite, and before this cache existed every analysis regenerated
// every trace from scratch; the cache keys each workload.Config by a
// fingerprint (name, input, seed, events and the scalar shape fields) and
// hands all callers the same immutable []trace.Record and Summary.
//
// Entries are held under a configurable memory budget with LRU eviction.
// An evicted entry is not an error: the next Get simply regenerates it —
// generation is deterministic, so cache behaviour can never change results,
// only wall-clock time.
//
// The cache is safe for concurrent use. Concurrent misses on the same key
// generate the trace once; latecomers block until it is ready. Returned
// slices are shared across callers and MUST be treated as immutable.
package tracecache

import (
	"fmt"
	"sync"
	"unsafe"

	"repro/internal/trace"
	"repro/internal/workload"
)

// recordBytes is the in-memory footprint of one trace.Record, used for
// budget accounting.
const recordBytes = int64(unsafe.Sizeof(trace.Record{}))

// Stats counts cache traffic since construction. Generated counts actual
// trace syntheses; with caching enabled Generated == Misses, and the
// experiment harness asserts Generated stays at one per suite run.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Generated uint64
	Evicted   uint64
	// Oversize counts traces larger than the whole budget: they are served
	// to their waiters but never become resident (see Get).
	Oversize uint64
	// Bytes is the total resident footprint: record storage plus, for
	// entries whose columnar form has been materialized by GetBlocks, the
	// block storage under the columnar size model (trace.BlocksBytes).
	Bytes int64
	// BlockBytes is the columnar portion of Bytes: what the resident
	// pre-decoded blocks cost on top of the record slices.
	BlockBytes int64
	Entries    int
}

func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d generated=%d evicted=%d oversize=%d entries=%d bytes=%d blockbytes=%d",
		s.Hits, s.Misses, s.Generated, s.Evicted, s.Oversize, s.Entries, s.Bytes, s.BlockBytes)
}

// entry is one cached trace. recs and sum are written exactly once, before
// ready is closed; waiters must receive on ready before reading them.
type entry struct {
	key   string
	recs  []trace.Record
	sum   workload.Summary
	bytes int64 // accounted footprint: records, plus blocks once attached
	ready chan struct{}

	// blocks is the pre-decoded columnar form, converted lazily by the
	// first GetBlocks on the entry. blocksReady is nil until a caller
	// claims the conversion; it is closed with blocks already set, so
	// waiters receive and then read blocks. blockBytes is the columnar
	// portion of bytes, tracked separately so eviction can settle the
	// Stats.BlockBytes ledger.
	blocks      []trace.Block
	blocksReady chan struct{}
	blockBytes  int64

	// LRU list links; nil/nil when unlinked (evicted or generating).
	prev, next *entry
}

// Cache holds generated traces under a memory budget.
type Cache struct {
	mu       sync.Mutex
	budget   int64 // bytes; 0 means unlimited
	disabled bool
	entries  map[string]*entry
	// LRU doubly-linked list with sentinel-free ends: head is most
	// recently used, tail is the eviction candidate.
	head, tail *entry
	stats      Stats
}

// New returns a cache bounded to budgetBytes of record storage; a budget of
// 0 (or negative) is unlimited.
func New(budgetBytes int64) *Cache {
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	return &Cache{budget: budgetBytes, entries: make(map[string]*entry)}
}

// Disabled returns a cache that never retains anything: every Get
// regenerates the trace. It preserves the pre-cache behaviour (and cost) of
// the experiment harness, which the benchmark snapshot uses as its serial
// baseline.
func Disabled() *Cache {
	return &Cache{disabled: true, entries: make(map[string]*entry)}
}

// Fingerprint derives the cache key of a Config from its identifying and
// shape fields. Site behaviours are included via their printed concrete
// values, so two configs sharing a name and seed but differing in any site
// spec hash apart.
func Fingerprint(cfg workload.Config) string {
	return fmt.Sprintf("%s|%s|%#x|%d|%d|%d|%g|%g|%d|%g|%g|%t|%g|%d|%g|%d|%#v",
		cfg.Name, cfg.Input, cfg.Seed, cfg.Events,
		cfg.CondPerEvent, cfg.CondSites, cfg.CondNoise, cfg.CondTakenBias,
		cfg.CondPatternBits, cfg.STRate, cfg.CallRate,
		cfg.ChainSites, cfg.ChainNoise, cfg.ChainOrder,
		cfg.GapMean, cfg.HistoryDepth, cfg.Sites)
}

// Get returns cfg's records and summary, generating them on first use (or
// after eviction) and otherwise returning the shared cached copy. The
// returned slice is shared: callers must not modify it.
func (c *Cache) Get(cfg workload.Config) ([]trace.Record, workload.Summary) {
	if c.disabled {
		recs, sum := generate(cfg)
		c.mu.Lock()
		c.stats.Misses++
		c.stats.Generated++
		c.mu.Unlock()
		return recs, sum
	}

	e := c.getEntry(Fingerprint(cfg), cfg)
	<-e.ready
	return e.recs, e.sum
}

// getEntry returns the live entry for key, generating the records on a
// miss. The caller must receive on the returned entry's ready channel
// before reading recs/sum. Accounting settles before ready closes, so once
// a waiter is released the entry is either resident (mapped, linked,
// counted in Stats.Bytes) or already forgotten (oversize) — an invariant
// GetBlocks relies on when it attaches block storage to the entry later.
func (c *Cache) getEntry(key string, cfg workload.Config) *entry {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		if e.prev != nil || e.next != nil || c.head == e {
			c.unlink(e)
			c.pushFront(e)
		}
		c.mu.Unlock()
		return e
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.stats.Misses++
	c.stats.Generated++
	c.mu.Unlock()

	e.recs, e.sum = generate(cfg)
	e.bytes = int64(cap(e.recs)) * recordBytes

	c.mu.Lock()
	// A budget pass triggered by another insert may have dropped the entry
	// while it was generating; only a still-mapped entry joins the LRU
	// list and the byte accounting.
	if c.entries[key] == e {
		if c.budget > 0 && e.bytes > c.budget {
			// The trace alone exceeds the whole budget. Making it resident
			// would force evictOver to flush every smaller entry first and
			// then evict the newcomer itself on the next insert — thrashing
			// the cache without the big trace ever being a useful resident.
			// Serve it to the waiters blocked on e.ready and forget it; it
			// never enters the LRU list or the byte accounting.
			delete(c.entries, key)
			c.stats.Oversize++
		} else {
			c.stats.Bytes += e.bytes
			c.pushFront(e)
			c.evictOver()
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return e
}

// GetBlocks returns cfg's trace in pre-decoded columnar form, plus its
// summary. The blocks are converted from the cached records on first use
// and then shared: re-simulation through the block engine never re-decodes
// a trace the cache already holds. Like Get's record slices, the returned
// blocks are shared across callers and MUST be treated as immutable.
//
// Block storage joins the owning entry's budget accounting under the
// columnar size model (trace.BlocksBytes), so a trace cached in both forms
// is charged for both; if the combined footprint exceeds the whole budget
// the entry is served to its waiters and forgotten, as Get does for
// oversize record sets.
func (c *Cache) GetBlocks(cfg workload.Config) ([]trace.Block, workload.Summary) {
	if c.disabled {
		recs, sum := generate(cfg)
		c.mu.Lock()
		c.stats.Misses++
		c.stats.Generated++
		c.mu.Unlock()
		return trace.Blocks(recs), sum
	}

	key := Fingerprint(cfg)
	e := c.getEntry(key, cfg)
	<-e.ready

	c.mu.Lock()
	if ready := e.blocksReady; ready != nil {
		// Another caller owns (or finished) the conversion.
		c.mu.Unlock()
		<-ready
		return e.blocks, e.sum
	}
	ready := make(chan struct{})
	e.blocksReady = ready
	c.mu.Unlock()

	blks := trace.Blocks(e.recs)
	bb := trace.BlocksBytes(blks)
	e.blocks = blks
	e.blockBytes = bb
	close(ready)

	c.mu.Lock()
	// Only an entry still mapped (i.e. still resident — getEntry settles
	// accounting before ready closes) carries the block storage into the
	// ledger; an entry evicted while converting just serves its waiters.
	if c.entries[key] == e {
		if c.budget > 0 && e.bytes+bb > c.budget {
			c.unlink(e)
			delete(c.entries, key)
			c.stats.Bytes -= e.bytes
			c.stats.Oversize++
		} else {
			e.bytes += bb
			c.stats.Bytes += bb
			c.stats.BlockBytes += bb
			c.evictOver()
		}
	}
	c.mu.Unlock()
	return blks, e.sum
}

// generate materializes the config into memory. The slack trim matters:
// Records preallocates a worst-case capacity (its no-reallocation
// guarantee), and caching that slack would make the budget accounting pay
// for records that were never emitted.
func generate(cfg workload.Config) ([]trace.Record, workload.Summary) {
	recs, sum := cfg.Records()
	if cap(recs)-len(recs) > len(recs)/8 {
		trimmed := make([]trace.Record, len(recs))
		copy(trimmed, recs)
		recs = trimmed
	}
	return recs, sum
}

// evictOver drops least-recently-used ready entries until the budget is
// met. Entries still generating are not on the list and cannot be chosen.
// Callers hold c.mu.
func (c *Cache) evictOver() {
	if c.budget <= 0 {
		return
	}
	for c.stats.Bytes > c.budget && c.tail != nil {
		e := c.tail
		c.unlink(e)
		delete(c.entries, e.key)
		c.stats.Bytes -= e.bytes
		c.stats.BlockBytes -= e.blockBytes
		c.stats.Evicted++
	}
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// pushFront links e as most recently used. Callers hold c.mu.
func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the LRU list. Callers hold c.mu.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
