package tracecache

import (
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// testConfig builds a small deterministic run; seed variations produce
// distinct fingerprints and distinct record streams.
func testConfig(seed uint64, events int) workload.Config {
	return workload.Config{
		Name: "cachetest", Seed: seed, Events: events,
		Sites: []workload.SiteSpec{
			{Label: "a", Class: trace.IndirectJmp, NumTargets: 4,
				Behavior: workload.Uniform{}, Weight: 1},
			{Label: "b", Class: trace.IndirectJsr, NumTargets: 2,
				Behavior: workload.Uniform{}, Weight: 1},
		},
		CondPerEvent: 2,
	}
}

func TestGetCachesAndReturnsSharedSlice(t *testing.T) {
	c := New(0)
	cfg := testConfig(1, 500)
	r1, s1 := c.Get(cfg)
	r2, s2 := c.Get(cfg)
	if &r1[0] != &r2[0] {
		t.Error("second Get returned a different backing array")
	}
	if s1.Records != s2.Records || s1.Instructions != s2.Instructions {
		t.Error("summaries differ between Gets")
	}
	st := c.Stats()
	if st.Generated != 1 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %v, want 1 generation, 1 miss, 1 hit", st)
	}
	wantRecs, wantSum := cfg.Records()
	if uint64(len(r1)) != wantSum.Records || len(r1) != len(wantRecs) {
		t.Errorf("cached %d records, direct generation yields %d", len(r1), len(wantRecs))
	}
	for i := range wantRecs {
		if r1[i] != wantRecs[i] {
			t.Fatalf("cached record %d differs from direct generation", i)
		}
	}
}

func TestFingerprintSeparatesConfigs(t *testing.T) {
	base := testConfig(1, 500)
	variants := []workload.Config{testConfig(2, 500), testConfig(1, 600)}
	other := base
	other.Sites = append([]workload.SiteSpec(nil), base.Sites...)
	other.Sites[0].NumTargets = 8
	variants = append(variants, other)
	seen := map[string]bool{Fingerprint(base): true}
	for i, v := range variants {
		fp := Fingerprint(v)
		if seen[fp] {
			t.Errorf("variant %d shares a fingerprint with another config", i)
		}
		seen[fp] = true
	}
	if Fingerprint(base) != Fingerprint(testConfig(1, 500)) {
		t.Error("identical configs fingerprint apart")
	}
}

func TestBudgetEvictsLRU(t *testing.T) {
	cfgA, cfgB, cfgC := testConfig(1, 400), testConfig(2, 400), testConfig(3, 400)
	recsA, _ := New(0).Get(cfgA)
	perEntry := int64(cap(recsA)) * recordBytes
	// Room for roughly two entries: inserting a third must evict the LRU.
	c := New(2*perEntry + perEntry/2)
	c.Get(cfgA)
	c.Get(cfgB)
	c.Get(cfgA) // bump A to MRU; B is now the eviction candidate
	c.Get(cfgC)
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no eviction under budget %d with 3 entries of ~%d bytes", 2*perEntry+perEntry/2, perEntry)
	}
	c.Get(cfgA)
	if got := c.Stats().Hits - st.Hits; got != 1 {
		t.Errorf("A was evicted instead of LRU B (hits delta %d)", got)
	}
	before := c.Stats()
	c.Get(cfgB)
	if c.Stats().Generated != before.Generated+1 {
		t.Error("evicted B was not regenerated on demand")
	}
}

func TestDisabledAlwaysRegenerates(t *testing.T) {
	c := Disabled()
	cfg := testConfig(1, 300)
	r1, _ := c.Get(cfg)
	r2, _ := c.Get(cfg)
	if &r1[0] == &r2[0] {
		t.Error("disabled cache returned a shared backing array")
	}
	st := c.Stats()
	if st.Generated != 2 || st.Hits != 0 || st.Entries != 0 {
		t.Errorf("disabled cache stats = %v, want 2 generations, 0 hits, 0 entries", st)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("regenerated record %d differs", i)
		}
	}
}

func TestConcurrentSameKeyGeneratesOnce(t *testing.T) {
	c := New(0)
	cfg := testConfig(7, 400)
	const goroutines = 16
	var wg sync.WaitGroup
	recs := make([][]trace.Record, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			recs[g], _ = c.Get(cfg)
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Generated != 1 {
		t.Errorf("%d generations for one key under concurrency, want 1", st.Generated)
	}
	for g := 1; g < goroutines; g++ {
		if &recs[g][0] != &recs[0][0] {
			t.Errorf("goroutine %d got a private copy", g)
		}
	}
}

// TestConcurrentGetEvict hammers a tight-budget cache from many goroutines
// so readers, inserts and evictions interleave; run under -race this is the
// scheduler-safety proof for the shared cache. Every returned slice must
// match the deterministic reference generation bit for bit.
func TestConcurrentGetEvict(t *testing.T) {
	const nCfg = 6
	cfgs := make([]workload.Config, nCfg)
	want := make([][]trace.Record, nCfg)
	for i := range cfgs {
		cfgs[i] = testConfig(uint64(i+1), 300)
		want[i], _ = cfgs[i].Records()
	}
	// Budget fits only ~2 of the 6 working sets: constant eviction churn.
	perEntry := int64(len(want[0])) * recordBytes
	c := New(2 * perEntry)

	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % nCfg
				recs, sum := c.Get(cfgs[k])
				if len(recs) != len(want[k]) {
					t.Errorf("cfg %d: got %d records, want %d", k, len(recs), len(want[k]))
					return
				}
				if sum.Records != uint64(len(want[k])) {
					t.Errorf("cfg %d: summary records %d, want %d", k, sum.Records, len(want[k]))
					return
				}
				if recs[0] != want[k][0] || recs[len(recs)-1] != want[k][len(recs)-1] {
					t.Errorf("cfg %d: record content diverged", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Evicted == 0 {
		t.Error("hammer produced no evictions; budget not exercising LRU churn")
	}
	if st.Hits+st.Misses != goroutines*iters {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines*iters)
	}
	if st.Bytes < 0 || (c.budget > 0 && st.Bytes > c.budget+perEntry) {
		t.Errorf("resident bytes %d drifted outside budget %d", st.Bytes, c.budget)
	}
}

// TestOversizeEntryServedWithoutResidency pins the oversized-entry fix: a
// trace bigger than the entire budget used to join the LRU list, and the
// accounting pass then flushed every smaller resident entry before evicting
// the newcomer itself on the next insert — the small entries paid for a
// resident that could never help anyone. An oversized trace must be served
// to its callers (correct data, no error) without ever becoming resident or
// disturbing the entries that do fit.
func TestOversizeEntryServedWithoutResidency(t *testing.T) {
	small := testConfig(1, 100)
	big := testConfig(2, 4000)
	smallRecs, _ := New(0).Get(small)
	bigRecs, _ := New(0).Get(big)
	smallBytes := int64(cap(smallRecs)) * recordBytes
	bigBytes := int64(cap(bigRecs)) * recordBytes
	if bigBytes <= 2*smallBytes {
		t.Fatalf("test setup: big trace (%d bytes) not big enough vs small (%d)", bigBytes, smallBytes)
	}

	// Budget fits a few small entries but not the big one.
	c := New(3 * smallBytes)
	c.Get(small)
	want, wantSum := big.Records()

	for pass := 0; pass < 2; pass++ {
		got, sum := c.Get(big)
		if len(got) != len(want) || sum.Records != wantSum.Records {
			t.Fatalf("pass %d: oversized trace served wrong: %d records, want %d", pass, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pass %d: oversized record %d differs", pass, i)
			}
		}
	}

	st := c.Stats()
	if st.Oversize != 2 {
		t.Errorf("oversize count %d, want 2 (one per Get of the big trace)", st.Oversize)
	}
	if st.Evicted != 0 {
		t.Errorf("oversized trace evicted %d resident entries; must not touch them", st.Evicted)
	}
	if st.Entries != 1 || st.Bytes != smallBytes {
		t.Errorf("residency after oversized Gets: %d entries / %d bytes, want the small entry alone (%d bytes)", st.Entries, st.Bytes, smallBytes)
	}
	// The small entry must still be a hit — it was never flushed.
	hitsBefore := st.Hits
	c.Get(small)
	if got := c.Stats().Hits - hitsBefore; got != 1 {
		t.Errorf("small entry lost from cache (hits delta %d, want 1)", got)
	}
}
