package tracecache

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

func TestGetBlocksSharesConversionAndAccountsColumnarBytes(t *testing.T) {
	c := New(0)
	cfg := testConfig(1, 500)
	recs, _ := c.Get(cfg)

	b1, s1 := c.GetBlocks(cfg)
	b2, s2 := c.GetBlocks(cfg)
	if &b1[0] != &b2[0] {
		t.Error("second GetBlocks returned a different block slice")
	}
	if s1.Records != s2.Records {
		t.Error("summaries differ between GetBlocks calls")
	}

	// The blocks decode to exactly the cached records.
	got := trace.BlocksRecords(b1)
	if len(got) != len(recs) {
		t.Fatalf("blocks flatten to %d records, cache holds %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("block record %d differs from cached record", i)
		}
	}

	// One generation, one conversion, and the ledger splits exactly into
	// record bytes plus the columnar model's block bytes.
	st := c.Stats()
	if st.Generated != 1 {
		t.Errorf("generated %d traces, want 1 (GetBlocks reuses Get's records)", st.Generated)
	}
	wantBlock := trace.BlocksBytes(b1)
	wantRecord := int64(cap(recs)) * recordBytes
	if st.BlockBytes != wantBlock {
		t.Errorf("BlockBytes = %d, want columnar model %d", st.BlockBytes, wantBlock)
	}
	if st.Bytes != wantRecord+wantBlock {
		t.Errorf("Bytes = %d, want records %d + blocks %d", st.Bytes, wantRecord, wantBlock)
	}
}

func TestGetBlocksEvictionSettlesBlockLedger(t *testing.T) {
	cfgA, cfgB := testConfig(1, 400), testConfig(2, 400)
	probe := New(0)
	recsA, _ := probe.Get(cfgA)
	blksA, _ := probe.GetBlocks(cfgA)
	perEntry := int64(cap(recsA))*recordBytes + trace.BlocksBytes(blksA)

	// Budget fits one record+block entry with slack but not two: caching B
	// in both forms must evict A and return every one of A's bytes —
	// including the columnar portion — to the ledger.
	c := New(perEntry + perEntry/2)
	c.GetBlocks(cfgA)
	c.GetBlocks(cfgB)
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no eviction under a one-entry budget (stats %v)", st)
	}
	if st.Entries != 1 {
		t.Errorf("%d resident entries after eviction, want 1", st.Entries)
	}
	recsB, _ := New(0).Get(cfgB)
	blksB, _ := New(0).GetBlocks(cfgB)
	if want := trace.BlocksBytes(blksB); st.BlockBytes != want {
		t.Errorf("BlockBytes = %d after eviction, want survivor's %d", st.BlockBytes, want)
	}
	if want := int64(cap(recsB))*recordBytes + trace.BlocksBytes(blksB); st.Bytes != want {
		t.Errorf("Bytes = %d after eviction, want survivor's %d", st.Bytes, want)
	}
}

func TestGetBlocksCombinedOversizeForgotten(t *testing.T) {
	cfg := testConfig(1, 400)
	probe := New(0)
	recs, _ := probe.Get(cfg)
	blks, _ := probe.GetBlocks(cfg)
	recBytes := int64(cap(recs)) * recordBytes
	blkBytes := trace.BlocksBytes(blks)

	// The records alone fit; records plus blocks do not. GetBlocks must
	// serve correct blocks, then forget the entry rather than let it squat
	// over budget.
	c := New(recBytes + blkBytes/2)
	got, _ := c.GetBlocks(cfg)
	if len(trace.BlocksRecords(got)) != len(recs) {
		t.Fatalf("combined-oversize blocks flatten to %d records, want %d", len(trace.BlocksRecords(got)), len(recs))
	}
	st := c.Stats()
	if st.Oversize != 1 {
		t.Errorf("oversize count %d, want 1", st.Oversize)
	}
	if st.Entries != 0 || st.Bytes != 0 || st.BlockBytes != 0 {
		t.Errorf("combined-oversize entry left residue: %d entries, %d bytes, %d block bytes", st.Entries, st.Bytes, st.BlockBytes)
	}
	if st.Evicted != 0 {
		t.Errorf("combined-oversize entry evicted %d residents", st.Evicted)
	}
}

func TestGetBlocksDisabledRegeneratesEachCall(t *testing.T) {
	c := Disabled()
	cfg := testConfig(1, 300)
	b1, _ := c.GetBlocks(cfg)
	b2, _ := c.GetBlocks(cfg)
	if &b1[0] == &b2[0] {
		t.Error("disabled cache shared block storage across calls")
	}
	st := c.Stats()
	if st.Generated != 2 || st.Misses != 2 {
		t.Errorf("stats = %v, want 2 generations and 2 misses", st)
	}
	if st.Bytes != 0 || st.BlockBytes != 0 || st.Entries != 0 {
		t.Errorf("disabled cache accounted residency: %v", st)
	}
}

func TestGetBlocksConcurrentSingleConversion(t *testing.T) {
	c := New(0)
	cfg := testConfig(1, 500)
	const goroutines = 8
	out := make([]*trace.Block, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			blks, _ := c.GetBlocks(cfg)
			out[g] = &blks[0]
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if out[g] != out[0] {
			t.Fatalf("goroutine %d received a different block conversion", g)
		}
	}
	st := c.Stats()
	if st.Generated != 1 {
		t.Errorf("%d generations under concurrent GetBlocks, want 1", st.Generated)
	}
	blks, _ := c.GetBlocks(cfg)
	if want := trace.BlocksBytes(blks); st.BlockBytes != want {
		t.Errorf("BlockBytes = %d after concurrent GetBlocks, want exactly one conversion's %d", st.BlockBytes, want)
	}
}
