package workload

import (
	"testing"

	"repro/internal/history"
	"repro/internal/trace"
)

func tinyConfig() Config {
	return Config{
		Name: "tiny", Input: "t", Seed: 42, Events: 2000,
		Sites: []SiteSpec{
			{Label: "switch", Class: trace.IndirectJmp, NumTargets: 8,
				Behavior: Correlated{Stream: PIB, Order: 2, Noise: 0.01}, Weight: 5},
			{Label: "virt", Class: trace.IndirectJsr, NumTargets: 4,
				Behavior: Monomorphic{Bias: 0.99}, Weight: 3},
			{Label: "cd", Class: trace.IndirectJsr, NumTargets: 2, Cluster: true,
				Behavior: CondDriven{Order: 1}, Weight: 3},
		},
		ChainSites: true, ChainOrder: 2, ChainNoise: 0.01,
		CondPerEvent: 2, CondNoise: 0.5,
		STRate: 0.05, CallRate: 0.25,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a, sumA := cfg.Records()
	b, sumB := cfg.Records()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if sumA.MTDynamic != sumB.MTDynamic || sumA.Instructions != sumB.Instructions {
		t.Error("summaries differ between identical runs")
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cfg := tinyConfig()
	a, _ := cfg.Records()
	cfg.Seed = 43
	b, _ := cfg.Records()
	same := 0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical traces")
	}
}

func TestSummaryCounts(t *testing.T) {
	cfg := tinyConfig()
	recs, sum := cfg.Records()
	if sum.Records != uint64(len(recs)) {
		t.Errorf("Records = %d, emitted %d", sum.Records, len(recs))
	}
	var mt, cond, rets, st uint64
	var instr uint64
	for _, r := range recs {
		instr += uint64(r.Gap) + 1
		switch {
		case r.MTIndirect():
			mt++
		case r.Class == trace.CondDirect:
			cond++
		case r.Class == trace.Return:
			rets++
		case r.Class.Indirect() && !r.MT && r.Class != trace.Return:
			st++
		}
	}
	if mt != sum.MTDynamic {
		t.Errorf("MTDynamic = %d, counted %d", sum.MTDynamic, mt)
	}
	if cond != sum.CondDynamic {
		t.Errorf("CondDynamic = %d, counted %d", sum.CondDynamic, cond)
	}
	if rets != sum.RetsDynamic {
		t.Errorf("RetsDynamic = %d, counted %d", sum.RetsDynamic, rets)
	}
	if st != sum.STDynamic {
		t.Errorf("STDynamic = %d, counted %d", sum.STDynamic, st)
	}
	if instr != sum.Instructions {
		t.Errorf("Instructions = %d, counted %d", sum.Instructions, instr)
	}
	// Every event produces exactly one dispatch; all sites here have >=2
	// targets except none, so MTDynamic == Events.
	if sum.MTDynamic != uint64(cfg.Events) {
		t.Errorf("MTDynamic = %d, want %d", sum.MTDynamic, cfg.Events)
	}
	if sum.MTStatic != 3 {
		t.Errorf("MTStatic = %d, want 3", sum.MTStatic)
	}
}

func TestSiteByPCAndExecs(t *testing.T) {
	cfg := tinyConfig()
	recs, sum := cfg.Records()
	if len(sum.SiteByPC) != 3 {
		t.Fatalf("SiteByPC has %d entries, want 3", len(sum.SiteByPC))
	}
	counts := map[string]uint64{}
	for _, r := range recs {
		if r.MTIndirect() {
			label, ok := sum.SiteByPC[r.PC]
			if !ok {
				t.Fatalf("MT record at unknown pc %#x", r.PC)
			}
			counts[label]++
		}
	}
	var fromExecs uint64
	for _, e := range sum.SiteExecs {
		fromExecs += e
	}
	if fromExecs != sum.MTDynamic {
		t.Errorf("SiteExecs sum = %d, MTDynamic = %d", fromExecs, sum.MTDynamic)
	}
}

func TestReturnsAreWellNested(t *testing.T) {
	// Every jsr (ST or MT) and direct call is followed eventually by a
	// return to pc+4; a RAS of sufficient depth must predict essentially
	// all returns. This validates the generator's call discipline.
	cfg := tinyConfig()
	recs, _ := cfg.Records()
	var stack []uint64
	bad := 0
	for _, r := range recs {
		switch r.Class {
		case trace.DirectCall, trace.IndirectJsr:
			stack = append(stack, r.PC+4)
		case trace.Return:
			if len(stack) == 0 {
				bad++
				continue
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if r.Target != want {
				bad++
			}
		}
	}
	if bad != 0 {
		t.Errorf("%d returns did not match their call sites", bad)
	}
}

func TestClusterTargetInvariants(t *testing.T) {
	cfg := tinyConfig()
	recs, sum := cfg.Records()
	var clusterPC uint64
	for pc, label := range sum.SiteByPC {
		if label == "cd" {
			clusterPC = pc
		}
	}
	if clusterPC == 0 {
		t.Fatal("cluster site not found")
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if r.PC == clusterPC {
			seen[r.Target] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("cluster site used %d targets; the cond stream should drive both", len(seen))
	}
	var ref uint64
	for tgt := range seen {
		if ref == 0 {
			ref = tgt
		}
		// Members must agree outside bits 12-13.
		if tgt&^uint64(0x3000) != ref&^uint64(0x3000) {
			t.Errorf("cluster members differ outside bits 12-13: %#x vs %#x", tgt, ref)
		}
	}
}

func TestAlignmentConvention(t *testing.T) {
	recs, _ := tinyConfig().Records()
	for _, r := range recs {
		if r.Class == trace.IndirectJsr && r.MT && r.Target%16 != 0 {
			// Non-cluster jsr targets are 16-byte aligned procedure
			// entries; cluster targets are 4-byte (they carry bits
			// 12-13 but low 4 bits are still zero since base is
			// 16-aligned... base | k<<12 keeps %16 == 0 anyway).
			t.Fatalf("jsr target %#x not 16-byte aligned", r.Target)
		}
		if r.Target%4 != 0 || r.PC%4 != 0 {
			t.Fatalf("unaligned instruction address in %v", r)
		}
	}
}

func TestCondTakenBitConvention(t *testing.T) {
	// CondDriven reads bit 6 of conditional targets as the taken flag;
	// the generator must uphold that encoding.
	recs, _ := tinyConfig().Records()
	for _, r := range recs {
		if r.Class != trace.CondDirect {
			continue
		}
		bit := (r.Target >> 6) & 1
		if r.Taken && bit != 1 {
			t.Fatalf("taken cond target %#x lacks bit 6", r.Target)
		}
		if !r.Taken && bit != 0 {
			t.Fatalf("fall-through cond target %#x has bit 6 set", r.Target)
		}
	}
}

func TestBehaviors(t *testing.T) {
	ctx := &Context{
		RNG:     NewRNG(7),
		PIBHist: history.New(history.IndirectBranches, 8, 0, 0),
		PBHist:  history.New(history.AllBranches, 8, 0, 0),
	}
	site := &Site{Targets: []uint64{10, 20, 30, 40}, selfHist: history.New(history.AllBranches, 8, 0, 0)}

	if got := (Monomorphic{}).Next(ctx, site); got != 0 {
		t.Errorf("Monomorphic{} = %d, want 0", got)
	}
	cyc := Cyclic{}
	if a, b := cyc.Next(ctx, site), cyc.Next(ctx, site); b != (a+1)%4 {
		t.Errorf("Cyclic sequence %d,%d", a, b)
	}
	low := LowEntropy{SwitchProb: 0}
	site.cur = 2
	if got := low.Next(ctx, site); got != 2 {
		t.Errorf("LowEntropy(p=0) moved to %d", got)
	}
	// Correlated is deterministic given history and zero noise.
	ctx.PIBHist.Push(0x1230)
	ctx.PIBHist.Push(0x4560)
	c := Correlated{Stream: PIB, Order: 2}
	a := c.Next(ctx, site)
	if b := c.Next(ctx, site); a != b {
		t.Error("Correlated not deterministic under fixed history")
	}
	// Uniform stays in range.
	u := Uniform{}
	for i := 0; i < 100; i++ {
		if got := u.Next(ctx, site); got < 0 || got >= 4 {
			t.Fatalf("Uniform out of range: %d", got)
		}
	}
	// Strings are non-empty for diagnostics.
	for _, b := range []Behavior{Monomorphic{}, LowEntropy{}, Correlated{}, CondDriven{}, Cyclic{}, Uniform{}} {
		if b.String() == "" {
			t.Errorf("%T has empty String()", b)
		}
	}
}

func TestCondDrivenReadsTakenBits(t *testing.T) {
	ctx := &Context{
		RNG:     NewRNG(7),
		PIBHist: history.New(history.IndirectBranches, 8, 0, 0),
		PBHist:  history.New(history.AllBranches, 8, 0, 0),
	}
	site := &Site{Targets: []uint64{100, 200}}
	cd := CondDriven{Order: 1}
	ctx.PBHist.Push(0x13000004) // bit 6 clear: not taken
	a := cd.Next(ctx, site)
	ctx.PBHist.Push(0x13000044) // bit 6 set: taken
	b := cd.Next(ctx, site)
	if a == b {
		t.Error("CondDriven ignored the taken bit")
	}
}

func TestRNG(t *testing.T) {
	r := NewRNG(1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) != 1000 {
		t.Error("RNG repeated within 1000 draws")
	}
	r2 := NewRNG(0) // zero seed remapped, must not be degenerate
	if r2.Uint64() == r2.Uint64() {
		t.Error("zero-seed RNG degenerate")
	}
	for i := 0; i < 100; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
	if r.Bool(0) || !r.Bool(1) {
		t.Error("Bool degenerate probabilities wrong")
	}
	if n := r.Poissonish(0); n != 0 {
		t.Errorf("Poissonish(0) = %d", n)
	}
	if n := r.Poissonish(4); n < 1 || n > 8 {
		t.Errorf("Poissonish(4) = %d, want in [2,6]-ish", n)
	}
}

func TestGeneratePanics(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "x", Events: 0, Sites: tinyConfig().Sites},
		{Name: "x", Events: 10},
		{Name: "x", Events: 10, Sites: []SiteSpec{{Label: "bad", NumTargets: 0, Weight: 1, Behavior: Uniform{}}}},
		{Name: "x", Events: 10, Sites: []SiteSpec{{Label: "bad", NumTargets: 2, Weight: 0, Behavior: Uniform{}}}},
		{Name: "x", Events: 10, Sites: []SiteSpec{{Label: "bad", NumTargets: 9, Weight: 1, Cluster: true, Behavior: Uniform{}}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg.Sites)
				}
			}()
			cfg.Generate(func(trace.Record) {})
		}()
	}
}

func TestConfigString(t *testing.T) {
	if (Config{Name: "perl", Input: "exp"}).String() != "perl.exp" {
		t.Error("Config.String with input")
	}
	if (Config{Name: "eqn"}).String() != "eqn" {
		t.Error("Config.String without input")
	}
}

// TestRecordsNeverReallocates pins the ExpectedRecords contract: the
// worst-case preallocation in Records must hold every emitted record, so
// the append loop never grows the backing array (growth would change cap).
func TestRecordsNeverReallocates(t *testing.T) {
	cfgs := []Config{
		{Name: "plain", Seed: 1, Events: 3000,
			Sites: []SiteSpec{{Label: "s", Class: trace.IndirectJmp, NumTargets: 4, Behavior: Uniform{}, Weight: 1}}},
		{Name: "jsr", Seed: 2, Events: 3000, CondPerEvent: 3, STRate: 0.05, CallRate: 0.3,
			Sites: []SiteSpec{
				{Label: "v", Class: trace.IndirectJsr, NumTargets: 4, Behavior: Uniform{}, Weight: 2},
				{Label: "j", Class: trace.IndirectJmp, NumTargets: 8, Behavior: Cyclic{}, Weight: 1},
			}},
		{Name: "chained", Seed: 3, Events: 3000, CondPerEvent: 1, CallRate: 1,
			ChainSites: true, ChainNoise: 0.01,
			Sites: []SiteSpec{{Label: "c", Class: trace.IndirectJsr, NumTargets: 3, Behavior: Monomorphic{Bias: 0.9}, Weight: 1}}},
	}
	for _, cfg := range cfgs {
		want := cfg.ExpectedRecords()
		recs, sum := cfg.Records()
		if cap(recs) != want {
			t.Errorf("%s: cap %d after generation, preallocated %d — append reallocated", cfg.Name, cap(recs), want)
		}
		if len(recs) > want {
			t.Errorf("%s: emitted %d records, bound %d too small", cfg.Name, len(recs), want)
		}
		if uint64(len(recs)) != sum.Records {
			t.Errorf("%s: %d records vs summary %d", cfg.Name, len(recs), sum.Records)
		}
	}
}

func TestExpectedRecordsZeroForEmptyConfig(t *testing.T) {
	if n := (Config{}).ExpectedRecords(); n != 0 {
		t.Errorf("empty config expects %d records, want 0", n)
	}
}
