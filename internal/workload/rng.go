// Package workload generates synthetic Alpha-like branch trace streams that
// stand in for the paper's ATOM-captured traces. Each benchmark is modelled
// as a weighted set of indirect branch sites whose next target is a
// deterministic-plus-noise function of the actual emitted path history, so
// the statistical structure the predictors exploit (correlation type and
// order, polymorphism degree, entropy, hot-site aliasing) is reproduced
// even though the instruction streams are synthetic. See DESIGN.md for the
// substitution rationale.
package workload

import "math"

// RNG is a splitmix64 pseudo-random generator: tiny, fast, and fully
// deterministic per seed so every experiment is reproducible bit-for-bit.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Seed 0 is remapped so the stream is never
// degenerate.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Intn returns a pseudo-random int in [0, n). Panics if n is not positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Poissonish returns a small non-negative count with the given mean,
// using a geometric-ish draw that is cheap and adequate for instruction
// gap jitter (exact Poisson sampling is unnecessary for this purpose).
func (r *RNG) Poissonish(mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Draw uniformly in [0.5*mean, 1.5*mean] and round.
	v := mean * (0.5 + r.Float64())
	return int(math.Round(v))
}
