package workload

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/trace"
)

// SiteSpec declares one static indirect branch site of a benchmark model.
type SiteSpec struct {
	// Label names the site family for diagnostics.
	Label string
	// Class is trace.IndirectJmp (switch dispatch) or trace.IndirectJsr
	// (virtual/function-pointer call).
	Class trace.Class
	// NumTargets is the site's polymorphism degree (>= 1). Sites with
	// NumTargets == 1 are emitted as single-target (MT bit clear).
	NumTargets int
	// Behavior chooses among the targets at run time.
	Behavior Behavior
	// Weight is the site's relative dynamic execution frequency.
	Weight int
	// Cluster allocates the site's targets within one aligned block so
	// they differ only in bits 12-13. Such targets look identical to the
	// coarse views other components take of them (2-low-bit history
	// records, 6-bit behaviour quantization, the chain map), so the
	// information distinguishing them is visible only to predictors that
	// record wide target slices — modelling dispatch targets whose
	// selection is driven by data invisible in the indirect-branch
	// stream. Requires NumTargets <= 4.
	Cluster bool
}

// Site is the runtime instance of a SiteSpec with assigned addresses.
type Site struct {
	Spec    SiteSpec
	PC      uint64
	Targets []uint64
	Execs   uint64

	cur      int
	salt     uint64
	selfHist *history.PHR
}

// Config describes one benchmark run: its indirect branch sites plus the
// surrounding program activity (conditional branches, calls/returns,
// single-target indirect calls) that shapes the PB path history.
type Config struct {
	// Name and Input identify the run, Table 1 style ("troff", "ped").
	Name  string
	Input string
	// Seed drives all pseudo-randomness.
	Seed uint64
	// Events is the number of MT indirect dispatch events to emit.
	Events int
	// Sites are the MT (and optionally ST) indirect branch sites.
	Sites []SiteSpec
	// CondPerEvent is the mean number of conditional branches emitted
	// before each dispatch event.
	CondPerEvent int
	// CondSites is the number of distinct conditional branch addresses
	// (default 16).
	CondSites int
	// CondNoise is the probability a conditional outcome is random
	// rather than pattern-driven; CondTakenBias biases that random draw.
	CondNoise     float64
	CondTakenBias float64
	// CondPatternBits sets the period (2^bits) of the deterministic
	// conditional outcome pattern (default 4 -> period 16). A small
	// period keeps PB history tuples recurrent and learnable.
	CondPatternBits uint
	// STRate is the per-event probability of a single-target indirect
	// call (a GOT/DLL-style jsr, MT bit clear).
	STRate float64
	// CallRate is the per-event probability of a direct call/return pair.
	CallRate float64
	// ChainSites selects Markovian site sequencing: the next dispatch
	// site is derived from the most recent indirect target(s), modelling
	// data-dependent control flow; ChainNoise mixes in random selection.
	// ChainOrder sets how many recent targets determine the next site
	// (default 1); deeper chains defeat predictors whose effective path
	// length is shorter than the chain.
	ChainSites bool
	ChainNoise float64
	ChainOrder int
	// GapMean is the mean number of non-branch instructions between
	// consecutive branch records (default 4).
	GapMean float64
	// HistoryDepth bounds the generator-side history context (default 16).
	HistoryDepth int
}

func (c Config) String() string {
	if c.Input == "" {
		return c.Name
	}
	return c.Name + "." + c.Input
}

// Summary reports the dynamic characteristics of a generated run — the
// quantities Table 1 of the paper lists.
type Summary struct {
	Name         string
	Input        string
	Instructions uint64 // total instructions (branches + gap filler)
	Records      uint64 // committed branch records
	MTStatic     int    // static MT sites
	MTDynamic    uint64 // dynamic MT jsr+jmp executions
	STDynamic    uint64
	CondDynamic  uint64
	CallsDynamic uint64
	RetsDynamic  uint64
	SiteExecs    []uint64 // per SiteSpec, in declaration order
	// SiteByPC maps each MT site's branch address to its spec label,
	// for per-population accuracy attribution in diagnostics and tests.
	SiteByPC map[uint64]string
}

// Address-space layout constants (Alpha-flavoured, 4-byte instructions).
const (
	siteBase   = 0x1_2000_0000
	targetBase = 0x1_4000_0000
	condBase   = 0x1_3000_0000
	funcBase   = 0x1_5000_0000
	stBase     = 0x1_6000_0000
)

func buildSites(specs []SiteSpec, depth int, seed uint64) []*Site {
	sites := make([]*Site, len(specs))
	tgtCtr := uint64(0)
	used := make(map[uint64]bool)
	usedTgt := make(map[uint64]bool)
	// Targets are scattered addresses: the predictors under study select,
	// fold and XOR the low-order bits of targets, so the synthetic address
	// stream must exercise those bits the way real code addresses do.
	// Branch targets (switch arms, basic blocks) are 4-byte aligned;
	// procedure entries — the targets of indirect calls — are 16-byte
	// aligned, as Alpha compilers align them, which is why designs that
	// record only the 2 lowest-order target bits lose information on
	// call-heavy C++ code.
	nextTarget := func(seed uint64, align uint64) uint64 {
		for {
			tgtCtr++
			t := uint64(targetBase) | ((mix(seed^tgtCtr*0x9e3779b97f4a7c15) & 0x3fffff) << 2)
			t &^= align - 1
			if !usedTgt[t] {
				usedTgt[t] = true
				return t
			}
		}
	}
	for i, spec := range specs {
		if spec.NumTargets < 1 {
			panic(fmt.Sprintf("workload: site %q has %d targets", spec.Label, spec.NumTargets))
		}
		if spec.Weight < 1 {
			panic(fmt.Sprintf("workload: site %q has non-positive weight", spec.Label))
		}
		// Scatter site addresses across the text segment the way real
		// code lays out, so direct-mapped structures see realistic
		// (not adversarially regular) index distributions.
		pc := uint64(siteBase) | ((mix(seed+uint64(i)*0x9e37) & 0xfffff) << 2)
		for used[pc] {
			pc += 4
		}
		used[pc] = true
		s := &Site{
			Spec:     spec,
			PC:       pc,
			Targets:  make([]uint64, spec.NumTargets),
			salt:     mix(uint64(i+1) * 0x9e3779b97f4a7c15),
			selfHist: history.New(history.AllBranches, depth, 0, 0),
		}
		align := uint64(4)
		if spec.Class == trace.IndirectJsr || spec.Class == trace.JsrCoroutine {
			align = 16
		}
		if spec.Cluster {
			if spec.NumTargets > 4 {
				panic(fmt.Sprintf("workload: clustered site %q has %d > 4 targets", spec.Label, spec.NumTargets))
			}
			// One block per clustered site, disjoint from the scattered
			// target region; members differ only in bits 12-13 — outside
			// every predictor's context view (2-low-bit records, SFSXS
			// 10-bit selects, behaviour quantization, the chain map), so
			// cluster executions never split path-history contexts.
			base := uint64(targetBase) | 0x4000_0000 | (uint64(i) << 14)
			for t := range s.Targets {
				s.Targets[t] = base | (uint64(t) << 12)
			}
		} else {
			for t := range s.Targets {
				s.Targets[t] = nextTarget(seed, align)
			}
		}
		sites[i] = s
	}
	return sites
}

// Generate synthesizes the run, invoking emit for every branch record in
// program order, and returns the dynamic summary. Generation is fully
// deterministic for a given Config. Panics if the Config is invalid: no
// events, no sites, or a site with a bad target count or weight.
func (c Config) Generate(emit func(trace.Record)) Summary {
	if c.Events <= 0 {
		panic("workload: Events must be positive")
	}
	if len(c.Sites) == 0 {
		panic("workload: no sites")
	}
	depth := c.HistoryDepth
	if depth <= 0 {
		depth = 16
	}
	condSites := c.CondSites
	if condSites <= 0 {
		condSites = 16
	}
	patBits := c.CondPatternBits
	if patBits == 0 {
		patBits = 4
	}
	gapMean := c.GapMean
	if gapMean <= 0 {
		gapMean = 4
	}
	takenBias := c.CondTakenBias
	if takenBias == 0 {
		takenBias = 0.6
	}

	rng := NewRNG(c.Seed)
	ctx := &Context{
		RNG:     rng,
		PIBHist: history.New(history.IndirectBranches, depth, 0, 0),
		PBHist:  history.New(history.AllBranches, depth, 0, 0),
		scratch: make([]uint64, 0, depth),
	}
	sites := buildSites(c.Sites, depth, c.Seed)

	var sum Summary
	sum.Name, sum.Input = c.Name, c.Input
	sum.SiteExecs = make([]uint64, len(sites))

	write := func(rec trace.Record) {
		rec.Gap = uint32(rng.Poissonish(gapMean))
		sum.Instructions += uint64(rec.Gap) + 1
		sum.Records++
		ctx.PBHist.Observe(rec)
		ctx.PIBHist.Observe(rec)
		emit(rec)
	}

	// Weighted site selection setup.
	total := 0
	cum := make([]int, len(sites))
	for i, s := range sites {
		total += s.Spec.Weight
		cum[i] = total
	}
	pick := func(v int) *Site {
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if v < cum[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return sites[lo]
	}
	chainOrder := c.ChainOrder
	if chainOrder < 1 {
		chainOrder = 1
	}
	lastIndirect := make([]uint64, chainOrder)
	chainSalt := mix(c.Seed ^ 0xc0ffee)
	// The chain state is the full most recent target plus coarse bits of
	// the older ones: the next site depends on deeper path context (which
	// short-history predictors cannot capture) while keeping the
	// re-convergence tail after a perturbation short.
	// chainQuant extracts the chain-visible bits of a target: bits 2-11
	// plus 16-19, skipping the cluster member bits (12-13) so data-driven
	// dispatches do not branch the control-flow orbit.
	chainQuant := func(t uint64) uint64 {
		return ((t >> 2) & 0x3ff) | (((t >> 16) & 0xf) << 10)
	}
	chainState := func() uint64 {
		h := mix(chainSalt ^ chainQuant(lastIndirect[0]))
		for _, t := range lastIndirect[1:] {
			h = mix(h ^ ((t >> 4) & 3))
		}
		return h
	}

	// Convert the ST/call rates into deterministic periods.
	period := func(rate float64) uint64 {
		if rate <= 0 {
			return 0
		}
		if rate >= 1 {
			return 1
		}
		return uint64(1/rate + 0.5)
	}
	stEvery := period(c.STRate)
	callEvery := period(c.CallRate)

	var patCtr uint64

	// Generator-state snapshots: a chain escape teleports the program back
	// to a previously visited control-flow configuration (an outer loop
	// re-entering a known phase) rather than into fresh state space, so
	// perturbations cost each predictor about one history-window of novel
	// contexts and no more.
	type snapshot struct {
		pib, pb history.State
		last    []uint64
	}
	var snaps []snapshot
	takeSnap := func() {
		sn := snapshot{
			pib:  ctx.PIBHist.Snapshot(),
			pb:   ctx.PBHist.Snapshot(),
			last: append([]uint64(nil), lastIndirect...),
		}
		if len(snaps) < 64 {
			snaps = append(snaps, sn)
		} else {
			snaps[int(patCtr/16)%64] = sn
		}
	}
	teleport := func() {
		if len(snaps) == 0 {
			return
		}
		sn := snaps[rng.Intn(len(snaps))]
		ctx.PIBHist.Restore(sn.pib)
		ctx.PBHist.Restore(sn.pb)
		copy(lastIndirect, sn.last)
	}

	for ev := 0; ev < c.Events; ev++ {
		patCtr++

		// Direct call / return pair; timing and callee rotate
		// deterministically so return targets recur in the PB history
		// the way loop bodies repeat in real code.
		if callEvery > 0 && mix(chainState()^0xca11)%callEvery == 0 {
			fn := mix(chainState()^0xf17) % 8
			callPC := uint64(funcBase) + 0x4000 + fn*0x8
			fnBase := uint64(funcBase) + fn*0x400
			write(trace.Record{PC: callPC, Target: fnBase, Class: trace.DirectCall, Taken: true})
			sum.CallsDynamic++
			write(trace.Record{PC: fnBase + 0x20, Target: callPC + 4, Class: trace.Return, Taken: true})
			sum.RetsDynamic++
		}

		// Single-target (GOT-style) indirect call, periodic and chained
		// off the last indirect target so its PIB-history pollution is
		// recurrent rather than context-splitting.
		if stEvery > 0 && mix(chainState()^0x60f)%stEvery == 0 {
			st := mix(lastIndirect[0]^0x57) % 6
			stPC := uint64(stBase) + st*0x100
			stTgt := uint64(stBase) + 0x10000 + st*0x400
			write(trace.Record{PC: stPC, Target: stTgt, Class: trace.IndirectJsr, Taken: true, MT: false})
			sum.STDynamic++
			write(trace.Record{PC: stTgt + 0x20, Target: stPC + 4, Class: trace.Return, Taken: true})
			sum.RetsDynamic++
		}

		// Conditional branch burst. The burst length and the outcome
		// pattern are deterministic functions of the pattern counter so
		// the all-branch (PB) path history revisits a bounded set of
		// contexts, the way loop-dominated real code does; CondNoise
		// mixes in data-dependent randomness.
		n := c.CondPerEvent
		if n > 0 {
			n += int(mix(chainState()^0x7777) & 1)
		}
		for i := 0; i < n; i++ {
			ci := i % condSites
			pc := uint64(condBase) + uint64(ci)*0x10
			var taken bool
			if rng.Bool(c.CondNoise) {
				taken = rng.Bool(takenBias)
			} else {
				taken = (patCtr>>(uint(ci)%patBits))&1 == 1
			}
			target := pc + 4
			if taken {
				// Bit 6 marks taken targets (CondDriven sites read it);
				// the site index lives in bits 8+ so the two never mix,
				// and the pair survives the predictors' 5-bit XOR folds.
				target = pc + 0x44 + uint64(ci)*0x100
			}
			write(trace.Record{PC: pc, Target: target, Class: trace.CondDirect, Taken: taken})
			sum.CondDynamic++
		}

		// The MT indirect dispatch event itself. Chained selection makes
		// the next site a deterministic function of recent indirect
		// targets (data-dependent control flow, as in interpreters and
		// visitor-pattern code); with probability ChainNoise the program
		// teleports back to an earlier configuration instead.
		if patCtr%16 == 0 {
			takeSnap()
		}
		var s *Site
		if c.ChainSites {
			if rng.Bool(c.ChainNoise) {
				teleport()
			}
			s = pick(int(chainState() % uint64(total)))
		} else {
			s = pick(rng.Intn(total))
		}
		idx := s.Spec.Behavior.Next(ctx, s)
		target := s.Targets[idx]
		mt := s.Spec.NumTargets > 1
		rec := trace.Record{PC: s.PC, Target: target, Class: s.Spec.Class, Taken: true, MT: mt}
		if mt && s.Spec.Class == trace.IndirectJmp {
			// Switch dispatch: expose the switch variable value (1-based
			// arm index) for the Case Block Table study.
			rec.Value = uint32(idx) + 1
		}
		write(rec)
		s.selfHist.Push(target)
		s.Execs++
		copy(lastIndirect[1:], lastIndirect)
		lastIndirect[0] = target
		if mt {
			sum.MTDynamic++
		} else {
			sum.STDynamic++
		}
		// Virtual/function-pointer calls return to the call site.
		if s.Spec.Class == trace.IndirectJsr {
			write(trace.Record{PC: target + 0x20, Target: s.PC + 4, Class: trace.Return, Taken: true})
			sum.RetsDynamic++
		}
	}

	sum.SiteByPC = make(map[uint64]string, len(sites))
	for i, s := range sites {
		sum.SiteExecs[i] = s.Execs
		if s.Spec.NumTargets > 1 {
			sum.MTStatic++
		}
		sum.SiteByPC[s.PC] = s.Spec.Label
	}
	return sum
}

// ExpectedRecords returns a deterministic upper bound on the number of
// records Generate emits, from the per-event worst case: the dispatch
// itself, its return when any site is an indirect call, the conditional
// burst (CondPerEvent plus the one-branch jitter), and the call/return and
// single-target pairs when their rates are enabled. Records preallocates
// this capacity so a run materializes without a single slice reallocation.
func (c Config) ExpectedRecords() int {
	if c.Events <= 0 {
		return 0
	}
	per := 1 // the MT/ST dispatch event
	if c.CondPerEvent > 0 {
		per += c.CondPerEvent + 1
	}
	if c.CallRate > 0 {
		per += 2
	}
	if c.STRate > 0 {
		per += 2
	}
	for _, s := range c.Sites {
		if s.Class == trace.IndirectJsr {
			per++ // indirect calls return to the call site
			break
		}
	}
	return c.Events * per
}

// Records generates the run into memory, preallocated to ExpectedRecords so
// the append loop never reallocates. Convenient for tests and the
// experiment harness; very long runs should stream via Generate.
func (c Config) Records() ([]trace.Record, Summary) {
	recs := make([]trace.Record, 0, c.ExpectedRecords())
	sum := c.Generate(func(r trace.Record) { recs = append(recs, r) })
	return recs, sum
}
