package workload

import (
	"fmt"

	"repro/internal/history"
)

// Stream selects which emitted path history a correlated site reads.
type Stream uint8

const (
	// PIB correlates the site with the targets of previous indirect
	// branches (the stream the paper found most branches prefer).
	PIB Stream = iota
	// PB correlates the site with the targets of all previous branches,
	// including conditional branch outcomes — the correlation only the
	// hybrid PPM predictor's PB history register can capture.
	PB
	// Self correlates the site with its own previous targets.
	Self
)

// String names the stream.
func (s Stream) String() string {
	switch s {
	case PIB:
		return "PIB"
	case PB:
		return "PB"
	case Self:
		return "self"
	}
	return fmt.Sprintf("Stream(%d)", uint8(s))
}

// Context is the generator state visible to site behaviours: the actual
// emitted path histories. Behaviours derive next targets from these, which
// guarantees the correlation they model is present in the trace a predictor
// observes.
type Context struct {
	RNG     *RNG
	PIBHist *history.PHR // targets of emitted indirect jmp/jsr
	PBHist  *history.PHR // targets of every emitted branch
	scratch []uint64
}

// pathHash deterministically mixes the `order` most recent targets of the
// requested stream (quantized to quantBits low bits each) with a per-site
// salt. The quantization bounds the reachable context space so correlated
// targets recur and are learnable.
func (c *Context) pathHash(s *Site, stream Stream, order int, quantBits uint) uint64 {
	var src *history.PHR
	switch stream {
	case PIB:
		src = c.PIBHist
	case PB:
		src = c.PBHist
	case Self:
		src = s.selfHist
	}
	recent := src.Recent(c.scratch[:0], order)
	h := mix(s.salt)
	mask := (uint64(1) << quantBits) - 1
	for _, t := range recent {
		h = mix(h ^ ((t >> 4) & mask))
	}
	c.scratch = recent[:0]
	return h
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Behavior produces the next target index for a site.
type Behavior interface {
	// Next returns the index into s.Targets for the site's next
	// execution.
	Next(ctx *Context, s *Site) int
	// String describes the behaviour for diagnostics.
	String() string
}

// Monomorphic sites overwhelmingly use their first target; Bias gives the
// probability (default 1.0) and the remaining mass spreads over the other
// targets. These are the branches a BTB already predicts and the Cascade
// filter isolates.
type Monomorphic struct {
	// Bias is the probability of target 0. Zero value means 1.0.
	Bias float64
}

// Next implements Behavior.
func (m Monomorphic) Next(ctx *Context, s *Site) int {
	bias := m.Bias
	if bias == 0 {
		bias = 1
	}
	if len(s.Targets) == 1 || ctx.RNG.Bool(bias) {
		return 0
	}
	return 1 + ctx.RNG.Intn(len(s.Targets)-1)
}

// String implements Behavior.
func (m Monomorphic) String() string { return "monomorphic" }

// LowEntropy sites stay on their current target and hop to another with a
// small probability — the "target changes infrequently" class that BTB2b
// hysteresis and the Cascade filter capture well.
type LowEntropy struct {
	// SwitchProb is the per-execution probability of hopping.
	SwitchProb float64
}

// Next implements Behavior.
func (l LowEntropy) Next(ctx *Context, s *Site) int {
	if ctx.RNG.Bool(l.SwitchProb) {
		s.cur = ctx.RNG.Intn(len(s.Targets))
	}
	return s.cur
}

// String implements Behavior.
func (l LowEntropy) String() string { return fmt.Sprintf("low-entropy(p=%g)", l.SwitchProb) }

// Correlated sites choose their next target as a deterministic hash of the
// most recent path history — PIB, PB or the site's own targets — with an
// optional noise fraction. These are the branches path-based predictors are
// built for; Order controls how much history is needed, so predictors whose
// effective path length is shorter than Order cannot capture the site.
type Correlated struct {
	Stream Stream
	// Order is the number of history targets the mapping depends on.
	Order int
	// Noise is the probability of a uniformly random target instead.
	Noise float64
	// QuantBits quantizes history targets in the mapping (default 6),
	// bounding the context space so it recurs.
	QuantBits uint
}

// Next implements Behavior.
func (c Correlated) Next(ctx *Context, s *Site) int {
	if ctx.RNG.Bool(c.Noise) {
		return ctx.RNG.Intn(len(s.Targets))
	}
	q := c.QuantBits
	if q == 0 {
		q = 6
	}
	h := ctx.pathHash(s, c.Stream, c.Order, q)
	return int(h % uint64(len(s.Targets)))
}

// String implements Behavior.
func (c Correlated) String() string {
	return fmt.Sprintf("correlated(%s,order=%d,noise=%g)", c.Stream, c.Order, c.Noise)
}

// CondDriven sites select their target from the taken bits of the most
// recent conditional-branch outcomes (read from the PB path as the taken
// bit encoded in each target's bit 6). This is the population that only a
// predictor observing all-branch path history — the hybrid PPM's PB
// register — can capture: the selecting data never appears in the
// indirect-branch stream. The mapping XOR-folds the outcome bits into the
// index so every observed bit matters; NumTargets should be <= 2^Order.
type CondDriven struct {
	// Order is the number of recent PB-path records consulted.
	Order int
	// Noise is the probability of a uniformly random target instead.
	Noise float64
}

// Next implements Behavior.
func (c CondDriven) Next(ctx *Context, s *Site) int {
	if ctx.RNG.Bool(c.Noise) {
		return ctx.RNG.Intn(len(s.Targets))
	}
	recent := ctx.PBHist.Recent(ctx.scratch[:0], c.Order)
	v := 0
	for _, t := range recent {
		v = v<<1 | int((t>>6)&1)
	}
	ctx.scratch = recent[:0]
	// XOR-fold v into the index width so every outcome bit influences the
	// selection even when the target count is small.
	width := 1
	for 1<<width < len(s.Targets) {
		width++
	}
	folded := 0
	for v != 0 {
		folded ^= v & (1<<width - 1)
		v >>= width
	}
	return folded % len(s.Targets)
}

// String implements Behavior.
func (c CondDriven) String() string {
	return fmt.Sprintf("cond-driven(order=%d,noise=%g)", c.Order, c.Noise)
}

// Cyclic sites walk their target list in order (a loop over a switch),
// giving perfect self/PIB order-1 correlation.
type Cyclic struct{}

// Next implements Behavior.
func (Cyclic) Next(_ *Context, s *Site) int {
	s.cur = (s.cur + 1) % len(s.Targets)
	return s.cur
}

// String implements Behavior.
func (Cyclic) String() string { return "cyclic" }

// Uniform sites pick uniformly at random — inherently unpredictable mass
// that sets the noise floor of a benchmark.
type Uniform struct{}

// Next implements Behavior.
func (Uniform) Next(ctx *Context, s *Site) int { return ctx.RNG.Intn(len(s.Targets)) }

// String implements Behavior.
func (Uniform) String() string { return "uniform" }
