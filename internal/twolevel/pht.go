// Package twolevel implements the two-level adaptive indirect-branch
// predictors evaluated in Section 5 of the paper: GAp (Driesen & Hölzle),
// the Target Cache (Chang et al.) and the Dual-path hybrid. All share a
// Pattern History Table whose entries hold a full target, the 2-bit
// replacement-hysteresis counter, a valid bit and (for the tagged variants
// used inside the Cascade predictor) a tag with true-LRU replacement.
package twolevel

import (
	"fmt"

	"repro/internal/counter"
)

// PHTEntry is one target-holding entry.
type PHTEntry struct {
	valid  bool
	tag    uint64
	target uint64
	hyst   counter.Hysteresis
	lru    uint64
	u      uint8 // usefulness, 0..phtUMax; maintained only in useful mode
}

// phtUMax caps the 2-bit per-entry usefulness counter of the u-bit tables.
const phtUMax = 3

// Target returns the stored target; meaningful only when the entry is valid.
func (e *PHTEntry) Target() uint64 { return e.target }

// Valid reports whether the entry holds a target.
func (e *PHTEntry) Valid() bool { return e.valid }

// PHT is a pattern history table of targets, optionally tagged and
// set-associative with true-LRU replacement (the organisation the Cascade
// predictor requires).
type PHT struct {
	sets   [][]PHTEntry
	assoc  int
	tagged bool
	clock  uint64

	// useful mode (the ITTAGE-style u-bit management grafted onto the 1998
	// tagged cascade): entries carry a usefulness counter, eviction only
	// claims ways whose counter has decayed to zero, and the counters halve
	// every resetPeriod updates.
	useful      bool
	resetPeriod uint64
}

// NewPHT builds a table with the given total number of entries and
// associativity. tagged selects tag-matching lookup; tagless tables must be
// direct mapped, as in the paper's tagless designs. Panics if entries is not
// a positive power of two, assoc does not divide entries, or a tagless table
// is not direct mapped.
func NewPHT(entries, assoc int, tagged bool) *PHT {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("twolevel: entries must be a positive power of two, got %d", entries))
	}
	if assoc <= 0 || entries%assoc != 0 {
		panic(fmt.Sprintf("twolevel: associativity %d does not divide %d entries", assoc, entries))
	}
	if !tagged && assoc != 1 {
		panic("twolevel: tagless tables must be direct mapped")
	}
	nsets := entries / assoc
	sets := make([][]PHTEntry, nsets)
	backing := make([]PHTEntry, entries)
	for i := range sets {
		sets[i], backing = backing[:assoc], backing[assoc:]
	}
	return &PHT{sets: sets, assoc: assoc, tagged: tagged}
}

// NewPHTUseful builds a tagged table whose replacement is governed by
// per-entry usefulness counters: a way is only evictable once its counter
// reaches zero, a displaced-but-useful set decays instead of allocating,
// and every resetPeriod updates the counters halve (the graceful reset).
// Panics under the same geometry rules as NewPHT, or if the table is not
// tagged (tagless tables have no victim choice to manage) or resetPeriod
// is zero.
func NewPHTUseful(entries, assoc int, resetPeriod uint64) *PHT {
	if resetPeriod == 0 {
		panic("twolevel: useful-mode reset period must be positive")
	}
	t := NewPHT(entries, assoc, true)
	t.useful = true
	t.resetPeriod = resetPeriod
	return t
}

// Sets returns the number of sets (the index space of the table).
func (t *PHT) Sets() int { return len(t.sets) }

// Entries returns the total entry count.
func (t *PHT) Entries() int { return len(t.sets) * t.assoc }

// IndexBits returns how many index bits the table consumes.
func (t *PHT) IndexBits() uint {
	n := uint(0)
	for s := len(t.sets); s > 1; s >>= 1 {
		n++
	}
	return n
}

// Lookup returns the entry for (index, tag): in a tagless table, the
// direct-mapped slot; in a tagged table, the way whose tag matches, or nil
// on a tag miss. Lookup does not modify LRU state; Touch does.
func (t *PHT) Lookup(index, tag uint64) *PHTEntry {
	set := t.sets[index&uint64(len(t.sets)-1)]
	if !t.tagged {
		e := &set[0]
		if e.valid {
			return e
		}
		return nil
	}
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Update trains the entry for (index, tag) with the actual target:
// a hit on the stored target strengthens its hysteresis; a miss weakens it
// and replaces the target after two consecutive misses. Missing entries are
// allocated, displacing the LRU way in tagged tables. allocate=false
// suppresses allocation (used by the Cascade filter protocol).
func (t *PHT) Update(index, tag, target uint64, allocate bool) {
	t.clock++
	setIdx := index & uint64(len(t.sets)-1)
	set := t.sets[setIdx]
	if t.useful {
		t.updateUseful(set, tag, target, allocate)
		return
	}
	if !t.tagged {
		e := &set[0]
		if !e.valid {
			if allocate {
				*e = PHTEntry{valid: true, target: target, hyst: counter.NewHysteresis()}
			}
			return
		}
		train(e, target)
		return
	}
	var victim *PHTEntry
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = t.clock
			train(&set[i], target)
			return
		}
		if victim == nil || !set[i].valid || (victim.valid && set[i].lru < victim.lru) {
			if !set[i].valid || victim == nil || victim.valid {
				victim = &set[i]
			}
		}
	}
	if !allocate {
		return
	}
	*victim = PHTEntry{valid: true, tag: tag, target: target, hyst: counter.NewHysteresis(), lru: t.clock}
}

// Touch refreshes the LRU stamp of a tag-matching entry after a lookup hit.
func (t *PHT) Touch(index, tag uint64) {
	if !t.tagged {
		return
	}
	t.clock++
	set := t.sets[index&uint64(len(t.sets)-1)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = t.clock
			return
		}
	}
}

// updateUseful is the u-bit train/replace discipline. On a tag hit the
// usefulness follows whether the resident target was right for this branch
// before hysteresis training adjusts it; on a miss, eviction may only claim
// an invalid way or the least recent way whose usefulness is zero — when
// every way is defended the whole set decays by one instead, so a stream of
// conflicting branches ages resident entries out gradually rather than
// thrashing them. The clock doubles as the graceful-reset timer.
func (t *PHT) updateUseful(set []PHTEntry, tag, target uint64, allocate bool) {
	if t.resetPeriod > 0 && t.clock%t.resetPeriod == 0 {
		t.halveUseful()
	}
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			e := &set[i]
			e.lru = t.clock
			if e.target == target {
				if e.u < phtUMax {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
			train(e, target)
			return
		}
	}
	var victim *PHTEntry
	for i := range set {
		e := &set[i]
		if !e.valid {
			victim = e
			break
		}
		if e.u == 0 && (victim == nil || e.lru < victim.lru) {
			victim = e
		}
	}
	if !allocate {
		return
	}
	if victim == nil {
		for i := range set {
			if set[i].u > 0 {
				set[i].u--
			}
		}
		return
	}
	*victim = PHTEntry{valid: true, tag: tag, target: target, hyst: counter.NewHysteresis(), lru: t.clock}
}

// halveUseful ages every usefulness counter, forgetting stale protection
// without wiping the working set.
func (t *PHT) halveUseful() {
	for _, set := range t.sets {
		for i := range set {
			set[i].u >>= 1
		}
	}
}

func train(e *PHTEntry, target uint64) {
	if e.target == target {
		e.hyst.OnHit()
		return
	}
	if e.hyst.OnMiss() {
		e.target = target
	}
}

// Reset clears the table to power-up state.
func (t *PHT) Reset() {
	for _, set := range t.sets {
		for i := range set {
			set[i] = PHTEntry{}
		}
	}
	t.clock = 0
}
