package twolevel

import (
	"testing"

	"repro/internal/history"
	"repro/internal/trace"
)

func mtRec(pc, target uint64) trace.Record {
	return trace.Record{PC: pc, Target: target, Class: trace.IndirectJmp, Taken: true, MT: true}
}

func TestPHTTaglessBasics(t *testing.T) {
	p := NewPHT(8, 1, false)
	if p.Sets() != 8 || p.Entries() != 8 || p.IndexBits() != 3 {
		t.Fatalf("geometry: sets=%d entries=%d bits=%d", p.Sets(), p.Entries(), p.IndexBits())
	}
	if p.Lookup(3, 0) != nil {
		t.Fatal("cold entry valid")
	}
	p.Update(3, 0, 0x100, true)
	e := p.Lookup(3, 0)
	if e == nil || e.Target() != 0x100 {
		t.Fatal("update did not allocate")
	}
	// Tagless lookup ignores the tag argument entirely.
	if p.Lookup(3, 999) == nil {
		t.Fatal("tagless lookup rejected on tag")
	}
}

func TestPHTHysteresis(t *testing.T) {
	p := NewPHT(8, 1, false)
	p.Update(0, 0, 0xA, true)
	p.Update(0, 0, 0xA, true) // strengthen
	p.Update(0, 0, 0xB, true) // miss 1
	if p.Lookup(0, 0).Target() != 0xA {
		t.Fatal("replaced too early")
	}
	p.Update(0, 0, 0xB, true) // miss 2
	p.Update(0, 0, 0xB, true) // miss 3 -> replace (started from value 2)
	if p.Lookup(0, 0).Target() != 0xB {
		t.Fatal("never replaced")
	}
}

func TestPHTNoAllocate(t *testing.T) {
	p := NewPHT(8, 1, false)
	p.Update(5, 0, 0x1, false)
	if p.Lookup(5, 0) != nil {
		t.Fatal("allocate=false still allocated")
	}
	// But existing entries still train.
	p.Update(5, 0, 0x1, true)
	p.Update(5, 0, 0x2, false)
	p.Update(5, 0, 0x2, false)
	p.Update(5, 0, 0x2, false)
	if p.Lookup(5, 0).Target() != 0x2 {
		t.Fatal("allocate=false blocked training of existing entry")
	}
}

func TestPHTTaggedLRU(t *testing.T) {
	p := NewPHT(8, 4, true) // 2 sets of 4 ways
	// Fill one set with 4 tags.
	for tag := uint64(1); tag <= 4; tag++ {
		p.Update(0, tag, tag*0x10, true)
	}
	for tag := uint64(1); tag <= 4; tag++ {
		if e := p.Lookup(0, tag); e == nil || e.Target() != tag*0x10 {
			t.Fatalf("tag %d missing after fill", tag)
		}
	}
	// Touch tag 1 so tag 2 becomes LRU, then insert tag 5.
	p.Touch(0, 1)
	p.Update(0, 5, 0x50, true)
	if p.Lookup(0, 2) != nil {
		t.Error("LRU victim (tag 2) survived")
	}
	if p.Lookup(0, 1) == nil || p.Lookup(0, 5) == nil {
		t.Error("recently used or new entry missing")
	}
}

func TestPHTTaggedMissOnWrongTag(t *testing.T) {
	p := NewPHT(8, 2, true)
	p.Update(1, 7, 0x70, true)
	if p.Lookup(1, 8) != nil {
		t.Error("tag mismatch returned an entry")
	}
}

func TestPHTPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewPHT(7, 1, false) },
		func() { NewPHT(8, 3, true) },
		func() { NewPHT(8, 2, false) }, // tagless must be direct mapped
		func() { NewPHT(0, 1, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			f()
		}()
	}
}

// driveCycle feeds a deterministic cyclic target pattern at one site to a
// predictor and returns its accuracy after warm-up.
func driveCycle(t *testing.T, predict func(uint64) (uint64, bool), update func(uint64, uint64), observe func(trace.Record), targets []uint64, n int) float64 {
	t.Helper()
	const pc = 0x120004c0
	correct, total := 0, 0
	for i := 0; i < n; i++ {
		want := targets[i%len(targets)]
		got, ok := predict(pc)
		if i > n/4 {
			total++
			if ok && got == want {
				correct++
			}
		}
		update(pc, want)
		observe(mtRec(pc, want))
	}
	return float64(correct) / float64(total)
}

func TestGApLearnsPathPattern(t *testing.T) {
	g := PaperGAp()
	targets := []uint64{0x14000af4, 0x1400b128, 0x1400c75c, 0x1400d390}
	if acc := driveCycle(t, g.Predict, g.Update, g.Observe, targets, 2000); acc < 0.98 {
		t.Errorf("GAp accuracy on 4-cycle = %.3f, want >= 0.98", acc)
	}
}

func TestTargetCacheLearnsPathPattern(t *testing.T) {
	tc := PaperTCPIB()
	targets := []uint64{0x14000af4, 0x1400b128, 0x1400c75c, 0x1400d390}
	if acc := driveCycle(t, tc.Predict, tc.Update, tc.Observe, targets, 2000); acc < 0.98 {
		t.Errorf("TC accuracy on 4-cycle = %.3f, want >= 0.98", acc)
	}
}

func TestTargetCacheImmediateUpdate(t *testing.T) {
	tc := NewTargetCache(TargetCacheConfig{
		Entries: 64, HistoryBits: 6, BitsPerTarget: 2,
		HistoryStream: history.IndirectBranches,
	})
	const pc = 0x1200
	tc.Predict(pc)
	tc.Update(pc, 0xA0)
	tc.Predict(pc)
	tc.Update(pc, 0xB0)
	// TC replaces immediately: with frozen history the same index now
	// holds B.
	if got, _ := tc.Predict(pc); got != 0xB0 {
		t.Fatalf("TC did not replace immediately: %#x", got)
	}
}

func TestDualPathSelectsBetterComponent(t *testing.T) {
	d := PaperDualPath()
	// A pattern needing path length >1: target depends on the previous
	// two targets. The long (path 3) component can capture it; the short
	// (path 1) can only partially.
	targets := []uint64{0x14000af4, 0x1400b128, 0x14000af4, 0x1400c75c, 0x1400b128, 0x1400d390}
	if acc := driveCycle(t, d.Predict, d.Update, d.Observe, targets, 4000); acc < 0.95 {
		t.Errorf("Dpath accuracy on order-2 cycle = %.3f, want >= 0.95", acc)
	}
}

func TestDualPathFallsBackAcrossComponents(t *testing.T) {
	d := PaperDualPath()
	// First prediction: both components cold -> no prediction, not a
	// crash.
	if _, ok := d.Predict(0x1200); ok {
		t.Fatal("cold Dpath predicted")
	}
	d.Update(0x1200, 0x4000)
	d.Observe(mtRec(0x1200, 0x4000))
	if _, ok := d.Predict(0x1200); !ok {
		t.Fatal("Dpath did not predict after training")
	}
	if !d.Hit() {
		t.Fatal("Hit() false after a component hit")
	}
}

func TestGApUpdateAllocFalse(t *testing.T) {
	g := NewGAp(GApConfig{
		Entries: 64, PHTs: 1, Assoc: 1, PathLength: 2, BitsPerTarget: 2,
		HistoryStream: history.IndirectBranches, Indexing: GShare,
	})
	g.Predict(0x1200)
	g.UpdateAlloc(0x1200, 0x40, false)
	if _, ok := g.Predict(0x1200); ok {
		t.Fatal("UpdateAlloc(false) allocated")
	}
}

func TestResets(t *testing.T) {
	g := PaperGAp()
	tc := PaperTCPIB()
	d := PaperDualPath()
	for i := 0; i < 50; i++ {
		tgt := uint64(0x14000000 + i*0x40)
		for _, p := range []interface {
			Predict(uint64) (uint64, bool)
			Update(uint64, uint64)
			Observe(trace.Record)
		}{g, tc, d} {
			p.Predict(0x1200)
			p.Update(0x1200, tgt)
			p.Observe(mtRec(0x1200, tgt))
		}
	}
	g.Reset()
	tc.Reset()
	d.Reset()
	if _, ok := g.Predict(0x1200); ok {
		t.Error("GAp survived Reset")
	}
	if _, ok := tc.Predict(0x1200); ok {
		t.Error("TC survived Reset")
	}
	if _, ok := d.Predict(0x1200); ok {
		t.Error("Dpath survived Reset")
	}
}

func TestPaperBudgets(t *testing.T) {
	if got := PaperGAp().Entries(); got != 2048 {
		t.Errorf("GAp entries = %d, want 2048", got)
	}
	if got := PaperTCPIB().Entries(); got != 2048 {
		t.Errorf("TC entries = %d, want 2048", got)
	}
	if got := PaperDualPath().Entries(); got != 2048 {
		t.Errorf("Dpath entries = %d, want 2048", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bads := []GApConfig{
		{Entries: 100, PHTs: 1, Assoc: 1, PathLength: 1, BitsPerTarget: 2},
		{Entries: 64, PHTs: 3, Assoc: 1, PathLength: 1, BitsPerTarget: 2},
		{Entries: 64, PHTs: 1, Assoc: 1, PathLength: 0, BitsPerTarget: 2},
		{Entries: 64, PHTs: 1, Assoc: 1, PathLength: 1, BitsPerTarget: 0},
		{Entries: 64, PHTs: 1, Assoc: 1, PathLength: 1, BitsPerTarget: 40},
	}
	for i, cfg := range bads {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewGAp(cfg)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad TC config did not panic")
			}
		}()
		NewTargetCache(TargetCacheConfig{Entries: 63, HistoryBits: 4, BitsPerTarget: 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad Dpath selector count did not panic")
			}
		}()
		NewDualPath(DualPathConfig{Selectors: 3})
	}()
}
