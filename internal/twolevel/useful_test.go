package twolevel

import (
	"bytes"
	"testing"

	"repro/internal/history"
	"repro/internal/state"
)

func TestUsefulVictimSelection(t *testing.T) {
	// One set, 4 ways, a reset period too long to trigger here.
	pht := NewPHTUseful(4, 4, 1<<40)

	// Fill all four ways and make each resident target useful once (tag
	// hit on the right target raises u to 1).
	for tag := uint64(1); tag <= 4; tag++ {
		pht.Update(0, tag, 0x100*tag, true)
		pht.Update(0, tag, 0x100*tag, true)
	}
	// A fifth branch must NOT displace any defended way: the whole set
	// decays by one instead and the newcomer is not allocated.
	pht.Update(0, 9, 0x900, true)
	if e := pht.Lookup(0, 9); e != nil {
		t.Fatal("newcomer displaced a defended way")
	}
	for tag := uint64(1); tag <= 4; tag++ {
		if e := pht.Lookup(0, tag); e == nil {
			t.Fatalf("resident tag %d was evicted while defended", tag)
		}
	}
	// After the decay every u is back to zero, so the next conflicting
	// branch claims the least recent way.
	pht.Update(0, 9, 0x900, true)
	if e := pht.Lookup(0, 9); e == nil || e.Target() != 0x900 {
		t.Fatal("newcomer not allocated once the set decayed to u=0")
	}
	if e := pht.Lookup(0, 1); e != nil {
		t.Fatal("expected the least recent way (tag 1) to be the victim")
	}
}

func TestUsefulWrongTargetLowersProtection(t *testing.T) {
	pht := NewPHTUseful(4, 4, 1<<40)
	pht.Update(0, 1, 0x100, true)
	pht.Update(0, 1, 0x100, true) // u: 0 -> 1
	pht.Update(0, 1, 0x200, true) // wrong resident target: u back to 0
	// Now a conflicting branch can claim a way immediately (three invalid
	// ways exist, so check protection via a full set instead).
	for tag := uint64(2); tag <= 4; tag++ {
		pht.Update(0, tag, 0x100*tag, true)
	}
	pht.Update(0, 9, 0x900, true)
	if e := pht.Lookup(0, 9); e == nil {
		t.Fatal("u==0 ways must be evictable without a decay round")
	}
}

func TestUsefulGracefulReset(t *testing.T) {
	period := uint64(8)
	pht := NewPHTUseful(4, 4, period)
	pht.Update(0, 1, 0x100, true)
	for i := 0; i < 3; i++ {
		pht.Update(0, 1, 0x100, true) // saturate u to phtUMax
	}
	// Drive the clock across a reset boundary with touches + updates.
	for i := 0; i < 2*int(period); i++ {
		pht.Update(0, 1, 0x100, true)
	}
	// u saturates at 3 but each reset halves it; right after a halving it
	// is at most 1 before retraining. We can't observe u directly, so pin
	// the observable consequence: after a reset plus three conflicting
	// updates the resident way becomes evictable. Saturated-without-reset
	// would need at least phtUMax decays.
	snapBefore := state.SaveBytes(pht)
	pht2 := NewPHTUseful(4, 4, period)
	if err := state.LoadBytes(pht2, snapBefore); err != nil {
		t.Fatalf("useful PHT snapshot round-trip: %v", err)
	}
	if !bytes.Equal(state.SaveBytes(pht2), snapBefore) {
		t.Fatal("useful PHT re-snapshot not byte-identical")
	}
}

func TestUsefulGApSnapshotRoundTrip(t *testing.T) {
	mk := func() *GAp {
		return NewGAp(GApConfig{
			Name: "u", Entries: 64, PHTs: 1, Assoc: 4, Tagged: true,
			PathLength: 4, BitsPerTarget: 6, HistoryBits: 24,
			HistoryStream: history.MTIndirectBranches, Indexing: ReverseInterleave,
			Useful: true, UsefulResetPeriod: 32,
		})
	}
	g := mk()
	for i := uint64(0); i < 500; i++ {
		pc := 0x4000 + (i%13)*4
		tgt := 0x9000 + (i%7)*4
		g.Predict(pc)
		g.Update(pc, tgt)
		g.hist.Push(tgt)
	}
	snap := append([]byte(nil), state.SaveBytes(g)...)
	h := mk()
	if err := state.LoadBytes(h, snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !bytes.Equal(state.SaveBytes(h), snap) {
		t.Fatal("re-snapshot not byte-identical")
	}
	// A non-useful twin must refuse the snapshot with a typed mismatch.
	plain := NewGAp(GApConfig{
		Name: "p", Entries: 64, PHTs: 1, Assoc: 4, Tagged: true,
		PathLength: 4, BitsPerTarget: 6, HistoryBits: 24,
		HistoryStream: history.MTIndirectBranches, Indexing: ReverseInterleave,
	})
	if err := state.LoadBytes(plain, snap); err == nil {
		t.Fatal("useful snapshot restored into a plain GAp")
	}
}

func TestUsefulConfigValidation(t *testing.T) {
	for name, cfg := range map[string]GApConfig{
		"untagged": {Entries: 64, PHTs: 1, Assoc: 1, PathLength: 4,
			BitsPerTarget: 6, Useful: true, UsefulResetPeriod: 32},
		"no-period": {Entries: 64, PHTs: 1, Assoc: 4, Tagged: true,
			PathLength: 4, BitsPerTarget: 6, Useful: true},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s config did not panic", name)
				}
			}()
			NewGAp(cfg)
		}()
	}
}
