package twolevel

import (
	"testing"

	"repro/internal/history"
)

// TestTaggedTCRejectsAliases: two branches sharing an index must not serve
// each other's targets when tags are on.
func TestTaggedTCRejectsAliases(t *testing.T) {
	mk := func(tagged bool) *TargetCache {
		return NewTargetCache(TargetCacheConfig{
			Entries: 2, HistoryBits: 1, BitsPerTarget: 1,
			HistoryStream: history.IndirectBranches, Tagged: tagged,
		})
	}
	// With a 1-entry-per-index table and history frozen at zero, any two
	// PCs with equal low index bits collide.
	pcA, pcB := uint64(0x1000), uint64(0x1000+2*4*2) // same gshare index mod 2
	tagless := mk(false)
	tagless.Predict(pcA)
	tagless.Update(pcA, 0xAAAA)
	if got, ok := tagless.Predict(pcB); !ok || got != 0xAAAA {
		t.Skip("chosen PCs do not collide in this geometry")
	}

	tagged := mk(true)
	tagged.Predict(pcA)
	tagged.Update(pcA, 0xAAAA)
	if _, ok := tagged.Predict(pcB); ok {
		t.Error("tagged TC served another branch's target")
	}
	// And the owner still hits.
	if got, ok := tagged.Predict(pcA); !ok || got != 0xAAAA {
		t.Errorf("tagged TC owner lookup = (%#x,%v)", got, ok)
	}
}

func TestTaggedTCStillLearns(t *testing.T) {
	tc := NewTargetCache(TargetCacheConfig{
		Entries: 2048, HistoryBits: 11, BitsPerTarget: 2,
		HistoryStream: history.IndirectBranches, Tagged: true,
	})
	targets := []uint64{0x14000af4, 0x1400b128, 0x1400c75c}
	if acc := driveCycle(t, tc.Predict, tc.Update, tc.Observe, targets, 2000); acc < 0.98 {
		t.Errorf("tagged TC accuracy on 3-cycle = %.3f", acc)
	}
}
