package twolevel

import (
	"fmt"

	"repro/internal/hashing"
	"repro/internal/history"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TargetCacheConfig parameterizes a Target Cache (Chang et al., ISCA 1997):
// a single tagless table of targets indexed by gshare of the branch address
// and a path history register recording partial targets from a selected
// branch stream. Unlike GAp entries, Target Cache entries are replaced
// immediately on a target mispredict.
type TargetCacheConfig struct {
	Name          string
	Entries       int // power of two
	HistoryBits   uint
	BitsPerTarget uint
	HistoryStream history.Stream
	// Tagged adds a branch-address tag to every entry (the tagged-variant
	// study the paper lists as future work): lookups require a tag match,
	// trading capacity for immunity to cross-branch aliasing.
	Tagged bool
}

// TargetCache is the TC predictor of Section 5.
type TargetCache struct {
	cfg        TargetCacheConfig
	table      []tcEntry
	hist       *history.PHR
	pending    uint64
	pendingTag uint64
}

type tcEntry struct {
	valid  bool
	tag    uint64
	target uint64
}

// NewTargetCache builds a Target Cache. Panics on invalid configuration.
func NewTargetCache(cfg TargetCacheConfig) *TargetCache {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic(fmt.Sprintf("twolevel: target cache entries must be a positive power of two, got %d", cfg.Entries))
	}
	if cfg.BitsPerTarget == 0 {
		panic("twolevel: target cache bits per target must be positive")
	}
	depth := int((cfg.HistoryBits + cfg.BitsPerTarget - 1) / cfg.BitsPerTarget)
	if depth < 1 {
		depth = 1
	}
	return &TargetCache{
		cfg:   cfg,
		table: make([]tcEntry, cfg.Entries),
		hist:  history.New(cfg.HistoryStream, depth, cfg.BitsPerTarget, cfg.HistoryBits),
	}
}

// Name implements predictor.IndirectPredictor.
func (t *TargetCache) Name() string {
	if t.cfg.Name != "" {
		return t.cfg.Name
	}
	return "TC"
}

// Entries implements predictor.Sized.
func (t *TargetCache) Entries() int { return t.cfg.Entries }

func (t *TargetCache) index(pc uint64) uint64 {
	bits := uint(0)
	for s := len(t.table); s > 1; s >>= 1 {
		bits++
	}
	return hashing.GShare(t.hist.Packed(), pc, bits)
}

// Predict implements predictor.IndirectPredictor.
func (t *TargetCache) Predict(pc uint64) (uint64, bool) {
	idx := t.index(pc)
	t.pending = idx
	t.pendingTag = hashing.Mix64(pc>>2) >> 40
	e := t.table[idx] //lint:idxsafe GShare truncates to floor(log2(len(table))) bits, so idx < len(table)
	if !e.valid {
		return 0, false
	}
	if t.cfg.Tagged && e.tag != t.pendingTag {
		return 0, false
	}
	return e.target, true
}

// Update implements predictor.IndirectPredictor. The Target Cache always
// installs the actual target — no replacement hysteresis.
func (t *TargetCache) Update(_, target uint64) {
	t.table[t.pending] = tcEntry{valid: true, tag: t.pendingTag, target: target} //lint:idxsafe pending holds the GShare-truncated index Predict stored
}

// Observe implements predictor.IndirectPredictor.
func (t *TargetCache) Observe(r trace.Record) { t.hist.Observe(r) }

// ProcessBlock implements the engine's batch fast path; like GAp, the only
// non-MT work is the history register, so the loop walks the index lane
// matching the configured stream.
//
//ppm:hotpath whole-block Target Cache replay over the indirect index lanes
func (t *TargetCache) ProcessBlock(b *trace.Block, c *stats.Counters) {
	pcs, tgts, metas := b.PC, b.Target, b.Meta
	switch t.hist.Stream() {
	case history.IndirectBranches:
		for _, k := range b.PIBIdx {
			tgt := tgts[k] //lint:idxsafe PIBIdx entries index the block's lanes by construction
			//lint:idxsafe PIBIdx entries index the block's lanes by construction
			if metas[k]&trace.MetaMT != 0 {
				pc := pcs[k] //lint:idxsafe PIBIdx entries index the block's lanes by construction
				target, ok := t.Predict(pc)
				c.Record(ok && target == tgt, ok)
				t.Update(pc, tgt)
			}
			t.hist.Push(tgt)
		}
	case history.MTIndirectBranches:
		for _, k := range b.MTIdx {
			pc := pcs[k]   //lint:idxsafe MTIdx entries index the block's lanes by construction
			tgt := tgts[k] //lint:idxsafe MTIdx entries index the block's lanes by construction
			target, ok := t.Predict(pc)
			c.Record(ok && target == tgt, ok)
			t.Update(pc, tgt)
			t.hist.Push(tgt)
		}
	default:
		for i := 0; i < b.Len(); i++ {
			r := b.Record(i)
			if r.MTIndirect() {
				target, ok := t.Predict(r.PC)
				c.Record(ok && target == r.Target, ok)
				t.Update(r.PC, r.Target)
			}
			t.hist.Observe(r)
		}
	}
}

// Reset implements predictor.Resetter.
func (t *TargetCache) Reset() {
	for i := range t.table {
		t.table[i] = tcEntry{}
	}
	t.hist.Reset()
}

// PaperTCPIB returns the exact TC-PIB configuration of Section 5: a tagless
// 2K-entry Target Cache, gshare indexed, with an 11-bit PIB path history
// register recording the 2 low-order bits of previous indirect-branch
// targets.
func PaperTCPIB() *TargetCache {
	return NewTargetCache(TargetCacheConfig{
		Name:          "TC-PIB",
		Entries:       2048,
		HistoryBits:   11,
		BitsPerTarget: 2,
		HistoryStream: history.IndirectBranches,
	})
}

var (
	_ predictor.IndirectPredictor = (*TargetCache)(nil)
	_ predictor.Sized             = (*TargetCache)(nil)
	_ predictor.Resetter          = (*TargetCache)(nil)
	_ predictor.Costed            = (*TargetCache)(nil)
)

// Bits implements predictor.Costed.
func (t *TargetCache) Bits() int {
	per := 30 + 1
	if t.cfg.Tagged {
		per += 24
	}
	return t.cfg.Entries*per + int(t.cfg.HistoryBits)
}
