package twolevel

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DualPathConfig parameterizes the Dual-path hybrid predictor of Driesen &
// Hölzle as evaluated in Section 5: two GAp components with a short and a
// long path length, arbitrated by a table of 2-bit selection counters
// indexed by branch address.
type DualPathConfig struct {
	Name      string
	Short     GApConfig
	Long      GApConfig
	Selectors int // power of two
}

// DualPath is the Dpath predictor.
type DualPath struct {
	cfg       DualPathConfig
	short     *GAp
	long      *GAp
	selectors []uint8 // 2-bit tournament counters; >=2 selects the long component
	pending   struct {
		selIdx            uint64
		shortTgt, longTgt uint64
		shortOK, longOK   bool
		chosenLong        bool
	}
}

// NewDualPath builds a Dual-path hybrid. Panics on invalid configuration.
func NewDualPath(cfg DualPathConfig) *DualPath {
	if cfg.Selectors <= 0 || cfg.Selectors&(cfg.Selectors-1) != 0 {
		panic(fmt.Sprintf("twolevel: selector count must be a positive power of two, got %d", cfg.Selectors))
	}
	sel := make([]uint8, cfg.Selectors)
	for i := range sel {
		sel[i] = 2 // weakly prefer the long-path component at power-up
	}
	return &DualPath{
		cfg:       cfg,
		short:     NewGAp(cfg.Short),
		long:      NewGAp(cfg.Long),
		selectors: sel,
	}
}

// Name implements predictor.IndirectPredictor.
func (d *DualPath) Name() string {
	if d.cfg.Name != "" {
		return d.cfg.Name
	}
	return "Dpath"
}

// Entries implements predictor.Sized. The selection counters hold no
// targets, so only the component PHT entries count toward the budget.
func (d *DualPath) Entries() int { return d.short.Entries() + d.long.Entries() }

// Predict implements predictor.IndirectPredictor.
func (d *DualPath) Predict(pc uint64) (uint64, bool) {
	sTgt, sOK := d.short.Predict(pc)
	lTgt, lOK := d.long.Predict(pc)
	selIdx := (pc >> 2) & uint64(len(d.selectors)-1)
	chooseLong := d.selectors[selIdx] >= 2

	p := &d.pending
	p.selIdx, p.shortTgt, p.longTgt, p.shortOK, p.longOK = selIdx, sTgt, lTgt, sOK, lOK

	// Prefer the chosen component; fall back to the other on a table miss
	// so a cold component does not force a no-prediction.
	switch {
	case chooseLong && lOK:
		p.chosenLong = true
		return lTgt, true
	case chooseLong && sOK:
		p.chosenLong = false
		return sTgt, true
	case !chooseLong && sOK:
		p.chosenLong = false
		return sTgt, true
	case lOK:
		p.chosenLong = true
		return lTgt, true
	}
	p.chosenLong = chooseLong
	return 0, false
}

// Update implements predictor.IndirectPredictor. Both components train on
// every resolved branch; the selection counter moves toward the component
// that was correct when exactly one of them was.
func (d *DualPath) Update(pc, target uint64) { d.UpdateAlloc(pc, target, true) }

// UpdateAlloc resolves the pending prediction like Update but lets the
// caller suppress allocation of new component entries, as the Cascade
// leaky-filter protocol requires.
func (d *DualPath) UpdateAlloc(pc, target uint64, allocate bool) {
	p := &d.pending
	shortRight := p.shortOK && p.shortTgt == target
	longRight := p.longOK && p.longTgt == target
	if shortRight != longRight {
		sel := &d.selectors[p.selIdx]
		if longRight {
			if *sel < 3 {
				*sel++
			}
		} else if *sel > 0 {
			*sel--
		}
	}
	d.short.UpdateAlloc(pc, target, allocate)
	d.long.UpdateAlloc(pc, target, allocate)
}

// Hit reports whether either component produced a prediction for the most
// recent Predict call — i.e. whether the tagged main predictor of a Cascade
// hierarchy answered.
func (d *DualPath) Hit() bool { return d.pending.shortOK || d.pending.longOK }

// Observe implements predictor.IndirectPredictor.
func (d *DualPath) Observe(r trace.Record) {
	d.short.Observe(r)
	d.long.Observe(r)
}

// MTOnly reports whether both components record only the MT-indirect
// stream — i.e. Observe is a no-op for every record outside the block's
// MTIdx lane. True for the paper's Dpath and Cascade configurations.
func (d *DualPath) MTOnly() bool {
	return d.short.hist.Stream() == history.MTIndirectBranches &&
		d.long.hist.Stream() == history.MTIndirectBranches
}

// PushMT shifts a resolved target into both components' history registers:
// the Observe step for a record already known to be in the MT-indirect
// stream. Callers (the batch paths here and in package cascade) must have
// checked MTOnly.
//
//ppm:hotpath per-record history-register shift
func (d *DualPath) PushMT(target uint64) {
	d.short.hist.Push(target)
	d.long.hist.Push(target)
}

// ProcessBlock implements the engine's batch fast path. With both
// components on the MT-indirect stream the entire predictor — lookup,
// training, selector and history — is driven by the MTIdx lane alone;
// exotic configurations replay record-exactly.
//
//ppm:hotpath whole-block Dual-path replay over the MT index lane
func (d *DualPath) ProcessBlock(b *trace.Block, c *stats.Counters) {
	if !d.MTOnly() {
		for i := 0; i < b.Len(); i++ {
			r := b.Record(i)
			if r.MTIndirect() {
				target, ok := d.Predict(r.PC)
				c.Record(ok && target == r.Target, ok)
				d.Update(r.PC, r.Target)
			}
			d.Observe(r)
		}
		return
	}
	pcs, tgts := b.PC, b.Target
	for _, k := range b.MTIdx {
		pc := pcs[k]   //lint:idxsafe MTIdx entries index the block's lanes by construction
		tgt := tgts[k] //lint:idxsafe MTIdx entries index the block's lanes by construction
		target, ok := d.Predict(pc)
		c.Record(ok && target == tgt, ok)
		d.Update(pc, tgt)
		d.PushMT(tgt)
	}
}

// Reset implements predictor.Resetter.
func (d *DualPath) Reset() {
	d.short.Reset()
	d.long.Reset()
	for i := range d.selectors {
		d.selectors[i] = 2
	}
}

// PaperDualPath returns the exact Dpath configuration of Section 5: two
// tagless 1K-entry GAp components with 24-bit path history registers,
// reverse-interleaving indexing, 2-bit replacement counters, path lengths 1
// and 3 (all recorded bits low-order), and a 1K table of 2-bit selection
// counters.
func PaperDualPath() *DualPath {
	return NewDualPath(DualPathConfig{
		Name:      "Dpath",
		Selectors: 1024,
		Short: GApConfig{
			Name:          "Dpath-short",
			Entries:       1024,
			PHTs:          1,
			Assoc:         1,
			PathLength:    1,
			BitsPerTarget: 24,
			HistoryBits:   24,
			HistoryStream: history.MTIndirectBranches,
			Indexing:      ReverseInterleave,
		},
		Long: GApConfig{
			Name:          "Dpath-long",
			Entries:       1024,
			PHTs:          1,
			Assoc:         1,
			PathLength:    3,
			BitsPerTarget: 8,
			HistoryBits:   24,
			HistoryStream: history.MTIndirectBranches,
			Indexing:      ReverseInterleave,
		},
	})
}

var (
	_ predictor.IndirectPredictor = (*DualPath)(nil)
	_ predictor.Sized             = (*DualPath)(nil)
	_ predictor.Resetter          = (*DualPath)(nil)
	_ predictor.Costed            = (*DualPath)(nil)
)

// Bits implements predictor.Costed.
func (d *DualPath) Bits() int {
	return d.short.Bits() + d.long.Bits() + 2*len(d.selectors)
}
