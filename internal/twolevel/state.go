package twolevel

import (
	"repro/internal/counter"
	"repro/internal/history"
	"repro/internal/state"
)

// Snapshot implements state.Snapshotter. The LRU clock and per-entry
// stamps travel with the entries: true-LRU victim choice is part of the
// predictor's observable behaviour, so a restored table must replay the
// exact replacement sequence the uncut run would have.
func (t *PHT) Snapshot(w *state.Writer) {
	w.Begin(state.SecPHT)
	w.U64(uint64(len(t.sets)))
	w.U64(uint64(t.assoc))
	w.Bool(t.tagged)
	w.Bool(t.useful)
	if t.useful {
		w.U64(t.resetPeriod)
	}
	w.U64(t.clock)
	for _, set := range t.sets {
		for i := range set {
			e := &set[i]
			w.Bool(e.valid)
			if !e.valid {
				continue
			}
			w.U64(e.tag)
			w.U64(e.target)
			w.U8(e.hyst.Value())
			w.U64(e.lru)
			if t.useful {
				w.U8(e.u)
			}
		}
	}
	w.End()
}

// Restore implements state.Snapshotter, rebuilding the table in place.
func (t *PHT) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecPHT); err != nil {
		return err
	}
	nsets := r.U64()
	assoc := r.U64()
	tagged := r.Bool()
	useful := r.Bool()
	var resetPeriod uint64
	if useful {
		resetPeriod = r.U64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if nsets != uint64(len(t.sets)) || assoc != uint64(t.assoc) || tagged != t.tagged ||
		useful != t.useful || resetPeriod != t.resetPeriod {
		return state.Mismatchf("PHT %d sets/%d-way/tagged %v/useful %v/%d vs snapshot %d/%d/%v/%v/%d",
			len(t.sets), t.assoc, t.tagged, t.useful, t.resetPeriod, nsets, assoc, tagged, useful, resetPeriod)
	}
	clock := r.U64()
	for _, set := range t.sets {
		for i := range set {
			e := &set[i]
			if !r.Bool() {
				*e = PHTEntry{}
				continue
			}
			tag := r.U64()
			target := r.U64()
			raw := r.U8()
			lru := r.U64()
			var u uint8
			if t.useful {
				u = r.U8()
			}
			if err := r.Err(); err != nil {
				return err
			}
			hyst, ok := counter.HysteresisFromValue(raw)
			if !ok {
				return state.Corruptf("PHT entry hysteresis %d out of range", raw)
			}
			if u > phtUMax {
				return state.Corruptf("PHT entry usefulness %d out of range", u)
			}
			*e = PHTEntry{valid: true, tag: tag, target: target, hyst: hyst, lru: lru, u: u}
		}
	}
	if err := r.End(); err != nil {
		return err
	}
	t.clock = clock
	return nil
}

// Snapshot implements state.Snapshotter: the configuration fingerprint
// followed by every PHT and the history register.
func (g *GAp) Snapshot(w *state.Writer) {
	w.Begin(state.SecGAp)
	w.U64(uint64(g.cfg.Entries))
	w.U64(uint64(g.cfg.PHTs))
	w.U64(uint64(maxInt(1, g.cfg.Assoc)))
	w.Bool(g.cfg.Tagged)
	w.U64(uint64(g.cfg.PathLength))
	w.U64(uint64(g.cfg.BitsPerTarget))
	w.U8(uint8(g.cfg.HistoryStream))
	w.U8(uint8(g.cfg.Indexing))
	w.U64(uint64(g.cfg.historyBits()))
	w.Bool(g.cfg.Useful)
	if g.cfg.Useful {
		w.U64(g.cfg.UsefulResetPeriod)
	}
	w.End()
	for _, t := range g.tables {
		t.Snapshot(w)
	}
	g.hist.SaveState(w)
}

// Restore implements state.Snapshotter.
func (g *GAp) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecGAp); err != nil {
		return err
	}
	entries := r.U64()
	phts := r.U64()
	assoc := r.U64()
	tagged := r.Bool()
	pathLength := r.U64()
	bitsPerTarget := r.U64()
	stream := history.Stream(r.U8())
	indexing := Indexing(r.U8())
	historyBits := r.U64()
	useful := r.Bool()
	var usefulReset uint64
	if useful {
		usefulReset = r.U64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if entries != uint64(g.cfg.Entries) || phts != uint64(g.cfg.PHTs) ||
		assoc != uint64(maxInt(1, g.cfg.Assoc)) || tagged != g.cfg.Tagged ||
		pathLength != uint64(g.cfg.PathLength) || bitsPerTarget != uint64(g.cfg.BitsPerTarget) ||
		stream != g.cfg.HistoryStream || indexing != g.cfg.Indexing ||
		historyBits != uint64(g.cfg.historyBits()) ||
		useful != g.cfg.Useful || usefulReset != g.cfg.UsefulResetPeriod {
		return state.Mismatchf("GAp config %+v does not match snapshot fingerprint", g.cfg)
	}
	if err := r.End(); err != nil {
		return err
	}
	for _, t := range g.tables {
		if err := t.Restore(r); err != nil {
			return err
		}
	}
	return g.hist.LoadState(r)
}

// Snapshot implements state.Snapshotter.
func (t *TargetCache) Snapshot(w *state.Writer) {
	w.Begin(state.SecTargetCache)
	w.U64(uint64(t.cfg.Entries))
	w.U64(uint64(t.cfg.HistoryBits))
	w.U64(uint64(t.cfg.BitsPerTarget))
	w.U8(uint8(t.cfg.HistoryStream))
	w.Bool(t.cfg.Tagged)
	for i := range t.table {
		e := &t.table[i]
		w.Bool(e.valid)
		if e.valid {
			w.U64(e.tag)
			w.U64(e.target)
		}
	}
	w.End()
	t.hist.SaveState(w)
}

// Restore implements state.Snapshotter, rebuilding the table in place.
func (t *TargetCache) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecTargetCache); err != nil {
		return err
	}
	entries := r.U64()
	historyBits := r.U64()
	bitsPerTarget := r.U64()
	stream := history.Stream(r.U8())
	tagged := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if entries != uint64(t.cfg.Entries) || historyBits != uint64(t.cfg.HistoryBits) ||
		bitsPerTarget != uint64(t.cfg.BitsPerTarget) || stream != t.cfg.HistoryStream ||
		tagged != t.cfg.Tagged {
		return state.Mismatchf("target cache config %+v does not match snapshot fingerprint", t.cfg)
	}
	for i := range t.table {
		e := &t.table[i]
		if !r.Bool() {
			*e = tcEntry{}
			continue
		}
		tag := r.U64()
		target := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		*e = tcEntry{valid: true, tag: tag, target: target}
	}
	if err := r.End(); err != nil {
		return err
	}
	return t.hist.LoadState(r)
}

// Snapshot implements state.Snapshotter: the selector section followed by
// the short and long components.
func (d *DualPath) Snapshot(w *state.Writer) {
	w.Begin(state.SecDualPath)
	w.U64(uint64(len(d.selectors)))
	for _, s := range d.selectors {
		w.U8(s)
	}
	w.End()
	d.short.Snapshot(w)
	d.long.Snapshot(w)
}

// Restore implements state.Snapshotter.
func (d *DualPath) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecDualPath); err != nil {
		return err
	}
	if n := r.U64(); n != uint64(len(d.selectors)) {
		if err := r.Err(); err != nil {
			return err
		}
		return state.Mismatchf("dual-path has %d selectors, snapshot %d", len(d.selectors), n)
	}
	for i := range d.selectors {
		v := r.U8()
		if r.Err() == nil && v > 3 {
			return state.Corruptf("dual-path selector %d out of 2-bit range", v)
		}
		d.selectors[i] = v
	}
	if err := r.End(); err != nil {
		return err
	}
	if err := d.short.Restore(r); err != nil {
		return err
	}
	return d.long.Restore(r)
}

var (
	_ state.Snapshotter = (*PHT)(nil)
	_ state.Snapshotter = (*GAp)(nil)
	_ state.Snapshotter = (*TargetCache)(nil)
	_ state.Snapshotter = (*DualPath)(nil)
)
