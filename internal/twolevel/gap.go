package twolevel

import (
	"fmt"

	"repro/internal/hashing"
	"repro/internal/history"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Indexing selects how a GAp component forms its PHT index from the path
// history register and the branch address.
type Indexing uint8

const (
	// GShare XORs the packed history with the branch address (Chang et
	// al.; the paper's GAp and Target Cache configurations).
	GShare Indexing = iota
	// ReverseInterleave interleaves bit-reversed history with address
	// bits (Driesen & Hölzle; the paper's Dual-path configuration).
	ReverseInterleave
)

// GApConfig parameterizes one GAp-style two-level component.
type GApConfig struct {
	// Name labels the predictor.
	Name string
	// Entries is the total PHT entry count (power of two).
	Entries int
	// PHTs splits the entries across this many per-address tables,
	// selected by low-order PC bits (the "p" in GAp). 1 gives a single
	// global table.
	PHTs int
	// Assoc and Tagged select the table organisation (tagged 4-way for
	// the Cascade components; tagless direct-mapped otherwise).
	Assoc  int
	Tagged bool
	// PathLength is the number of targets recorded in the history
	// register; BitsPerTarget how many low-order bits of each.
	PathLength    int
	BitsPerTarget uint
	HistoryStream history.Stream
	Indexing      Indexing
	// HistoryBits optionally widens the shift register beyond
	// PathLength*BitsPerTarget (the Dual-path predictor uses a 24-bit
	// register regardless of path length). 0 means PathLength*BitsPerTarget.
	HistoryBits uint
	// Useful turns on ITTAGE-style u-bit replacement in the (necessarily
	// tagged) PHTs: per-entry usefulness counters gate eviction and halve
	// every UsefulResetPeriod updates.
	Useful            bool
	UsefulResetPeriod uint64
}

func (c GApConfig) historyBits() uint {
	if c.HistoryBits != 0 {
		return c.HistoryBits
	}
	return uint(c.PathLength) * c.BitsPerTarget
}

func (c GApConfig) validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("twolevel: entries must be a positive power of two, got %d", c.Entries)
	}
	if c.PHTs <= 0 || c.PHTs&(c.PHTs-1) != 0 {
		return fmt.Errorf("twolevel: PHT count must be a positive power of two, got %d", c.PHTs)
	}
	if c.Entries%c.PHTs != 0 {
		return fmt.Errorf("twolevel: %d PHTs do not divide %d entries", c.PHTs, c.Entries)
	}
	if c.PathLength <= 0 {
		return fmt.Errorf("twolevel: path length must be positive, got %d", c.PathLength)
	}
	if c.BitsPerTarget == 0 || c.BitsPerTarget > 32 {
		return fmt.Errorf("twolevel: bits per target must be in [1,32], got %d", c.BitsPerTarget)
	}
	if c.Useful && !c.Tagged {
		return fmt.Errorf("twolevel: useful-mode replacement needs tagged tables")
	}
	if c.Useful && c.UsefulResetPeriod == 0 {
		return fmt.Errorf("twolevel: useful mode needs a positive reset period")
	}
	return nil
}

// GAp is a two-level adaptive indirect target predictor with a global path
// history register and per-address pattern history tables, per Driesen &
// Hölzle as configured in Section 5.
type GAp struct {
	cfg     GApConfig
	tables  []*PHT
	hist    *history.PHR
	pending struct {
		table *PHT
		index uint64
		tag   uint64
	}
}

// NewGAp builds a GAp component. It panics on invalid configuration, which
// is always a programming error in this repository's fixed experiment set.
func NewGAp(cfg GApConfig) *GAp {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	perTable := cfg.Entries / cfg.PHTs
	tables := make([]*PHT, cfg.PHTs)
	for i := range tables {
		if cfg.Useful {
			tables[i] = NewPHTUseful(perTable, maxInt(1, cfg.Assoc), cfg.UsefulResetPeriod)
		} else {
			tables[i] = NewPHT(perTable, maxInt(1, cfg.Assoc), cfg.Tagged)
		}
	}
	hb := cfg.historyBits()
	return &GAp{
		cfg:    cfg,
		tables: tables,
		hist:   history.New(cfg.HistoryStream, cfg.PathLength, cfg.BitsPerTarget, hb),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Name implements predictor.IndirectPredictor.
func (g *GAp) Name() string {
	if g.cfg.Name != "" {
		return g.cfg.Name
	}
	return "GAp"
}

// Entries implements predictor.Sized.
func (g *GAp) Entries() int { return g.cfg.Entries }

// index computes (table, set index, tag) for a branch address under the
// current history.
func (g *GAp) index(pc uint64) (*PHT, uint64, uint64) {
	tsel := uint64(0)
	if len(g.tables) > 1 {
		tsel = (pc >> 2) & uint64(len(g.tables)-1)
	}
	table := g.tables[tsel]
	bits := table.IndexBits()
	var idx uint64
	switch {
	case g.cfg.Tagged:
		// Tagged tables carry branch identity in the tag, so the whole
		// index budget goes to folded path history.
		idx = hashing.Fold(g.hist.Packed(), g.cfg.historyBits(), bits)
	case g.cfg.Indexing == GShare:
		idx = hashing.GShare(g.hist.Packed(), pc, bits)
	default:
		idx = hashing.ReverseInterleave(g.hist.Packed(), g.cfg.historyBits(), pc, bits)
	}
	tag := hashing.Mix64(pc>>2) >> 40 // 24-bit tag for the tagged variants
	return table, idx, tag
}

// Predict implements predictor.IndirectPredictor.
func (g *GAp) Predict(pc uint64) (uint64, bool) {
	table, idx, tag := g.index(pc)
	g.pending.table, g.pending.index, g.pending.tag = table, idx, tag
	if e := table.Lookup(idx, tag); e != nil {
		table.Touch(idx, tag)
		return e.Target(), true
	}
	return 0, false
}

// Update implements predictor.IndirectPredictor.
func (g *GAp) Update(pc, target uint64) { g.UpdateAlloc(pc, target, true) }

// UpdateAlloc resolves the pending prediction like Update but lets the
// caller suppress allocation of new entries — the hook the Cascade
// predictor's leaky-filter protocol needs to keep monomorphic branches out
// of its main tables.
func (g *GAp) UpdateAlloc(_, target uint64, allocate bool) {
	g.pending.table.Update(g.pending.index, g.pending.tag, target, allocate)
}

// Observe implements predictor.IndirectPredictor.
func (g *GAp) Observe(r trace.Record) { g.hist.Observe(r) }

// ProcessBlock implements the engine's batch fast path. A GAp's only
// per-record work outside MT-indirect branches is its history register, so
// when the configured stream matches one of the block's precomputed index
// lanes the loop walks that lane and never visits the rest of the stream;
// other streams take the record-exact loop.
//
//ppm:hotpath whole-block GAp replay over the indirect index lanes
func (g *GAp) ProcessBlock(b *trace.Block, c *stats.Counters) {
	pcs, tgts, metas := b.PC, b.Target, b.Meta
	switch g.hist.Stream() {
	case history.IndirectBranches:
		for _, k := range b.PIBIdx {
			tgt := tgts[k] //lint:idxsafe PIBIdx entries index the block's lanes by construction
			//lint:idxsafe PIBIdx entries index the block's lanes by construction
			if metas[k]&trace.MetaMT != 0 {
				pc := pcs[k] //lint:idxsafe PIBIdx entries index the block's lanes by construction
				target, ok := g.Predict(pc)
				c.Record(ok && target == tgt, ok)
				g.Update(pc, tgt)
			}
			g.hist.Push(tgt)
		}
	case history.MTIndirectBranches:
		for _, k := range b.MTIdx {
			pc := pcs[k]   //lint:idxsafe MTIdx entries index the block's lanes by construction
			tgt := tgts[k] //lint:idxsafe MTIdx entries index the block's lanes by construction
			target, ok := g.Predict(pc)
			c.Record(ok && target == tgt, ok)
			g.Update(pc, tgt)
			g.hist.Push(tgt)
		}
	default:
		// AllBranches / TakenBranches streams (no shipped configuration):
		// replay record-exactly.
		for i := 0; i < b.Len(); i++ {
			r := b.Record(i)
			if r.MTIndirect() {
				target, ok := g.Predict(r.PC)
				c.Record(ok && target == r.Target, ok)
				g.Update(r.PC, r.Target)
			}
			g.hist.Observe(r)
		}
	}
}

// Reset implements predictor.Resetter.
func (g *GAp) Reset() {
	for _, t := range g.tables {
		t.Reset()
	}
	g.hist.Reset()
}

// PaperGAp returns the exact GAp configuration of Section 5: two tagless 1K
// PHTs, a 10-bit path history register recording the 2 low-order bits of
// each of the last 5 indirect-branch targets, gshare indexing, and a 2-bit
// replacement counter per entry.
func PaperGAp() *GAp {
	return NewGAp(GApConfig{
		Name:          "GAp",
		Entries:       2048,
		PHTs:          2,
		Assoc:         1,
		PathLength:    5,
		BitsPerTarget: 2,
		HistoryStream: history.IndirectBranches,
		Indexing:      GShare,
	})
}

var (
	_ predictor.IndirectPredictor = (*GAp)(nil)
	_ predictor.Sized             = (*GAp)(nil)
	_ predictor.Resetter          = (*GAp)(nil)
	_ predictor.Costed            = (*GAp)(nil)
)

// Bits implements predictor.Costed.
func (g *GAp) Bits() int {
	per := 30 + 1 + 2 // target, valid, replacement counter
	if g.cfg.Tagged {
		per += 24 + 2 // tag and LRU stamp (2 bits suffice for 4 ways)
	}
	if g.cfg.Useful {
		per += 2 // usefulness counter
	}
	return g.cfg.Entries*per + int(g.cfg.historyBits())
}
