package bench

import (
	"repro/internal/btb"
	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/twolevel"
)

// Figure6Predictors returns fresh instances of the seven predictors of
// Figure 6, each holding the paper's 2K-entry hardware budget, in the
// figure's order.
func Figure6Predictors() []predictor.IndirectPredictor {
	return []predictor.IndirectPredictor{
		btb.New(2048),
		btb.New2b(2048),
		twolevel.PaperGAp(),
		twolevel.PaperTCPIB(),
		twolevel.PaperDualPath(),
		cascade.Paper(),
		core.PaperHyb(),
	}
}

// Figure7Predictors returns fresh instances of the three PPM variants of
// Figure 7.
func Figure7Predictors() []predictor.IndirectPredictor {
	return []predictor.IndirectPredictor{
		core.PaperHyb(),
		core.PaperPIB(),
		core.PaperHybBiased(),
	}
}

// NewPredictor constructs a paper-configured predictor by its Figure 6/7
// label. It returns false for unknown names.
func NewPredictor(name string) (predictor.IndirectPredictor, bool) {
	switch name {
	case "BTB":
		return btb.New(2048), true
	case "BTB2b":
		return btb.New2b(2048), true
	case "GAp":
		return twolevel.PaperGAp(), true
	case "TC-PIB":
		return twolevel.PaperTCPIB(), true
	case "Dpath":
		return twolevel.PaperDualPath(), true
	case "Cascade":
		return cascade.Paper(), true
	case "PPM-hyb":
		return core.PaperHyb(), true
	case "PPM-PIB":
		return core.PaperPIB(), true
	case "PPM-hyb-biased":
		return core.PaperHybBiased(), true
	}
	return nil, false
}

// PredictorNames lists every label NewPredictor accepts, in display order.
func PredictorNames() []string {
	return []string{"BTB", "BTB2b", "GAp", "TC-PIB", "Dpath", "Cascade", "PPM-hyb", "PPM-PIB", "PPM-hyb-biased"}
}
