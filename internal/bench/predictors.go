package bench

import (
	"repro/internal/btb"
	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/ittage"
	"repro/internal/predictor"
	"repro/internal/twolevel"
)

// Figure6Predictors returns fresh instances of the seven predictors of
// Figure 6, each holding the paper's 2K-entry hardware budget, in the
// figure's order.
func Figure6Predictors() []predictor.IndirectPredictor {
	return []predictor.IndirectPredictor{
		btb.New(2048),
		btb.New2b(2048),
		twolevel.PaperGAp(),
		twolevel.PaperTCPIB(),
		twolevel.PaperDualPath(),
		cascade.Paper(),
		core.PaperHyb(),
	}
}

// Figure7Predictors returns fresh instances of the three PPM variants of
// Figure 7.
func Figure7Predictors() []predictor.IndirectPredictor {
	return []predictor.IndirectPredictor{
		core.PaperHyb(),
		core.PaperPIB(),
		core.PaperHybBiased(),
	}
}

// NewPredictor constructs a paper-configured predictor by its Figure 6/7
// label. It returns false for unknown names.
func NewPredictor(name string) (predictor.IndirectPredictor, bool) {
	switch name {
	case "BTB":
		return btb.New(2048), true
	case "BTB2b":
		return btb.New2b(2048), true
	case "GAp":
		return twolevel.PaperGAp(), true
	case "TC-PIB":
		return twolevel.PaperTCPIB(), true
	case "Dpath":
		return twolevel.PaperDualPath(), true
	case "Cascade":
		return cascade.Paper(), true
	case "PPM-hyb":
		return core.PaperHyb(), true
	case "PPM-PIB":
		return core.PaperPIB(), true
	case "PPM-hyb-biased":
		return core.PaperHybBiased(), true
	case "ITTAGE":
		return ittage.Paper(), true
	case "Cascade-u":
		return cascade.PaperU(), true
	}
	return nil, false
}

// PredictorNames lists every label NewPredictor accepts, in display order:
// the 1998 designs of Figures 6 and 7 first, then the modern family.
func PredictorNames() []string {
	return []string{"BTB", "BTB2b", "GAp", "TC-PIB", "Dpath", "Cascade", "PPM-hyb", "PPM-PIB", "PPM-hyb-biased", "ITTAGE", "Cascade-u"}
}

// ModernPredictors returns fresh instances of the post-1998 family — the
// predictors the "1998 vs modern" matched-budget comparison pits against
// Figure 6, each still holding the paper's 2K-entry budget.
func ModernPredictors() []predictor.IndirectPredictor {
	return []predictor.IndirectPredictor{
		ittage.Paper(),
		cascade.PaperU(),
	}
}
