// Package bench defines the benchmark suite of Table 1: synthetic models of
// the paper's C and C++ workloads (perl, gcc, edg, gs, troff, eqn, eon,
// photon, ixx and their inputs). Each model recreates the indirect-branch
// population structure the paper describes for that program:
//
//   - correlation type (PIB vs PB vs self) and order;
//   - polymorphism degree and monomorphic/low-entropy mass;
//   - the jmp/jsr split — indirect call targets are 16-byte aligned
//     procedure entries, so predictors that record only the 2 low-order
//     target bits lose information on call-heavy C++ code;
//   - hot-site aliasing (histories shared between branches, which hurts the
//     PC-free SFSXS indexing of the PPM predictor — the perl effect);
//   - loop-dominated recurrence: the next dispatch site is a deterministic
//     function of the most recent indirect target(s), with a small
//     per-benchmark escape probability, because recurrent paths are what
//     make path history predictive at all.
//
// See DESIGN.md for the substitution rationale and EXPERIMENTS.md for
// paper-vs-measured numbers.
package bench

import (
	"repro/internal/trace"
	"repro/internal/workload"
)

// DefaultEvents is the number of MT dispatch events per run used by the
// experiment harness. Tests use smaller scales via Sized.
const DefaultEvents = 120_000

// sites builds n sites sharing a spec, for declaring populations tersely.
func sites(n int, label string, class trace.Class, targets int, b workload.Behavior, weight int) []workload.SiteSpec {
	out := make([]workload.SiteSpec, n)
	for i := range out {
		out[i] = workload.SiteSpec{
			Label:      label,
			Class:      class,
			NumTargets: targets,
			Behavior:   b,
			Weight:     weight,
		}
	}
	return out
}

func cat(groups ...[]workload.SiteSpec) []workload.SiteSpec {
	var out []workload.SiteSpec
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// clusterSites builds n jsr sites whose targets are clustered (see
// workload.SiteSpec.Cluster): dispatch driven by data that is invisible in
// the indirect-branch stream, the population the hybrid PPM's PB history
// uniquely captures.
func clusterSites(n int, label string, targets int, b workload.Behavior, weight int) []workload.SiteSpec {
	out := sites(n, label, trace.IndirectJsr, targets, b, weight)
	for i := range out {
		out[i].Cluster = true
	}
	return out
}

// Suite returns the full benchmark suite at the default event count, in the
// row order of Figures 6 and 7.
func Suite() []workload.Config { return Sized(DefaultEvents) }

// Sized returns the suite with the given number of dispatch events per run.
func Sized(events int) []workload.Config {
	runs := []workload.Config{
		Perl(), Gcc(),
		Edg("pic"), Edg("inp"),
		Gs("tig"), Gs("pho"),
		Troff("ped"), Troff("gcc"), Troff("lle"),
		Eqn(), Eon(), Photon(),
		Ixx("wid"), Ixx("lay"),
	}
	for i := range runs {
		runs[i].Events = events
	}
	return runs
}

// ByName returns the named run (Config.String() form, e.g. "troff.ped").
func ByName(name string) (workload.Config, bool) {
	for _, c := range Suite() {
		if c.String() == name {
			return c, true
		}
	}
	return workload.Config{}, false
}

// Perl models SPEC95 perl: the paper attributes PPM's extra mispredictions
// to aliasing between three hot, frequently executed indirect branches.
// Three heavy switch-dispatch sites dominate and the elevated chain noise
// makes them reachable from overlapping path contexts, so the PC-free
// SFSXS indexing collides between them while PC-hashing designs (TC,
// Dpath, Cascade) keep them apart.
func Perl() workload.Config {
	return workload.Config{
		Name: "perl", Input: "exp", Seed: 0x9e11,
		Sites: cat(
			sites(3, "hot-dispatch", trace.IndirectJmp, 24, workload.Correlated{Stream: workload.PIB, Order: 2, Noise: 0.004}, 40),
			sites(6, "op-handlers", trace.IndirectJsr, 6, workload.Correlated{Stream: workload.PIB, Order: 2, Noise: 0.004}, 4),
			sites(12, "glue", trace.IndirectJsr, 3, workload.LowEntropy{SwitchProb: 0.003}, 2),
		),
		ChainSites: true, ChainOrder: 2, ChainNoise: 0.012,
		CondPerEvent: 3, CondNoise: 0.01,
		STRate: 0.03, CallRate: 0.2,
	}
}

// Gcc models SPEC95 gcc: a broad population mixing all-branch (PB)
// correlated dispatch, PIB-correlated tree walking, and a heavy
// monomorphic/low-entropy tail.
func Gcc() workload.Config {
	return workload.Config{
		Name: "gcc", Input: "cp", Seed: 0x6cc1,
		Sites: cat(
			clusterSites(4, "insn-dispatch", 2, workload.CondDriven{Order: 1, Noise: 0.004}, 14),
			sites(6, "tree-walk", trace.IndirectJmp, 10, workload.Correlated{Stream: workload.PIB, Order: 2, Noise: 0.002}, 8),
			sites(16, "lang-hooks", trace.IndirectJsr, 4, workload.LowEntropy{SwitchProb: 0.002}, 3),
			sites(14, "rare", trace.IndirectJsr, 3, workload.Monomorphic{Bias: 0.997}, 2),
			sites(2, "hash-jump", trace.IndirectJmp, 8, workload.Uniform{}, 1),
		),
		ChainSites: true, ChainOrder: 2, ChainNoise: 0.004,
		CondPerEvent: 1, CondNoise: 1,
		STRate: 0.04, CallRate: 0.25,
	}
}

// Edg models the EDG C/C++ front end: many virtual-call sites with strong
// monomorphic and low-entropy mass (which rewards the Cascade filter) plus
// a correlated core.
func Edg(input string) workload.Config {
	seed := uint64(0xed65)
	chainNoise := 0.0025
	if input == "inp" {
		seed = 0xed62
		chainNoise = 0.006
	}
	return workload.Config{
		Name: "edg", Input: input, Seed: seed,
		Sites: cat(
			sites(28, "virtual-mono", trace.IndirectJsr, 3, workload.Monomorphic{Bias: 0.998}, 3),
			sites(14, "virtual-lowent", trace.IndirectJsr, 4, workload.LowEntropy{SwitchProb: 0.002}, 3),
			sites(8, "expr-dispatch", trace.IndirectJmp, 12, workload.Correlated{Stream: workload.PIB, Order: 4, Noise: 0.0015}, 6),
			clusterSites(5, "decl-walk", 2, workload.CondDriven{Order: 1, Noise: 0.004}, 7),
		),
		ChainSites: true, ChainOrder: 2, ChainNoise: chainNoise,
		CondPerEvent: 1, CondNoise: 1,
		STRate: 0.03, CallRate: 0.3,
	}
}

// Gs models Ghostscript: a big interpreter dispatch switch whose next arm
// depends on deeper path context than the Dual-path components record,
// plus operator handlers; the "pho" (photon) input is more regular than
// "tig" (tiger).
func Gs(input string) workload.Config {
	seed := uint64(0x6501)
	noise := 0.002
	chainNoise := 0.004
	if input == "pho" {
		seed = 0x6502
		noise = 0.001
		chainNoise = 0.0015
	}
	return workload.Config{
		Name: "gs", Input: input, Seed: seed,
		Sites: cat(
			sites(2, "interp-switch", trace.IndirectJmp, 24, workload.Correlated{Stream: workload.PIB, Order: 4, Noise: noise}, 30),
			sites(10, "operators", trace.IndirectJsr, 8, workload.Correlated{Stream: workload.PIB, Order: 2, Noise: noise * 2}, 5),
			sites(8, "devices", trace.IndirectJsr, 3, workload.LowEntropy{SwitchProb: 0.002}, 2),
		),
		ChainSites: true, ChainOrder: 2, ChainNoise: chainNoise,
		CondPerEvent: 3, CondNoise: 0.008,
		STRate: 0.03, CallRate: 0.2,
	}
}

// Troff models GNU troff: document-structure-driven dispatch with strong
// all-branch (PB) correlation — the targets follow the phase of the
// surrounding conditional-branch pattern, which only the hybrid PPM's PB
// history register can observe.
func Troff(input string) workload.Config {
	seed := uint64(0x7201)
	pbNoise := 0.003
	chainNoise := 0.004
	switch input {
	case "gcc":
		seed = 0x7212
		pbNoise = 0.006
		chainNoise = 0.007
	case "lle":
		seed = 0x7213
		pbNoise = 0.004
		chainNoise = 0.005
	}
	return workload.Config{
		Name: "troff", Input: input, Seed: seed,
		Sites: cat(
			clusterSites(6, "request-dispatch", 2, workload.CondDriven{Order: 1, Noise: pbNoise}, 8),
			clusterSites(6, "char-class", 2, workload.CondDriven{Order: 1, Noise: pbNoise}, 6),
			sites(8, "env-hooks", trace.IndirectJsr, 4, workload.Correlated{Stream: workload.PIB, Order: 1, Noise: 0.004}, 4),
			sites(10, "rare", trace.IndirectJsr, 3, workload.Monomorphic{Bias: 0.997}, 2),
		),
		ChainSites: true, ChainOrder: 2, ChainNoise: chainNoise,
		CondPerEvent: 1, CondNoise: 1,
		STRate: 0.03, CallRate: 0.2,
	}
}

// Eqn models the equation typesetter: dominated by monomorphic and
// low-entropy box-method calls — filtering (Cascade) shines here — with a
// small PB-correlated parser core.
func Eqn() workload.Config {
	return workload.Config{
		Name: "eqn", Seed: 0xe4e1,
		Sites: cat(
			sites(36, "box-methods", trace.IndirectJsr, 3, workload.Monomorphic{Bias: 0.998}, 4),
			sites(16, "lowent", trace.IndirectJsr, 4, workload.LowEntropy{SwitchProb: 0.002}, 3),
			clusterSites(5, "parse-dispatch", 2, workload.CondDriven{Order: 1, Noise: 0.004}, 9),
			sites(3, "tokens", trace.IndirectJmp, 10, workload.Correlated{Stream: workload.PIB, Order: 2, Noise: 0.004}, 4),
		),
		ChainSites: true, ChainOrder: 2, ChainNoise: 0.006,
		CondPerEvent: 1, CondNoise: 1,
		STRate: 0.03, CallRate: 0.35,
	}
}

// Eon models the C++ ray tracer: heavily polymorphic virtual calls (16-byte
// aligned call targets starve 2-bit history registers) that are strongly
// PIB-correlated — the PPM-PIB and PIB-biased variants beat the hybrid here
// because the noisy conditional fabric makes PB history a trap.
func Eon() workload.Config {
	return workload.Config{
		Name: "eon", Seed: 0xe0e1,
		Sites: cat(
			sites(12, "shade-virtuals", trace.IndirectJsr, 10, workload.Correlated{Stream: workload.PIB, Order: 2, Noise: 0.0015}, 8),
			sites(8, "intersect", trace.IndirectJsr, 6, workload.Correlated{Stream: workload.PIB, Order: 2, Noise: 0.002}, 6),
			sites(6, "geometry", trace.IndirectJsr, 4, workload.Correlated{Stream: workload.Self, Order: 1, Noise: 0.002}, 3),
		),
		ChainSites: true, ChainOrder: 2, ChainNoise: 0.003,
		CondPerEvent: 2, CondNoise: 0.3,
		STRate: 0.02, CallRate: 0.25,
	}
}

// Photon models the diagram generator: a small, highly regular dispatch
// structure that complete PIB history of length 8 predicts almost
// perfectly (the paper's oracle reached 99.1%); TC-PIB edges out PPM here
// because its immediate target update recovers from the rare perturbation
// one event sooner than PPM's two-miss hysteresis.
func Photon() workload.Config {
	return workload.Config{
		Name: "photon", Seed: 0x9407,
		Sites: cat(
			sites(3, "draw-dispatch", trace.IndirectJmp, 10, workload.Correlated{Stream: workload.PIB, Order: 3, Noise: 0.0005}, 12),
			sites(4, "node-dispatch", trace.IndirectJmp, 5, workload.Correlated{Stream: workload.PIB, Order: 2, Noise: 0.0005}, 6),
			sites(4, "attrs", trace.IndirectJmp, 3, workload.LowEntropy{SwitchProb: 0.004}, 3),
		),
		ChainSites: true, ChainOrder: 1, ChainNoise: 0.0008,
		CondPerEvent: 3, CondNoise: 0.004,
		STRate: 0.02, CallRate: 0.2,
	}
}

// Ixx models the IDL parser: strongly PIB-correlated grammar dispatch over
// virtual calls, with enough chain noise that branch instances alias in the
// Markov tables — the effect that makes the PIB-biased selection protocol
// the best variant (Figure 7).
func Ixx(input string) workload.Config {
	seed := uint64(0x1881)
	if input == "lay" {
		seed = 0x1882
	}
	return workload.Config{
		Name: "ixx", Input: input, Seed: seed,
		Sites: cat(
			sites(8, "grammar-dispatch", trace.IndirectJmp, 14, workload.Correlated{Stream: workload.PIB, Order: 4, Noise: 0.0015}, 10),
			sites(10, "ast-virtuals", trace.IndirectJsr, 6, workload.Correlated{Stream: workload.PIB, Order: 2, Noise: 0.0015}, 5),
			sites(6, "emit", trace.IndirectJsr, 4, workload.Correlated{Stream: workload.PIB, Order: 1, Noise: 0.0015}, 3),
		),
		ChainSites: true, ChainOrder: 2, ChainNoise: 0.008,
		CondPerEvent: 3, CondNoise: 0.5,
		STRate: 0.03, CallRate: 0.25,
	}
}
