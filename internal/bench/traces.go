package bench

import (
	"repro/internal/trace"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// sharedTraces is the process-wide cache behind Traces. Benchmarks and
// tests across the module share it, so each suite run is synthesized at
// most once per process no matter how many harnesses replay it. 1 GiB
// comfortably holds the full suite at benchmark scale.
var sharedTraces = tracecache.New(1 << 30)

// Traces materializes cfg's record stream and summary through the module's
// shared trace cache. The returned slice is shared across callers and must
// be treated as immutable; harnesses that mutate records must copy first.
func Traces(cfg workload.Config) ([]trace.Record, workload.Summary) {
	return sharedTraces.Get(cfg)
}
