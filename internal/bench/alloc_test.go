package bench

import (
	"fmt"
	"testing"

	"repro/internal/cbt"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/predictor"
	"repro/internal/race"
	"repro/internal/sim"
	"repro/internal/trace"
)

// allocTrace generates one representative workload small enough to replay
// in an alloc-counting loop but broad enough to touch every predictor
// structure (ST and MT sites, calls and jumps, conditional fabric).
func allocTrace(t *testing.T) []trace.Record {
	t.Helper()
	cfg, ok := ByName("gcc.cp")
	if !ok {
		t.Fatal("gcc.cp missing from suite")
	}
	cfg.Events = 3000
	recs, _ := Traces(cfg)
	return recs
}

// replay drives one predictor over the records with the engine's per-record
// protocol (predict and train on MT indirect branches, observe everything).
func replay(p predictor.IndirectPredictor, recs []trace.Record) {
	for _, r := range recs {
		if r.MTIndirect() {
			p.Predict(r.PC)
			p.Update(r.PC, r.Target)
		}
		p.Observe(r)
	}
}

// TestPredictorsZeroAllocSteadyState locks in the hot-path purity the
// hotpath analyzer and escape gate enforce statically: after a warm-up pass
// has faulted in every first-touch structure (BIU entries, table fills),
// replaying the identical record stream through Predict→Update→Observe
// must not allocate at all.
func TestPredictorsZeroAllocSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc counts asserted in the non-race run")
	}
	recs := allocTrace(t)
	for _, name := range PredictorNames() {
		t.Run(name, func(t *testing.T) {
			p, ok := NewPredictor(name)
			if !ok {
				t.Fatalf("NewPredictor(%q) unknown", name)
			}
			replay(p, recs) // warm-up: first-touch fills are allowed to allocate
			if avg := testing.AllocsPerRun(20, func() { replay(p, recs) }); avg != 0 {
				t.Errorf("%s: %.2f allocs per steady-state replay, want 0", name, avg)
			}
		})
	}
}

// TestVariantsZeroAllocSteadyState extends the guarantee to the predictor
// variants the experiment harness ships beyond the Figure 6/7 set: the
// filtered PPM and the multi-target (majority-vote) PPM.
func TestVariantsZeroAllocSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc counts asserted in the non-race run")
	}
	recs := allocTrace(t)
	variants := []struct {
		name  string
		build func() predictor.IndirectPredictor
	}{
		{"PPM-filtered", func() predictor.IndirectPredictor { return core.PaperFiltered() }},
		{"PPM-multi", func() predictor.IndirectPredictor { return core.NewMultiTarget(10, 4) }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			p := v.build()
			replay(p, recs)
			if avg := testing.AllocsPerRun(20, func() { replay(p, recs) }); avg != 0 {
				t.Errorf("%s: %.2f allocs per steady-state replay, want 0", v.name, avg)
			}
		})
	}
}

// TestEngineZeroAllocSteadyState asserts the full engine loop — RAS,
// counters, every Figure 6 predictor attached — is allocation-free once
// warmed, since Engine.Process is itself a //ppm:hotpath function.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc counts asserted in the non-race run")
	}
	recs := allocTrace(t)
	e := sim.New(Figure6Predictors()...)
	e.ProcessAll(recs)
	if avg := testing.AllocsPerRun(10, func() { e.ProcessAll(recs) }); avg != 0 {
		t.Errorf("engine: %.2f allocs per steady-state pass, want 0", avg)
	}
}

// TestBlockEngineZeroAllocSteadyState extends the engine guarantee to the
// batched block path: once the columnar blocks exist and a warm-up pass has
// faulted in every first-touch structure, Engine.ProcessBlocks — index-lane
// fast paths and the record-loop fallback alike — must not allocate. The
// deliberately tiny second capacity maximizes per-block overhead relative
// to payload, so block-boundary bookkeeping is covered too.
func TestBlockEngineZeroAllocSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc counts asserted in the non-race run")
	}
	recs := allocTrace(t)
	for _, set := range []struct {
		name  string
		build func() []predictor.IndirectPredictor
	}{
		{"fig6", Figure6Predictors},
		{"fig7", Figure7Predictors},
		// The modern family (ITTAGE, Cascade-u): their MTIdx-lane block fast
		// paths and the incremental folded-history updates must stay pure.
		{"modern", ModernPredictors},
		// The extension predictors with their own batch fast paths; the
		// oracle is deliberately absent (see TestOracleExemptFromZeroAlloc).
		{"extensions", func() []predictor.IndirectPredictor {
			return []predictor.IndirectPredictor{
				cbt.New(cbt.Config{Entries: 2048, Availability: 0.5, Seed: 0xCB7}),
				core.PaperFiltered(),
				core.NewMultiTarget(10, 4),
			}
		}},
	} {
		for _, bcap := range []int{trace.BlockCap, 64} {
			t.Run(fmt.Sprintf("%s/cap%d", set.name, bcap), func(t *testing.T) {
				blks := trace.BlocksSized(recs, bcap)
				e := sim.New(set.build()...)
				e.ProcessBlocks(blks)
				if avg := testing.AllocsPerRun(10, func() { e.ProcessBlocks(blks) }); avg != 0 {
					t.Errorf("block engine: %.2f allocs per steady-state pass, want 0", avg)
				}
			})
		}
	}
}

// TestOracleExemptFromZeroAlloc documents the deliberate exception: the
// oracle is a measurement device with unbounded context storage and is
// annotated //ppm:coldpath rather than made allocation-free. New contexts
// keep allocating even after a warm pass would have in a hardware model.
func TestOracleExemptFromZeroAlloc(t *testing.T) {
	recs := allocTrace(t)
	o := oracle.New(8)
	replay(o, recs)
	// No assertion on a positive count — just prove the exemption is
	// load-bearing by exercising the same protocol without failing.
	replay(o, recs)
}
