package bench

import (
	"testing"

	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestSuiteIntegrity(t *testing.T) {
	suite := Suite()
	if len(suite) != 14 {
		t.Fatalf("suite has %d runs, want 14", len(suite))
	}
	seen := map[string]bool{}
	for _, cfg := range suite {
		name := cfg.String()
		if seen[name] {
			t.Errorf("duplicate run %q", name)
		}
		seen[name] = true
		if cfg.Events != DefaultEvents {
			t.Errorf("%s: events = %d, want %d", name, cfg.Events, DefaultEvents)
		}
		if len(cfg.Sites) == 0 {
			t.Errorf("%s: no sites", name)
		}
	}
	for _, want := range []string{"perl.exp", "gcc.cp", "photon", "eqn", "eon", "troff.ped", "ixx.lay"} {
		if !seen[want] {
			t.Errorf("missing run %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	cfg, ok := ByName("troff.ped")
	if !ok || cfg.Name != "troff" || cfg.Input != "ped" {
		t.Errorf("ByName(troff.ped) = %+v, %v", cfg, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName found a ghost run")
	}
}

func TestAllPredictorsHold2KBudget(t *testing.T) {
	// Section 5's comparison holds every predictor to ~2K target-holding
	// entries (the Cascade predictor's 128-entry filter is its documented
	// extra, and PPM's order-0 component its +1).
	for _, name := range PredictorNames() {
		p, ok := NewPredictor(name)
		if !ok {
			t.Fatalf("NewPredictor(%q) failed", name)
		}
		if p.Name() != name {
			t.Errorf("predictor name %q != label %q", p.Name(), name)
		}
		s, ok := p.(predictor.Sized)
		if !ok {
			t.Errorf("%s does not report its size", name)
			continue
		}
		if e := s.Entries(); e < 2047 || e > 2048+128 {
			t.Errorf("%s holds %d entries, outside the 2K budget window", name, e)
		}
	}
	if _, ok := NewPredictor("nope"); ok {
		t.Error("NewPredictor accepted an unknown name")
	}
}

func TestFigurePredictorSets(t *testing.T) {
	f6 := Figure6Predictors()
	if len(f6) != 7 {
		t.Fatalf("Figure 6 set has %d predictors, want 7", len(f6))
	}
	wantOrder := []string{"BTB", "BTB2b", "GAp", "TC-PIB", "Dpath", "Cascade", "PPM-hyb"}
	for i, p := range f6 {
		if p.Name() != wantOrder[i] {
			t.Errorf("Figure 6 position %d = %s, want %s", i, p.Name(), wantOrder[i])
		}
	}
	f7 := Figure7Predictors()
	if len(f7) != 3 {
		t.Fatalf("Figure 7 set has %d predictors, want 3", len(f7))
	}
}

func TestSuiteDeterministic(t *testing.T) {
	cfg, _ := ByName("photon")
	cfg.Events = 2000
	a, _ := cfg.Records()
	b, _ := cfg.Records()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("photon trace not deterministic at record %d", i)
		}
	}
}

// TestTable1Characteristics checks that the dynamic run summaries have the
// gross shape Table 1 reports: millions-scale instruction streams dominated
// by non-branch instructions, a small fraction of MT indirect branches, and
// returns matched to calls.
func TestTable1Characteristics(t *testing.T) {
	for _, cfg := range Sized(4000) {
		sum := cfg.Generate(func(trace.Record) {})
		name := cfg.String()
		if sum.MTDynamic == 0 {
			t.Errorf("%s: no MT branches", name)
			continue
		}
		mtShare := float64(sum.MTDynamic) / float64(sum.Instructions)
		if mtShare > 0.2 {
			t.Errorf("%s: MT branches are %.1f%% of instructions — unrealistically dense", name, 100*mtShare)
		}
		if sum.CondDynamic == 0 {
			t.Errorf("%s: no conditional branches", name)
		}
		if sum.MTStatic == 0 || sum.SiteByPC == nil {
			t.Errorf("%s: static site accounting missing", name)
		}
	}
}

// run executes the suite at reduced scale and returns mean misprediction
// ratios per predictor name.
func runSuite(t *testing.T, events int, preds func() []predictor.IndirectPredictor) map[string]float64 {
	t.Helper()
	perPred := map[string][]stats.Counters{}
	for _, cfg := range Sized(events) {
		recs, _ := Traces(cfg)
		for _, c := range sim.Run(recs, preds()...) {
			perPred[c.Predictor] = append(perPred[c.Predictor], c)
		}
	}
	out := map[string]float64{}
	for name, runs := range perPred {
		out[name] = stats.MeanRatio(runs)
	}
	return out
}

// TestFigure6Ordering is the headline integration test: at reduced scale,
// the paper's qualitative result must hold — the PPM hybrid achieves the
// lowest mean misprediction ratio, the Cascade predictor is the best
// previously published design, and the BTBs trail far behind.
func TestFigure6Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	means := runSuite(t, 20000, Figure6Predictors)
	if means["PPM-hyb"] >= means["Cascade"] {
		t.Errorf("PPM-hyb mean %.4f not below Cascade %.4f", means["PPM-hyb"], means["Cascade"])
	}
	for _, other := range []string{"GAp", "TC-PIB", "Dpath"} {
		if means["Cascade"] >= means[other] {
			t.Errorf("Cascade mean %.4f not below %s %.4f", means["Cascade"], other, means[other])
		}
	}
	if means["BTB"] < 2*means["PPM-hyb"] {
		t.Errorf("BTB mean %.4f suspiciously close to PPM-hyb %.4f", means["BTB"], means["PPM-hyb"])
	}
	if means["BTB2b"] > means["BTB"] {
		t.Errorf("BTB2b mean %.4f worse than plain BTB %.4f", means["BTB2b"], means["BTB"])
	}
	if means["PPM-hyb"] > 0.20 {
		t.Errorf("PPM-hyb mean %.4f out of the paper's band (~0.09)", means["PPM-hyb"])
	}
}

// TestFigure7Ordering checks the PPM-variant comparison: the hybrid beats
// PIB-only on average, and the PIB-biased protocol closes most of the gap
// on the strongly PIB-correlated runs.
func TestFigure7Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	perPred := map[string]map[string]float64{}
	for _, cfg := range Sized(20000) {
		recs, _ := Traces(cfg)
		for _, c := range sim.Run(recs, Figure7Predictors()...) {
			if perPred[c.Predictor] == nil {
				perPred[c.Predictor] = map[string]float64{}
			}
			perPred[c.Predictor][cfg.String()] = c.MispredictionRatio()
		}
	}
	mean := func(name string) float64 {
		var s float64
		for _, v := range perPred[name] {
			s += v
		}
		return s / float64(len(perPred[name]))
	}
	if mean("PPM-hyb") >= mean("PPM-PIB") {
		t.Errorf("hybrid mean %.4f not below PIB-only %.4f", mean("PPM-hyb"), mean("PPM-PIB"))
	}
	// On the PB-correlated showcase (troff.ped) the hybrid must crush the
	// PIB-only variant.
	if h, p := perPred["PPM-hyb"]["troff.ped"], perPred["PPM-PIB"]["troff.ped"]; h >= p/2 {
		t.Errorf("troff.ped: hybrid %.4f vs PIB-only %.4f — PB selection not engaging", h, p)
	}
	// On the strongly PIB-correlated eon, PIB-only must win over hybrid.
	if h, p := perPred["PPM-hyb"]["eon"], perPred["PPM-PIB"]["eon"]; p >= h {
		t.Errorf("eon: PIB-only %.4f not below hybrid %.4f", p, h)
	}
}
