//go:build race

// Package race reports whether the race detector instruments this build.
package race

// Enabled is true when the binary is built with -race.
const Enabled = true
