//go:build !race

// Package race reports whether the race detector instruments this build.
// The zero-allocation regression tests skip themselves under -race because
// race instrumentation itself allocates, which would make AllocsPerRun
// assertions fail for reasons unrelated to the code under test.
package race

// Enabled is true when the binary is built with -race.
const Enabled = false
