package cascade

import (
	"testing"

	"repro/internal/history"
	"repro/internal/twolevel"
)

func policyCascade(p FilterPolicy) *Cascade {
	cfg := Config{
		Name:          "Cascade-" + p.String(),
		FilterEntries: 16,
		Policy:        p,
		Main: twolevel.DualPathConfig{
			Selectors: 64,
			Short: twolevel.GApConfig{
				Entries: 64, PHTs: 1, Assoc: 4, Tagged: true,
				PathLength: 1, BitsPerTarget: 24, HistoryBits: 24,
				HistoryStream: history.MTIndirectBranches,
				Indexing:      twolevel.ReverseInterleave,
			},
			Long: twolevel.GApConfig{
				Entries: 64, PHTs: 1, Assoc: 4, Tagged: true,
				PathLength: 3, BitsPerTarget: 8, HistoryBits: 24,
				HistoryStream: history.MTIndirectBranches,
				Indexing:      twolevel.ReverseInterleave,
			},
		},
	}
	return New(cfg)
}

// TestStrictFilterBrandsPolymorphic: under the strict policy, a branch that
// wobbles once never returns to the filter, even after settling.
func TestStrictFilterBrandsPolymorphic(t *testing.T) {
	c := policyCascade(Strict)
	const pc = 0x12000040
	step := func(tgt uint64) {
		c.Predict(pc)
		c.Update(pc, tgt)
		c.Observe(mtRec(pc, tgt))
	}
	for i := 0; i < 20; i++ {
		step(0xA0)
	}
	step(0xB0) // the single wobble
	for i := 0; i < 50; i++ {
		step(0xA0)
	}
	before, _, _ := c.Stats()
	for i := 0; i < 50; i++ {
		step(0xA0)
	}
	after, _, _ := c.Stats()
	if after != before {
		t.Errorf("strict filter served a branded-polymorphic branch (%d -> %d)", before, after)
	}
}

// TestLeakyFilterRecaptures: the leaky policy lets the same branch settle
// back into the filter after its wobble.
func TestLeakyFilterRecaptures(t *testing.T) {
	c := policyCascade(Leaky)
	const pc = 0x12000040
	step := func(tgt uint64) {
		c.Predict(pc)
		c.Update(pc, tgt)
		c.Observe(mtRec(pc, tgt))
	}
	for i := 0; i < 20; i++ {
		step(0xA0)
	}
	step(0xB0)
	for i := 0; i < 50; i++ {
		step(0xA0)
	}
	before, _, _ := c.Stats()
	// Force main predictor misses by scrambling path history so the
	// filter is consulted again.
	for i := 0; i < 30; i++ {
		c.Observe(mtRec(0x12999000, uint64(0x15000000+i*0x5554)))
		step(0xA0)
	}
	after, _, _ := c.Stats()
	if after == before {
		t.Error("leaky filter never re-served the settled branch")
	}
}

func TestPolicyString(t *testing.T) {
	if Leaky.String() != "leaky" || Strict.String() != "strict" {
		t.Error("policy names wrong")
	}
}
