package cascade

import (
	"repro/internal/counter"
	"repro/internal/state"
)

// Snapshot implements state.Snapshotter: the filter section (entries and
// stage statistics) followed by the main Dual-path predictor.
func (c *Cascade) Snapshot(w *state.Writer) {
	w.Begin(state.SecCascade)
	w.U8(uint8(c.cfg.Policy))
	w.U64(uint64(len(c.filter)))
	for i := range c.filter {
		e := &c.filter[i]
		w.Bool(e.valid)
		if !e.valid {
			continue
		}
		w.Bool(e.poly)
		w.U64(e.tag)
		w.U64(e.target)
		w.U8(e.hyst.Value())
	}
	w.U64(c.filterServed)
	w.U64(c.mainServed)
	w.U64(c.promotions)
	w.End()
	c.main.Snapshot(w)
}

// Restore implements state.Snapshotter, rebuilding the filter in place.
func (c *Cascade) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecCascade); err != nil {
		return err
	}
	policy := FilterPolicy(r.U8())
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if policy != c.cfg.Policy || n != uint64(len(c.filter)) {
		return state.Mismatchf("cascade policy %v/%d filter entries vs snapshot %v/%d",
			c.cfg.Policy, len(c.filter), policy, n)
	}
	for i := range c.filter {
		e := &c.filter[i]
		if !r.Bool() {
			*e = filterEntry{}
			continue
		}
		poly := r.Bool()
		tag := r.U64()
		target := r.U64()
		raw := r.U8()
		if err := r.Err(); err != nil {
			return err
		}
		hyst, ok := counter.HysteresisFromValue(raw)
		if !ok {
			return state.Corruptf("cascade filter hysteresis %d out of range", raw)
		}
		*e = filterEntry{valid: true, poly: poly, tag: tag, target: target, hyst: hyst}
	}
	filterServed := r.U64()
	mainServed := r.U64()
	promotions := r.U64()
	if err := r.End(); err != nil {
		return err
	}
	c.filterServed, c.mainServed, c.promotions = filterServed, mainServed, promotions
	return c.main.Restore(r)
}

var _ state.Snapshotter = (*Cascade)(nil)
