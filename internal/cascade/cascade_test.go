package cascade

import (
	"testing"

	"repro/internal/history"
	"repro/internal/trace"
	"repro/internal/twolevel"
)

func smallCascade() *Cascade {
	return New(Config{
		Name:          "Cascade-small",
		FilterEntries: 16,
		Main: twolevel.DualPathConfig{
			Selectors: 64,
			Short: twolevel.GApConfig{
				Entries: 64, PHTs: 1, Assoc: 4, Tagged: true,
				PathLength: 1, BitsPerTarget: 24, HistoryBits: 24,
				HistoryStream: history.MTIndirectBranches,
				Indexing:      twolevel.ReverseInterleave,
			},
			Long: twolevel.GApConfig{
				Entries: 64, PHTs: 1, Assoc: 4, Tagged: true,
				PathLength: 3, BitsPerTarget: 8, HistoryBits: 24,
				HistoryStream: history.MTIndirectBranches,
				Indexing:      twolevel.ReverseInterleave,
			},
		},
	})
}

func mtRec(pc, target uint64) trace.Record {
	return trace.Record{PC: pc, Target: target, Class: trace.IndirectJmp, Taken: true, MT: true}
}

func TestFilterServesMonomorphic(t *testing.T) {
	c := smallCascade()
	const pc, target = 0x12000040, 0x14000abc
	for i := 0; i < 50; i++ {
		got, ok := c.Predict(pc)
		if i > 2 && (!ok || got != target) {
			t.Fatalf("iteration %d: Predict = (%#x,%v)", i, got, ok)
		}
		c.Update(pc, target)
		c.Observe(mtRec(pc, target))
	}
	filterServed, mainServed, promotions := c.Stats()
	if filterServed == 0 {
		t.Error("monomorphic branch never served by the filter")
	}
	if promotions > 2 {
		t.Errorf("monomorphic branch promoted %d times; the filter should hold it", promotions)
	}
	_ = mainServed
}

func TestPolymorphicPromotesToMain(t *testing.T) {
	c := smallCascade()
	const pc = 0x12000040
	targets := []uint64{0x14000100, 0x14000200, 0x14000300}
	correct, total := 0, 0
	for i := 0; i < 3000; i++ {
		want := targets[i%len(targets)]
		got, ok := c.Predict(pc)
		if i > 500 {
			total++
			if ok && got == want {
				correct++
			}
		}
		c.Update(pc, want)
		c.Observe(mtRec(pc, want))
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("cyclic polymorphic accuracy = %.3f, want >= 0.95 (main predictor)", acc)
	}
	_, mainServed, promotions := c.Stats()
	if promotions == 0 {
		t.Error("polymorphic branch never promoted to the main predictor")
	}
	if mainServed == 0 {
		t.Error("main predictor never served the polymorphic branch")
	}
}

func TestFilterIsolatesMonomorphicFromMain(t *testing.T) {
	// The defining Cascade property: a monomorphic branch must not
	// displace main-table entries a polymorphic branch relies on. Drive a
	// polymorphic branch to steady state, then hammer a monomorphic one
	// and confirm the polymorphic accuracy is unaffected.
	c := smallCascade()
	polyPC, monoPC := uint64(0x12000040), uint64(0x12000480)
	targets := []uint64{0x14000100, 0x14000200, 0x14000300}
	step := func(pc, want uint64) bool {
		got, ok := c.Predict(pc)
		c.Update(pc, want)
		c.Observe(mtRec(pc, want))
		return ok && got == want
	}
	for i := 0; i < 1000; i++ {
		step(polyPC, targets[i%3])
	}
	// Interleave one monomorphic execution between polymorphic ones: the
	// polymorphic branch's previous target stays inside the main
	// components' path windows, so its cycle remains learnable, while the
	// monomorphic branch adds steady table pressure.
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		step(monoPC, 0x15000040)
		if i > 500 {
			total++
			if step(polyPC, targets[i%3]) {
				correct++
			}
		} else {
			step(polyPC, targets[i%3])
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("polymorphic accuracy under monomorphic pressure = %.3f, want >= 0.9", acc)
	}
}

func TestPaperConfig(t *testing.T) {
	c := Paper()
	if c.Name() != "Cascade" {
		t.Errorf("Name = %q", c.Name())
	}
	// 128-entry filter + 2x1024 main entries.
	if got := c.Entries(); got != 128+2048 {
		t.Errorf("Entries = %d, want %d", got, 128+2048)
	}
}

func TestCascadeReset(t *testing.T) {
	c := smallCascade()
	for i := 0; i < 20; i++ {
		c.Predict(0x40)
		c.Update(0x40, uint64(0x100+i*0x40))
		c.Observe(mtRec(0x40, uint64(0x100+i*0x40)))
	}
	c.Reset()
	if _, ok := c.Predict(0x40); ok {
		t.Error("prediction survived Reset")
	}
	f, m, p := c.Stats()
	// One Predict above counts nothing since it missed everywhere.
	if f != 0 || m != 0 || p != 0 {
		t.Errorf("stats survived Reset: %d %d %d", f, m, p)
	}
}

func TestNewPanicsOnBadFilter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad filter size did not panic")
		}
	}()
	New(Config{FilterEntries: 100})
}
