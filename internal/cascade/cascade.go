// Package cascade implements the Cascaded predictor of Driesen & Hölzle
// (MICRO-31, 1998) as configured in Section 5 of the paper under study: a
// tagged Dual-path hybrid main predictor (4-way set-associative PHTs, true
// LRU, path lengths 6 and 4) guarded by a 128-entry leaky filter.
//
// The filter is a small tagged BTB-like structure that serves monomorphic
// and low-entropy branches. A branch is only promoted ("leaked") into the
// main predictor once the filter mispredicts it — evidence that it is
// polymorphic — which keeps easy branches from displacing strongly
// correlated ones in the main tables. Prediction priority is main-on-tag-hit
// first, filter second.
package cascade

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/hashing"
	"repro/internal/history"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/twolevel"
)

// FilterPolicy selects between the two filter disciplines Driesen &
// Hölzle describe.
type FilterPolicy uint8

const (
	// Leaky (the paper's evaluated configuration): the filter's 2-bit
	// hysteresis lets a branch that briefly wobbles re-settle in the
	// filter; the main predictor trains whenever the filter is wrong.
	Leaky FilterPolicy = iota
	// Strict: a branch that has ever shown a second target is marked
	// polymorphic permanently; the filter never again serves it and the
	// main predictor owns it outright.
	Strict
)

// String names the policy.
func (p FilterPolicy) String() string {
	if p == Strict {
		return "strict"
	}
	return "leaky"
}

// Config parameterizes a Cascade predictor.
type Config struct {
	Name          string
	FilterEntries int // power of two
	Policy        FilterPolicy
	Main          twolevel.DualPathConfig
}

type filterEntry struct {
	valid  bool
	poly   bool // strict policy: branch has shown more than one target
	tag    uint64
	target uint64
	hyst   counter.Hysteresis
}

// Cascade is the two-stage filtered predictor.
type Cascade struct {
	cfg     Config
	filter  []filterEntry
	main    *twolevel.DualPath
	pending struct {
		fIdx     uint64
		fTag     uint64
		fHit     bool
		fTarget  uint64
		mainTgt  uint64
		mainOK   bool
		usedMain bool
	}

	// statistics for the filtering-effect analysis in Section 5
	filterServed uint64
	mainServed   uint64
	promotions   uint64
}

// New builds a Cascade predictor. Panics on invalid configuration.
func New(cfg Config) *Cascade {
	if cfg.FilterEntries <= 0 || cfg.FilterEntries&(cfg.FilterEntries-1) != 0 {
		panic(fmt.Sprintf("cascade: filter entries must be a positive power of two, got %d", cfg.FilterEntries))
	}
	return &Cascade{
		cfg:    cfg,
		filter: make([]filterEntry, cfg.FilterEntries),
		main:   twolevel.NewDualPath(cfg.Main),
	}
}

// Name implements predictor.IndirectPredictor.
func (c *Cascade) Name() string {
	if c.cfg.Name != "" {
		return c.cfg.Name
	}
	return "Cascade"
}

// Entries implements predictor.Sized.
func (c *Cascade) Entries() int { return len(c.filter) + c.main.Entries() }

// filterSlot masks the word-aligned pc into the filter; single-return so
// callers inherit the in-bounds proof.
func (c *Cascade) filterSlot(pc uint64) uint64 {
	return (pc >> 2) & uint64(len(c.filter)-1)
}

// filterTag is the 24-bit mixed tag distinguishing aliased branches.
func (c *Cascade) filterTag(pc uint64) uint64 {
	return hashing.Mix64(pc>>2) >> 40
}

// Predict implements predictor.IndirectPredictor.
func (c *Cascade) Predict(pc uint64) (uint64, bool) {
	mTgt, mOK := c.main.Predict(pc)
	fIdx, fTag := c.filterSlot(pc), c.filterTag(pc)
	fe := &c.filter[fIdx]
	fHit := fe.valid && fe.tag == fTag

	p := &c.pending
	p.fIdx, p.fTag, p.fHit = fIdx, fTag, fHit
	p.fTarget = fe.target
	p.mainTgt, p.mainOK = mTgt, mOK

	if mOK {
		p.usedMain = true
		c.mainServed++
		return mTgt, true
	}
	p.usedMain = false
	if fHit && !(c.cfg.Policy == Strict && fe.poly) {
		c.filterServed++
		return fe.target, true
	}
	return 0, false
}

// Update implements predictor.IndirectPredictor.
func (c *Cascade) Update(pc, target uint64) {
	p := &c.pending
	fe := &c.filter[p.fIdx]

	// The branch leaks into the main tables once the filter proves unable
	// to predict it: either the filter entry held the wrong target, or
	// the slot was occupied by a different branch.
	filterWrong := !p.fHit || p.fTarget != target
	allocateMain := filterWrong
	if allocateMain && !p.mainOK {
		c.promotions++
	}
	c.main.UpdateAlloc(pc, target, allocateMain)

	// Train the filter. Tag mismatches displace the old branch; under the
	// leaky policy the hysteresis counter gives resident branches
	// two-consecutive-miss protection, while the strict policy brands a
	// branch polymorphic forever on its first target change.
	switch {
	case !fe.valid || fe.tag != p.fTag:
		*fe = filterEntry{valid: true, tag: p.fTag, target: target, hyst: counter.NewHysteresis()}
	case fe.target == target:
		fe.hyst.OnHit()
	default:
		fe.poly = true
		if fe.hyst.OnMiss() {
			fe.target = target
		}
	}
}

// Observe implements predictor.IndirectPredictor.
func (c *Cascade) Observe(r trace.Record) { c.main.Observe(r) }

// ProcessBlock implements the engine's batch fast path. The filter holds
// no history and the main Dual-path's registers record only MT-indirect
// targets in the paper's configuration, so the whole two-stage protocol is
// driven by the block's MTIdx lane; a main predictor on other streams
// replays record-exactly.
//
//ppm:hotpath whole-block Cascade replay over the MT index lane
func (c *Cascade) ProcessBlock(b *trace.Block, ctr *stats.Counters) {
	if !c.main.MTOnly() {
		for i := 0; i < b.Len(); i++ {
			r := b.Record(i)
			if r.MTIndirect() {
				target, ok := c.Predict(r.PC)
				ctr.Record(ok && target == r.Target, ok)
				c.Update(r.PC, r.Target)
			}
			c.Observe(r)
		}
		return
	}
	pcs, tgts := b.PC, b.Target
	for _, k := range b.MTIdx {
		pc := pcs[k]   //lint:idxsafe MTIdx entries index the block's lanes by construction
		tgt := tgts[k] //lint:idxsafe MTIdx entries index the block's lanes by construction
		target, ok := c.Predict(pc)
		ctr.Record(ok && target == tgt, ok)
		c.Update(pc, tgt)
		c.main.PushMT(tgt)
	}
}

// Stats reports how many predictions each stage served and how many
// branches were promoted into the main predictor.
func (c *Cascade) Stats() (filterServed, mainServed, promotions uint64) {
	return c.filterServed, c.mainServed, c.promotions
}

// Reset implements predictor.Resetter.
func (c *Cascade) Reset() {
	for i := range c.filter {
		c.filter[i] = filterEntry{}
	}
	c.main.Reset()
	c.filterServed, c.mainServed, c.promotions = 0, 0, 0
}

// Paper returns the exact Cascade configuration of Section 5: a 128-entry
// leaky filter in front of a Dual-path main predictor whose PHTs are tagged,
// 4-way set-associative with true LRU, and whose components use path lengths
// 6 and 4.
func Paper() *Cascade {
	return New(Config{
		Name:          "Cascade",
		FilterEntries: 128,
		Policy:        Leaky,
		Main: twolevel.DualPathConfig{
			Name:      "Cascade-main",
			Selectors: 1024,
			Short: twolevel.GApConfig{
				Name:          "Cascade-short",
				Entries:       1024,
				PHTs:          1,
				Assoc:         4,
				Tagged:        true,
				PathLength:    4,
				BitsPerTarget: 6,
				HistoryBits:   24,
				HistoryStream: history.MTIndirectBranches,
				Indexing:      twolevel.ReverseInterleave,
			},
			Long: twolevel.GApConfig{
				Name:          "Cascade-long",
				Entries:       1024,
				PHTs:          1,
				Assoc:         4,
				Tagged:        true,
				PathLength:    6,
				BitsPerTarget: 4,
				HistoryBits:   24,
				HistoryStream: history.MTIndirectBranches,
				Indexing:      twolevel.ReverseInterleave,
			},
		},
	})
}

// PaperU returns the u-bit-managed variant of the paper's Cascade: the
// identical 128-entry leaky filter and tagged 4-way Dual-path main tables,
// but with ITTAGE-style usefulness counters governing replacement — a way
// is only evictable once its counter decays to zero, conflicting sets age
// gradually instead of thrashing, and the counters halve every 2048
// updates (the graceful reset). It isolates how much of ITTAGE's gain
// comes from allocation discipline alone, with the 1998 history lengths
// held fixed.
func PaperU() *Cascade {
	return New(Config{
		Name:          "Cascade-u",
		FilterEntries: 128,
		Policy:        Leaky,
		Main: twolevel.DualPathConfig{
			Name:      "Cascade-u-main",
			Selectors: 1024,
			Short: twolevel.GApConfig{
				Name:              "Cascade-u-short",
				Entries:           1024,
				PHTs:              1,
				Assoc:             4,
				Tagged:            true,
				PathLength:        4,
				BitsPerTarget:     6,
				HistoryBits:       24,
				HistoryStream:     history.MTIndirectBranches,
				Indexing:          twolevel.ReverseInterleave,
				Useful:            true,
				UsefulResetPeriod: 2048,
			},
			Long: twolevel.GApConfig{
				Name:              "Cascade-u-long",
				Entries:           1024,
				PHTs:              1,
				Assoc:             4,
				Tagged:            true,
				PathLength:        6,
				BitsPerTarget:     4,
				HistoryBits:       24,
				HistoryStream:     history.MTIndirectBranches,
				Indexing:          twolevel.ReverseInterleave,
				Useful:            true,
				UsefulResetPeriod: 2048,
			},
		},
	})
}

var (
	_ predictor.IndirectPredictor = (*Cascade)(nil)
	_ predictor.Sized             = (*Cascade)(nil)
	_ predictor.Resetter          = (*Cascade)(nil)
	_ predictor.Costed            = (*Cascade)(nil)
)

// Bits implements predictor.Costed: the filter pays for its tags — the
// hardware-cost argument the paper makes for studying tagless designs.
func (c *Cascade) Bits() int {
	filter := len(c.filter) * (30 + 1 + 2 + 24)
	return filter + c.main.Bits()
}
