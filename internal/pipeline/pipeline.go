// Package pipeline converts misprediction counts into front-end timing
// estimates for a wide-issue speculative processor — the cost model behind
// the paper's motivation that "predicting indirect branches can have a
// significant impact on the performance of a wide-issue machine employing
// speculative execution". The model is deliberately simple and standard:
// useful work issues at the machine width; every branch misprediction
// squashes the speculative window and refills the pipeline, costing a
// fixed penalty of issue slots.
package pipeline

import "fmt"

// Config describes the modelled machine.
type Config struct {
	// Width is the issue width (instructions per cycle when streaming).
	Width int
	// MispredictPenalty is the pipeline refill cost of one misprediction,
	// in cycles (front-end depth).
	MispredictPenalty int
}

// Default4Wide is a late-90s wide-issue configuration of the kind the
// paper targets: 4-wide with a 10-cycle refill.
var Default4Wide = Config{Width: 4, MispredictPenalty: 10}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if c.Width < 1 {
		return fmt.Errorf("pipeline: width must be >= 1, got %d", c.Width)
	}
	if c.MispredictPenalty < 0 {
		return fmt.Errorf("pipeline: negative penalty %d", c.MispredictPenalty)
	}
	return nil
}

// Result is the timing estimate for one run under one predictor.
type Result struct {
	Instructions   uint64
	Mispredictions uint64
	Cycles         uint64
	IPC            float64
}

// Estimate computes cycles and IPC for a run with the given dynamic
// instruction count and total branch mispredictions. Panics if the Config
// fails Validate.
func (c Config) Estimate(instructions, mispredictions uint64) Result {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	base := (instructions + uint64(c.Width) - 1) / uint64(c.Width)
	cycles := base + mispredictions*uint64(c.MispredictPenalty)
	r := Result{
		Instructions:   instructions,
		Mispredictions: mispredictions,
		Cycles:         cycles,
	}
	if cycles > 0 {
		r.IPC = float64(instructions) / float64(cycles)
	}
	return r
}

// Speedup returns how much faster `improved` executes than `base`
// (e.g. 1.07 = 7% faster), assuming the same instruction stream.
func Speedup(base, improved Result) float64 {
	if improved.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(improved.Cycles)
}

// MPKI returns mispredictions per thousand instructions, the standard
// density metric.
func MPKI(instructions, mispredictions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(mispredictions) / float64(instructions)
}
