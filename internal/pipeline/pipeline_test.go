package pipeline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEstimatePerfectPrediction(t *testing.T) {
	r := Default4Wide.Estimate(4000, 0)
	if r.Cycles != 1000 {
		t.Errorf("cycles = %d, want 1000", r.Cycles)
	}
	if r.IPC != 4 {
		t.Errorf("IPC = %v, want 4 (machine width)", r.IPC)
	}
}

func TestEstimateWithMispredictions(t *testing.T) {
	// 4000 instructions, 100 mispredictions x 10 cycles = 1000 + 1000.
	r := Default4Wide.Estimate(4000, 100)
	if r.Cycles != 2000 {
		t.Errorf("cycles = %d, want 2000", r.Cycles)
	}
	if r.IPC != 2 {
		t.Errorf("IPC = %v, want 2", r.IPC)
	}
}

func TestEstimateRoundsUp(t *testing.T) {
	r := Config{Width: 4, MispredictPenalty: 0}.Estimate(5, 0)
	if r.Cycles != 2 {
		t.Errorf("cycles = %d, want 2 (ceil(5/4))", r.Cycles)
	}
}

func TestSpeedup(t *testing.T) {
	base := Default4Wide.Estimate(4000, 100)    // 2000 cycles
	improved := Default4Wide.Estimate(4000, 50) // 1500 cycles
	if got := Speedup(base, improved); math.Abs(got-2000.0/1500.0) > 1e-12 {
		t.Errorf("speedup = %v", got)
	}
	if Speedup(base, Result{}) != 0 {
		t.Error("zero-cycle speedup should be 0")
	}
}

func TestMPKI(t *testing.T) {
	if got := MPKI(1_000_000, 5000); got != 5 {
		t.Errorf("MPKI = %v, want 5", got)
	}
	if MPKI(0, 10) != 0 {
		t.Error("MPKI with zero instructions should be 0")
	}
}

func TestValidate(t *testing.T) {
	if (Config{Width: 0}).Validate() == nil {
		t.Error("width 0 accepted")
	}
	if (Config{Width: 4, MispredictPenalty: -1}).Validate() == nil {
		t.Error("negative penalty accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("Estimate on invalid config did not panic")
		}
	}()
	Config{}.Estimate(1, 0)
}

func TestMonotonicity(t *testing.T) {
	// More mispredictions never make the machine faster.
	f := func(instr uint32, m1, m2 uint16) bool {
		lo, hi := uint64(m1), uint64(m2)
		if lo > hi {
			lo, hi = hi, lo
		}
		a := Default4Wide.Estimate(uint64(instr), lo)
		b := Default4Wide.Estimate(uint64(instr), hi)
		return a.Cycles <= b.Cycles && a.IPC >= b.IPC
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
