// Package sched shards the experiment grid across CPU cores without
// changing a single output byte. The paper's evaluation is embarrassingly
// parallel — (run × predictor-set) simulation cells share nothing but the
// immutable cached traces — so a fixed worker pool executes cells in any
// order, results travel back over a channel tagged with their cell index,
// and the caller reassembles them in canonical suite order.
//
// Determinism contract: every cell builds its own predictors and its own
// sim.Engine, reads only immutable inputs (the workload.Config and the
// shared trace slice from internal/tracecache), and writes only its own
// Result. A pool of one worker degenerates to a plain in-order loop on the
// calling goroutine — the exact serial path — which the harness's
// determinism test compares against high worker counts byte for byte.
package sched

import (
	"runtime"
	"sync"

	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// Result is the outcome of one simulation cell: one suite run driven
// through one fresh predictor set.
type Result struct {
	Config   workload.Config
	Summary  workload.Summary
	Counters []stats.Counters
	// Preds are the cell's predictor instances after simulation, for
	// analyses that read predictor-internal state (component access
	// distributions, oracle context counts).
	Preds []predictor.IndirectPredictor
}

// Pool is a fixed-width worker pool. The zero value is not usable; call
// New.
type Pool struct {
	workers int
}

// New returns a pool of the given width; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Map runs fn(i) for every i in [0, n), sharding across the pool. With one
// worker it is a plain loop on the calling goroutine; otherwise fn must be
// safe for concurrent invocation with distinct i. Map returns when every
// call has completed.
func (p *Pool) Map(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// Simulate drives every suite config through a fresh predictor set built by
// build, one cell per config, and returns results in suite order. Traces
// are read through the cache, so each config is generated at most once per
// process no matter how many Simulate calls share the cache.
func (p *Pool) Simulate(cache *tracecache.Cache, suite []workload.Config, build func() []predictor.IndirectPredictor) []Result {
	return p.runCells(len(suite), func(i int) Result {
		recs, sum := cache.Get(suite[i])
		preds := build()
		e := sim.New(preds...)
		e.ProcessAll(recs)
		return Result{Config: suite[i], Summary: sum, Counters: e.Counters(), Preds: preds}
	})
}

// SimulateBlocks is Simulate through the batched engine: each cell reads
// the pre-decoded columnar blocks from the cache and replays them via
// sim.Engine.ProcessBlocks. Per-predictor outcomes are identical to
// Simulate's (the block engine is observationally equivalent and the
// ppmcheck blocks-vs-records suite holds it to that), so callers may mix
// the two paths freely; only wall-clock differs.
func (p *Pool) SimulateBlocks(cache *tracecache.Cache, suite []workload.Config, build func() []predictor.IndirectPredictor) []Result {
	return p.runCells(len(suite), func(i int) Result {
		blks, sum := cache.GetBlocks(suite[i])
		preds := build()
		e := sim.New(preds...)
		e.ProcessBlocks(blks)
		return Result{Config: suite[i], Summary: sum, Counters: e.Counters(), Preds: preds}
	})
}

// runCells executes n independent simulation cells across the pool and
// reassembles their results in cell order — the shared fan-out under both
// engine front ends. One worker (or one cell) degenerates to a plain
// in-order loop on the calling goroutine, the exact serial path of the
// determinism contract.
func (p *Pool) runCells(n int, cell func(i int) Result) []Result {
	results := make([]Result, n)
	if n == 0 {
		return results
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			results[i] = cell(i)
		}
		return results
	}

	type indexed struct {
		i int
		r Result
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	out := make(chan indexed)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				out <- indexed{i, cell(i)}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()
	for ir := range out {
		results[ir.i] = ir.r
	}
	return results
}
