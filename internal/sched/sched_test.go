package sched

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/predictor"
	"repro/internal/tracecache"
)

func TestMapCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		const n = 100
		var counts [n]int32
		New(workers).Map(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapSerialPathStaysInOrderOnCallingGoroutine(t *testing.T) {
	var order []int
	New(1).Map(5, func(i int) { order = append(order, i) })
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("serial Map order = %v", order)
	}
	New(4).Map(0, func(int) { t.Error("fn called for empty range") })
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 || New(-3).Workers() < 1 {
		t.Error("non-positive widths must resolve to at least one worker")
	}
	if New(7).Workers() != 7 {
		t.Error("explicit width not preserved")
	}
}

// TestSimulateParallelMatchesSerial is the core determinism property: the
// same suite and predictor set must produce identical counters at any pool
// width, with results in suite order.
func TestSimulateParallelMatchesSerial(t *testing.T) {
	suite := bench.Sized(2000)[:6]
	cache := tracecache.New(0)
	build := func() []predictor.IndirectPredictor {
		p1, _ := bench.NewPredictor("BTB")
		p2, _ := bench.NewPredictor("PPM-hyb")
		return []predictor.IndirectPredictor{p1, p2}
	}
	serial := New(1).Simulate(cache, suite, build)
	for _, workers := range []int{2, 8} {
		par := New(workers).Simulate(cache, suite, build)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Config.String() != suite[i].String() {
				t.Errorf("workers=%d: result %d is %s, want %s (canonical order broken)",
					workers, i, par[i].Config.String(), suite[i].String())
			}
			if !reflect.DeepEqual(par[i].Counters, serial[i].Counters) {
				t.Errorf("workers=%d: run %s counters diverge from serial", workers, suite[i].String())
			}
			if par[i].Summary.Records != serial[i].Summary.Records {
				t.Errorf("workers=%d: run %s summary diverges", workers, suite[i].String())
			}
		}
	}
	// One generation per config regardless of how many Simulate calls ran.
	if st := cache.Stats(); st.Generated != uint64(len(suite)) {
		t.Errorf("cache generated %d traces for %d configs", st.Generated, len(suite))
	}
}

func TestSimulateGivesEachCellPrivatePredictors(t *testing.T) {
	suite := bench.Sized(1000)[:4]
	cache := tracecache.New(0)
	var mu sync.Mutex
	seen := map[predictor.IndirectPredictor]bool{}
	results := New(4).Simulate(cache, suite, func() []predictor.IndirectPredictor {
		p, _ := bench.NewPredictor("BTB")
		return []predictor.IndirectPredictor{p}
	})
	for _, r := range results {
		mu.Lock()
		if seen[r.Preds[0]] {
			t.Error("predictor instance shared between cells")
		}
		seen[r.Preds[0]] = true
		mu.Unlock()
		if len(r.Counters) != 1 || r.Counters[0].Predictor != "BTB" {
			t.Errorf("run %s: counters %v", r.Config.String(), r.Counters)
		}
		if r.Counters[0].Lookups == 0 {
			t.Errorf("run %s: no lookups recorded", r.Config.String())
		}
	}
}

func TestSimulateEmptySuite(t *testing.T) {
	res := New(4).Simulate(tracecache.New(0), nil, func() []predictor.IndirectPredictor { return nil })
	if len(res) != 0 {
		t.Errorf("empty suite returned %d results", len(res))
	}
}
