package condbr

import (
	"testing"
	"testing/quick"
)

// feed drives the PPM with a bit string ('0'/'1').
func feed(p *PPM, seq string) {
	for _, ch := range seq {
		p.Predict()
		p.Update(ch == '1')
	}
}

// TestFigure1WorkedExample reproduces the paper's Figure 1 exactly: after
// the input sequence 01010110101, the 3rd-order model's state 101 has seen
// 010 twice and 011 once, so the PPM predicts 0.
func TestFigure1WorkedExample(t *testing.T) {
	p := NewPPM(3)
	feed(p, "01010110101")
	m := p.Model(3)
	zeros, ones := m.Counts(0b101)
	if zeros != 2 || ones != 1 {
		t.Fatalf("state 101 counts = (0:%d, 1:%d), want (0:2, 1:1)", zeros, ones)
	}
	if p.Predict() {
		t.Fatal("PPM predicted 1 after 01010110101; the paper's worked example predicts 0")
	}
	// 3rd-order model has recorded 4 of the 8 possible states (Figure 1).
	active := 0
	for pattern := uint64(0); pattern < 8; pattern++ {
		z, o := m.Counts(pattern)
		if z+o > 0 {
			active++
		}
	}
	if active != 4 {
		t.Errorf("3rd-order model has %d active states, Figure 1 shows 4", active)
	}
}

func TestMarkovUnseenStateFallsThrough(t *testing.T) {
	p := NewPPM(3)
	feed(p, "111") // history now 111, only low-order states trained
	// Model 3 has seen nothing after pattern 111 (first occurrence was the
	// end of input), but order 0 must always answer once trained.
	if !p.Predict() {
		t.Error("all-ones history should predict taken")
	}
	acc := p.Accesses()
	var total uint64
	for _, a := range acc {
		total += a
	}
	if total == 0 {
		t.Error("no accesses recorded")
	}
}

func TestPPMLearnsAlternation(t *testing.T) {
	p := NewPPM(4)
	correct, total := 0, 0
	for i := 0; i < 400; i++ {
		want := i%2 == 1
		got := p.Predict()
		if i > 50 {
			total++
			if got == want {
				correct++
			}
		}
		p.Update(want)
	}
	if acc := float64(correct) / float64(total); acc < 0.99 {
		t.Errorf("alternation accuracy = %.3f, want >= 0.99", acc)
	}
}

func TestPPMLearnsLongPattern(t *testing.T) {
	// Period-6 pattern needs order >= 5 to disambiguate; PPM(8) gets it,
	// a bimodal cannot.
	pattern := []bool{true, true, false, true, false, false}
	p := NewPPM(8)
	b := NewBimodal(16)
	pCorrect, bCorrect, total := 0, 0, 0
	for i := 0; i < 1200; i++ {
		want := pattern[i%len(pattern)]
		pg := p.Predict()
		bg := b.Predict(0x1000)
		if i > 200 {
			total++
			if pg == want {
				pCorrect++
			}
			if bg == want {
				bCorrect++
			}
		}
		p.Update(want)
		b.Update(0x1000, want)
	}
	pAcc := float64(pCorrect) / float64(total)
	bAcc := float64(bCorrect) / float64(total)
	if pAcc < 0.99 {
		t.Errorf("PPM period-6 accuracy = %.3f, want >= 0.99", pAcc)
	}
	if bAcc >= pAcc {
		t.Errorf("bimodal (%.3f) matched PPM (%.3f) on a deep pattern", bAcc, pAcc)
	}
}

func TestUpdateExclusion(t *testing.T) {
	p := NewPPM(2)
	feed(p, "0101")
	// History is 0101; order-2 state 01 decided the last prediction (it
	// has been trained). Capture order-0 counts, run one more step where
	// order 2 decides, and verify order 0 was excluded from the update.
	z0Before, o0Before := p.Model(0).Counts(0)
	p.Predict()
	p.Update(false)
	z0After, o0After := p.Model(0).Counts(0)
	if z0Before != z0After || o0Before != o0After {
		t.Errorf("order-0 model updated while a higher order decided: (%d,%d) -> (%d,%d)",
			z0Before, o0Before, z0After, o0After)
	}
	// The deciding order-2 state must have been updated.
	z2, _ := p.Model(2).Counts(p.History() >> 1 & 3)
	if z2 == 0 {
		t.Error("deciding model not updated")
	}
}

func TestGAgLearnsGlobalPattern(t *testing.T) {
	g := NewGAg(8)
	correct, total := 0, 0
	pattern := []bool{true, false, false, true}
	for i := 0; i < 800; i++ {
		want := pattern[i%len(pattern)]
		got := g.Predict()
		if i > 100 {
			total++
			if got == want {
				correct++
			}
		}
		g.Update(want)
	}
	if acc := float64(correct) / float64(total); acc < 0.99 {
		t.Errorf("GAg pattern accuracy = %.3f, want >= 0.99", acc)
	}
}

func TestBimodalBias(t *testing.T) {
	b := NewBimodal(16)
	if !b.Predict(0x40) {
		t.Error("fresh bimodal should weakly predict taken")
	}
	b.Update(0x40, false)
	b.Update(0x40, false)
	if b.Predict(0x40) {
		t.Error("bimodal did not learn not-taken")
	}
}

func TestMarkovCountsSaturate(t *testing.T) {
	m := NewMarkov(0)
	for i := 0; i < 10; i++ {
		m.Train(0, 1)
	}
	_, ones := m.Counts(0)
	if ones != 10 {
		t.Errorf("ones = %d, want 10", ones)
	}
}

func TestPPMAccessesAttribution(t *testing.T) {
	p := NewPPM(3)
	feed(p, "0101010101")
	acc := p.Accesses()
	if len(acc) != 4 {
		t.Fatalf("accesses len = %d, want 4", len(acc))
	}
	if acc[3] == 0 {
		t.Error("order-3 never supplied a prediction on a learnable pattern")
	}
}

func TestPPMPredictUpdateNeverPanics(t *testing.T) {
	f := func(bits []bool, orderRaw uint8) bool {
		p := NewPPM(int(orderRaw % 12))
		for _, b := range bits {
			p.Predict()
			p.Update(b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConstructorsValidate(t *testing.T) {
	for _, f := range []func(){
		func() { NewPPM(-1) },
		func() { NewBimodal(3) },
		func() { NewGAg(0) },
		func() { NewGAg(30) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor arg did not panic")
				}
			}()
			f()
		}()
	}
	if NewPPM(5).Name() == "" || NewPPM(5).Order() != 5 {
		t.Error("PPM metadata wrong")
	}
}
