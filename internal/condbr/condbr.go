// Package condbr implements the Section 3 illustration of the PPM
// algorithm: Prediction by Partial Matching over conditional branch outcome
// bits, exactly as applied by Chen, Coffey & Mudge (ASPLOS 1996). An
// order-m PPM predictor is a set of m+1 Markov predictors; the order-j
// model keeps frequency counts of the bit that follows each j-bit pattern,
// predictions come from the highest-order model whose current pattern has
// been seen, and updates follow the update-exclusion policy.
//
// Simple bimodal and GAg two-level baselines are included so examples can
// compare the PPM stack against conventional direction predictors.
package condbr

import "fmt"

// Markov is the order-j frequency model over outcome bits: for each of the
// 2^j states it counts how often a 0 or 1 followed the state's pattern.
type Markov struct {
	order  uint
	counts [][2]uint32
}

// NewMarkov builds an order-j model (order 0 has a single state).
func NewMarkov(order uint) *Markov {
	return &Markov{order: order, counts: make([][2]uint32, 1<<order)}
}

// Order returns j.
func (m *Markov) Order() uint { return m.order }

// state extracts the model's pattern from the global history register
// (the order low bits, most recent outcome in bit 0).
func (m *Markov) state(hist uint64) uint64 {
	return hist & (uint64(1)<<m.order - 1)
}

// Counts returns the (zeros, ones) frequency pair for a pattern.
func (m *Markov) Counts(pattern uint64) (zeros, ones uint32) {
	c := m.counts[pattern&(uint64(1)<<m.order-1)]
	return c[0], c[1]
}

// Predict returns the majority next bit for the current pattern and whether
// the pattern has been seen at all (non-zero frequency). Ties predict the
// most recent convention: taken (1), matching the common hardware bias.
func (m *Markov) Predict(hist uint64) (bit uint8, seen bool) {
	c := m.counts[m.state(hist)]
	if c[0] == 0 && c[1] == 0 {
		return 0, false
	}
	if c[0] > c[1] {
		return 0, true
	}
	return 1, true
}

// Train counts the outcome bit following the current pattern.
func (m *Markov) Train(hist uint64, outcome uint8) {
	c := &m.counts[m.state(hist)]
	if c[outcome&1] < ^uint32(0) {
		c[outcome&1]++
	}
}

// PPM is the order-m conditional-branch PPM predictor: models of order
// m down to 0 searched highest-first, trained with update exclusion.
type PPM struct {
	order  int
	models []*Markov // models[j] has order j
	hist   uint64
	seen   int // outcomes observed, for warm-up-aware callers

	// pending state between Predict and Update
	pendingOrder int
	pendingBit   uint8

	accesses []uint64
}

// NewPPM builds an order-m PPM direction predictor.
// Panics if order is outside [0,30].
func NewPPM(order int) *PPM {
	if order < 0 || order > 30 {
		panic(fmt.Sprintf("condbr: order must be in [0,30], got %d", order))
	}
	models := make([]*Markov, order+1)
	for j := 0; j <= order; j++ {
		models[j] = NewMarkov(uint(j))
	}
	return &PPM{order: order, models: models, accesses: make([]uint64, order+1)}
}

// Name identifies the predictor.
func (p *PPM) Name() string { return fmt.Sprintf("PPM-cond(%d)", p.order) }

// Order returns m.
func (p *PPM) Order() int { return p.order }

// History returns the global outcome history register (bit 0 most recent).
func (p *PPM) History() uint64 { return p.hist }

// Model exposes the order-j Markov model.
func (p *PPM) Model(j int) *Markov { return p.models[j] }

// Predict returns the predicted direction. The order-0 model always
// predicts once at least one outcome has been observed; before that the
// conventional static taken prediction is returned.
func (p *PPM) Predict() bool {
	for j := p.order; j >= 0; j-- {
		if bit, seen := p.models[j].Predict(p.hist); seen {
			p.pendingOrder = j
			p.pendingBit = bit
			p.accesses[j]++
			return bit == 1
		}
	}
	p.pendingOrder = -1
	p.pendingBit = 1
	return true
}

// Update trains the stack with the actual outcome under update exclusion:
// the deciding model and all higher orders learn; lower orders do not.
// The history register then shifts in the outcome.
func (p *PPM) Update(taken bool) {
	outcome := uint8(0)
	if taken {
		outcome = 1
	}
	low := p.pendingOrder
	if low < 0 {
		low = 0
	}
	for j := low; j <= p.order; j++ {
		// An order-j state only exists once j real outcomes have been
		// observed; training on zero-padded warm-up history would
		// fabricate states the input never contained (cf. Figure 1,
		// which shows exactly the patterns present in the sequence).
		if p.seen >= j {
			p.models[j].Train(p.hist, outcome)
		}
	}
	p.hist = p.hist<<1 | uint64(outcome)
	p.seen++
}

// Accesses returns how many predictions each order supplied.
func (p *PPM) Accesses() []uint64 { return p.accesses }

// Bimodal is the classic per-branch 2-bit counter predictor, provided as a
// baseline for the examples.
type Bimodal struct {
	table []uint8
}

// NewBimodal builds a bimodal predictor with `entries` counters, initialized
// weakly taken. Panics if entries is not a positive power of two.
func NewBimodal(entries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("condbr: entries must be a positive power of two, got %d", entries))
	}
	t := make([]uint8, entries)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t}
}

// Predict returns the predicted direction for the branch at pc.
func (b *Bimodal) Predict(pc uint64) bool {
	return b.table[(pc>>2)&uint64(len(b.table)-1)] >= 2
}

// Update trains the counter for pc with the actual direction.
func (b *Bimodal) Update(pc uint64, taken bool) {
	c := &b.table[(pc>>2)&uint64(len(b.table)-1)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// GAg is a two-level adaptive predictor with a global history register and
// a global pattern history table of 2-bit counters (Yeh & Patt).
type GAg struct {
	histBits uint
	hist     uint64
	table    []uint8
}

// NewGAg builds a GAg with the given history length; the PHT has 2^histBits
// counters. Panics if histBits is outside [1,24].
func NewGAg(histBits uint) *GAg {
	if histBits == 0 || histBits > 24 {
		panic(fmt.Sprintf("condbr: history bits must be in [1,24], got %d", histBits))
	}
	t := make([]uint8, 1<<histBits)
	for i := range t {
		t[i] = 2
	}
	return &GAg{histBits: histBits, table: t}
}

// Predict returns the predicted direction.
func (g *GAg) Predict() bool {
	return g.table[g.hist&(uint64(1)<<g.histBits-1)] >= 2
}

// Update trains the PHT and shifts the outcome into the history register.
func (g *GAg) Update(taken bool) {
	c := &g.table[g.hist&(uint64(1)<<g.histBits-1)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
	bit := uint64(0)
	if taken {
		bit = 1
	}
	g.hist = g.hist<<1 | bit
}
