package counter

import (
	"testing"
	"testing/quick"
)

func TestHysteresisReplaceAfterTwoMisses(t *testing.T) {
	h := NewHysteresis()
	if h.Value() != 1 {
		t.Fatalf("fresh hysteresis state = %d, want 1 (weak)", h.Value())
	}
	if h.OnMiss() {
		t.Fatal("first miss on a fresh entry must not replace")
	}
	if !h.OnMiss() {
		t.Fatal("second consecutive miss must replace")
	}
	if h.Value() != 1 {
		t.Fatalf("post-replacement state = %d, want weak reset", h.Value())
	}
}

func TestHysteresisHitsProtect(t *testing.T) {
	h := NewHysteresis()
	for i := 0; i < 5; i++ {
		h.OnHit()
	}
	if h.Value() != 3 {
		t.Fatalf("saturated value = %d, want 3", h.Value())
	}
	// From saturation it takes 4 consecutive misses to replace.
	misses := 0
	for !h.OnMiss() {
		misses++
		if misses > 10 {
			t.Fatal("hysteresis never replaces")
		}
	}
	if misses != 3 {
		t.Errorf("replaced after %d+1 misses from strong, want 3+1", misses)
	}
}

func TestHysteresisInterleaved(t *testing.T) {
	// A hit between misses resets the countdown: hit, miss, hit, miss...
	// never replaces.
	h := NewHysteresis()
	h.OnHit() // -> 2
	for i := 0; i < 8; i++ {
		if h.OnMiss() {
			t.Fatal("alternating hit/miss replaced the target")
		}
		h.OnHit()
	}
}

func TestSelectionInitialState(t *testing.T) {
	for _, mode := range []SelectionMode{Normal, PIBBiased} {
		s := NewSelection(mode)
		if s.State() != StronglyPIB {
			t.Errorf("%v: initial state %s, want Strongly PIB", mode, StateName(s.State()))
		}
		if s.Selected() != PIB {
			t.Errorf("%v: initial selection %v, want PIB", mode, s.Selected())
		}
	}
}

// TestSelectionNormalTransitions exhaustively checks the Figure 5 normal
// state machine.
func TestSelectionNormalTransitions(t *testing.T) {
	cases := []struct {
		from    uint8
		correct bool
		want    uint8
	}{
		{StronglyPB, true, StronglyPB},
		{WeaklyPB, true, StronglyPB},
		{WeaklyPIB, true, StronglyPIB},
		{StronglyPIB, true, StronglyPIB},
		{StronglyPB, false, WeaklyPB},
		{WeaklyPB, false, WeaklyPIB},
		{WeaklyPIB, false, WeaklyPB},
		{StronglyPIB, false, WeaklyPIB},
	}
	for _, c := range cases {
		s := Selection{state: c.from, mode: Normal}
		s.Update(c.correct)
		if s.State() != c.want {
			t.Errorf("normal: %s --correct=%v--> %s, want %s",
				StateName(c.from), c.correct, StateName(s.State()), StateName(c.want))
		}
	}
}

// TestSelectionBiasedTransitions exhaustively checks the PIB-biased machine:
// a single misprediction on the PB side jumps two steps toward PIB.
func TestSelectionBiasedTransitions(t *testing.T) {
	cases := []struct {
		from    uint8
		correct bool
		want    uint8
	}{
		{StronglyPB, true, StronglyPB},
		{WeaklyPB, true, StronglyPB},
		{WeaklyPIB, true, StronglyPIB},
		{StronglyPIB, true, StronglyPIB},
		{StronglyPB, false, WeaklyPIB},
		{WeaklyPB, false, StronglyPIB},
		{WeaklyPIB, false, WeaklyPB},
		{StronglyPIB, false, WeaklyPIB},
	}
	for _, c := range cases {
		s := Selection{state: c.from, mode: PIBBiased}
		s.Update(c.correct)
		if s.State() != c.want {
			t.Errorf("biased: %s --correct=%v--> %s, want %s",
				StateName(c.from), c.correct, StateName(s.State()), StateName(c.want))
		}
	}
}

func TestSelectionTwoMissesFlip(t *testing.T) {
	// From a strong state, the normal machine changes correlation type
	// only after two consecutive mispredictions.
	s := Selection{state: StronglyPIB, mode: Normal}
	s.Update(false)
	if s.Selected() != PIB {
		t.Fatal("one misprediction flipped a strongly-PIB branch")
	}
	s.Update(false)
	if s.Selected() != PB {
		t.Fatal("two mispredictions did not flip to PB")
	}
}

func TestSelectionBiasedRecoversFast(t *testing.T) {
	// The biased machine returns a bounced branch to PIB after a single
	// PB-side misprediction — the aliasing fix of Section 4.
	s := Selection{state: WeaklyPB, mode: PIBBiased}
	s.Update(false)
	if s.State() != StronglyPIB {
		t.Fatalf("biased weakly-PB mispredict -> %s, want Strongly PIB", StateName(s.State()))
	}
}

func TestSelectionStatesStayIn2Bits(t *testing.T) {
	f := func(ops []bool, biased bool) bool {
		mode := Normal
		if biased {
			mode = PIBBiased
		}
		s := NewSelection(mode)
		for _, op := range ops {
			s.Update(op)
			if s.State() > StronglyPIB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorrelationString(t *testing.T) {
	if PB.String() != "PB" || PIB.String() != "PIB" {
		t.Error("Correlation.String mismatch")
	}
	if Normal.String() != "normal" || PIBBiased.String() != "pib-biased" {
		t.Error("SelectionMode.String mismatch")
	}
	for st := uint8(0); st < 4; st++ {
		if StateName(st) == "" {
			t.Errorf("StateName(%d) empty", st)
		}
	}
}
