// Package counter implements the saturating-counter state machines used
// throughout the predictors: the 2-bit up/down hysteresis counter that
// gates target replacement in BTB2b/GAp/Dual-path/Markov entries (Section 4:
// "the target is updated on two consecutive misses"), and the 2-bit
// correlation-selection counters of Figure 5 (normal and PIB-biased modes)
// that choose between PB and PIB path history per branch.
package counter

import "fmt"

// Hysteresis is the per-entry 2-bit up/down saturating counter that controls
// when a stored target may be replaced. A freshly allocated entry starts in
// the weak state so that two consecutive misses replace the target, exactly
// as described in Section 4 of the paper.
type Hysteresis struct {
	v uint8 // 0..3
}

// NewHysteresis returns a counter in the weak-confidence initial state.
func NewHysteresis() Hysteresis { return Hysteresis{v: 1} }

// Value exposes the raw 2-bit state, for tests and debug dumps.
func (h Hysteresis) Value() uint8 { return h.v }

// HysteresisFromValue reconstructs a counter from its raw 2-bit state, the
// inverse of Value used by snapshot restore. ok is false when v exceeds the
// 2-bit range.
func HysteresisFromValue(v uint8) (h Hysteresis, ok bool) {
	if v > 3 {
		return Hysteresis{}, false
	}
	return Hysteresis{v: v}, true
}

// OnHit strengthens confidence after the stored target proved correct.
//
//ppm:hotpath per-prediction counter state transition
func (h *Hysteresis) OnHit() {
	if h.v < 3 {
		h.v++
	}
}

// OnMiss weakens confidence after the stored target proved wrong and
// reports whether the entry's target should be replaced now. Replacement
// happens when a miss arrives with the counter already at zero; the counter
// is then reset to the weak state for the incoming target.
//
//ppm:hotpath per-prediction counter state transition
func (h *Hysteresis) OnMiss() (replace bool) {
	if h.v == 0 {
		h.v = 1
		return true
	}
	h.v--
	return false
}

// Correlation identifies which path history register a branch selects.
type Correlation uint8

const (
	// PB selects the per-branch (all-branch) global path history.
	PB Correlation = iota
	// PIB selects the per-indirect-branch global path history.
	PIB
)

// String returns "PB" or "PIB".
func (c Correlation) String() string {
	if c == PB {
		return "PB"
	}
	return "PIB"
}

// SelectionMode chooses which Figure 5 state machine a selection counter
// follows.
type SelectionMode uint8

const (
	// Normal is the plain 2-bit up/down machine: the selected correlation
	// type changes only after two consecutive mispredictions from a
	// strong state.
	Normal SelectionMode = iota
	// PIBBiased favors PIB history: a single misprediction in a PB state
	// jumps two steps toward PIB (Strongly-PB -> Weakly-PIB, Weakly-PB ->
	// Strongly-PIB), eliminating the bounce between weak states that the
	// paper observed for strongly PIB-correlated branches aliasing in the
	// Markov tables.
	PIBBiased
)

// String names the mode.
func (m SelectionMode) String() string {
	if m == PIBBiased {
		return "pib-biased"
	}
	return "normal"
}

// Selection states, Figure 5. The 2-bit encoding matches the figure labels.
const (
	StronglyPB  uint8 = 0 // 00
	WeaklyPB    uint8 = 1 // 01
	WeaklyPIB   uint8 = 2 // 10
	StronglyPIB uint8 = 3 // 11
)

// Selection is one per-branch correlation selection counter, held in the BIU.
// The zero value is NOT the paper's initial state; use NewSelection.
type Selection struct {
	state uint8
	mode  SelectionMode
}

// NewSelection returns a counter initialized to Strongly-PIB, the initial
// state the paper uses for both state machines.
func NewSelection(mode SelectionMode) Selection {
	return Selection{state: StronglyPIB, mode: mode}
}

// State exposes the raw 2-bit state for tests and debug dumps.
func (s Selection) State() uint8 { return s.state }

// SelectionFromState reconstructs a counter from its raw 2-bit state and
// mode, the inverse of State used by snapshot restore. ok is false when
// raw exceeds the 2-bit range.
func SelectionFromState(raw uint8, mode SelectionMode) (s Selection, ok bool) {
	if raw > StronglyPIB {
		return Selection{}, false
	}
	return Selection{state: raw, mode: mode}, true
}

// Selected returns the correlation type the branch currently uses.
//
//ppm:hotpath per-prediction counter state transition
func (s Selection) Selected() Correlation {
	if s.state <= WeaklyPB {
		return PB
	}
	return PIB
}

// Update advances the state machine after the branch resolves. correct
// reports whether the prediction made with the selected history was right.
// Solid arcs in Figure 5 (correct prediction) strengthen the current
// correlation type; dotted arcs (misprediction) move toward the other type —
// one step in Normal mode, two steps from the PB side in PIBBiased mode.
//
//ppm:hotpath per-prediction counter state transition
func (s *Selection) Update(correct bool) {
	if correct {
		switch s.state {
		case WeaklyPB:
			s.state = StronglyPB
		case WeaklyPIB:
			s.state = StronglyPIB
		}
		return
	}
	switch s.mode {
	case Normal:
		switch s.state {
		case StronglyPB:
			s.state = WeaklyPB
		case WeaklyPB:
			s.state = WeaklyPIB
		case WeaklyPIB:
			s.state = WeaklyPB
		case StronglyPIB:
			s.state = WeaklyPIB
		}
	case PIBBiased:
		switch s.state {
		case StronglyPB:
			s.state = WeaklyPIB
		case WeaklyPB:
			s.state = StronglyPIB
		case WeaklyPIB:
			s.state = WeaklyPB
		case StronglyPIB:
			s.state = WeaklyPIB
		}
	}
}

// StateName returns the Figure 5 label for a selection state.
func StateName(state uint8) string {
	switch state {
	case StronglyPB:
		return "Strongly PB"
	case WeaklyPB:
		return "Weakly PB"
	case WeaklyPIB:
		return "Weakly PIB"
	case StronglyPIB:
		return "Strongly PIB"
	}
	return fmt.Sprintf("state(%d)", state)
}
