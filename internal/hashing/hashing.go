// Package hashing implements the index-generation functions used by the
// indirect branch predictors in this repository:
//
//   - gshare XOR indexing (Chang et al., Driesen & Hölzle)
//   - Select-Fold-Shift-XOR (SFSX) from Sazeides & Smith
//   - Select-Fold-Shift-XOR-Select (SFSXS), the paper's Figure 2 mapping
//     function for the PPM Markov predictor stack
//   - reverse-interleaving indexing used by the Dual-path predictor
//
// All functions are pure and allocation-free so they can run in the inner
// simulation loop.
package hashing

import "math/bits"

// Mask returns a mask of the n low-order bits. n must be <= 64.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func Mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// Select extracts the n low-order bits of v.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func Select(v uint64, n uint) uint64 { return v & Mask(n) }

// Fold XOR-folds the in low-order bits of v into out bits by XORing
// successive out-bit chunks together. If out >= in the value is returned
// masked to in bits. out must be > 0.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func Fold(v uint64, in, out uint) uint64 {
	v = Select(v, in)
	if out == 0 {
		return 0
	}
	if out >= in {
		return v
	}
	var folded uint64
	for v != 0 {
		folded ^= v & Mask(out)
		v >>= out
	}
	return folded
}

// GShare forms a bits-wide index by XORing the branch address (shifted right
// by 2 to drop the instruction alignment bits) with the history register.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func GShare(history, pc uint64, n uint) uint64 {
	return (history ^ (pc >> 2)) & Mask(n)
}

// SFSX computes the Select-Fold-Shift-XOR hash over a path of targets.
// targets[0] is the most recent target. For each target i the selBits
// low-order bits are selected, folded to foldBits bits, shifted left by i,
// and XORed into the accumulator. The conceptual accumulator is
// foldBits+len(targets)-1 bits wide; bit positions past 63 wrap around
// (the shift is a 64-bit rotation), XOR-reducing the wide hash modulo 64
// so every path entry contributes no matter how long the path is. For
// paths where foldBits+len(targets)-1 <= 64 — every configuration in this
// repository — the wrap never engages and the result is the plain
// shift-XOR hash.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func SFSX(targets []uint64, selBits, foldBits uint) uint64 {
	var h uint64
	for i, t := range targets {
		h ^= bits.RotateLeft64(Fold(t>>2, selBits, foldBits), i&63)
	}
	return h
}

// SFSXS computes the paper's Figure 2 Select-Fold-Shift-XOR-Select index for
// the Markov predictor of the given order. It forms an SFSX-style hash over
// the `order` most recent targets (targets[0] is most recent), with the most
// recent target shifted into the highest bit positions, and selects the
// `order` high-order bits of the (foldBits+order-1)-bit hash. The order-j
// Markov table thus has exactly 2^j entries, its index depends only on the
// j most recent targets (preserving Markov-chain semantics), and the
// selected bits are dominated by the most recent path — without which the
// highest-order component would effectively ignore recent control flow.
//
// If fewer than `order` targets are available the hash is computed over the
// ones present (early-execution warm-up), which matches a hardware PHR that
// powers up zeroed.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func SFSXS(targets []uint64, selBits, foldBits, order uint) uint64 {
	if order == 0 {
		return 0
	}
	n := uint(len(targets))
	if n > order {
		n = order
	}
	var h uint64
	for i, t := range targets[:n] {
		h ^= Fold(t>>2, selBits, foldBits) << (order - 1 - uint(i))
	}
	width := foldBits + order - 1
	if width < order {
		width = order
	}
	return (h >> (width - order)) & Mask(order)
}

// SFSXSAll computes SFSXS (or SFSXSLow when low is set) for every order in
// [1, maxOrder] in one incremental pass, writing the order-j index to
// dst[j]; dst must be at least maxOrder+1 long and dst[0] is left as is.
//
// The per-order hashes nest: with g_i the folded contribution of the i-th
// most recent target, the high-select hash for order o is
// h_o = (h_{o-1} << 1) ^ g_{o-1}, and with foldBits >= 1 the final select
// always shifts by the constant foldBits-1 — so one fold per available
// target and one shift-XOR per order replace the O(order^2) refolds of
// calling SFSXS per order. foldBits must be >= 1 (every PPM configuration
// validates this); equivalence with per-order SFSXS/SFSXSLow calls is
// pinned by TestSFSXSAllMatchesPerOrder and the ppmcheck differential.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func SFSXSAll(dst, targets []uint64, selBits, foldBits, maxOrder uint, low bool) {
	n := uint(len(targets))
	if n > maxOrder {
		n = maxOrder
	}
	var h uint64
	if low {
		// Low-select: fold i sits at bit positions [i, i+foldBits); entries
		// at i >= o only occupy bits >= o, so masking the running hash to o
		// bits is exactly the per-order cap on path length.
		for i := uint(0); i < n; i++ {
			h ^= Fold(targets[i]>>2, selBits, foldBits) << i //lint:idxsafe i < n <= len(targets)
		}
		for o := uint(1); o <= maxOrder; o++ {
			dst[o] = h & Mask(o) //lint:idxsafe caller contract: len(dst) >= maxOrder+1 and o <= maxOrder
		}
		return
	}
	for o := uint(1); o <= maxOrder; o++ {
		h <<= 1
		if o-1 < n {
			h ^= Fold(targets[o-1]>>2, selBits, foldBits) //lint:idxsafe o-1 < n <= len(targets)
		}
		dst[o] = (h >> (foldBits - 1)) & Mask(o) //lint:idxsafe caller contract: len(dst) >= maxOrder+1 and o <= maxOrder
	}
}

// SFSXSLow is the alternative mapping mentioned in Section 4 of the paper:
// the mirror orientation that shifts the most recent target into the
// low-order bit positions and selects the order low-order bits of the hash.
// The paper found little accuracy difference between the two; both are kept
// so the claim can be checked experimentally.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func SFSXSLow(targets []uint64, selBits, foldBits, order uint) uint64 {
	if order == 0 {
		return 0
	}
	n := uint(len(targets))
	if n > order {
		n = order
	}
	var h uint64
	for i, t := range targets[:n] {
		h ^= Fold(t>>2, selBits, foldBits) << uint(i)
	}
	return h & Mask(order)
}

// ReverseInterleave forms an n-bit index by interleaving bits of the
// bit-reversed history register with bits of the branch address, the
// indexing scheme Driesen & Hölzle describe for the Dual-path predictor
// components. Reversing the history places the most recently shifted-in
// target bits in the high-order index positions, spreading recent-path
// information across the table.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func ReverseInterleave(history uint64, historyBits uint, pc uint64, n uint) uint64 {
	// The shift register keeps the most recent target in its low-order
	// bits; bit-reversing within the n-bit window places those most
	// recent bits in the high-order index positions, spreading recent-path
	// information across the table while PC bits fill the gaps.
	// Count the history positions in the 2:1 interleave pattern and fold
	// the full register into that many bits, so the whole recorded path —
	// not just its most recent slice — reaches the index.
	histPos := (n + 1) / 2
	h := Fold(Select(history, historyBits), historyBits, histPos)
	pc >>= 2
	var out uint64
	var outPos uint
	// Alternate one folded-history bit (recent first) and one PC bit until
	// n output bits are set.
	for outPos < n {
		out |= (h & 1) << (n - 1 - outPos)
		h >>= 1
		outPos++
		if outPos >= n {
			break
		}
		out |= (pc & 1) << (n - 1 - outPos)
		pc >>= 1
		outPos++
	}
	return Select(out, n)
}

// Mix64 is a splitmix64-style finalizer used to derive well-distributed
// table tags and workload hash functions from raw addresses. It is a
// bijection on 64-bit values.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
