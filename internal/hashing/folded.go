package hashing

// This file implements folded path history for geometric-history predictors
// (ITTAGE): histories far wider than 64 bits, XOR-folded down to a table
// index width. Two forms are provided and pinned equal by tests and the
// ppmcheck differential oracle:
//
//   - FoldWords folds a multi-word history register from scratch — the
//     specification form, used by the naive references and by snapshot
//     restore;
//   - Folded maintains the same fold incrementally, one rotate and two
//     single-item folds per history push — the circular-shift-register
//     idiom of the TAGE/ITTAGE hardware designs, used on the hot path.
//
// The folding function is Φ(X) = XOR of successive out-bit chunks of X
// (what Fold computes for a single word). Φ is linear over XOR and commutes
// with shifts as rotations: Φ(X<<s) = RotL(Φ(X), s, out), because bit p of
// X lands at position p+s and therefore at folded position (p+s) mod out.
// Those two identities are all the incremental form needs.

// RotL rotates the out low-order bits of v left by r positions; bits shifted
// past position out-1 re-enter at position 0. r may exceed out (it is
// reduced modulo out) and out must be in [1, 64].
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func RotL(v uint64, r, out uint) uint64 {
	v = Select(v, out)
	r %= out
	if r == 0 {
		return v
	}
	return ((v << r) | (v >> (out - r))) & Mask(out)
}

// FoldWords XOR-folds the in low-order bits of a little-endian multi-word
// value into out bits: word w occupies bit positions [64w, 64w+64), and each
// bit p contributes to folded bit p mod out. For in <= 64 over a one-word
// slice this is exactly Fold. out must be in [1, 64].
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func FoldWords(words []uint64, in, out uint) uint64 {
	var folded uint64
	off := uint(0)
	for _, w := range words {
		if off >= in {
			break
		}
		chunk := in - off
		if chunk > 64 {
			chunk = 64
		}
		folded ^= RotL(Fold(w, chunk, out), off, out)
		off += 64
	}
	return folded
}

// Folded is an incrementally maintained XOR-fold of a sliding window of
// history items: the fold of the most recent `window` items of a stream,
// each contributing bitsPer bits, newest item in the lowest bit positions.
// Its Value always equals FoldWords over the equivalent packed register —
// the invariant that lets a predictor with a 128-bit geometric history pay
// O(1) per push instead of refolding the whole register per lookup.
//
// The zero value is a fold of an all-zero window, which matches a path
// history register that powers up zeroed.
type Folded struct {
	comp uint64
	bits uint // bits contributed per item
	out  uint // folded width
	rot  uint // (window*bits) % out: folded position of the outgoing item
}

// NewFolded returns a folded register over a window of the given item count,
// with bitsPer history bits per item, folded to out bits. Panics if window
// < 1, bitsPer is 0 or > 64, or out is not in [1, 64].
func NewFolded(window int, bitsPer, out uint) Folded {
	if window < 1 {
		panic("hashing: folded window must be >= 1")
	}
	if bitsPer == 0 || bitsPer > 64 {
		panic("hashing: folded bitsPer must be in [1, 64]")
	}
	if out == 0 || out > 64 {
		panic("hashing: folded output width must be in [1, 64]")
	}
	return Folded{bits: bitsPer, out: out, rot: (uint(window) * bitsPer) % out}
}

// Out returns the folded output width in bits.
func (f *Folded) Out() uint { return f.out }

// Update advances the fold by one history push: newest is the item entering
// the window and outgoing the item leaving it (the one that was `window`-1
// positions deep before the push). Items wider than bitsPer bits are
// truncated to bitsPer before folding.
//
// Derivation: the packed window register advances as
// packed' = ((packed << bits) | newest) ^ (outgoing << window*bits), and Φ
// distributes over each term as a rotation.
//
//ppm:hotpath per-record folded-history shift; runs once per bank per push
func (f *Folded) Update(newest, outgoing uint64) {
	c := RotL(f.comp, f.bits, f.out)
	c ^= Fold(newest, f.bits, f.out)
	c ^= RotL(Fold(outgoing, f.bits, f.out), f.rot, f.out)
	f.comp = c
}

// Value returns the current folded history.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func (f *Folded) Value() uint64 { return f.comp }

// Reset clears the fold to the all-zero-window state.
func (f *Folded) Reset() { f.comp = 0 }

// Set overwrites the folded value; snapshot restore paths use it to reseed
// the register from a from-scratch FoldWords over the restored history.
func (f *Folded) Set(v uint64) { f.comp = v & Mask(f.out) }
