package hashing

import (
	"math"
	"testing"
)

// splitmix is a tiny deterministic sample generator for the quality tests
// (the repository bans global math/rand; every stream here is seeded).
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	return Mix64(uint64(*s))
}

// TestMix64Avalanche checks the strict avalanche band for the repository's
// mixing hash: flipping any single input bit must flip each output bit with
// frequency in [0.25, 0.75] over a deterministic sample of inputs.
//
// This criterion applies to Mix64 and deliberately NOT to SFSXS: SFSXS is
// linear over GF(2) (a XOR of shifted folds), so a single input-bit flip
// deterministically flips a fixed output-bit pattern — at most one index
// bit — and a per-bit avalanche frequency band is mathematically
// unattainable. SFSXS trades avalanche for the property the paper needs:
// preserving Markov-chain semantics while spreading path information (see
// TestSFSXSUniformity and TestSFSXSBitInfluence).
func TestMix64Avalanche(t *testing.T) {
	const samples = 4096
	var flips [64][64]int // [input bit][output bit]

	rng := splitmix(0x5eed)
	for s := 0; s < samples; s++ {
		x := rng.next()
		y := Mix64(x)
		for j := uint(0); j < 64; j++ {
			diff := y ^ Mix64(x^(uint64(1)<<j))
			for i := uint(0); i < 64; i++ {
				if diff>>i&1 == 1 {
					flips[j][i]++
				}
			}
		}
	}

	for j := 0; j < 64; j++ {
		for i := 0; i < 64; i++ {
			freq := float64(flips[j][i]) / samples
			if freq < 0.25 || freq > 0.75 {
				t.Errorf("input bit %d -> output bit %d flip frequency %.3f outside [0.25, 0.75]", j, i, freq)
			}
		}
	}
}

// pathSample synthesizes one path-history-shaped input: `order` recent
// targets drawn from a small pool of 16-byte-aligned procedure entry
// addresses, the shape PHR.Recent hands to SFSXS in the PPM predictor.
func pathSample(rng *splitmix, pool []uint64, order int) []uint64 {
	path := make([]uint64, order)
	for i := range path {
		path[i] = pool[rng.next()%uint64(len(pool))]
	}
	return path
}

// targetPool builds n plausible code addresses: 16-byte aligned entries
// scattered through a text segment, as Table 1's call-heavy workloads
// produce.
func targetPool(n int) []uint64 {
	rng := splitmix(0x7001)
	pool := make([]uint64, n)
	for i := range pool {
		pool[i] = 0x120000000 + (rng.next()%(1<<20))<<4
	}
	return pool
}

// TestSFSXSUniformity is the chi-squared occupancy test from the satellite
// spec: indices computed over path-history-shaped inputs must spread over
// the paper's 2^10 Markov table without significant bias. The threshold is
// df + 5*sqrt(2*df), far beyond ordinary statistical fluctuation for a
// healthy hash but failed immediately by truncation-style indexing.
func TestSFSXSUniformity(t *testing.T) {
	const (
		selBits  = 10
		foldBits = 5
		order    = 10
		bins     = 1 << order
		samples  = 64 * bins
	)
	pool := targetPool(256)
	rng := splitmix(0xcafe)
	counts := make([]int, bins)
	for s := 0; s < samples; s++ {
		idx := SFSXS(pathSample(&rng, pool, order), selBits, foldBits, order)
		if idx >= bins {
			t.Fatalf("index %d out of range for order %d", idx, order)
		}
		counts[idx]++
	}

	expected := float64(samples) / bins
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	df := float64(bins - 1)
	limit := df + 5*math.Sqrt(2*df)
	if chi2 > limit {
		t.Errorf("chi-squared = %.1f over %d bins, limit %.1f: SFSXS indices are not uniform", chi2, bins, limit)
	}
}

// TestSFSXSBitInfluence checks the linear-diffusion property SFSXS actually
// promises: every selected bit of every path position reaches the index
// (flipping it flips the index), and bits outside the selected window are
// ignored. This is the right sensitivity notion for a GF(2)-linear mapping,
// complementing the avalanche test Mix64 passes.
func TestSFSXSBitInfluence(t *testing.T) {
	const (
		selBits  = 10
		foldBits = 5
		order    = 10
	)
	pool := targetPool(64)
	rng := splitmix(0xb17)
	base := pathSample(&rng, pool, order)
	idx := SFSXS(base, selBits, foldBits, order)

	flip := func(pos int, bit uint) uint64 {
		mod := make([]uint64, order)
		copy(mod, base)
		mod[pos] ^= uint64(1) << bit
		return SFSXS(mod, selBits, foldBits, order)
	}

	for pos := 0; pos < order; pos++ {
		influenced := false
		// Bits 2..2+selBits-1 are the selected window (targets are >>2
		// aligned away first).
		for bit := uint(2); bit < 2+selBits; bit++ {
			if flip(pos, bit) != idx {
				influenced = true
				break
			}
		}
		if !influenced {
			t.Errorf("path position %d: no selected bit influences the index", pos)
		}
		// A bit far above the selected window must be invisible.
		if got := flip(pos, 2+selBits+7); got != idx {
			t.Errorf("path position %d: bit outside the selected window changed the index (%d != %d)", pos, got, idx)
		}
	}

	// Linearity documented by construction: the index delta from flipping a
	// bit is independent of the base path.
	other := pathSample(&rng, pool, order)
	otherIdx := SFSXS(other, selBits, foldBits, order)
	mod := make([]uint64, order)
	copy(mod, other)
	mod[3] ^= 1 << 4
	deltaOther := otherIdx ^ SFSXS(mod, selBits, foldBits, order)
	deltaBase := idx ^ flip(3, 4)
	if deltaBase != deltaOther {
		t.Errorf("SFSXS stopped being linear: deltas %#x vs %#x", deltaBase, deltaOther)
	}
}
