package hashing

import (
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		n    uint
		want uint64
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{10, 0x3ff},
		{63, 0x7fffffffffffffff},
		{64, ^uint64(0)},
		{80, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.n); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestSelect(t *testing.T) {
	if got := Select(0xdeadbeef, 8); got != 0xef {
		t.Errorf("Select(0xdeadbeef, 8) = %#x, want 0xef", got)
	}
	if got := Select(0xdeadbeef, 64); got != 0xdeadbeef {
		t.Errorf("Select full width = %#x", got)
	}
}

func TestFold(t *testing.T) {
	// Folding 10 bits into 5: low chunk XOR high chunk.
	v := uint64(0b10110_01101)
	want := uint64(0b10110 ^ 0b01101)
	if got := Fold(v, 10, 5); got != want {
		t.Errorf("Fold = %#b, want %#b", got, want)
	}
	// out >= in returns the masked value unchanged.
	if got := Fold(0x3ff, 10, 10); got != 0x3ff {
		t.Errorf("Fold identity = %#x", got)
	}
	if got := Fold(0xffff, 8, 16); got != 0xff {
		t.Errorf("Fold wide-out = %#x, want 0xff", got)
	}
	// out == 0 is defined as 0.
	if got := Fold(0xff, 8, 0); got != 0 {
		t.Errorf("Fold(out=0) = %#x", got)
	}
}

func TestFoldRangeProperty(t *testing.T) {
	f := func(v uint64, inRaw, outRaw uint8) bool {
		in := uint(inRaw%63) + 1
		out := uint(outRaw%31) + 1
		return Fold(v, in, out) <= Mask(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFoldPreservesInformationParity(t *testing.T) {
	// XOR-folding preserves the overall parity of the selected bits, a
	// simple invariant distinguishing it from truncation.
	f := func(v uint64) bool {
		in, out := uint(12), uint(4)
		folded := Fold(v, in, out)
		return parity(Select(v, in)) == parity(folded)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func parity(v uint64) uint {
	var p uint
	for v != 0 {
		p ^= uint(v & 1)
		v >>= 1
	}
	return p
}

func TestGShare(t *testing.T) {
	if got := GShare(0, 0x1000, 10); got != (0x1000>>2)&0x3ff {
		t.Errorf("GShare zero history = %#x", got)
	}
	// XOR is self-inverse: same history twice cancels.
	h := uint64(0x2a5)
	pc := uint64(0x1234560)
	if GShare(h, pc, 10)^h != GShare(0, pc, 10) {
		t.Error("GShare does not XOR history into index")
	}
}

func TestSFSXDistinctShifts(t *testing.T) {
	// The same target at different path positions must hash differently.
	a := SFSX([]uint64{0x40, 0}, 10, 5)
	b := SFSX([]uint64{0, 0x40}, 10, 5)
	if a == b {
		t.Errorf("SFSX position-insensitive: %#x == %#x", a, b)
	}
}

func TestSFSXLongPathContributes(t *testing.T) {
	// Regression: contributions from path entries at index >= 64 used to be
	// shifted out of the 64-bit accumulator entirely (<<i with i >= 64 is 0
	// in Go), so arbitrarily long paths silently degenerated to their first
	// 64 entries. The rotation-based accumulator keeps every entry live:
	// changing a deep entry must be able to change the hash.
	ts := make([]uint64, 70)
	for i := range ts {
		ts[i] = Mix64(uint64(i)) &^ 3
	}
	base := SFSX(ts, 10, 5)
	ts[69] ^= 1 << 4 // flip a selected bit of the deepest entry
	if SFSX(ts, 10, 5) == base {
		t.Error("path entry 69 does not reach the SFSX hash — long-path contributions lost")
	}
	// And the wrap must not perturb short paths: positions below 64 behave
	// exactly as the plain shift (spot-checked against the wide definition).
	short := []uint64{0x40, 0}
	if SFSX(short, 10, 5) != Fold(0x40>>2, 10, 5)<<0^Fold(0, 10, 5)<<1 {
		t.Error("short-path SFSX changed: rotation must equal shift below bit 64")
	}
}

func TestSFSXSRange(t *testing.T) {
	f := func(t0, t1, t2 uint64, orderRaw uint8) bool {
		order := uint(orderRaw%10) + 1
		idx := SFSXS([]uint64{t0, t1, t2}, 10, 5, order)
		return idx <= Mask(order)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSFSXSOrderSemantics(t *testing.T) {
	// The order-j index must depend only on the j most recent targets:
	// changing older targets must not change it.
	base := []uint64{0x1111c, 0x2222c, 0x33330, 0x44444}
	changed := []uint64{0x1111c, 0x2222c, 0x77770, 0x99998}
	for order := uint(1); order <= 2; order++ {
		if SFSXS(base, 10, 5, order) != SFSXS(changed, 10, 5, order) {
			t.Errorf("order-%d index depends on targets beyond its order", order)
		}
	}
	// And it must depend on the recent ones.
	if SFSXS(base, 10, 5, 1) == SFSXS([]uint64{0x5555c}, 10, 5, 1) &&
		SFSXS(base, 10, 5, 2) == SFSXS([]uint64{0x5555c, 0x2222c}, 10, 5, 2) {
		t.Error("suspicious: order indexes insensitive to recent targets")
	}
}

func TestSFSXSRecentTargetDominates(t *testing.T) {
	// Flipping a selected bit of the most recent target must change the
	// order-10 index for most values — this is the regression test for
	// the recency-weighting of the shift direction.
	changes := 0
	const trials = 256
	for i := 0; i < trials; i++ {
		ts := make([]uint64, 10)
		for j := range ts {
			ts[j] = Mix64(uint64(i*10+j)) &^ 3
		}
		a := SFSXS(ts, 10, 5, 10)
		ts[0] ^= 1 << 6 // flip a bit inside the 10-bit select
		if SFSXS(ts, 10, 5, 10) != a {
			continue
		}
		changes++
	}
	if changes > trials/4 {
		t.Errorf("most-recent target barely influences order-10 index (%d/%d unchanged)", changes, trials)
	}
}

func TestSFSXSWarmup(t *testing.T) {
	// With fewer targets than the order, the hash covers what exists.
	got := SFSXS([]uint64{0xabc0}, 10, 5, 10)
	if got > Mask(10) {
		t.Errorf("warm-up index out of range: %#x", got)
	}
	if SFSXS(nil, 10, 5, 10) != 0 {
		t.Error("empty history should hash to 0")
	}
}

func TestSFSXSLowDiffersFromHigh(t *testing.T) {
	ts := []uint64{0x12340, 0x56784, 0x9abc8, 0xdef0c, 0x13570, 0x24684, 0xaceb8, 0xbdf0c, 0x11110, 0x22224}
	same := 0
	for order := uint(2); order <= 10; order++ {
		if SFSXS(ts, 10, 5, order) == SFSXSLow(ts, 10, 5, order) {
			same++
		}
	}
	if same == 9 {
		t.Error("high and low select are identical across all orders")
	}
}

func TestSFSXSZeroOrder(t *testing.T) {
	if SFSXS([]uint64{1, 2}, 10, 5, 0) != 0 || SFSXSLow([]uint64{1, 2}, 10, 5, 0) != 0 {
		t.Error("order-0 index must be 0")
	}
}

func TestReverseInterleaveRange(t *testing.T) {
	f := func(hist, pc uint64, nRaw uint8) bool {
		n := uint(nRaw%16) + 1
		return ReverseInterleave(hist, 24, pc, n) <= Mask(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseInterleaveUsesWholeRegister(t *testing.T) {
	// Changing any byte of a 24-bit register must be able to change the
	// index (the register is folded, not truncated).
	pc := uint64(0x120004c0)
	base := ReverseInterleave(0x000001, 24, pc, 10)
	if ReverseInterleave(0x800001, 24, pc, 10) == base &&
		ReverseInterleave(0x008001, 24, pc, 10) == base {
		t.Error("high history bits never reach the index — register truncated?")
	}
}

func TestReverseInterleaveMixesPC(t *testing.T) {
	h := uint64(0xabcdef)
	if ReverseInterleave(h, 24, 0x12000000, 10) == ReverseInterleave(h, 24, 0x12000004, 10) &&
		ReverseInterleave(h, 24, 0x12000000, 10) == ReverseInterleave(h, 24, 0x12000008, 10) {
		t.Error("PC bits never reach the index")
	}
}

func TestMix64Bijective(t *testing.T) {
	// splitmix64's finalizer is a bijection; spot-check injectivity over
	// a large sample.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix64 collision: %d and %d -> %#x", prev, i, h)
		}
		seen[h] = i
	}
}

// TestSFSXSAllMatchesPerOrder pins the incremental all-orders pass to the
// per-order reference calls, across both select orientations, warm-up path
// lengths shorter than the order, and a spread of fold widths.
func TestSFSXSAllMatchesPerOrder(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 { rng = Mix64(rng); return rng }
	for _, maxOrder := range []uint{1, 3, 10, 20} {
		for _, selBits := range []uint{4, 10, 16} {
			for _, foldBits := range []uint{1, 5, uint(selBits)} {
				if foldBits > selBits {
					continue
				}
				for pathLen := 0; pathLen <= int(maxOrder)+2; pathLen++ {
					targets := make([]uint64, pathLen)
					for i := range targets {
						targets[i] = next()
					}
					dst := make([]uint64, maxOrder+1)
					for _, low := range []bool{false, true} {
						SFSXSAll(dst, targets, selBits, foldBits, maxOrder, low)
						for o := uint(1); o <= maxOrder; o++ {
							want := SFSXS(targets, selBits, foldBits, o)
							if low {
								want = SFSXSLow(targets, selBits, foldBits, o)
							}
							if dst[o] != want {
								t.Fatalf("SFSXSAll(sel=%d fold=%d max=%d len=%d low=%t)[%d] = %#x, per-order %#x",
									selBits, foldBits, maxOrder, pathLen, low, o, dst[o], want)
							}
						}
					}
				}
			}
		}
	}
}
