package hashing

import "testing"

// refFoldWindow is a bit-by-bit reference for the fold of a sliding window:
// item j (0 = newest) occupies bit positions [j*bitsPer, (j+1)*bitsPer), and
// each set bit p contributes to folded bit p mod out.
func refFoldWindow(items []uint64, bitsPer, out uint) uint64 {
	var folded uint64
	for j, it := range items {
		for b := uint(0); b < bitsPer && b < 64; b++ {
			if it&(uint64(1)<<b) != 0 {
				folded ^= uint64(1) << ((uint(j)*bitsPer + b) % out)
			}
		}
	}
	return folded
}

// packWindow builds the little-endian multi-word packed register for a
// window (newest item in the low bits).
func packWindow(items []uint64, bitsPer uint) []uint64 {
	words := make([]uint64, (uint(len(items))*bitsPer+63)/64+1)
	for j, it := range items {
		it &= Mask(bitsPer)
		lo := uint(j) * bitsPer
		words[lo/64] |= it << (lo % 64)
		if lo%64+bitsPer > 64 {
			words[lo/64+1] |= it >> (64 - lo%64)
		}
	}
	return words
}

func TestRotL(t *testing.T) {
	if got := RotL(0b1011, 1, 4); got != 0b0111 {
		t.Fatalf("RotL(1011,1,4) = %04b", got)
	}
	if got := RotL(0b1011, 5, 4); got != 0b0111 {
		t.Fatalf("RotL reduces r mod out: got %04b", got)
	}
	if got := RotL(0xFFFF_FFFF_FFFF_FFFF, 13, 64); got != ^uint64(0) {
		t.Fatalf("RotL full-width all-ones = %x", got)
	}
	if got := RotL(1, 0, 7); got != 1 {
		t.Fatalf("RotL r=0 identity: got %x", got)
	}
}

func TestFoldWordsMatchesFoldSingleWord(t *testing.T) {
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 200; i++ {
		rng = Mix64(rng + uint64(i))
		for _, in := range []uint{1, 7, 13, 32, 64} {
			for _, out := range []uint{1, 5, 8, 24, 64} {
				want := Fold(rng, in, out)
				got := FoldWords([]uint64{rng}, in, out)
				if got != want {
					t.Fatalf("FoldWords(in=%d,out=%d) = %x, Fold = %x", in, out, got, want)
				}
			}
		}
	}
}

func TestFoldWordsMatchesBitReference(t *testing.T) {
	rng := uint64(1)
	for trial := 0; trial < 50; trial++ {
		words := make([]uint64, 3)
		for i := range words {
			rng = Mix64(rng + uint64(trial))
			words[i] = rng
		}
		for _, in := range []uint{1, 63, 64, 65, 100, 128, 130, 192} {
			for _, out := range []uint{1, 8, 9, 10, 24, 64} {
				var want uint64
				for p := uint(0); p < in; p++ {
					if words[p/64]&(uint64(1)<<(p%64)) != 0 {
						want ^= uint64(1) << (p % out)
					}
				}
				if got := FoldWords(words, in, out); got != want {
					t.Fatalf("FoldWords(in=%d,out=%d) = %x, want %x", in, out, got, want)
				}
			}
		}
	}
}

// TestFoldedMatchesFromScratch is the load-bearing identity: the incremental
// register equals the from-scratch fold of its window after every push,
// including during zero-filled warm-up — for windows whose packed width is
// well past 64 bits.
func TestFoldedMatchesFromScratch(t *testing.T) {
	cases := []struct {
		window  int
		bitsPer uint
		out     uint
	}{
		{4, 2, 8},    // packed width 8 = out (identity fold)
		{10, 2, 8},   // 20 bits
		{25, 2, 10},  // 50 bits
		{64, 2, 8},   // 128 bits: the ITTAGE longest bank
		{64, 2, 10},  // 128 bits folded to tag width
		{64, 2, 9},   // 128 bits folded to tag-1 width
		{37, 3, 11},  // non-power-of-two everything
		{5, 13, 7},   // item wider than out
		{100, 1, 13}, // long single-bit history
	}
	for _, c := range cases {
		f := NewFolded(c.window, c.bitsPer, c.out)
		window := make([]uint64, c.window) // newest first, zero warm-up
		rng := uint64(0xDEADBEEF)
		for push := 0; push < 500; push++ {
			rng = Mix64(rng)
			item := rng & Mask(c.bitsPer)
			outgoing := window[c.window-1]
			copy(window[1:], window[:c.window-1])
			window[0] = item
			f.Update(item, outgoing)
			want := refFoldWindow(window, c.bitsPer, c.out)
			if got := f.Value(); got != want {
				t.Fatalf("window=%d bitsPer=%d out=%d push %d: incremental %x, from-scratch %x",
					c.window, c.bitsPer, c.out, push, got, want)
			}
			wordsWant := FoldWords(packWindow(window, c.bitsPer), uint(c.window)*c.bitsPer, c.out)
			if wordsWant != want {
				t.Fatalf("FoldWords disagrees with bit reference: %x vs %x", wordsWant, want)
			}
		}
	}
}

func TestFoldedUpdateTruncatesWideItems(t *testing.T) {
	f := NewFolded(4, 2, 8)
	g := NewFolded(4, 2, 8)
	f.Update(0xFFFF_FFF3, 0xFFF1)
	g.Update(0x3, 0x1)
	if f.Value() != g.Value() {
		t.Fatalf("items not truncated to bitsPer: %x vs %x", f.Value(), g.Value())
	}
}

func TestFoldedSetReset(t *testing.T) {
	f := NewFolded(8, 2, 6)
	f.Update(3, 0)
	if f.Value() == 0 {
		t.Fatal("update had no effect")
	}
	f.Reset()
	if f.Value() != 0 {
		t.Fatal("reset did not clear")
	}
	f.Set(0xFFFF)
	if f.Value() != 0x3F {
		t.Fatalf("Set must mask to out bits: %x", f.Value())
	}
	if f.Out() != 6 {
		t.Fatalf("Out = %d", f.Out())
	}
}

func TestNewFoldedPanics(t *testing.T) {
	for _, c := range []struct {
		window  int
		bitsPer uint
		out     uint
	}{{0, 2, 8}, {4, 0, 8}, {4, 65, 8}, {4, 2, 0}, {4, 2, 65}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewFolded(%d,%d,%d) did not panic", c.window, c.bitsPer, c.out)
				}
			}()
			NewFolded(c.window, c.bitsPer, c.out)
		}()
	}
}
