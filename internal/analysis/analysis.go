// Package analysis profiles the indirect branches of a trace in the terms
// the paper uses to classify them: a branch is *monomorphic* when it mostly
// accesses one target, and has *low entropy* when its target changes
// infrequently (Section 2, footnotes 2-3). The profiler computes, per
// static branch, its dynamic frequency, target set size, target-distribution
// entropy, dominant-target share and target transition rate — and aggregates
// the population classification for a whole run, which is how the workload
// models in internal/bench were validated against the behaviours the paper
// attributes to each benchmark.
package analysis

import (
	"math"
	"sort"

	"repro/internal/trace"
)

// BranchProfile is the per-static-branch summary.
type BranchProfile struct {
	// PC is the branch address.
	PC uint64
	// Class is the branch's class (of its first dynamic occurrence).
	Class trace.Class
	// Executions is the dynamic execution count.
	Executions uint64
	// Targets is the number of distinct targets observed.
	Targets int
	// DominantShare is the fraction of executions going to the most
	// frequent target (1.0 = strictly monomorphic).
	DominantShare float64
	// Entropy is the Shannon entropy of the target distribution, in bits.
	Entropy float64
	// TransitionRate is the fraction of executions whose target differed
	// from the branch's previous target — the "target changes
	// infrequently" metric behind the low-entropy class.
	TransitionRate float64
}

// Monomorphic reports the paper's footnote-2 classification: the branch
// mostly accesses one target (dominant share >= 0.9).
func (b BranchProfile) Monomorphic() bool { return b.DominantShare >= 0.9 }

// LowEntropy reports the paper's footnote-3 classification: the target
// changes infrequently (transition rate <= 0.1) but the branch is not
// simply monomorphic.
func (b BranchProfile) LowEntropy() bool {
	return !b.Monomorphic() && b.TransitionRate <= 0.1
}

// Polymorphic reports branches that are neither monomorphic nor low
// entropy — the population that needs a path-based predictor.
func (b BranchProfile) Polymorphic() bool { return !b.Monomorphic() && !b.LowEntropy() }

// Profiler accumulates per-branch statistics from a record stream.
type Profiler struct {
	branches map[uint64]*acc
}

type acc struct {
	class       trace.Class
	execs       uint64
	counts      map[uint64]uint64
	prev        uint64
	hasPrev     bool
	transitions uint64
}

// NewProfiler creates an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{branches: make(map[uint64]*acc)}
}

// Observe feeds one committed branch record; only multi-target indirect
// branches (the paper's population of interest) are profiled.
func (p *Profiler) Observe(r trace.Record) {
	if !r.MTIndirect() {
		return
	}
	a := p.branches[r.PC]
	if a == nil {
		a = &acc{class: r.Class, counts: make(map[uint64]uint64)}
		p.branches[r.PC] = a
	}
	a.execs++
	a.counts[r.Target]++
	if a.hasPrev && a.prev != r.Target {
		a.transitions++
	}
	a.prev = r.Target
	a.hasPrev = true
}

// Profiles returns the per-branch summaries, most-executed first.
func (p *Profiler) Profiles() []BranchProfile {
	out := make([]BranchProfile, 0, len(p.branches))
	for pc, a := range p.branches {
		bp := BranchProfile{
			PC:         pc,
			Class:      a.class,
			Executions: a.execs,
			Targets:    len(a.counts),
		}
		var domCount uint64
		for _, c := range a.counts {
			if c > domCount {
				domCount = c
			}
			f := float64(c) / float64(a.execs)
			bp.Entropy -= f * math.Log2(f)
		}
		bp.DominantShare = float64(domCount) / float64(a.execs)
		if a.execs > 1 {
			bp.TransitionRate = float64(a.transitions) / float64(a.execs-1)
		}
		out = append(out, bp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Executions != out[j].Executions {
			return out[i].Executions > out[j].Executions
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Population summarizes a run's dynamic branch-class mix.
type Population struct {
	// Static branch counts per class.
	MonomorphicStatic, LowEntropyStatic, PolymorphicStatic int
	// Dynamic execution shares per class (fractions of MT executions).
	MonomorphicShare, LowEntropyShare, PolymorphicShare float64
	// MeanEntropy is the execution-weighted mean target entropy in bits.
	MeanEntropy float64
}

// Classify aggregates the profiler's branches into the paper's three
// populations.
func (p *Profiler) Classify() Population {
	var pop Population
	var total, mono, low, poly uint64
	var entropySum float64
	for _, b := range p.Profiles() {
		total += b.Executions
		entropySum += b.Entropy * float64(b.Executions)
		switch {
		case b.Monomorphic():
			pop.MonomorphicStatic++
			mono += b.Executions
		case b.LowEntropy():
			pop.LowEntropyStatic++
			low += b.Executions
		default:
			pop.PolymorphicStatic++
			poly += b.Executions
		}
	}
	if total > 0 {
		pop.MonomorphicShare = float64(mono) / float64(total)
		pop.LowEntropyShare = float64(low) / float64(total)
		pop.PolymorphicShare = float64(poly) / float64(total)
		pop.MeanEntropy = entropySum / float64(total)
	}
	return pop
}
