package analysis

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/trace"
)

func mt(pc, target uint64) trace.Record {
	return trace.Record{PC: pc, Target: target, Class: trace.IndirectJmp, Taken: true, MT: true}
}

func TestMonomorphicClassification(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 95; i++ {
		p.Observe(mt(0x100, 0xA0))
	}
	for i := 0; i < 5; i++ {
		p.Observe(mt(0x100, 0xB0))
	}
	profs := p.Profiles()
	if len(profs) != 1 {
		t.Fatalf("%d profiles", len(profs))
	}
	b := profs[0]
	if !b.Monomorphic() {
		t.Errorf("dominant share %.2f not classified monomorphic", b.DominantShare)
	}
	if b.Targets != 2 || b.Executions != 100 {
		t.Errorf("targets=%d execs=%d", b.Targets, b.Executions)
	}
	if b.DominantShare != 0.95 {
		t.Errorf("dominant share = %v", b.DominantShare)
	}
}

func TestLowEntropyClassification(t *testing.T) {
	p := NewProfiler()
	// Phased: 40 on A, 40 on B, 40 on C — each target heavy, but only 2
	// transitions in 120 executions.
	for _, tgt := range []uint64{0xA0, 0xB0, 0xC0} {
		for i := 0; i < 40; i++ {
			p.Observe(mt(0x100, tgt))
		}
	}
	b := p.Profiles()[0]
	if b.Monomorphic() {
		t.Error("三-way phased branch classified monomorphic")
	}
	if !b.LowEntropy() {
		t.Errorf("transition rate %.3f not classified low entropy", b.TransitionRate)
	}
}

func TestPolymorphicClassification(t *testing.T) {
	p := NewProfiler()
	targets := []uint64{0xA0, 0xB0, 0xC0, 0xD0}
	for i := 0; i < 200; i++ {
		p.Observe(mt(0x100, targets[i%4]))
	}
	b := p.Profiles()[0]
	if !b.Polymorphic() {
		t.Errorf("cycling branch not polymorphic: dom=%.2f trans=%.2f", b.DominantShare, b.TransitionRate)
	}
	// Uniform 4-target distribution: entropy = 2 bits.
	if math.Abs(b.Entropy-2) > 1e-9 {
		t.Errorf("entropy = %v, want 2", b.Entropy)
	}
	if math.Abs(b.TransitionRate-1) > 1e-9 {
		t.Errorf("transition rate = %v, want 1", b.TransitionRate)
	}
}

func TestIgnoresNonMT(t *testing.T) {
	p := NewProfiler()
	p.Observe(trace.Record{PC: 0x10, Target: 0x20, Class: trace.CondDirect, Taken: true})
	p.Observe(trace.Record{PC: 0x10, Target: 0x20, Class: trace.IndirectJsr, Taken: true, MT: false})
	p.Observe(trace.Record{PC: 0x10, Target: 0x20, Class: trace.Return, Taken: true, MT: true})
	if len(p.Profiles()) != 0 {
		t.Error("profiled non-MT records")
	}
}

func TestProfilesSorted(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 10; i++ {
		p.Observe(mt(0x200, 0xA0))
	}
	for i := 0; i < 50; i++ {
		p.Observe(mt(0x100, 0xB0))
	}
	profs := p.Profiles()
	if profs[0].PC != 0x100 || profs[1].PC != 0x200 {
		t.Error("profiles not sorted by execution count")
	}
}

// TestSuitePopulationsMatchModels validates the workload models against the
// classifications the paper attributes to each benchmark: eqn/edg are
// monomorphic-heavy, eon/ixx are polymorphic-dominated.
func TestSuitePopulationsMatchModels(t *testing.T) {
	classify := func(name string) Population {
		cfg, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("missing run %s", name)
		}
		cfg.Events = 8000
		p := NewProfiler()
		cfg.Generate(p.Observe)
		return p.Classify()
	}
	eqn := classify("eqn")
	eon := classify("eon")
	if eqn.MonomorphicShare < 0.3 {
		t.Errorf("eqn monomorphic share = %.2f, expected heavy monomorphic mass", eqn.MonomorphicShare)
	}
	// eon's virtual calls are more polymorphic than eqn's box methods —
	// relative, because a deterministic orbit visits each site at few
	// positions, capping per-branch diversity.
	if eon.PolymorphicShare <= eqn.PolymorphicShare {
		t.Errorf("eon polymorphic share %.2f not above eqn's %.2f", eon.PolymorphicShare, eqn.PolymorphicShare)
	}
	if eon.MeanEntropy <= eqn.MeanEntropy {
		t.Errorf("eon mean entropy %.2f not above eqn's %.2f", eon.MeanEntropy, eqn.MeanEntropy)
	}
	if pop := classify("photon"); pop.MeanEntropy <= 0 {
		t.Error("photon mean entropy should be positive")
	}
}
