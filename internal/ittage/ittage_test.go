package ittage

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/state"
	"repro/internal/trace"
)

func mt(pc, target uint64) trace.Record {
	return trace.Record{PC: pc, Target: target, Class: trace.IndirectJmp, Taken: true, MT: true}
}

// step runs one record through the engine protocol: predict+update for
// MT-indirect records, then observe. Returns whether the prediction was
// attempted and correct.
func step(p *ITTAGE, r trace.Record) (predicted, correct bool) {
	if r.MTIndirect() {
		target, ok := p.Predict(r.PC)
		predicted = ok
		correct = ok && target == r.Target
		p.Update(r.PC, r.Target)
	}
	p.Observe(r)
	return
}

func TestPaperBudget(t *testing.T) {
	p := Paper()
	if got := p.Entries(); got != 2048 {
		t.Fatalf("Entries = %d, want 2048 (the paper's predictor budget)", got)
	}
	lens := p.HistLens()
	want := []int{4, 10, 25, 64}
	if len(lens) != len(want) {
		t.Fatalf("HistLens = %v", lens)
	}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("HistLens = %v, want %v", lens, want)
		}
	}
	if p.Bits() <= 0 {
		t.Fatal("Bits must be positive")
	}
	// The longest window packs 64 items x 2 bits = 128 history bits: the
	// geometry that used to be silently truncated at 64.
	if got := p.hist.PackedBits(); got != 128 {
		t.Fatalf("history register width = %d, want 128", got)
	}
}

func TestLearnsMonomorphicBranch(t *testing.T) {
	p := Paper()
	hits := 0
	for i := 0; i < 50; i++ {
		_, c := step(p, mt(0x4000, 0x9000))
		if c {
			hits++
		}
	}
	if hits < 48 {
		t.Fatalf("monomorphic branch predicted %d/50", hits)
	}
}

// TestDeepHistoryCorrelationIsLive is the end-to-end regression for the PHR
// 64-bit clamp: a branch whose target is determined solely by a marker 41
// history items deep — packed bits 82..83, reachable only through the
// multi-word register — must be predictable by the 64-item bank, and must
// NOT be predictable by an otherwise identical predictor whose longest
// window stops at 32 items.
func TestDeepHistoryCorrelationIsLive(t *testing.T) {
	run := func(maxHist int) (correct, total int) {
		p := New(Config{
			Name:        "deep",
			BaseEntries: 1024,
			Banks:       4,
			BankEntries: 256,
			TagBits:     10,
			MinHist:     4,
			MaxHist:     maxHist,
			BitsPerItem: 2,
			ResetPeriod: 2048,
			Stream:      Paper().hist.Stream(),
		})
		const rounds = 400
		for round := 0; round < rounds; round++ {
			marker := uint64(0x100 + 4*uint64(round%2)) // alternates two targets
			step(p, mt(0x8000, marker))
			for f := 0; f < 40; f++ { // 40 fixed fillers push the marker 41 deep
				step(p, mt(0xA000+uint64(f)*4, 0xC000+uint64(f)*4))
			}
			// The observed branch: its target is the marker's low alternation.
			_, c := step(p, mt(0x8800, 0xE000+4*uint64(round%2)))
			if round >= rounds/2 {
				total++
				if c {
					correct++
				}
			}
		}
		return
	}
	wideCorrect, total := run(64)
	narrowCorrect, _ := run(32)
	if wideCorrect*10 < total*8 {
		t.Fatalf("64-item bank predicted %d/%d; deep history is not reaching the index", wideCorrect, total)
	}
	if narrowCorrect*10 > total*7 {
		t.Fatalf("32-item control predicted %d/%d; the correlation leaks through a short window, test is not probing >64 bits", narrowCorrect, total)
	}
}

func TestSnapshotRoundTripAndContinuation(t *testing.T) {
	a := Paper()
	for i := 0; i < 3000; i++ {
		pc := 0x4000 + uint64(i%17)*4
		tgt := 0x9000 + uint64((i*i)%5)*4
		step(a, mt(pc, tgt))
	}
	snap := append([]byte(nil), state.SaveBytes(a)...)
	b := Paper()
	if err := state.LoadBytes(b, snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := state.SaveBytes(b); !bytes.Equal(got, snap) {
		t.Fatal("re-snapshot is not byte-identical")
	}
	// Continuation equality: the restored predictor must behave exactly
	// like the original from here on.
	for i := 0; i < 2000; i++ {
		pc := 0x4000 + uint64(i%23)*4
		tgt := 0x9000 + uint64((i*7)%6)*4
		ta, oka := a.Predict(pc)
		tb, okb := b.Predict(pc)
		if ta != tb || oka != okb {
			t.Fatalf("step %d: predictions diverged after restore: (%#x,%v) vs (%#x,%v)", i, ta, oka, tb, okb)
		}
		a.Update(pc, tgt)
		b.Update(pc, tgt)
		a.Observe(mt(pc, tgt))
		b.Observe(mt(pc, tgt))
	}
	if ga, gb := state.SaveBytes(a), state.SaveBytes(b); !bytes.Equal(ga, gb) {
		t.Fatal("continued snapshots diverged")
	}
}

func TestSnapshotMismatch(t *testing.T) {
	a := Paper()
	snap := append([]byte(nil), state.SaveBytes(a)...)
	other := New(Config{
		Name: "small", BaseEntries: 512, Banks: 4, BankEntries: 256,
		TagBits: 10, MinHist: 4, MaxHist: 64, BitsPerItem: 2,
		ResetPeriod: 2048, Stream: Paper().hist.Stream(),
	})
	if err := state.LoadBytes(other, snap); !errors.Is(err, state.ErrMismatch) {
		t.Fatalf("mismatched geometry: got %v, want ErrMismatch", err)
	}
}

func TestResetRestoresPowerUp(t *testing.T) {
	p := Paper()
	virgin := append([]byte(nil), state.SaveBytes(Paper())...)
	for i := 0; i < 500; i++ {
		step(p, mt(0x4000+uint64(i%7)*4, 0x9000+uint64(i%3)*4))
	}
	p.Reset()
	if got := state.SaveBytes(p); !bytes.Equal(got, virgin) {
		t.Fatal("Reset does not restore the power-up snapshot")
	}
}

func TestUseAltOnNewlyAllocated(t *testing.T) {
	p := Paper()
	// Train a stable base prediction, then force churn that allocates new
	// tagged entries; the use-alt counter must stay within range and the
	// predictor must keep functioning.
	for i := 0; i < 2000; i++ {
		pc := 0x4000 + uint64(i%31)*4
		step(p, mt(pc, 0x9000+uint64(i%13)*4))
	}
	uaona, _ := p.UStats()
	if uaona > uaonaMax {
		t.Fatalf("use-alt counter %d out of range", uaona)
	}
}

func TestGracefulResetRuns(t *testing.T) {
	p := New(Config{
		Name: "r", BaseEntries: 64, Banks: 2, BankEntries: 32,
		TagBits: 8, MinHist: 2, MaxHist: 8, BitsPerItem: 2,
		ResetPeriod: 64, Stream: Paper().hist.Stream(),
	})
	for i := 0; i < 1000; i++ {
		step(p, mt(0x4000+uint64(i%41)*4, 0x9000+uint64(i%17)*4))
	}
	if _, resets := p.UStats(); resets == 0 {
		t.Fatal("graceful reset never ran")
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{
		Name: "x", BaseEntries: 64, Banks: 2, BankEntries: 32,
		TagBits: 8, MinHist: 2, MaxHist: 8, BitsPerItem: 2,
	}
	bad := []func(Config) Config{
		func(c Config) Config { c.BaseEntries = 48; return c },
		func(c Config) Config { c.BankEntries = 0; return c },
		func(c Config) Config { c.Banks = 1; return c },
		func(c Config) Config { c.TagBits = 1; return c },
		func(c Config) Config { c.MinHist = 0; return c },
		func(c Config) Config { c.MaxHist = 2; return c },
		func(c Config) Config { c.BitsPerItem = 0; return c },
	}
	for i, mut := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad config %d did not panic", i)
				}
			}()
			New(mut(base))
		}()
	}
}
