// Package ittage implements the ITTAGE indirect target predictor (Seznec &
// Michaud, "A case for (partially) TAgged GEometric history length branch
// prediction"), the direct descendant of the paper's PPM predictor: a
// tagless base table backed by N partially tagged banks indexed with
// geometrically increasing path-history lengths. The longest matching bank
// provides the prediction; the next longest (or the base table) provides
// the alternate. Per-entry usefulness counters with periodic graceful
// reset manage allocation, and a use-alt-on-newly-allocated counter learns
// whether freshly allocated entries should be trusted over the alternate.
//
// Unlike the paper's Markov stack, whose orders top out at a handful of
// targets, the geometric lengths span windows whose packed history exceeds
// 64 bits — the configuration that exposed the PHR's silent clamp. Each
// bank folds its window incrementally (hashing.Folded, one rotate and two
// single-item folds per push), and the wide multi-word register in
// history.PHR is the from-scratch specification the folds are checked
// against, both in unit tests and by the ppmcheck differential oracle.
package ittage

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/history"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
)

const (
	ctrMax   = 3 // 2-bit per-entry target confidence
	uMax     = 3 // 2-bit per-entry usefulness
	uaonaMax = 15
	// uaonaInit starts the use-alt counter at its decision threshold:
	// newly allocated entries defer to the alternate prediction until the
	// counter learns they tend to be right.
	uaonaInit = 8
)

// Config parameterizes an ITTAGE predictor.
type Config struct {
	// Name labels the predictor.
	Name string
	// BaseEntries sizes the tagless direct-mapped base table (power of two).
	BaseEntries int
	// Banks is the number of tagged banks; BankEntries the entries in each
	// (power of two).
	Banks       int
	BankEntries int
	// TagBits is the partial tag width stored per tagged entry (>= 2: the
	// second folded tag register is TagBits-1 wide).
	TagBits uint
	// MinHist and MaxHist bound the geometric history lengths, in recorded
	// items: bank i uses round(MinHist * alpha^i) items with
	// alpha = (MaxHist/MinHist)^(1/(Banks-1)).
	MinHist, MaxHist int
	// BitsPerItem is how many low-order bits of each recorded target enter
	// the history (the paper's PHR bitsPer).
	BitsPerItem uint
	// ResetPeriod is the graceful-reset cadence: every ResetPeriod updates,
	// every usefulness counter is halved. 0 disables the reset.
	ResetPeriod uint64
	// Stream selects which records advance the history.
	Stream history.Stream
}

func (c Config) validate() error {
	if c.BaseEntries <= 0 || c.BaseEntries&(c.BaseEntries-1) != 0 {
		return fmt.Errorf("ittage: base entries must be a positive power of two, got %d", c.BaseEntries)
	}
	if c.BankEntries <= 0 || c.BankEntries&(c.BankEntries-1) != 0 {
		return fmt.Errorf("ittage: bank entries must be a positive power of two, got %d", c.BankEntries)
	}
	if c.Banks < 2 {
		return fmt.Errorf("ittage: need at least 2 tagged banks, got %d", c.Banks)
	}
	if c.TagBits < 2 || c.TagBits > 32 {
		return fmt.Errorf("ittage: tag bits must be in [2,32], got %d", c.TagBits)
	}
	if c.MinHist < 1 || c.MaxHist <= c.MinHist {
		return fmt.Errorf("ittage: history lengths must satisfy 1 <= min < max, got [%d,%d]", c.MinHist, c.MaxHist)
	}
	if c.BitsPerItem == 0 || c.BitsPerItem > 32 {
		return fmt.Errorf("ittage: bits per item must be in [1,32], got %d", c.BitsPerItem)
	}
	return nil
}

// histLens expands the geometric series; the first and last lengths land
// exactly on MinHist and MaxHist.
func (c Config) histLens() []int {
	lens := make([]int, c.Banks)
	alpha := math.Pow(float64(c.MaxHist)/float64(c.MinHist), 1/float64(c.Banks-1))
	for i := range lens {
		lens[i] = int(math.Round(float64(c.MinHist) * math.Pow(alpha, float64(i))))
	}
	lens[0], lens[c.Banks-1] = c.MinHist, c.MaxHist
	return lens
}

type entry struct {
	valid  bool
	tag    uint64
	target uint64
	ctr    uint8 // confidence in target, 0..ctrMax
	u      uint8 // usefulness, 0..uMax
}

type baseEntry struct {
	valid  bool
	target uint64
}

// bank is one partially tagged table with its geometric window and the
// three incrementally folded views of that window (index, tag, tag-shifted),
// the circular-shift-register idiom of the hardware design.
type bank struct {
	entries  []entry
	histLen  int
	idxFold  hashing.Folded
	tagFold  hashing.Folded
	tagFold2 hashing.Folded
}

// ITTAGE is the predictor. Construct with New or Paper.
type ITTAGE struct {
	cfg     Config
	lens    []int
	base    []baseEntry
	banks   []bank
	hist    *history.PHR
	selMask uint64
	uaona   uint8  // use-alt-on-newly-allocated, 0..uaonaMax, >= 8 means use alt
	tick    uint64 // updates since power-up, drives the graceful u reset
	uResets uint64 // graceful resets performed (observability)
	pending pendingState
	pendIdx []uint64 // per-bank index of the pending prediction
	pendTag []uint64 // per-bank tag of the pending prediction
}

// pendingState carries one Predict's lookup results to the matching Update.
type pendingState struct {
	provider int // bank index of the longest tag match, -1 if none
	alt      int // bank index of the next match, -1 means the base table
	baseIdx  uint64
	pred     uint64
	predOK   bool
	provPred uint64
	provNew  bool // provider entry looked newly allocated (ctr==0 && u==0)
	altPred  uint64
	altOK    bool
}

// New builds an ITTAGE predictor. Panics on invalid configuration, which is
// always a programming error in this repository's fixed experiment set.
func New(cfg Config) *ITTAGE {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	lens := cfg.histLens()
	p := &ITTAGE{
		cfg:     cfg,
		lens:    lens,
		base:    make([]baseEntry, cfg.BaseEntries),
		banks:   make([]bank, cfg.Banks),
		selMask: hashing.Mask(cfg.BitsPerItem),
		uaona:   uaonaInit,
		pendIdx: make([]uint64, cfg.Banks),
		pendTag: make([]uint64, cfg.Banks),
		// The ring retains the longest window so each bank can read its
		// outgoing item at push time; the packed view spans the full
		// geometric width — well past 64 bits in the shipped configuration.
		hist: history.NewWide(cfg.Stream, cfg.MaxHist, cfg.BitsPerItem, uint(cfg.MaxHist)*cfg.BitsPerItem),
	}
	idxBits := indexBits(cfg.BankEntries)
	for i := range p.banks {
		p.banks[i] = bank{
			entries:  make([]entry, cfg.BankEntries),
			histLen:  lens[i],
			idxFold:  hashing.NewFolded(lens[i], cfg.BitsPerItem, idxBits),
			tagFold:  hashing.NewFolded(lens[i], cfg.BitsPerItem, cfg.TagBits),
			tagFold2: hashing.NewFolded(lens[i], cfg.BitsPerItem, cfg.TagBits-1),
		}
	}
	return p
}

func indexBits(entries int) uint {
	n := uint(0)
	for e := entries; e > 1; e >>= 1 {
		n++
	}
	return n
}

// Paper returns the configuration evaluated in the "1998 vs modern" matrix:
// the paper's ~2K-entry budget apportioned as a 1024-entry tagless base
// table plus four 256-entry tagged banks, 10-bit tags, and geometric window
// lengths 4/10/25/64 recording 2 bits per multi-target indirect target — a
// 128-bit path history register, double the width the 1998 designs use.
func Paper() *ITTAGE {
	return New(Config{
		Name:        "ITTAGE",
		BaseEntries: 1024,
		Banks:       4,
		BankEntries: 256,
		TagBits:     10,
		MinHist:     4,
		MaxHist:     64,
		BitsPerItem: 2,
		ResetPeriod: 2048,
		Stream:      history.MTIndirectBranches,
	})
}

// Name implements predictor.IndirectPredictor.
func (p *ITTAGE) Name() string {
	if p.cfg.Name != "" {
		return p.cfg.Name
	}
	return "ITTAGE"
}

// Entries implements predictor.Sized.
func (p *ITTAGE) Entries() int { return len(p.base) + len(p.banks)*p.cfg.BankEntries }

// HistLens returns the geometric window length of each bank, shortest first.
func (p *ITTAGE) HistLens() []int { return append([]int(nil), p.lens...) }

// HistoryBits returns the packed width of the path history register —
// past 64 in the shipped configuration, the width that motivated the
// multi-word register.
func (p *ITTAGE) HistoryBits() uint { return p.hist.PackedBits() }

// baseIndex direct-maps the word-aligned pc into the base table.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func (p *ITTAGE) baseIndex(pc uint64) uint64 {
	return (pc >> 2) & uint64(len(p.base)-1)
}

// bankIndex forms bank b's set index from the mixed pc and the bank's
// folded window.
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func (p *ITTAGE) bankIndex(b *bank, pc uint64) uint64 {
	return (hashing.Mix64(pc>>2) ^ b.idxFold.Value()) & uint64(len(b.entries)-1)
}

// bankTag forms bank b's partial tag: high mixed pc bits XOR the folded
// window XOR the narrower fold shifted by one, the double-fold that keeps
// tags and indexes decorrelated (the ChampSim csr1/csr2 idiom).
//
//ppm:hotpath per-lookup index-hash helper; runs once per table probe
func (p *ITTAGE) bankTag(b *bank, pc uint64) uint64 {
	return ((hashing.Mix64(pc>>2) >> 32) ^ b.tagFold.Value() ^ (b.tagFold2.Value() << 1)) & hashing.Mask(p.cfg.TagBits)
}

// Predict implements predictor.IndirectPredictor: the longest tag-matching
// bank provides, the next match (or the base table) is the alternate, and
// newly allocated providers defer to the alternate while the
// use-alt-on-newly-allocated counter says so.
//
//ppm:hotpath per-record ITTAGE lookup
func (p *ITTAGE) Predict(pc uint64) (uint64, bool) {
	pd := &p.pending
	pd.provider, pd.alt = -1, -1
	for i := len(p.banks) - 1; i >= 0; i-- {
		b := &p.banks[i] //lint:idxsafe i descends from len(banks)-1 to 0
		idx := p.bankIndex(b, pc)
		tag := p.bankTag(b, pc)
		p.pendIdx[i] = idx //lint:idxsafe pendIdx and pendTag are sized to len(banks) at construction
		p.pendTag[i] = tag //lint:idxsafe pendIdx and pendTag are sized to len(banks) at construction
		if pd.alt >= 0 {
			continue // both match slots filled; keep filling pend{Idx,Tag}
		}
		e := &b.entries[idx]
		if !e.valid || e.tag != tag {
			continue
		}
		if pd.provider < 0 {
			pd.provider = i
			pd.provPred = e.target
			pd.provNew = e.ctr == 0 && e.u == 0
		} else {
			pd.alt = i
			pd.altPred = e.target
			pd.altOK = true
		}
	}
	pd.baseIdx = p.baseIndex(pc)
	if pd.alt < 0 {
		be := &p.base[pd.baseIdx]
		pd.altPred, pd.altOK = be.target, be.valid
	}
	if pd.provider >= 0 {
		if pd.provNew && pd.altOK && p.uaona >= uaonaInit {
			pd.pred, pd.predOK = pd.altPred, true
		} else {
			pd.pred, pd.predOK = pd.provPred, true
		}
	} else {
		pd.pred, pd.predOK = pd.altPred, pd.altOK
	}
	return pd.pred, pd.predOK
}

// Update implements predictor.IndirectPredictor, resolving the pending
// prediction: it trains the provider's confidence and usefulness, steers
// the use-alt counter on newly allocated disagreements, allocates into a
// longer bank on a final mispredict (first longer bank whose slot has
// usefulness 0; if none, every candidate's usefulness decays instead), and
// always refreshes the base table. Every ResetPeriod updates the usefulness
// counters halve — the graceful reset that lets the predictor forget a
// phase change without losing all of its allocation discipline at once.
//
//ppm:hotpath per-record ITTAGE train/allocate
func (p *ITTAGE) Update(pc, target uint64) {
	_ = pc
	pd := &p.pending
	p.tick++
	if p.cfg.ResetPeriod > 0 && p.tick%p.cfg.ResetPeriod == 0 {
		p.gracefulReset()
	}
	correct := pd.predOK && pd.pred == target

	if pd.provider >= 0 {
		e := &p.banks[pd.provider].entries[p.pendIdx[pd.provider]] //lint:idxsafe provider in [0,len(banks)) and pendIdx holds masked indexes
		altDiffers := !pd.altOK || pd.altPred != pd.provPred
		// The use-alt counter trains only on decisive events: a newly
		// allocated provider that disagreed with its alternate, where
		// exactly one of the two was right.
		if pd.provNew && altDiffers {
			if pd.provPred == target && p.uaona > 0 {
				p.uaona--
			} else if pd.altOK && pd.altPred == target && p.uaona < uaonaMax {
				p.uaona++
			}
		}
		if altDiffers {
			if pd.provPred == target {
				if e.u < uMax {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		if e.target == target {
			if e.ctr < ctrMax {
				e.ctr++
			}
		} else if e.ctr > 0 {
			e.ctr--
		} else {
			e.target = target
		}
	}

	if !correct {
		p.allocate(pd.provider+1, target)
	}

	be := &p.base[pd.baseIdx] //lint:idxsafe baseIdx is masked into [0, len(base)) by baseIndex
	be.valid = true
	be.target = target
}

// allocate claims a slot for the mispredicted branch in the first bank at
// or past `from` whose indexed entry has usefulness 0; if every candidate
// is defended, their usefulness decays by one instead — the deterministic
// variant of the hardware's randomized single-bank probe, chosen so the
// differential oracle can restate it exactly.
//
//ppm:hotpath per-mispredict ITTAGE allocation walk
func (p *ITTAGE) allocate(from int, target uint64) {
	for i := from; i < len(p.banks); i++ {
		e := &p.banks[i].entries[p.pendIdx[i]] //lint:idxsafe i in [0,len(banks)) and pendIdx holds masked indexes
		if !e.valid || e.u == 0 {
			*e = entry{valid: true, tag: p.pendTag[i], target: target} //lint:idxsafe i in [0,len(banks)) bounds pendTag too
			return
		}
	}
	for i := from; i < len(p.banks); i++ {
		e := &p.banks[i].entries[p.pendIdx[i]] //lint:idxsafe i in [0,len(banks)) and pendIdx holds masked indexes
		if e.u > 0 {
			e.u--
		}
	}
}

// gracefulReset halves every usefulness counter, aging out stale
// protection without wiping the working set.
func (p *ITTAGE) gracefulReset() {
	for i := range p.banks {
		es := p.banks[i].entries
		for j := range es {
			es[j].u >>= 1
		}
	}
	p.uResets++
}

// Observe implements predictor.IndirectPredictor: records on the
// configured stream advance the history ring, the wide packed register and
// every bank's folded views in lock step.
//
//ppm:hotpath per-record history advance
func (p *ITTAGE) Observe(r trace.Record) {
	if !p.hist.Stream().Accepts(r) {
		return
	}
	p.push(r.Target)
}

// push advances all history state by one item. The outgoing item for a
// window of length L is the target L-1 positions deep before the push.
//
//ppm:hotpath per-record history advance
func (p *ITTAGE) push(target uint64) {
	sel := (target >> 2) & p.selMask
	for i := range p.banks {
		b := &p.banks[i]
		out := (p.hist.Peek(b.histLen-1) >> 2) & p.selMask
		b.idxFold.Update(sel, out)
		b.tagFold.Update(sel, out)
		b.tagFold2.Update(sel, out)
	}
	p.hist.Push(target)
}

// ProcessBlock implements the engine's batch fast path. With the shipped
// MT-indirect stream the whole protocol — predict, update, history push —
// is driven by the block's MTIdx lane; other streams replay record-exactly.
//
//ppm:hotpath whole-block ITTAGE replay over the MT index lane
func (p *ITTAGE) ProcessBlock(b *trace.Block, c *stats.Counters) {
	if p.hist.Stream() != history.MTIndirectBranches {
		for i := 0; i < b.Len(); i++ {
			r := b.Record(i)
			if r.MTIndirect() {
				target, ok := p.Predict(r.PC)
				c.Record(ok && target == r.Target, ok)
				p.Update(r.PC, r.Target)
			}
			p.Observe(r)
		}
		return
	}
	pcs, tgts := b.PC, b.Target
	for _, k := range b.MTIdx {
		pc := pcs[k]   //lint:idxsafe MTIdx entries index the block's lanes by construction
		tgt := tgts[k] //lint:idxsafe MTIdx entries index the block's lanes by construction
		target, ok := p.Predict(pc)
		c.Record(ok && target == tgt, ok)
		p.Update(pc, tgt)
		p.push(tgt)
	}
}

// UStats reports the use-alt counter and how many graceful resets have run,
// for the experiment matrix's diagnostics.
func (p *ITTAGE) UStats() (uaona uint8, resets uint64) { return p.uaona, p.uResets }

// Reset implements predictor.Resetter.
func (p *ITTAGE) Reset() {
	for i := range p.base {
		p.base[i] = baseEntry{}
	}
	for i := range p.banks {
		b := &p.banks[i]
		for j := range b.entries {
			b.entries[j] = entry{}
		}
		b.idxFold.Reset()
		b.tagFold.Reset()
		b.tagFold2.Reset()
	}
	p.hist.Reset()
	p.uaona = uaonaInit
	p.tick = 0
	p.uResets = 0
}

var (
	_ predictor.IndirectPredictor = (*ITTAGE)(nil)
	_ predictor.Sized             = (*ITTAGE)(nil)
	_ predictor.Resetter          = (*ITTAGE)(nil)
	_ predictor.Costed            = (*ITTAGE)(nil)
)

// Bits implements predictor.Costed: the base table pays target+valid per
// entry; tagged entries add the 2-bit confidence, 2-bit usefulness and the
// partial tag; plus the full-width path history register and the use-alt
// counter.
func (p *ITTAGE) Bits() int {
	base := len(p.base) * (30 + 1)
	tagged := len(p.banks) * p.cfg.BankEntries * (30 + 1 + 2 + 2 + int(p.cfg.TagBits))
	return base + tagged + int(p.hist.PackedBits()) + 4
}
