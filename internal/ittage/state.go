package ittage

import "repro/internal/state"

// Snapshot implements state.Snapshotter: the configuration fingerprint and
// scalar counters, the base table, every tagged bank, then the path history
// register. The per-bank folded registers are deliberately not serialized —
// they are a pure function of the history ring, and Restore reseeds them
// from the wide packed register's from-scratch fold, so the incremental and
// specification forms can never drift across a save/restore boundary.
func (p *ITTAGE) Snapshot(w *state.Writer) {
	w.Begin(state.SecITTAGE)
	w.U64(uint64(len(p.base)))
	w.U64(uint64(len(p.banks)))
	w.U64(uint64(p.cfg.BankEntries))
	w.U64(uint64(p.cfg.TagBits))
	w.U64(uint64(p.cfg.MinHist))
	w.U64(uint64(p.cfg.MaxHist))
	w.U64(uint64(p.cfg.BitsPerItem))
	w.U64(p.cfg.ResetPeriod)
	w.U8(uint8(p.hist.Stream()))
	w.U8(p.uaona)
	w.U64(p.tick)
	w.U64(p.uResets)
	for i := range p.base {
		be := &p.base[i]
		w.Bool(be.valid)
		if be.valid {
			w.U64(be.target)
		}
	}
	for i := range p.banks {
		es := p.banks[i].entries
		for j := range es {
			e := &es[j]
			w.Bool(e.valid)
			if !e.valid {
				continue
			}
			w.U64(e.tag)
			w.U64(e.target)
			w.U8(e.ctr)
			w.U8(e.u)
		}
	}
	w.End()
	p.hist.SaveState(w)
}

// Restore implements state.Snapshotter, rebuilding tables in place and
// recomputing each bank's folded registers from the restored history.
func (p *ITTAGE) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecITTAGE); err != nil {
		return err
	}
	baseN := r.U64()
	banks := r.U64()
	bankN := r.U64()
	tagBits := r.U64()
	minHist := r.U64()
	maxHist := r.U64()
	bitsPer := r.U64()
	resetPeriod := r.U64()
	stream := r.U8()
	if err := r.Err(); err != nil {
		return err
	}
	if baseN != uint64(len(p.base)) || banks != uint64(len(p.banks)) || bankN != uint64(p.cfg.BankEntries) ||
		tagBits != uint64(p.cfg.TagBits) || minHist != uint64(p.cfg.MinHist) || maxHist != uint64(p.cfg.MaxHist) ||
		bitsPer != uint64(p.cfg.BitsPerItem) || resetPeriod != p.cfg.ResetPeriod || stream != uint8(p.hist.Stream()) {
		return state.Mismatchf("ITTAGE %d/%dx%d/t%d/h%d-%d/b%d/r%d/s%d vs snapshot %d/%dx%d/t%d/h%d-%d/b%d/r%d/s%d",
			len(p.base), len(p.banks), p.cfg.BankEntries, p.cfg.TagBits, p.cfg.MinHist, p.cfg.MaxHist,
			p.cfg.BitsPerItem, p.cfg.ResetPeriod, uint8(p.hist.Stream()),
			baseN, banks, bankN, tagBits, minHist, maxHist, bitsPer, resetPeriod, stream)
	}
	uaona := r.U8()
	tick := r.U64()
	uResets := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if uaona > uaonaMax {
		return state.Corruptf("ITTAGE use-alt counter %d out of range", uaona)
	}
	for i := range p.base {
		be := &p.base[i]
		if r.Bool() {
			be.valid = true
			be.target = r.U64()
		} else {
			*be = baseEntry{}
		}
	}
	tagMask := uint64(1)<<p.cfg.TagBits - 1
	for i := range p.banks {
		es := p.banks[i].entries
		for j := range es {
			e := &es[j]
			if !r.Bool() {
				*e = entry{}
				continue
			}
			tag := r.U64()
			target := r.U64()
			ctr := r.U8()
			u := r.U8()
			if err := r.Err(); err != nil {
				return err
			}
			if tag&^tagMask != 0 {
				return state.Corruptf("ITTAGE bank %d tag %#x exceeds %d bits", i, tag, p.cfg.TagBits)
			}
			if ctr > ctrMax || u > uMax {
				return state.Corruptf("ITTAGE bank %d counters %d/%d out of range", i, ctr, u)
			}
			*e = entry{valid: true, tag: tag, target: target, ctr: ctr, u: u}
		}
	}
	if err := r.End(); err != nil {
		return err
	}
	if err := p.hist.LoadState(r); err != nil {
		return err
	}
	p.uaona = uaona
	p.tick = tick
	p.uResets = uResets
	for i := range p.banks {
		b := &p.banks[i]
		in := uint(b.histLen) * p.cfg.BitsPerItem
		b.idxFold.Set(p.hist.FoldPacked(in, b.idxFold.Out()))
		b.tagFold.Set(p.hist.FoldPacked(in, b.tagFold.Out()))
		b.tagFold2.Set(p.hist.FoldPacked(in, b.tagFold2.Out()))
	}
	return nil
}

var _ state.Snapshotter = (*ITTAGE)(nil)
