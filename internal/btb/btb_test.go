package btb

import (
	"testing"

	"repro/internal/trace"
)

func TestBTBLearnsMonomorphic(t *testing.T) {
	b := New(64)
	const pc, target = 0x12000040, 0x14000abc
	if _, ok := b.Predict(pc); ok {
		t.Fatal("cold BTB produced a prediction")
	}
	b.Update(pc, target)
	got, ok := b.Predict(pc)
	if !ok || got != target {
		t.Fatalf("Predict = (%#x,%v), want (%#x,true)", got, ok, target)
	}
}

func TestBTBReplacesImmediately(t *testing.T) {
	b := New(64)
	const pc = 0x12000040
	b.Predict(pc)
	b.Update(pc, 0x100)
	b.Predict(pc)
	b.Update(pc, 0x200)
	if got, _ := b.Predict(pc); got != 0x200 {
		t.Fatalf("plain BTB kept stale target %#x", got)
	}
}

func TestBTB2bHysteresis(t *testing.T) {
	b := New2b(64)
	const pc = 0x12000040
	// Train target A to strong confidence.
	for i := 0; i < 4; i++ {
		b.Predict(pc)
		b.Update(pc, 0xA0)
	}
	// One excursion to B must NOT replace A (that is BTB2b's entire point:
	// C++ virtual calls bounce briefly and return).
	b.Predict(pc)
	b.Update(pc, 0xB0)
	if got, _ := b.Predict(pc); got != 0xA0 {
		t.Fatalf("BTB2b replaced after one miss: %#x", got)
	}
	// Sustained misses eventually replace.
	for i := 0; i < 5; i++ {
		b.Predict(pc)
		b.Update(pc, 0xB0)
	}
	if got, _ := b.Predict(pc); got != 0xB0 {
		t.Fatalf("BTB2b never adapted: %#x", got)
	}
}

func TestBTB2bFreshEntryTwoMissReplace(t *testing.T) {
	b := New2b(64)
	const pc = 0x12000040
	b.Predict(pc)
	b.Update(pc, 0xA0) // install, weak
	b.Predict(pc)
	b.Update(pc, 0xB0) // miss 1
	if got, _ := b.Predict(pc); got != 0xA0 {
		t.Fatal("replaced after a single miss on a weak entry")
	}
	b.Update(pc, 0xB0) // miss 2 -> replace
	if got, _ := b.Predict(pc); got != 0xB0 {
		t.Fatal("not replaced after two consecutive misses")
	}
}

func TestBTBAliasing(t *testing.T) {
	// Tagless direct-mapped: two branches mapping to the same entry
	// interfere — this is by design (Section 5 simulates tagless tables).
	b := New(4)
	pcA, pcB := uint64(0x1000), uint64(0x1000+4*4) // same index mod 4
	b.Predict(pcA)
	b.Update(pcA, 0xAAAA)
	got, ok := b.Predict(pcB)
	if !ok || got != 0xAAAA {
		t.Fatal("aliased entry not shared in tagless BTB")
	}
}

func TestBTBEntriesAndNames(t *testing.T) {
	if New(2048).Entries() != 2048 || New2b(2048).Entries() != 2048 {
		t.Error("Entries mismatch")
	}
	if New(8).Name() != "BTB" || New2b(8).Name() != "BTB2b" {
		t.Error("Name mismatch")
	}
}

func TestBTBReset(t *testing.T) {
	b := New2b(16)
	b.Predict(0x40)
	b.Update(0x40, 0x999)
	b.Reset()
	if _, ok := b.Predict(0x40); ok {
		t.Error("entry survived Reset")
	}
}

func TestBTBObserveIsNoOp(t *testing.T) {
	b := New(16)
	b.Observe(trace.Record{PC: 0x40, Target: 0x80, Class: trace.IndirectJmp, MT: true})
	if _, ok := b.Predict(0x40); ok {
		t.Error("Observe trained the BTB")
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -4, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}
