package btb

import (
	"repro/internal/counter"
	"repro/internal/state"
)

// Snapshot implements state.Snapshotter. Invalid entries collapse to their
// valid bit, so snapshot size tracks occupancy.
func (b *BTB) Snapshot(w *state.Writer) {
	w.Begin(state.SecBTB)
	w.Bool(b.hysteresis)
	w.U64(uint64(len(b.entries)))
	for i := range b.entries {
		e := &b.entries[i]
		w.Bool(e.valid)
		if e.valid {
			w.U64(e.target)
			w.U8(e.hyst.Value())
		}
	}
	w.End()
}

// Restore implements state.Snapshotter, rebuilding the table in place.
func (b *BTB) Restore(r *state.Reader) error {
	if err := r.Begin(state.SecBTB); err != nil {
		return err
	}
	hysteresis := r.Bool()
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if hysteresis != b.hysteresis || n != uint64(len(b.entries)) {
		return state.Mismatchf("BTB hysteresis %v/%d entries vs snapshot %v/%d",
			b.hysteresis, len(b.entries), hysteresis, n)
	}
	for i := range b.entries {
		e := &b.entries[i]
		if !r.Bool() {
			*e = entry{}
			continue
		}
		target := r.U64()
		raw := r.U8()
		if err := r.Err(); err != nil {
			return err
		}
		hyst, ok := counter.HysteresisFromValue(raw)
		if !ok {
			return state.Corruptf("BTB entry hysteresis %d out of range", raw)
		}
		*e = entry{valid: true, target: target, hyst: hyst}
	}
	return r.End()
}

var _ state.Snapshotter = (*BTB)(nil)
