// Package btb implements the two Branch Target Buffer baselines of
// Section 5: the plain tagless BTB of Lee & Smith, which caches the most
// recent target per entry and replaces it on every target mispredict, and
// BTB2b (Calder & Grunwald), which adds a 2-bit up/down saturating counter
// so the target is replaced only after two consecutive mispredictions —
// exploiting the target locality of C++ virtual calls.
package btb

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
)

type entry struct {
	valid  bool
	target uint64
	hyst   counter.Hysteresis
}

// BTB is a tagless direct-mapped branch target buffer.
type BTB struct {
	name       string
	entries    []entry
	hysteresis bool // true for BTB2b behaviour
	pending    struct {
		idx   uint64
		hit   bool
		guess uint64
	}
}

// New returns a plain tagless BTB with the given number of entries.
// Panics if entries is not a positive power of two.
func New(entries int) *BTB { return newBTB("BTB", entries, false) }

// New2b returns a BTB2b: a tagless BTB whose entries carry the 2-bit
// hysteresis counter of Calder & Grunwald. Panics if entries is not a
// positive power of two.
func New2b(entries int) *BTB { return newBTB("BTB2b", entries, true) }

func newBTB(name string, entries int, hysteresis bool) *BTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("btb: entries must be a positive power of two, got %d", entries))
	}
	return &BTB{name: name, entries: make([]entry, entries), hysteresis: hysteresis}
}

// Name implements predictor.IndirectPredictor.
func (b *BTB) Name() string { return b.name }

// Entries implements predictor.Sized.
func (b *BTB) Entries() int { return len(b.entries) }

func (b *BTB) index(pc uint64) uint64 {
	return (pc >> 2) & uint64(len(b.entries)-1)
}

// Predict implements predictor.IndirectPredictor.
func (b *BTB) Predict(pc uint64) (uint64, bool) {
	idx := b.index(pc)
	e := &b.entries[idx]
	b.pending.idx = idx
	b.pending.hit = e.valid
	b.pending.guess = e.target
	return e.target, e.valid
}

// Update implements predictor.IndirectPredictor.
func (b *BTB) Update(pc, target uint64) {
	e := &b.entries[b.pending.idx]
	if !e.valid {
		e.valid = true
		e.target = target
		e.hyst = counter.NewHysteresis()
		return
	}
	if e.target == target {
		if b.hysteresis {
			e.hyst.OnHit()
		}
		return
	}
	if !b.hysteresis {
		e.target = target
		return
	}
	if e.hyst.OnMiss() {
		e.target = target
	}
}

// Observe implements predictor.IndirectPredictor; BTBs keep no path history.
func (b *BTB) Observe(trace.Record) {}

// ProcessBlock implements the engine's batch fast path. A BTB holds no
// path history, so only the block's multi-target indirect records exist
// for it: the loop walks the precomputed MTIdx lane and skips the
// conditional-branch fabric entirely.
//
//ppm:hotpath whole-block BTB replay over the MT index lane
func (b *BTB) ProcessBlock(blk *trace.Block, c *stats.Counters) {
	pcs, tgts := blk.PC, blk.Target
	for _, k := range blk.MTIdx {
		pc := pcs[k]   //lint:idxsafe MTIdx entries index the block's lanes by construction
		tgt := tgts[k] //lint:idxsafe MTIdx entries index the block's lanes by construction
		target, ok := b.Predict(pc)
		c.Record(ok && target == tgt, ok)
		b.Update(pc, tgt)
	}
}

// Reset implements predictor.Resetter.
func (b *BTB) Reset() {
	for i := range b.entries {
		b.entries[i] = entry{}
	}
}

var (
	_ predictor.IndirectPredictor = (*BTB)(nil)
	_ predictor.Sized             = (*BTB)(nil)
	_ predictor.Resetter          = (*BTB)(nil)
	_ predictor.Costed            = (*BTB)(nil)
)

// Bits implements predictor.Costed: each entry stores a 30-bit target and
// a valid bit, plus the 2-bit counter in the BTB2b variant.
func (b *BTB) Bits() int {
	per := 30 + 1
	if b.hysteresis {
		per += 2
	}
	return len(b.entries) * per
}
