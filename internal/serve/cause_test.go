package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestJobDeadlineCause pins the regression from the context-cause audit: a
// job whose deadline fires must record errJobDeadline as its context cause,
// not the generic context.DeadlineExceeded every wrapping deadline also
// yields — terminalState depends on the cause to name who killed the job.
func TestJobDeadlineCause(t *testing.T) {
	j := newJob("j1", "suite", 1, time.Now(), 5*time.Millisecond)
	select {
	case <-j.ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job context never expired")
	}
	if cause := context.Cause(j.ctx); !errors.Is(cause, errJobDeadline) {
		t.Fatalf("context.Cause = %v, want errJobDeadline", cause)
	}
	state, msg := terminalState(j.ctx)
	if state != StateFailed || msg != "job deadline exceeded" {
		t.Fatalf("terminalState = (%q, %q), want (failed, job deadline exceeded)", state, msg)
	}
}

// TestCancelCausesPreserved verifies the other two cancellation causes
// survive to terminalState untouched by the deadline-cause change.
func TestCancelCausesPreserved(t *testing.T) {
	cases := []struct {
		name      string
		cause     error
		wantState string
		wantMsg   string
	}{
		{"client", errClientCancel, StateCancelled, ""},
		{"drain", errDrainAbort, StateCancelled, "shutdown drain timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := newJob("j2", "suite", 1, time.Now(), time.Minute)
			defer j.release()
			j.cancel(tc.cause)
			<-j.ctx.Done()
			if cause := context.Cause(j.ctx); !errors.Is(cause, tc.cause) {
				t.Fatalf("context.Cause = %v, want %v", cause, tc.cause)
			}
			state, msg := terminalState(j.ctx)
			if state != tc.wantState || msg != tc.wantMsg {
				t.Fatalf("terminalState = (%q, %q), want (%q, %q)", state, msg, tc.wantState, tc.wantMsg)
			}
		})
	}
}
