// Package serve turns the batch simulator into a long-running prediction-
// simulation service. A Server accepts simulation jobs over HTTP — either a
// named set of internal/workload configs materialized through the shared
// internal/tracecache, or an uploaded IBT2 trace decoded incrementally (the
// body is never fully buffered) — runs each (run × predictor-suite) cell
// through internal/sched's worker pool behind a global concurrency
// semaphore, and streams per-cell accuracy counters back as NDJSON.
//
// The package owns the serving concerns the simulator core must never learn
// about: a bounded session table with TTL eviction, admission control and
// backpressure (429 + Retry-After when saturated — the server sheds load,
// it never queues unboundedly), per-job deadlines, graceful shutdown that
// drains in-flight jobs under a bounded timeout, /healthz and /readyz, and
// an expvar-able stats surface with streaming p50/p99 job-latency
// quantiles (metrics.go).
//
// Determinism contract: serving machinery reads the wall clock (TTLs,
// latency metrics, Retry-After), but simulation cells run on private
// sim.Engines over immutable cached traces, so the counters streamed for a
// given (workload config, suite, events) are byte-identical to a serial
// cmd/experiments run of the same cells — a property CI pins.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/state"
	"repro/internal/trace"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// now is the single wall-clock read point of the package. Serving metadata
// (job TTLs, latency quantiles, eviction order) is wall-clock by nature and
// never feeds simulation results, which stay bit-deterministic.
func now() time.Time {
	return time.Now() //lint:wallclock serving metadata only; simulation results never see the clock
}

// Config tunes a Server. The zero value of any field selects the default
// noted on it.
type Config struct {
	// MaxConcurrent bounds simulation cells running at once across every
	// job (the backpressure semaphore). Default GOMAXPROCS.
	MaxConcurrent int
	// Workers is the sched.Pool width each job shards its cells over.
	// Default MaxConcurrent.
	Workers int
	// MaxActive bounds admitted-but-unfinished jobs; submissions beyond it
	// are shed with 429. Default 8.
	MaxActive int
	// MaxJobs bounds the whole session table, finished jobs included.
	// Default 64.
	MaxJobs int
	// JobTTL is how long a finished job (and its buffered results) stays
	// pollable before eviction. Default 10m.
	JobTTL time.Duration
	// JobTimeout is the per-job deadline. Default 5m.
	JobTimeout time.Duration
	// RetryAfter is the advisory Retry-After on 429 responses. Default 1s.
	RetryAfter time.Duration
	// CacheBytes is the trace cache budget. Default 512 MiB.
	CacheBytes int64
	// MaxEvents caps per-run dispatch events on submitted specs. Default
	// 2_000_000.
	MaxEvents int
	// MaxUploadBytes caps an uploaded trace body. Default 256 MiB.
	MaxUploadBytes int64
	// MaxSessions bounds live prediction sessions in the table. Default
	// 4096.
	MaxSessions int
	// SessionBytes bounds the summed live predictor state across every
	// session — each charged its serialized size (state.SizeOf) plus a
	// fixed overhead — so session count cannot grow RSS past the budget.
	// Default 256 MiB.
	SessionBytes int64
	// SessionTTL is how long an idle live session survives between
	// requests before eviction. Default 10m.
	SessionTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.Workers <= 0 {
		c.Workers = c.MaxConcurrent
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 8
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 512 << 20
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 2_000_000
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.SessionBytes <= 0 {
		c.SessionBytes = 256 << 20
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 10 * time.Minute
	}
	return c
}

// Server is the prediction-simulation service. Create with New; it is safe
// for concurrent use and owns a TTL-eviction goroutine until Shutdown.
type Server struct {
	cfg   Config
	cache *tracecache.Cache
	pool  *sched.Pool
	mux   *http.ServeMux
	sem   chan struct{} // simulation-slot semaphore

	mu       sync.Mutex
	jobs     map[string]*job
	nextID   int
	draining bool
	// sessions is the live-session table; sessBytes is the summed byte
	// charge of every session in it (state size + fixed overhead), held
	// under Config.SessionBytes by admission and eviction.
	sessions  map[string]*session
	nextSID   int
	sessBytes int64

	// spool pools snapshot writers/readers for the session state endpoints,
	// keeping the steady-state snapshot/restore cycle allocation-free.
	spool *state.Pool

	jobsWG      sync.WaitGroup // one per admitted job, suite or upload
	janitorStop chan struct{}
	met         metrics

	// cellHook, when non-nil, runs at the start of every suite cell while
	// it holds a simulation slot. Test seam: lets tests park cells to
	// exercise saturation, deadlines and drains deterministically.
	cellHook func(j *job, cell int)
}

// New builds a Server and starts its TTL janitor. Call Shutdown to stop it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		cache:       tracecache.New(cfg.CacheBytes),
		pool:        sched.New(cfg.Workers),
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		jobs:        make(map[string]*job),
		sessions:    make(map[string]*session),
		spool:       state.NewPool(),
		janitorStop: make(chan struct{}),
	}
	s.met.latency = newLatencySketch()
	s.met.predictLatency = newLatencySketch()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionStatus)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionClose)
	s.mux.HandleFunc("POST /v1/sessions/{id}/predict", s.handleSessionPredict)
	s.mux.HandleFunc("GET /v1/sessions/{id}/state", s.handleStateGet)
	s.mux.HandleFunc("PUT /v1/sessions/{id}/state", s.handleStatePut)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	go s.janitor()
	return s
}

// Handler returns the server's HTTP mux, for mounting on an http.Server or
// an httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// janitor evicts expired jobs and idle live sessions in the background so an
// idle server's tables drain to empty without waiting for the next request.
func (s *Server) janitor() {
	ttl := s.cfg.JobTTL
	if s.cfg.SessionTTL < ttl {
		ttl = s.cfg.SessionTTL
	}
	interval := ttl / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.mu.Lock()
			tick := now()
			s.evictExpiredLocked(tick, false)
			s.evictSessionsLocked(tick, false, 0)
			s.mu.Unlock()
		}
	}
}

// Shutdown drains the server: new submissions are rejected and /readyz
// flips to 503 immediately, in-flight jobs (and their result streams) run
// to completion, and when ctx expires first the remaining jobs are
// cancelled with a "shutdown drain timeout" cause and awaited. The janitor
// stops either way. Returns ctx.Err() when the drain timed out, nil when
// every job finished inside the deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.mu.Unlock()
	if !alreadyDraining {
		defer close(s.janitorStop)
	}

	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}

	// Bounded drain expired: abort what is left. Cells observe the context
	// between chunks, so this converges quickly.
	s.mu.Lock()
	for _, j := range s.jobs { //lint:sorted commutative cancellation; iteration order cannot matter
		j.cancel(errDrainAbort)
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// --- admission -------------------------------------------------------------

// admit reserves a session slot, enforcing the active-job and table bounds.
// It returns the new job, or a nil job and an HTTP status + message to shed
// the request with.
func (s *Server) admit(kind string, totalCells int) (*job, int, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable, "server is draining"
	}
	t := now()
	s.evictExpiredLocked(t, true)
	if len(s.jobs) >= s.cfg.MaxJobs {
		return nil, http.StatusTooManyRequests, "session table full"
	}
	active := 0
	for _, j := range s.jobs { //lint:sorted commutative count; iteration order cannot matter
		j.mu.Lock()
		if !j.terminalLocked() {
			active++
		}
		j.mu.Unlock()
	}
	if active >= s.cfg.MaxActive {
		return nil, http.StatusTooManyRequests, "too many active jobs"
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j-%d", s.nextID), kind, totalCells, t, s.cfg.JobTimeout)
	s.jobs[j.id] = j
	s.jobsWG.Add(1)
	s.met.started.Add(1)
	return j, 0, ""
}

// lookup finds a session by id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// resolveSuite maps a JobSpec's predictor selection to a builder. The
// builder runs once per cell, so every cell trains fresh instances.
func resolveSuite(spec JobSpec) (func() []predictor.IndirectPredictor, error) {
	if spec.Suite != "" && len(spec.Predictors) > 0 {
		return nil, errors.New("suite and predictors are mutually exclusive")
	}
	if len(spec.Predictors) > 0 {
		for _, name := range spec.Predictors {
			if _, ok := bench.NewPredictor(name); !ok {
				return nil, fmt.Errorf("unknown predictor %q", name)
			}
		}
		names := spec.Predictors
		return func() []predictor.IndirectPredictor {
			preds := make([]predictor.IndirectPredictor, len(names))
			for i, n := range names {
				preds[i], _ = bench.NewPredictor(n)
			}
			return preds
		}, nil
	}
	switch spec.Suite {
	case "", "fig6":
		return bench.Figure6Predictors, nil
	case "fig7":
		return bench.Figure7Predictors, nil
	default:
		return nil, fmt.Errorf("unknown suite %q (want fig6, fig7, or explicit predictors)", spec.Suite)
	}
}

// resolveWorkloads maps a JobSpec's run selection to concrete configs at
// the requested event count.
func (s *Server) resolveWorkloads(spec JobSpec) ([]workload.Config, error) {
	events := spec.Events
	if events <= 0 {
		events = bench.DefaultEvents
	}
	if events > s.cfg.MaxEvents {
		return nil, fmt.Errorf("events %d exceeds the server cap %d", events, s.cfg.MaxEvents)
	}
	if len(spec.Workloads) == 0 {
		return bench.Sized(events), nil
	}
	cfgs := make([]workload.Config, len(spec.Workloads))
	for i, name := range spec.Workloads {
		cfg, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		cfg.Events = events
		cfgs[i] = cfg
	}
	return cfgs, nil
}

// --- handlers --------------------------------------------------------------

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if isTraceUpload(r) {
		s.handleUpload(w, r)
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	build, err := resolveSuite(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfgs, err := s.resolveWorkloads(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	j, code, msg := s.admit("suite", len(cfgs))
	if j == nil {
		s.shed(w, code, msg)
		return
	}
	go s.runJob(j, cfgs, build)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs { //lint:sorted sorted by ID below
		statuses = append(statuses, j.status())
	}
	s.mu.Unlock()
	sort.Slice(statuses, func(a, b int) bool { return statuses[a].ID < statuses[b].ID })
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel(errClientCancel)
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.status())
}

// handleResults streams the job's cell log as NDJSON: every already-
// completed cell immediately, then cells as they land, then one terminal
// "done" event. Reconnecting after completion replays the full log from the
// session table (until TTL eviction).
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Job-ID", j.id)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	sent := 0
	for {
		cells, state, errMsg, terminal, updated := j.snapshot(sent)
		for i := range cells {
			c := cells[i]
			if err := enc.Encode(Event{Type: "cell", Job: j.id, Cell: &c}); err != nil {
				return // client went away
			}
			sent++
		}
		if terminal {
			_ = enc.Encode(Event{Type: "done", Job: j.id, State: state, Error: errMsg})
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// handleReadyz reports whether the server accepts new jobs: 503 once
// draining so load balancers stop routing here ahead of the listener
// closing.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ready\n")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s.Stats())
}

// shed rejects a request under backpressure, attaching Retry-After so
// well-behaved clients pace themselves instead of hammering.
func (s *Server) shed(w http.ResponseWriter, code int, msg string) {
	if code == http.StatusTooManyRequests {
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
	}
	httpError(w, code, msg)
}

// retryAfterSeconds converts the configured backoff into the whole seconds
// the Retry-After header carries, rounding up. The floor is 1: the header's
// grammar has no sub-second resolution, and advertising "Retry-After: 0"
// would invite an immediate retry — the opposite of backpressure — so a
// sub-second or unset duration still asks for one second.
func retryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		return 1
	}
	return secs
}

// --- job execution ---------------------------------------------------------

// runJob executes a suite job: cells shard across the pool, each taking a
// global simulation slot first, so total in-flight simulation work respects
// MaxConcurrent no matter how many jobs are admitted.
func (s *Server) runJob(j *job, cfgs []workload.Config, build func() []predictor.IndirectPredictor) {
	defer s.jobsWG.Done()
	j.setRunning()
	s.pool.Map(len(cfgs), func(i int) {
		if j.ctx.Err() != nil {
			return
		}
		s.met.queued.Add(1)
		select {
		case s.sem <- struct{}{}:
			s.met.queued.Add(-1)
		case <-j.ctx.Done():
			s.met.queued.Add(-1)
			return
		}
		defer func() { <-s.sem }()
		if h := s.cellHook; h != nil {
			h(j, i)
		}
		if j.ctx.Err() != nil {
			return
		}
		recs, _ := s.cache.Get(cfgs[i])
		e := sim.New(build()...)
		processInterruptible(e, recs, j.ctx)
		if j.ctx.Err() != nil {
			return
		}
		j.appendCell(cellResult(i, cfgs[i].String(), e))
		s.met.cells.Add(1)
	})
	s.finishJob(j)
}

// finishJob records the terminal state and latency of a job.
func (s *Server) finishJob(j *job) {
	state, msg := terminalState(j.ctx)
	t := now()
	if !j.finish(state, msg, t) {
		return
	}
	switch state {
	case StateDone:
		s.met.completed.Add(1)
	case StateCancelled:
		s.met.cancelled.Add(1)
	default:
		s.met.failed.Add(1)
	}
	s.met.latency.observe(t.Sub(j.created))
}

// processInterruptible drives records through the engine in chunks, checking
// the job context between chunks so cancellation and drain timeouts take
// effect mid-cell within ~a millisecond, while the per-record loop itself
// stays the analyzed zero-alloc hot path.
func processInterruptible(e *sim.Engine, recs []trace.Record, ctx context.Context) {
	const chunk = 1 << 16
	for start := 0; start < len(recs); start += chunk {
		if ctx.Err() != nil {
			return
		}
		end := start + chunk
		if end > len(recs) {
			end = len(recs)
		}
		e.ProcessAll(recs[start:end])
	}
}

// cellResult captures one finished cell's counters.
func cellResult(index int, run string, e *sim.Engine) CellResult {
	counters := e.Counters()
	preds := make([]PredictorResult, len(counters))
	for i, c := range counters {
		preds[i] = PredictorResult{
			Name: c.Predictor, Lookups: c.Lookups,
			Correct: c.Correct, Wrong: c.Wrong, NoPrediction: c.NoPrediction,
		}
	}
	return CellResult{Index: index, Run: run, Records: e.Records(), Predictors: preds}
}

// --- trace upload ----------------------------------------------------------

// isTraceUpload distinguishes a streamed IBT2 body from a JSON job spec.
func isTraceUpload(r *http.Request) bool {
	switch ct := r.Header.Get("Content-Type"); ct {
	case "application/x-ibt2", "application/octet-stream":
		return true
	default:
		return false
	}
}

// handleUpload simulates an uploaded trace against a predictor suite while
// the body streams in: records decode one at a time through trace.Reader
// and feed the engine directly, so a multi-gigabyte trace costs constant
// memory. The simulation slot is try-acquired — a saturated server sheds
// the upload with 429 before reading the body.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	spec := JobSpec{
		Suite:      r.URL.Query().Get("suite"),
		Predictors: r.URL.Query()["predictor"],
	}
	build, err := resolveSuite(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	label := r.URL.Query().Get("label")
	if label == "" {
		label = "upload"
	}

	// Try-acquire the simulation slot before creating any session state: a
	// saturated server sheds the upload without reading a byte of body.
	select {
	case s.sem <- struct{}{}:
	default:
		s.shed(w, http.StatusTooManyRequests, "simulation slots saturated")
		return
	}
	defer func() { <-s.sem }()

	j, code, msg := s.admit("upload", 1)
	if j == nil {
		s.shed(w, code, msg)
		return
	}
	defer s.jobsWG.Done()
	defer s.finishJob(j)
	j.setRunning()
	s.met.uploads.Add(1)

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	tr, err := trace.NewReader(body)
	if err != nil {
		s.met.badUpload.Add(1)
		j.cancel(err)
		httpError(w, http.StatusBadRequest, "not an IBT2 trace: "+err.Error())
		return
	}
	e := sim.New(build()...)
	if err := streamTrace(e, tr, r); err != nil {
		code := http.StatusBadRequest // truncation, corruption, vanished client
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			code = http.StatusRequestEntityTooLarge
		}
		s.met.badUpload.Add(1)
		j.cancel(err)
		httpError(w, code, err.Error())
		return
	}

	j.appendCell(cellResult(0, label, e))
	s.met.cells.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Job-ID", j.id)
	enc := json.NewEncoder(w)
	cells, _, _, _, _ := j.snapshot(0)
	for i := range cells {
		_ = enc.Encode(Event{Type: "cell", Job: j.id, Cell: &cells[i]})
	}
	_ = enc.Encode(Event{Type: "done", Job: j.id, State: StateDone})
}

var errRequestGone = errors.New("serve: request context cancelled mid-upload")

// streamTrace pumps decoded records into the engine, surfacing truncation
// as trace.ErrTruncated (a client error, 400) and checking the request
// context every few thousand records so an abandoned upload stops burning a
// simulation slot.
func streamTrace(e *sim.Engine, tr *trace.Reader, r *http.Request) error {
	const checkEvery = 4096
	for n := 0; ; n++ {
		if n%checkEvery == 0 && r.Context().Err() != nil {
			return errRequestGone
		}
		rec, err := tr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if errors.Is(err, trace.ErrTruncated) {
				return fmt.Errorf("upload truncated after %d records: %w", tr.Count(), err)
			}
			return err
		}
		e.Process(rec)
	}
}

// --- plumbing --------------------------------------------------------------

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, map[string]string{"error": msg})
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
