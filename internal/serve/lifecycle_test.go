package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/check/leakcheck"
	"repro/internal/sim"
)

// collectStream is streamResults without the *testing.T, safe to call from
// worker goroutines (t.Fatal must stay on the test goroutine).
func collectStream(base, id string) ([]CellResult, Event, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/results")
	if err != nil {
		return nil, Event{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, Event{}, fmt.Errorf("results status %d", resp.StatusCode)
	}
	var cells []CellResult
	var done Event
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, Event{}, err
		}
		switch ev.Type {
		case "cell":
			cells = append(cells, *ev.Cell)
		case "done":
			done = ev
		}
	}
	if done.Type != "done" {
		return nil, Event{}, fmt.Errorf("job %s: stream ended without done event", id)
	}
	return cells, done, nil
}

// TestConcurrentLifecycle is the satellite-3 stress test, meant for -race:
// many goroutines submit, stream, cancel and poll against one server while
// the janitor evicts behind them. It asserts (a) no data race, (b) every
// streamed cell is byte-identical to a fresh serial simulation of the same
// config, and (c) no job leaks — after the dust settles the session table
// drains to empty.
func TestConcurrentLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// First, so its cleanup runs after ts.Close: every goroutine the stress
	// spawned — workers, janitor, streamers — must be gone at exit.
	leakcheck.Check(t)
	const (
		events     = 300
		goroutines = 12
		iterations = 4
	)
	runs := []string{"troff.ped", "eqn", "ixx.wid", "photon"}

	// Serial reference cells, one per run, computed outside the server.
	want := make(map[string][]byte, len(runs))
	for _, name := range runs {
		cfg, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("unknown run %q", name)
		}
		cfg.Events = events
		recs, _ := cfg.Records()
		e := sim.New(bench.Figure6Predictors()...)
		e.ProcessAll(recs)
		b, err := json.Marshal(cellResult(0, name, e))
		if err != nil {
			t.Fatal(err)
		}
		want[name] = b
	}

	s := New(Config{
		MaxConcurrent: 4,
		MaxActive:     goroutines * 2, // admission never sheds in this test
		MaxJobs:       goroutines * iterations * 2,
		// Short enough that the janitor demonstrably drains the table at
		// the end, long enough that a just-finished job cannot expire in
		// the gap between the submit response and the results GET under
		// -race scheduling jitter (80ms was occasionally too tight).
		JobTTL:     500 * time.Millisecond,
		JobTimeout: time.Minute,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errc := make(chan error, goroutines*iterations)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				name := runs[(g+it)%len(runs)]
				body, _ := json.Marshal(JobSpec{Suite: "fig6", Workloads: []string{name}, Events: events})
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var st JobStatus
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					resp.Body.Close()
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errc <- fmt.Errorf("submit status %d", resp.StatusCode)
					return
				}

				if (g+it)%3 == 0 {
					// Cancel a third of the jobs right away, racing the run.
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
					if cr, err := http.DefaultClient.Do(req); err == nil {
						cr.Body.Close()
					}
					continue
				}

				cells, done, err := collectStream(ts.URL, st.ID)
				if err != nil {
					errc <- err
					return
				}
				if done.State != StateDone {
					errc <- fmt.Errorf("job %s state %q (%s)", st.ID, done.State, done.Error)
					return
				}
				if len(cells) != 1 {
					errc <- fmt.Errorf("job %s: %d cells", st.ID, len(cells))
					return
				}
				got, err := json.Marshal(cells[0])
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(got, want[name]) {
					errc <- fmt.Errorf("job %s run %s diverged from serial reference\n got: %s\nwant: %s",
						st.ID, name, got, want[name])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// No leaks: every admitted job reaches a terminal state (the drain
	// below would hang otherwise) and the janitor empties the table.
	waitFor(t, func() bool { return s.Stats().TableJobs == 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after stress = %v", err)
	}
	st := s.Stats()
	if st.QueueDepth != 0 {
		t.Errorf("queue depth after drain = %d", st.QueueDepth)
	}
	if got := st.JobsCompleted + st.JobsCancelled + st.JobsFailed; got != st.JobsStarted {
		t.Errorf("terminal jobs %d != started %d (leak)", got, st.JobsStarted)
	}
	if st.JobsFailed != 0 {
		t.Errorf("%d jobs failed during stress", st.JobsFailed)
	}
}
