package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/sim"
	"repro/internal/state"
	"repro/internal/trace"
)

// Live prediction sessions: where a job replays a whole trace offline, a
// session holds one predictor's mutable state open across requests. Clients
// stream IBT2 records up and get the predictor's per-dispatch predictions
// back as NDJSON while the tables train in place — the paper's online
// learner, served. Session state is the product being stored, so the table
// is bounded in bytes, not just entries: every session is charged its
// serialized predictor size (state.SizeOf) plus a fixed overhead, and the
// longest-idle sessions are evicted when the budget or the table fills.

// sessionOverheadBytes is the fixed per-session charge on top of the
// serialized predictor state: the session struct, table slot, engine and
// counter scaffolding. A coarse constant — the serialized state dominates
// for any trained predictor.
const sessionOverheadBytes = 2048

// SessionSpec is the JSON body of POST /v1/sessions. An empty body selects
// the default predictor.
type SessionSpec struct {
	// Predictor is a bench family label (see bench.PredictorNames);
	// empty means "PPM-hyb", the paper's headline predictor.
	Predictor string `json:"predictor,omitempty"`
}

// SessionStatus is the JSON shape of a live session: identity, cumulative
// accuracy counters, and the bytes its state is currently charged against
// the server's session memory budget.
type SessionStatus struct {
	ID           string `json:"id"`
	Predictor    string `json:"predictor"`
	Records      uint64 `json:"records"`
	Lookups      uint64 `json:"lookups"`
	Correct      uint64 `json:"correct"`
	Wrong        uint64 `json:"wrong"`
	NoPrediction uint64 `json:"nopred"`
	StateBytes   int64  `json:"state_bytes"`
}

// PredictEvent is one NDJSON line of a live predict stream: a "pred" line
// per MT indirect dispatch in upload order, then a terminal "done" line
// carrying the session's cumulative status. An "error" line replaces "done"
// when the upload was truncated or corrupt; records decoded before the error
// have already trained the session.
type PredictEvent struct {
	Type      string         `json:"type"` // "pred", "done" or "error"
	Seq       uint64         `json:"seq,omitempty"`
	PC        uint64         `json:"pc,omitempty"`
	Target    uint64         `json:"target,omitempty"` // predicted target (when predicted)
	Actual    uint64         `json:"actual,omitempty"` // committed target
	Predicted bool           `json:"predicted"`
	Correct   bool           `json:"correct"`
	Session   *SessionStatus `json:"session,omitempty"`
	Error     string         `json:"error,omitempty"`
}

// session is one live predictor in the table. The engine is single-owner:
// a request claims it via acquire (busy) and every other predict/state
// request is shed with 409 until release. stat is the last published status,
// readable without touching the engine, so GET status/list never block on a
// busy session.
type session struct {
	id        string
	predictor string
	created   time.Time

	// bytes is the session's current charge against Config.SessionBytes
	// (sessionOverheadBytes + serialized state size). Guarded by Server.mu,
	// like the table itself.
	bytes int64

	mu       sync.Mutex
	busy     bool
	lastUsed time.Time
	stat     SessionStatus

	// eng is only touched by the request holding the busy claim (or by
	// createSession before the session is published).
	eng *sim.Engine
}

// acquire claims exclusive use of the session's engine for one request.
func (sess *session) acquire(t time.Time) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.busy {
		return false
	}
	sess.busy = true
	sess.lastUsed = t
	return true
}

// liveStatus reads the engine's counters into a status. Callers must hold
// the busy claim (or be creating the session), so the engine is quiescent.
func (sess *session) liveStatus(stateBytes int64) SessionStatus {
	c := sess.eng.Counters()[0]
	return SessionStatus{
		ID: sess.id, Predictor: sess.predictor,
		Records: sess.eng.Records(),
		Lookups: c.Lookups, Correct: c.Correct, Wrong: c.Wrong, NoPrediction: c.NoPrediction,
		StateBytes: stateBytes,
	}
}

// status returns the last published status without touching the engine.
func (sess *session) status() SessionStatus {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.stat
}

// idleSince reports the busy flag and last use for eviction decisions.
func (sess *session) idleSince() (busy bool, last time.Time) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.busy, sess.lastUsed
}

// releaseSession publishes the session's post-request status, re-charges its
// state size against the byte budget (sizeBytes < 0 recomputes it from the
// live state), and returns the busy claim. Growth beyond the budget evicts
// the longest-idle sessions immediately, not at the next admission.
func (s *Server) releaseSession(sess *session, sizeBytes int64) {
	if sizeBytes < 0 {
		sizeBytes = sessionOverheadBytes + int64(state.SizeOf(sess.eng))
	}
	st := sess.liveStatus(sizeBytes)
	t := now()
	s.mu.Lock()
	if cur, ok := s.sessions[sess.id]; ok && cur == sess {
		s.sessBytes += sizeBytes - sess.bytes
		sess.bytes = sizeBytes
		s.evictSessionsLocked(t, true, 0)
	}
	s.mu.Unlock()
	sess.mu.Lock()
	sess.stat = st
	sess.lastUsed = t
	sess.busy = false
	sess.mu.Unlock()
}

// lookupSession finds a live session by id.
func (s *Server) lookupSession(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// dropSessionLocked removes a session from the table and returns its byte
// charge to the budget. Callers hold s.mu and bump their own metric.
func (s *Server) dropSessionLocked(sess *session) {
	delete(s.sessions, sess.id)
	s.sessBytes -= sess.bytes
}

// evictSessionsLocked drops idle sessions past SessionTTL and, when makeRoom
// is set, the longest-idle sessions until a table slot is free and needBytes
// fits under SessionBytes. Sessions with a request in flight (busy) are
// never evicted — their charge is what admission control sheds against.
// Callers hold s.mu.
func (s *Server) evictSessionsLocked(t time.Time, makeRoom bool, needBytes int64) {
	type idleSess struct {
		sess *session
		last time.Time
	}
	var idle []idleSess
	for _, sess := range s.sessions { //lint:sorted set deletion + sorted below; iteration order cannot matter
		busy, last := sess.idleSince()
		if busy {
			continue
		}
		if t.Sub(last) >= s.cfg.SessionTTL {
			s.dropSessionLocked(sess)
			s.met.sessEvicted.Add(1)
			continue
		}
		idle = append(idle, idleSess{sess, last})
	}
	if !makeRoom {
		return
	}
	sort.Slice(idle, func(a, b int) bool { return idle[a].last.Before(idle[b].last) })
	for _, it := range idle {
		if len(s.sessions) < s.cfg.MaxSessions && s.sessBytes+needBytes <= s.cfg.SessionBytes {
			return
		}
		s.dropSessionLocked(it.sess)
		s.met.sessEvicted.Add(1)
	}
}

// --- session handlers -------------------------------------------------------

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var spec SessionSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil && err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad session spec: "+err.Error())
		return
	}
	name := spec.Predictor
	if name == "" {
		name = "PPM-hyb"
	}
	p, ok := bench.NewPredictor(name)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown predictor %q", name))
		return
	}
	eng := sim.New(p)
	charge := sessionOverheadBytes + int64(state.SizeOf(eng))

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.shed(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	t := now()
	s.evictSessionsLocked(t, true, charge)
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.shed(w, http.StatusTooManyRequests, "session table full")
		return
	}
	if s.sessBytes+charge > s.cfg.SessionBytes {
		s.mu.Unlock()
		s.shed(w, http.StatusTooManyRequests, "session memory budget exhausted")
		return
	}
	s.nextSID++
	sess := &session{
		id: fmt.Sprintf("s-%d", s.nextSID), predictor: name,
		created: t, lastUsed: t, bytes: charge, eng: eng,
	}
	sess.stat = sess.liveStatus(charge)
	s.sessions[sess.id] = sess
	s.sessBytes += charge
	st := sess.stat
	s.mu.Unlock()
	s.met.sessCreated.Add(1)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, st)
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]SessionStatus, 0, len(s.sessions))
	for _, sess := range s.sessions { //lint:sorted sorted by ID below
		statuses = append(statuses, sess.status())
	}
	s.mu.Unlock()
	sort.Slice(statuses, func(a, b int) bool { return statuses[a].ID < statuses[b].ID })
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, statuses)
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, sess.status())
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		s.dropSessionLocked(sess)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	s.met.sessClosed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, sess.status())
}

// handleSessionPredict streams an IBT2 body through the session's live
// engine: each decoded record trains the predictor in place, and each MT
// indirect dispatch emits one NDJSON prediction line. The stream ends with a
// "done" event carrying the cumulative status. State mutates as records
// decode, so a truncated upload keeps the prefix's training — exactly what
// an online learner does with a dropped connection.
func (s *Server) handleSessionPredict(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	if !sess.acquire(now()) {
		httpError(w, http.StatusConflict, "session busy")
		return
	}
	sizeBytes := int64(-1) // recompute on the error paths
	defer func() { s.releaseSession(sess, sizeBytes) }()

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	tr, err := trace.NewReader(body)
	if err != nil {
		s.met.badUpload.Add(1)
		httpError(w, http.StatusBadRequest, "not an IBT2 trace: "+err.Error())
		return
	}

	// Predictions stream back while the body is still uploading, so the
	// connection must be full duplex: the HTTP/1.x server otherwise closes
	// the request body at the first response write. HTTP/2 is duplex
	// natively, so a not-supported error is fine to ignore.
	_ = http.NewResponseController(w).EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Session-ID", sess.id)
	enc := json.NewEncoder(w)
	t0 := now()
	const checkEvery = 4096
	var streamed uint64
	for n := 0; ; n++ {
		if n%checkEvery == 0 && r.Context().Err() != nil {
			return // client gone; the prefix has already trained the session
		}
		rec, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Headers are long gone; surface the failure as a typed line.
			s.met.badUpload.Add(1)
			_ = enc.Encode(PredictEvent{Type: "error", Error: err.Error()})
			return
		}
		p, dispatched := sess.eng.ProcessPredicted(rec)
		streamed++
		if !dispatched {
			continue
		}
		ev := PredictEvent{
			Type: "pred", Seq: sess.eng.Counters()[0].Lookups,
			PC: rec.PC, Actual: rec.Target,
			Predicted: p.Predicted, Correct: p.Correct,
		}
		if p.Predicted {
			ev.Target = p.Target
		}
		if err := enc.Encode(ev); err != nil {
			return // client went away
		}
	}
	s.met.predictRecs.Add(streamed)
	s.met.predictLatency.observe(now().Sub(t0))

	sizeBytes = sessionOverheadBytes + int64(state.SizeOf(sess.eng))
	st := sess.liveStatus(sizeBytes)
	_ = enc.Encode(PredictEvent{Type: "done", Session: &st})
}

// handleStateGet serializes the session's live state — engine accounting,
// RAS and predictor tables — as one snapshot (internal/state format). The
// bytes round-trip: uploading them into a fresh session of the same
// predictor continues byte-identically.
func (s *Server) handleStateGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	if !sess.acquire(now()) {
		httpError(w, http.StatusConflict, "session busy")
		return
	}
	sw := s.spool.Writer()
	data := state.Save(sess.eng, sw)
	sizeBytes := sessionOverheadBytes + int64(len(data))
	defer func() { s.releaseSession(sess, sizeBytes) }()

	w.Header().Set("Content-Type", "application/x-ppm-state")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("X-Session-ID", sess.id)
	_, _ = w.Write(data)
	s.spool.PutWriter(sw)
	s.met.stateSaves.Add(1)
}

// handleStatePut warm-starts the session from an uploaded snapshot. The
// snapshot must match the session's predictor configuration: a mismatch is
// 409, corrupt bytes are 400, and in both cases the session's prior state is
// partially overwritten only up to the failing section — clients treating
// either as fatal should close the session.
func (s *Server) handleStatePut(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	if !sess.acquire(now()) {
		httpError(w, http.StatusConflict, "session busy")
		return
	}
	sizeBytes := int64(-1)
	defer func() { s.releaseSession(sess, sizeBytes) }()

	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		code := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			code = http.StatusRequestEntityTooLarge
		}
		s.met.badState.Add(1)
		httpError(w, code, err.Error())
		return
	}
	sr := s.spool.Reader()
	err = state.Load(sess.eng, sr, data)
	s.spool.PutReader(sr)
	if err != nil {
		s.met.badState.Add(1)
		code := http.StatusBadRequest
		if errors.Is(err, state.ErrMismatch) {
			code = http.StatusConflict
		}
		httpError(w, code, err.Error())
		return
	}
	s.met.stateLoads.Add(1)
	sizeBytes = sessionOverheadBytes + int64(len(data))

	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, sess.liveStatus(sizeBytes))
}
