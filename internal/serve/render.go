package serve

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/report"
	"repro/internal/stats"
)

// Counters converts a wire-format predictor result back into the harness's
// counter type, so served numbers flow through the exact formatting code
// the experiment tables use.
func (p PredictorResult) Counters() stats.Counters {
	return stats.Counters{
		Predictor: p.Name, Lookups: p.Lookups,
		Correct: p.Correct, Wrong: p.Wrong, NoPrediction: p.NoPrediction,
	}
}

// RenderMatrix renders streamed cell results as the experiment harness's
// misprediction matrix — one row per run, one column per predictor, a MEAN
// row of per-run ratio averages — using the same report.Table and
// percentage formatting as cmd/experiments' printMatrix. Cells arrive in
// completion order (the stream is concurrent); they are sorted back into
// suite order by index, so for a given (workload config, suite, events) the
// output is byte-identical to the serial harness. CI pins that equivalence.
func RenderMatrix(w io.Writer, title string, cells []CellResult) {
	if len(cells) == 0 {
		fmt.Fprintln(w, title)
		fmt.Fprintln(w, "  (no cells)")
		return
	}
	ordered := make([]CellResult, len(cells))
	copy(ordered, cells)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Index < ordered[b].Index })

	names := make([]string, len(ordered[0].Predictors))
	for i, p := range ordered[0].Predictors {
		names[i] = p.Name
	}
	t := report.NewTable(title, append([]string{"run"}, names...)...)
	perPred := make(map[string][]stats.Counters)
	for _, cell := range ordered {
		row := []string{cell.Run}
		for _, p := range cell.Predictors {
			c := p.Counters()
			row = append(row, report.Pct(c.MispredictionRatio()))
			perPred[c.Predictor] = append(perPred[c.Predictor], c)
		}
		t.AddRow(row...)
	}
	avg := []string{"MEAN"}
	for _, n := range names {
		avg = append(avg, report.Pct(stats.MeanRatio(perPred[n])))
	}
	t.AddRow(avg...)
	t.Render(w)
	fmt.Fprintln(w)
}
