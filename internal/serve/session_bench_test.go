package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkLiveSessions measures the full live-session loop over real HTTP:
// create a session, stream a pre-encoded trace through predict, follow the
// NDJSON reply to its done event. One op is one whole session. Beyond the
// standard triple it reports sessions/s, the mean serialized
// bytes-per-trained-session, and the server's own p50/p99 predict-call
// latency — the numbers BENCH_sessions.json snapshots via `make
// bench-sessions`.
func BenchmarkLiveSessions(b *testing.B) {
	for _, family := range []string{"PPM-hyb", "BTB2b"} {
		b.Run(family, func(b *testing.B) {
			s := New(Config{MaxConcurrent: 1})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				_ = s.Shutdown(ctx)
			}()

			recs := benchRecords(b, "eqn", 500)
			body := encodeIBT2(b, recs)
			spec, _ := json.Marshal(SessionSpec{Predictor: family})

			var stateBytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(spec))
				if err != nil {
					b.Fatal(err)
				}
				var st SessionStatus
				if resp.StatusCode != http.StatusCreated {
					b.Fatalf("create status = %d", resp.StatusCode)
				}
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()

				done, err := streamPredict(ts.URL, st.ID, body)
				if err != nil {
					b.Fatal(err)
				}
				stateBytes += done.Session.StateBytes
			}
			b.StopTimer()

			stats := s.Stats()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
			b.ReportMetric(float64(stateBytes)/float64(b.N), "state-bytes/session")
			b.ReportMetric(stats.PredictP50MS, "predict-p50-ms")
			b.ReportMetric(stats.PredictP99MS, "predict-p99-ms")
		})
	}
}

// streamPredict uploads one predict body and follows the reply to its done
// event, discarding the per-dispatch lines.
func streamPredict(base, id string, body []byte) (PredictEvent, error) {
	resp, err := http.Post(base+"/v1/sessions/"+id+"/predict",
		"application/x-ibt2", bytes.NewReader(body))
	if err != nil {
		return PredictEvent{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return PredictEvent{}, fmt.Errorf("predict status = %d", resp.StatusCode)
	}
	var done PredictEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev PredictEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return PredictEvent{}, err
		}
		if ev.Type == "done" {
			done = ev
		}
	}
	if err := sc.Err(); err != nil {
		return PredictEvent{}, err
	}
	if done.Type != "done" || done.Session == nil {
		return PredictEvent{}, fmt.Errorf("stream ended without a done event")
	}
	return done, nil
}
