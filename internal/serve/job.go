package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// Job states, as reported by JobStatus.State and the NDJSON done event.
const (
	StateQueued    = "queued"    // admitted, no cell has started
	StateRunning   = "running"   // at least one cell started
	StateDone      = "done"      // every cell completed
	StateCancelled = "cancelled" // client cancel or shutdown drain timeout
	StateFailed    = "failed"    // deadline exceeded or internal error
)

// Cancellation causes, distinguished so the terminal state is honest about
// who killed the job.
var (
	errClientCancel = errors.New("serve: cancelled by client")
	errDrainAbort   = errors.New("serve: aborted by shutdown drain timeout")
	errJobDeadline  = errors.New("serve: job deadline exceeded")
)

// JobSpec is the JSON body of a suite-job submission. Zero-valued fields
// take server defaults: the full Table 1 suite, DefaultEvents events, the
// fig6 predictor line-up.
type JobSpec struct {
	// Suite names a predictor line-up: "fig6" (the seven 2K-entry
	// predictors of Figure 6) or "fig7" (the PPM variants). Mutually
	// exclusive with Predictors.
	Suite string `json:"suite,omitempty"`
	// Predictors lists predictor labels (see bench.PredictorNames) as an
	// alternative to a named suite.
	Predictors []string `json:"predictors,omitempty"`
	// Workloads lists benchmark runs by Config.String() name
	// ("troff.ped"); empty means the full suite.
	Workloads []string `json:"workloads,omitempty"`
	// Events is the MT dispatch count per run; 0 means the server default.
	Events int `json:"events,omitempty"`
}

// JobStatus is the poll/submit response body.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"` // "suite" or "upload"
	State string `json:"state"`
	Cells int    `json:"cells"`
	Done  int    `json:"done"`
	Error string `json:"error,omitempty"`
}

// PredictorResult is one predictor's counters on one cell. Only raw counts
// travel on the wire — ratios are derived at render time, exactly as the
// experiment harness derives them, so a served matrix is byte-identical to
// a local one.
type PredictorResult struct {
	Name         string `json:"name"`
	Lookups      uint64 `json:"lookups"`
	Correct      uint64 `json:"correct"`
	Wrong        uint64 `json:"wrong"`
	NoPrediction uint64 `json:"nopred"`
}

// CellResult is the outcome of one (run × predictor-suite) simulation cell.
type CellResult struct {
	Index      int               `json:"index"`
	Run        string            `json:"run"`
	Records    uint64            `json:"records"`
	Predictors []PredictorResult `json:"predictors"`
}

// Event is one NDJSON line of a results stream: a completed cell, or the
// terminal line carrying the job's final state.
type Event struct {
	Type  string      `json:"type"` // "cell" or "done"
	Job   string      `json:"job"`
	State string      `json:"state,omitempty"`
	Cell  *CellResult `json:"cell,omitempty"`
	Error string      `json:"error,omitempty"`
}

// job is one session in the table. Cells append in completion order (each
// carries its suite index); streams replay the log from any offset and wait
// on updated for more, so a results request can attach before, during or
// after the run.
type job struct {
	id      string
	kind    string
	created time.Time

	ctx     context.Context
	cancel  context.CancelCauseFunc
	release context.CancelFunc // frees the deadline timer once terminal

	mu       sync.Mutex
	state    string
	cells    []CellResult
	total    int
	errMsg   string
	finished time.Time
	updated  chan struct{} // closed and replaced on every mutation
}

func newJob(id, kind string, total int, created time.Time, timeout time.Duration) *job {
	// The deadline carries an explicit cause: context.Cause must name the
	// job timeout, not the generic DeadlineExceeded any wrapping deadline
	// would also produce.
	//lint:rootctx job contexts are roots; jobs outlive the submitting request
	base, release := context.WithTimeoutCause(context.Background(), timeout, errJobDeadline)
	ctx, cancel := context.WithCancelCause(base)
	return &job{
		id: id, kind: kind, created: created,
		ctx: ctx, cancel: cancel, release: release,
		state: StateQueued, total: total,
		updated: make(chan struct{}),
	}
}

// bump wakes every waiting stream. Callers hold j.mu.
func (j *job) bump() {
	close(j.updated)
	j.updated = make(chan struct{})
}

func (j *job) setRunning() {
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateRunning
		j.bump()
	}
	j.mu.Unlock()
}

func (j *job) appendCell(c CellResult) {
	j.mu.Lock()
	j.cells = append(j.cells, c)
	j.bump()
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once and returns whether
// this call was the transition.
func (j *job) finish(state, errMsg string, at time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminalLocked() {
		return false
	}
	j.state, j.errMsg, j.finished = state, errMsg, at
	j.bump()
	j.release() // the deadline timer has no further say
	return true
}

func (j *job) terminalLocked() bool {
	return j.state == StateDone || j.state == StateCancelled || j.state == StateFailed
}

// snapshot returns the cells at or past offset from, the current state, and
// a channel that is closed on the next mutation. The returned slice aliases
// the log; results are append-only so readers may iterate it freely.
func (j *job) snapshot(from int) (cells []CellResult, state, errMsg string, terminal bool, updated <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.cells) {
		cells = j.cells[from:]
	}
	return cells, j.state, j.errMsg, j.terminalLocked(), j.updated
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, Kind: j.kind, State: j.state,
		Cells: j.total, Done: len(j.cells), Error: j.errMsg,
	}
}

// expired reports whether the job is terminal and past its retention TTL.
func (j *job) expired(now time.Time, ttl time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminalLocked() && now.Sub(j.finished) >= ttl
}

// terminalState maps the job context's demise to a (state, message) pair.
func terminalState(ctx context.Context) (string, string) {
	switch cause := context.Cause(ctx); {
	case cause == nil || ctx.Err() == nil:
		return StateDone, ""
	case errors.Is(cause, errClientCancel):
		return StateCancelled, ""
	case errors.Is(cause, errDrainAbort):
		return StateCancelled, "shutdown drain timeout"
	case errors.Is(cause, errJobDeadline), errors.Is(cause, context.DeadlineExceeded):
		return StateFailed, "job deadline exceeded"
	default:
		return StateFailed, cause.Error()
	}
}

// evictExpired drops terminal jobs past their TTL and, when makeRoom is set
// and the table is still at capacity, the oldest-finished terminal jobs
// until one slot frees up. Running jobs are never evicted. Callers hold
// s.mu.
func (s *Server) evictExpiredLocked(now time.Time, makeRoom bool) {
	var finished []*job
	for id, j := range s.jobs { //lint:sorted set deletion + sorted below; iteration order cannot matter
		if j.expired(now, s.cfg.JobTTL) {
			delete(s.jobs, id)
			s.met.evicted.Add(1)
			continue
		}
		j.mu.Lock()
		if j.terminalLocked() {
			finished = append(finished, j)
		}
		j.mu.Unlock()
	}
	if !makeRoom || len(s.jobs) < s.cfg.MaxJobs {
		return
	}
	sort.Slice(finished, func(a, b int) bool { return finished[a].finished.Before(finished[b].finished) })
	for _, j := range finished {
		if len(s.jobs) < s.cfg.MaxJobs {
			return
		}
		delete(s.jobs, j.id)
		s.met.evicted.Add(1)
	}
}
