package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/check/leakcheck"
	"repro/internal/sim"
	"repro/internal/trace"
)

// testServer spins up a Server over httptest with test-sized defaults;
// cleanup drains it and closes the listener.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.JobTTL == 0 {
		cfg.JobTTL = time.Minute
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = time.Minute
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

func submitSpec(t *testing.T, base string, spec JobSpec) (JobStatus, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return st, resp
}

// streamResults follows a job's NDJSON stream to its done event.
func streamResults(t *testing.T, base, id string) ([]CellResult, Event) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	var cells []CellResult
	var done Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "cell":
			cells = append(cells, *ev.Cell)
		case "done":
			done = ev
		default:
			t.Fatalf("unknown event type %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done.Type != "done" {
		t.Fatal("stream ended without a done event")
	}
	return cells, done
}

func TestSubmitStreamStatus(t *testing.T) {
	s, ts := testServer(t, Config{MaxConcurrent: 2})
	st, resp := submitSpec(t, ts.URL, JobSpec{
		Suite: "fig6", Workloads: []string{"troff.ped", "eqn"}, Events: 500,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if st.ID == "" || st.Cells != 2 {
		t.Fatalf("submit status = %+v", st)
	}

	cells, done := streamResults(t, ts.URL, st.ID)
	if done.State != StateDone {
		t.Fatalf("final state = %q (%s)", done.State, done.Error)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if len(c.Predictors) != 7 {
			t.Errorf("cell %q has %d predictors, want the 7 of fig6", c.Run, len(c.Predictors))
		}
		if c.Records == 0 || c.Predictors[0].Lookups == 0 {
			t.Errorf("cell %q carries empty counters", c.Run)
		}
	}

	// Replay after completion must serve the identical log.
	replay, done2 := streamResults(t, ts.URL, st.ID)
	if done2.State != StateDone || len(replay) != len(cells) {
		t.Fatalf("replay: %d cells, state %q", len(replay), done2.State)
	}

	// Poll endpoint agrees.
	r2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st2 JobStatus
	_ = json.NewDecoder(r2.Body).Decode(&st2)
	r2.Body.Close()
	if st2.State != StateDone || st2.Done != 2 {
		t.Fatalf("status after completion = %+v", st2)
	}

	stats := s.Stats()
	if stats.JobsCompleted != 1 || stats.Cells != 2 || stats.LatencySamples != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestServedCountersMatchDirectSimulation is the package-level determinism
// check: counters served over HTTP equal a fresh serial simulation of the
// same cells. (The byte-identical comparison against the cmd/experiments
// renderer lives in that package's serve_test.go.)
func TestServedCountersMatchDirectSimulation(t *testing.T) {
	_, ts := testServer(t, Config{MaxConcurrent: 4})
	names := []string{"troff.ped", "ixx.wid"}
	st, _ := submitSpec(t, ts.URL, JobSpec{Suite: "fig7", Workloads: names, Events: 800})
	cells, done := streamResults(t, ts.URL, st.ID)
	if done.State != StateDone || len(cells) != 2 {
		t.Fatalf("cells=%d state=%q", len(cells), done.State)
	}
	for _, c := range cells {
		cfg, ok := bench.ByName(c.Run)
		if !ok {
			t.Fatalf("served unknown run %q", c.Run)
		}
		cfg.Events = 800
		recs, _ := cfg.Records()
		e := sim.New(bench.Figure7Predictors()...)
		e.ProcessAll(recs)
		want := cellResult(c.Index, c.Run, e)
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(c)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("served cell diverges from direct simulation\n got: %s\nwant: %s", gotJSON, wantJSON)
		}
	}
}

// gatedServer installs a cell hook that parks every cell (while holding its
// simulation slot) until release is closed or the job dies.
func gatedServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}, chan struct{}) {
	s, ts := testServer(t, cfg)
	release := make(chan struct{})
	entered := make(chan struct{}, 64)
	s.cellHook = func(j *job, cell int) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-j.ctx.Done():
		}
	}
	return s, ts, release, entered
}

// TestBackpressure429 pins the load-shedding acceptance criterion: beyond
// MaxActive the server sheds submissions with 429 + Retry-After instead of
// queueing, and recovers once the active job finishes.
func TestBackpressure429(t *testing.T) {
	s, ts, release, entered := gatedServer(t, Config{MaxConcurrent: 1, MaxActive: 1})

	st1, resp1 := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}, Events: 300})
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp1.StatusCode)
	}
	<-entered // the cell holds the only slot now

	_, resp2 := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}, Events: 300})
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// An upload is shed the same way while the slot is held.
	up, err := http.Post(ts.URL+"/v1/jobs", "application/x-ibt2", strings.NewReader("IBT2"))
	if err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated upload = %d, want 429", up.StatusCode)
	}

	close(release)
	if _, done := streamResults(t, ts.URL, st1.ID); done.State != StateDone {
		t.Fatalf("first job state = %q", done.State)
	}
	if _, resp3 := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}, Events: 300}); resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery submit = %d", resp3.StatusCode)
	}
	if s.Stats().Rejected < 2 {
		t.Errorf("rejected counter = %d, want >= 2", s.Stats().Rejected)
	}
}

func TestCancel(t *testing.T) {
	s, ts, _, entered := gatedServer(t, Config{MaxConcurrent: 1})
	st, _ := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}, Events: 300})
	<-entered

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if _, done := streamResults(t, ts.URL, st.ID); done.State != StateCancelled {
		t.Fatalf("state after cancel = %q", done.State)
	}
	if s.Stats().JobsCancelled != 1 {
		t.Errorf("cancelled counter = %d", s.Stats().JobsCancelled)
	}
}

func TestJobDeadline(t *testing.T) {
	s, ts, _, entered := gatedServer(t, Config{MaxConcurrent: 1, JobTimeout: 50 * time.Millisecond})
	st, _ := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}, Events: 300})
	<-entered
	_, done := streamResults(t, ts.URL, st.ID)
	if done.State != StateFailed || !strings.Contains(done.Error, "deadline") {
		t.Fatalf("state = %q error = %q, want failed/deadline", done.State, done.Error)
	}
	if s.Stats().JobsFailed != 1 {
		t.Errorf("failed counter = %d", s.Stats().JobsFailed)
	}
}

// TestShutdownDrains pins half of the graceful-shutdown acceptance
// criterion: during drain the server flips /readyz, rejects new work with
// 503, lets the in-flight job finish, and Shutdown returns nil.
func TestShutdownDrains(t *testing.T) {
	// A drained server must leave no goroutines behind: workers, janitor,
	// and the shutdown helper itself all exit.
	leakcheck.Check(t)
	s, ts, release, entered := gatedServer(t, Config{MaxConcurrent: 1})
	st, _ := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}, Events: 300})
	<-entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Draining becomes observable before the drain completes.
	waitFor(t, func() bool {
		r, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			return false
		}
		defer r.Body.Close()
		return r.StatusCode == http.StatusServiceUnavailable
	})
	if _, resp := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	// Liveness stays green while readiness is red.
	if r, err := http.Get(ts.URL + "/healthz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %v %v", r, err)
	} else {
		r.Body.Close()
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v, want nil (drained)", err)
	}
	// The drained job completed and its results survived the drain.
	if _, done := streamResults(t, ts.URL, st.ID); done.State != StateDone {
		t.Fatalf("in-flight job state after drain = %q, want done", done.State)
	}
}

// TestShutdownDrainTimeout pins the other half: a drain that cannot finish
// inside its bound aborts the stragglers (cancelled, with the drain cause
// recorded) and Shutdown returns the context error instead of hanging.
func TestShutdownDrainTimeout(t *testing.T) {
	s, ts, _, entered := gatedServer(t, Config{MaxConcurrent: 1})
	st, _ := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}, Events: 300})
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	_, done := streamResults(t, ts.URL, st.ID)
	if done.State != StateCancelled || !strings.Contains(done.Error, "drain") {
		t.Fatalf("straggler state = %q error = %q, want cancelled by drain", done.State, done.Error)
	}
}

func TestTTLEviction(t *testing.T) {
	s, ts := testServer(t, Config{JobTTL: 60 * time.Millisecond})
	st, _ := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}, Events: 200})
	if _, done := streamResults(t, ts.URL, st.ID); done.State != StateDone {
		t.Fatalf("state = %q", done.State)
	}
	// The janitor (ticking at >= 50ms) must expire the session on its own.
	waitFor(t, func() bool {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusNotFound
	})
	if s.Stats().Evicted == 0 {
		t.Error("eviction not counted")
	}
	if s.Stats().TableJobs != 0 {
		t.Errorf("table still holds %d jobs", s.Stats().TableJobs)
	}
}

func TestUploadTrace(t *testing.T) {
	_, ts := testServer(t, Config{MaxConcurrent: 1})

	cfg, _ := bench.ByName("troff.ped")
	cfg.Events = 400
	recs, _ := cfg.Records()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()

	resp, err := http.Post(ts.URL+"/v1/jobs?suite=fig6&label=troff-upload",
		"application/x-ibt2", bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	var cellEv, doneEv Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "cell" {
			cellEv = ev
		} else {
			doneEv = ev
		}
	}
	if doneEv.State != StateDone || cellEv.Cell == nil {
		t.Fatalf("upload events: cell=%+v done=%+v", cellEv, doneEv)
	}
	if cellEv.Cell.Run != "troff-upload" || cellEv.Cell.Records != uint64(len(recs)) {
		t.Errorf("cell = %+v, want label troff-upload over %d records", cellEv.Cell, len(recs))
	}

	// The uploaded-trace counters must equal simulating the same records
	// locally: the stream decodes losslessly and feeds the same engine.
	e := sim.New(bench.Figure6Predictors()...)
	e.ProcessAll(recs)
	want := cellResult(0, "troff-upload", e)
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(*cellEv.Cell)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("upload cell diverges from local simulation\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
}

// TestUploadTruncated400 pins the ErrTruncated satellite end to end: a
// byte-sliced upload is a client error (400 naming the truncation), never a
// 500.
func TestUploadTruncated400(t *testing.T) {
	s, ts := testServer(t, Config{MaxConcurrent: 1})

	cfg, _ := bench.ByName("eqn")
	cfg.Events = 50
	recs, _ := cfg.Records()
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf)
	for _, r := range recs {
		_ = w.Write(r)
	}
	_ = w.Flush()
	cut := buf.Bytes()[:buf.Len()-2] // mid-varint of the last record

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/x-ibt2", bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated upload status = %d, want 400", resp.StatusCode)
	}
	var body map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&body)
	if !strings.Contains(body["error"], "truncated") {
		t.Errorf("error body %q does not name the truncation", body["error"])
	}

	// Bad magic is equally a 400.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/octet-stream", strings.NewReader("NOPE"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-magic upload status = %d, want 400", resp2.StatusCode)
	}
	if s.Stats().BadUploads != 2 {
		t.Errorf("bad-upload counter = %d, want 2", s.Stats().BadUploads)
	}
}

func TestBadSpecs400(t *testing.T) {
	_, ts := testServer(t, Config{MaxEvents: 10_000})
	for name, spec := range map[string]JobSpec{
		"unknown suite":     {Suite: "fig99"},
		"unknown workload":  {Workloads: []string{"nope.nope"}},
		"unknown predictor": {Predictors: []string{"NOPE"}},
		"suite+predictors":  {Suite: "fig6", Predictors: []string{"BTB"}},
		"events over cap":   {Workloads: []string{"eqn"}, Events: 20_000},
	} {
		if _, resp := submitSpec(t, ts.URL, spec); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
}

// waitFor polls cond until it holds or a generous deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second) //lint:wallclock test polling deadline
	for !cond() {
		if time.Now().After(deadline) { //lint:wallclock test polling deadline
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStatszAndExpvar smoke-tests the stats surfaces.
func TestStatszAndExpvar(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, path := range []string{"/statsz", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("%s: not JSON: %v", path, err)
		}
		resp.Body.Close()
	}
	st, _ := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}, Events: 200})
	streamResults(t, ts.URL, st.ID)
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.JobsCompleted != 1 || stats.Cache.Generated == 0 {
		t.Errorf("statsz = %+v", stats)
	}
	_ = fmt.Sprint(st) // keep st referenced under all build tags
}
