package serve

import (
	"net/http"
	"testing"
	"time"
)

// TestRetryAfterSeconds pins the header arithmetic at its edges: the value
// rounds up to whole seconds and never reaches zero, because a
// "Retry-After: 0" would invite an immediate retry instead of backing the
// client off.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-time.Second, 1},
		{time.Nanosecond, 1},
		{50 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Nanosecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{90 * time.Second, 90},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestShedSubSecondRetryAfter drives a saturated server configured with a
// sub-second backoff through a real 429 and asserts the advertised header
// is the 1-second floor, not a truncated zero.
func TestShedSubSecondRetryAfter(t *testing.T) {
	_, ts, release, entered := gatedServer(t, Config{
		MaxConcurrent: 1,
		MaxActive:     1,
		RetryAfter:    50 * time.Millisecond,
	})
	defer close(release)

	if _, resp := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}, Events: 300}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	<-entered // the cell holds the only slot now

	_, resp := submitSpec(t, ts.URL, JobSpec{Workloads: []string{"eqn"}, Events: 300})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("sub-second backoff advertised Retry-After %q, want \"1\"", got)
	}
}
