package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/sim"
	"repro/internal/state"
	"repro/internal/trace"
)

// encodeIBT2 serializes records in the wire format predict uploads use.
func encodeIBT2(t testing.TB, recs []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// benchRecords materializes a workload's records for streaming.
func benchRecords(t testing.TB, workload string, events int) []trace.Record {
	t.Helper()
	cfg, ok := bench.ByName(workload)
	if !ok {
		t.Fatalf("unknown workload %q", workload)
	}
	cfg.Events = events
	recs, _ := cfg.Records()
	return recs
}

func createSession(t *testing.T, base, predictor string) SessionStatus {
	t.Helper()
	st, resp := tryCreateSession(t, base, predictor)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: status = %d", resp.StatusCode)
	}
	return st
}

func tryCreateSession(t *testing.T, base, predictor string) (SessionStatus, *http.Response) {
	t.Helper()
	var body io.Reader
	if predictor != "" {
		b, _ := json.Marshal(SessionSpec{Predictor: predictor})
		body = bytes.NewReader(b)
	} else {
		body = strings.NewReader("")
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SessionStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

// predictStream uploads records to a session and collects the NDJSON reply.
func predictStream(t *testing.T, base, id string, recs []trace.Record) (preds []PredictEvent, done PredictEvent) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sessions/"+id+"/predict",
		"application/x-ibt2", bytes.NewReader(encodeIBT2(t, recs)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("predict Content-Type = %q", got)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev PredictEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case "pred":
			preds = append(preds, ev)
		case "done":
			done = ev
		default:
			t.Fatalf("unexpected event type %q (error: %s)", ev.Type, ev.Error)
		}
	}
	if done.Type != "done" || done.Session == nil {
		t.Fatal("predict stream ended without a done event")
	}
	return preds, done
}

// getState downloads a session's snapshot bytes.
func getState(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("state download status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ppm-state" {
		t.Fatalf("state Content-Type = %q", got)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// putState uploads a snapshot into a session and returns the response.
func putState(t *testing.T, base, id string, data []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/sessions/"+id+"/state",
		bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ppm-state")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func closeSession(t *testing.T, base, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func sessionStatusCode(t *testing.T, base, id string) int {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})

	st := createSession(t, ts.URL, "")
	if st.ID == "" || st.Predictor != "PPM-hyb" {
		t.Fatalf("created session = %+v, want default predictor PPM-hyb", st)
	}
	if st.Records != 0 || st.StateBytes <= sessionOverheadBytes {
		t.Fatalf("fresh session status = %+v", st)
	}

	st2 := createSession(t, ts.URL, "BTB2b")
	resp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list []SessionStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 2 || list[0].ID != st.ID || list[1].ID != st2.ID {
		t.Fatalf("session list = %+v", list)
	}

	if code := sessionStatusCode(t, ts.URL, st.ID); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp := closeSession(t, ts.URL, st.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("close status = %d", resp.StatusCode)
	}
	if code := sessionStatusCode(t, ts.URL, st.ID); code != http.StatusNotFound {
		t.Fatalf("status after close = %d, want 404", code)
	}
	if resp := closeSession(t, ts.URL, st.ID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double close status = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"predictor":"no-such-family"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown predictor status = %d, want 400", resp.StatusCode)
	}
}

// TestSessionPredictMatchesLocal pins the streamed predictions and the
// final snapshot to a local engine replaying the same records: the served
// online learner is the batch simulator, bit for bit.
func TestSessionPredictMatchesLocal(t *testing.T) {
	_, ts := testServer(t, Config{})
	recs := benchRecords(t, "troff.ped", 600)

	st := createSession(t, ts.URL, "PPM-hyb")
	preds, done := predictStream(t, ts.URL, st.ID, recs)

	p, _ := bench.NewPredictor("PPM-hyb")
	eng := sim.New(p)
	var want []PredictEvent
	for _, r := range recs {
		pr, dispatched := eng.ProcessPredicted(r)
		if !dispatched {
			continue
		}
		ev := PredictEvent{
			Type: "pred", Seq: eng.Counters()[0].Lookups,
			PC: r.PC, Actual: r.Target,
			Predicted: pr.Predicted, Correct: pr.Correct,
		}
		if pr.Predicted {
			ev.Target = pr.Target
		}
		want = append(want, ev)
	}
	if len(preds) != len(want) {
		t.Fatalf("streamed %d pred events, local engine dispatched %d", len(preds), len(want))
	}
	for i := range want {
		if preds[i] != want[i] {
			t.Fatalf("pred %d: got %+v, want %+v", i, preds[i], want[i])
		}
	}

	c := eng.Counters()[0]
	s := done.Session
	if s.Records != eng.Records() || s.Lookups != c.Lookups ||
		s.Correct != c.Correct || s.Wrong != c.Wrong || s.NoPrediction != c.NoPrediction {
		t.Fatalf("done status %+v diverges from local counters %+v", s, c)
	}

	snap := getState(t, ts.URL, st.ID)
	if local := state.SaveBytes(eng); !bytes.Equal(snap, local) {
		t.Fatalf("served snapshot (%d bytes) != local snapshot (%d bytes)", len(snap), len(local))
	}
	if want := sessionOverheadBytes + int64(len(snap)); s.StateBytes != want {
		t.Errorf("done StateBytes = %d, want overhead+snapshot = %d", s.StateBytes, want)
	}
}

// TestSessionStateRoundTrip proves warm start over the wire: state downloaded
// mid-stream and uploaded into a fresh session continues byte-identically.
func TestSessionStateRoundTrip(t *testing.T) {
	_, ts := testServer(t, Config{})
	recs := benchRecords(t, "eqn", 800)
	half := len(recs) / 2

	a := createSession(t, ts.URL, "PPM-hyb")
	predictStream(t, ts.URL, a.ID, recs[:half])
	snap := getState(t, ts.URL, a.ID)

	b := createSession(t, ts.URL, "PPM-hyb")
	if resp := putState(t, ts.URL, b.ID, snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("state upload status = %d", resp.StatusCode)
	}
	if !bytes.Equal(getState(t, ts.URL, b.ID), snap) {
		t.Fatal("restored session re-serializes differently before any traffic")
	}

	predsA, doneA := predictStream(t, ts.URL, a.ID, recs[half:])
	predsB, doneB := predictStream(t, ts.URL, b.ID, recs[half:])
	if len(predsA) != len(predsB) {
		t.Fatalf("continuations diverge: %d vs %d pred events", len(predsA), len(predsB))
	}
	for i := range predsA {
		if predsA[i] != predsB[i] {
			t.Fatalf("continuation pred %d: original %+v, restored %+v", i, predsA[i], predsB[i])
		}
	}
	sa, sb := *doneA.Session, *doneB.Session
	sa.ID, sb.ID = "", ""
	if sa != sb {
		t.Fatalf("continuation statuses diverge: %+v vs %+v", sa, sb)
	}
	if !bytes.Equal(getState(t, ts.URL, a.ID), getState(t, ts.URL, b.ID)) {
		t.Fatal("final snapshots diverge after identical continuations")
	}
}

func TestSessionStatePutErrors(t *testing.T) {
	s, ts := testServer(t, Config{})

	st := createSession(t, ts.URL, "PPM-hyb")
	if resp := putState(t, ts.URL, st.ID, []byte("not a snapshot")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload status = %d, want 400", resp.StatusCode)
	}

	// A snapshot of a different predictor family is a config mismatch, not
	// corruption: 409, telling the client to make a matching session.
	other := createSession(t, ts.URL, "BTB2b")
	snap := getState(t, ts.URL, other.ID)
	if resp := putState(t, ts.URL, st.ID, snap); resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched upload status = %d, want 409", resp.StatusCode)
	}

	if got := s.Stats().BadState; got != 2 {
		t.Errorf("bad_state = %d, want 2", got)
	}
	if resp := putState(t, ts.URL, "s-999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing session upload status = %d, want 404", resp.StatusCode)
	}
}

func TestSessionPredictErrors(t *testing.T) {
	_, ts := testServer(t, Config{})
	st := createSession(t, ts.URL, "")

	resp, err := http.Post(ts.URL+"/v1/sessions/"+st.ID+"/predict",
		"application/x-ibt2", strings.NewReader("definitely not IBT2"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload status = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/sessions/s-999/predict",
		"application/x-ibt2", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing session predict status = %d, want 404", resp.StatusCode)
	}
}

// TestSessionBusyConflict pins the single-owner engine claim: any predict or
// state request against a session already serving one is shed with 409.
func TestSessionBusyConflict(t *testing.T) {
	s, ts := testServer(t, Config{})
	st := createSession(t, ts.URL, "")

	sess, ok := s.lookupSession(st.ID)
	if !ok || !sess.acquire(now()) {
		t.Fatal("could not claim the session directly")
	}
	defer s.releaseSession(sess, -1)

	resp, err := http.Post(ts.URL+"/v1/sessions/"+st.ID+"/predict",
		"application/x-ibt2", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("busy predict status = %d, want 409", resp.StatusCode)
	}
	for _, m := range []string{http.MethodGet, http.MethodPut} {
		req, _ := http.NewRequest(m, ts.URL+"/v1/sessions/"+st.ID+"/state", strings.NewReader(""))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("busy state %s status = %d, want 409", m, resp.StatusCode)
		}
	}

	// Status and list read the published snapshot, never the engine: they
	// must keep answering while the session is busy.
	if code := sessionStatusCode(t, ts.URL, st.ID); code != http.StatusOK {
		t.Fatalf("busy status = %d, want 200", code)
	}
}

// TestSessionByteBudgetEviction is the regression test for session memory
// accounting: the byte budget must charge live predictor state
// (state.SizeOf), not just per-session metadata, so trained sessions are
// evicted on bytes long before the session-count cap is near.
func TestSessionByteBudgetEviction(t *testing.T) {
	p, _ := bench.NewPredictor("PPM-hyb")
	freshCharge := sessionOverheadBytes + int64(state.SizeOf(sim.New(p)))

	// Room for exactly two untrained sessions; MaxSessions stays at its
	// 4096 default, so any eviction below is byte-driven.
	s, ts := testServer(t, Config{SessionBytes: 2 * freshCharge})

	a := createSession(t, ts.URL, "PPM-hyb")
	predictStream(t, ts.URL, a.ID, benchRecords(t, "troff.ped", 600))

	grown := s.Stats().SessionBytes
	if grown <= freshCharge {
		t.Fatalf("session_bytes = %d after training, want > fresh charge %d (state growth must be accounted)",
			grown, freshCharge)
	}

	// The trained session plus a fresh one no longer fit, so admission must
	// evict the (only) idle session rather than blow the budget.
	b := createSession(t, ts.URL, "PPM-hyb")
	if code := sessionStatusCode(t, ts.URL, a.ID); code != http.StatusNotFound {
		t.Fatalf("trained session status = %d, want 404 (evicted for bytes)", code)
	}
	if code := sessionStatusCode(t, ts.URL, b.ID); code != http.StatusOK {
		t.Fatalf("new session status = %d, want 200", code)
	}
	stats := s.Stats()
	if stats.SessionsEvicted == 0 {
		t.Error("sessions_evicted = 0, want at least 1")
	}
	if stats.SessionBytes > 2*freshCharge {
		t.Errorf("session_bytes = %d exceeds budget %d", stats.SessionBytes, 2*freshCharge)
	}
	if stats.LiveSessions != 1 {
		t.Errorf("live_sessions = %d, want 1", stats.LiveSessions)
	}
}

// TestSessionBudgetExhausted429 pins the shed path when eviction cannot help.
func TestSessionBudgetExhausted429(t *testing.T) {
	_, ts := testServer(t, Config{SessionBytes: 1})
	if _, resp := tryCreateSession(t, ts.URL, ""); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create status = %d, want 429", resp.StatusCode)
	}
}

func TestSessionTableFullEvictsIdle(t *testing.T) {
	s, ts := testServer(t, Config{MaxSessions: 1})
	a := createSession(t, ts.URL, "")
	b := createSession(t, ts.URL, "")
	if code := sessionStatusCode(t, ts.URL, a.ID); code != http.StatusNotFound {
		t.Fatalf("first session status = %d, want 404 (evicted for the slot)", code)
	}

	// A busy session is never evicted: with the single slot claimed, the
	// table is hard-full and admission sheds.
	sess, _ := s.lookupSession(b.ID)
	if !sess.acquire(now()) {
		t.Fatal("could not claim the session")
	}
	defer s.releaseSession(sess, -1)
	if _, resp := tryCreateSession(t, ts.URL, ""); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create over a busy full table = %d, want 429", resp.StatusCode)
	}
}

func TestSessionTTLEviction(t *testing.T) {
	s, ts := testServer(t, Config{SessionTTL: 60 * time.Millisecond})
	st := createSession(t, ts.URL, "")

	deadline := time.Now().Add(5 * time.Second)
	for sessionStatusCode(t, ts.URL, st.ID) != http.StatusNotFound {
		if time.Now().After(deadline) {
			t.Fatal("session not TTL-evicted within 5s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	stats := s.Stats()
	if stats.SessionsEvicted == 0 || stats.LiveSessions != 0 || stats.SessionBytes != 0 {
		t.Fatalf("post-eviction stats = %+v", stats)
	}
}

func TestSessionCreateWhileDraining503(t *testing.T) {
	s, ts := testServer(t, Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, resp := tryCreateSession(t, ts.URL, ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining = %d, want 503", resp.StatusCode)
	}
}

func TestSessionStats(t *testing.T) {
	s, ts := testServer(t, Config{})
	st := createSession(t, ts.URL, "")
	recs := benchRecords(t, "eqn", 200)
	predictStream(t, ts.URL, st.ID, recs)
	getState(t, ts.URL, st.ID)
	closeSession(t, ts.URL, st.ID)

	stats := s.Stats()
	if stats.SessionsCreated != 1 || stats.SessionsClosed != 1 ||
		stats.StateSaves != 1 || stats.PredictRecords != uint64(len(recs)) {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.PredictP99MS < stats.PredictP50MS {
		t.Errorf("predict quantiles inverted: p50=%v p99=%v", stats.PredictP50MS, stats.PredictP99MS)
	}
}
