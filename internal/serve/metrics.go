package serve

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tracecache"
)

// P2 estimates one quantile of a stream in O(1) memory using the P²
// algorithm (Jain & Chlamtac, CACM 1985): five markers track the minimum,
// the quantile and the maximum plus two midpoints, and each observation
// nudges the middle markers toward their desired positions with a parabolic
// (or, failing monotonicity, linear) height adjustment. Good to a few
// percent on smooth distributions — exactly what a latency p50/p99 gauge
// needs, with no allocation after construction.
//
// The zero value is not usable; call NewP2. Not safe for concurrent use —
// latencySketch serializes access.
type P2 struct {
	p    float64    // target quantile in (0,1)
	n    int64      // observations so far
	pos  [5]float64 // actual marker positions (1-based)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments per observation
	q    [5]float64 // marker heights (the estimates)
}

// NewP2 returns a sketch for the given quantile. Panics if p is not in
// (0, 1).
func NewP2(p float64) *P2 {
	if p <= 0 || p >= 1 {
		panic("serve: P2 quantile must be in (0, 1)")
	}
	return &P2{
		p:    p,
		pos:  [5]float64{1, 2, 3, 4, 5},
		want: [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		inc:  [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// Observe folds one sample into the sketch.
func (s *P2) Observe(x float64) {
	s.n++
	if s.n <= 5 {
		// Bootstrap: the first five samples become the markers, sorted.
		s.q[s.n-1] = x
		if s.n == 5 {
			sort.Float64s(s.q[:])
		}
		return
	}

	// Locate the cell containing x, extending the extremes when needed.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0], k = x, 0
	case x >= s.q[4]:
		s.q[4], k = x, 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.want {
		s.want[i] += s.inc[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			if q := s.parabolic(i, sign); s.q[i-1] < q && q < s.q[i+1] {
				s.q[i] = q
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i one position in direction d (±1).
func (s *P2) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+d)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-d)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots a
// neighbouring marker.
func (s *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// Quantile returns the current estimate. With fewer than five observations
// it falls back to the exact order statistic of what has been seen; with
// none it returns 0.
func (s *P2) Quantile() float64 {
	if s.n == 0 {
		return 0
	}
	if s.n < 5 {
		tmp := make([]float64, s.n)
		copy(tmp, s.q[:s.n])
		sort.Float64s(tmp)
		idx := int(s.p * float64(s.n))
		if idx >= len(tmp) {
			idx = len(tmp) - 1
		}
		return tmp[idx]
	}
	return s.q[2]
}

// Count returns the number of observations folded in.
func (s *P2) Count() int64 { return s.n }

// latencySketch tracks job wall-clock latency quantiles.
type latencySketch struct {
	mu  sync.Mutex
	p50 *P2
	p99 *P2
}

func newLatencySketch() *latencySketch {
	return &latencySketch{p50: NewP2(0.50), p99: NewP2(0.99)}
}

func (l *latencySketch) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	l.mu.Lock()
	l.p50.Observe(ms)
	l.p99.Observe(ms)
	l.mu.Unlock()
}

func (l *latencySketch) quantiles() (p50, p99 float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p50.Quantile(), l.p99.Quantile()
}

// lineUint64 is an atomic.Uint64 alone on its cache line: the blank tail
// keeps the next field off the line, so concurrent writers bumping
// different counters never ping-pong a shared line. Embedding keeps the
// atomic's method set on the field.
type lineUint64 struct {
	atomic.Uint64
	_ [56]byte
}

// lineInt64 is the signed variant, for gauges.
type lineInt64 struct {
	atomic.Int64
	_ [56]byte
}

// metrics is the server's counter block. Everything is atomic so hot
// handlers never contend on a stats mutex, and every counter owns its cache
// line so they do not false-share either.
type metrics struct {
	started   lineUint64 // jobs admitted and started
	completed lineUint64 // jobs that reached StateDone
	cancelled lineUint64 // client cancels + drain aborts
	failed    lineUint64 // deadline or internal failures
	rejected  lineUint64 // 429 responses (admission + saturation)
	evicted   lineUint64 // TTL/capacity table evictions
	cells     lineUint64 // simulation cells completed
	queued    lineInt64  // cells waiting on a simulation slot
	uploads   lineUint64 // trace-upload jobs accepted
	badUpload lineUint64 // uploads rejected as truncated/corrupt

	sessCreated lineUint64 // live sessions created
	sessClosed  lineUint64 // live sessions closed by the client
	sessEvicted lineUint64 // live sessions evicted (TTL or byte budget)
	predictRecs lineUint64 // records streamed through live predict calls
	stateSaves  lineUint64 // session state snapshot downloads
	stateLoads  lineUint64 // session warm-start snapshot uploads
	badState    lineUint64 // snapshot uploads rejected (corrupt/mismatch)

	latency        *latencySketch // job wall-clock, submit to terminal
	predictLatency *latencySketch // live predict requests, body to done
}

// Stats is the JSON shape of /statsz and the expvar surface.
type Stats struct {
	JobsStarted    uint64  `json:"jobs_started"`
	JobsCompleted  uint64  `json:"jobs_completed"`
	JobsCancelled  uint64  `json:"jobs_cancelled"`
	JobsFailed     uint64  `json:"jobs_failed"`
	Rejected       uint64  `json:"rejected"`
	Evicted        uint64  `json:"evicted"`
	Cells          uint64  `json:"cells"`
	QueueDepth     int64   `json:"queue_depth"`
	Uploads        uint64  `json:"uploads"`
	BadUploads     uint64  `json:"bad_uploads"`
	ActiveJobs     int     `json:"active_jobs"`
	TableJobs      int     `json:"table_jobs"`
	Draining       bool    `json:"draining"`
	LatencyP50MS   float64 `json:"latency_p50_ms"`
	LatencyP99MS   float64 `json:"latency_p99_ms"`
	LatencySamples int64   `json:"latency_samples"`
	// Live prediction sessions: table occupancy, the summed byte charge
	// (serialized predictor state + per-session overhead) against
	// Config.SessionBytes, traffic counters and predict-call latency.
	LiveSessions    int     `json:"live_sessions"`
	SessionBytes    int64   `json:"session_bytes"`
	SessionsCreated uint64  `json:"sessions_created"`
	SessionsClosed  uint64  `json:"sessions_closed"`
	SessionsEvicted uint64  `json:"sessions_evicted"`
	PredictRecords  uint64  `json:"predict_records"`
	StateSaves      uint64  `json:"state_saves"`
	StateLoads      uint64  `json:"state_loads"`
	BadState        uint64  `json:"bad_state"`
	PredictP50MS    float64 `json:"predict_p50_ms"`
	PredictP99MS    float64 `json:"predict_p99_ms"`
	// Cache re-exports the trace cache's own traffic counters.
	Cache tracecache.Stats `json:"tracecache"`
}

// Stats snapshots the server's counters, gauges and cache traffic.
func (s *Server) Stats() Stats {
	p50, p99 := s.met.latency.quantiles()
	s.met.latency.mu.Lock()
	samples := s.met.latency.p50.Count()
	s.met.latency.mu.Unlock()

	pp50, pp99 := s.met.predictLatency.quantiles()

	s.mu.Lock()
	table := len(s.jobs)
	active := 0
	for _, j := range s.jobs { //lint:sorted commutative count; iteration order cannot matter
		j.mu.Lock()
		if !j.terminalLocked() {
			active++
		}
		j.mu.Unlock()
	}
	liveSessions := len(s.sessions)
	sessBytes := s.sessBytes
	draining := s.draining
	s.mu.Unlock()

	return Stats{
		JobsStarted:    s.met.started.Load(),
		JobsCompleted:  s.met.completed.Load(),
		JobsCancelled:  s.met.cancelled.Load(),
		JobsFailed:     s.met.failed.Load(),
		Rejected:       s.met.rejected.Load(),
		Evicted:        s.met.evicted.Load(),
		Cells:          s.met.cells.Load(),
		QueueDepth:     s.met.queued.Load(),
		Uploads:        s.met.uploads.Load(),
		BadUploads:     s.met.badUpload.Load(),
		ActiveJobs:     active,
		TableJobs:      table,
		Draining:       draining,
		LatencyP50MS:   p50,
		LatencyP99MS:   p99,
		LatencySamples: samples,

		LiveSessions:    liveSessions,
		SessionBytes:    sessBytes,
		SessionsCreated: s.met.sessCreated.Load(),
		SessionsClosed:  s.met.sessClosed.Load(),
		SessionsEvicted: s.met.sessEvicted.Load(),
		PredictRecords:  s.met.predictRecs.Load(),
		StateSaves:      s.met.stateSaves.Load(),
		StateLoads:      s.met.stateLoads.Load(),
		BadState:        s.met.badState.Load(),
		PredictP50MS:    pp50,
		PredictP99MS:    pp99,

		Cache: s.cache.Stats(),
	}
}

// Vars wraps Stats as an expvar.Var so a caller can expvar.Publish it;
// publication is left to the binary (cmd/ppmserved) because the expvar
// registry is process-global and panics on duplicate names, which embedded
// and test servers must not risk.
func (s *Server) Vars() expvar.Var {
	return expvar.Func(func() any { return s.Stats() })
}
