package serve

import (
	"math"
	"sort"
	"testing"
	"time"
)

// splitmix64 gives the tests a deterministic stream without math/rand.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

func TestP2PanicsOutsideUnitInterval(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) did not panic", p)
				}
			}()
			NewP2(p)
		}()
	}
}

func TestP2SmallSampleExact(t *testing.T) {
	s := NewP2(0.5)
	if s.Quantile() != 0 {
		t.Fatalf("empty sketch quantile = %v", s.Quantile())
	}
	s.Observe(9)
	s.Observe(1)
	s.Observe(5)
	// With fewer than five samples the estimate is the exact order
	// statistic of what has been seen.
	if got := s.Quantile(); got != 5 {
		t.Errorf("median of {9,1,5} = %v, want 5", got)
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
}

// TestP2TracksKnownQuantiles feeds deterministic streams and checks the
// estimate against the exact order statistic within the few-percent error
// P² promises.
func TestP2TracksKnownQuantiles(t *testing.T) {
	const n = 20_000
	streams := map[string]func(rng *splitmix64) float64{
		"uniform": func(rng *splitmix64) float64 { return rng.float() * 100 },
		// Heavy right tail, the shape job latencies actually have.
		"exponential-ish": func(rng *splitmix64) float64 {
			return -25 * math.Log(1-rng.float())
		},
	}
	for name, gen := range streams {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			rng := splitmix64(0x5eed)
			sketch := NewP2(p)
			exact := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				x := gen(&rng)
				sketch.Observe(x)
				exact = append(exact, x)
			}
			sort.Float64s(exact)
			want := exact[int(p*float64(n))]
			got := sketch.Quantile()
			// Tolerance: 5% of the exact value, floored for tiny quantiles.
			tol := 0.05 * want
			if tol < 0.5 {
				tol = 0.5
			}
			if math.Abs(got-want) > tol {
				t.Errorf("%s p%g: sketch %.3f vs exact %.3f (tol %.3f)", name, p*100, got, want, tol)
			}
		}
	}
}

func TestP2MonotoneInQuantile(t *testing.T) {
	rng := splitmix64(42)
	p50, p90, p99 := NewP2(0.5), NewP2(0.9), NewP2(0.99)
	for i := 0; i < 5_000; i++ {
		x := rng.float() * 1000
		p50.Observe(x)
		p90.Observe(x)
		p99.Observe(x)
	}
	if !(p50.Quantile() < p90.Quantile() && p90.Quantile() < p99.Quantile()) {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v",
			p50.Quantile(), p90.Quantile(), p99.Quantile())
	}
}

func TestLatencySketch(t *testing.T) {
	l := newLatencySketch()
	for i := 1; i <= 100; i++ {
		l.observe(time.Duration(i) * time.Millisecond)
	}
	p50, p99 := l.quantiles()
	if p50 < 40 || p50 > 60 {
		t.Errorf("p50 = %v ms, want ~50", p50)
	}
	if p99 < 90 || p99 > 100 {
		t.Errorf("p99 = %v ms, want ~99", p99)
	}
}
