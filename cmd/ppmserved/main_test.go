package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRunServesAndDrainsOnSIGTERM boots the daemon on an ephemeral port,
// submits a job, delivers a real SIGTERM and expects a clean drain: exit 0,
// the drain messages on stderr, and the job's results intact until the
// process winds down.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	var stderr bytes.Buffer
	ready := make(chan net.Addr, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "10s"}, &stderr, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// The expvar surface carries the published serve stats.
	vresp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	if _, ok := vars["ppmserved"]; !ok {
		t.Error("expvar surface missing the ppmserved stats")
	}

	// Run one job through so the drain has completed state to preserve.
	sresp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"workloads":["eqn"],"events":300}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	rresp, err := http.Get(base + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stream), `"state":"done"`) {
		t.Fatalf("job did not complete:\n%s", stream)
	}

	// run's signal.NotifyContext has this registered, so the default
	// terminate-the-process behaviour is suppressed.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d, want 0; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	for _, want := range []string{"listening on", "draining", "stopped"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-nope"}, &stderr, nil); code != 2 {
		t.Errorf("bad flag exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.0.0.1:99999"}, &stderr, nil); code != 1 {
		t.Errorf("unlistenable addr exit %d, want 1", code)
	}
}
