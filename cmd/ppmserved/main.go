// Command ppmserved runs the prediction-simulation service (internal/serve)
// as a long-lived HTTP daemon.
//
//	ppmserved -addr :8100
//
// Jobs are submitted and streamed per the internal/serve HTTP surface (see
// README.md "Serving"); cmd/ppmctl is the matching client. The daemon wires
// in the operational endpoints — /healthz, /readyz, /statsz and
// /debug/vars (the serve stats published under the "ppmserved" expvar
// name) — and turns SIGINT/SIGTERM into a graceful drain: readiness flips
// to 503 immediately, in-flight jobs run to completion, and after
// -drain-timeout any stragglers are aborted and the process exits non-zero
// so supervisors can tell a clean drain from a forced one.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// publishOnce guards the process-global expvar registry, which panics on a
// duplicate name; tests call run more than once per process.
var publishOnce sync.Once

// errDrainElapsed is the cause carried by the drain context's deadline, so
// context.Cause names the drain budget rather than a bare DeadlineExceeded.
var errDrainElapsed = errors.New("ppmserved: drain timeout elapsed")

// run starts the daemon and blocks until a shutdown signal or listener
// failure. ready, when non-nil, receives the bound address once the server
// is listening (a test seam; main passes nil).
func run(args []string, stderr io.Writer, ready chan<- net.Addr) int {
	fs := flag.NewFlagSet("ppmserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8100", "listen address")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "bound on draining in-flight jobs at shutdown")
		maxConc      = fs.Int("max-concurrent", 0, "simulation cells in flight across all jobs (0 = GOMAXPROCS)")
		maxActive    = fs.Int("max-active", 0, "active jobs before submissions are shed with 429 (0 = default)")
		maxJobs      = fs.Int("max-jobs", 0, "session-table bound, finished jobs included (0 = default)")
		jobTTL       = fs.Duration("job-ttl", 0, "retention of finished jobs and their results (0 = default)")
		jobTimeout   = fs.Duration("job-timeout", 0, "per-job deadline (0 = default)")
		cacheMB      = fs.Int("cache-mb", 0, "trace cache budget in MiB (0 = default)")
		maxEvents    = fs.Int("max-events", 0, "cap on per-run dispatch events in a job spec (0 = default)")
		maxUploadMB  = fs.Int64("max-upload-mb", 0, "cap on an uploaded trace body in MiB (0 = default)")
		maxSessions  = fs.Int("max-sessions", 0, "live prediction sessions held at once (0 = default)")
		sessionMB    = fs.Int64("session-mb", 0, "memory budget for live session state in MiB (0 = default)")
		sessionTTL   = fs.Duration("session-ttl", 0, "idle live-session retention (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ppmserved:", err)
		return 1
	}
	srv := serve.New(serve.Config{
		MaxConcurrent:  *maxConc,
		MaxActive:      *maxActive,
		MaxJobs:        *maxJobs,
		JobTTL:         *jobTTL,
		JobTimeout:     *jobTimeout,
		CacheBytes:     int64(*cacheMB) << 20,
		MaxEvents:      *maxEvents,
		MaxUploadBytes: *maxUploadMB << 20,
		MaxSessions:    *maxSessions,
		SessionBytes:   *sessionMB << 20,
		SessionTTL:     *sessionTTL,
	})
	publishOnce.Do(func() { expvar.Publish("ppmserved", srv.Vars()) })

	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stderr, "ppmserved: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	//ppm:daemon bounded by the listener: Serve returns when Shutdown/Close closes ln, and the send is buffered
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "ppmserved:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of re-draining

	fmt.Fprintf(stderr, "ppmserved: draining (timeout %s)\n", *drainTimeout)
	// Carry an explicit cause so anything inspecting context.Cause on the
	// drain context sees the drain budget, not a bare DeadlineExceeded.
	dctx, cancel := context.WithTimeoutCause(context.Background(), *drainTimeout, errDrainElapsed)
	defer cancel()
	code := 0
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "ppmserved: drain timed out; in-flight jobs aborted")
		code = 1
	}
	// Jobs are terminal, so result streams have emitted their done events;
	// now close the listener and let connections wind down.
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := hs.Shutdown(hctx); err != nil {
		_ = hs.Close() // best effort; the graceful path already failed
	}
	fmt.Fprintln(stderr, "ppmserved: stopped")
	return code
}
