// Command escapegate is the compiler escape-budget gate: it runs the Go
// compiler's escape analysis (`go build -gcflags=-m=1`) over the hot-path
// packages, normalizes the "escapes to heap" / "moved to heap" diagnostics
// into a stable form (line and column numbers stripped, occurrences
// counted), and compares the result against the checked-in baseline
// internal/lint/escapes.baseline.
//
// The gate fails when any package gains a heap escape the baseline does not
// budget for, so an accidental allocation on the per-lookup path fails CI
// even when it slips past the AST-level hotpath analyzer (e.g. an escaping
// value the compiler can prove but syntax cannot). Intentional changes are
// recorded with `make escapes-update` (escapegate -update), and the shrunk
// or grown baseline is reviewed like any other diff.
//
// Usage:
//
//	escapegate [-baseline file] [-update] [packages...]
//
// With no packages, the default hot-path package set is gated.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// defaultBaseline is the checked-in escape budget.
const defaultBaseline = "internal/lint/escapes.baseline"

// hotPackages are the packages containing hot-path code (predictors, their
// tables, the per-record engine, and the serving loop that streams uploaded
// traces through it); construction-only and reporting packages are not
// gated.
var hotPackages = []string{
	"./internal/btb",
	"./internal/cascade",
	"./internal/cbt",
	"./internal/core",
	"./internal/counter",
	"./internal/hashing",
	"./internal/history",
	"./internal/predictor",
	"./internal/ras",
	"./internal/serve",
	"./internal/sim",
	"./internal/stats",
	"./internal/twolevel",
}

// diagLine matches one compiler diagnostic: file.go:line:col: message.
var diagLine = regexp.MustCompile(`^(.+\.go):\d+:(?:\d+:)? (.+)$`)

func main() {
	baseline := flag.String("baseline", defaultBaseline, "baseline file to compare against or update")
	update := flag.Bool("update", false, "rewrite the baseline from the current tree instead of gating")
	flag.Parse()

	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = hotPackages
	}

	current, err := collect(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "escapegate:", err)
		os.Exit(2)
	}

	if *update {
		if err := writeBaseline(*baseline, current); err != nil {
			fmt.Fprintln(os.Stderr, "escapegate:", err)
			os.Exit(2)
		}
		fmt.Printf("escapegate: wrote %d budgeted escapes to %s\n", total(current), *baseline)
		return
	}

	budget, err := readBaseline(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "escapegate: %v (run `make escapes-update` to create the baseline)\n", err)
		os.Exit(2)
	}
	if failed := gate(current, budget); failed {
		os.Exit(1)
	}
	fmt.Printf("escapegate: %d heap escapes within budget across %d packages\n", total(current), len(pkgs))
}

// collect compiles pkgs with -m=1 and returns the normalized escape
// diagnostics as key -> occurrence count. The build cache replays compiler
// diagnostics, so a warm cache still yields the full set.
func collect(pkgs []string) (map[string]int, error) {
	args := append([]string{"build", "-gcflags=-m=1"}, pkgs...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(stderr.Bytes())
		return nil, fmt.Errorf("go build: %v", err)
	}

	counts := map[string]int{}
	sc := bufio.NewScanner(&stderr)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file, msg := m[1], m[2]
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		counts[file+"\t"+msg]++
	}
	return counts, sc.Err()
}

// gate reports violations of the budget, returning true when any key's
// count grew or appeared. Shrinkage is advisory: the baseline should be
// tightened with -update but stale slack does not fail the build.
func gate(current, budget map[string]int) (failed bool) {
	keys := make([]string, 0, len(current))
	for k := range current {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if current[k] > budget[k] {
			failed = true
			fmt.Fprintf(os.Stderr, "escapegate: new heap escape (%d > budget %d): %s\n",
				current[k], budget[k], strings.ReplaceAll(k, "\t", ": "))
		}
	}

	var slack []string
	for k, n := range budget {
		if current[k] < n {
			slack = append(slack, k)
		}
	}
	sort.Strings(slack)
	for _, k := range slack {
		fmt.Printf("escapegate: note: budget has slack (%d budgeted, %d present): %s\n",
			budget[k], current[k], strings.ReplaceAll(k, "\t", ": "))
	}
	if len(slack) > 0 {
		fmt.Println("escapegate: note: run `make escapes-update` to tighten the baseline")
	}
	if failed {
		fmt.Fprintln(os.Stderr, "escapegate: hot-path packages gained heap escapes; fix them or, if intentional, run `make escapes-update` and commit the diff")
	}
	return failed
}

// writeBaseline renders counts in the stable on-disk form:
// "<count>\t<file>\t<message>" lines, sorted.
func writeBaseline(path string, counts map[string]int) error {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var b strings.Builder
	b.WriteString("# Heap-escape budget for hot-path packages, one diagnostic per line:\n")
	b.WriteString("# <count>\\t<file>\\t<compiler message> (line/column stripped).\n")
	b.WriteString("# Generated by `make escapes-update`; checked by `make escapes-check`.\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%d\t%s\n", counts[k], k)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readBaseline parses the on-disk form back into key -> count.
func readBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, key, ok := strings.Cut(line, "\t")
		c, err := strconv.Atoi(n)
		if !ok || err != nil {
			return nil, fmt.Errorf("%s:%d: malformed baseline line %q", path, i+1, line)
		}
		counts[key] += c
	}
	return counts, nil
}

// total sums all budgeted occurrences.
func total(counts map[string]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}
