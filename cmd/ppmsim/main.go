// Command ppmsim runs indirect-branch predictors over a benchmark run or a
// recorded trace file and reports misprediction statistics:
//
//	ppmsim -bench troff.ped                        # paper predictors on one run
//	ppmsim -bench photon -predictors PPM-hyb,BTB   # chosen predictors
//	ppmsim -trace run.ibt                          # from a trace file
//	ppmsim -bench eon -events 200000 -components   # PPM component split
//	ppmsim -list                                   # available runs/predictors
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		benchName  = flag.String("bench", "", "benchmark run name (see -list)")
		traceFile  = flag.String("trace", "", "IBT1 trace file to simulate instead of a benchmark")
		events     = flag.Int("events", bench.DefaultEvents, "dispatch events when generating a benchmark")
		predNames  = flag.String("predictors", "", "comma-separated predictor names (default: the Figure 6 set)")
		components = flag.Bool("components", false, "print the PPM Markov component distribution")
		list       = flag.Bool("list", false, "list benchmarks and predictors")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmark runs:")
		for _, cfg := range bench.Suite() {
			fmt.Printf("  %s\n", cfg.String())
		}
		fmt.Println("predictors:")
		for _, n := range bench.PredictorNames() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	preds := buildPredictors(*predNames)
	eng := sim.New(preds...)

	var source string
	switch {
	case *traceFile != "":
		source = *traceFile
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close() //lint:closeerr read-only trace input; Close cannot lose data
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		if err := eng.ProcessReader(r); err != nil {
			fatal(err)
		}
	case *benchName != "":
		cfg, ok := bench.ByName(*benchName)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q (try -list)", *benchName))
		}
		cfg.Events = *events
		source = cfg.String()
		cfg.Generate(eng.Process)
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("source: %s (%d branch records, %.2fM instructions)\n\n",
		source, eng.Records(), float64(eng.Instructions())/1e6)
	t := report.NewTable("", "predictor", "mispred %", "wrong", "no-pred", "MT branches")
	for _, c := range eng.Counters() {
		t.AddRowf(c.Predictor, 100*c.MispredictionRatio(), c.Wrong, c.NoPrediction, c.Lookups)
	}
	t.Render(os.Stdout)

	if hits, total := eng.RAS().Accuracy(); total > 0 {
		fmt.Printf("\nRAS returns: %d/%d correct (%.2f%%)\n", hits, total, 100*float64(hits)/float64(total))
	}

	if *components {
		for _, p := range preds {
			ppm, ok := p.(*core.PPM)
			if !ok {
				continue
			}
			st := ppm.Stats()
			var total uint64
			for _, a := range st.Accesses {
				total += a
			}
			if total == 0 {
				continue
			}
			fmt.Printf("\n%s component access distribution:\n", ppm.Name())
			for order := ppm.Order(); order >= 0; order-- {
				if st.Accesses[order] == 0 {
					continue
				}
				fmt.Printf("  order %2d: %6.2f%% accesses, %d misses\n",
					order, 100*float64(st.Accesses[order])/float64(total), st.Misses[order])
			}
			if none := st.Accesses[ppm.Order()+1]; none > 0 {
				fmt.Printf("  none    : %6.2f%%\n", 100*float64(none)/float64(total))
			}
		}
	}
}

func buildPredictors(spec string) []predictor.IndirectPredictor {
	names := bench.PredictorNames()[:7] // the Figure 6 set
	if spec != "" {
		names = strings.Split(spec, ",")
	}
	var preds []predictor.IndirectPredictor
	for _, n := range names {
		n = strings.TrimSpace(n)
		p, ok := bench.NewPredictor(n)
		if !ok {
			fatal(fmt.Errorf("unknown predictor %q (try -list)", n))
		}
		preds = append(preds, p)
	}
	return preds
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppmsim:", err)
	os.Exit(1)
}
