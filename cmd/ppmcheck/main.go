// Command ppmcheck is the simulator's correctness harness: it hunts for
// disagreements between the optimized predictors and their naive references,
// between the block engine and the record engine, and between
// snapshot/restore-at-every-cut chains and uncut runs; it replays the
// checked-in regression corpus, runs the metamorphic properties (caching,
// worker count, serving and session granularity must never change a result
// byte), and sweeps fault injection across the trace decoder and the upload
// path.
//
//	ppmcheck -quick              the bounded CI pass (corpus + small sweeps)
//	ppmcheck -seeds 500          a long differential hunt
//	ppmcheck -families PPM-hyb   restrict the differential hunt
//	ppmcheck -corpus DIR         corpus location (default internal/check/testdata/corpus)
//
// When the differential oracle finds a divergence, ppmcheck minimizes the
// failing trace with delta debugging, writes it into the corpus as a new
// seed (diff-<family>-seed<N>), and exits nonzero: the bug becomes a
// regression test before it is even fixed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/trace"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "bounded pass: corpus replay, small differential/metamorphic/fault sweeps")
		seeds    = flag.Int("seeds", 50, "random seeds per family for the differential hunt")
		events   = flag.Int("events", 2000, "records per generated trace")
		families = flag.String("families", "", "comma-separated predictor families (default all)")
		corpus   = flag.String("corpus", "internal/check/testdata/corpus", "regression-seed corpus directory")
	)
	flag.Parse()

	if *quick {
		*seeds, *events = 6, 800
	}
	fams := check.Families()
	// The snapshot hunt also covers the snapshot-capable extension
	// predictors; -families restricts both hunts to the same list.
	stateFams := check.StateFamilies()
	if *families != "" {
		fams = strings.Split(*families, ",")
		stateFams = fams
	}

	ok := true
	ok = replayCorpus(*corpus) && ok
	ok = diffHunt(fams, *seeds, *events, *corpus) && ok
	ok = blocksHunt(fams, *seeds, *events, *corpus) && ok
	ok = stateHunt(stateFams, *seeds, *events, *corpus) && ok
	ok = run("metamorphic", check.Metamorphic(1, *events)) && ok
	ok = run("truncation sweep", check.TruncationSweep(check.RandomRecords(9, 60), nil)) && ok
	ok = run("errafter sweep", check.ErrAfterSweep(check.RandomRecords(9, 60))) && ok
	ok = uploadSweep() && ok
	if !ok {
		os.Exit(1)
	}
	fmt.Println("ppmcheck: all checks passed")
}

// run reports one named check.
func run(name string, err error) bool {
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", name, err)
		return false
	}
	fmt.Printf("ok   %s\n", name)
	return true
}

// replayCorpus re-runs every checked-in regression seed.
func replayCorpus(dir string) bool {
	seeds, err := check.LoadSeeds(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL corpus: %v\n", err)
		return false
	}
	ok := true
	for _, e := range seeds {
		if err := check.ReplaySeed(e); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL corpus seed %s: %v\n", e.Seed.Name, err)
			ok = false
		}
	}
	if ok {
		fmt.Printf("ok   corpus (%d seeds)\n", len(seeds))
	}
	return ok
}

// diffHunt lock-steps every family against its reference over randomized
// traces; a divergence is minimized and written back into the corpus.
func diffHunt(fams []string, seeds, events int, corpusDir string) bool {
	ok := true
	for _, fam := range fams {
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			for _, in := range []struct {
				kind string
				recs []trace.Record
			}{
				{"workload", check.RandomTrace(seed, events)},
				{"raw", check.RandomRecords(seed, events)},
			} {
				d, err := check.DiffFamily(fam, in.recs)
				if err != nil {
					fmt.Fprintf(os.Stderr, "FAIL differential %s: %v\n", fam, err)
					return false
				}
				if d == nil {
					continue
				}
				ok = false
				min := check.Shrink(in.recs, func(r []trace.Record) bool { return check.Diverges(fam, r) })
				fmt.Fprintf(os.Stderr, "FAIL differential %s (%s seed %d): %s\n  minimized to %d records\n", fam, in.kind, seed, d, len(min))
				seedName := fmt.Sprintf("diff-%s-seed%d", strings.ToLower(fam), seed)
				werr := check.WriteSeed(corpusDir, check.Seed{
					Name: seedName, Family: fam, Kind: "diff",
					Note: fmt.Sprintf("minimized divergence found by ppmcheck (%s stream, seed %d)", in.kind, seed),
				}, min)
				if werr != nil {
					fmt.Fprintf(os.Stderr, "  (could not write corpus seed: %v)\n", werr)
				} else {
					fmt.Fprintf(os.Stderr, "  repro written to %s/%s.{json,ibt2}\n", corpusDir, seedName)
				}
			}
		}
	}
	if ok {
		fmt.Printf("ok   differential (%d families x %d seeds x 2 streams)\n", len(fams), seeds)
	}
	return ok
}

// blocksHunt lock-steps every family's block-engine replay against its
// record-engine replay over randomized traces; a divergence is minimized
// against the block predicate and written back into the corpus.
func blocksHunt(fams []string, seeds, events int, corpusDir string) bool {
	ok := true
	for _, fam := range fams {
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			for _, in := range []struct {
				kind string
				recs []trace.Record
			}{
				{"workload", check.RandomTrace(seed, events)},
				{"raw", check.RandomRecords(seed, events)},
			} {
				d, err := check.DiffBlocks(fam, in.recs)
				if err != nil {
					fmt.Fprintf(os.Stderr, "FAIL blocks-vs-records %s: %v\n", fam, err)
					return false
				}
				if d == nil {
					continue
				}
				ok = false
				min := check.Shrink(in.recs, func(r []trace.Record) bool { return check.DivergesBlocks(fam, r) })
				fmt.Fprintf(os.Stderr, "FAIL blocks-vs-records %s (%s seed %d): %s\n  minimized to %d records\n", fam, in.kind, seed, d, len(min))
				seedName := fmt.Sprintf("blocks-%s-seed%d", strings.ToLower(fam), seed)
				werr := check.WriteSeed(corpusDir, check.Seed{
					Name: seedName, Family: fam, Kind: "blocks",
					Note: fmt.Sprintf("minimized block-engine divergence found by ppmcheck (%s stream, seed %d)", in.kind, seed),
				}, min)
				if werr != nil {
					fmt.Fprintf(os.Stderr, "  (could not write corpus seed: %v)\n", werr)
				} else {
					fmt.Fprintf(os.Stderr, "  repro written to %s/%s.{json,ibt2}\n", corpusDir, seedName)
				}
			}
		}
	}
	if ok {
		fmt.Printf("ok   blocks-vs-records (%d families x %d seeds x 2 streams)\n", len(fams), seeds)
	}
	return ok
}

// stateHunt lock-steps every family's snapshot/restore-at-every-cut chain
// against its uncut replay over randomized traces; a divergence is minimized
// against the snapshot predicate and written back into the corpus.
func stateHunt(fams []string, seeds, events int, corpusDir string) bool {
	ok := true
	for _, fam := range fams {
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			for _, in := range []struct {
				kind string
				recs []trace.Record
			}{
				{"workload", check.RandomTrace(seed, events)},
				{"raw", check.RandomRecords(seed, events)},
			} {
				d, err := check.DiffState(fam, in.recs)
				if err != nil {
					fmt.Fprintf(os.Stderr, "FAIL snapshot-restore %s: %v\n", fam, err)
					return false
				}
				if d == nil {
					continue
				}
				ok = false
				min := check.Shrink(in.recs, func(r []trace.Record) bool { return check.DivergesState(fam, r) })
				fmt.Fprintf(os.Stderr, "FAIL snapshot-restore %s (%s seed %d): %s\n  minimized to %d records\n", fam, in.kind, seed, d, len(min))
				seedName := fmt.Sprintf("state-%s-seed%d", strings.ToLower(fam), seed)
				werr := check.WriteSeed(corpusDir, check.Seed{
					Name: seedName, Family: fam, Kind: "state",
					Note: fmt.Sprintf("minimized snapshot/restore divergence found by ppmcheck (%s stream, seed %d)", in.kind, seed),
				}, min)
				if werr != nil {
					fmt.Fprintf(os.Stderr, "  (could not write corpus seed: %v)\n", werr)
				} else {
					fmt.Fprintf(os.Stderr, "  repro written to %s/%s.{json,ibt2}\n", corpusDir, seedName)
				}
			}
		}
	}
	if ok {
		fmt.Printf("ok   snapshot-restore (%d families x %d seeds x 2 streams)\n", len(fams), seeds)
	}
	return ok
}

// uploadSweep runs the HTTP upload truncation sweep.
func uploadSweep() bool {
	report, err := check.UploadTruncationSweep(check.RandomRecords(9, 40), "BTB")
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL upload sweep: %v\n", err)
		return false
	}
	fmt.Printf("ok   upload sweep (%d clean prefixes, %d rejected cuts, 0 leaked jobs)\n", report.Accepted, report.Rejected)
	return true
}
