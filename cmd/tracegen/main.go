// Command tracegen generates a synthetic benchmark run and writes it to
// disk in the compact IBT2 binary trace format, for replay with ppmsim or
// upload to ppmserved:
//
//	tracegen -bench perl.exp -events 500000 -o perl.ibt
//	ppmsim -trace perl.ibt
//	tracegen -bench troff.ped -o - | ppmctl submit -trace -
//
// -o - writes the trace to standard output (the report line moves to
// stderr). Every write, flush and close error — including a broken pipe —
// propagates to a non-zero exit code, so shell pipelines can trust $?.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges injected: args without the program name, the
// stdout stream -o - encodes to, and the stderr stream diagnostics go to.
// It returns the process exit code instead of calling os.Exit so tests can
// drive it against failing writers (e.g. a pre-closed pipe).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "", "benchmark run name (see ppmsim -list)")
		events    = fs.Int("events", bench.DefaultEvents, "dispatch events to generate")
		out       = fs.String("o", "", `output file, or "-" for stdout (required)`)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *benchName == "" || *out == "" {
		fs.Usage()
		return 2
	}
	cfg, ok := bench.ByName(*benchName)
	if !ok {
		fmt.Fprintf(stderr, "tracegen: unknown benchmark %q\n", *benchName)
		return 1
	}
	cfg.Events = *events

	var (
		dst    io.Writer
		report io.Writer = stdout
		sum    workload.Summary
		size   int64
		err    error
	)
	if *out == "-" {
		// The trace owns stdout; the human-readable report yields to stderr.
		dst, report = stdout, stderr
		sum, err = writeTrace(cfg, dst)
	} else {
		sum, size, err = writeTraceFile(cfg, *out)
	}
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	if *out == "-" {
		fmt.Fprintf(report, "%s: %d records (%d MT indirect, %.2fM instructions) -> stdout\n",
			cfg.String(), sum.Records, sum.MTDynamic, float64(sum.Instructions)/1e6)
		return 0
	}
	fmt.Fprintf(report, "%s: %d records (%d MT indirect, %.2fM instructions) -> %s (%.1f KiB, %.2f bytes/record)\n",
		cfg.String(), sum.Records, sum.MTDynamic, float64(sum.Instructions)/1e6,
		*out, float64(size)/1024, float64(size)/float64(sum.Records))
	return 0
}

// writeTrace encodes the run to w, surfacing the first write error and any
// flush error. The record stream keeps generating after a write fails (the
// generator has no abort path) but encoding stops at the first error, so a
// broken pipe costs wasted cycles, never a corrupt exit status.
func writeTrace(cfg workload.Config, dst io.Writer) (workload.Summary, error) {
	w, err := trace.NewWriter(dst)
	if err != nil {
		return workload.Summary{}, err
	}
	var writeErr error
	sum := cfg.Generate(func(r trace.Record) {
		if writeErr == nil {
			writeErr = w.Write(r)
		}
	})
	if writeErr != nil {
		return sum, writeErr
	}
	return sum, w.Flush()
}

// writeTraceFile encodes the run to a fresh file and returns its size. The
// close error is checked even on the success path: with a buffered writer
// flushed, close is where a full disk or revoked descriptor finally
// surfaces.
func writeTraceFile(cfg workload.Config, path string) (workload.Summary, int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return workload.Summary{}, 0, err
	}
	sum, werr := writeTrace(cfg, f)
	cerr := f.Close()
	if werr != nil {
		return sum, 0, werr
	}
	if cerr != nil {
		return sum, 0, cerr
	}
	fi, err := os.Stat(path)
	if err != nil {
		return sum, 0, err
	}
	return sum, fi.Size(), nil
}
