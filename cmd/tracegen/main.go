// Command tracegen generates a synthetic benchmark run and writes it to
// disk in the compact IBT1 binary trace format, for replay with ppmsim:
//
//	tracegen -bench perl.exp -events 500000 -o perl.ibt
//	ppmsim -trace perl.ibt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/trace"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark run name (see ppmsim -list)")
		events    = flag.Int("events", bench.DefaultEvents, "dispatch events to generate")
		out       = flag.String("o", "", "output file (required)")
	)
	flag.Parse()

	if *benchName == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg, ok := bench.ByName(*benchName)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q", *benchName))
	}
	cfg.Events = *events

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		fatal(err)
	}
	var writeErr error
	sum := cfg.Generate(func(r trace.Record) {
		if writeErr == nil {
			writeErr = w.Write(r)
		}
	})
	if writeErr != nil {
		fatal(writeErr)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d records (%d MT indirect, %.2fM instructions) -> %s (%.1f KiB, %.2f bytes/record)\n",
		cfg.String(), sum.Records, sum.MTDynamic, float64(sum.Instructions)/1e6,
		*out, float64(fi.Size())/1024, float64(fi.Size())/float64(sum.Records))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
