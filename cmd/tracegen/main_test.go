package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/trace"
)

// TestRunWritesValidTrace round-trips the happy path through a temp file.
func TestRunWritesValidTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.ibt")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bench", "troff.ped", "-events", "200", "-o", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("trace file decoded to zero records")
	}
}

// TestRunStdoutPipe drives -o - into a live pipe and checks the stream
// decodes; the report line must land on stderr, not corrupt the trace.
func TestRunStdoutPipe(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bench", "troff.ped", "-events", "100", "-o", "-"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	r, err := trace.NewReader(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatalf("stdout is not a valid trace: %v", err)
	}
	if _, err := r.ReadAll(); err != nil {
		t.Fatalf("stdout trace does not decode: %v", err)
	}
	if stderr.Len() == 0 {
		t.Error("report line missing from stderr under -o -")
	}
}

// TestRunBrokenPipeExitsNonZero is the regression the server depends on: a
// trace written to a pipe whose read end is already closed must surface the
// write/flush error as a non-zero exit code, not report success.
func TestRunBrokenPipeExitsNonZero(t *testing.T) {
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(); err != nil { // pre-close the read end: EPIPE on write
		t.Fatal(err)
	}
	defer pw.Close()

	var stderr bytes.Buffer
	// Enough events that the encoder must actually hit the pipe (the
	// writer buffers 64 KiB; flush covers the small-trace case anyway).
	code := run([]string{"-bench", "troff.ped", "-events", "5000", "-o", "-"}, pw, &stderr)
	if code == 0 {
		t.Fatal("tracegen exited 0 writing to a closed pipe")
	}
	if stderr.Len() == 0 {
		t.Error("no diagnostic on stderr for the broken-pipe failure")
	}
}

// TestWriteTraceReportsFirstError pins the plumbing below run: writeTrace
// must return the underlying writer's error rather than swallowing it.
func TestWriteTraceReportsFirstError(t *testing.T) {
	cfg, ok := bench.ByName("troff.ped")
	if !ok {
		t.Fatal("unknown benchmark")
	}
	cfg.Events = 500
	if _, err := writeTrace(cfg, failAfter{n: 10}); err == nil {
		t.Error("writeTrace returned nil against a failing writer")
	}
}

// TestRunCreateErrorExitsNonZero covers the file path: an unwritable output
// location must fail loudly.
func TestRunCreateErrorExitsNonZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	out := filepath.Join(t.TempDir(), "no", "such", "dir", "t.ibt")
	if code := run([]string{"-bench", "troff.ped", "-events", "100", "-o", out}, &stdout, &stderr); code == 0 {
		t.Fatal("exit code 0 with uncreatable output file")
	}
}

// failAfter is an io.Writer that accepts n bytes and then errors.
type failAfter struct{ n int }

func (f failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	if len(p) > f.n {
		return f.n, io.ErrClosedPipe
	}
	return len(p), nil
}
