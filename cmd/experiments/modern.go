package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/ittage"
	"repro/internal/predictor"
	"repro/internal/report"
)

// printModern is the "1998 vs modern" comparison: the paper's strongest
// 2K-entry designs (Cascade and the PPM predictor itself) against their
// modern descendants at the same entry budget — ITTAGE (the geometric-
// history evolution of the PPM idea, 1024 base + 4x256 tagged entries) and
// Cascade-u (the 1998 Cascade with ITTAGE's u-bit allocation discipline
// grafted onto its tagged tables). Entry counts are matched, so every
// accuracy difference is attributable to prediction structure: history
// geometry, tagged cascading and allocation policy, not capacity. The bits
// column makes the remaining (modest) storage differences explicit.
func printModern(e *env) {
	build := func() []predictor.IndirectPredictor {
		mk := func(name string) predictor.IndirectPredictor {
			p, ok := bench.NewPredictor(name)
			if !ok {
				panic("experiments: unregistered predictor " + name)
			}
			return p
		}
		return []predictor.IndirectPredictor{
			mk("Cascade"), mk("PPM-hyb"), mk("Cascade-u"), mk("ITTAGE"),
		}
	}
	printMatrix(e, "1998 vs modern: misprediction ratios (%), matched ~2K-entry budget", build)

	t := report.NewTable("1998 vs modern: budget normalization",
		"predictor", "entries", "bits", "KiB", "mean mispred %")
	names, means := meanOver(e, build)
	for _, n := range names {
		p, _ := bench.NewPredictor(n)
		s := p.(predictor.Sized)
		c := p.(predictor.Costed)
		t.AddRowf(n, s.Entries(), c.Bits(),
			fmt.Sprintf("%.1f", float64(c.Bits())/8192), report.Pct(means[n]))
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)

	// ITTAGE internals: the geometric windows and the state of the
	// allocation machinery after each run, the diagnostics that show the
	// u-bit discipline actually engaging (resets > 0 on long runs).
	it := ittage.Paper()
	fmt.Fprintf(e.out, "ITTAGE geometric windows (items): %v (packed history %d bits)\n",
		it.HistLens(), it.HistoryBits())
	results := e.simulate(func() []predictor.IndirectPredictor {
		return []predictor.IndirectPredictor{ittage.Paper()}
	})
	for _, res := range results {
		p := res.Preds[0].(*ittage.ITTAGE)
		uaona, resets := p.UStats()
		fmt.Fprintf(e.out, "  %-12s use-alt counter: %2d  graceful u-resets: %d\n",
			res.Config.String(), uaona, resets)
	}
	fmt.Fprintln(e.out)
}
