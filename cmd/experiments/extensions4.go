package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/report"
)

// printBudget tabulates every Figure 6/7 design's storage in entries and
// bits under the repository's uniform accounting (predictor.Costed),
// making the paper's "approximately the same hardware budget" comparison
// explicit — including the tag overhead that motivates its focus on
// tagless designs.
func printBudget(e *env) {
	t := report.NewTable("Hardware budget accounting (uniform convention, BIU excluded)",
		"predictor", "entries", "bits", "KiB")
	for _, name := range bench.PredictorNames() {
		p, _ := bench.NewPredictor(name)
		s, okS := p.(predictor.Sized)
		c, okC := p.(predictor.Costed)
		if !okS || !okC {
			continue
		}
		t.AddRowf(name, s.Entries(), c.Bits(), fmt.Sprintf("%.1f", float64(c.Bits())/8192))
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)
}

// printMulti measures the design alternative Section 4 rejects: Markov
// states holding K frequency-counted targets with majority voting, versus
// the paper's single most-recent-target entries — at equal state counts
// (so the multi-target variants cost K times the storage) and at an
// entry-count-normalized point (fewer states, same total slots).
func printMulti(e *env) {
	build := func() []predictor.IndirectPredictor {
		base := core.PaperPIB()
		m2 := core.NewMultiTarget(10, 2)
		m2.SetName("PPM-multi-k2")
		m4 := core.NewMultiTarget(10, 4)
		m4.SetName("PPM-multi-k4")
		// Entry-normalized: order 8 with 4 slots holds 2044 slots, about
		// the single-target order-10 budget of 2047.
		m4n := core.NewMultiTarget(8, 4)
		m4n.SetName("PPM-multi-k4-o8")
		return []predictor.IndirectPredictor{base, m2, m4, m4n}
	}
	names, means := meanOver(e, build)
	t := report.NewTable("Section 4 alternative: frequency-counted multi-target Markov states",
		"variant", "slots", "mean mispred %")
	slots := map[string]int{
		"PPM-PIB": 2047, "PPM-multi-k2": 2 * 2046, "PPM-multi-k4": 4 * 2046, "PPM-multi-k4-o8": 4 * 510,
	}
	for _, n := range names {
		t.AddRowf(n, slots[n], 100*means[n])
	}
	t.Render(e.out)
	fmt.Fprintln(e.out, "(the paper stores only the most recent target per state; the k-slot")
	fmt.Fprintln(e.out, " majority-vote organisation is the 'original Markov model' it rejects)")
	fmt.Fprintln(e.out)
}
