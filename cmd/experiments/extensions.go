package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/predictor"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/twolevel"
)

// meanOver runs a predictor-set constructor over the suite (cells sharded
// across the pool, traces recalled from the cache) and returns the mean
// misprediction ratio per predictor name, preserving order.
func meanOver(e *env, build func() []predictor.IndirectPredictor) ([]string, map[string]float64) {
	perPred := map[string][]stats.Counters{}
	var names []string
	for _, p := range build() {
		names = append(names, p.Name())
	}
	for _, res := range e.simulate(build) {
		for _, c := range res.Counters {
			perPred[c.Predictor] = append(perPred[c.Predictor], c)
		}
	}
	out := map[string]float64{}
	for name, runs := range perPred {
		out[name] = stats.MeanRatio(runs)
	}
	return names, out
}

// printOrderSweep regenerates the table-size question the paper leaves
// open: PPM accuracy as the order m (and with it the 2^1+...+2^m entry
// budget) varies.
func printOrderSweep(e *env) {
	t := report.NewTable("Extension: PPM order / table-size sweep (mean mispred %, PPM-hyb)",
		"order", "entries", "mean mispred %")
	for _, order := range []int{2, 4, 6, 8, 10, 12} {
		cfg := core.DefaultConfig(core.Hybrid)
		cfg.Order = order
		cfg.Name = fmt.Sprintf("PPM-hyb-o%d", order)
		_, means := meanOver(e, func() []predictor.IndirectPredictor {
			return []predictor.IndirectPredictor{core.New(cfg)}
		})
		entries := 1
		for j := 1; j <= order; j++ {
			entries += 1 << j
		}
		t.AddRowf(order, entries, 100*means[cfg.Name])
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)
}

// printPathLengthSweep addresses the sensitivity the paper explicitly did
// not: how TC and GAp accuracy depends on recorded path length.
func printPathLengthSweep(e *env) {
	t := report.NewTable("Extension: TC/GAp path-length sensitivity (mean mispred %)",
		"path length", "TC-PIB", "GAp")
	for _, plen := range []int{1, 2, 3, 5, 8, 11} {
		tcName := fmt.Sprintf("TC-p%d", plen)
		gapName := fmt.Sprintf("GAp-p%d", plen)
		_, means := meanOver(e, func() []predictor.IndirectPredictor {
			return []predictor.IndirectPredictor{
				twolevel.NewTargetCache(twolevel.TargetCacheConfig{
					Name: tcName, Entries: 2048,
					HistoryBits: uint(2 * plen), BitsPerTarget: 2,
					HistoryStream: history.IndirectBranches,
				}),
				twolevel.NewGAp(twolevel.GApConfig{
					Name: gapName, Entries: 2048, PHTs: 2, Assoc: 1,
					PathLength: plen, BitsPerTarget: 2,
					HistoryStream: history.IndirectBranches,
					Indexing:      twolevel.GShare,
				}),
			}
		})
		t.AddRowf(plen, 100*means[tcName], 100*means[gapName])
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)
}

// printBIUSweep bounds the BIU, the structure the paper assumed infinite.
func printBIUSweep(e *env) {
	t := report.NewTable("Extension: finite-BIU sensitivity (PPM-hyb mean mispred %)",
		"BIU entries", "mean mispred %")
	for _, limit := range []int{16, 64, 256, 1024, 0} {
		cfg := core.DefaultConfig(core.Hybrid)
		cfg.BIULimit = limit
		label := fmt.Sprint(limit)
		if limit == 0 {
			label = "unbounded"
		}
		cfg.Name = "PPM-hyb-biu" + label
		_, means := meanOver(e, func() []predictor.IndirectPredictor {
			return []predictor.IndirectPredictor{core.New(cfg)}
		})
		t.AddRowf(label, 100*means[cfg.Name])
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)
}

// printVariants compares the future-work PPM designs of Section 6 against
// the baseline: tagged Markov tables, per-component confidence, the
// alternative low-order bit select, and the leaky-filtered PPM.
func printVariants(e *env) {
	build := func() []predictor.IndirectPredictor {
		tagged := core.DefaultConfig(core.Hybrid)
		tagged.Tagged = true
		tagged.Name = "PPM-hyb-tagged"
		conf := core.DefaultConfig(core.Hybrid)
		conf.ConfidenceThreshold = 2
		conf.Name = "PPM-hyb-conf2"
		low := core.DefaultConfig(core.Hybrid)
		low.LowSelect = true
		low.Name = "PPM-hyb-lowsel"
		return []predictor.IndirectPredictor{
			core.PaperHyb(),
			core.New(tagged),
			core.New(conf),
			core.New(low),
			core.PaperFiltered(),
		}
	}
	names, means := meanOver(e, build)
	t := report.NewTable("Extension: PPM design variants (Section 6 future work)",
		"variant", "mean mispred %")
	for _, n := range names {
		t.AddRowf(n, 100*means[n])
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)
}
